package bluedove_test

import (
	"sync/atomic"
	"testing"
	"time"

	"bluedove"
)

// The public facade must support the full subscribe/publish/deliver loop
// documented in the package comment.
func TestFacadeEndToEnd(t *testing.T) {
	space := bluedove.MustSpace(
		bluedove.Dimension{Name: "price", Min: 0, Max: 1000},
		bluedove.Dimension{Name: "volume", Min: 0, Max: 1e6},
	)
	c, err := bluedove.StartCluster(bluedove.ClusterOptions{
		Space:          space,
		Matchers:       3,
		GossipInterval: 50 * time.Millisecond,
		ReportInterval: 50 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.WaitForTable(1, 5*time.Second); err != nil {
		t.Fatal(err)
	}

	var hits atomic.Int64
	sub, err := c.NewClient(0, func(m *bluedove.Message, ids []bluedove.SubscriptionID) {
		hits.Add(1)
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sub.Subscribe([]bluedove.Range{
		{Low: 100, High: 200}, {Low: 0, High: 1e6},
	}); err != nil {
		t.Fatal(err)
	}
	time.Sleep(200 * time.Millisecond)

	pub, err := c.NewClient(0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := pub.Publish([]float64{150, 5000}, []byte("tick")); err != nil {
		t.Fatal(err)
	}
	if err := pub.Publish([]float64{500, 5000}, nil); err != nil { // no match
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) && hits.Load() == 0 {
		time.Sleep(10 * time.Millisecond)
	}
	time.Sleep(200 * time.Millisecond)
	if got := hits.Load(); got != 1 {
		t.Fatalf("deliveries = %d, want 1", got)
	}
}

// The re-exported spaces and strategies must be usable directly.
func TestFacadeTypes(t *testing.T) {
	s := bluedove.UniformSpace(4, 1000)
	if s.K() != 4 {
		t.Fatal("UniformSpace")
	}
	if (bluedove.BlueDovePlacement{}).Name() != "bluedove" {
		t.Error("placement alias")
	}
	if (bluedove.Adaptive{}).Name() != "adaptive" {
		t.Error("policy alias")
	}
	if _, err := bluedove.NewSpace(); err == nil {
		t.Error("NewSpace alias should validate")
	}
}
