package main

import (
	"encoding/json"
	"fmt"
	"log"
	"os"
	"testing"
	"time"

	"bluedove/internal/core"
	"bluedove/internal/experiment"
	"bluedove/internal/wire"
)

// batchingReport is the schema of BENCH_batching.json: the end-to-end
// cluster throughput comparison plus the wire-level allocation comparison
// for the forward hop.
type batchingReport struct {
	benchHeader

	// In-process cluster, batched (ForwardLinger=1ms) vs unbatched.
	Cluster struct {
		Messages            int     `json:"messages"`
		Subscribers         int     `json:"subscribers"`
		UnbatchedMsgsPerSec float64 `json:"unbatched_msgs_per_sec"`
		BatchedMsgsPerSec   float64 `json:"batched_msgs_per_sec"`
		Speedup             float64 `json:"speedup"`
		MsgsPerFrame        float64 `json:"msgs_per_frame"`
	} `json:"cluster"`

	// Wire encode path: one ForwardBody frame per message vs one pooled
	// 64-entry ForwardBatchBody frame, normalized per message.
	Wire struct {
		Batch                int     `json:"batch"`
		UnbatchedAllocsPerOp float64 `json:"unbatched_allocs_per_msg"`
		BatchedAllocsPerOp   float64 `json:"batched_allocs_per_msg"`
		AllocReduction       float64 `json:"alloc_reduction"`
		UnbatchedNsPerOp     float64 `json:"unbatched_ns_per_msg"`
		BatchedNsPerOp       float64 `json:"batched_ns_per_msg"`
	} `json:"wire"`
}

// runBatching runs the batching comparison and, when out is non-empty,
// writes the JSON report there.
func runBatching(out string) {
	start := time.Now()
	r, err := experiment.Batching(experiment.BatchingOpts{})
	if err != nil {
		log.Fatalf("batching experiment: %v", err)
	}
	fmt.Println(r.Table())
	fmt.Fprintf(os.Stderr, "[batching cluster runs: %v]\n", time.Since(start).Round(time.Millisecond))

	rep := &batchingReport{benchHeader: newBenchHeader()}
	rep.Cluster.Messages = r.Messages
	rep.Cluster.Subscribers = r.Subscribers
	rep.Cluster.UnbatchedMsgsPerSec = r.UnbatchedMsgsPerSec
	rep.Cluster.BatchedMsgsPerSec = r.BatchedMsgsPerSec
	rep.Cluster.Speedup = r.Speedup
	rep.Cluster.MsgsPerFrame = r.Amortization

	measureWireAllocs(rep)
	t := &experiment.Table{
		Title:  fmt.Sprintf("Forward-hop encode cost (wire level, batch=%d)", rep.Wire.Batch),
		Header: []string{"mode", "allocs/msg", "ns/msg"},
	}
	t.AddRow("ForwardBody per message", rep.Wire.UnbatchedAllocsPerOp, rep.Wire.UnbatchedNsPerOp)
	t.AddRow("pooled ForwardBatchBody", rep.Wire.BatchedAllocsPerOp, rep.Wire.BatchedNsPerOp)
	fmt.Println(t)

	if out == "" {
		return
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	if err := os.WriteFile(out, append(data, '\n'), 0o644); err != nil {
		log.Fatal(err)
	}
	fmt.Fprintf(os.Stderr, "[wrote %s]\n", out)
}

// measureWireAllocs benchmarks the forward-hop encode paths in-process via
// testing.Benchmark and fills in the wire section of the report.
func measureWireAllocs(rep *batchingReport) {
	const batch = 64
	msgs := make([]*core.Message, batch)
	for i := range msgs {
		msgs[i] = &core.Message{
			ID:          core.MessageID(i + 1),
			Attrs:       []float64{float64(i), 500, 500, 500},
			Payload:     []byte("0123456789abcdef"),
			PublishedAt: int64(i),
		}
	}

	// Unbatched: one frame per message, fresh buffer each (the pre-batching
	// dispatcher forward path).
	un := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			body := wire.ForwardBody{Dim: 0, Msg: msgs[i%batch]}
			buf := body.Encode()
			_ = buf
		}
	})

	// Batched: one pooled frame per 64 messages; per-op loop body covers one
	// message so ns/op and allocs/op stay per-message.
	var entries []wire.ForwardEntry
	ba := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			entries = append(entries, wire.ForwardEntry{Dim: 0, Msg: msgs[i%batch]})
			if len(entries) == batch {
				body := wire.ForwardBatchBody{Entries: entries}
				buf := wire.GetBuf()
				buf.B = body.AppendTo(buf.B)
				wire.PutBuf(buf)
				entries = entries[:0]
			}
		}
	})

	rep.Wire.Batch = batch
	rep.Wire.UnbatchedAllocsPerOp = float64(un.AllocsPerOp())
	rep.Wire.BatchedAllocsPerOp = float64(ba.AllocsPerOp())
	if ba.AllocsPerOp() > 0 {
		rep.Wire.AllocReduction = float64(un.AllocsPerOp()) / float64(ba.AllocsPerOp())
	} else {
		rep.Wire.AllocReduction = float64(un.AllocsPerOp()) // batched path is allocation-free
	}
	rep.Wire.UnbatchedNsPerOp = float64(un.NsPerOp())
	rep.Wire.BatchedNsPerOp = float64(ba.NsPerOp())
}
