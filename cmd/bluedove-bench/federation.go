package main

import (
	"encoding/json"
	"fmt"
	"log"
	"os"
	"time"

	"bluedove/internal/experiment"
)

// federationReport is the schema of BENCH_federation.json: the two-cluster
// border-tier benchmark — summary suppression on disjoint interest,
// intra- vs cross-cluster delivery percentiles, and zero acked loss across
// a partitioned-and-healed inter-cluster link.
type federationReport struct {
	benchHeader

	Seed int64 `json:"seed"`

	DisjointPubs     int     `json:"disjoint_pubs"`
	CrossedDisjoint  int64   `json:"crossed_disjoint"`
	SuppressionRatio float64 `json:"suppression_ratio"`
	RemoteLeaks      int     `json:"remote_leaks"`
	InBandPubs       int     `json:"in_band_pubs"`
	CrossedInBand    int64   `json:"crossed_in_band"`
	InBandDelivered  int     `json:"in_band_delivered"`

	LatencyPubs int     `json:"latency_pubs"`
	IntraP50Ms  float64 `json:"intra_p50_ms"`
	IntraP99Ms  float64 `json:"intra_p99_ms"`
	CrossP50Ms  float64 `json:"cross_p50_ms"`
	CrossP99Ms  float64 `json:"cross_p99_ms"`

	FlapPubs      int    `json:"flap_pubs"`
	FlapAcked     int    `json:"flap_acked"`
	FlapRetries   int64  `json:"flap_retries"`
	ZeroAckedLoss bool   `json:"zero_acked_loss"`
	LossDetail    string `json:"loss_detail,omitempty"`
}

// runFederation runs the federation benchmark (seed printed for replay) and
// writes the JSON report when out is non-empty.
func runFederation(seed int64, out string) {
	start := time.Now()
	fmt.Fprintf(os.Stderr, "[federation benchmark: seed %d (re-run with -chaos-seed %d)]\n", seed, seed)
	r, err := experiment.FederationTier(experiment.FederationOpts{Seed: seed})
	if err != nil {
		log.Fatalf("federation benchmark: %v", err)
	}
	fmt.Println(r.Table())
	fmt.Fprintf(os.Stderr, "[federation benchmark: %v]\n", time.Since(start).Round(time.Millisecond))

	if !r.ZeroAckedLoss {
		log.Fatalf("federation benchmark: acked loss across the link flap (seed %d): %s",
			seed, r.LossDetail)
	}
	if r.RemoteLeaks > 0 {
		log.Fatalf("federation benchmark: %d disjoint publications leaked across the link (seed %d)",
			r.RemoteLeaks, seed)
	}

	rep := &federationReport{
		benchHeader:      newBenchHeader(),
		Seed:             r.Seed,
		DisjointPubs:     r.DisjointPubs,
		CrossedDisjoint:  r.CrossedDisjoint,
		SuppressionRatio: r.SuppressionRatio,
		RemoteLeaks:      r.RemoteLeaks,
		InBandPubs:       r.InBandPubs,
		CrossedInBand:    r.CrossedInBand,
		InBandDelivered:  r.InBandDelivered,
		LatencyPubs:      r.LatencyPubs,
		IntraP50Ms:       r.IntraP50,
		IntraP99Ms:       r.IntraP99,
		CrossP50Ms:       r.CrossP50,
		CrossP99Ms:       r.CrossP99,
		FlapPubs:         r.FlapPubs,
		FlapAcked:        r.FlapAcked,
		FlapRetries:      r.FlapRetries,
		ZeroAckedLoss:    r.ZeroAckedLoss,
		LossDetail:       r.LossDetail,
	}
	if out == "" {
		return
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	if err := os.WriteFile(out, append(data, '\n'), 0o644); err != nil {
		log.Fatal(err)
	}
	fmt.Fprintf(os.Stderr, "[wrote %s]\n", out)
}
