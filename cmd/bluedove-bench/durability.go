package main

import (
	"encoding/json"
	"fmt"
	"log"
	"os"
	"time"

	"bluedove/internal/experiment"
)

// durabilityReport is the schema of BENCH_durability.json: cluster
// throughput and delivery latency per fsync policy against the no-journal
// baseline, plus the recovery-time-vs-journal-size curve.
type durabilityReport struct {
	benchHeader

	Messages    int `json:"messages"`
	Subscribers int `json:"subscribers"`

	Configs []struct {
		Name       string  `json:"name"`
		MsgsPerSec float64 `json:"msgs_per_sec"`
		Slowdown   float64 `json:"slowdown"`
		MeanMs     float64 `json:"mean_latency_ms"`
		P99Ms      float64 `json:"p99_latency_ms"`
	} `json:"configs"`

	Recovery []struct {
		Records    int     `json:"records"`
		Bytes      int64   `json:"journal_bytes"`
		Seconds    float64 `json:"recovery_seconds"`
		RecordsSec float64 `json:"records_per_sec"`
	} `json:"recovery"`
}

// runDurability runs the durability experiment and, when out is non-empty,
// writes the JSON report there.
func runDurability(out string) {
	start := time.Now()
	r, err := experiment.Durability(experiment.DurabilityOpts{})
	if err != nil {
		log.Fatalf("durability experiment: %v", err)
	}
	fmt.Println(r.Table())
	fmt.Println(r.RecoveryTable())
	fmt.Fprintf(os.Stderr, "[durability cluster runs: %v]\n", time.Since(start).Round(time.Millisecond))

	rep := &durabilityReport{benchHeader: newBenchHeader()}
	rep.Messages = r.Messages
	rep.Subscribers = r.Subscribers
	for _, c := range r.Configs {
		rep.Configs = append(rep.Configs, struct {
			Name       string  `json:"name"`
			MsgsPerSec float64 `json:"msgs_per_sec"`
			Slowdown   float64 `json:"slowdown"`
			MeanMs     float64 `json:"mean_latency_ms"`
			P99Ms      float64 `json:"p99_latency_ms"`
		}{c.Name, c.MsgsPerSec, c.Slowdown, c.MeanMs, c.P99Ms})
	}
	for _, p := range r.Recovery {
		rep.Recovery = append(rep.Recovery, struct {
			Records    int     `json:"records"`
			Bytes      int64   `json:"journal_bytes"`
			Seconds    float64 `json:"recovery_seconds"`
			RecordsSec float64 `json:"records_per_sec"`
		}{p.Records, p.Bytes, p.Seconds, float64(p.Records) / p.Seconds})
	}

	if out == "" {
		return
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	if err := os.WriteFile(out, append(data, '\n'), 0o644); err != nil {
		log.Fatal(err)
	}
	fmt.Fprintf(os.Stderr, "[wrote %s]\n", out)
}
