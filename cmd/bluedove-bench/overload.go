package main

import (
	"encoding/json"
	"fmt"
	"log"
	"os"
	"time"

	"bluedove/internal/experiment"
)

// overloadReport is the schema of BENCH_overload.json: one throttled-matcher
// burst run twice — overload layer off (busy NACKs ignored, rejected
// forwards lost) and on (busy-NACK re-routing + circuit breaking) — compared
// on delivery rate and publish→deliver latency.
type overloadReport struct {
	benchHeader

	Seed       int64 `json:"seed"`
	Matchers   int   `json:"matchers"`
	QueueDepth int   `json:"queue_depth"`
	ThrottleMs int64 `json:"throttle_ms_per_msg"`

	Off overloadVariant `json:"layer_off"`
	On  overloadVariant `json:"layer_on"`
}

type overloadVariant struct {
	Published    int64   `json:"published"`
	Delivered    int64   `json:"delivered"`
	DeliveryRate float64 `json:"delivery_rate"`
	BusyNacks    int64   `json:"busy_nacks"`
	Rerouted     int64   `json:"rerouted"`
	BreakerTrips int64   `json:"breaker_trips"`
	MatcherDrops int64   `json:"stage_drops"`
	P50Ms        float64 `json:"p50_ms"`
	P99Ms        float64 `json:"p99_ms"`
	MaxMs        float64 `json:"max_ms"`
}

func toVariant(v experiment.OverloadVariant) overloadVariant {
	return overloadVariant{
		Published:    v.Published,
		Delivered:    v.Delivered,
		DeliveryRate: v.DeliveryRate,
		BusyNacks:    v.BusyNacks,
		Rerouted:     v.Rerouted,
		BreakerTrips: v.BreakerTrips,
		MatcherDrops: v.MatcherDrops,
		P50Ms:        v.P50Ms,
		P99Ms:        v.P99Ms,
		MaxMs:        v.MaxMs,
	}
}

// runOverload runs the overload-control comparison and, when out is
// non-empty, writes the JSON report there.
func runOverload(seed int64, out string) {
	start := time.Now()
	r, err := experiment.Overload(experiment.OverloadOpts{Seed: seed})
	if err != nil {
		log.Fatalf("overload experiment: %v", err)
	}
	fmt.Println(r.Table())
	fmt.Fprintf(os.Stderr, "[overload run: %v]\n", time.Since(start).Round(time.Millisecond))

	rep := &overloadReport{
		benchHeader: newBenchHeader(),
		Seed:        r.Seed,
		Matchers:    r.Matchers,
		QueueDepth:  r.QueueDepth,
		ThrottleMs:  r.ThrottleMs,
		Off:         toVariant(r.Off),
		On:          toVariant(r.On),
	}
	if out == "" {
		return
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	if err := os.WriteFile(out, append(data, '\n'), 0o644); err != nil {
		log.Fatal(err)
	}
	fmt.Fprintf(os.Stderr, "[wrote %s]\n", out)
}
