package main

import (
	"encoding/json"
	"fmt"
	"log"
	"os"
	"time"

	"bluedove/internal/experiment"
)

// diskFaultReport is the schema of BENCH_diskfault.json: the full-stack
// disk-fault certification — journaled nodes behind an edge tier with the
// elasticity controller and the federation border tier running, disk and
// network faults injected concurrently. FailStop must show zero acked loss;
// DegradeToMemory must show exact (reported, not silent) accounting of the
// weakened durability guarantee.
type diskFaultReport struct {
	benchHeader

	Seed        int64 `json:"seed"`
	Matchers    int   `json:"matchers"`
	Dispatchers int   `json:"dispatchers"`
	Burst       int   `json:"burst_per_phase"`

	FailStopPublished  int64   `json:"failstop_published"`
	FailStopExpected   int     `json:"failstop_expected_deliveries"`
	FailStopZeroLoss   bool    `json:"failstop_zero_acked_loss"`
	FailStopDuplicates int64   `json:"failstop_duplicates"`
	FailStopEdge       int64   `json:"failstop_edge_delivered"`
	FailStopCrashMs    float64 `json:"failstop_fault_to_crash_ms"`
	FailStopDiskFaults int     `json:"failstop_disk_ops_faulted"`
	FailStopElastic    int64   `json:"failstop_elastic_moves"`

	DegradePublished  int64  `json:"degrade_published"`
	DegradeZeroLoss   bool   `json:"degrade_zero_acked_loss"`
	DegradeDuplicates int64  `json:"degrade_duplicates"`
	DegradeHealthy    bool   `json:"degrade_store_degraded"`
	DegradeDurable    int64  `json:"degrade_durable_appends"`
	DegradeDropped    int64  `json:"degrade_reported_drops"`
	DegradeExact      bool   `json:"degrade_accounting_exact"`
	LossDetail        string `json:"loss_detail,omitempty"`
}

// runDiskFault runs the disk-fault certification (seed printed for replay)
// and writes the JSON report when out is non-empty. Any acked loss or
// accounting hole is a hard failure.
func runDiskFault(seed int64, out string) {
	start := time.Now()
	fmt.Fprintf(os.Stderr, "[diskfault certification: seed %d (re-run with -chaos-seed %d)]\n", seed, seed)
	r, err := experiment.DiskFault(experiment.DiskFaultOpts{Seed: seed})
	if err != nil {
		log.Fatalf("diskfault certification: %v", err)
	}
	fmt.Println(r.Table())
	fmt.Fprintf(os.Stderr, "[diskfault certification: %v]\n", time.Since(start).Round(time.Millisecond))

	if !r.FailStop.ZeroAckedLoss {
		log.Fatalf("diskfault certification: acked loss under FailStop (seed %d): %s",
			seed, r.FailStop.LossDetail)
	}
	if !r.Degrade.ZeroAckedLoss {
		log.Fatalf("diskfault certification: delivery loss under DegradeToMemory (seed %d): %s",
			seed, r.Degrade.LossDetail)
	}
	if !r.Degrade.HealthDegraded {
		log.Fatalf("diskfault certification: ENOSPC injected but store never degraded (seed %d)", seed)
	}
	if !r.Degrade.AccountingExact {
		log.Fatalf("diskfault certification: accounting hole: %d durable + %d dropped < %d accepted (seed %d)",
			r.Degrade.Durable, r.Degrade.Dropped, r.Degrade.Published, seed)
	}

	rep := &diskFaultReport{
		benchHeader: newBenchHeader(),
		Seed:        r.Seed,
		Matchers:    r.Matchers,
		Dispatchers: r.Dispatchers,
		Burst:       r.Burst,

		FailStopPublished:  r.FailStop.Published,
		FailStopExpected:   r.FailStop.Expected,
		FailStopZeroLoss:   r.FailStop.ZeroAckedLoss,
		FailStopDuplicates: r.FailStop.Duplicates,
		FailStopEdge:       r.FailStop.EdgeDelivered,
		FailStopCrashMs:    r.FailStop.CrashMs,
		FailStopDiskFaults: r.FailStop.DiskFaults,
		FailStopElastic:    r.FailStop.ElasticMoves,

		DegradePublished:  r.Degrade.Published,
		DegradeZeroLoss:   r.Degrade.ZeroAckedLoss,
		DegradeDuplicates: r.Degrade.Duplicates,
		DegradeHealthy:    r.Degrade.HealthDegraded,
		DegradeDurable:    r.Degrade.Durable,
		DegradeDropped:    r.Degrade.Dropped,
		DegradeExact:      r.Degrade.AccountingExact,
	}
	if out == "" {
		return
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	if err := os.WriteFile(out, append(data, '\n'), 0o644); err != nil {
		log.Fatal(err)
	}
	fmt.Fprintf(os.Stderr, "[wrote %s]\n", out)
}
