package main

import (
	"encoding/json"
	"fmt"
	"log"
	"os"
	"time"

	"bluedove/internal/experiment"
)

// chaosReport is the schema of BENCH_chaos.json: one chaos failover run —
// a steady publication load with a matcher killed mid-run — reported as a
// delivery-rate timeline plus the dip/recovery/zero-loss summary.
type chaosReport struct {
	benchHeader

	Seed        int64 `json:"seed"`
	Matchers    int   `json:"matchers"`
	Dispatchers int   `json:"dispatchers"`
	Published   int   `json:"published"`
	KillAtMs    int64 `json:"kill_at_ms"`
	BucketMs    int64 `json:"bucket_ms"`

	Timeline []chaosBucket `json:"timeline"`

	PreKillRate float64 `json:"pre_kill_rate_msgs_per_sec"`
	DipRate     float64 `json:"dip_rate_msgs_per_sec"`
	RecoveryMs  int64   `json:"recovery_ms"`
	Retransmits int64   `json:"retransmits"`
	Duplicates  int     `json:"duplicate_deliveries"`
	ZeroLoss    bool    `json:"zero_acked_loss"`
	LossDetail  string  `json:"loss_detail,omitempty"`
}

type chaosBucket struct {
	TMs        int64   `json:"t_ms"`
	Deliveries int64   `json:"deliveries"`
	Rate       float64 `json:"rate_msgs_per_sec"`
}

// runChaos runs the chaos failover experiment and, when out is non-empty,
// writes the JSON report there.
func runChaos(seed int64, out string) {
	start := time.Now()
	r, err := experiment.Chaos(experiment.ChaosOpts{Seed: seed})
	if err != nil {
		log.Fatalf("chaos experiment: %v", err)
	}
	fmt.Println(r.Table())
	if !r.ZeroLoss {
		fmt.Fprintf(os.Stderr, "[acked-loss detail]\n%s\n", r.LossDetail)
	}
	fmt.Fprintf(os.Stderr, "[chaos run: %v]\n", time.Since(start).Round(time.Millisecond))

	rep := &chaosReport{
		benchHeader: newBenchHeader(),
		Seed:        r.Seed,
		Matchers:    r.Matchers,
		Dispatchers: r.Dispatchers,
		Published:   r.Published,
		KillAtMs:    r.KillAtMs,
		BucketMs:    r.BucketMs,
		PreKillRate: r.PreKillRate,
		DipRate:     r.DipRate,
		RecoveryMs:  r.RecoveryMs,
		Retransmits: r.Retransmits,
		Duplicates:  r.Duplicates,
		ZeroLoss:    r.ZeroLoss,
		LossDetail:  r.LossDetail,
	}
	for _, b := range r.Timeline {
		rep.Timeline = append(rep.Timeline, chaosBucket{TMs: b.StartMs, Deliveries: b.Deliveries, Rate: b.Rate})
	}

	if out == "" {
		return
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	if err := os.WriteFile(out, append(data, '\n'), 0o644); err != nil {
		log.Fatal(err)
	}
	fmt.Fprintf(os.Stderr, "[wrote %s]\n", out)
}
