package main

import (
	"encoding/json"
	"fmt"
	"log"
	"os"
	"time"

	"bluedove/internal/experiment"
)

// elasticityReport is the schema of BENCH_elasticity.json: the σ-skewed ramp
// autoscale run — a virtual-clock segment (matcher-count timeline, decision
// journal, per-phase p99s) plus the chaos-audited real-cluster segment
// proving zero acked loss across controller-initiated handovers and splits.
type elasticityReport struct {
	benchHeader

	Seed int64 `json:"seed"`

	Sim struct {
		StartMatchers int                `json:"start_matchers"`
		PeakMatchers  int                `json:"peak_matchers"`
		FinalMatchers int                `json:"final_matchers"`
		ScaleUps      int64              `json:"scale_ups"`
		ScaleDowns    int64              `json:"scale_downs"`
		Splits        int64              `json:"splits"`
		Thrash        int64              `json:"thrash"`
		Lost          int64              `json:"lost"`
		Decisions     []elasticDecision  `json:"decisions"`
		MatcherSeries []elasticCountSamp `json:"matcher_series"`

		BaselineP99Sec   float64 `json:"baseline_p99_sec"`
		ScaledSurgeP99   float64 `json:"scaled_surge_p99_sec"`
		RecoveredP99     float64 `json:"recovered_p99_sec"`
		SurgeP99Factor   float64 `json:"surge_p99_over_baseline"`
		P99WithinTwofold bool    `json:"p99_within_2x_of_baseline"`
	} `json:"sim"`

	Chaos struct {
		StartMatchers int    `json:"start_matchers"`
		FinalMatchers int    `json:"final_matchers"`
		ScaleDowns    int64  `json:"scale_downs"`
		Splits        int64  `json:"splits"`
		Published     int    `json:"published"`
		Duplicates    int    `json:"duplicate_deliveries"`
		ZeroLoss      bool   `json:"zero_acked_loss"`
		LossDetail    string `json:"loss_detail,omitempty"`
	} `json:"chaos"`
}

type elasticDecision struct {
	TSec   float64 `json:"t_sec"`
	Action string  `json:"action"`
	Target uint64  `json:"target,omitempty"`
	To     uint64  `json:"to,omitempty"`
	Dim    int     `json:"dim"`
	Reason string  `json:"reason"`
}

type elasticCountSamp struct {
	TSec     float64 `json:"t_sec"`
	Matchers int     `json:"matchers"`
}

// runElasticity runs the elasticity experiment and, when out is non-empty,
// writes the JSON report there.
func runElasticity(seed int64, out string) {
	start := time.Now()
	r, err := experiment.Elasticity(seed)
	if err != nil {
		log.Fatalf("elasticity experiment: %v", err)
	}
	fmt.Println(r.Table())
	if !r.ChaosZeroLoss {
		fmt.Fprintf(os.Stderr, "[acked-loss detail]\n%s\n", r.ChaosLossDetail)
	}
	fmt.Fprintf(os.Stderr, "[elasticity run: %v]\n", time.Since(start).Round(time.Millisecond))

	rep := &elasticityReport{
		benchHeader: newBenchHeader(),
		Seed:        r.Seed,
	}
	rep.Sim.StartMatchers = r.SimStartMatchers
	rep.Sim.PeakMatchers = r.SimPeakMatchers
	rep.Sim.FinalMatchers = r.SimFinalMatchers
	rep.Sim.ScaleUps = r.SimScaleUps
	rep.Sim.ScaleDowns = r.SimScaleDowns
	rep.Sim.Splits = r.SimSplits
	rep.Sim.Thrash = r.SimThrash
	rep.Sim.Lost = r.SimLost
	for _, d := range r.SimDecisions {
		rep.Sim.Decisions = append(rep.Sim.Decisions, elasticDecision{
			TSec: d.TSec, Action: d.Action, Target: uint64(d.Target),
			To: uint64(d.To), Dim: d.Dim, Reason: d.Reason,
		})
	}
	for _, p := range r.SimMatcherSeries {
		rep.Sim.MatcherSeries = append(rep.Sim.MatcherSeries, elasticCountSamp{TSec: p.TSec, Matchers: p.Matchers})
	}
	rep.Sim.BaselineP99Sec = r.BaselineP99Sec
	rep.Sim.ScaledSurgeP99 = r.ScaledSurgeP99
	rep.Sim.RecoveredP99 = r.RecoveredP99
	rep.Sim.SurgeP99Factor = r.SurgeP99Factor
	rep.Sim.P99WithinTwofold = r.P99WithinTwofold
	rep.Chaos.StartMatchers = r.ChaosStartMatchers
	rep.Chaos.FinalMatchers = r.ChaosFinalMatchers
	rep.Chaos.ScaleDowns = r.ChaosScaleDowns
	rep.Chaos.Splits = r.ChaosSplits
	rep.Chaos.Published = r.ChaosPublished
	rep.Chaos.Duplicates = r.ChaosDuplicates
	rep.Chaos.ZeroLoss = r.ChaosZeroLoss
	rep.Chaos.LossDetail = r.ChaosLossDetail

	if out == "" {
		return
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	if err := os.WriteFile(out, append(data, '\n'), 0o644); err != nil {
		log.Fatal(err)
	}
	fmt.Fprintf(os.Stderr, "[wrote %s]\n", out)
}
