// Command bluedove-bench regenerates the paper's evaluation figures and
// tables on the discrete-event simulator and prints them in the same form
// the paper reports (see EXPERIMENTS.md for the comparison).
//
//	bluedove-bench -fig 6a            # one figure at the default scale
//	bluedove-bench -fig all           # the whole evaluation
//	bluedove-bench -fig 7 -scale paper  # full 40k-subscription workload
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"bluedove/internal/experiment"
)

func main() {
	var (
		fig      = flag.String("fig", "all", "figure to regenerate: 5|6a|6b|7|8|9|10|11a|11b|11c|overhead|all")
		scale    = flag.String("scale", "small", "workload scale: tiny|small|paper")
		batching = flag.Bool("batching", false,
			"run the forward-path batching comparison on the real in-process cluster instead of a figure")
		chaosRun = flag.Bool("chaos", false,
			"run the chaos failover experiment (matcher killed mid-burst) on the real in-process cluster")
		chaosSeed = flag.Int64("chaos-seed", 1, "with -chaos: fault-injection seed")
		telem     = flag.Bool("telemetry", false,
			"run the tracing-overhead comparison (telemetry off / sampled 0 / 0.01 / 1.0) on the real in-process cluster")
		durab = flag.Bool("durability", false,
			"run the durability-cost comparison (journal off / fsync never / interval / always) plus the recovery-time curve on the real in-process cluster")
		overload = flag.Bool("overload", false,
			"run the overload-control comparison (one matcher throttled, layer off vs busy-NACK re-routing on) on the real in-process cluster")
		match = flag.Bool("match", false,
			"run the single-matcher match-path benchmark (covering + parallel shards across all index kinds) on the real matching stage")
		elasticity = flag.Bool("elasticity", false,
			"run the autoscale experiment: a σ-skewed ramp on the virtual clock (2→N→2 matchers, per-phase p99) plus a chaos-audited controller drain/split on the real in-process cluster")
		edgeRun = flag.Bool("edge", false,
			"run the edge-tier benchmark (100k multiplexed sessions on one edge: backpressure + reconnect storm, drop-oldest staleness, disconnect loss accounting) on the real edge server")
		fedRun = flag.Bool("federation", false,
			"run the federation benchmark (two real clusters joined by border dispatchers: summary suppression, intra- vs cross-cluster latency, zero acked loss across an inter-cluster link flap)")
		diskFault = flag.Bool("diskfault", false,
			"run the disk-fault certification (journaled full stack — edge, elastic, federation — under combined disk+network chaos: zero acked loss with FailStop, exact drop accounting with DegradeToMemory)")
		matchDur = flag.Duration("match-duration", time.Second, "with -match: measured time per grid cell")
		out      = flag.String("out", "", "with -batching/-chaos/-telemetry/-durability/-overload/-match/-elasticity/-edge/-federation/-diskfault: write the JSON report to this file (e.g. BENCH_match.json)")
	)
	flag.Parse()

	if *batching {
		runBatching(*out)
		return
	}
	if *chaosRun {
		runChaos(*chaosSeed, *out)
		return
	}
	if *telem {
		runTelemetry(*out)
		return
	}
	if *durab {
		runDurability(*out)
		return
	}
	if *overload {
		runOverload(*chaosSeed, *out)
		return
	}
	if *match {
		runMatch(*matchDur, *out)
		return
	}
	if *elasticity {
		runElasticity(*chaosSeed, *out)
		return
	}
	if *edgeRun {
		runEdge(*chaosSeed, *out)
		return
	}
	if *fedRun {
		runFederation(*chaosSeed, *out)
		return
	}
	if *diskFault {
		runDiskFault(*chaosSeed, *out)
		return
	}

	var sc experiment.Scale
	switch *scale {
	case "tiny":
		sc = experiment.ScaleTiny()
	case "small":
		sc = experiment.ScaleSmall()
	case "paper":
		sc = experiment.ScalePaper()
	default:
		log.Fatalf("unknown scale %q", *scale)
	}

	runners := map[string]func(experiment.Scale) fmt.Stringer{
		"5":        func(s experiment.Scale) fmt.Stringer { return experiment.Fig5(s).Table() },
		"6a":       func(s experiment.Scale) fmt.Stringer { return experiment.Fig6a(s).Table() },
		"6b":       func(s experiment.Scale) fmt.Stringer { return experiment.Fig6b(s).Table() },
		"7":        func(s experiment.Scale) fmt.Stringer { return experiment.Fig7(s).Table() },
		"8":        func(s experiment.Scale) fmt.Stringer { return experiment.Fig8(s).Table() },
		"9":        func(s experiment.Scale) fmt.Stringer { return experiment.Fig9(s).Table() },
		"10":       func(s experiment.Scale) fmt.Stringer { return experiment.Fig10(s).Table() },
		"11a":      func(s experiment.Scale) fmt.Stringer { return experiment.Fig11a(s).Table() },
		"11b":      func(s experiment.Scale) fmt.Stringer { return experiment.Fig11b(s).Table() },
		"11c":      func(s experiment.Scale) fmt.Stringer { return experiment.Fig11c(s).Table() },
		"overhead": func(s experiment.Scale) fmt.Stringer { return experiment.Overhead(s).Table() },
	}
	order := []string{"5", "6a", "6b", "overhead", "7", "8", "9", "10", "11a", "11b", "11c"}

	run := func(name string) {
		r, ok := runners[name]
		if !ok {
			log.Fatalf("unknown figure %q", name)
		}
		start := time.Now()
		out := r(sc)
		fmt.Println(out)
		fmt.Fprintf(os.Stderr, "[fig %s: %v]\n\n", name, time.Since(start).Round(time.Millisecond))
	}

	if *fig == "all" {
		for _, name := range order {
			run(name)
		}
		return
	}
	run(*fig)
}
