package main

import (
	"encoding/json"
	"fmt"
	"log"
	"os"
	"time"

	"bluedove/internal/experiment"
)

// edgeReport is the schema of BENCH_edge.json: the three-policy edge-tier
// benchmark — 100k in-process sessions on one edge under backpressure with a
// reconnect storm, plus the drop-oldest staleness and disconnect
// loss-accounting phases.
type edgeReport struct {
	benchHeader

	Seed         int64 `json:"seed"`
	BufferBytes  int   `json:"buffer_bytes"`
	ResumeWindow int   `json:"resume_window"`

	Backpressure edgePolicySection `json:"backpressure"`
	DropOldest   edgePolicySection `json:"drop_oldest"`
	Disconnect   edgePolicySection `json:"disconnect"`
}

type edgePolicySection struct {
	Sessions             int     `json:"sessions"`
	WideSessions         int     `json:"wide_sessions"`
	Publications         int     `json:"publications"`
	ExpectedDeliveries   int64   `json:"expected_deliveries"`
	Delivered            int64   `json:"delivered"`
	SuppressedDuplicates int64   `json:"suppressed_duplicates"`
	AttachPerSec         float64 `json:"attach_per_sec"`
	DeliveriesPerSec     float64 `json:"deliveries_per_sec"`
	RunSecs              float64 `json:"run_secs"`
	BackpressureWaits    int64   `json:"backpressure_waits"`
	DroppedOldest        int64   `json:"dropped_oldest"`
	SlowDisconnects      int64   `json:"slow_disconnects"`
	StormDetaches        int64   `json:"storm_detaches"`
	Resumes              int64   `json:"resumes"`
	Replayed             int64   `json:"replayed"`
	ResumeLost           int64   `json:"resume_lost"`
	ZeroAckedLoss        bool    `json:"zero_acked_loss"`
	LossDetail           string  `json:"loss_detail,omitempty"`
	AuditDuplicates      int     `json:"audit_duplicates"`
	AuditErr             string  `json:"audit_err,omitempty"`
	MaxStalenessGap      int64   `json:"max_staleness_gap"`
	SlowTailCaughtUp     bool    `json:"slow_tail_caught_up"`
	LossAccounted        bool    `json:"loss_accounted"`
}

func edgeSection(p experiment.EdgePolicyResult) edgePolicySection {
	return edgePolicySection{
		Sessions:             p.Sessions,
		WideSessions:         p.WideSessions,
		Publications:         p.Publications,
		ExpectedDeliveries:   p.ExpectedDeliveries,
		Delivered:            p.Delivered,
		SuppressedDuplicates: p.SuppressedDuplicates,
		AttachPerSec:         p.AttachPerSec,
		DeliveriesPerSec:     p.DeliveriesPerSec,
		RunSecs:              p.RunSecs,
		BackpressureWaits:    p.BackpressureWaits,
		DroppedOldest:        p.DroppedOldest,
		SlowDisconnects:      p.SlowDisconnects,
		StormDetaches:        p.StormDetaches,
		Resumes:              p.Resumes,
		Replayed:             p.Replayed,
		ResumeLost:           p.ResumeLost,
		ZeroAckedLoss:        p.ZeroAckedLoss,
		LossDetail:           p.LossDetail,
		AuditDuplicates:      p.AuditDuplicates,
		AuditErr:             p.AuditErr,
		MaxStalenessGap:      p.MaxStalenessGap,
		SlowTailCaughtUp:     p.SlowTailCaughtUp,
		LossAccounted:        p.LossAccounted,
	}
}

// runEdge runs the edge-tier benchmark (seed printed for replay) and writes
// the JSON report when out is non-empty.
func runEdge(seed int64, out string) {
	start := time.Now()
	fmt.Fprintf(os.Stderr, "[edge benchmark: seed %d (re-run with -chaos-seed %d)]\n", seed, seed)
	r, err := experiment.EdgeTier(experiment.EdgeOpts{Seed: seed})
	if err != nil {
		log.Fatalf("edge benchmark: %v", err)
	}
	fmt.Println(r.Table())
	fmt.Fprintf(os.Stderr, "[edge benchmark: %v]\n", time.Since(start).Round(time.Millisecond))

	if !r.Backpressure.ZeroAckedLoss {
		log.Fatalf("edge benchmark: acked loss under backpressure (seed %d): %s %s",
			seed, r.Backpressure.LossDetail, r.Backpressure.AuditErr)
	}

	rep := &edgeReport{
		benchHeader:  newBenchHeader(),
		Seed:         r.Seed,
		BufferBytes:  r.BufferBytes,
		ResumeWindow: r.ResumeWindow,
		Backpressure: edgeSection(r.Backpressure),
		DropOldest:   edgeSection(r.DropOldest),
		Disconnect:   edgeSection(r.Disconnect),
	}
	if out == "" {
		return
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	if err := os.WriteFile(out, append(data, '\n'), 0o644); err != nil {
		log.Fatal(err)
	}
	fmt.Fprintf(os.Stderr, "[wrote %s]\n", out)
}
