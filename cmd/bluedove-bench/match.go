package main

import (
	"encoding/json"
	"fmt"
	"log"
	"os"
	"runtime"
	"time"

	"bluedove/internal/experiment"
	"bluedove/internal/index"
	"bluedove/internal/matcher"
)

// matchCell is one grid cell of BENCH_match.json: an index kind × shard
// count × workload combination measured on the real matching stage.
type matchCell struct {
	Kind          string  `json:"kind"`
	Shards        int     `json:"shards"`
	Covering      bool    `json:"covering"`
	Workload      string  `json:"workload"` // uniform | templated
	MatchedPerSec float64 `json:"matched_per_sec"`
	MsgsPerSec    float64 `json:"msgs_per_sec"`
	MatchesPerMsg float64 `json:"matches_per_msg"`
	ScannedPerMsg float64 `json:"scanned_per_msg"`
	StoredSubs    int     `json:"stored_subs"`
	IndexedSubs   int     `json:"indexed_subs"`
	CollapseRatio float64 `json:"collapse_ratio"`
}

// matchReport is the schema of BENCH_match.json.
type matchReport struct {
	benchHeader

	// Workload parameters (the paper's: 4 dimensions, extent 1000,
	// predicate length 250 → 0.25 per-dimension selectivity).
	Subs      int     `json:"subs"`
	Templates int     `json:"templates"`
	Dims      int     `json:"dims"`
	PredLen   float64 `json:"pred_len"`
	Batch     int     `json:"batch"`

	Cells []matchCell `json:"cells"`
}

// runMatch measures batched single-matcher match throughput across
// scan/bucket/intervaltree × shards ∈ {1, NumCPU}, on a uniform workload
// (covering off) and on the templated workload with covering on, and writes
// the JSON report when out is non-empty.
func runMatch(dur time.Duration, out string) {
	rep := &matchReport{
		benchHeader: newBenchHeader(),
		Subs:        10000,
		Templates:   500,
		Dims:        4,
		PredLen:     250,
		Batch:       64,
	}
	shardList := []int{1}
	if n := runtime.NumCPU(); n > 1 {
		shardList = append(shardList, n)
	}
	kinds := []index.Kind{index.KindScan, index.KindBucket, index.KindIntervalTree}

	t := &experiment.Table{
		Title: fmt.Sprintf("Single-matcher match path (%d subs, batch %d, %s/cell)",
			rep.Subs, rep.Batch, dur),
		Header: []string{"kind", "shards", "workload", "matched/s", "msgs/s", "scanned/msg", "collapse"},
	}
	for _, kind := range kinds {
		for _, shards := range shardList {
			for _, cov := range []bool{false, true} {
				o := matcher.MatchBenchOpts{
					Kind: kind, Shards: shards, Covering: cov,
					Dims: rep.Dims, PredLen: rep.PredLen,
					Subs: rep.Subs, Batch: rep.Batch, MinDuration: dur,
				}
				workload := "uniform"
				if cov {
					// Covering is measured on the workload it is built for:
					// many subscribers sharing a few predicate shapes.
					o.Templates = rep.Templates
					workload = "templated"
				}
				r, err := matcher.RunMatchBench(o)
				if err != nil {
					log.Fatalf("match bench %s/%d: %v", kind, shards, err)
				}
				rep.Cells = append(rep.Cells, matchCell{
					Kind: kind.String(), Shards: shards, Covering: cov, Workload: workload,
					MatchedPerSec: r.MatchedPerSec, MsgsPerSec: r.MsgsPerSec,
					MatchesPerMsg: r.MatchesPerMsg, ScannedPerMsg: r.ScannedPerMsg,
					StoredSubs: r.StoredSubs, IndexedSubs: r.IndexedSubs,
					CollapseRatio: r.CollapseRatio,
				})
				t.AddRow(kind.String(), shards, workload,
					r.MatchedPerSec, r.MsgsPerSec, r.ScannedPerMsg, r.CollapseRatio)
			}
		}
	}
	fmt.Println(t)

	if out == "" {
		return
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	if err := os.WriteFile(out, append(data, '\n'), 0o644); err != nil {
		log.Fatal(err)
	}
	fmt.Fprintf(os.Stderr, "[wrote %s]\n", out)
}
