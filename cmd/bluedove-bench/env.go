package main

import (
	"runtime"
	"time"
)

func goVersion() string { return runtime.Version() }

// benchHeader stamps every BENCH_*.json with when and where it ran, so
// numbers from different machines or parallelism settings are never compared
// blind.
type benchHeader struct {
	GeneratedAt string `json:"generated_at"`
	GoVersion   string `json:"go_version"`
	GOMAXPROCS  int    `json:"gomaxprocs"`
	NumCPU      int    `json:"num_cpu"`
}

func newBenchHeader() benchHeader {
	return benchHeader{
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
		GoVersion:   goVersion(),
		GOMAXPROCS:  runtime.GOMAXPROCS(0),
		NumCPU:      runtime.NumCPU(),
	}
}
