package main

import (
	"encoding/json"
	"fmt"
	"log"
	"os"
	"testing"
	"time"

	"bluedove/internal/core"
	"bluedove/internal/experiment"
	"bluedove/internal/telemetry"
	"bluedove/internal/wire"
)

// telemetryReport is the schema of BENCH_telemetry.json: tracing overhead on
// the batched forward path, from the cluster level (delivered throughput at
// increasing sample rates) down to the wire encode and the sampler check.
type telemetryReport struct {
	benchHeader

	// In-process cluster, ForwardLinger=1ms, telemetry off vs on at
	// sampling 0 / 0.01 / 1.0.
	Cluster struct {
		Messages    int                        `json:"messages"`
		Subscribers int                        `json:"subscribers"`
		Trials      int                        `json:"trials"`
		Modes       []experiment.TelemetryMode `json:"modes"`
	} `json:"cluster"`

	// Wire encode path: one pooled 64-entry ForwardBatchBody frame,
	// normalized per message, with no trace context vs every message
	// carrying a fully stamped one.
	Wire struct {
		Batch               int     `json:"batch"`
		TraceOverheadBytes  int     `json:"trace_overhead_bytes"`
		UntracedAllocsPerOp float64 `json:"untraced_allocs_per_msg"`
		TracedAllocsPerOp   float64 `json:"traced_allocs_per_msg"`
		UntracedNsPerOp     float64 `json:"untraced_ns_per_msg"`
		TracedNsPerOp       float64 `json:"traced_ns_per_msg"`
	} `json:"wire"`

	// Sampler decision cost per publication. Disabled (rate 0) is the cost
	// telemetry adds to every publish when tracing is off.
	Sampler struct {
		DisabledNsPerOp float64 `json:"disabled_ns_per_op"`
		EnabledNsPerOp  float64 `json:"enabled_ns_per_op"`
	} `json:"sampler"`
}

// runTelemetry runs the tracing-overhead comparison and, when out is
// non-empty, writes the JSON report there.
func runTelemetry(out string) {
	start := time.Now()
	r, err := experiment.TelemetryOverhead(experiment.BatchingOpts{})
	if err != nil {
		log.Fatalf("telemetry experiment: %v", err)
	}
	fmt.Println(r.Table())
	fmt.Fprintf(os.Stderr, "[telemetry cluster runs: %v]\n", time.Since(start).Round(time.Millisecond))

	rep := &telemetryReport{benchHeader: newBenchHeader()}
	rep.Cluster.Messages = r.Messages
	rep.Cluster.Subscribers = r.Subscribers
	rep.Cluster.Trials = r.Trials
	rep.Cluster.Modes = r.Modes

	measureTraceWireCost(rep)
	t := &experiment.Table{
		Title:  fmt.Sprintf("Forward-hop encode cost with tracing (wire level, batch=%d)", rep.Wire.Batch),
		Header: []string{"mode", "allocs/msg", "ns/msg"},
	}
	t.AddRow("untraced", rep.Wire.UntracedAllocsPerOp, rep.Wire.UntracedNsPerOp)
	t.AddRow("traced", rep.Wire.TracedAllocsPerOp, rep.Wire.TracedNsPerOp)
	fmt.Println(t)

	measureSamplerCost(rep)
	st := &experiment.Table{
		Title:  "Sampler decision cost",
		Header: []string{"mode", "ns/op"},
	}
	st.AddRow("rate 0 (disabled)", rep.Sampler.DisabledNsPerOp)
	st.AddRow("rate 1 (enabled)", rep.Sampler.EnabledNsPerOp)
	fmt.Println(st)

	if out == "" {
		return
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	if err := os.WriteFile(out, append(data, '\n'), 0o644); err != nil {
		log.Fatal(err)
	}
	fmt.Fprintf(os.Stderr, "[wrote %s]\n", out)
}

// measureTraceWireCost benchmarks the pooled batch-encode path per message
// with and without trace contexts attached.
func measureTraceWireCost(rep *telemetryReport) {
	const batch = 64
	makeMsgs := func(traced bool) []*core.Message {
		msgs := make([]*core.Message, batch)
		for i := range msgs {
			msgs[i] = &core.Message{
				ID:          core.MessageID(i + 1),
				Attrs:       []float64{float64(i), 500, 500, 500},
				Payload:     []byte("0123456789abcdef"),
				PublishedAt: int64(i),
			}
			if traced {
				tr := &core.TraceCtx{ID: core.TraceID(i + 1), Dispatcher: 1, Matcher: 2, Dim: i % 4}
				base := int64(i + 1)
				for h := core.HopPublish; h <= core.HopForward; h++ {
					tr.Stamp(h, base+int64(h))
				}
				msgs[i].Trace = tr
			}
		}
		return msgs
	}
	bench := func(msgs []*core.Message) testing.BenchmarkResult {
		var entries []wire.ForwardEntry
		return testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				entries = append(entries, wire.ForwardEntry{Dim: 0, Msg: msgs[i%batch]})
				if len(entries) == batch {
					body := wire.ForwardBatchBody{Entries: entries}
					buf := wire.GetBuf()
					buf.B = body.AppendTo(buf.B)
					wire.PutBuf(buf)
					entries = entries[:0]
				}
			}
		})
	}
	un := bench(makeMsgs(false))
	tr := bench(makeMsgs(true))
	rep.Wire.Batch = batch
	rep.Wire.TraceOverheadBytes = wire.TraceOverhead
	rep.Wire.UntracedAllocsPerOp = float64(un.AllocsPerOp())
	rep.Wire.TracedAllocsPerOp = float64(tr.AllocsPerOp())
	rep.Wire.UntracedNsPerOp = float64(un.NsPerOp())
	rep.Wire.TracedNsPerOp = float64(tr.NsPerOp())
}

// measureSamplerCost benchmarks the per-publication sampling decision.
func measureSamplerCost(rep *telemetryReport) {
	bench := func(rate float64) testing.BenchmarkResult {
		s := telemetry.NewSampler(rate)
		return testing.Benchmark(func(b *testing.B) {
			n := 0
			for i := 0; i < b.N; i++ {
				if s.Sample() {
					n++
				}
			}
			_ = n
		})
	}
	rep.Sampler.DisabledNsPerOp = float64(bench(0).NsPerOp())
	rep.Sampler.EnabledNsPerOp = float64(bench(1).NsPerOp())
}
