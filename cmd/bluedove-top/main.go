// Command bluedove-top snapshots the admin surfaces of a running cluster
// and prints one row per node — the operator's one-shot "what is the cluster
// doing right now" view, in the spirit of top(1).
//
//	bluedove-top -nodes 127.0.0.1:9000,127.0.0.1:9001,127.0.0.1:9002
//
// With -validate it instead scrapes /metrics from every node, checks the
// exposition is well-formed and carries the series required for the node's
// role, and exits non-zero otherwise (the CI cluster-scrape job runs this).
// -out writes each node's raw scrape to <dir>/<role>-<node>.prom.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"bluedove/internal/telemetry"
)

func main() {
	var (
		nodes    = flag.String("nodes", "", "comma-separated admin addresses (required)")
		validate = flag.Bool("validate", false, "scrape /metrics from every node and fail on malformed or missing series")
		outDir   = flag.String("out", "", "with -validate: write each node's raw scrape into this directory")
		timeout  = flag.Duration("timeout", 5*time.Second, "per-request timeout")
	)
	flag.Parse()
	if *nodes == "" {
		flag.Usage()
		os.Exit(2)
	}
	addrs := strings.Split(*nodes, ",")
	client := &http.Client{Timeout: *timeout}

	if *validate {
		os.Exit(runValidate(client, addrs, *outDir))
	}
	runTop(client, addrs)
}

// nodeVars is the subset of /debug/vars bluedove-top reads.
type nodeVars struct {
	Labels  map[string]string `json:"labels"`
	Metrics []struct {
		Name  string  `json:"name"`
		Value float64 `json:"value"`
		Dist  *struct {
			Count     int64     `json:"count"`
			Quantiles []float64 `json:"quantiles"`
		} `json:"dist"`
	} `json:"metrics"`
}

// value sums every sample of one dotted metric (per-dim gauges collapse into
// the node total); ok reports whether the metric exists at all.
func (v *nodeVars) value(name string) (float64, bool) {
	sum, ok := 0.0, false
	for _, m := range v.Metrics {
		if m.Name == name {
			sum, ok = sum+m.Value, true
		}
	}
	return sum, ok
}

// p99ms returns the p99 of a seconds-scaled latency histogram in
// milliseconds (histogram quantiles align with telemetry.HistogramQuantiles).
func (v *nodeVars) p99ms(name string) (float64, bool) {
	for _, m := range v.Metrics {
		if m.Name == name && m.Dist != nil && m.Dist.Count > 0 && len(m.Dist.Quantiles) >= 3 {
			return m.Dist.Quantiles[2] * 1e3, true
		}
	}
	return 0, false
}

func fetch(client *http.Client, url string) ([]byte, error) {
	resp, err := client.Get(url)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("%s: HTTP %d", url, resp.StatusCode)
	}
	return io.ReadAll(resp.Body)
}

func fetchVars(client *http.Client, addr string) (*nodeVars, error) {
	data, err := fetch(client, "http://"+addr+"/debug/vars")
	if err != nil {
		return nil, err
	}
	v := &nodeVars{}
	if err := json.Unmarshal(data, v); err != nil {
		return nil, fmt.Errorf("%s: bad /debug/vars: %w", addr, err)
	}
	return v, nil
}

// topRow is one scraped node in the snapshot table.
type topRow struct {
	addr string
	v    *nodeVars
	err  error
}

// runTop prints the one-row-per-node snapshot table.
func runTop(client *http.Client, addrs []string) {
	rows := make([]topRow, len(addrs))
	for i, a := range addrs {
		v, err := fetchVars(client, a)
		rows[i] = topRow{addr: a, v: v, err: err}
	}
	sort.SliceStable(rows, func(i, j int) bool {
		ri, rj := "", ""
		if rows[i].v != nil {
			ri = rows[i].v.Labels["role"]
		}
		if rows[j].v != nil {
			rj = rows[j].v.Labels["role"]
		}
		return ri < rj
	})

	num := func(v *nodeVars, names ...string) string {
		for _, n := range names {
			if x, ok := v.value(n); ok {
				return fmt.Sprintf("%.0f", x)
			}
		}
		return "-"
	}
	lat := func(v *nodeVars, names ...string) string {
		for _, n := range names {
			if ms, ok := v.p99ms(n); ok {
				return fmt.Sprintf("%.2f", ms)
			}
		}
		return "-"
	}
	// scannedPerMsg is the matcher's live index-efficiency figure: stored
	// subscriptions examined per matched message.
	frac := func(v *nodeVars, names ...string) string {
		for _, n := range names {
			if x, ok := v.value(n); ok {
				return fmt.Sprintf("%.1f", x)
			}
		}
		return "-"
	}
	// elastic renders the autoscaling controller's decision counters
	// (up/down/split) for any node that exports them — the embedded
	// controller's "elastic" node or a dispatcher running -elastic.
	elasticCol := func(v *nodeVars) string {
		up, ok := v.value("elastic.scale_up")
		if !ok {
			return "-"
		}
		down, _ := v.value("elastic.scale_down")
		splits, _ := v.value("elastic.splits")
		return fmt.Sprintf("u%.0f/d%.0f/s%.0f", up, down, splits)
	}
	// dura renders a durable node's journal state: the store.health gauge
	// (0 healthy, 1 degraded, 2 failed) plus the cumulative journal-error
	// count. In-memory nodes have no store.health series and show "-".
	duraCol := func(v *nodeVars) string {
		h, ok := v.value("store.health")
		if !ok {
			return "-"
		}
		errs, ok := v.value("dispatcher.journal_errors")
		if !ok {
			errs, _ = v.value("matcher.journal_errors")
		}
		state := "ok"
		switch h {
		case 1:
			state = "DEGRADED"
		case 2:
			state = "FAILED"
		}
		return fmt.Sprintf("%s/e%.0f", state, errs)
	}
	w := os.Stdout
	fmt.Fprintf(w, "%-22s %-10s %-6s %10s %10s %10s %9s %8s %10s %12s %10s %11s\n",
		"NODE", "ROLE", "ID", "IN", "OUT", "QUEUE", "SCAN/MSG", "TRACES", "P99(ms)", "TX-BYTES", "ELASTIC", "DURABILITY")
	for _, r := range rows {
		if r.err != nil {
			fmt.Fprintf(w, "%-22s %s\n", r.addr, r.err)
			continue
		}
		v := r.v
		fmt.Fprintf(w, "%-22s %-10s %-6s %10s %10s %10s %9s %8s %10s %12s %10s %11s\n",
			r.addr,
			v.Labels["role"], v.Labels["node"],
			// IN: work accepted; OUT: work completed downstream.
			num(v, "dispatcher.published", "matcher.processed", "client.published", "edge.fanout_in"),
			num(v, "dispatcher.forwarded", "matcher.delivered", "client.delivered", "edge.fanout_deliveries"),
			num(v, "dispatcher.inflight", "matcher.stage.queue_depth", "edge.buffered_bytes"),
			frac(v, "matcher.scanned_per_msg"),
			num(v, "trace.completed"),
			lat(v, "dispatcher.deliver_latency_seconds", "matcher.match_latency_seconds",
				"client.deliver_latency_seconds"),
			num(v, "transport.bytes_sent"),
			elasticCol(v),
			duraCol(v),
		)
	}
	printMatchersRow(w, rows)
	printEdgeRows(w, rows)
	printBorderRows(w, rows)
}

// printEdgeRows appends one summary line per edge node beneath the table:
// attached sessions, fan-out arrival/service rates, buffered bytes, drops
// (all policies summed; the per-policy split lives in the bluedove_edge_drops
// labels on /metrics) and resumes.
func printEdgeRows(w io.Writer, rows []topRow) {
	for _, r := range rows {
		if r.v == nil {
			continue
		}
		sessions, ok := r.v.value("edge.sessions")
		if !ok {
			continue
		}
		lambda, _ := r.v.value("edge.fanout_arrival_rate")
		mu, _ := r.v.value("edge.fanout_service_rate")
		buffered, _ := r.v.value("edge.buffered_bytes")
		drops, _ := r.v.value("edge.drops")
		resumes, _ := r.v.value("edge.resumes")
		fmt.Fprintf(w, "EDGE %-6s             %.0f sessions   fanout λ=%.0f/s μ=%.0f/s   buffered=%.0fB   drops=%.0f   resumes=%.0f\n",
			r.v.Labels["node"], sessions, lambda, mu, buffered, drops, resumes)
	}
}

// printBorderRows appends one summary line per border node beneath the
// table: the local summary's size and version, pending cross-cluster
// forwards, live peer links, and the forwarded/suppressed split that shows
// how much traffic the interest summaries keep off the WAN.
func printBorderRows(w io.Writer, rows []topRow) {
	for _, r := range rows {
		if r.v == nil {
			continue
		}
		size, ok := r.v.value("federation.summary_size")
		if !ok {
			continue
		}
		version, _ := r.v.value("federation.summary_version")
		pending, _ := r.v.value("federation.pending")
		peers, _ := r.v.value("federation.peers")
		fwd, _ := r.v.value("federation.fed_forwarded")
		sup, _ := r.v.value("federation.fed_suppressed")
		inj, _ := r.v.value("federation.fed_injected")
		fmt.Fprintf(w, "BORDER %-6s           summary=%.0f ranges v%.0f   peers=%.0f   pending=%.0f   fwd=%.0f sup=%.0f inj=%.0f\n",
			r.v.Labels["node"], size, version, peers, pending, fwd, sup, inj)
	}
}

// printMatchersRow appends the cluster-membership summary beneath the node
// table: live matcher count with joining/draining states plus the
// controller's cumulative decisions, sourced from whichever scraped node
// exports the elastic.* series. Silent when no node runs the controller.
func printMatchersRow(w io.Writer, rows []topRow) {
	for _, r := range rows {
		if r.v == nil {
			continue
		}
		n, ok := r.v.value("elastic.matchers")
		if !ok {
			continue
		}
		line := fmt.Sprintf("MATCHERS               %.0f active", n)
		if j, ok := r.v.value("elastic.joining"); ok {
			d, _ := r.v.value("elastic.draining")
			line += fmt.Sprintf(", %.0f joining, %.0f draining", j, d)
		}
		up, _ := r.v.value("elastic.scale_up")
		down, _ := r.v.value("elastic.scale_down")
		splits, _ := r.v.value("elastic.splits")
		thrash, _ := r.v.value("elastic.thrash")
		fmt.Fprintf(w, "%s   decisions: up=%.0f down=%.0f split=%.0f thrash=%.0f\n",
			line, up, down, splits, thrash)
		return
	}
}

// requiredSeries is the per-role contract the CI scrape job enforces: a
// node missing any of these is misconfigured, not merely idle.
func requiredSeries(role string) []string {
	common := []string{"bluedove_transport_frames_sent", "bluedove_transport_bytes_sent"}
	switch role {
	case "dispatcher":
		return append(common,
			"bluedove_node_info",
			"bluedove_dispatcher_published",
			"bluedove_dispatcher_forwarded",
			"bluedove_dispatcher_forward_latency_seconds",
			"bluedove_dispatcher_deliver_latency_seconds",
			"bluedove_dispatcher_journal_errors",
			"bluedove_gossip_bytes",
		)
	case "matcher":
		return append(common,
			"bluedove_node_info",
			"bluedove_matcher_processed",
			"bluedove_matcher_delivered",
			"bluedove_matcher_stage_queue_depth",
			"bluedove_matcher_stage_arrival_rate",
			"bluedove_matcher_stage_service_capacity",
			"bluedove_matcher_scanned_per_msg",
			"bluedove_matcher_match_latency_seconds",
			"bluedove_matcher_journal_errors",
			"bluedove_gossip_bytes",
		)
	case "client":
		return append(common, "bluedove_client_published", "bluedove_client_delivered")
	case "edge":
		return append(common,
			"bluedove_node_info",
			"bluedove_edge_sessions",
			"bluedove_edge_fanout_in",
			"bluedove_edge_fanout_deliveries",
			"bluedove_edge_fanout_arrival_rate",
			"bluedove_edge_fanout_service_rate",
			"bluedove_edge_buffered_bytes",
			"bluedove_edge_drops",
			"bluedove_edge_resumes",
		)
	case "border":
		return append(common,
			"bluedove_node_info",
			"bluedove_federation_fed_published",
			"bluedove_federation_fed_forwarded",
			"bluedove_federation_fed_suppressed",
			"bluedove_federation_fed_received",
			"bluedove_federation_fed_injected",
			"bluedove_federation_summary_size",
			"bluedove_federation_summary_version",
			"bluedove_federation_pending",
			"bluedove_federation_peers",
			"bluedove_gossip_bytes",
		)
	case "elastic":
		// The elasticity controller node has no transport of its own, so the
		// common series are not required.
		return []string{
			"bluedove_node_info",
			"bluedove_elastic_scale_up",
			"bluedove_elastic_scale_down",
			"bluedove_elastic_splits",
			"bluedove_elastic_replaces",
			"bluedove_elastic_thrash",
			"bluedove_elastic_journal_errors",
			"bluedove_elastic_matchers",
			"bluedove_elastic_joining",
			"bluedove_elastic_draining",
		}
	default:
		return nil // unknown role: structural check only
	}
}

// runValidate scrapes and lints every node, returning the process exit code.
func runValidate(client *http.Client, addrs []string, outDir string) int {
	if outDir != "" {
		if err := os.MkdirAll(outDir, 0o755); err != nil {
			log.Fatal(err)
		}
	}
	failed := 0
	for _, a := range addrs {
		v, err := fetchVars(client, a)
		if err != nil {
			fmt.Fprintf(os.Stderr, "FAIL %s: %v\n", a, err)
			failed++
			continue
		}
		role, node := v.Labels["role"], v.Labels["node"]
		scrape, err := fetch(client, "http://"+a+"/metrics")
		if err != nil {
			fmt.Fprintf(os.Stderr, "FAIL %s (%s/%s): %v\n", a, role, node, err)
			failed++
			continue
		}
		if outDir != "" {
			name := fmt.Sprintf("%s-%s.prom", role, node)
			if role == "" || node == "" {
				name = strings.ReplaceAll(a, ":", "_") + ".prom"
			}
			if err := os.WriteFile(filepath.Join(outDir, name), scrape, 0o644); err != nil {
				log.Fatal(err)
			}
		}
		if err := telemetry.CheckPrometheusText(scrape, requiredSeries(role)); err != nil {
			fmt.Fprintf(os.Stderr, "FAIL %s (%s/%s): %v\n", a, role, node, err)
			failed++
			continue
		}
		fmt.Printf("OK   %s (%s/%s): %d bytes, exposition valid\n", a, role, node, len(scrape))
	}
	if failed > 0 {
		fmt.Fprintf(os.Stderr, "%d/%d nodes failed validation\n", failed, len(addrs))
		return 1
	}
	return 0
}
