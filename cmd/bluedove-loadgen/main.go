// Command bluedove-loadgen drives a running BlueDove cluster over TCP with
// the paper's synthetic workload: cropped-normal subscriptions and a
// constant publication rate, reporting delivery throughput and latency.
//
//	bluedove-loadgen -dispatcher 127.0.0.1:7000 -subs 1000 -rate 500 -duration 30s
package main

import (
	"flag"
	"fmt"
	"log"
	"sync/atomic"
	"time"

	"bluedove/internal/client"
	"bluedove/internal/core"
	"bluedove/internal/metrics"
	"bluedove/internal/telemetry"
	"bluedove/internal/transport"
	"bluedove/internal/workload"
)

func main() {
	var (
		dispAddr = flag.String("dispatcher", "127.0.0.1:7000", "dispatcher address")
		nsubs    = flag.Int("subs", 1000, "subscriptions to register")
		rate     = flag.Float64("rate", 500, "publications per second")
		duration = flag.Duration("duration", 30*time.Second, "publish duration")
		dims     = flag.Int("dims", 4, "searchable dimensions")
		extent   = flag.Float64("extent", 1000, "value range per dimension")
		sigma    = flag.Float64("sigma", 250, "subscription skew stddev (of extent 1000)")
		seed     = flag.Int64("seed", 1, "workload seed")
		direct   = flag.Bool("direct", true, "direct delivery (false: polled)")
		admin    = flag.String("admin", "", "serve the client's admin surface (/metrics, /debug/vars, /debug/traces, pprof) on this address; empty disables")
		trRate   = flag.Float64("trace-sample", 0, "fraction of publications traced hop-by-hop from the client edge (0 disables)")
	)
	flag.Parse()

	space := core.UniformSpace(*dims, *extent)
	wcfg := workload.Default(space)
	wcfg.SubStdDev = *sigma / 1000 * *extent
	wcfg.Seed = *seed
	gen := workload.New(wcfg)

	tr := transport.NewTCP()
	defer tr.Close()

	var delivered atomic.Int64
	lat := metrics.NewHistogram()

	cfg := client.Config{
		Transport:      tr,
		DispatcherAddr: *dispAddr,
		Subscriber:     core.SubscriberID(*seed),
	}
	if *admin != "" || *trRate > 0 {
		tel := telemetry.New(telemetry.Options{
			SampleRate: *trRate,
			Base: []telemetry.Label{
				telemetry.L("node", fmt.Sprintf("%d", *seed)),
				telemetry.L("role", "client"),
			},
		})
		tel.Registry.Counter("transport.frames_sent", "one-way frames written", &tr.FramesSent)
		tel.Registry.Counter("transport.bytes_sent", "frame body bytes written", &tr.BytesSent)
		cfg.Telemetry = tel
		if *admin != "" {
			adm, err := telemetry.Serve(*admin, tel)
			if err != nil {
				log.Fatalf("admin endpoint: %v", err)
			}
			defer adm.Close()
			log.Printf("admin surface on http://%s/metrics", adm.Addr())
		}
	}
	if *direct {
		cfg.ListenAddr = "127.0.0.1:0"
		cfg.OnDeliver = func(m *core.Message, _ []core.SubscriptionID) {
			delivered.Add(1)
			lat.Observe(time.Now().UnixNano() - m.PublishedAt)
		}
	}
	cl, err := client.New(cfg)
	if err != nil {
		log.Fatal(err)
	}

	log.Printf("registering %d subscriptions...", *nsubs)
	for i := 0; i < *nsubs; i++ {
		s := gen.Subscription()
		if _, err := cl.Subscribe(s.Predicates); err != nil {
			log.Fatalf("subscribe %d: %v", i, err)
		}
	}
	time.Sleep(time.Second) // let stores land

	log.Printf("publishing at %.0f msg/s for %v...", *rate, *duration)
	interval := time.Duration(float64(time.Second) / *rate)
	deadline := time.Now().Add(*duration)
	var published int64
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	for time.Now().Before(deadline) {
		<-ticker.C
		m := gen.Message()
		if err := cl.Publish(m.Attrs, nil); err != nil {
			log.Printf("publish: %v", err)
			continue
		}
		published++
	}
	// Drain: direct deliveries keep arriving briefly; polled mode fetches.
	if !*direct {
		for i := 0; i < 20; i++ {
			ds, err := cl.Poll(0)
			if err != nil {
				log.Printf("poll: %v", err)
				break
			}
			for _, d := range ds {
				delivered.Add(1)
				lat.Observe(time.Now().UnixNano() - d.Msg.PublishedAt)
			}
			if len(ds) == 0 {
				break
			}
		}
	} else {
		time.Sleep(2 * time.Second)
	}

	fmt.Printf("published:  %d msgs (%.0f/s offered)\n", published, *rate)
	fmt.Printf("deliveries: %d\n", delivered.Load())
	if lat.Count() > 0 {
		fmt.Printf("latency:    mean %.2fms  p50 %.2fms  p99 %.2fms  max %.2fms\n",
			lat.Mean()/1e6, float64(lat.Quantile(0.50))/1e6,
			float64(lat.Quantile(0.99))/1e6, float64(lat.Max())/1e6)
	}
}
