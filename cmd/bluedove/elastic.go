package main

import (
	"log"
	"time"

	"bluedove/internal/core"
	"bluedove/internal/dispatcher"
	"bluedove/internal/elastic"
	"bluedove/internal/telemetry"
)

// elasticAdvisor runs the shared elasticity controller over the dispatcher's
// load-report view of the cluster. On the TCP deployment the dispatcher
// cannot start or stop operating-system processes, so the controller runs in
// advisory mode: each decision is logged (scale-up → start a matcher with
// -join; scale-down → retire the named matcher; split → rebalance) and
// exported as elastic.* telemetry so bluedove-top shows it at a glance. The
// in-process cluster and the simulator run the same controller with the
// actuators closed-loop.
func elasticAdvisor(d *dispatcher.Dispatcher, space *core.Space,
	interval time.Duration, tel *telemetry.Telemetry, stop <-chan struct{}) {
	ctrl := elastic.NewController(elastic.Config{
		OnDecision: func(dec elastic.Decision) {
			switch dec.Action {
			case elastic.ScaleUp:
				log.Printf("elastic: scale-up advised (%s) — start a matcher with -join", dec.Reason)
			case elastic.ScaleDown:
				log.Printf("elastic: scale-down advised, drain matcher %v (%s)", dec.Target, dec.Reason)
			case elastic.Split:
				log.Printf("elastic: split advised, matcher %v dim %d → %v (%s)",
					dec.Target, dec.Dim, dec.To, dec.Reason)
			}
		},
	})
	if tel != nil {
		r := tel.Registry
		r.Counter("elastic.scale_up", "controller scale-up decisions", &ctrl.ScaleUps)
		r.Counter("elastic.scale_down", "controller scale-down decisions", &ctrl.ScaleDowns)
		r.Counter("elastic.splits", "controller hot-segment split decisions", &ctrl.Splits)
		r.Counter("elastic.replaces", "scale-ups fired to replace a durability-failed matcher", &ctrl.Replaces)
		r.Counter("elastic.thrash", "scale direction reversals inside the thrash window", &ctrl.Thrash)
		r.Gauge("elastic.matchers", "matchers in the current segment table", func(int64) float64 {
			if t := d.Table(); t != nil {
				return float64(t.N())
			}
			return 0
		})
	}

	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	for {
		select {
		case <-stop:
			return
		case <-ticker.C:
			s, ok := scrapeDispatcherView(d, space)
			if !ok {
				continue
			}
			ctrl.Observe(s) // OnDecision logs; advisory mode does not actuate
		}
	}
}

// scrapeDispatcherView assembles one controller observation from the load
// reports the dispatcher already receives from every matcher. Matchers that
// have not reported yet (or whose gossip entry is dead) are skipped; ok is
// false until a table circulates.
func scrapeDispatcherView(d *dispatcher.Dispatcher, space *core.Space) (elastic.Scrape, bool) {
	t := d.Table()
	if t == nil {
		return elastic.Scrape{}, false
	}
	s := elastic.Scrape{At: time.Now().UnixNano()}
	trips := d.BreakerTrips()
	for _, id := range t.Matchers() {
		if !d.Alive(id) {
			continue
		}
		ms := elastic.MatcherSample{ID: id, BreakerTrips: trips}
		reported := false
		for dim := 0; dim < space.K(); dim++ {
			l, ok := d.Load(id, dim)
			if !ok {
				ms.Dims = append(ms.Dims, elastic.DimSample{})
				continue
			}
			reported = true
			ms.Dims = append(ms.Dims, elastic.DimSample{
				Subs:        l.Subs,
				QueueLen:    l.QueueLen,
				ArrivalRate: l.ArrivalRate,
				MatchRate:   l.MatchRate,
			})
		}
		if reported {
			s.Matchers = append(s.Matchers, ms)
		}
	}
	return s, len(s.Matchers) > 0
}
