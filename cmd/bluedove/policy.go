package main

import "bluedove/internal/forward"

// forwardPolicy aliases the forwarding-policy interface for main.
type forwardPolicy = forward.Policy

// forwardByName resolves a policy flag value.
func forwardByName(name string, seed int64) forwardPolicy {
	return forward.ByName(name, seed)
}
