// Command bluedove runs one BlueDove server node — a matcher or a
// dispatcher — over TCP, forming a cluster with its peers through the
// gossip overlay.
//
// A minimal three-node cluster on one host:
//
//	bluedove -role matcher    -addr 127.0.0.1:7001 -id 1
//	bluedove -role matcher    -addr 127.0.0.1:7002 -id 2 -seeds 127.0.0.1:7001
//	bluedove -role dispatcher -addr 127.0.0.1:7000 -id 100 -seeds 127.0.0.1:7001 -bootstrap 2
//
// The dispatcher waits until it sees two matchers in gossip, then publishes
// the initial segment table. Additional matchers join elastically:
//
//	bluedove -role matcher -addr 127.0.0.1:7003 -id 3 -seeds 127.0.0.1:7001 -join
//
// An edge server fronts many lightweight subscriber sessions behind one
// aggregated subscription registered with a dispatcher:
//
//	bluedove -role edge -addr 127.0.0.1:7100 -id 200 -dispatcher 127.0.0.1:7000
//
// A border dispatcher federates this cluster with peer clusters: it gossips
// with the local overlay, summarizes local interest, and exchanges
// summaries and matching publications with the peer clusters' borders:
//
//	bluedove -role border -addr 127.0.0.1:7200 -id 300 -seeds 127.0.0.1:7001 \
//	    -cluster-id 1 -peers 10.0.2.1:7200,10.0.3.1:7200
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"bluedove/internal/core"
	"bluedove/internal/dispatcher"
	"bluedove/internal/edge"
	"bluedove/internal/federation"
	"bluedove/internal/gossip"
	"bluedove/internal/index"
	"bluedove/internal/matcher"
	"bluedove/internal/partition"
	"bluedove/internal/store"
	"bluedove/internal/telemetry"
	"bluedove/internal/transport"
	"bluedove/internal/wire"
)

func main() {
	var (
		role      = flag.String("role", "", "node role: matcher, dispatcher, edge or border (required)")
		id        = flag.Uint64("id", 0, "unique node ID (required)")
		addr      = flag.String("addr", "127.0.0.1:0", "listen address")
		seeds     = flag.String("seeds", "", "comma-separated gossip seed addresses")
		dims      = flag.Int("dims", 4, "searchable dimensions")
		extent    = flag.Float64("extent", 1000, "value range per dimension [0, extent)")
		bootstrap = flag.Int("bootstrap", 0, "dispatcher: publish the initial table once this many matchers are visible")
		join      = flag.Bool("join", false, "matcher: join an existing cluster via a dispatcher (elastic split)")
		policy    = flag.String("policy", "adaptive", "dispatcher forwarding policy: adaptive|resptime|subamount|random")
		admin     = flag.String("admin", "", "serve the admin surface (/metrics, /debug/vars, /debug/traces, pprof) on this address; empty disables")
		traceRate = flag.Float64("trace-sample", 0, "fraction of publications traced hop-by-hop (0 disables, 1 traces all)")
		dataDir   = flag.String("data-dir", "", "journal this node's state under this directory and recover it on restart; empty keeps all state in memory")
		fsyncPol  = flag.String("fsync", "always", "journal durability policy with -data-dir: always|interval|never")
		indexKind = flag.String("index", "bucket", "matcher: per-dimension index kind: scan|bucket|intervaltree")
		buckets   = flag.Int("index-buckets", 0, "matcher: bucket count for -index bucket (0 = default)")
		covering  = flag.Bool("covering", false, "matcher: enable subscription covering/aggregation")
		shards    = flag.Int("match-shards", 1, "matcher: per-dimension index shards matched in parallel (e.g. NumCPU)")
		elasticOn = flag.Bool("elastic", false, "dispatcher: run the elasticity controller in advisory mode over matcher load reports (decisions logged and exported as elastic.* telemetry)")
		elasticIv = flag.Duration("elastic-interval", 2*time.Second, "dispatcher: elasticity controller scrape interval with -elastic")
		dispAddr  = flag.String("dispatcher", "", "edge: dispatcher address the aggregated subscriber registers with (required for -role edge)")
		edgePol   = flag.String("edge-policy", "backpressure", "edge: slow-consumer policy: backpressure|drop-oldest|disconnect")
		edgeBuf   = flag.Int("edge-buffer", 0, "edge: per-session send buffer and unacked flight window in bytes (0 = 256 KiB)")
		resumeWin = flag.Int("resume-window", 0, "edge: per-session resume replay ring in deliveries (0 = 1024)")
		clusterID = flag.Uint64("cluster-id", 0, "border: this cluster's federation ID (required for -role border)")
		peers     = flag.String("peers", "", "border: comma-separated peer-cluster border addresses")
		sumIv     = flag.Duration("summary-interval", time.Second, "border: interest summary refresh/exchange cadence")
		maxHops   = flag.Int("max-hops", 1, "border: inter-cluster hop budget per publication")
	)
	flag.Parse()
	if *role == "" || *id == 0 {
		flag.Usage()
		os.Exit(2)
	}
	space := core.UniformSpace(*dims, *extent)
	var seedList []string
	if *seeds != "" {
		seedList = strings.Split(*seeds, ",")
	}
	tr := transport.NewTCP()
	defer tr.Close()

	switch *role {
	case "matcher", "dispatcher", "edge", "border":
	default:
		log.Fatalf("unknown role %q", *role)
	}
	tel := nodeTelemetry(tr, core.NodeID(*id), *role, *admin, *traceRate)
	fsync := fsyncByName(*fsyncPol)

	kind, err := index.KindByName(*indexKind)
	if err != nil {
		log.Fatal(err)
	}

	switch *role {
	case "matcher":
		runMatcher(tr, space, core.NodeID(*id), *addr, seedList, *join, tel, *dataDir, fsync,
			matchOpts{kind: kind, buckets: *buckets, covering: *covering, shards: *shards})
	case "dispatcher":
		runDispatcher(tr, space, core.NodeID(*id), *addr, seedList, *bootstrap, *policy, tel, *dataDir, fsync,
			elasticOpts{on: *elasticOn, interval: *elasticIv})
	case "edge":
		runEdge(tr, space, core.NodeID(*id), *addr, *dispAddr, tel,
			edgeFlags{policy: *edgePol, bufferBytes: *edgeBuf, resumeWindow: *resumeWin,
				kind: kind, buckets: *buckets, covering: *covering})
	case "border":
		runBorder(tr, space, core.NodeID(*id), *addr, seedList, tel,
			borderFlags{cluster: *clusterID, peers: *peers,
				summaryInterval: *sumIv, maxHops: *maxHops})
	}
}

// borderFlags bundles the border role's federation flags.
type borderFlags struct {
	cluster         uint64
	peers           string
	summaryInterval time.Duration
	maxHops         int
}

func runBorder(tr transport.Transport, space *core.Space, id core.NodeID,
	addr string, seeds []string, tel *telemetry.Telemetry, bf borderFlags) {
	if bf.cluster == 0 {
		log.Fatal("border role requires -cluster-id")
	}
	var peerList []string
	if bf.peers != "" {
		peerList = strings.Split(bf.peers, ",")
	}
	b, err := federation.Start(federation.Config{
		ID: id, Addr: addr, Space: space, Transport: tr, Seeds: seeds,
		Cluster: bf.cluster, Peers: peerList,
		SummaryInterval: bf.summaryInterval, MaxHops: bf.maxHops,
		Telemetry: tel,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer b.Stop()
	log.Printf("border %v listening on %s (cluster %d, %d peers)",
		id, b.Addr(), bf.cluster, len(peerList))
	waitForSignal()
}

// fsyncByName maps the -fsync flag to a journal policy.
func fsyncByName(name string) store.Fsync {
	switch name {
	case "always":
		return store.FsyncAlways
	case "interval":
		return store.FsyncInterval
	case "never":
		return store.FsyncNever
	}
	log.Fatalf("unknown fsync policy %q", name)
	return store.FsyncAlways
}

// nodeTelemetry builds this node's telemetry bundle (identity labels,
// transport counters, admin surface) when observability is requested.
func nodeTelemetry(tr *transport.TCP, id core.NodeID, role, adminAddr string, sampleRate float64) *telemetry.Telemetry {
	if adminAddr == "" && sampleRate <= 0 {
		return nil
	}
	tel := telemetry.New(telemetry.Options{
		SampleRate: sampleRate,
		Base: []telemetry.Label{
			telemetry.L("node", fmt.Sprintf("%d", id)),
			telemetry.L("role", role),
		},
	})
	r := tel.Registry
	r.Counter("transport.frames_sent", "one-way frames written", &tr.FramesSent)
	r.Counter("transport.bytes_sent", "frame body bytes written", &tr.BytesSent)
	r.Counter("transport.frames_received", "inbound frames handled", &tr.FramesReceived)
	r.Counter("transport.bytes_received", "inbound frame body bytes", &tr.BytesReceived)
	if adminAddr != "" {
		adm, err := telemetry.Serve(adminAddr, tel)
		if err != nil {
			log.Fatalf("admin endpoint: %v", err)
		}
		log.Printf("admin surface on http://%s/metrics", adm.Addr())
	}
	return tel
}

// matchOpts bundles the match-path tuning flags.
type matchOpts struct {
	kind     index.Kind
	buckets  int
	covering bool
	shards   int
}

func runMatcher(tr transport.Transport, space *core.Space, id core.NodeID,
	addr string, seeds []string, join bool, tel *telemetry.Telemetry,
	dataDir string, fsync store.Fsync, mo matchOpts) {
	m, err := matcher.New(matcher.Config{
		ID: id, Addr: addr, Space: space, Transport: tr, Seeds: seeds,
		Telemetry: tel, DataDir: dataDir, Fsync: fsync,
		IndexKind: mo.kind, IndexBuckets: mo.buckets,
		Covering: mo.covering, MatchShards: mo.shards,
	})
	if err != nil {
		log.Fatal(err)
	}
	if err := m.Start(); err != nil {
		log.Fatal(err)
	}
	defer m.Stop()
	log.Printf("matcher %v listening on %s", id, m.Addr())

	if join {
		go joinViaDispatcher(tr, m.Gossiper(), id, m.Addr())
	}
	waitForSignal()
}

// joinViaDispatcher waits for a dispatcher to appear in gossip, then runs
// the paper's join protocol against it.
func joinViaDispatcher(tr transport.Transport, g *gossip.Gossiper, id core.NodeID, addr string) {
	for i := 0; i < 60; i++ {
		for _, p := range g.Peers() {
			if p.Role != core.RoleDispatcher || !p.Alive {
				continue
			}
			body := (&wire.JoinBody{ID: id, Addr: addr}).Encode()
			resp, err := tr.Request(p.Addr, &wire.Envelope{Kind: wire.KindJoin, From: id, Body: body}, 5*time.Second)
			if err != nil {
				log.Printf("join via %s failed: %v", p.Addr, err)
				continue
			}
			ack, err := wire.DecodeJoinAck(resp.Body)
			if err != nil || ack.Err != "" {
				log.Printf("join rejected: %v %s", err, ack.Err)
				continue
			}
			t, err := partition.Decode(ack.Table)
			if err == nil {
				log.Printf("joined: now %d matchers in table v%d", t.N(), t.Version())
			}
			return
		}
		time.Sleep(time.Second)
	}
	log.Print("join: no dispatcher discovered within 60s")
}

// edgeFlags bundles the edge role's tuning flags.
type edgeFlags struct {
	policy       string
	bufferBytes  int
	resumeWindow int
	kind         index.Kind
	buckets      int
	covering     bool
}

func runEdge(tr transport.Transport, space *core.Space, id core.NodeID,
	addr, dispAddr string, tel *telemetry.Telemetry, ef edgeFlags) {
	if dispAddr == "" {
		log.Fatal("edge role requires -dispatcher <addr>")
	}
	pol, err := edge.PolicyByName(ef.policy)
	if err != nil {
		log.Fatal(err)
	}
	e, err := edge.New(edge.Config{
		ID: id, Addr: addr, Space: space, Transport: tr,
		DispatcherAddr: dispAddr, Policy: pol,
		BufferBytes: ef.bufferBytes, ResumeWindow: ef.resumeWindow,
		IndexKind: ef.kind, IndexBuckets: ef.buckets, NoCovering: !ef.covering,
		Telemetry: tel,
	})
	if err != nil {
		log.Fatal(err)
	}
	if err := e.Start(); err != nil {
		log.Fatal(err)
	}
	defer e.Stop()
	log.Printf("edge %v listening on %s (policy %s, upstream %s)", id, e.Addr(), pol, dispAddr)
	waitForSignal()
}

// elasticOpts bundles the dispatcher's elasticity-advisor flags.
type elasticOpts struct {
	on       bool
	interval time.Duration
}

func runDispatcher(tr transport.Transport, space *core.Space, id core.NodeID,
	addr string, seeds []string, bootstrap int, policyName string, tel *telemetry.Telemetry,
	dataDir string, fsync store.Fsync, eo elasticOpts) {
	pol := policyByName(policyName, int64(id))
	d, err := dispatcher.New(dispatcher.Config{
		ID: id, Addr: addr, Space: space, Transport: tr, Seeds: seeds, Policy: pol,
		Telemetry: tel, DataDir: dataDir, Fsync: fsync, Persistent: dataDir != "",
	})
	if err != nil {
		log.Fatal(err)
	}
	if err := d.Start(); err != nil {
		log.Fatal(err)
	}
	defer d.Stop()
	log.Printf("dispatcher %v listening on %s (policy %s)", id, d.Addr(), pol.Name())

	if bootstrap > 0 {
		go bootstrapTable(d, space, bootstrap)
	}
	if eo.on {
		stop := make(chan struct{})
		defer close(stop)
		go elasticAdvisor(d, space, eo.interval, tel, stop)
		log.Printf("elasticity advisor on (every %v)", eo.interval)
	}
	waitForSignal()
}

// bootstrapTable publishes the initial uniform table once enough matchers
// are visible and no table circulates yet.
func bootstrapTable(d *dispatcher.Dispatcher, space *core.Space, want int) {
	for {
		time.Sleep(500 * time.Millisecond)
		if d.Table() != nil {
			return // someone already bootstrapped
		}
		var ids []core.NodeID
		for _, p := range d.Gossiper().Peers() {
			if p.Role == core.RoleMatcher && p.Alive {
				ids = append(ids, p.ID)
			}
		}
		if len(ids) < want {
			continue
		}
		t, err := partition.NewUniform(space, ids[:want])
		if err != nil {
			log.Printf("bootstrap: %v", err)
			return
		}
		d.SetTable(t)
		log.Printf("bootstrapped table v%d over %d matchers", t.Version(), want)
		return
	}
}

func policyByName(name string, seed int64) forwardPolicy {
	if p := forwardByName(name, seed); p != nil {
		return p
	}
	log.Fatalf("unknown policy %q", name)
	return nil
}

func waitForSignal() {
	ch := make(chan os.Signal, 1)
	signal.Notify(ch, syscall.SIGINT, syscall.SIGTERM)
	sig := <-ch
	fmt.Fprintf(os.Stderr, "shutting down on %v\n", sig)
}
