// Benchmarks that regenerate every table and figure of the paper's
// evaluation (Section IV) plus ablations of BlueDove's design choices.
// Each BenchmarkFigNN runs the corresponding experiment once per iteration
// (experiments take seconds to minutes, so the harness settles on N=1) and
// prints the same rows/series the paper reports; key scalar outcomes are
// also attached as benchmark metrics. See EXPERIMENTS.md for the
// paper-vs-measured comparison and bluedove-bench for the CLI front end.
package bluedove_test

import (
	"flag"
	"fmt"
	"testing"

	"bluedove/internal/core"
	"bluedove/internal/experiment"
	"bluedove/internal/forward"
	"bluedove/internal/index"
	"bluedove/internal/placement"
	"bluedove/internal/wire"
	"bluedove/internal/workload"
)

var paperScale = flag.Bool("paperscale", false,
	"run figure benchmarks at the paper's full workload scale (40k subscriptions; ~100x slower)")

func benchScale() experiment.Scale {
	if *paperScale {
		return experiment.ScalePaper()
	}
	return experiment.ScaleSmall()
}

func BenchmarkFig5ResponseVsSaturation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiment.Fig5(benchScale())
		fmt.Println(r.Table())
		b.ReportMetric(r.SatRate, "sat-msgs/s")
		nb, na := len(r.Below), len(r.Above)
		if nb > 0 && na > 0 {
			b.ReportMetric(r.Below[nb-1].V*1000, "below-final-ms")
			b.ReportMetric(r.Above[na-1].V*1000, "above-final-ms")
		}
	}
}

func BenchmarkFig6aSaturationVsMatchers(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiment.Fig6a(benchScale())
		fmt.Println(r.Table())
		last := len(r.Matchers) - 1
		b.ReportMetric(r.Rates["BlueDove"][last], "bluedove-msgs/s")
		b.ReportMetric(r.Gain("P2P", last), "gain-vs-p2p")
		b.ReportMetric(r.Gain("Full-Rep", last), "gain-vs-fullrep")
	}
}

func BenchmarkFig6bMaxSubscriptions(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiment.Fig6b(benchScale())
		fmt.Println(r.Table())
		last := len(r.Matchers) - 1
		b.ReportMetric(float64(r.MaxSubs["BlueDove"][last]), "bluedove-subs")
		b.ReportMetric(r.Gain("P2P", last), "gain-vs-p2p")
		b.ReportMetric(r.Gain("Full-Rep", last), "gain-vs-fullrep")
	}
}

func BenchmarkOverheadMaintenance(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiment.Overhead(benchScale())
		fmt.Println(r.Table())
		b.ReportMetric(r.GossipBpsPerMatcher, "gossip-B/s/matcher")
		b.ReportMetric(r.TotalBpsPerMatcher, "total-B/s/matcher")
	}
}

func BenchmarkFig7ForwardingPolicies(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiment.Fig7(benchScale())
		fmt.Println(r.Table())
		b.ReportMetric(r.GainOverRandom(), "adaptive-vs-random")
	}
}

func BenchmarkFig8LoadBalance(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiment.Fig8(benchScale())
		fmt.Println(r.Table())
		b.ReportMetric(r.NormStdBlueDove, "normstd-bluedove")
		b.ReportMetric(r.NormStdP2P, "normstd-p2p")
	}
}

func BenchmarkFig9Elasticity(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiment.Fig9(benchScale())
		fmt.Println(r.Table())
		b.ReportMetric(float64(len(r.JoinTimesSec)), "joins")
		b.ReportMetric(float64(r.FinalMatchers), "final-matchers")
	}
}

func BenchmarkFig10FaultTolerance(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiment.Fig10(benchScale())
		fmt.Println(r.Table())
		b.ReportMetric(100*r.PeakLoss, "peak-loss-%")
		b.ReportMetric(r.MeanRecoverySec, "recovery-s")
	}
}

func BenchmarkFig11aDimensions(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiment.Fig11a(benchScale())
		fmt.Println(r.Table())
		b.ReportMetric(r.Gain41(), "gain-4d-vs-1d")
	}
}

func BenchmarkFig11bSubscriptionSkew(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiment.Fig11b(benchScale())
		fmt.Println(r.Table())
		b.ReportMetric(100*r.Drop(), "drop-%")
	}
}

func BenchmarkFig11cMessageSkew(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiment.Fig11c(benchScale())
		fmt.Println(r.Table())
		b.ReportMetric(100*r.Drop(), "drop-%")
	}
}

// --- Ablations -------------------------------------------------------------

// BenchmarkAblationExtrapolation sweeps the load-report interval: the
// adaptive policy's advantage over the no-extrapolation response-time policy
// grows as reports get staler, the motivation for Section III-B2.
func BenchmarkAblationExtrapolation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sc := benchScale()
		wcfg := sc.Workload()
		subs := workload.New(wcfg).Subscriptions(sc.Subs)
		n := sc.MatcherCounts[len(sc.MatcherCounts)-1]
		tbl := &experiment.Table{
			Title:  "Ablation: queue extrapolation vs report staleness",
			Header: []string{"report interval", "adaptive (msg/s)", "resptime (msg/s)", "advantage"},
		}
		for _, mult := range []int{1, 3} {
			rates := map[string]float64{}
			for _, pol := range []forward.Policy{forward.Adaptive{}, forward.ResponseTime{}} {
				v := experiment.Variant{Label: pol.Name(), Strategy: placement.BlueDove{},
					Policy: pol, Index: sc.IndexKind}
				probeScale := sc
				probeScale.SatMeasure = sc.SatMeasure * 2 // staler reports need longer windows
				rate := experiment.SaturationRateWithReportInterval(probeScale, n, v, wcfg, subs, mult)
				rates[pol.Name()] = rate
			}
			adv := 0.0
			if rates["resptime"] > 0 {
				adv = rates["adaptive"] / rates["resptime"]
			}
			tbl.AddRow(fmt.Sprintf("%ds", mult), rates["adaptive"], rates["resptime"],
				fmt.Sprintf("%.2fx", adv))
		}
		fmt.Println(tbl)
	}
}

// BenchmarkAblationIndexKind compares matcher index implementations under
// identical workloads — the paper's "local index searching time can be
// greatly reduced... a key factor to the high throughput".
func BenchmarkAblationIndexKind(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sc := benchScale()
		wcfg := sc.Workload()
		subs := workload.New(wcfg).Subscriptions(sc.Subs)
		n := sc.MatcherCounts[len(sc.MatcherCounts)-1]
		tbl := &experiment.Table{
			Title:  "Ablation: matcher index kind (BlueDove, " + fmt.Sprint(n) + " matchers)",
			Header: []string{"index", "saturation rate (msg/s)"},
		}
		for _, kind := range []index.Kind{index.KindScan, index.KindBucket, index.KindIntervalTree} {
			v := experiment.Variant{Label: kind.String(), Strategy: placement.BlueDove{},
				Policy: forward.Adaptive{}, Index: kind}
			rate := experiment.SaturationRate(sc, n, v, wcfg, subs)
			tbl.AddRow(kind.String(), rate)
		}
		fmt.Println(tbl)
	}
}

// BenchmarkAblationNeighborReplication measures the Section III-A1
// coincident-candidate replication safeguard (expected to be cost-neutral:
// the coincidence probability is ~N^-(k-1)).
func BenchmarkAblationNeighborReplication(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sc := benchScale()
		wcfg := sc.Workload()
		subs := workload.New(wcfg).Subscriptions(sc.Subs)
		n := sc.MatcherCounts[len(sc.MatcherCounts)-1]
		tbl := &experiment.Table{
			Title:  "Ablation: neighbor replication for coincident candidates",
			Header: []string{"replication", "saturation rate (msg/s)"},
		}
		for _, off := range []bool{false, true} {
			v := experiment.Variant{Label: fmt.Sprint(!off),
				Strategy: placement.BlueDove{DisableReplication: off},
				Policy:   forward.Adaptive{}, Index: sc.IndexKind}
			tbl.AddRow(fmt.Sprint(!off), experiment.SaturationRate(sc, n, v, wcfg, subs))
		}
		fmt.Println(tbl)
	}
}

// BenchmarkExtensionPersistence evaluates the paper's Section VI future-work
// item implemented here: dispatcher-side message persistence removes the
// crash-window loss of Figure 10.
func BenchmarkExtensionPersistence(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiment.Persistence(benchScale())
		fmt.Println(r.Table())
		b.ReportMetric(100*r.LossBase, "baseline-loss-%")
		b.ReportMetric(100*r.LossPersist, "persistent-loss-%")
		b.ReportMetric(float64(r.Retries), "retries")
	}
}

// BenchmarkForwardBatched compares end-to-end throughput of the real
// in-process cluster stack with forward-path publication batching off and on
// (dispatcher.Config.ForwardLinger). Unlike the figure benchmarks this does
// not use the simulator: the quantity under test is the per-frame overhead of
// the actual dispatcher → wire → transport → matcher → delivery hot path.
func BenchmarkForwardBatched(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiment.Batching(experiment.BatchingOpts{})
		if err != nil {
			b.Fatal(err)
		}
		fmt.Println(r.Table())
		b.ReportMetric(r.UnbatchedMsgsPerSec, "unbatched-msgs/s")
		b.ReportMetric(r.BatchedMsgsPerSec, "batched-msgs/s")
		b.ReportMetric(r.Speedup, "speedup-x")
		b.ReportMetric(r.Amortization, "msgs/frame")
	}
	// The trace-capable codec must not cost the zero-allocation forward path
	// anything while tracing is off: pooled batch encode of untraced messages
	// (Trace == nil, the telemetry-disabled configuration) stays at 0
	// allocs/msg, the PR-1 baseline.
	const batch = 64
	msgs := make([]*core.Message, batch)
	for i := range msgs {
		msgs[i] = &core.Message{
			ID:          core.MessageID(i + 1),
			Attrs:       []float64{float64(i), 500, 500, 500},
			Payload:     []byte("0123456789abcdef"),
			PublishedAt: int64(i),
		}
	}
	allocs := testing.AllocsPerRun(100, func() {
		entries := make([]wire.ForwardEntry, 0, batch) // amortized away by the 64-msg frame
		for _, m := range msgs {
			entries = append(entries, wire.ForwardEntry{Dim: 0, Msg: m})
		}
		body := wire.ForwardBatchBody{Entries: entries}
		buf := wire.GetBuf()
		buf.B = body.AppendTo(buf.B)
		wire.PutBuf(buf)
	})
	b.ReportMetric(allocs/batch, "untraced-allocs/msg")
	// One slice header per 64-message frame is the only allowance.
	if allocs > 1 {
		b.Fatalf("untraced batch encode allocates %.0f times per %d-msg frame; forward path regressed", allocs, batch)
	}
}

// BenchmarkExtensionDimSelection evaluates the paper's Section VI
// attribute-selection item implemented here: when applications constrain
// only some attributes, partitioning on just those dimensions avoids
// replicating every subscription along the unconstrained ones.
func BenchmarkExtensionDimSelection(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiment.DimSelect(benchScale())
		fmt.Println(r.Table())
		b.ReportMetric(r.RateSelected/r.RateAll, "rate-ratio")
		b.ReportMetric(float64(r.CopiesAll)/float64(r.CopiesSelected), "copies-saved-x")
	}
}
