// Quickstart: boot an in-process BlueDove cluster, subscribe, publish,
// receive. Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"time"

	"bluedove"
)

func main() {
	// A two-dimensional attribute space: temperature and humidity.
	space := bluedove.MustSpace(
		bluedove.Dimension{Name: "temperature", Min: -40, Max: 60},
		bluedove.Dimension{Name: "humidity", Min: 0, Max: 100},
	)

	// Four matchers and two dispatchers wired over an in-process mesh with
	// snappy control loops for the demo.
	c, err := bluedove.StartCluster(bluedove.ClusterOptions{
		Space:          space,
		Matchers:       4,
		Dispatchers:    2,
		GossipInterval: 100 * time.Millisecond,
		ReportInterval: 100 * time.Millisecond,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer c.Close()
	if err := c.WaitForTable(1, 5*time.Second); err != nil {
		log.Fatal(err)
	}

	// A subscriber interested in heat warnings: temperature in [30, 60),
	// any humidity above 40%.
	done := make(chan struct{})
	subscriber, err := c.NewClient(0, func(m *bluedove.Message, ids []bluedove.SubscriptionID) {
		fmt.Printf("ALERT %v: temperature=%.1f°C humidity=%.0f%% payload=%q\n",
			ids, m.Attrs[0], m.Attrs[1], m.Payload)
		close(done)
	})
	if err != nil {
		log.Fatal(err)
	}
	subID, err := subscriber.Subscribe([]bluedove.Range{
		{Low: 30, High: 60},
		{Low: 40, High: 100},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("registered subscription %v\n", subID)
	time.Sleep(300 * time.Millisecond) // let the stores land on matchers

	// A publisher (different client, different dispatcher) emits readings.
	publisher, err := c.NewClient(1, nil)
	if err != nil {
		log.Fatal(err)
	}
	readings := [][]float64{
		{22.5, 55}, // comfortable: no match
		{35.0, 20}, // hot but dry: no match
		{38.5, 70}, // hot and humid: match!
	}
	for _, r := range readings {
		if err := publisher.Publish(r, []byte("sensor-17")); err != nil {
			log.Fatal(err)
		}
	}

	select {
	case <-done:
		fmt.Println("delivered exactly the matching reading — done")
	case <-time.After(5 * time.Second):
		log.Fatal("no delivery arrived")
	}
}
