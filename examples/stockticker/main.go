// Stock-quote distribution with indirect (polled) delivery — the paper's
// model for subscribers "such as mobile phones that may not be able to
// listen on an IP/port waiting for incoming messages" (Section II-B): the
// dispatcher hosts a per-subscriber queue that the client polls. Run with:
//
//	go run ./examples/stockticker
package main

import (
	"fmt"
	"log"
	"math/rand"
	"time"

	"bluedove"
)

// Symbols are mapped onto a numeric dimension: each symbol owns one unit
// interval [i, i+1).
var symbols = []string{"ACME", "GLOBEX", "INITECH", "UMBRELLA", "WAYNE"}

func symbolRange(sym string) bluedove.Range {
	for i, s := range symbols {
		if s == sym {
			return bluedove.Range{Low: float64(i), High: float64(i + 1)}
		}
	}
	panic("unknown symbol " + sym)
}

func main() {
	// Dimensions: symbol (categorical), price, volume.
	space := bluedove.MustSpace(
		bluedove.Dimension{Name: "symbol", Min: 0, Max: float64(len(symbols))},
		bluedove.Dimension{Name: "price", Min: 0, Max: 10000},
		bluedove.Dimension{Name: "volume", Min: 0, Max: 1e6},
	)
	c, err := bluedove.StartCluster(bluedove.ClusterOptions{
		Space:          space,
		Matchers:       5,
		Dispatchers:    2,
		GossipInterval: 100 * time.Millisecond,
		ReportInterval: 100 * time.Millisecond,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer c.Close()
	if err := c.WaitForTable(1, 5*time.Second); err != nil {
		log.Fatal(err)
	}

	// A mobile client that cannot accept inbound connections: it registers
	// with no delivery handler and polls the dispatcher-hosted queue.
	mobile, err := c.NewClient(0, nil)
	if err != nil {
		log.Fatal(err)
	}
	// Interested in large ACME trades above $50.
	if _, err := mobile.Subscribe([]bluedove.Range{
		symbolRange("ACME"),
		{Low: 50, High: 10000},
		{Low: 10000, High: 1e6},
	}); err != nil {
		log.Fatal(err)
	}
	time.Sleep(300 * time.Millisecond)

	// The exchange feed publishes a burst of trades.
	feed, err := c.NewClient(1, nil)
	if err != nil {
		log.Fatal(err)
	}
	rng := rand.New(rand.NewSource(11))
	want := 0
	for i := 0; i < 200; i++ {
		sym := symbols[rng.Intn(len(symbols))]
		price := rng.Float64() * 200
		volume := float64(rng.Intn(100000))
		if sym == "ACME" && price >= 50 && volume >= 10000 {
			want++
		}
		symVal := symbolRange(sym).Low + 0.5
		if err := feed.Publish([]float64{symVal, price, volume},
			[]byte(fmt.Sprintf("%s %.2f x%0.f", sym, price, volume))); err != nil {
			log.Fatal(err)
		}
	}

	// The mobile client wakes up periodically and drains its queue.
	got := 0
	deadline := time.Now().Add(8 * time.Second)
	for time.Now().Before(deadline) && got < want {
		time.Sleep(200 * time.Millisecond)
		ticks, err := mobile.Poll(64)
		if err != nil {
			log.Fatal(err)
		}
		for _, tk := range ticks {
			fmt.Printf("tick: %s\n", tk.Msg.Payload)
			got++
		}
	}
	fmt.Printf("received %d large ACME trades (expected %d) via polling\n", got, want)
	if got != want {
		log.Fatal("delivery mismatch")
	}
}
