// Multi-tenant pub/sub — the paper's Section VI direction of dividing
// dispatchers and matchers into subsets per application: two applications
// with different attribute spaces run on isolated server subsets under one
// manager; a failure in one never touches the other. Run with:
//
//	go run ./examples/multitenant
package main

import (
	"fmt"
	"log"
	"sync/atomic"
	"time"

	"bluedove"
)

func main() {
	mgr := bluedove.NewTenantManager(bluedove.TenantOptions{
		Defaults: bluedove.ClusterOptions{
			Dispatchers:    1,
			GossipInterval: 100 * time.Millisecond,
			ReportInterval: 100 * time.Millisecond,
			FailAfter:      time.Second,
			RecoveryDelay:  500 * time.Millisecond,
		},
	})
	defer mgr.Close()

	// Tenant 1: city traffic (4 attributes, 6 matchers).
	traffic, err := mgr.Create(bluedove.TenantSpec{
		Name: "traffic",
		Space: bluedove.MustSpace(
			bluedove.Dimension{Name: "longitude", Min: -180, Max: 180},
			bluedove.Dimension{Name: "latitude", Min: -90, Max: 90},
			bluedove.Dimension{Name: "speed", Min: 0, Max: 120},
			bluedove.Dimension{Name: "hour", Min: 0, Max: 24},
		),
		Matchers: 6,
	})
	if err != nil {
		log.Fatal(err)
	}
	// Tenant 2: a stock feed (2 attributes, 3 matchers).
	stocks, err := mgr.Create(bluedove.TenantSpec{
		Name: "stocks",
		Space: bluedove.MustSpace(
			bluedove.Dimension{Name: "price", Min: 0, Max: 10000},
			bluedove.Dimension{Name: "volume", Min: 0, Max: 1e6},
		),
		Matchers: 3,
	})
	if err != nil {
		log.Fatal(err)
	}
	for _, c := range []*bluedove.Cluster{traffic, stocks} {
		if err := c.WaitForTable(1, 5*time.Second); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("tenants: %v (traffic: %d matchers, stocks: %d matchers)\n",
		mgr.Tenants(), traffic.Table().N(), stocks.Table().N())

	var stockHits atomic.Int64
	sc, err := stocks.NewClient(0, func(m *bluedove.Message, _ []bluedove.SubscriptionID) {
		stockHits.Add(1)
		fmt.Printf("  stocks: trade at $%.2f x%.0f\n", m.Attrs[0], m.Attrs[1])
	})
	if err != nil {
		log.Fatal(err)
	}
	if _, err := sc.Subscribe([]bluedove.Range{{Low: 100, High: 200}, {Low: 0, High: 1e6}}); err != nil {
		log.Fatal(err)
	}
	time.Sleep(300 * time.Millisecond)

	// Crash a matcher in the traffic tenant...
	victim := traffic.MatcherIDs()[0]
	if err := traffic.CrashMatcher(victim); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("crashed %v in tenant %q\n", victim, "traffic")

	// ...the stocks tenant keeps delivering instantly, unaffected.
	if err := sc.Publish([]float64{150, 900}, nil); err != nil {
		log.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) && stockHits.Load() == 0 {
		time.Sleep(10 * time.Millisecond)
	}
	if stockHits.Load() == 0 {
		log.Fatal("stocks tenant was disrupted")
	}

	// And the traffic tenant recovers on its own.
	deadline = time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if tab := traffic.Table(); tab != nil && !tab.HasMatcher(victim) {
			break
		}
		time.Sleep(50 * time.Millisecond)
	}
	fmt.Printf("traffic tenant recovered: %d matchers remain; stocks never noticed\n",
		traffic.Table().N())
}
