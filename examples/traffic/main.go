// Traffic monitoring — the scenario that motivates the paper's
// introduction: road sensors publish messages with longitude, latitude,
// speed and timestamp attributes; drivers subscribe to congestion in the
// rectangles covering their routes ("the driver wants messages where the
// vehicle speed is in [0, 25) mph and the location is in a rectangular
// area"). Run with:
//
//	go run ./examples/traffic
package main

import (
	"fmt"
	"log"
	"math/rand"
	"sync/atomic"
	"time"

	"bluedove"
)

func main() {
	// The paper's example space (Section II-A): longitude, latitude, speed,
	// plus a time-of-day dimension.
	space := bluedove.MustSpace(
		bluedove.Dimension{Name: "longitude", Min: -180, Max: 180},
		bluedove.Dimension{Name: "latitude", Min: -90, Max: 90},
		bluedove.Dimension{Name: "speed", Min: 0, Max: 120},
		bluedove.Dimension{Name: "hour", Min: 0, Max: 24},
	)
	c, err := bluedove.StartCluster(bluedove.ClusterOptions{
		Space:          space,
		Matchers:       6,
		Dispatchers:    2,
		GossipInterval: 100 * time.Millisecond,
		ReportInterval: 100 * time.Millisecond,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer c.Close()
	if err := c.WaitForTable(1, 5*time.Second); err != nil {
		log.Fatal(err)
	}

	// Drivers subscribe to congestion (speed < 25 mph) in their commute
	// rectangles — the paper's running example is the [-42,-41)×[70,74)
	// corridor.
	type driver struct {
		name string
		rect [2]bluedove.Range // longitude, latitude
	}
	drivers := []driver{
		{"alice", [2]bluedove.Range{{Low: -42, High: -41}, {Low: 70, High: 74}}},
		{"bob", [2]bluedove.Range{{Low: -74.5, High: -73.5}, {Low: 40.4, High: 41}}},
		{"carol", [2]bluedove.Range{{Low: -0.5, High: 0.5}, {Low: 51, High: 52}}},
	}
	var alerts atomic.Int64
	for _, d := range drivers {
		d := d
		cl, err := c.NewClient(0, func(m *bluedove.Message, _ []bluedove.SubscriptionID) {
			alerts.Add(1)
			fmt.Printf("  -> %s: congestion at (%.2f, %.2f), %.0f mph\n",
				d.name, m.Attrs[0], m.Attrs[1], m.Attrs[2])
		})
		if err != nil {
			log.Fatal(err)
		}
		if _, err := cl.Subscribe([]bluedove.Range{
			d.rect[0], d.rect[1],
			{Low: 0, High: 25}, // congestion: slow traffic only
			{Low: 0, High: 24}, // any time of day
		}); err != nil {
			log.Fatal(err)
		}
	}
	time.Sleep(300 * time.Millisecond)

	// Road sensors publish readings: some in the drivers' areas (congested
	// and free-flowing), most elsewhere.
	sensors, err := c.NewClient(1, nil)
	if err != nil {
		log.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	published, expect := 0, 0
	emit := func(lon, lat, speed, hour float64) {
		if err := sensors.Publish([]float64{lon, lat, speed, hour}, nil); err != nil {
			log.Fatal(err)
		}
		published++
		for _, d := range drivers {
			if d.rect[0].Contains(lon) && d.rect[1].Contains(lat) && speed < 25 {
				expect++
			}
		}
	}
	emit(-41.5, 72, 12, 8.5)  // alice's corridor, crawling: alert
	emit(-41.5, 72, 55, 9)    // alice's corridor, free flow: no alert
	emit(-74.1, 40.7, 8, 18)  // bob's bridge, jammed: alert
	emit(0.1, 51.5, 3, 17.5)  // carol's junction, gridlock: alert
	for i := 0; i < 50; i++ { // background traffic across the world
		emit(rng.Float64()*360-180, rng.Float64()*180-90, rng.Float64()*120, rng.Float64()*24)
	}

	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) && int(alerts.Load()) < expect {
		time.Sleep(20 * time.Millisecond)
	}
	fmt.Printf("%d sensor readings published, %d congestion alerts delivered (expected %d)\n",
		published, alerts.Load(), expect)
	if int(alerts.Load()) != expect {
		log.Fatal("delivery mismatch")
	}
}
