// Failover: boot a persistent BlueDove cluster under a chaos controller,
// stream publications, crash a matcher mid-stream, and show that every
// acked publication is still delivered after the survivors take over the
// dead matcher's segments. Run with:
//
//	go run ./examples/failover
package main

import (
	"fmt"
	"log"
	"time"

	"bluedove"
)

func main() {
	space := bluedove.MustSpace(
		bluedove.Dimension{Name: "price", Min: 0, Max: 1000},
		bluedove.Dimension{Name: "volume", Min: 0, Max: 1000},
	)

	// The chaos controller wraps every transport in the cluster; seed 1
	// makes the fault schedule reproducible.
	ctrl := bluedove.NewChaosController(1)
	defer ctrl.Close()

	// Persistent mode retains each publication until a matcher acks it, so
	// messages in flight when the matcher dies are retransmitted to the
	// survivors once recovery reassigns the dead matcher's segments.
	c, err := bluedove.StartCluster(bluedove.ClusterOptions{
		Space:          space,
		Matchers:       4,
		Dispatchers:    2,
		GossipInterval: 50 * time.Millisecond,
		FailAfter:      500 * time.Millisecond,
		ReportInterval: 50 * time.Millisecond,
		RecoveryDelay:  200 * time.Millisecond,
		Persistent:     true,
		RetryInterval:  100 * time.Millisecond,
		Chaos:          ctrl,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer c.Close()
	if err := c.WaitForTable(1, 5*time.Second); err != nil {
		log.Fatal(err)
	}

	// A full-space subscriber, audited: the auditor knows every publication
	// and flags any that never arrive.
	full := []bluedove.Range{{Low: 0, High: 1000}, {Low: 0, High: 1000}}
	aud := bluedove.NewChaosAuditor()
	aud.Subscribed(1, full)
	subscriber, err := c.NewClient(0, func(m *bluedove.Message, _ []bluedove.SubscriptionID) {
		aud.Delivered(1, m)
	})
	if err != nil {
		log.Fatal(err)
	}
	if _, err := subscriber.Subscribe(full); err != nil {
		log.Fatal(err)
	}
	time.Sleep(300 * time.Millisecond) // let the stores land on matchers

	publisher, err := c.NewClient(1, nil)
	if err != nil {
		log.Fatal(err)
	}

	// Publish a paced stream; a third of the way in, crash one matcher.
	const total = 300
	victim := c.MatcherIDs()[0]
	for i := 0; i < total; i++ {
		if i == total/3 {
			fmt.Printf("crashing matcher %v at publication %d/%d\n", victim, i, total)
			if err := c.CrashMatcher(victim); err != nil {
				log.Fatal(err)
			}
		}
		token := fmt.Sprintf("tick-%03d", i)
		attrs := []float64{float64((i * 37) % 1000), float64((i * 59) % 1000)}
		if err := publisher.Publish(attrs, []byte(token)); err != nil {
			log.Fatal(err)
		}
		aud.Published(token, attrs)
		time.Sleep(2 * time.Millisecond)
	}

	// Wait until every acked publication has been delivered at least once.
	if err := aud.WaitComplete(20 * time.Second); err != nil {
		log.Fatalf("delivery accounting failed: %v", err)
	}
	if err := c.WaitConverged(10 * time.Second); err != nil {
		log.Fatalf("survivors did not converge: %v", err)
	}
	fmt.Printf("all %d acked publications delivered (%d duplicate deliveries from retransmission)\n",
		total, aud.Duplicates())
	fmt.Println("survivors converged on a table without the dead matcher — done")
}
