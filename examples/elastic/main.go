// Elasticity and fault tolerance, live: a cluster grows by splitting the
// most loaded matcher's segments when a new matcher joins (paper Section
// III-C), and survives a matcher crash — after failure detection the
// survivors take over and no further messages are lost (Section IV-E).
// Run with:
//
//	go run ./examples/elastic
package main

import (
	"fmt"
	"log"
	"sync/atomic"
	"time"

	"bluedove"
)

func main() {
	space := bluedove.UniformSpace(4, 1000)
	c, err := bluedove.StartCluster(bluedove.ClusterOptions{
		Space:          space,
		Matchers:       3,
		Dispatchers:    2,
		GossipInterval: 100 * time.Millisecond,
		ReportInterval: 100 * time.Millisecond,
		FailAfter:      time.Second,
		RecoveryDelay:  500 * time.Millisecond,
		PruneGrace:     500 * time.Millisecond,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer c.Close()
	if err := c.WaitForTable(1, 5*time.Second); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("cluster up: %d matchers, table v%d\n", c.Table().N(), c.Table().Version())

	var delivered atomic.Int64
	subscriber, err := c.NewClient(0, func(*bluedove.Message, []bluedove.SubscriptionID) {
		delivered.Add(1)
	})
	if err != nil {
		log.Fatal(err)
	}
	// A catch-all subscription: every publication must be delivered, so
	// delivery counts expose any loss across membership changes.
	if _, err := subscriber.Subscribe([]bluedove.Range{
		{Low: 0, High: 1000}, {Low: 0, High: 1000}, {Low: 0, High: 1000}, {Low: 0, High: 1000},
	}); err != nil {
		log.Fatal(err)
	}
	time.Sleep(300 * time.Millisecond)

	publisher, err := c.NewClient(1, nil)
	if err != nil {
		log.Fatal(err)
	}
	publish := func(n int) {
		for i := 0; i < n; i++ {
			v := float64((i * 37) % 1000)
			if err := publisher.Publish([]float64{v, 999 - v, v / 2, 500}, nil); err != nil {
				log.Fatal(err)
			}
		}
	}
	waitDelivered := func(want int64, within time.Duration) {
		deadline := time.Now().Add(within)
		for time.Now().Before(deadline) && delivered.Load() < want {
			time.Sleep(20 * time.Millisecond)
		}
		fmt.Printf("  delivered %d/%d\n", delivered.Load(), want)
	}

	fmt.Println("phase 1: steady state, 3 matchers")
	publish(100)
	waitDelivered(100, 5*time.Second)

	fmt.Println("phase 2: elastic growth — a new matcher joins and takes half of the most loaded segments")
	id, err := c.AddMatcher()
	if err != nil {
		log.Fatal(err)
	}
	if err := c.WaitForTable(2, 5*time.Second); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  matcher %v joined: table v%d now has %d matchers\n", id, c.Table().Version(), c.Table().N())
	publish(100)
	waitDelivered(200, 5*time.Second)

	fmt.Println("phase 3: crash — kill a matcher without warning")
	victim := c.MatcherIDs()[0]
	if err := c.CrashMatcher(victim); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  crashed %v; waiting for failure detection and recovery...\n", victim)
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if t := c.Table(); t != nil && !t.HasMatcher(victim) {
			break
		}
		time.Sleep(50 * time.Millisecond)
	}
	fmt.Printf("  recovered: table v%d, %d matchers\n", c.Table().Version(), c.Table().N())

	publish(100)
	waitDelivered(300, 8*time.Second)
	if delivered.Load() < 300 {
		log.Fatal("messages lost after recovery")
	}
	fmt.Println("all publications after recovery were delivered — no steady-state loss")
}
