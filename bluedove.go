// Package bluedove is a scalable and elastic attribute-based
// publish/subscribe service — a from-scratch Go implementation of the
// system described in "A Scalable and Elastic Publish/Subscribe Service"
// (Li, Ye, Kim, Chen, Lei — IPDPS 2011).
//
// BlueDove organizes servers into a two-tier, gossip-based one-hop overlay:
// Internet-facing dispatchers accept subscriptions and publications, and
// back-end matchers store subscriptions and perform matching. Its core
// techniques are:
//
//   - mPartition: each searchable dimension's value range is split into one
//     segment per matcher; a subscription is stored on every matcher whose
//     segment overlaps its predicate, once along each dimension. Every
//     publication therefore has k candidate matchers, any one of which can
//     match it completely after a single forwarding hop.
//   - Performance-aware forwarding: matchers report per-dimension load
//     (subscription counts, queue lengths, arrival and matching rates);
//     dispatchers pick each message's cheapest candidate, extrapolating
//     queue lengths between reports.
//   - Elasticity and fault tolerance: joining matchers take half of the
//     most loaded matcher's segment per dimension; failed matchers are
//     detected by gossip and their subscriptions re-installed on the
//     survivors.
//
// # Quick start
//
//	space := bluedove.MustSpace(
//	    bluedove.Dimension{Name: "price", Min: 0, Max: 1000},
//	    bluedove.Dimension{Name: "volume", Min: 0, Max: 1e6},
//	)
//	c, err := bluedove.StartCluster(bluedove.ClusterOptions{Space: space})
//	defer c.Close()
//	sub, _ := c.NewClient(0, func(m *bluedove.Message, _ []bluedove.SubscriptionID) {
//	    fmt.Println("matched:", m.Attrs)
//	})
//	sub.Subscribe([]bluedove.Range{{Low: 100, High: 200}, {Low: 0, High: 1e6}})
//	pub, _ := c.NewClient(0, nil)
//	pub.Publish([]float64{150, 5000}, []byte("tick"))
//
// The internal packages hold the implementation: internal/partition
// (mPartition), internal/forward (forwarding policies), internal/gossip
// (the overlay), internal/matcher and internal/dispatcher (the two tiers),
// internal/sim (the discrete-event evaluation harness), and
// internal/experiment (reproductions of every figure in the paper's
// evaluation).
package bluedove

import (
	"bluedove/internal/chaos"
	"bluedove/internal/client"
	"bluedove/internal/cluster"
	"bluedove/internal/core"
	"bluedove/internal/forward"
	"bluedove/internal/placement"
	"bluedove/internal/telemetry"
	"bluedove/internal/tenant"
)

// Core data model.
type (
	// Dimension is one attribute axis of the space.
	Dimension = core.Dimension
	// Space is a k-dimensional attribute space.
	Space = core.Space
	// Range is a half-open predicate interval [Low, High).
	Range = core.Range
	// Message is a publication: a point in the attribute space.
	Message = core.Message
	// Subscription is a conjunction of per-dimension range predicates.
	Subscription = core.Subscription
	// SubscriptionID identifies a registered subscription.
	SubscriptionID = core.SubscriptionID
	// SubscriberID identifies a client.
	SubscriberID = core.SubscriberID
	// NodeID identifies a server.
	NodeID = core.NodeID
)

// NewSpace constructs a Space, validating every dimension.
var NewSpace = core.NewSpace

// MustSpace is NewSpace but panics on error.
var MustSpace = core.MustSpace

// UniformSpace returns k dimensions of equal extent (the paper's evaluation
// space is UniformSpace(4, 1000)).
var UniformSpace = core.UniformSpace

// Cluster deployment.
type (
	// ClusterOptions configures StartCluster.
	ClusterOptions = cluster.Options
	// Cluster is a running BlueDove deployment.
	Cluster = cluster.Cluster
	// Client publishes and subscribes through a dispatcher.
	Client = client.Client
)

// StartCluster boots a BlueDove deployment (in-process mesh by default; set
// Options.TCP for loopback TCP).
var StartCluster = cluster.Start

// Forwarding policies (paper Section III-B).
type (
	// Adaptive is the default queue-extrapolating policy.
	Adaptive = forward.Adaptive
	// ResponseTime ranks on the last report without extrapolation.
	ResponseTime = forward.ResponseTime
	// SubscriptionAmount ranks on stored subscription counts.
	SubscriptionAmount = forward.SubscriptionAmount
)

// Placement strategies (the paper's three compared systems).
type (
	// BlueDovePlacement is mPartition.
	BlueDovePlacement = placement.BlueDove
	// P2PPlacement is the single-dimension DHT baseline.
	P2PPlacement = placement.P2P
	// FullRepPlacement replicates every subscription everywhere.
	FullRepPlacement = placement.FullRep
)

// Fault injection (deterministic chaos testing; see internal/chaos).
type (
	// ChaosController applies seeded fault rules — drops, delays,
	// duplicates, partitions, kills — to every transport wrapped in it
	// (set ClusterOptions.Chaos).
	ChaosController = chaos.Controller
	// ChaosScenario sequences timed fault steps against a controller.
	ChaosScenario = chaos.Scenario
	// ChaosAuditor checks delivery accounting under faults: every acked
	// publication delivered to every matching subscriber, none spurious.
	ChaosAuditor = chaos.Auditor
	// ChaosLinkFaults are per-link drop/duplicate/delay probabilities.
	ChaosLinkFaults = chaos.LinkFaults
)

// NewChaosController creates a fault controller; the seed fully determines
// the fault schedule.
var NewChaosController = chaos.NewController

// NewChaosScenario starts an empty timed fault schedule.
var NewChaosScenario = chaos.NewScenario

// NewChaosAuditor creates an empty delivery-accounting auditor.
var NewChaosAuditor = chaos.NewAuditor

// Observability (hop-level tracing, node metrics registry, admin surface;
// see internal/telemetry). Enable on a cluster with
// ClusterOptions{Telemetry: true, TraceSampleRate: r, Admin: true}.
type (
	// Telemetry bundles one node's metrics registry, trace store and
	// sampler.
	Telemetry = telemetry.Telemetry
	// TelemetryOptions configures NewTelemetry.
	TelemetryOptions = telemetry.Options
	// TraceCtx is the per-publication hop-level trace context carried in
	// wire frames for sampled publications.
	TraceCtx = core.TraceCtx
)

// NewTelemetry builds a standalone node telemetry bundle (clusters build
// per-node bundles themselves when ClusterOptions enables telemetry).
var NewTelemetry = telemetry.New

// ServeAdmin starts the admin HTTP surface (/metrics, /debug/vars,
// /debug/traces, pprof) for a telemetry bundle.
var ServeAdmin = telemetry.Serve

// CheckPrometheusText structurally validates a /metrics exposition and
// checks the required series are present.
var CheckPrometheusText = telemetry.CheckPrometheusText

// Multi-tenancy (paper Section VI: separate server subsets per application).
type (
	// TenantManager hosts independent per-application deployments.
	TenantManager = tenant.Manager
	// TenantOptions configures NewTenantManager.
	TenantOptions = tenant.Options
	// TenantSpec describes one tenant deployment.
	TenantSpec = tenant.Spec
)

// NewTenantManager builds an empty multi-tenant manager.
var NewTenantManager = tenant.NewManager
