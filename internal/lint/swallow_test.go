// Package lint holds repo-wide static checks that run as ordinary tests.
//
// TestNoSwallowedDurabilityErrors is the errcheck-style guard this PR's
// history demanded: both journals used to silently swallow append errors
// (`_ = d.jnl.Append(...)`), so a node could lose its durability guarantee
// with zero operator signal. Durability-relevant error returns must be
// handled (counted, logged, or propagated) — never discarded with `_ =`.
package lint

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"path/filepath"
	"runtime"
	"strings"
	"testing"
)

// swallowMethods are the durability-relevant methods whose error returns
// must never be discarded with `_ =` in non-test code. Sync covers both
// store fsyncs and file fsyncs (a swallowed fsync error is exactly the bug
// class the health machine exists for); Append and Snapshot are the two
// journal mutation paths.
var swallowMethods = map[string]bool{
	"Append":   true,
	"Snapshot": true,
	"Sync":     true,
}

func repoRoot(t *testing.T) string {
	t.Helper()
	_, file, _, ok := runtime.Caller(0)
	if !ok {
		t.Fatal("cannot locate lint package source")
	}
	return filepath.Dir(filepath.Dir(filepath.Dir(file))) // internal/lint/ -> repo root
}

func TestNoSwallowedDurabilityErrors(t *testing.T) {
	root := repoRoot(t)
	fset := token.NewFileSet()
	var violations []string

	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if name == "testdata" || strings.HasPrefix(name, ".") {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") || strings.HasSuffix(path, "_test.go") {
			return nil
		}
		f, perr := parser.ParseFile(fset, path, nil, 0)
		if perr != nil {
			return perr
		}
		ast.Inspect(f, func(n ast.Node) bool {
			asn, ok := n.(*ast.AssignStmt)
			if !ok || len(asn.Lhs) != 1 || len(asn.Rhs) != 1 {
				return true
			}
			if id, ok := asn.Lhs[0].(*ast.Ident); !ok || id.Name != "_" {
				return true
			}
			call, ok := asn.Rhs[0].(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok || !swallowMethods[sel.Sel.Name] {
				return true
			}
			rel, _ := filepath.Rel(root, path)
			violations = append(violations, fmt.Sprintf(
				"%s:%d: `_ = x.%s(...)` swallows a durability-relevant error",
				rel, fset.Position(asn.Pos()).Line, sel.Sel.Name))
			return true
		})
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range violations {
		t.Error(v)
	}
	if len(violations) > 0 {
		t.Fatal("durability error returns must be counted, logged, or propagated — not discarded with `_ =`")
	}
}
