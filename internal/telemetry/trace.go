package telemetry

import (
	"sync"
	"sync/atomic"

	"bluedove/internal/core"
)

// Sampler decides which publications get a trace context. The decision is
// one atomic load plus a couple of integer ops — and at rate 0 it is a
// single load-and-branch, so disabled tracing stays off the allocation and
// contention profile of the zero-alloc forward path.
type Sampler struct {
	// threshold is rate scaled to [0, 2^32]; a publication is sampled when
	// a 32-bit hash of the sequence counter falls below it.
	threshold atomic.Uint64
	seq       atomic.Uint64
}

// NewSampler creates a sampler at the given rate (clamped to [0, 1]).
func NewSampler(rate float64) *Sampler {
	s := &Sampler{}
	s.SetRate(rate)
	return s
}

// SetRate changes the sampling rate (clamped to [0, 1]). Safe concurrently
// with Sample.
func (s *Sampler) SetRate(rate float64) {
	if rate < 0 || rate != rate { // NaN guards as 0
		rate = 0
	}
	if rate > 1 {
		rate = 1
	}
	s.threshold.Store(uint64(rate * (1 << 32)))
}

// Rate returns the current sampling rate.
func (s *Sampler) Rate() float64 {
	return float64(s.threshold.Load()) / (1 << 32)
}

// Sample reports whether the next publication should carry a trace.
func (s *Sampler) Sample() bool {
	t := s.threshold.Load()
	if t == 0 {
		return false
	}
	if t >= 1<<32 {
		return true
	}
	// splitmix64 finalizer over a Weyl sequence: cheap, lock-free, and
	// well-distributed even for adversarial call patterns.
	x := s.seq.Add(0x9E3779B97F4A7C15)
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	return x&0xFFFFFFFF < t
}

// Trace is one recorded trace: the context plus the message it traces.
type Trace struct {
	Msg core.MessageID
	Ctx core.TraceCtx
}

// maxPending bounds the dispatcher-side table of traces awaiting their ack.
const maxPending = 1024

// pendingSweepAge is how old (vs. the newest Await) a pending entry must be
// before the lazy sweep abandons it, in nanoseconds.
const pendingSweepAge = 30e9

// Tracer retains completed traces in a bounded ring and holds
// dispatcher-side trace contexts from forward until their ack returns. All
// methods are safe for concurrent use.
type Tracer struct {
	mu      sync.Mutex
	ring    []Trace
	next    int
	total   uint64
	pending map[core.MessageID]*pendingTrace

	// Abandoned counts pending traces dropped by capacity or age.
	abandoned uint64
}

type pendingTrace struct {
	ctx     *core.TraceCtx
	awaitAt int64
}

// NewTracer creates a tracer retaining up to capacity completed traces
// (minimum 16).
func NewTracer(capacity int) *Tracer {
	if capacity < 16 {
		capacity = 16
	}
	return &Tracer{ring: make([]Trace, 0, capacity), pending: map[core.MessageID]*pendingTrace{}}
}

// Record retains a completed (or as-complete-as-this-node-sees) trace.
func (t *Tracer) Record(msg core.MessageID, ctx *core.TraceCtx) {
	if ctx == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.record(Trace{Msg: msg, Ctx: *ctx})
}

func (t *Tracer) record(tr Trace) {
	t.total++
	if len(t.ring) < cap(t.ring) {
		t.ring = append(t.ring, tr)
		return
	}
	t.ring[t.next] = tr
	t.next = (t.next + 1) % len(t.ring)
}

// Await parks a dispatcher-side trace context until its forward ack
// returns. The table is bounded: at capacity, or when entries outlive the
// sweep age, the oldest are recorded as-is (ack hop missing) rather than
// leaking.
func (t *Tracer) Await(msg core.MessageID, ctx *core.TraceCtx, now int64) {
	if ctx == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if len(t.pending) >= maxPending {
		t.sweep(now)
	}
	t.pending[msg] = &pendingTrace{ctx: ctx, awaitAt: now}
}

// sweep abandons expired entries; if none expired, it abandons arbitrary
// entries down to 3/4 capacity so Await never blocks or grows unboundedly.
func (t *Tracer) sweep(now int64) {
	for id, p := range t.pending {
		if now-p.awaitAt > pendingSweepAge {
			t.record(Trace{Msg: id, Ctx: *p.ctx})
			t.abandoned++
			delete(t.pending, id)
		}
	}
	for id, p := range t.pending {
		if len(t.pending) < maxPending*3/4 {
			break
		}
		t.record(Trace{Msg: id, Ctx: *p.ctx})
		t.abandoned++
		delete(t.pending, id)
	}
}

// CompleteAck joins an acked trace context with the pending one (if any),
// records the union, and returns it. acked may carry only the matcher-side
// hops; the pending context contributes the dispatcher-side ones.
func (t *Tracer) CompleteAck(msg core.MessageID, acked *core.TraceCtx, now int64) core.TraceCtx {
	var ctx core.TraceCtx
	if acked != nil {
		ctx = *acked
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if p, ok := t.pending[msg]; ok {
		ctx.Merge(p.ctx)
		delete(t.pending, msg)
	}
	ctx.Stamp(core.HopAck, now)
	t.record(Trace{Msg: msg, Ctx: ctx})
	return ctx
}

// Recent returns up to max completed traces, newest first.
func (t *Tracer) Recent(max int) []Trace {
	t.mu.Lock()
	defer t.mu.Unlock()
	n := len(t.ring)
	if max <= 0 || max > n {
		max = n
	}
	out := make([]Trace, 0, max)
	// Newest element is just before next (once the ring wrapped) or at the
	// end (while still filling).
	newest := len(t.ring) - 1
	if len(t.ring) == cap(t.ring) && t.total > uint64(cap(t.ring)) {
		newest = (t.next - 1 + len(t.ring)) % len(t.ring)
	}
	for i := 0; i < max; i++ {
		out = append(out, t.ring[(newest-i+n)%n])
	}
	return out
}

// Total returns how many traces have been recorded (including overwritten
// ring entries).
func (t *Tracer) Total() uint64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.total
}

// PendingLen returns the number of traces awaiting their ack.
func (t *Tracer) PendingLen() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.pending)
}

// Abandoned returns how many pending traces were dropped unacked.
func (t *Tracer) Abandoned() uint64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.abandoned
}
