// Package telemetry is BlueDove's end-to-end observability subsystem:
// hop-level publication tracing, a per-node metrics registry with stable
// dotted names, and an admin HTTP surface (Prometheus /metrics, JSON
// /debug/vars, recent traces at /debug/traces, and pprof).
//
// Everything takes explicit timestamps, so the same instrumentation runs
// under the wall clock in the real cluster and under virtual time in
// internal/sim. Tracing is sampled: untraced publications (the common
// case) cost one nil check per hop and one zero byte per frame, keeping
// the zero-allocation forward path intact.
package telemetry

import "time"

// Options configures a node's telemetry.
type Options struct {
	// SampleRate is the fraction of publications traced hop-by-hop
	// (0 disables tracing, 1 traces everything).
	SampleRate float64
	// TraceCapacity bounds the retained completed traces (default 256).
	TraceCapacity int
	// Now supplies timestamps for snapshot reads and trace bookkeeping;
	// defaults to the wall clock. The simulator passes its virtual clock.
	Now func() int64
	// Base labels (typically node and role) attach to every metric.
	Base []Label
}

// Telemetry bundles one node's registry, tracer and sampler.
type Telemetry struct {
	Registry *Registry
	Tracer   *Tracer
	Sampler  *Sampler

	now func() int64
}

// New builds a node telemetry bundle.
func New(opts Options) *Telemetry {
	if opts.TraceCapacity <= 0 {
		opts.TraceCapacity = 256
	}
	if opts.Now == nil {
		opts.Now = func() int64 { return time.Now().UnixNano() }
	}
	return &Telemetry{
		Registry: NewRegistry(opts.Base...),
		Tracer:   NewTracer(opts.TraceCapacity),
		Sampler:  NewSampler(opts.SampleRate),
		now:      opts.Now,
	}
}

// Now returns the bundle's current timestamp.
func (t *Telemetry) Now() int64 { return t.now() }
