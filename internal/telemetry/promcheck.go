package telemetry

import (
	"fmt"
	"strconv"
	"strings"
)

// CheckPrometheusText validates a /metrics scrape: every line must be a
// well-formed comment or sample, sample names must be legal, TYPE lines
// must not repeat, and every name in required must appear as a sample
// (required names match ignoring labels and summary suffixes). It returns
// the first problem found, or nil.
//
// This is a deliberately small structural lint — enough to fail CI on a
// malformed exposition or a silently missing series, not a full parser.
func CheckPrometheusText(data []byte, required []string) error {
	seen := map[string]bool{}
	typed := map[string]bool{}
	lineNo := 0
	for _, line := range strings.Split(string(data), "\n") {
		lineNo++
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			fields := strings.Fields(line)
			if len(fields) >= 2 && fields[1] == "TYPE" {
				if len(fields) != 4 {
					return fmt.Errorf("line %d: malformed TYPE comment: %q", lineNo, line)
				}
				name := fields[2]
				if typed[name] {
					return fmt.Errorf("line %d: duplicate TYPE for %s", lineNo, name)
				}
				switch fields[3] {
				case "counter", "gauge", "summary", "histogram", "untyped":
				default:
					return fmt.Errorf("line %d: unknown metric type %q", lineNo, fields[3])
				}
				typed[name] = true
			}
			continue
		}
		name, value, err := parseSampleLine(line)
		if err != nil {
			return fmt.Errorf("line %d: %v (%q)", lineNo, err, line)
		}
		if _, err := strconv.ParseFloat(value, 64); err != nil {
			return fmt.Errorf("line %d: non-numeric sample value %q", lineNo, value)
		}
		seen[name] = true
		// A summary's _sum/_count also witness the base name.
		for _, suf := range []string{"_sum", "_count", "_bucket"} {
			if base, ok := strings.CutSuffix(name, suf); ok {
				seen[base] = true
			}
		}
	}
	for _, name := range required {
		if !seen[name] {
			return fmt.Errorf("required series %s missing from scrape", name)
		}
	}
	return nil
}

// parseSampleLine splits "name{labels} value [timestamp]" and validates the
// name and label syntax.
func parseSampleLine(line string) (name, value string, err error) {
	rest := line
	if i := strings.IndexByte(rest, '{'); i >= 0 {
		name = rest[:i]
		j := strings.IndexByte(rest, '}')
		if j < i {
			return "", "", fmt.Errorf("unterminated label set")
		}
		if err := checkLabels(rest[i+1 : j]); err != nil {
			return "", "", err
		}
		rest = strings.TrimSpace(rest[j+1:])
	} else {
		fields := strings.Fields(rest)
		if len(fields) < 2 {
			return "", "", fmt.Errorf("sample without value")
		}
		name = fields[0]
		rest = strings.Join(fields[1:], " ")
	}
	if !validMetricName(name) {
		return "", "", fmt.Errorf("invalid metric name %q", name)
	}
	fields := strings.Fields(rest)
	if len(fields) < 1 || len(fields) > 2 {
		return "", "", fmt.Errorf("expected value [timestamp], got %q", rest)
	}
	return name, fields[0], nil
}

func checkLabels(s string) error {
	// Label values may contain escaped quotes; walk instead of splitting.
	for len(s) > 0 {
		eq := strings.IndexByte(s, '=')
		if eq <= 0 {
			return fmt.Errorf("malformed label pair in %q", s)
		}
		if !validLabelKey(s[:eq]) {
			return fmt.Errorf("invalid label name %q", s[:eq])
		}
		s = s[eq+1:]
		if len(s) == 0 || s[0] != '"' {
			return fmt.Errorf("unquoted label value")
		}
		s = s[1:]
		for {
			i := strings.IndexByte(s, '"')
			if i < 0 {
				return fmt.Errorf("unterminated label value")
			}
			if i > 0 && s[i-1] == '\\' {
				// Count the backslash run: an even run means the quote is real.
				bs := 0
				for j := i - 1; j >= 0 && s[j] == '\\'; j-- {
					bs++
				}
				if bs%2 == 1 {
					s = s[i+1:]
					continue
				}
			}
			s = s[i+1:]
			break
		}
		s = strings.TrimPrefix(s, ",")
	}
	return nil
}

func validMetricName(name string) bool {
	if name == "" {
		return false
	}
	for i, c := range name {
		ok := c == '_' || c == ':' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(i > 0 && c >= '0' && c <= '9')
		if !ok {
			return false
		}
	}
	return true
}

func validLabelKey(name string) bool {
	if name == "" {
		return false
	}
	for i, c := range name {
		ok := c == '_' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(i > 0 && c >= '0' && c <= '9')
		if !ok {
			return false
		}
	}
	return true
}
