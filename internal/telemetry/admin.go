package telemetry

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"time"

	"bluedove/internal/core"
)

// NewHandler builds the admin HTTP handler for one node:
//
//	/metrics       Prometheus text exposition
//	/debug/vars    JSON metrics snapshot (expvar style)
//	/debug/traces  recent completed traces (?n= bounds the count)
//	/debug/pprof/  the standard runtime profiles
func NewHandler(t *Telemetry) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		t.Registry.WritePrometheus(w, t.Now())
	})
	mux.HandleFunc("/debug/vars", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		if err := t.Registry.WriteJSON(w, t.Now()); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	mux.HandleFunc("/debug/traces", func(w http.ResponseWriter, r *http.Request) {
		n := 0
		fmt.Sscanf(r.URL.Query().Get("n"), "%d", &n)
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		writeTraces(w, t, n)
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// traceJSON is the /debug/traces wire form of one trace: absolute
// timestamps plus per-hop deltas from the first stamped hop, which is what
// a human reading a trace actually wants.
type traceJSON struct {
	Trace      string           `json:"trace"`
	Msg        string           `json:"msg"`
	Dispatcher core.NodeID      `json:"dispatcher"`
	Matcher    core.NodeID      `json:"matcher"`
	Dim        int              `json:"dim"`
	Complete   bool             `json:"complete"`
	Hops       map[string]int64 `json:"hops_ns"`
	Deltas     map[string]int64 `json:"deltas_us"`
}

func writeTraces(w http.ResponseWriter, t *Telemetry, n int) {
	recent := t.Tracer.Recent(n)
	doc := struct {
		Total     uint64      `json:"total"`
		Pending   int         `json:"pending"`
		Abandoned uint64      `json:"abandoned"`
		Traces    []traceJSON `json:"traces"`
	}{Total: t.Tracer.Total(), Pending: t.Tracer.PendingLen(),
		Abandoned: t.Tracer.Abandoned(), Traces: []traceJSON{}}
	for _, tr := range recent {
		tj := traceJSON{
			Trace:      tr.Ctx.ID.String(),
			Msg:        tr.Msg.String(),
			Dispatcher: tr.Ctx.Dispatcher,
			Matcher:    tr.Ctx.Matcher,
			Dim:        tr.Ctx.Dim,
			Complete:   tr.Ctx.Complete(),
			Hops:       map[string]int64{},
			Deltas:     map[string]int64{},
		}
		base := int64(0)
		for h := core.Hop(0); h < core.HopCount; h++ {
			if ts := tr.Ctx.Hops[h]; ts != 0 && (base == 0 || ts < base) {
				base = ts
			}
		}
		for h := core.Hop(0); h < core.HopCount; h++ {
			if ts := tr.Ctx.Hops[h]; ts != 0 {
				tj.Hops[h.String()] = ts
				tj.Deltas[h.String()] = (ts - base) / 1000
			}
		}
		doc.Traces = append(doc.Traces, tj)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(doc)
}

// Admin is a running admin HTTP listener.
type Admin struct {
	srv  *http.Server
	ln   net.Listener
	addr string
}

// Serve starts the admin surface on addr ("host:0" picks a free port).
func Serve(addr string, t *Telemetry) (*Admin, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("telemetry: admin listen %s: %w", addr, err)
	}
	a := &Admin{
		srv:  &http.Server{Handler: NewHandler(t), ReadHeaderTimeout: 5 * time.Second},
		ln:   ln,
		addr: ln.Addr().String(),
	}
	go a.srv.Serve(ln)
	return a, nil
}

// Addr returns the bound listen address.
func (a *Admin) Addr() string { return a.addr }

// Close stops the listener.
func (a *Admin) Close() error { return a.srv.Close() }
