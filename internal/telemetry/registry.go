package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"

	"bluedove/internal/metrics"
)

// Label is one name=value pair attached to a metric.
type Label struct {
	Key, Value string
}

// L builds a label.
func L(key, value string) Label { return Label{Key: key, Value: value} }

// MetricKind discriminates registry entries.
type MetricKind int

// Registry metric kinds.
const (
	// KindCounter is a monotonically increasing count.
	KindCounter MetricKind = iota
	// KindGauge is an instantaneous value (possibly computed on read).
	KindGauge
	// KindHistogram is a latency/size distribution rendered as a
	// Prometheus summary (quantiles + _sum + _count).
	KindHistogram
)

// HistogramQuantiles are the quantiles every histogram renders.
var HistogramQuantiles = []float64{0.5, 0.9, 0.99}

// metricEntry is one registered metric.
type metricEntry struct {
	name   string
	labels []Label
	kind   MetricKind

	counter *metrics.Counter
	gauge   func(now int64) float64
	hist    *metrics.Histogram
	// scale multiplies values on read (1e-9 converts the nanosecond
	// histograms to the seconds Prometheus conventions expect).
	scale float64
	help  string
}

// Sample is one read metric value in a registry snapshot.
type Sample struct {
	Name   string      `json:"name"`
	Labels []Label     `json:"labels,omitempty"`
	Kind   MetricKind  `json:"-"`
	Value  float64     `json:"value"`
	Dist   *DistSample `json:"dist,omitempty"`
}

// DistSample is the distribution part of a histogram sample.
type DistSample struct {
	Count     int64     `json:"count"`
	Sum       float64   `json:"sum"`
	Max       float64   `json:"max"`
	Quantiles []float64 `json:"quantiles"` // aligned with HistogramQuantiles
}

// Registry holds a node's metrics under stable dotted names with labels and
// renders snapshots as Prometheus text or JSON. Every read takes an
// explicit timestamp so the same registry serves the wall-clock runtime and
// the virtual-clock simulator.
type Registry struct {
	mu      sync.Mutex
	base    []Label
	entries []*metricEntry
	index   map[string]int // name + rendered labels → entries index
}

// NewRegistry creates a registry; base labels (typically node and role) are
// attached to every metric.
func NewRegistry(base ...Label) *Registry {
	return &Registry{base: base, index: map[string]int{}}
}

// Base returns the registry's base labels.
func (r *Registry) Base() []Label {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]Label(nil), r.base...)
}

// BaseLabel returns the value of one base label ("" if absent).
func (r *Registry) BaseLabel(key string) string {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, l := range r.base {
		if l.Key == key {
			return l.Value
		}
	}
	return ""
}

func (r *Registry) add(e *metricEntry) {
	r.mu.Lock()
	defer r.mu.Unlock()
	key := e.name + "{" + renderLabels(e.labels) + "}"
	if i, ok := r.index[key]; ok {
		r.entries[i] = e // re-registration replaces (restarted component)
		return
	}
	r.index[key] = len(r.entries)
	r.entries = append(r.entries, e)
}

// Counter registers a counter under a dotted name.
func (r *Registry) Counter(name, help string, c *metrics.Counter, labels ...Label) {
	r.add(&metricEntry{name: name, labels: labels, kind: KindCounter, counter: c, help: help})
}

// Gauge registers a computed gauge. f is called with the snapshot timestamp
// on every read and must be safe for concurrent use.
func (r *Registry) Gauge(name, help string, f func(now int64) float64, labels ...Label) {
	r.add(&metricEntry{name: name, labels: labels, kind: KindGauge, gauge: f, help: help})
}

// Histogram registers a histogram. scale multiplies every rendered value
// (pass 1e-9 for nanosecond histograms rendered as seconds, 1 for raw).
func (r *Registry) Histogram(name, help string, h *metrics.Histogram, scale float64, labels ...Label) {
	if scale == 0 {
		scale = 1
	}
	r.add(&metricEntry{name: name, labels: labels, kind: KindHistogram, hist: h, scale: scale, help: help})
}

// Snapshot reads every metric at the given timestamp. Samples are sorted by
// name then labels, so renders are deterministic.
func (r *Registry) Snapshot(now int64) []Sample {
	r.mu.Lock()
	entries := append([]*metricEntry(nil), r.entries...)
	base := append([]Label(nil), r.base...)
	r.mu.Unlock()

	out := make([]Sample, 0, len(entries))
	for _, e := range entries {
		s := Sample{Name: e.name, Kind: e.kind}
		s.Labels = append(append([]Label(nil), base...), e.labels...)
		switch e.kind {
		case KindCounter:
			s.Value = float64(e.counter.Value())
		case KindGauge:
			s.Value = e.gauge(now)
		case KindHistogram:
			d := &DistSample{
				Count: e.hist.Count(),
				Sum:   e.hist.Mean() * float64(e.hist.Count()) * e.scale,
				Max:   float64(e.hist.Max()) * e.scale,
			}
			for _, q := range HistogramQuantiles {
				d.Quantiles = append(d.Quantiles, float64(e.hist.Quantile(q))*e.scale)
			}
			s.Dist = d
		}
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Name != out[j].Name {
			return out[i].Name < out[j].Name
		}
		return renderLabels(out[i].Labels) < renderLabels(out[j].Labels)
	})
	return out
}

// promName converts a dotted metric name to Prometheus form, prefixed with
// the system namespace: "dispatcher.forward_latency_seconds" →
// "bluedove_dispatcher_forward_latency_seconds".
func promName(name string) string {
	var sb strings.Builder
	sb.WriteString("bluedove_")
	for _, c := range name {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9', c == '_', c == ':':
			sb.WriteRune(c)
		default:
			sb.WriteByte('_')
		}
	}
	return sb.String()
}

func renderLabels(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	parts := make([]string, 0, len(labels))
	for _, l := range labels {
		parts = append(parts, fmt.Sprintf("%s=%q", promLabelKey(l.Key), escapeLabelValue(l.Value)))
	}
	sort.Strings(parts)
	return strings.Join(parts, ",")
}

func promLabelKey(k string) string {
	var sb strings.Builder
	for i, c := range k {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_':
			sb.WriteRune(c)
		case c >= '0' && c <= '9' && i > 0:
			sb.WriteRune(c)
		default:
			sb.WriteByte('_')
		}
	}
	return sb.String()
}

func escapeLabelValue(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	return v
}

func renderSeries(w io.Writer, name string, labels []Label, extra []Label, value float64) {
	all := renderLabels(append(append([]Label(nil), labels...), extra...))
	if all == "" {
		fmt.Fprintf(w, "%s %g\n", name, value)
		return
	}
	fmt.Fprintf(w, "%s{%s} %g\n", name, all, value)
}

// WritePrometheus renders the snapshot at now in the Prometheus text
// exposition format (counters, gauges, and summaries with quantile labels).
func (r *Registry) WritePrometheus(w io.Writer, now int64) {
	samples := r.Snapshot(now)
	typed := map[string]bool{}
	for _, s := range samples {
		pn := promName(s.Name)
		if !typed[pn] {
			typed[pn] = true
			switch s.Kind {
			case KindCounter:
				fmt.Fprintf(w, "# TYPE %s counter\n", pn)
			case KindGauge:
				fmt.Fprintf(w, "# TYPE %s gauge\n", pn)
			case KindHistogram:
				fmt.Fprintf(w, "# TYPE %s summary\n", pn)
			}
		}
		switch s.Kind {
		case KindCounter, KindGauge:
			renderSeries(w, pn, s.Labels, nil, s.Value)
		case KindHistogram:
			for i, q := range HistogramQuantiles {
				renderSeries(w, pn, s.Labels, []Label{L("quantile", fmt.Sprintf("%g", q))}, s.Dist.Quantiles[i])
			}
			renderSeries(w, pn+"_sum", s.Labels, nil, s.Dist.Sum)
			renderSeries(w, pn+"_count", s.Labels, nil, float64(s.Dist.Count))
		}
	}
}

// WriteJSON renders the snapshot at now as one JSON object in expvar style:
// {"metrics": [...], "labels": {...}}.
func (r *Registry) WriteJSON(w io.Writer, now int64) error {
	doc := struct {
		Labels  map[string]string `json:"labels"`
		Now     int64             `json:"now_ns"`
		Metrics []Sample          `json:"metrics"`
	}{Labels: map[string]string{}, Now: now, Metrics: r.Snapshot(now)}
	for _, l := range r.Base() {
		doc.Labels[l.Key] = l.Value
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}

// MarshalJSON renders a Label as {"key": "...", "value": "..."}.
func (l Label) MarshalJSON() ([]byte, error) {
	return json.Marshal(map[string]string{"key": l.Key, "value": l.Value})
}
