package telemetry

import (
	"bytes"
	"encoding/json"
	"io"
	"math"
	"net/http"
	"strings"
	"testing"
	"time"

	"bluedove/internal/core"
	"bluedove/internal/metrics"
)

func TestRegistryPrometheusRender(t *testing.T) {
	r := NewRegistry(L("node", "7"), L("role", "matcher"))
	var c metrics.Counter
	c.Add(42)
	r.Counter("matcher.matched", "publications matched", &c)
	r.Gauge("matcher.stage.queue_depth", "stage backlog", func(int64) float64 { return 3 }, L("dim", "0"))
	h := metrics.NewHistogram()
	for i := int64(1); i <= 1000; i++ {
		h.Observe(i * int64(time.Microsecond))
	}
	r.Histogram("matcher.match_latency_seconds", "dequeue to match done", h, 1e-9)

	var buf bytes.Buffer
	r.WritePrometheus(&buf, time.Now().UnixNano())
	out := buf.String()

	for _, want := range []string{
		`bluedove_matcher_matched{node="7",role="matcher"} 42`,
		`bluedove_matcher_stage_queue_depth{dim="0",node="7",role="matcher"} 3`,
		`# TYPE bluedove_matcher_match_latency_seconds summary`,
		`bluedove_matcher_match_latency_seconds_count{node="7",role="matcher"} 1000`,
		`quantile="0.99"`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in render:\n%s", want, out)
		}
	}
	if err := CheckPrometheusText(buf.Bytes(), []string{
		"bluedove_matcher_matched",
		"bluedove_matcher_stage_queue_depth",
		"bluedove_matcher_match_latency_seconds",
	}); err != nil {
		t.Fatalf("self-render fails lint: %v", err)
	}
	if err := CheckPrometheusText(buf.Bytes(), []string{"bluedove_nope"}); err == nil {
		t.Fatal("missing required series not reported")
	}
}

func TestCheckPrometheusTextRejectsMalformed(t *testing.T) {
	bad := [][]byte{
		[]byte("no_value_here\n"),
		[]byte("1leading_digit 3\n"),
		[]byte("ok{unterminated=\"x 3\n"),
		[]byte("ok{a=\"b\"} notanumber\n"),
		[]byte("# TYPE x counter\n# TYPE x counter\nx 1\n"),
		[]byte("# TYPE x frobnitz\nx 1\n"),
	}
	for i, b := range bad {
		if err := CheckPrometheusText(b, nil); err == nil {
			t.Fatalf("case %d: malformed text passed lint: %q", i, b)
		}
	}
	if err := CheckPrometheusText([]byte("ok{a=\"she said \\\"hi\\\"\"} 3.5 1700000000\n"), []string{"ok"}); err != nil {
		t.Fatalf("escaped quotes rejected: %v", err)
	}
}

func TestRegistryExplicitTimestamps(t *testing.T) {
	// The registry must work on a virtual clock starting at 0 and pass the
	// snapshot timestamp through to gauges.
	r := NewRegistry()
	meter := metrics.NewRateMeter(time.Second, 10)
	meter.Mark(int64(100*time.Millisecond), 50)
	r.Gauge("sim.lambda", "arrival rate", func(now int64) float64 { return meter.Rate(now) })
	s := r.Snapshot(0) // reader clock behind the writer: clamp, not garbage
	if s[0].Value != 50 {
		t.Fatalf("Snapshot(0) gauge = %v, want 50", s[0].Value)
	}
}

func TestSamplerRates(t *testing.T) {
	s := NewSampler(0)
	for i := 0; i < 1000; i++ {
		if s.Sample() {
			t.Fatal("rate 0 sampled")
		}
	}
	s.SetRate(1)
	for i := 0; i < 1000; i++ {
		if !s.Sample() {
			t.Fatal("rate 1 skipped")
		}
	}
	s.SetRate(0.1)
	n := 0
	for i := 0; i < 100000; i++ {
		if s.Sample() {
			n++
		}
	}
	if f := float64(n) / 100000; math.Abs(f-0.1) > 0.02 {
		t.Fatalf("rate 0.1 sampled %.3f", f)
	}
	s.SetRate(math.NaN())
	if s.Rate() != 0 {
		t.Fatalf("NaN rate = %v, want 0", s.Rate())
	}
}

func TestTracerPendingMergeAndRing(t *testing.T) {
	tr := NewTracer(16)
	ctx := &core.TraceCtx{ID: 9, Dispatcher: 100}
	ctx.Stamp(core.HopIngest, 10)
	ctx.Stamp(core.HopForward, 20)
	tr.Await(5, ctx, 20)
	if tr.PendingLen() != 1 {
		t.Fatalf("pending = %d", tr.PendingLen())
	}
	acked := &core.TraceCtx{ID: 9, Matcher: 2, Dim: 1}
	acked.Stamp(core.HopDequeue, 30)
	acked.Stamp(core.HopMatch, 35)
	acked.Stamp(core.HopDeliver, 38)
	got := tr.CompleteAck(5, acked, 40)
	if tr.PendingLen() != 0 {
		t.Fatal("pending entry not consumed")
	}
	for h, want := range map[core.Hop]int64{
		core.HopIngest: 10, core.HopForward: 20, core.HopDequeue: 30,
		core.HopMatch: 35, core.HopDeliver: 38, core.HopAck: 40,
	} {
		if got.Hops[h] != want {
			t.Fatalf("hop %s = %d, want %d", h, got.Hops[h], want)
		}
	}
	if got.Dispatcher != 100 || got.Matcher != 2 || got.Dim != 1 {
		t.Fatalf("merge lost identity fields: %+v", got)
	}
	recent := tr.Recent(0)
	if len(recent) != 1 || recent[0].Msg != 5 {
		t.Fatalf("recent = %+v", recent)
	}

	// Ring keeps the newest traces, newest first.
	for i := 0; i < 40; i++ {
		tr.Record(core.MessageID(100+i), &core.TraceCtx{ID: core.TraceID(100 + i)})
	}
	recent = tr.Recent(3)
	if len(recent) != 3 || recent[0].Msg != 139 || recent[1].Msg != 138 {
		t.Fatalf("recent after wrap = %+v", recent)
	}
	if tr.Total() != 41 {
		t.Fatalf("total = %d", tr.Total())
	}
}

func TestTracerPendingBounded(t *testing.T) {
	tr := NewTracer(16)
	for i := 0; i < 3*maxPending; i++ {
		tr.Await(core.MessageID(i), &core.TraceCtx{ID: core.TraceID(i)}, int64(i))
	}
	if tr.PendingLen() > maxPending {
		t.Fatalf("pending grew to %d, cap %d", tr.PendingLen(), maxPending)
	}
	if tr.Abandoned() == 0 {
		t.Fatal("no abandonment recorded despite overflow")
	}
}

func TestAdminEndpoints(t *testing.T) {
	tel := New(Options{SampleRate: 1, Base: []Label{L("node", "1"), L("role", "dispatcher")}})
	var c metrics.Counter
	c.Add(7)
	tel.Registry.Counter("dispatcher.published", "publications accepted", &c)
	ctx := &core.TraceCtx{ID: 42, Dispatcher: 1, Matcher: 2, Dim: 0}
	for h := core.Hop(0); h < core.HopCount; h++ {
		ctx.Stamp(h, int64(h+1)*1000)
	}
	tel.Tracer.Record(7, ctx)

	adm, err := Serve("127.0.0.1:0", tel)
	if err != nil {
		t.Fatal(err)
	}
	defer adm.Close()

	get := func(path string) []byte {
		resp, err := http.Get("http://" + adm.Addr() + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != 200 {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		b, _ := io.ReadAll(resp.Body)
		return b
	}

	if err := CheckPrometheusText(get("/metrics"), []string{"bluedove_dispatcher_published"}); err != nil {
		t.Fatalf("/metrics: %v", err)
	}
	var vars struct {
		Labels  map[string]string `json:"labels"`
		Metrics []json.RawMessage `json:"metrics"`
	}
	if err := json.Unmarshal(get("/debug/vars"), &vars); err != nil {
		t.Fatalf("/debug/vars: %v", err)
	}
	if vars.Labels["role"] != "dispatcher" || len(vars.Metrics) == 0 {
		t.Fatalf("/debug/vars content: %+v", vars)
	}
	var traces struct {
		Total  uint64 `json:"total"`
		Traces []struct {
			Complete bool             `json:"complete"`
			Hops     map[string]int64 `json:"hops_ns"`
		} `json:"traces"`
	}
	if err := json.Unmarshal(get("/debug/traces"), &traces); err != nil {
		t.Fatalf("/debug/traces: %v", err)
	}
	if traces.Total != 1 || len(traces.Traces) != 1 || !traces.Traces[0].Complete {
		t.Fatalf("/debug/traces content: %+v", traces)
	}
	if len(traces.Traces[0].Hops) != int(core.HopCount) {
		t.Fatalf("trace hops = %v", traces.Traces[0].Hops)
	}
	if b := get("/debug/pprof/cmdline"); len(b) == 0 {
		t.Fatal("empty pprof cmdline")
	}
}

func BenchmarkSamplerDisabled(b *testing.B) {
	s := NewSampler(0)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if s.Sample() {
			b.Fatal("sampled at rate 0")
		}
	}
}
