package sim

import (
	"testing"
	"time"

	"bluedove/internal/workload"
)

// overloadConfig builds a cluster that a burst can saturate: few matchers,
// tight per-dimension queues, and inflated matching costs.
func overloadConfig() Config {
	cfg := testConfig(3)
	cfg.MatcherQueueDepth = 4
	cfg.BaseMatchCost = 2 * time.Millisecond
	cfg.PerScanCost = 10 * time.Microsecond
	return cfg
}

// driveBurst saturates the cluster with a short high-rate burst and runs to
// quiescence, returning the cluster for inspection.
func driveBurst(cfg Config) *Cluster {
	cl := NewCluster(cfg)
	gen := workload.New(workload.Default(cfg.Space))
	cl.SubscribeAll(gen.Subscriptions(800))
	cl.Drive(gen, workload.ConstantRate(2000), int64(2*time.Second))
	cl.RunUntil(int64(10 * time.Second))
	return cl
}

// TestOverloadBusyRerouteRecoversLoss: with bounded queues and no overload
// layer, a saturating burst silently loses rejected forwards; with busy-NACK
// re-routing the same burst re-routes them to sibling candidates and loses
// strictly less.
func TestOverloadBusyRerouteRecoversLoss(t *testing.T) {
	off := driveBurst(overloadConfig())
	if off.Stats().BusyNacks.Value() == 0 {
		t.Fatal("burst did not saturate the bounded queues (no busy NACKs)")
	}
	if off.Stats().Lost.Value() == 0 {
		t.Fatal("without re-routing, rejected forwards should be lost")
	}

	cfgOn := overloadConfig()
	cfgOn.BusyReroute = true
	on := driveBurst(cfgOn)
	if on.Stats().Rerouted.Value() == 0 {
		t.Fatal("re-route enabled but nothing was re-routed")
	}
	if got, want := on.Stats().Lost.Value(), off.Stats().Lost.Value(); got >= want {
		t.Fatalf("re-routing lost %d messages, want fewer than the %d lost without it", got, want)
	}
}

// TestOverloadTTLSheds: stale publications queued behind a saturating burst
// are shed at dequeue once their TTL expires, and shed work is conserved in
// the arrival accounting.
func TestOverloadTTLSheds(t *testing.T) {
	cfg := overloadConfig()
	cfg.BusyReroute = true
	// Deep enough queues that waiting time at saturation far exceeds the TTL.
	cfg.MatcherQueueDepth = 64
	cfg.MessageTTL = 50 * time.Millisecond
	cl := driveBurst(cfg)
	st := cl.Stats()
	if st.ShedExpired.Value() == 0 {
		t.Fatal("saturating burst with a 50ms TTL shed nothing")
	}
	if back := st.Backlog(); back != 0 {
		t.Fatalf("accounting leak: backlog = %d after quiescence (arrived=%d completed=%d lost=%d shed=%d)",
			back, st.Arrived.Value(), st.Completed.Value(), st.Lost.Value(), st.ShedExpired.Value())
	}
}

// TestOverloadDeterministic pins the overload path to the virtual clock and
// seed: identical configs must produce identical busy/re-route/shed counts.
func TestOverloadDeterministic(t *testing.T) {
	run := func() [4]int64 {
		cfg := overloadConfig()
		cfg.BusyReroute = true
		cfg.MessageTTL = 100 * time.Millisecond
		st := driveBurst(cfg).Stats()
		return [4]int64{st.BusyNacks.Value(), st.Rerouted.Value(),
			st.ShedExpired.Value(), st.Completed.Value()}
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("identical overload configs diverged: %v vs %v", a, b)
	}
}
