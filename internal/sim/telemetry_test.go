package sim

import (
	"bytes"
	"testing"
	"time"

	"bluedove/internal/core"
	"bluedove/internal/telemetry"
	"bluedove/internal/workload"
)

// TestSimTelemetryVirtualClockTraces checks that the observability subsystem
// runs unchanged over the simulator's virtual clock: traced publications
// complete with hop timestamps drawn from virtual time (in causal order and
// consistent with the configured delays), and the registry renders a valid
// scrape at a virtual instant.
func TestSimTelemetryVirtualClockTraces(t *testing.T) {
	cfg := Config{
		Space:           core.UniformSpace(3, 100),
		Matchers:        4,
		TraceSampleRate: 1,
		Seed:            7,
	}
	cl := NewCluster(cfg)
	wcfg := workload.Default(cfg.Space)
	wcfg.Seed = 7
	gen := workload.New(wcfg)
	cl.SubscribeAll(gen.Subscriptions(500))

	// Move off t=0 first: a hop stamped at virtual time zero is
	// indistinguishable from unset.
	cl.RunFor(time.Second)
	start := cl.Now()
	for i := 0; i < 50; i++ {
		cl.Publish(gen.Message())
	}
	cl.RunFor(5 * time.Second)

	tel := cl.Telemetry()
	if tel == nil {
		t.Fatal("telemetry bundle missing with TraceSampleRate > 0")
	}
	traces := tel.Tracer.Recent(0)
	if len(traces) != 50 {
		t.Fatalf("recorded %d traces, want 50", len(traces))
	}
	minHop := int64(cfg.withDefaults().DispatchCost) // publish → ingest lower bound
	for _, tr := range traces {
		ctx := tr.Ctx
		if !ctx.Complete() {
			t.Fatalf("incomplete virtual-time trace: %+v", ctx)
		}
		if ctx.Hops[core.HopPublish] < start {
			t.Fatalf("publish hop %d before injection window %d", ctx.Hops[core.HopPublish], start)
		}
		prev := int64(0)
		for h := core.Hop(0); h < core.HopCount; h++ {
			if ts := ctx.Hops[h]; ts != 0 {
				if ts < prev {
					t.Fatalf("hop %s at %d precedes previous at %d: %+v", h, ts, prev, ctx)
				}
				prev = ts
			}
		}
		if d := ctx.Hops[core.HopIngest] - ctx.Hops[core.HopPublish]; d < minHop {
			t.Fatalf("ingest-publish delta %d below dispatch cost %d", d, minHop)
		}
		// Delivery rides one modeled network hop after match completion.
		net := int64(cfg.withDefaults().NetDelay)
		if d := ctx.Hops[core.HopDeliver] - ctx.Hops[core.HopMatch]; d != net {
			t.Fatalf("deliver-match delta %d, want the %d net delay", d, net)
		}
		if ctx.Matcher == 0 || ctx.Dispatcher == 0 {
			t.Fatalf("trace lost its route identity: %+v", ctx)
		}
	}

	// The registry must render a valid exposition at the virtual instant.
	var buf bytes.Buffer
	tel.Registry.WritePrometheus(&buf, cl.Now())
	if err := telemetry.CheckPrometheusText(buf.Bytes(), []string{
		"bluedove_sim_arrived",
		"bluedove_sim_arrival_rate",
		"bluedove_sim_backlog",
		"bluedove_sim_deliver_latency_seconds",
	}); err != nil {
		t.Fatalf("virtual-clock scrape invalid: %v\n%s", err, buf.String())
	}
}

// TestSimTelemetrySampling checks partial sampling traces roughly the
// configured fraction and leaves the rest untraced.
func TestSimTelemetrySampling(t *testing.T) {
	cfg := Config{
		Space:           core.UniformSpace(3, 100),
		Matchers:        2,
		TraceSampleRate: 0.2,
		Seed:            3,
	}
	cl := NewCluster(cfg)
	wcfg := workload.Default(cfg.Space)
	wcfg.Seed = 3
	gen := workload.New(wcfg)
	cl.SubscribeAll(gen.Subscriptions(100))
	cl.RunFor(time.Second)
	const n = 2000
	for i := 0; i < n; i++ {
		cl.Publish(gen.Message())
	}
	cl.RunFor(10 * time.Second)
	got := int(cl.Telemetry().Tracer.Total())
	if f := float64(got) / n; f < 0.1 || f > 0.3 {
		t.Fatalf("sampled fraction %.3f (%d/%d), want ≈0.2", f, got, n)
	}
}
