package sim

import (
	"time"

	"bluedove/internal/core"
	"bluedove/internal/elastic"
	"bluedove/internal/forward"
	"bluedove/internal/index"
	"bluedove/internal/placement"
)

// Config parameterizes a simulated cluster. Zero fields take the defaults
// documented per field (applied by withDefaults), which model the paper's
// testbed: Gigabit-LAN latencies, 1 s load reports pushed on >10% change,
// 10 s table pulls, and a matching cost dominated by the number of
// subscriptions scanned.
type Config struct {
	// Space is the attribute space; required.
	Space *core.Space
	// Matchers is the initial matcher count; required (>0).
	Matchers int
	// Dispatchers is the dispatcher count (default 2, as in the paper).
	Dispatchers int
	// Strategy is the placement strategy (default placement.BlueDove{}).
	Strategy placement.Strategy
	// Policy is the forwarding policy (default forward.Adaptive{}).
	Policy forward.Policy
	// IndexKind selects the per-dimension matcher index (default bucket).
	IndexKind index.Kind
	// MatchShards models the real matcher's per-core parallel match path
	// (matcher.Config.MatchShards): each dimension stage's per-scan service
	// time is divided by this shard count, since stab+verify work fans out
	// across that many cores. Default 1 — the serial stage layout.
	MatchShards int

	// BaseMatchCost is the fixed per-message matching overhead
	// (default 20µs).
	BaseMatchCost time.Duration
	// PerScanCost is the service time per subscription scanned
	// (default 300ns — calibrated so a 40k-subscription full scan costs
	// ~12ms, matching the paper's full-replication throughput).
	PerScanCost time.Duration
	// PerDeliverCost is the service time per matched subscription delivered
	// (default 1µs).
	PerDeliverCost time.Duration
	// BatchSize models publication batching on the forward path (the real
	// stack's dispatcher.Config.ForwardLinger pipeline): the fixed
	// per-message overhead BaseMatchCost is amortized across BatchSize
	// messages arriving in one frame, so effective service time per message
	// is BaseMatchCost/BatchSize + the per-scan and per-deliver terms.
	// Default 1 — no batching, today's cost model.
	BatchSize int
	// NetDelay is the one-hop network latency (default 500µs).
	NetDelay time.Duration
	// DispatchCost is the dispatcher's per-message processing time, modeled
	// as added latency without queueing — the paper measured dispatching to
	// be two orders of magnitude cheaper than matching (default 5µs).
	DispatchCost time.Duration
	// Edges models an edge connection tier between matchers and subscriber
	// sessions (the real stack's internal/edge): each delivery rides one
	// extra NetDelay hop to its edge plus a per-matched-session re-match and
	// enqueue service term, amortized across Edges servers. 0 = sessions
	// connect directly to dispatchers, today's model.
	Edges int
	// EdgeFanoutCost is the edge tier's service time per matched session
	// fanned out (default 2µs; meaningful only with Edges > 0).
	EdgeFanoutCost time.Duration

	// ReportInterval is the matcher load-report cadence (default 1s).
	ReportInterval time.Duration
	// ReportDeltaFrac suppresses reports when no per-dimension queue or
	// rate changed by more than this fraction (default 0.1).
	ReportDeltaFrac float64
	// RateWindow is the λ/μ measurement window w (default 2s).
	RateWindow time.Duration
	// TablePullInterval is the dispatcher segment-table pull cadence
	// (default 10s).
	TablePullInterval time.Duration
	// TablePropagateDelay is the time for a new segment table to reach all
	// dispatchers after a join/leave (gossip rounds; default 2s).
	TablePropagateDelay time.Duration
	// FailureDetectDelay is the time between a matcher crash and all
	// dispatchers marking it dead (gossip heartbeat timeout; default 10s).
	FailureDetectDelay time.Duration
	// RecoveryDelay is the additional time after failure detection before
	// subscriptions are re-installed onto surviving matchers (default 5s).
	RecoveryDelay time.Duration

	// Elastic enables the elasticity controller — the same elastic.Controller
	// the real cluster embeds, driven by the virtual clock: sustained high
	// utilization joins a matcher, sustained idle drains one, and a σ-skew
	// signature splits the hot matcher's segment (Figure 9's experiment and
	// beyond).
	Elastic bool
	// ElasticCheckInterval is the controller's scrape cadence (default 5s).
	ElasticCheckInterval time.Duration
	// ElasticCooldown is the minimum time between controller actions; it is
	// translated into the controller's CooldownRounds at the scrape cadence
	// unless ElasticConfig.CooldownRounds is set (default 20s).
	ElasticCooldown time.Duration
	// ElasticConfig tunes the embedded controller (watermarks, hysteresis,
	// matcher floor/ceiling). Zero fields take elastic.Config defaults, except
	// CooldownRounds which derives from ElasticCooldown.
	ElasticConfig elastic.Config
	// ElasticBacklogSecs is retained for configuration compatibility with the
	// superseded backlog-growth controller; the elastic.Controller's
	// QueueHorizonSec now governs how standing queues count against
	// utilization.
	ElasticBacklogSecs float64

	// Persistent enables the message-persistence extension (paper Section
	// VI future work: "add message persistence mechanism to support
	// applications that do not tolerate message loss"): dispatchers retain
	// forwarded messages until matched, and messages caught on a crashed
	// matcher — queued, in service, or sent before failure detection — are
	// re-forwarded to surviving candidates instead of being lost.
	Persistent bool
	// PersistMaxAttempts caps re-forwards per message (default 20).
	PersistMaxAttempts int
	// PersistRetryDelay is the wait before retrying when no alive
	// candidate exists (default 500ms).
	PersistRetryDelay time.Duration
	// MatcherQueueDepth bounds each matcher's per-dimension queue, modeling
	// the real stack's matcher.Config.QueueDepth: a forward arriving at a
	// full stage is rejected with a busy NACK instead of queued (0 =
	// unbounded, today's behavior).
	MatcherQueueDepth int
	// BusyReroute enables the overload-control re-route: a busy-NACKed
	// forward rides one network hop back to its dispatcher, which re-forwards
	// it to the next-best untried candidate (bounded by PersistMaxAttempts).
	// Without it a rejected forward is lost, modeling the pre-overload-layer
	// silent drop.
	BusyReroute bool
	// MessageTTL stamps every publication with this time-to-live: a message
	// still queued when it expires is shed at dequeue instead of matched
	// (graceful shedding of stale work; 0 = no TTL).
	MessageTTL time.Duration
	// SampleEvery records one response-time point per this many completions
	// into the time series (default 20; histograms record every sample).
	SampleEvery int
	// TraceSampleRate, when > 0, enables the observability subsystem on the
	// simulated cluster: this fraction of publications carries a hop-level
	// trace context stamped with virtual-clock times (the same TraceCtx the
	// real stack puts on the wire), and the cluster exposes a telemetry
	// bundle whose registry and tracer read the virtual clock.
	TraceSampleRate float64
	// Clusters, when > 1, models a federated deployment: NewFederation
	// builds this many complete clusters over one shared virtual clock,
	// each with a border that summarizes local interest, and routes
	// publications across the inter-cluster mesh only toward clusters
	// whose summary matches (the real stack's internal/federation tier).
	Clusters int
	// InterClusterLatency is the one-way border-to-border WAN latency
	// (default 50ms; meaningful only with Clusters > 1).
	InterClusterLatency time.Duration
	// FedSummaryInterval is the border summary refresh cadence
	// (default 1s; meaningful only with Clusters > 1).
	FedSummaryInterval time.Duration
	// FedMaxRangesPerDim caps each summary dimension's interval count,
	// widening lossily past it (default 64).
	FedMaxRangesPerDim int

	// Seed drives all randomized decisions (default 1).
	Seed int64
	// OnDeliver, when set, is invoked at each message completion with the
	// message and the subscriptions it matched (delivery to subscribers).
	OnDeliver func(m *core.Message, matched []*core.Subscription)
}

func (c Config) withDefaults() Config {
	if c.Space == nil {
		panic("sim: Config.Space is required")
	}
	if c.Matchers <= 0 {
		panic("sim: Config.Matchers must be positive")
	}
	if c.Dispatchers <= 0 {
		c.Dispatchers = 2
	}
	if c.Strategy == nil {
		c.Strategy = placement.BlueDove{}
	}
	if c.Policy == nil {
		c.Policy = forward.Adaptive{}
	}
	if c.BaseMatchCost <= 0 {
		c.BaseMatchCost = 20 * time.Microsecond
	}
	if c.PerScanCost <= 0 {
		c.PerScanCost = 300 * time.Nanosecond
	}
	if c.PerDeliverCost <= 0 {
		c.PerDeliverCost = time.Microsecond
	}
	if c.BatchSize <= 0 {
		c.BatchSize = 1
	}
	if c.MatchShards <= 0 {
		c.MatchShards = 1
	}
	if c.NetDelay <= 0 {
		c.NetDelay = 500 * time.Microsecond
	}
	if c.DispatchCost <= 0 {
		c.DispatchCost = 5 * time.Microsecond
	}
	if c.EdgeFanoutCost <= 0 {
		c.EdgeFanoutCost = 2 * time.Microsecond
	}
	if c.ReportInterval <= 0 {
		c.ReportInterval = time.Second
	}
	if c.ReportDeltaFrac <= 0 {
		c.ReportDeltaFrac = 0.1
	}
	if c.RateWindow <= 0 {
		c.RateWindow = 2 * time.Second
	}
	if c.TablePullInterval <= 0 {
		c.TablePullInterval = 10 * time.Second
	}
	if c.TablePropagateDelay <= 0 {
		c.TablePropagateDelay = 2 * time.Second
	}
	if c.FailureDetectDelay <= 0 {
		c.FailureDetectDelay = 10 * time.Second
	}
	if c.RecoveryDelay <= 0 {
		c.RecoveryDelay = 5 * time.Second
	}
	if c.ElasticCheckInterval <= 0 {
		c.ElasticCheckInterval = 5 * time.Second
	}
	if c.ElasticCooldown <= 0 {
		c.ElasticCooldown = 20 * time.Second
	}
	if c.ElasticBacklogSecs <= 0 {
		c.ElasticBacklogSecs = 0.15
	}
	if c.PersistMaxAttempts <= 0 {
		c.PersistMaxAttempts = 20
	}
	if c.PersistRetryDelay <= 0 {
		c.PersistRetryDelay = 500 * time.Millisecond
	}
	if c.SampleEvery <= 0 {
		c.SampleEvery = 20
	}
	if c.InterClusterLatency <= 0 {
		c.InterClusterLatency = 50 * time.Millisecond
	}
	if c.FedSummaryInterval <= 0 {
		c.FedSummaryInterval = time.Second
	}
	if c.FedMaxRangesPerDim <= 0 {
		c.FedMaxRangesPerDim = 64
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}
