package sim

import (
	"math/rand"
	"testing"
	"time"

	"bluedove/internal/workload"
)

// Property: events always execute in non-decreasing time order, with FIFO
// order among equal timestamps, regardless of the scheduling pattern —
// including events scheduled from inside other events.
func TestEngineOrderingProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for iter := 0; iter < 200; iter++ {
		e := NewEngine()
		type fired struct {
			at  int64
			seq int
		}
		var log []fired
		seq := 0
		var schedule func(depth int)
		schedule = func(depth int) {
			n := 1 + rng.Intn(5)
			for i := 0; i < n; i++ {
				at := e.Now() + int64(rng.Intn(100))
				mySeq := seq
				seq++
				d := depth
				e.At(at, func() {
					log = append(log, fired{at: e.Now(), seq: mySeq})
					if d < 3 && rng.Intn(3) == 0 {
						schedule(d + 1)
					}
				})
			}
		}
		schedule(0)
		e.RunUntil(1_000_000)
		for i := 1; i < len(log); i++ {
			if log[i].at < log[i-1].at {
				t.Fatalf("iter %d: time went backwards: %v then %v", iter, log[i-1], log[i])
			}
		}
		if e.Pending() != 0 {
			t.Fatalf("iter %d: %d events left past the horizon", iter, e.Pending())
		}
	}
}

// Property: two identically seeded clusters driven by identical workloads
// produce byte-identical statistics — the bit-reproducibility every figure
// depends on.
func TestClusterBitDeterminismProperty(t *testing.T) {
	for _, seed := range []int64{1, 7, 42} {
		type snap struct {
			completed, lost int64
			maxNs           int64
			backlog         int
		}
		run := func() snap {
			cfg := testConfig(4)
			cfg.Seed = seed
			cl := NewCluster(cfg)
			w := workload.Default(cfg.Space)
			w.Seed = seed
			gen := workload.New(w)
			cl.SubscribeAll(gen.Subscriptions(300))
			cl.Drive(gen, workload.ConstantRate(400), int64(6*time.Second))
			cl.Engine().At(int64(3*time.Second), func() { _, _ = cl.FailRandomMatcher() })
			cl.RunUntil(int64(8 * time.Second))
			return snap{
				completed: cl.Stats().Completed.Value(),
				lost:      cl.Stats().Lost.Value(),
				maxNs:     cl.Stats().RespHist.Max(),
				backlog:   cl.TotalBacklog(),
			}
		}
		a, b := run(), run()
		if a != b {
			t.Fatalf("seed %d: runs diverged: %+v vs %+v", seed, a, b)
		}
	}
}
