package sim

import (
	"testing"
	"time"

	"bluedove/internal/workload"
)

// TestEdgeTierAddsHopAndCounts: enabling the simulated edge tier must not
// change what completes — only add the extra hop plus fan-out service time
// to every delivery's response, and account each fanned-out delivery.
func TestEdgeTierAddsHopAndCounts(t *testing.T) {
	run := func(edges int) (completed, edgeDeliveries int64, mean float64) {
		cfg := testConfig(6)
		cfg.Edges = edges
		cl := NewCluster(cfg)
		gen := workload.New(workload.Default(cfg.Space))
		cl.SubscribeAll(gen.Subscriptions(1000))
		cl.Drive(gen, workload.ConstantRate(300), int64(10*time.Second))
		cl.RunUntil(int64(15 * time.Second))
		st := cl.Stats()
		return st.Completed.Value(), st.EdgeDeliveries.Value(), st.RespHist.Mean()
	}
	dc, dEdge, dMean := run(0)
	ec, eEdge, eMean := run(2)
	if dc == 0 {
		t.Fatal("baseline run completed no messages")
	}
	if ec != dc {
		t.Fatalf("edge tier changed completions: %d direct vs %d via edges", dc, ec)
	}
	if dEdge != 0 {
		t.Fatalf("EdgeDeliveries = %d with no edge tier, want 0", dEdge)
	}
	if eEdge == 0 {
		t.Fatal("EdgeDeliveries = 0 with the edge tier enabled")
	}
	// Every delivery rides exactly one extra NetDelay hop plus a small
	// fan-out term, so the mean shifts up by at least NetDelay.
	netDelay := float64(500 * time.Microsecond)
	if eMean < dMean+netDelay {
		t.Fatalf("edge-tier mean response %.0fns vs direct %.0fns: extra hop (%.0fns) missing",
			eMean, dMean, netDelay)
	}
}
