// Package sim is a deterministic discrete-event simulator for BlueDove
// clusters. It substitutes for the paper's 24-VM testbed (see DESIGN.md):
// dispatchers run the real placement and forwarding-policy code, matchers
// run the real per-dimension indexes, and the simulator models the
// quantities that shape the paper's results — per-dimension FIFO queues,
// matching service time proportional to subscriptions scanned, one-hop
// network latency, and the periodic (λ, μ, q) load reports with the paper's
// update intervals. Experiments are seeded and run on a virtual clock, so
// every figure regenerates bit-identically.
package sim

import (
	"container/heap"
	"time"
)

// Engine is a discrete-event executor with a virtual clock. Events scheduled
// for the same instant run in scheduling order (stable FIFO tie-break), so
// runs are fully deterministic. Engine is not safe for concurrent use; the
// whole simulation runs on one goroutine.
type Engine struct {
	now    int64
	seq    uint64
	events eventHeap
}

type event struct {
	at  int64
	seq uint64
	fn  func()
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}

// NewEngine returns an engine with the clock at zero.
func NewEngine() *Engine { return &Engine{} }

// Now returns the current virtual time in nanoseconds.
func (e *Engine) Now() int64 { return e.now }

// At schedules fn to run at virtual time t. Times in the past run at the
// current instant (never before already-executed events).
func (e *Engine) At(t int64, fn func()) {
	if t < e.now {
		t = e.now
	}
	heap.Push(&e.events, event{at: t, seq: e.seq, fn: fn})
	e.seq++
}

// After schedules fn to run d after the current virtual time.
func (e *Engine) After(d time.Duration, fn func()) { e.At(e.now+int64(d), fn) }

// Every schedules fn at t, then every interval thereafter, until fn returns
// false.
func (e *Engine) Every(t int64, interval time.Duration, fn func() bool) {
	var tick func()
	tick = func() {
		if fn() {
			e.At(e.now+int64(interval), tick)
		}
	}
	e.At(t, tick)
}

// Step runs the next event, if any, advancing the clock to its time. It
// reports whether an event ran.
func (e *Engine) Step() bool {
	if len(e.events) == 0 {
		return false
	}
	ev := heap.Pop(&e.events).(event)
	e.now = ev.at
	ev.fn()
	return true
}

// RunUntil executes events in order until the clock would pass t or no
// events remain. The clock finishes at exactly t when it was reached.
func (e *Engine) RunUntil(t int64) {
	for len(e.events) > 0 && e.events[0].at <= t {
		e.Step()
	}
	if e.now < t {
		e.now = t
	}
}

// Pending returns the number of scheduled events.
func (e *Engine) Pending() int { return len(e.events) }
