package sim

import (
	"testing"
	"time"
)

func TestEngineOrdering(t *testing.T) {
	e := NewEngine()
	var got []int
	e.At(30, func() { got = append(got, 3) })
	e.At(10, func() { got = append(got, 1) })
	e.At(20, func() { got = append(got, 2) })
	e.RunUntil(100)
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Fatalf("order = %v", got)
	}
	if e.Now() != 100 {
		t.Errorf("Now = %d, want 100", e.Now())
	}
}

func TestEngineFIFOTieBreak(t *testing.T) {
	e := NewEngine()
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		e.At(5, func() { got = append(got, i) })
	}
	e.RunUntil(5)
	for i, v := range got {
		if v != i {
			t.Fatalf("same-time events out of scheduling order: %v", got)
		}
	}
}

func TestEnginePastEventRunsNow(t *testing.T) {
	e := NewEngine()
	e.RunUntil(100)
	ran := false
	e.At(50, func() { ran = true }) // in the past
	e.RunUntil(100)
	if !ran {
		t.Error("past event did not run")
	}
	if e.Now() != 100 {
		t.Errorf("clock moved backwards: %d", e.Now())
	}
}

func TestEngineAfterAndStep(t *testing.T) {
	e := NewEngine()
	ran := 0
	e.After(time.Second, func() { ran++ })
	if !e.Step() {
		t.Fatal("Step returned false with pending event")
	}
	if ran != 1 || e.Now() != int64(time.Second) {
		t.Fatalf("ran=%d now=%d", ran, e.Now())
	}
	if e.Step() {
		t.Error("Step returned true with empty queue")
	}
}

func TestEngineEvery(t *testing.T) {
	e := NewEngine()
	count := 0
	e.Every(0, time.Second, func() bool {
		count++
		return count < 5
	})
	e.RunUntil(int64(100 * time.Second))
	if count != 5 {
		t.Errorf("count = %d, want 5", count)
	}
	if e.Pending() != 0 {
		t.Errorf("pending = %d after Every stopped", e.Pending())
	}
}

func TestEngineRunUntilBoundary(t *testing.T) {
	e := NewEngine()
	ran := false
	e.At(100, func() { ran = true })
	e.RunUntil(99)
	if ran {
		t.Error("event at 100 ran during RunUntil(99)")
	}
	e.RunUntil(100)
	if !ran {
		t.Error("event at 100 did not run during RunUntil(100)")
	}
}

func TestEngineEventsScheduledDuringRun(t *testing.T) {
	e := NewEngine()
	var got []int64
	e.At(10, func() {
		e.After(5, func() { got = append(got, e.Now()) })
	})
	e.RunUntil(20)
	if len(got) != 1 || got[0] != 15 {
		t.Fatalf("nested event = %v", got)
	}
}
