package sim

import (
	"sync"
	"testing"
	"time"

	"bluedove/internal/core"
)

func fedSimConfig(k int) Config {
	return Config{
		Space:    core.UniformSpace(k, 1000),
		Matchers: 2,
		Clusters: 2,
	}
}

// fedSimRecorder counts deliveries per subscription ID across the whole
// federation (the OnDeliver hook is shared by every cluster's config).
type fedSimRecorder struct {
	mu   sync.Mutex
	seen map[core.SubscriptionID]int
}

func (r *fedSimRecorder) hook(_ *core.Message, matched []*core.Subscription) {
	r.mu.Lock()
	for _, s := range matched {
		r.seen[s.ID]++
	}
	r.mu.Unlock()
}

func (r *fedSimRecorder) count(id core.SubscriptionID) int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.seen[id]
}

func sub(id core.SubscriptionID, preds ...core.Range) *core.Subscription {
	return &core.Subscription{ID: id, Subscriber: core.SubscriberID(id), Predicates: preds}
}

// TestSimFederationRouting: interest in cluster 2 pulls matching traffic
// across the link; disjoint traffic is suppressed at the origin border.
func TestSimFederationRouting(t *testing.T) {
	rec := &fedSimRecorder{seen: map[core.SubscriptionID]int{}}
	cfg := fedSimConfig(2)
	cfg.OnDeliver = rec.hook
	f := NewFederation(cfg)

	// Cluster 2 wants dim0 in [100, 200).
	remote := sub(1001, core.Range{Low: 100, High: 200}, core.Range{Low: 0, High: 1000})
	f.Clusters[1].Subscribe(remote)
	f.RunFor(2 * time.Second) // let the summary refresh see it

	if s := f.Summary(1); s == nil || !s.Matches([]float64{150, 500}) {
		t.Fatalf("cluster 2 summary does not cover its subscription: %+v", s)
	}

	// A matching publication in cluster 1 must cross and deliver.
	f.Publish(0, core.NewMessage([]float64{150, 500}, []byte("hit")))
	f.RunFor(5 * time.Second)
	if got := rec.count(1001); got != 1 {
		t.Fatalf("cross-cluster deliveries = %d, want 1", got)
	}
	if f.FedForwarded.Value() != 1 {
		t.Fatalf("FedForwarded = %d, want 1", f.FedForwarded.Value())
	}

	// Disjoint publications must be suppressed, not shipped.
	for i := 0; i < 20; i++ {
		f.Publish(0, core.NewMessage([]float64{700, 500}, nil))
	}
	f.RunFor(5 * time.Second)
	if f.FedForwarded.Value() != 1 {
		t.Fatalf("disjoint traffic crossed the link: FedForwarded = %d", f.FedForwarded.Value())
	}
	if f.FedSuppressed.Value() != 20 {
		t.Fatalf("FedSuppressed = %d, want 20", f.FedSuppressed.Value())
	}
	if got := rec.count(1001); got != 1 {
		t.Fatalf("unwanted deliveries: %d", got)
	}
}

// TestSimFederationEquivalence: a two-cluster federation must produce the
// same delivery multiset as one flat cluster holding all subscriptions.
func TestSimFederationEquivalence(t *testing.T) {
	subs := []*core.Subscription{
		sub(1, core.Range{Low: 0, High: 300}, core.Range{Low: 0, High: 1000}),
		sub(2, core.Range{Low: 200, High: 600}, core.Range{Low: 100, High: 900}),
		sub(3, core.Range{Low: 500, High: 1000}, core.Range{Low: 0, High: 500}),
		sub(4, core.Range{Low: 0, High: 1000}, core.Range{Low: 800, High: 1000}),
	}
	pubs := [][]float64{
		{150, 500}, {250, 500}, {550, 250}, {900, 900}, {50, 850}, {700, 700},
	}

	runFed := func() map[core.SubscriptionID]int {
		rec := &fedSimRecorder{seen: map[core.SubscriptionID]int{}}
		cfg := fedSimConfig(2)
		cfg.OnDeliver = rec.hook
		f := NewFederation(cfg)
		for i, s := range subs {
			f.Clusters[i%2].Subscribe(cloneSub(s))
		}
		f.RunFor(2 * time.Second)
		for i, attrs := range pubs {
			f.Publish(i%2, core.NewMessage(attrs, nil))
		}
		f.RunFor(10 * time.Second)
		return rec.seen
	}
	runFlat := func() map[core.SubscriptionID]int {
		rec := &fedSimRecorder{seen: map[core.SubscriptionID]int{}}
		cfg := fedSimConfig(2)
		cfg.Clusters = 0
		cfg.OnDeliver = rec.hook
		cl := NewCluster(cfg)
		for _, s := range subs {
			cl.Subscribe(cloneSub(s))
		}
		cl.RunFor(2 * time.Second)
		for _, attrs := range pubs {
			cl.Publish(core.NewMessage(attrs, nil))
		}
		cl.RunFor(10 * time.Second)
		return rec.seen
	}

	fed, flat := runFed(), runFlat()
	for _, s := range subs {
		if fed[s.ID] != flat[s.ID] {
			t.Fatalf("sub %d: federated %d deliveries, flat %d\nfed: %v\nflat: %v",
				s.ID, fed[s.ID], flat[s.ID], fed, flat)
		}
	}
}

func cloneSub(s *core.Subscription) *core.Subscription {
	c := *s
	c.Predicates = append([]core.Range(nil), s.Predicates...)
	return &c
}

// TestSimFederationLatency: the cross-cluster leg adds at least the
// configured WAN latency over the intra-cluster path.
func TestSimFederationLatency(t *testing.T) {
	type stampRec struct {
		mu sync.Mutex
		at map[core.SubscriptionID]int64
	}
	rec := &stampRec{at: map[core.SubscriptionID]int64{}}
	cfg := fedSimConfig(2)
	cfg.InterClusterLatency = 200 * time.Millisecond
	f := NewFederation(cfg)
	hook := func(m *core.Message, matched []*core.Subscription) {
		now := f.Now()
		rec.mu.Lock()
		for _, s := range matched {
			if _, ok := rec.at[s.ID]; !ok {
				rec.at[s.ID] = now
			}
		}
		rec.mu.Unlock()
	}
	for i := range f.Clusters {
		f.Clusters[i].cfg.OnDeliver = hook
	}
	f.Clusters[0].Subscribe(sub(1, core.Range{Low: 0, High: 1000}, core.Range{Low: 0, High: 1000}))
	f.Clusters[1].Subscribe(sub(2, core.Range{Low: 0, High: 1000}, core.Range{Low: 0, High: 1000}))
	f.RunFor(2 * time.Second)
	start := f.Now()
	f.Publish(0, core.NewMessage([]float64{500, 500}, nil))
	f.RunFor(5 * time.Second)
	rec.mu.Lock()
	local, remote := rec.at[1]-start, rec.at[2]-start
	rec.mu.Unlock()
	if local <= 0 || remote <= 0 {
		t.Fatalf("missing deliveries: local=%d remote=%d", local, remote)
	}
	if remote-local < int64(cfg.InterClusterLatency) {
		t.Fatalf("cross-cluster delivery only %v behind local, want >= %v",
			time.Duration(remote-local), cfg.InterClusterLatency)
	}
}
