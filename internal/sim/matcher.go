package sim

import (
	"time"

	"bluedove/internal/core"
	"bluedove/internal/forward"
	"bluedove/internal/index"
	"bluedove/internal/metrics"
)

// queuedMsg is a message waiting in one of a matcher's per-dimension queues,
// carrying the provenance the persistence extension needs to re-forward it.
type queuedMsg struct {
	m          *core.Message
	dim        int
	enqueuedAt int64
	from       *simDispatcher       // forwarding dispatcher
	tried      map[core.NodeID]bool // matchers already attempted
	attempts   int                  // failed sends (bounced off dead matchers)
	waits      int                  // no-candidate wait cycles
}

// simMatcher models one matcher server following the paper's SEDA layout:
// k per-dimension subscription indexes and k per-dimension FIFO queues ("a
// separate queue is used to store incoming messages on each dimension",
// Section III-B1). The matcher has k workers in total (the paper's matchers
// are 4-core VMs with one stage per searchable dimension); the workers are
// divided evenly among the dimensions that actually hold subscriptions, so
// a single-set system (P2P, full replication) gets its whole pool on its
// one queue while BlueDove pins one worker per dimension stage.
// Per-dimension λ/μ meters feed the load reports. Service time per message
// is BaseMatchCost + PerScanCost·scanned + PerDeliverCost·matched —
// in-memory matching cost proportional to the subscriptions searched, the
// quantity the paper's policies optimize.
type simMatcher struct {
	id      core.NodeID
	cl      *Cluster
	alive   bool
	indexes []index.Index
	cands   []*core.Subscription // reused stabbing candidate buffer
	queues  [][]queuedMsg
	queued  int
	busyDim []int // in-service message count per dimension queue

	arrivals    []*metrics.RateMeter
	matched     []*metrics.RateMeter
	serviceEWMA []float64 // smoothed per-message service time (ns) per dimension

	lastReport []forward.DimLoad
	reported   bool

	busyNs       int64 // cumulative service time across all workers
	busyMark     int64 // busyNs at last utilization snapshot
	deliveries   int64
	processed    int64
	matchedTotal int64
}

func newSimMatcher(cl *Cluster, id core.NodeID) *simMatcher {
	k := cl.cfg.Space.K()
	m := &simMatcher{
		id:          id,
		cl:          cl,
		alive:       true,
		indexes:     make([]index.Index, k),
		queues:      make([][]queuedMsg, k),
		busyDim:     make([]int, k),
		arrivals:    make([]*metrics.RateMeter, k),
		matched:     make([]*metrics.RateMeter, k),
		serviceEWMA: make([]float64, k),
	}
	for i := 0; i < k; i++ {
		m.indexes[i] = index.New(cl.cfg.IndexKind, cl.cfg.Space, i)
		m.arrivals[i] = metrics.NewRateMeter(cl.cfg.RateWindow, 8)
		m.matched[i] = metrics.NewRateMeter(cl.cfg.RateWindow, 8)
	}
	return m
}

// store installs a subscription into the dimension-dim set.
func (m *simMatcher) store(dim int, s *core.Subscription) {
	m.indexes[dim].Add(s)
}

// enqueue receives a message forwarded along dim. Messages sent to a dead
// matcher are lost (the pre-failure-detection loss of Figure 10) unless the
// persistence extension re-forwards them.
func (m *simMatcher) enqueue(qm queuedMsg) {
	now := m.cl.eng.Now()
	if !m.alive {
		m.cl.lostOrRetry(qm)
		return
	}
	dim := qm.dim
	if depth := m.cl.cfg.MatcherQueueDepth; depth > 0 && len(m.queues[dim]) >= depth {
		m.cl.busyReject(qm, m.id)
		return
	}
	qm.enqueuedAt = now
	m.arrivals[dim].Mark(now, 1)
	m.queues[dim] = append(m.queues[dim], qm)
	m.queued++
	m.serveNext(dim)
}

// workersFor returns the worker count assigned to one dimension's stage:
// the k-worker pool divided among dimensions that hold subscriptions.
func (m *simMatcher) workersFor(dim int) int {
	active := 0
	for _, ix := range m.indexes {
		if ix.Len() > 0 {
			active++
		}
	}
	if active == 0 {
		active = len(m.indexes)
	}
	w := len(m.indexes) / active
	if w < 1 {
		w = 1
	}
	return w
}

// serveNext starts service on dimension dim's queue while the stage has
// idle workers, scheduling each message's completion after its modeled
// service time.
func (m *simMatcher) serveNext(dim int) {
	for m.alive && len(m.queues[dim]) > 0 && m.busyDim[dim] < m.workersFor(dim) {
		m.serveOne(dim)
	}
}

// serveOne pops one message from dimension dim's queue onto a worker.
// Expired publications are shed here — the stale work is deliberately
// abandoned without consuming a worker, as in the real matcher's dequeue.
func (m *simMatcher) serveOne(dim int) {
	qm := m.queues[dim][0]
	m.queues[dim] = m.queues[dim][1:]
	m.queued--
	if qm.m.TTL > 0 && m.cl.eng.Now() > qm.m.PublishedAt+qm.m.TTL {
		m.cl.stats.ShedExpired.Add(1)
		return
	}
	m.busyDim[dim]++
	if qm.m.Trace != nil {
		qm.m.Trace.Stamp(core.HopDequeue, m.cl.eng.Now())
	}

	// matchedSubs escapes into the completion closure, so its destination
	// slice is fresh; the stabbing candidate buffer is reused across serves.
	matchedSubs, cands, scanned := index.Match(m.indexes[dim], qm.m, nil, m.cands)
	m.cands = cands
	// Batching amortizes the fixed per-message overhead across the frame;
	// parallel match shards divide the scan term across that many cores
	// (the real stack's matcher.Config.MatchShards fan-out).
	service := int64(m.cl.cfg.BaseMatchCost)/int64(m.cl.cfg.BatchSize) +
		int64(m.cl.cfg.PerScanCost)*int64(scanned)/int64(m.cl.cfg.MatchShards) +
		int64(m.cl.cfg.PerDeliverCost)*int64(len(matchedSubs))
	const ewmaAlpha = 0.1
	if m.serviceEWMA[dim] == 0 {
		m.serviceEWMA[dim] = float64(service)
	} else {
		m.serviceEWMA[dim] += ewmaAlpha * (float64(service) - m.serviceEWMA[dim])
	}
	m.busyNs += service
	m.cl.eng.After(time.Duration(service), func() {
		m.complete(qm, dim, matchedSubs)
	})
}

// complete finishes a message: records μ, response time (including the
// delivery hop), and continues serving.
func (m *simMatcher) complete(qm queuedMsg, dim int, matchedSubs []*core.Subscription) {
	now := m.cl.eng.Now()
	m.busyDim[dim]--
	if !m.alive {
		// The server crashed while this message was being matched.
		m.cl.lostOrRetry(qm)
		return
	}
	_ = now
	m.matched[dim].Mark(m.cl.eng.Now(), 1)
	m.processed++
	m.deliveries += int64(len(matchedSubs))
	m.matchedTotal += int64(len(matchedSubs))
	respAt := m.cl.eng.Now() + int64(m.cl.cfg.NetDelay)
	if m.cl.cfg.Edges > 0 {
		// Deliveries ride an extra hop through the edge tier, which spends
		// EdgeFanoutCost per matched session re-matching and enqueueing;
		// that work is spread across the Edges servers.
		fanout := int64(m.cl.cfg.EdgeFanoutCost) * int64(len(matchedSubs)) / int64(m.cl.cfg.Edges)
		respAt += int64(m.cl.cfg.NetDelay) + fanout
		m.cl.stats.EdgeDeliveries.Add(int64(len(matchedSubs)))
	}
	m.cl.recordResponse(respAt, qm.m)
	if t := qm.m.Trace; t != nil {
		t.Stamp(core.HopMatch, now)
		// The delivery and the ack both ride one network hop; the trace is
		// recorded when the ack reaches the dispatcher, as in the real stack.
		msg := qm.m
		m.cl.eng.After(m.cl.cfg.NetDelay, func() {
			at := m.cl.eng.Now()
			t.Stamp(core.HopDeliver, at)
			t.Stamp(core.HopAck, at)
			m.cl.tel.Tracer.Record(msg.ID, t)
			if pub := t.Hops[core.HopPublish]; pub != 0 {
				m.cl.e2eLatency.Observe(at - pub)
			}
		})
	}
	if m.cl.cfg.OnDeliver != nil {
		m.cl.cfg.OnDeliver(qm.m, matchedSubs)
	}
	m.serveNext(dim)
}

// loadSnapshot builds the per-dimension load report at time now.
func (m *simMatcher) loadSnapshot(now int64) []forward.DimLoad {
	k := len(m.queues)
	out := make([]forward.DimLoad, k)
	for i := 0; i < k; i++ {
		// μ is the dimension stage's service capacity — workers times the
		// inverse of the smoothed per-message matching time — not its recent
		// throughput: an idle-but-fast stage must look fast. Cold dimensions
		// are seeded by probing the index so the first reports already carry
		// realistic costs (otherwise every stage looks equally cheap and the
		// first seconds herd messages onto expensive hot spots).
		if m.serviceEWMA[i] <= 0 {
			m.serviceEWMA[i] = m.probeService(i)
		}
		mu := float64(m.workersFor(i)) * float64(time.Second) / m.serviceEWMA[i]
		out[i] = forward.DimLoad{
			Subs:        m.indexes[i].Len(),
			QueueLen:    len(m.queues[i]),
			ArrivalRate: m.arrivals[i].Rate(now),
			MatchRate:   mu,
			ReportedAt:  now,
		}
	}
	return out
}

// probeService estimates the per-message service time (ns) of a cold
// dimension stage by stabbing the index at a few stored predicate centers.
func (m *simMatcher) probeService(dim int) float64 {
	idx := m.indexes[dim]
	base := float64(m.cl.cfg.BaseMatchCost) / float64(m.cl.cfg.BatchSize)
	if idx.Len() == 0 {
		return base
	}
	subs := idx.All(nil)
	total, probes := 0, 0
	for i := 0; i < len(subs) && probes < 3; i += 1 + len(subs)/3 {
		p := subs[i].Predicates[dim]
		_, scanned := idx.Stab((p.Low+p.High)/2, nil)
		total += scanned
		probes++
	}
	if probes == 0 {
		return base
	}
	return base + float64(m.cl.cfg.PerScanCost)*float64(total)/
		float64(probes)/float64(m.cl.cfg.MatchShards)
}

// shouldReport applies the paper's ">10% change" push suppression.
func (m *simMatcher) shouldReport(snap []forward.DimLoad) bool {
	if !m.reported || len(m.lastReport) != len(snap) {
		return true
	}
	changed := func(old, new float64) bool {
		if old == 0 {
			return new != 0
		}
		d := (new - old) / old
		if d < 0 {
			d = -d
		}
		return d > m.cl.cfg.ReportDeltaFrac
	}
	for i, l := range snap {
		p := m.lastReport[i]
		if changed(float64(p.QueueLen), float64(l.QueueLen)) ||
			changed(p.ArrivalRate, l.ArrivalRate) ||
			changed(p.MatchRate, l.MatchRate) ||
			p.Subs != l.Subs {
			return true
		}
	}
	return false
}

// fail kills the matcher: queued messages are lost, nothing further is
// served.
func (m *simMatcher) fail() {
	if !m.alive {
		return
	}
	m.alive = false
	for d := range m.queues {
		for _, qm := range m.queues[d] {
			m.cl.lostOrRetry(qm)
		}
		m.queues[d] = nil
	}
	m.queued = 0
}

// utilizationSince returns the matcher's busy fraction of its total
// capacity (k per-dimension workers) since the last snapshot and resets the
// snapshot mark.
func (m *simMatcher) utilizationSince(windowNs int64) float64 {
	delta := m.busyNs - m.busyMark
	m.busyMark = m.busyNs
	if windowNs <= 0 {
		return 0
	}
	u := float64(delta) / float64(windowNs) / float64(len(m.queues))
	if u > 1 {
		u = 1
	}
	return u
}

// subsOnDim returns the subscription count of the dimension-dim set.
func (m *simMatcher) subsOnDim(dim int) int { return m.indexes[dim].Len() }
