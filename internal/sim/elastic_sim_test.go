package sim

import (
	"sort"
	"testing"
	"time"

	"bluedove/internal/core"
	"bluedove/internal/elastic"
	"bluedove/internal/workload"
)

// autoscaleRun drives one deterministic autoscale scenario on the virtual
// clock: a 2-matcher cluster under a load step far above its capacity, then
// back to near idle. Returns the decision sequence and the peak live matcher
// count.
func autoscaleRun(t *testing.T, seed int64) ([]elastic.Decision, int, *Cluster) {
	t.Helper()
	cfg := testConfig(2)
	cfg.Seed = seed
	cfg.Elastic = true
	cfg.ElasticCheckInterval = 2 * time.Second
	var decisions []elastic.Decision
	cfg.ElasticConfig = elastic.Config{
		SustainRounds:  2,
		CooldownRounds: 5,
		MinMatchers:    2,
		MaxMatchers:    6,
		OnDecision:     func(d elastic.Decision) { decisions = append(decisions, d) },
	}
	cl := NewCluster(cfg)
	gen := workload.New(workload.Default(cfg.Space))
	cl.SubscribeAll(gen.Subscriptions(2000))

	// Baseline → surge (≈2× two matchers' capacity) → near idle.
	sched := workload.Steps{
		{From: 0, Rate: 300},
		{From: int64(20 * time.Second), Rate: 2500},
		{From: int64(80 * time.Second), Rate: 150},
	}
	cl.Drive(gen, sched, int64(260*time.Second))

	peak := 0
	cl.Engine().Every(int64(time.Second), time.Second, func() bool {
		if n := len(cl.Matchers()); n > peak {
			peak = n
		}
		return true
	})
	cl.RunUntil(int64(300 * time.Second))
	return decisions, peak, cl
}

// TestElasticAutoscaleSim: the embedded controller on the virtual clock
// scales 2→N under a surge and drains back to the floor when it passes,
// losing nothing, with no thrash.
func TestElasticAutoscaleSim(t *testing.T) {
	const seed = 42
	t.Logf("sim seed %d (decisions are a pure function of the seed)", seed)
	decisions, peak, cl := autoscaleRun(t, seed)

	if peak <= 2 {
		t.Fatalf("peak matchers = %d, want growth beyond the initial 2", peak)
	}
	if final := len(cl.Matchers()); final != 2 {
		t.Fatalf("final matchers = %d, want back at the floor of 2\ndecisions: %v", final, decisions)
	}
	ctrl := cl.ElasticController()
	if ctrl.ScaleUps.Value() == 0 || ctrl.ScaleDowns.Value() == 0 {
		t.Fatalf("ups=%d downs=%d, want both nonzero; decisions: %v",
			ctrl.ScaleUps.Value(), ctrl.ScaleDowns.Value(), decisions)
	}
	if ctrl.Thrash.Value() != 0 {
		t.Fatalf("thrash = %d, want 0 (hysteresis must separate the surge from the drain)",
			ctrl.Thrash.Value())
	}
	if lost := cl.Stats().Lost.Value(); lost != 0 {
		t.Fatalf("lost = %d, want 0 — scale-downs must drain, not drop", lost)
	}
	if cl.Stats().Joins.Value() != ctrl.ScaleUps.Value() {
		t.Fatalf("joins %d != scale-up decisions %d", cl.Stats().Joins.Value(), ctrl.ScaleUps.Value())
	}
	if cl.Stats().Leaves.Value() != ctrl.ScaleDowns.Value() {
		t.Fatalf("leaves %d != scale-down decisions %d", cl.Stats().Leaves.Value(), ctrl.ScaleDowns.Value())
	}
}

// TestElasticAutoscaleSimDeterministic: the same seed replays the exact
// decision sequence — round, action, target and all.
func TestElasticAutoscaleSimDeterministic(t *testing.T) {
	a, _, _ := autoscaleRun(t, 42)
	b, _, _ := autoscaleRun(t, 42)
	if len(a) == 0 {
		t.Fatal("no decisions from the autoscale scenario")
	}
	if len(a) != len(b) {
		t.Fatalf("decision counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("decision %d differs across replays:\n  %v\n  %v", i, a[i], b[i])
		}
	}
}

// TestSimRemoveMatcherDrainsWithoutLoss: a graceful scale-down in mid-flight
// traffic loses nothing and leaves a complete cluster — every message
// published after the drain still matches exactly what the oracle says.
func TestSimRemoveMatcherDrainsWithoutLoss(t *testing.T) {
	cfg := testConfig(4)
	got := make(map[core.MessageID][]core.SubscriptionID)
	cfg.OnDeliver = func(m *core.Message, subs []*core.Subscription) {
		ids := make([]core.SubscriptionID, len(subs))
		for i, s := range subs {
			ids[i] = s.ID
		}
		sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
		got[m.ID] = ids
	}
	cl := NewCluster(cfg)
	gen := workload.New(workload.Default(cfg.Space))
	subs := gen.Subscriptions(800)
	cl.SubscribeAll(subs)

	victim := cl.Matchers()[1]
	cl.Drive(gen, workload.ConstantRate(400), int64(20*time.Second))
	cl.Engine().After(5*time.Second, func() {
		if err := cl.RemoveMatcher(victim); err != nil {
			t.Errorf("RemoveMatcher: %v", err)
		}
	})
	cl.RunUntil(int64(10 * time.Second))

	// Mid-drain traffic, then fully settled.
	var published []*core.Message
	for i := 0; i < 200; i++ {
		m := gen.Message()
		published = append(published, m)
		cl.Publish(m)
		cl.RunFor(5 * time.Millisecond)
	}
	cl.RunUntil(int64(60 * time.Second))

	if cl.Table().HasMatcher(victim) {
		t.Fatal("victim still owns segments after removal")
	}
	if n := len(cl.Matchers()); n != 3 {
		t.Fatalf("live matchers = %d, want 3", n)
	}
	if lost := cl.Stats().Lost.Value(); lost != 0 {
		t.Fatalf("lost = %d, want 0 across a graceful drain", lost)
	}
	for _, m := range published {
		want := []core.SubscriptionID{}
		for _, s := range subs {
			if s.Matches(m) {
				want = append(want, s.ID)
			}
		}
		sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
		gotIDs := got[m.ID]
		if len(gotIDs) != len(want) {
			t.Fatalf("message %v matched %v, oracle says %v", m.ID, gotIDs, want)
		}
		for i := range want {
			if gotIDs[i] != want[i] {
				t.Fatalf("message %v matched %v, oracle says %v", m.ID, gotIDs, want)
			}
		}
	}
}

// TestSimSplitSegmentRehomes: a hot-segment split adds a segment on the cut
// dimension, hands the upper half's subscriptions over before the table
// flips, and stays oracle-exact for traffic published right through it.
func TestSimSplitSegmentRehomes(t *testing.T) {
	cfg := testConfig(3)
	got := make(map[core.MessageID][]core.SubscriptionID)
	cfg.OnDeliver = func(m *core.Message, subs []*core.Subscription) {
		ids := make([]core.SubscriptionID, len(subs))
		for i, s := range subs {
			ids[i] = s.ID
		}
		sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
		got[m.ID] = ids
	}
	cl := NewCluster(cfg)
	gen := workload.New(workload.Default(cfg.Space))
	subs := gen.Subscriptions(800)
	cl.SubscribeAll(subs)
	cl.RunUntil(int64(time.Second))

	ids := cl.Matchers()
	before := cl.Table().Segments(0)
	segs, err := cl.Table().SegmentsOf(ids[0], 0)
	if err != nil {
		t.Fatal(err)
	}
	cut, err := cl.SplitSegment(ids[0], 0, ids[2])
	if err != nil {
		t.Fatalf("SplitSegment: %v", err)
	}
	if cl.Table().Segments(0) != before+1 {
		t.Fatalf("segments on dim 0 = %d, want %d", cl.Table().Segments(0), before+1)
	}
	inSome := false
	for _, s := range segs {
		if cut > s.Low && cut < s.High {
			inSome = true
		}
	}
	if !inSome {
		t.Fatalf("cut %g falls outside the hot matcher's previous segments %v", cut, segs)
	}

	var published []*core.Message
	for i := 0; i < 200; i++ {
		m := gen.Message()
		published = append(published, m)
		cl.Publish(m)
		cl.RunFor(5 * time.Millisecond)
	}
	cl.RunUntil(int64(30 * time.Second))

	if lost := cl.Stats().Lost.Value(); lost != 0 {
		t.Fatalf("lost = %d, want 0 across a split", lost)
	}
	for _, m := range published {
		want := 0
		for _, s := range subs {
			if s.Matches(m) {
				want++
			}
		}
		if len(got[m.ID]) != want {
			t.Fatalf("message %v matched %d subs, oracle says %d", m.ID, len(got[m.ID]), want)
		}
	}
}
