package sim

import (
	"fmt"
	"math/rand"
	"sort"
	"time"

	"bluedove/internal/core"
	"bluedove/internal/elastic"
	"bluedove/internal/forward"
	"bluedove/internal/index"
	"bluedove/internal/metrics"
	"bluedove/internal/partition"
	"bluedove/internal/telemetry"
	"bluedove/internal/workload"
)

// Cluster is a simulated BlueDove deployment: dispatchers running the real
// placement/forwarding code, simulated matchers, the authoritative segment
// table, and the periodic control traffic (load reports, table pulls,
// gossip) that the paper's policies depend on.
type Cluster struct {
	cfg   Config
	eng   *Engine
	rng   *rand.Rand
	table *partition.Table

	matchers    map[core.NodeID]*simMatcher
	order       []core.NodeID // deterministic matcher iteration order
	dispatchers []*simDispatcher
	registry    map[core.SubscriptionID]*core.Subscription

	nextNode core.NodeID
	nextMsg  core.MessageID
	nextSub  core.SubscriptionID
	rrDisp   int

	stats     *Stats
	arrMeter  *metrics.RateMeter
	joinTimes []int64
	failTimes []int64

	elCtrl   *elastic.Controller  // nil unless Config.Elastic
	draining map[core.NodeID]bool // matchers mid-removal

	tel        *telemetry.Telemetry // nil unless TraceSampleRate > 0
	e2eLatency *metrics.Histogram   // publish → deliver, virtual ns, traced only
}

// simDispatcher is a dispatcher's local state: a possibly stale table view,
// the latest load report per matcher, failure beliefs, and the count of its
// own forwards since each report (folded into the adaptive policy's queue
// estimate so bursts it creates are visible before the next report). It
// implements forward.LoadView.
type simDispatcher struct {
	id      core.NodeID
	cl      *Cluster
	table   *partition.Table
	loads   map[core.NodeID][]forward.DimLoad
	pending map[core.NodeID][]int
	dead    map[core.NodeID]bool
}

// Load implements forward.LoadView.
func (d *simDispatcher) Load(node core.NodeID, dim int) (forward.DimLoad, bool) {
	ls, ok := d.loads[node]
	if !ok || dim >= len(ls) {
		return forward.DimLoad{}, false
	}
	l := ls[dim]
	if p := d.pending[node]; dim < len(p) {
		// Scale by dispatcher count: the other dispatchers see the same
		// reports and make the same choices.
		l.PendingLocal = float64(p[dim]) * float64(len(d.cl.dispatchers))
	}
	return l, true
}

// sent records one forward to (node, dim) since the last report.
func (d *simDispatcher) sent(node core.NodeID, dim, k int) {
	p, ok := d.pending[node]
	if !ok || len(p) != k {
		p = make([]int, k)
		d.pending[node] = p
	}
	if dim < len(p) {
		p[dim]++
	}
}

// Alive implements forward.LoadView.
func (d *simDispatcher) Alive(node core.NodeID) bool { return !d.dead[node] }

// NewCluster builds a simulated cluster and starts its periodic control
// events. The virtual clock starts at 0; nothing runs until RunUntil.
func NewCluster(cfg Config) *Cluster {
	return newClusterWithEngine(cfg.withDefaults(), NewEngine())
}

// newClusterWithEngine builds a cluster over an existing event engine, so a
// multi-cluster federation can share one virtual clock. cfg must already
// have defaults applied.
func newClusterWithEngine(cfg Config, eng *Engine) *Cluster {
	cl := &Cluster{
		cfg:      cfg,
		eng:      eng,
		rng:      rand.New(rand.NewSource(cfg.Seed)),
		matchers: make(map[core.NodeID]*simMatcher),
		registry: make(map[core.SubscriptionID]*core.Subscription),
		draining: make(map[core.NodeID]bool),
		nextNode: 1,
		nextMsg:  1,
		nextSub:  1,
		stats:    newStats(),
		arrMeter: metrics.NewRateMeter(cfg.RateWindow, 8),
	}
	ids := make([]core.NodeID, cfg.Matchers)
	for i := range ids {
		ids[i] = cl.nextNode
		cl.nextNode++
		cl.matchers[ids[i]] = newSimMatcher(cl, ids[i])
		cl.order = append(cl.order, ids[i])
	}
	tab, err := partition.NewUniform(cfg.Space, ids)
	if err != nil {
		panic(err) // unreachable: ids are unique and non-empty
	}
	cl.table = tab
	if cfg.Elastic {
		ec := cfg.ElasticConfig
		if ec.CooldownRounds == 0 && cfg.ElasticCooldown > 0 {
			// The legacy knob is wall-clock; the controller counts rounds.
			ec.CooldownRounds = int((cfg.ElasticCooldown + cfg.ElasticCheckInterval - 1) /
				cfg.ElasticCheckInterval)
		}
		cl.elCtrl = elastic.NewController(ec)
	}
	if cfg.TraceSampleRate > 0 {
		cl.initTelemetry()
	}
	for i := 0; i < cfg.Dispatchers; i++ {
		cl.dispatchers = append(cl.dispatchers, &simDispatcher{
			id:      cl.nextNode,
			cl:      cl,
			table:   tab,
			loads:   make(map[core.NodeID][]forward.DimLoad),
			pending: make(map[core.NodeID][]int),
			dead:    make(map[core.NodeID]bool),
		})
		cl.nextNode++
	}
	cl.startControlLoops()
	return cl
}

// initTelemetry builds the simulated cluster's telemetry bundle over the
// virtual clock: the same registry/tracer code the real nodes run, with
// every timestamp drawn from the event engine.
func (cl *Cluster) initTelemetry() {
	cl.e2eLatency = metrics.NewHistogram()
	cl.tel = telemetry.New(telemetry.Options{
		SampleRate: cl.cfg.TraceSampleRate,
		Now:        cl.eng.Now,
		Base:       []telemetry.Label{telemetry.L("role", "sim")},
	})
	r := cl.tel.Registry
	r.Counter("sim.arrived", "publications injected", &cl.stats.Arrived)
	r.Counter("sim.subscriptions", "subscriptions registered", &cl.stats.Subscriptions)
	r.Counter("sim.gossip_bytes", "modeled gossip traffic", &cl.stats.GossipBytes)
	r.Counter("sim.load_push_bytes", "modeled load-report traffic", &cl.stats.LoadPushBytes)
	r.Gauge("sim.backlog", "messages queued across all matchers", func(int64) float64 {
		return float64(cl.TotalBacklog())
	})
	r.Gauge("sim.arrival_rate", "cluster arrival rate lambda (msg/s)", func(now int64) float64 {
		return cl.arrMeter.Rate(now)
	})
	r.Histogram("sim.deliver_latency_seconds",
		"publish to delivery per traced publication (virtual time)", cl.e2eLatency, 1e-9)
	if cl.elCtrl != nil {
		r.Counter("elastic.scale_up", "controller scale-up decisions", &cl.elCtrl.ScaleUps)
		r.Counter("elastic.scale_down", "controller scale-down decisions", &cl.elCtrl.ScaleDowns)
		r.Counter("elastic.splits", "controller hot-segment split decisions", &cl.elCtrl.Splits)
		r.Counter("elastic.replaces", "scale-ups fired to replace a durability-failed matcher", &cl.elCtrl.Replaces)
		r.Counter("elastic.thrash", "scale direction reversals inside the thrash window", &cl.elCtrl.Thrash)
		r.Gauge("elastic.matchers", "live matcher count", func(int64) float64 {
			return float64(len(cl.Matchers()))
		})
	}
}

// Telemetry returns the simulated cluster's telemetry bundle (nil unless
// Config.TraceSampleRate > 0).
func (cl *Cluster) Telemetry() *telemetry.Telemetry { return cl.tel }

// Engine returns the cluster's event engine (for scheduling custom events in
// tests and experiments).
func (cl *Cluster) Engine() *Engine { return cl.eng }

// Now returns the current virtual time.
func (cl *Cluster) Now() int64 { return cl.eng.Now() }

// Table returns the authoritative segment table.
func (cl *Cluster) Table() *partition.Table { return cl.table }

// Stats returns the cluster's metrics.
func (cl *Cluster) Stats() *Stats { return cl.stats }

// startControlLoops schedules load reports, table pulls, gossip overhead
// accounting, the loss-rate sampler, and (optionally) the elasticity
// controller.
func (cl *Cluster) startControlLoops() {
	cfg := cl.cfg
	// Matcher load reports (push, suppressed below 10% change). The first
	// round fires at time zero so dispatchers never route blind.
	cl.eng.Every(0, cfg.ReportInterval, func() bool {
		now := cl.eng.Now()
		for _, id := range cl.order {
			m := cl.matchers[id]
			if !m.alive {
				continue
			}
			snap := m.loadSnapshot(now)
			if !m.shouldReport(snap) {
				continue
			}
			m.lastReport = snap
			m.reported = true
			for _, d := range cl.dispatchers {
				d := d
				cl.eng.After(cfg.NetDelay, func() {
					d.loads[m.id] = snap
					d.pending[m.id] = make([]int, len(snap))
				})
				cl.stats.LoadPushBytes.Add(64) // per paper: 64 B per push
			}
		}
		return true
	})
	// Dispatcher table pulls.
	cl.eng.Every(int64(cfg.TablePullInterval), cfg.TablePullInterval, func() bool {
		size := int64(len(cl.table.Encode()))
		for _, d := range cl.dispatchers {
			d := d
			tab := cl.table
			cl.eng.After(cfg.NetDelay, func() {
				if d.table.Version() < tab.Version() {
					d.table = tab
				}
			})
			cl.stats.TablePullBytes.Add(size)
		}
		return true
	})
	// Gossip overhead accounting: each matcher exchanges its endpoint-state
	// table (segment table + 64 B heartbeat state per node) with one random
	// peer per second (push-pull, so the exchange is counted twice).
	cl.eng.Every(int64(time.Second), time.Second, func() bool {
		size := int64(len(cl.table.Encode())) + 64*int64(len(cl.order))
		for _, id := range cl.order {
			if cl.matchers[id].alive {
				cl.stats.GossipBytes.Add(2 * size)
			}
		}
		return true
	})
	// Loss/arrival 1-second sampler.
	cl.eng.Every(int64(time.Second), time.Second, func() bool {
		cl.stats.sampleLoss(cl.eng.Now())
		return true
	})
	if cfg.Elastic {
		cl.eng.Every(int64(cfg.ElasticCheckInterval), cfg.ElasticCheckInterval, func() bool {
			cl.elasticTick()
			return true
		})
	}
}

// elasticTick runs one controller round: scrape every live matcher at the
// current virtual time, feed the shared elastic.Controller — the same
// decision logic the real cluster embeds — and execute at most one decision.
func (cl *Cluster) elasticTick() {
	d := cl.elCtrl.Observe(cl.Scrape(cl.eng.Now()))
	if d == nil {
		return
	}
	switch d.Action {
	case elastic.ScaleUp:
		cl.AddMatcher()
	case elastic.ScaleDown:
		_ = cl.RemoveMatcher(d.Target)
	case elastic.Split:
		_, _ = cl.SplitSegment(d.Target, d.Dim, d.To)
	}
}

// Scrape samples every live matcher's load for the elasticity controller,
// mirroring the real cluster's scrape: the same loadSnapshot that feeds the
// dispatchers' forwarding policy feeds the scaling decisions.
func (cl *Cluster) Scrape(now int64) elastic.Scrape {
	s := elastic.Scrape{At: now}
	for _, id := range cl.order {
		m := cl.matchers[id]
		if !m.alive {
			continue
		}
		ms := elastic.MatcherSample{ID: id, Draining: cl.draining[id]}
		if m.processed > 0 {
			ms.ScannedPerMsg = float64(m.busyNs) / float64(m.processed) /
				float64(cl.cfg.PerScanCost) // service-time proxy for scan depth
		}
		for _, l := range m.loadSnapshot(now) {
			ms.Dims = append(ms.Dims, elastic.DimSample{
				Subs:        l.Subs,
				QueueLen:    l.QueueLen,
				ArrivalRate: l.ArrivalRate,
				MatchRate:   l.MatchRate,
			})
		}
		s.Matchers = append(s.Matchers, ms)
	}
	return s
}

// ElasticController exposes the embedded controller (nil unless
// Config.Elastic), for tests and experiments.
func (cl *Cluster) ElasticController() *elastic.Controller { return cl.elCtrl }

// TotalBacklog returns the number of messages queued across all matchers.
func (cl *Cluster) TotalBacklog() int {
	total := 0
	for _, id := range cl.order {
		total += cl.matchers[id].queued
	}
	return total
}

// Matchers returns the IDs of all live matchers, sorted.
func (cl *Cluster) Matchers() []core.NodeID {
	var out []core.NodeID
	for _, id := range cl.order {
		if cl.matchers[id].alive {
			out = append(out, id)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Subscribe registers a subscription: it is recorded in the dispatcher-side
// registry (used for failure recovery) and installed on every matcher the
// placement strategy names. An ID is assigned when the subscription has
// none. Returns the subscription's ID.
func (cl *Cluster) Subscribe(s *core.Subscription) core.SubscriptionID {
	if s.ID == 0 {
		s.ID = cl.nextSub
	}
	if s.ID >= cl.nextSub {
		cl.nextSub = s.ID + 1
	}
	cl.registry[s.ID] = s
	for _, a := range cl.cfg.Strategy.Assign(cl.table, s) {
		if m, ok := cl.matchers[a.Node]; ok && m.alive {
			m.store(a.Dim, s)
		}
	}
	cl.stats.Subscriptions.Add(1)
	return s.ID
}

// SubscribeAll registers a batch of subscriptions.
func (cl *Cluster) SubscribeAll(subs []*core.Subscription) {
	for _, s := range subs {
		cl.Subscribe(s)
	}
}

// Publish injects a publication at the current virtual time: a round-robin
// dispatcher stamps it, ranks the candidates with the forwarding policy and
// forwards it one hop to the best alive candidate. Messages with no alive
// candidate are lost.
func (cl *Cluster) Publish(m *core.Message) {
	now := cl.eng.Now()
	m.ID = cl.nextMsg
	cl.nextMsg++
	m.PublishedAt = now
	if m.TTL == 0 && cl.cfg.MessageTTL > 0 {
		m.TTL = int64(cl.cfg.MessageTTL)
	}
	cl.stats.Arrived.Add(1)
	cl.arrMeter.Mark(now, 1)
	if cl.tel != nil && cl.tel.Sampler.Sample() {
		m.Trace = &core.TraceCtx{ID: core.TraceID(m.ID)}
		m.Trace.Stamp(core.HopPublish, now)
	}
	d := cl.dispatchers[cl.rrDisp]
	cl.rrDisp = (cl.rrDisp + 1) % len(cl.dispatchers)
	cl.eng.After(cl.cfg.DispatchCost, func() { cl.forward(d, m) })
}

// forward runs the dispatcher-side candidate selection and one-hop send.
func (cl *Cluster) forward(d *simDispatcher, m *core.Message) {
	cl.forwardMsg(queuedMsg{m: m, from: d})
}

// forwardMsg routes one (possibly retried) message to its best candidate,
// skipping matchers already attempted. It reports whether a forward went
// out (false: the message was lost or parked for a persistence retry).
func (cl *Cluster) forwardMsg(qm queuedMsg) bool {
	now := cl.eng.Now()
	d := qm.from
	cands := cl.cfg.Strategy.Candidates(d.table, qm.m)
	ranked := cl.cfg.Policy.Rank(now, cands, d)
	for _, c := range ranked {
		if qm.tried[c.Node] {
			continue
		}
		target := cl.matchers[c.Node]
		if target == nil {
			continue
		}
		if cl.cfg.Persistent || cl.cfg.BusyReroute {
			if qm.tried == nil {
				qm.tried = make(map[core.NodeID]bool)
			}
			qm.tried[c.Node] = true
		}
		qm.dim = c.Dim
		if t := qm.m.Trace; t != nil {
			t.Dispatcher = d.id
			t.Matcher = c.Node
			t.Dim = c.Dim
			t.Stamp(core.HopIngest, now)
			t.Stamp(core.HopForward, now)
		}
		d.sent(c.Node, c.Dim, cl.cfg.Space.K())
		cl.eng.After(cl.cfg.NetDelay, func() { target.enqueue(qm) })
		return true
	}
	if !cl.cfg.Persistent {
		cl.recordLoss(now)
		return false
	}
	// Persistence: no untried alive candidate right now — wait for failure
	// detection / recovery to change the view, then retry afresh.
	cl.retryLater(qm)
	return false
}

// busyReject handles a forward bounced off a full matcher stage: the busy
// NACK corrects the dispatcher's load view with the fresher queue depth,
// and with BusyReroute the message rides one network hop back and is
// re-forwarded to the next-best untried candidate (bounded by
// PersistMaxAttempts). Without the re-route the rejected forward is lost —
// the pre-overload-layer silent drop.
func (cl *Cluster) busyReject(qm queuedMsg, at core.NodeID) {
	cl.stats.BusyNacks.Add(1)
	now := cl.eng.Now()
	if d := qm.from; d != nil {
		if ls := d.loads[at]; qm.dim < len(ls) {
			ls[qm.dim].QueueLen = cl.cfg.MatcherQueueDepth
			ls[qm.dim].ReportedAt = now
		}
	}
	if !cl.cfg.BusyReroute || qm.from == nil {
		cl.recordLoss(now)
		return
	}
	qm.attempts++
	if qm.attempts > cl.cfg.PersistMaxAttempts {
		cl.recordLoss(now)
		return
	}
	// The NACK travels back one hop before the dispatcher can re-forward.
	cl.eng.After(cl.cfg.NetDelay, func() {
		if cl.forwardMsg(qm) {
			cl.stats.Rerouted.Add(1)
		}
	})
}

// lostOrRetry handles a message caught on a crashed matcher: with the
// persistence extension it is re-forwarded, otherwise counted lost.
func (cl *Cluster) lostOrRetry(qm queuedMsg) {
	if !cl.cfg.Persistent || qm.from == nil {
		cl.recordLoss(cl.eng.Now())
		return
	}
	qm.attempts++
	if qm.attempts > cl.cfg.PersistMaxAttempts {
		cl.recordLoss(cl.eng.Now())
		return
	}
	cl.stats.PersistRetries.Add(1)
	cl.forwardMsg(qm)
}

// retryLater re-attempts a persistent message after the retry delay with a
// cleared attempt set (membership may have changed). Waiting does not
// consume send attempts — a message whose only candidates are a crashed
// matcher must survive until failure recovery republishes the table — but
// the total wait is bounded so an unrecoverable cluster cannot hold
// messages forever.
func (cl *Cluster) retryLater(qm queuedMsg) {
	qm.waits++
	if qm.waits > cl.cfg.PersistMaxAttempts*10 {
		cl.recordLoss(cl.eng.Now())
		return
	}
	qm.tried = nil
	cl.eng.After(cl.cfg.PersistRetryDelay, func() { cl.forwardMsg(qm) })
}

// Drive schedules an open-loop workload: publications drawn from gen at the
// rate given by sched, from the current time until virtual time until.
// Interarrival times are deterministic (1/rate), matching the paper's
// constant-rate generators.
func (cl *Cluster) Drive(gen *workload.Generator, sched workload.Schedule, until int64) {
	var next func()
	next = func() {
		now := cl.eng.Now()
		if now >= until {
			return
		}
		rate := sched.RateAt(now)
		if rate <= 0 {
			// Idle: re-check the schedule every 100ms.
			cl.eng.After(100*time.Millisecond, next)
			return
		}
		cl.Publish(gen.Message())
		cl.eng.After(time.Duration(float64(time.Second)/rate), next)
	}
	cl.eng.At(cl.eng.Now(), next)
}

// RunUntil advances the simulation to virtual time t.
func (cl *Cluster) RunUntil(t int64) { cl.eng.RunUntil(t) }

// RunFor advances the simulation by d.
func (cl *Cluster) RunFor(d time.Duration) { cl.eng.RunUntil(cl.eng.Now() + int64(d)) }

// recordLoss counts one lost message.
func (cl *Cluster) recordLoss(now int64) { cl.stats.recordLoss(now) }

// recordResponse records a completed message's response time, keyed by its
// arrival time.
func (cl *Cluster) recordResponse(at int64, m *core.Message) {
	cl.stats.recordResponse(m.PublishedAt, at-m.PublishedAt, cl.cfg.SampleEvery)
}

// FailMatcher crashes a matcher at the current virtual time: its queued
// messages are lost, dispatchers keep forwarding to it (losing messages)
// until the failure-detection delay elapses, and after the recovery delay
// its subscriptions are re-installed on the surviving matchers via a new
// segment table.
func (cl *Cluster) FailMatcher(id core.NodeID) error {
	m, ok := cl.matchers[id]
	if !ok || !m.alive {
		return fmt.Errorf("sim: matcher %v not alive", id)
	}
	if len(cl.Matchers()) <= 1 {
		return fmt.Errorf("sim: cannot fail the last matcher")
	}
	m.fail()
	cl.stats.Failures.Add(1)
	cl.failTimes = append(cl.failTimes, cl.eng.Now())
	// Failure detection: dispatchers mark it dead (candidate failover).
	cl.eng.After(cl.cfg.FailureDetectDelay, func() {
		for _, d := range cl.dispatchers {
			d.dead[id] = true
		}
		// Recovery: remove from the table and re-install its subscriptions.
		cl.eng.After(cl.cfg.RecoveryDelay, func() {
			newTab, _, err := cl.table.Leave(id)
			if err != nil {
				return // already removed by a concurrent change
			}
			cl.table = newTab
			cl.reconcile()
			cl.propagateTable()
		})
	})
	return nil
}

// FailRandomMatcher crashes a uniformly chosen live matcher and returns its
// ID.
func (cl *Cluster) FailRandomMatcher() (core.NodeID, error) {
	live := cl.Matchers()
	if len(live) <= 1 {
		return 0, fmt.Errorf("sim: no matcher available to fail")
	}
	id := live[cl.rng.Intn(len(live))]
	return id, cl.FailMatcher(id)
}

// AddMatcher joins a new matcher at the current virtual time: per dimension
// it takes the upper half of the most loaded (by stored subscriptions)
// matcher's segment, receives the overlapping subscriptions immediately, and
// dispatchers switch to the new table after the propagation delay. The
// victims prune handed-over subscriptions after the same delay. Returns the
// new matcher's ID.
func (cl *Cluster) AddMatcher() core.NodeID {
	id := cl.nextNode
	cl.nextNode++
	m := newSimMatcher(cl, id)
	k := cl.cfg.Space.K()
	victims := make([]core.NodeID, k)
	for dim := 0; dim < k; dim++ {
		// "Most loaded matcher in each dimension" (paper Section IV-E):
		// rank by queued work on that dimension's stage, breaking ties (for
		// example on an idle cluster) by stored subscriptions.
		bestQ, bestSubs := -1, -1
		for _, mid := range cl.order {
			vm := cl.matchers[mid]
			if !vm.alive || !cl.table.HasMatcher(mid) {
				continue
			}
			q, s := len(vm.queues[dim]), vm.subsOnDim(dim)
			if q > bestQ || (q == bestQ && s > bestSubs) {
				bestQ, bestSubs = q, s
				victims[dim] = mid
			}
		}
	}
	newTab, handovers, err := cl.table.Join(id, victims)
	if err != nil {
		// Segments too narrow to split further; reuse the id anyway with a
		// full reconcile (no table change).
		cl.matchers[id] = m
		cl.order = append(cl.order, id)
		return id
	}
	cl.matchers[id] = m
	cl.order = append(cl.order, id)
	cl.table = newTab
	// Transfer: new matcher receives overlapping subscriptions now.
	for _, h := range handovers {
		if vm, ok := cl.matchers[h.From]; ok {
			for _, s := range vm.indexes[h.Dim].Overlapping(h.Range, nil) {
				m.store(h.Dim, s)
			}
		}
	}
	cl.stats.Joins.Add(1)
	cl.joinTimes = append(cl.joinTimes, cl.eng.Now())
	cl.propagateTable()
	// Victims prune after the table has reached all dispatchers, so stale
	// routing cannot miss matches.
	grace := cl.cfg.TablePropagateDelay + cl.cfg.NetDelay
	cl.eng.After(grace, func() { cl.pruneToTable() })
	return id
}

// RemoveMatcher gracefully drains and removes a live matcher — the
// controller's scale-down actuator, the simulated counterpart of the real
// cluster's leave protocol. Its segments are absorbed by adjacent owners and
// the overlapping subscriptions transfer immediately, so routing on the new
// table never misses a match; the leaver keeps serving stale-routed traffic
// through the propagation grace and retires only once its queues and workers
// are empty — no message is dropped by a scale-down.
func (cl *Cluster) RemoveMatcher(id core.NodeID) error {
	m, ok := cl.matchers[id]
	if !ok || !m.alive {
		return fmt.Errorf("sim: matcher %v not alive", id)
	}
	if cl.draining[id] {
		return fmt.Errorf("sim: matcher %v already draining", id)
	}
	newTab, handovers, err := cl.table.Leave(id)
	if err != nil {
		return err
	}
	cl.draining[id] = true
	for _, h := range handovers {
		tm, ok := cl.matchers[h.To]
		if !ok || !tm.alive {
			continue
		}
		for _, s := range m.indexes[h.Dim].Overlapping(h.Range, nil) {
			tm.store(h.Dim, s)
		}
	}
	cl.table = newTab
	cl.stats.Leaves.Add(1)
	cl.propagateTable()
	grace := cl.cfg.TablePropagateDelay + cl.cfg.NetDelay
	var retire func()
	retire = func() {
		busy := 0
		for _, b := range m.busyDim {
			busy += b
		}
		if m.queued > 0 || busy > 0 {
			cl.eng.After(10*time.Millisecond, retire)
			return
		}
		m.alive = false
		delete(cl.draining, id)
	}
	cl.eng.After(grace, retire)
	return nil
}

// SplitSegment cuts hot's widest dimension-dim segment at the median stored
// predicate center and re-homes the upper half onto matcher to — the
// controller's split actuator for σ-skewed load. The receiving matcher gets
// the overlapping subscriptions before the table changes hands; the hot
// matcher prunes its half after the propagation grace. Returns the cut point.
func (cl *Cluster) SplitSegment(hot core.NodeID, dim int, to core.NodeID) (float64, error) {
	hm, ok := cl.matchers[hot]
	if !ok || !hm.alive {
		return 0, fmt.Errorf("sim: matcher %v not alive", hot)
	}
	tm, ok := cl.matchers[to]
	if !ok || !tm.alive {
		return 0, fmt.Errorf("sim: split target %v not alive", to)
	}
	if dim < 0 || dim >= len(hm.indexes) {
		return 0, fmt.Errorf("sim: split dim %d out of range", dim)
	}
	segs, err := cl.table.SegmentsOf(hot, dim)
	if err != nil {
		return 0, err
	}
	widest := segs[0]
	for _, s := range segs[1:] {
		if s.High-s.Low > widest.High-widest.Low {
			widest = s
		}
	}
	cut := splitPoint(hm.indexes[dim], dim, widest)
	newTab, h, err := cl.table.Split(dim, cut, to)
	if err != nil {
		return 0, err
	}
	for _, s := range hm.indexes[h.Dim].Overlapping(h.Range, nil) {
		tm.store(h.Dim, s)
	}
	cl.table = newTab
	cl.stats.Splits.Add(1)
	cl.propagateTable()
	grace := cl.cfg.TablePropagateDelay + cl.cfg.NetDelay
	cl.eng.After(grace, func() { cl.pruneToTable() })
	return cut, nil
}

// splitPoint picks the load-weighted cut for a segment: the median center of
// the stored predicates overlapping it (the same policy as the real
// matcher's SplitPoint), falling back to the midpoint when too few
// subscriptions vote.
func splitPoint(idx index.Index, dim int, r core.Range) float64 {
	var centers []float64
	for _, s := range idx.Overlapping(r, nil) {
		p := s.Predicates[dim]
		c := p.Low + (p.High-p.Low)/2
		if c > r.Low && c < r.High {
			centers = append(centers, c)
		}
	}
	mid := r.Low + (r.High-r.Low)/2
	if len(centers) < 2 {
		return mid
	}
	sort.Float64s(centers)
	cut := centers[len(centers)/2]
	if cut <= r.Low || cut >= r.High {
		return mid
	}
	return cut
}

// propagateTable delivers the authoritative table to every dispatcher after
// the gossip propagation delay.
func (cl *Cluster) propagateTable() {
	tab := cl.table
	cl.eng.After(cl.cfg.TablePropagateDelay, func() {
		for _, d := range cl.dispatchers {
			if d.table.Version() < tab.Version() {
				d.table = tab
			}
		}
	})
}

// reconcile installs every registered subscription wherever the current
// table's placement demands and it is missing — used after failure recovery,
// when the failed matcher's copies are gone.
func (cl *Cluster) reconcile() {
	for _, s := range cl.registry {
		for _, a := range cl.cfg.Strategy.Assign(cl.table, s) {
			if m, ok := cl.matchers[a.Node]; ok && m.alive && !m.indexes[a.Dim].Contains(s.ID) {
				m.store(a.Dim, s)
			}
		}
	}
}

// pruneToTable removes subscription copies no longer demanded by the current
// table (after a join's handover grace period).
func (cl *Cluster) pruneToTable() {
	desired := make(map[core.NodeID]map[int]map[core.SubscriptionID]bool)
	for _, s := range cl.registry {
		for _, a := range cl.cfg.Strategy.Assign(cl.table, s) {
			if desired[a.Node] == nil {
				desired[a.Node] = make(map[int]map[core.SubscriptionID]bool)
			}
			if desired[a.Node][a.Dim] == nil {
				desired[a.Node][a.Dim] = make(map[core.SubscriptionID]bool)
			}
			desired[a.Node][a.Dim][s.ID] = true
		}
	}
	for _, id := range cl.order {
		m := cl.matchers[id]
		if !m.alive {
			continue
		}
		for dim, idx := range m.indexes {
			want := desired[id][dim]
			for _, s := range idx.All(nil) {
				if !want[s.ID] {
					idx.Remove(s.ID)
				}
			}
		}
	}
}

// SubsPerMatcherDim returns, for each live matcher, its per-dimension
// subscription counts (for load-distribution analyses).
func (cl *Cluster) SubsPerMatcherDim() map[core.NodeID][]int {
	out := make(map[core.NodeID][]int)
	for _, id := range cl.order {
		m := cl.matchers[id]
		if !m.alive {
			continue
		}
		counts := make([]int, len(m.indexes))
		for dim, idx := range m.indexes {
			counts[dim] = idx.Len()
		}
		out[id] = counts
	}
	return out
}

// JoinTimes returns the virtual times at which matchers joined.
func (cl *Cluster) JoinTimes() []int64 {
	out := make([]int64, len(cl.joinTimes))
	copy(out, cl.joinTimes)
	return out
}

// FailTimes returns the virtual times at which matchers were crashed.
func (cl *Cluster) FailTimes() []int64 {
	out := make([]int64, len(cl.failTimes))
	copy(out, cl.failTimes)
	return out
}

// MarkUtilization snapshots every matcher's busy-time counter; a later
// Utilizations call reports the busy fraction since this mark.
func (cl *Cluster) MarkUtilization() {
	for _, id := range cl.order {
		m := cl.matchers[id]
		m.busyMark = m.busyNs
	}
}

// Utilizations returns each live matcher's busy fraction over the given
// window since the last MarkUtilization, in cl.Matchers() order.
func (cl *Cluster) Utilizations(window time.Duration) []float64 {
	var out []float64
	for _, id := range cl.Matchers() {
		out = append(out, cl.matchers[id].utilizationSince(int64(window)))
	}
	return out
}

// DumpQueues renders per-matcher per-dimension queue lengths and stored
// subscription counts — a debugging aid for experiments and tests.
func (cl *Cluster) DumpQueues() string {
	out := ""
	for _, id := range cl.order {
		m := cl.matchers[id]
		if !m.alive {
			continue
		}
		out += fmt.Sprintf("%v:", id)
		for dim := range m.queues {
			out += fmt.Sprintf(" d%d[q=%d subs=%d]", dim, len(m.queues[dim]), m.indexes[dim].Len())
		}
		out += "\n"
	}
	return out
}
