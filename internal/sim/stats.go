package sim

import (
	"bluedove/internal/metrics"
)

// Stats aggregates a simulated cluster's measurements: the response-time
// histogram and time series (the paper's primary metric), arrival/loss
// counters and the 1-second loss-rate series (Figure 10), membership-change
// counters, and the three overlay maintenance overhead counters (Section
// IV-C's overhead breakdown).
type Stats struct {
	// RespHist records every completed message's response time (ns).
	RespHist *metrics.Histogram
	// RespSeries records sampled response times (seconds), keyed by the
	// message's arrival time (as in the paper's time-series figures: the
	// response experienced by messages published at time t).
	RespSeries *metrics.Series
	// LossSeries records the per-second message loss fraction over time.
	LossSeries *metrics.Series

	// Arrived counts messages accepted by dispatchers.
	Arrived metrics.Counter
	// Completed counts messages fully matched and delivered.
	Completed metrics.Counter
	// Lost counts messages dropped (dead matcher, no candidate).
	Lost metrics.Counter
	// Subscriptions counts registered subscriptions.
	Subscriptions metrics.Counter
	// Failures counts matcher crashes injected.
	Failures metrics.Counter
	// Joins counts matchers added.
	Joins metrics.Counter
	// Leaves counts matchers gracefully drained and removed (scale-down).
	Leaves metrics.Counter
	// Splits counts hot-segment splits.
	Splits metrics.Counter
	// PersistRetries counts re-forwards by the persistence extension.
	PersistRetries metrics.Counter
	// BusyNacks counts forwards rejected by a full matcher stage.
	BusyNacks metrics.Counter
	// Rerouted counts busy-NACKed forwards re-routed to another candidate.
	Rerouted metrics.Counter
	// ShedExpired counts publications shed at dequeue with an expired TTL.
	ShedExpired metrics.Counter
	// EdgeDeliveries counts session deliveries fanned out through the edge
	// tier (Config.Edges > 0; one per matched subscription).
	EdgeDeliveries metrics.Counter

	// GossipBytes counts matcher↔matcher gossip traffic.
	GossipBytes metrics.Counter
	// TablePullBytes counts dispatcher segment-table pulls.
	TablePullBytes metrics.Counter
	// LoadPushBytes counts matcher→dispatcher load reports.
	LoadPushBytes metrics.Counter

	sampleCount  int64
	lossMarkLost int64
	lossMarkArr  int64
}

func newStats() *Stats {
	return &Stats{
		RespHist:   metrics.NewHistogram(),
		RespSeries: metrics.NewSeries("response_time_s"),
		LossSeries: metrics.NewSeries("loss_rate"),
	}
}

func (s *Stats) recordResponse(publishedAt, respNs int64, sampleEvery int) {
	s.Completed.Add(1)
	s.RespHist.Observe(respNs)
	s.sampleCount++
	if s.sampleCount%int64(sampleEvery) == 0 {
		s.RespSeries.Append(publishedAt, float64(respNs)/1e9)
	}
}

func (s *Stats) recordLoss(now int64) { s.Lost.Add(1) }

// sampleLoss appends one loss-rate point covering the last second.
func (s *Stats) sampleLoss(now int64) {
	lost := s.Lost.Value()
	arr := s.Arrived.Value()
	dl := lost - s.lossMarkLost
	da := arr - s.lossMarkArr
	s.lossMarkLost = lost
	s.lossMarkArr = arr
	if da <= 0 {
		s.LossSeries.Append(now, 0)
		return
	}
	s.LossSeries.Append(now, float64(dl)/float64(da))
}

// Backlog returns arrived − completed − lost − shed: messages still in
// flight or queued.
func (s *Stats) Backlog() int64 {
	return s.Arrived.Value() - s.Completed.Value() - s.Lost.Value() - s.ShedExpired.Value()
}

// LossFraction returns lost/arrived over the whole run (0 when nothing
// arrived).
func (s *Stats) LossFraction() float64 {
	a := s.Arrived.Value()
	if a == 0 {
		return 0
	}
	return float64(s.Lost.Value()) / float64(a)
}
