package sim

import (
	"testing"
	"time"

	"bluedove/internal/core"
	"bluedove/internal/workload"
)

// The persistence extension (paper Section VI future work) must eliminate
// the crash-window message loss of Figure 10: every accepted message is
// eventually matched, at the cost of re-forwards.
func TestPersistenceEliminatesCrashLoss(t *testing.T) {
	run := func(persistent bool) (lost, completed, retries int64) {
		cfg := testConfig(8)
		cfg.Persistent = persistent
		cfg.FailureDetectDelay = 2 * time.Second
		cfg.RecoveryDelay = 2 * time.Second
		cl := NewCluster(cfg)
		gen := workload.New(workload.Default(cfg.Space))
		cl.SubscribeAll(gen.Subscriptions(1000))
		cl.Drive(gen, workload.ConstantRate(500), int64(30*time.Second))
		cl.RunUntil(int64(10 * time.Second))
		if _, err := cl.FailRandomMatcher(); err != nil {
			t.Fatal(err)
		}
		cl.RunUntil(int64(30 * time.Second))
		cl.RunFor(20 * time.Second) // drain + retries
		st := cl.Stats()
		return st.Lost.Value(), st.Completed.Value(), st.PersistRetries.Value()
	}

	lostBase, _, _ := run(false)
	if lostBase == 0 {
		t.Fatal("baseline run lost nothing; crash window not exercised")
	}
	lostP, completedP, retries := run(true)
	if lostP != 0 {
		t.Fatalf("persistent run lost %d messages", lostP)
	}
	if retries == 0 {
		t.Fatal("persistence never retried despite a crash")
	}
	if completedP == 0 {
		t.Fatal("nothing completed")
	}
}

// With persistence on and no failures, behaviour must be unchanged: no
// retries, no losses, same completions as the baseline.
func TestPersistenceNoopWithoutFailures(t *testing.T) {
	run := func(persistent bool) (completed, retries, lost int64) {
		cfg := testConfig(5)
		cfg.Persistent = persistent
		cl := NewCluster(cfg)
		gen := workload.New(workload.Default(cfg.Space))
		cl.SubscribeAll(gen.Subscriptions(800))
		cl.Drive(gen, workload.ConstantRate(400), int64(10*time.Second))
		cl.RunUntil(int64(12 * time.Second))
		st := cl.Stats()
		return st.Completed.Value(), st.PersistRetries.Value(), st.Lost.Value()
	}
	c0, _, l0 := run(false)
	c1, r1, l1 := run(true)
	if c0 != c1 {
		t.Errorf("completions differ: %d vs %d", c0, c1)
	}
	if r1 != 0 || l0 != 0 || l1 != 0 {
		t.Errorf("unexpected retries/losses: r=%d l0=%d l1=%d", r1, l0, l1)
	}
}

// Messages accepted when every candidate is dead must be retried until the
// recovered table provides a live candidate.
func TestPersistenceRetriesThroughRecovery(t *testing.T) {
	cfg := testConfig(4)
	cfg.Persistent = true
	cfg.FailureDetectDelay = time.Second
	cfg.RecoveryDelay = time.Second
	cl := NewCluster(cfg)
	gen := workload.New(workload.Default(cfg.Space))
	cl.SubscribeAll(gen.Subscriptions(200))
	cl.RunUntil(int64(2 * time.Second))
	// Mark every matcher dead in dispatcher views: no candidate is alive,
	// so a publish enters the retry-later loop.
	for _, d := range cl.dispatchers {
		for _, id := range cl.order {
			d.dead[id] = true
		}
	}
	cl.Publish(gen.Message())
	cl.RunFor(time.Second)
	if cl.Stats().Completed.Value() != 0 {
		t.Fatal("message completed with all candidates dead")
	}
	// Heal the views: the pending retry must find a candidate and complete.
	for _, d := range cl.dispatchers {
		d.dead = map[core.NodeID]bool{}
	}
	cl.RunFor(5 * time.Second)
	if cl.Stats().Completed.Value() != 1 {
		t.Fatalf("completed = %d after healing, want 1", cl.Stats().Completed.Value())
	}
	if cl.Stats().Lost.Value() != 0 {
		t.Fatal("message lost despite persistence")
	}
}
