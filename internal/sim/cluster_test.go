package sim

import (
	"sort"
	"testing"
	"time"

	"bluedove/internal/core"
	"bluedove/internal/forward"
	"bluedove/internal/placement"
	"bluedove/internal/workload"
)

func testConfig(matchers int) Config {
	return Config{
		Space:    core.UniformSpace(4, 1000),
		Matchers: matchers,
		Seed:     7,
		// Inflated matching costs keep test capacities (and therefore event
		// counts) small; behaviour under test is cost-scale invariant.
		BaseMatchCost: 200 * time.Microsecond,
		PerScanCost:   3 * time.Microsecond,
	}
}

// End-to-end correctness: every published message must be delivered with
// exactly the subscriptions a brute-force oracle says it matches —
// regardless of strategy or policy.
func TestDeliveryMatchesOracle(t *testing.T) {
	space := core.UniformSpace(4, 1000)
	wcfg := workload.Default(space)
	strategies := []placement.Strategy{placement.BlueDove{}, placement.P2P{}, placement.FullRep{}}
	policies := []forward.Policy{forward.Adaptive{}, forward.SubscriptionAmount{}, forward.NewRandom(3)}
	for _, st := range strategies {
		for _, pol := range policies {
			got := make(map[core.MessageID][]core.SubscriptionID)
			cfg := testConfig(8)
			cfg.Strategy = st
			cfg.Policy = pol
			cfg.OnDeliver = func(m *core.Message, subs []*core.Subscription) {
				ids := make([]core.SubscriptionID, len(subs))
				for i, s := range subs {
					ids[i] = s.ID
				}
				sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
				got[m.ID] = ids
			}
			cl := NewCluster(cfg)
			gen := workload.New(wcfg)
			subs := gen.Subscriptions(500)
			cl.SubscribeAll(subs)

			var published []*core.Message
			cl.Drive(gen, workload.ConstantRate(200), int64(5*time.Second))
			// Capture published messages via a wrapper: drive manually instead.
			// Simpler: publish a fixed batch by hand.
			cl.RunUntil(int64(5 * time.Second))
			for i := 0; i < 300; i++ {
				m := gen.Message()
				published = append(published, m)
				cl.Publish(m)
				cl.RunFor(5 * time.Millisecond)
			}
			cl.RunFor(10 * time.Second)

			for _, m := range published {
				want := []core.SubscriptionID{}
				for _, s := range subs {
					if s.Matches(m) {
						want = append(want, s.ID)
					}
				}
				sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
				gotIDs, ok := got[m.ID]
				if !ok {
					t.Fatalf("%s/%s: message %v never delivered", st.Name(), pol.Name(), m.ID)
				}
				if len(gotIDs) != len(want) {
					t.Fatalf("%s/%s: %v matched %v, oracle says %v", st.Name(), pol.Name(), m.ID, gotIDs, want)
				}
				for i := range want {
					if gotIDs[i] != want[i] {
						t.Fatalf("%s/%s: %v matched %v, oracle says %v", st.Name(), pol.Name(), m.ID, gotIDs, want)
					}
				}
			}
		}
	}
}

func TestDeterministicRuns(t *testing.T) {
	run := func() (int64, int64, int64) {
		cfg := testConfig(6)
		cl := NewCluster(cfg)
		gen := workload.New(workload.Default(cfg.Space))
		cl.SubscribeAll(gen.Subscriptions(1000))
		cl.Drive(gen, workload.ConstantRate(500), int64(10*time.Second))
		cl.RunUntil(int64(12 * time.Second))
		return cl.Stats().Completed.Value(), cl.Stats().RespHist.Count(), cl.Stats().RespHist.Max()
	}
	a1, b1, c1 := run()
	a2, b2, c2 := run()
	if a1 != a2 || b1 != b2 || c1 != c2 {
		t.Fatalf("identical configs diverged: (%d,%d,%d) vs (%d,%d,%d)", a1, b1, c1, a2, b2, c2)
	}
	if a1 == 0 {
		t.Fatal("no messages completed")
	}
}

func TestStableBelowSaturation(t *testing.T) {
	cfg := testConfig(10)
	cl := NewCluster(cfg)
	gen := workload.New(workload.Default(cfg.Space))
	cl.SubscribeAll(gen.Subscriptions(2000))
	cl.Drive(gen, workload.ConstantRate(300), int64(20*time.Second))
	cl.RunUntil(int64(20 * time.Second))
	if back := cl.TotalBacklog(); back > 50 {
		t.Errorf("backlog = %d at modest rate, want near zero", back)
	}
	cl.RunFor(5 * time.Second)
	st := cl.Stats()
	if st.Lost.Value() != 0 {
		t.Errorf("lost %d messages with no failures", st.Lost.Value())
	}
	if st.Backlog() != 0 {
		t.Errorf("final backlog = %d, want 0 after drain", st.Backlog())
	}
	// Response time should be around the two network hops + matching time.
	mean := st.RespHist.Mean()
	if mean <= 0 || mean > float64(50*time.Millisecond) {
		t.Errorf("mean response = %v ns, implausible", mean)
	}
}

func TestBacklogGrowsAboveSaturation(t *testing.T) {
	cfg := testConfig(2)
	cl := NewCluster(cfg)
	gen := workload.New(workload.Default(cfg.Space))
	cl.SubscribeAll(gen.Subscriptions(4000))
	// 2 matchers with 4000 subscriptions cannot do 12k msgs/s under the
	// test cost model.
	cl.Drive(gen, workload.ConstantRate(12000), int64(10*time.Second))
	cl.RunUntil(int64(5 * time.Second))
	b1 := cl.TotalBacklog()
	cl.RunUntil(int64(10 * time.Second))
	b2 := cl.TotalBacklog()
	if b2 <= b1 || b2 < 1000 {
		t.Errorf("backlog not growing above saturation: %d -> %d", b1, b2)
	}
}

func TestSaturationSearchOrdering(t *testing.T) {
	space := core.UniformSpace(4, 1000)
	wcfg := workload.Default(space)
	gen := workload.New(wcfg)
	subs := gen.Subscriptions(1500)
	build := func(n int) func() *Cluster {
		return func() *Cluster {
			cfg := testConfig(n)
			return NewCluster(cfg)
		}
	}
	s5 := &SaturationSearch{Build: build(5), Subscriptions: subs, Workload: wcfg,
		Measure: 4 * time.Second, Tolerance: 0.12, LoRate: 1000, HiRate: 8000}
	s10 := &SaturationSearch{Build: build(10), Subscriptions: subs, Workload: wcfg,
		Measure: 4 * time.Second, Tolerance: 0.12, LoRate: 1000, HiRate: 16000}
	r5 := s5.Find()
	r10 := s10.Find()
	if r5 <= 0 || r10 <= 0 {
		t.Fatalf("rates: %g, %g", r5, r10)
	}
	if r10 < r5*1.2 {
		t.Errorf("doubling matchers should raise saturation: 5→%g, 10→%g", r5, r10)
	}
}

func TestFailoverAfterDetection(t *testing.T) {
	cfg := testConfig(8)
	cfg.FailureDetectDelay = 2 * time.Second
	cfg.RecoveryDelay = 2 * time.Second
	cl := NewCluster(cfg)
	gen := workload.New(workload.Default(cfg.Space))
	cl.SubscribeAll(gen.Subscriptions(1000))
	cl.Drive(gen, workload.ConstantRate(500), int64(60*time.Second))
	cl.RunUntil(int64(10 * time.Second))
	lostBefore := cl.Stats().Lost.Value()
	if _, err := cl.FailRandomMatcher(); err != nil {
		t.Fatal(err)
	}
	// During the detection window some messages are lost.
	cl.RunUntil(int64(13 * time.Second))
	lostDuring := cl.Stats().Lost.Value() - lostBefore
	if lostDuring == 0 {
		t.Error("expected some loss before failure detection")
	}
	// Well after detection+recovery, loss stops.
	cl.RunUntil(int64(40 * time.Second))
	lostMark := cl.Stats().Lost.Value()
	cl.RunUntil(int64(60 * time.Second))
	if d := cl.Stats().Lost.Value() - lostMark; d != 0 {
		t.Errorf("still losing messages (%d) long after recovery", d)
	}
	if got := len(cl.Matchers()); got != 7 {
		t.Errorf("live matchers = %d, want 7", got)
	}
	if cl.Table().N() != 7 {
		t.Errorf("table size = %d, want 7", cl.Table().N())
	}
}

func TestRecoveryReinstallsSubscriptions(t *testing.T) {
	cfg := testConfig(4)
	cfg.FailureDetectDelay = time.Second
	cfg.RecoveryDelay = time.Second
	cl := NewCluster(cfg)
	gen := workload.New(workload.Default(cfg.Space))
	subs := gen.Subscriptions(400)
	cl.SubscribeAll(subs)
	cl.RunUntil(int64(2 * time.Second))
	id, err := cl.FailRandomMatcher()
	if err != nil {
		t.Fatal(err)
	}
	cl.RunFor(10 * time.Second)
	// Every subscription must again be stored wherever the (new) table
	// demands.
	tab := cl.Table()
	if tab.HasMatcher(id) {
		t.Fatal("failed matcher still in table")
	}
	for _, s := range subs {
		for _, a := range (placement.BlueDove{}).Assign(tab, s) {
			m := cl.matchers[a.Node]
			if m == nil || !m.alive {
				t.Fatalf("assignment to dead matcher %v", a.Node)
			}
			if !m.indexes[a.Dim].Contains(s.ID) {
				t.Fatalf("subscription %v missing from %v dim %d after recovery", s.ID, a.Node, a.Dim)
			}
		}
	}
}

func TestAddMatcherReducesLoad(t *testing.T) {
	cfg := testConfig(4)
	cl := NewCluster(cfg)
	gen := workload.New(workload.Default(cfg.Space))
	cl.SubscribeAll(gen.Subscriptions(2000))
	cl.RunUntil(int64(time.Second))
	before := cl.SubsPerMatcherDim()
	maxBefore := 0
	for _, counts := range before {
		for _, c := range counts {
			if c > maxBefore {
				maxBefore = c
			}
		}
	}
	id := cl.AddMatcher()
	cl.RunFor(10 * time.Second) // let the prune grace pass
	after := cl.SubsPerMatcherDim()
	if _, ok := after[id]; !ok {
		t.Fatal("new matcher not live")
	}
	if cl.Table().N() != 5 {
		t.Fatalf("table size = %d, want 5", cl.Table().N())
	}
	maxAfter := 0
	for _, counts := range after {
		for _, c := range counts {
			if c > maxAfter {
				maxAfter = c
			}
		}
	}
	if maxAfter >= maxBefore {
		t.Errorf("hottest dimension set did not shrink: %d -> %d", maxBefore, maxAfter)
	}
	// Correctness after split+prune: completeness for fresh messages.
	tab := cl.Table()
	for i := 0; i < 200; i++ {
		m := gen.Message()
		for _, c := range (placement.BlueDove{}).Candidates(tab, m) {
			mm := cl.matchers[c.Node]
			if mm == nil || !mm.alive {
				t.Fatalf("candidate %v not alive", c.Node)
			}
		}
	}
}

func TestElasticControllerAddsMatchers(t *testing.T) {
	cfg := testConfig(3)
	cfg.Elastic = true
	cfg.ElasticCheckInterval = 2 * time.Second
	cfg.ElasticCooldown = 5 * time.Second
	cl := NewCluster(cfg)
	gen := workload.New(workload.Default(cfg.Space))
	cl.SubscribeAll(gen.Subscriptions(3000))
	// A rate well above 3 matchers' capacity (~2.2k msg/s at test costs).
	cl.Drive(gen, workload.ConstantRate(4000), int64(60*time.Second))
	cl.RunUntil(int64(60 * time.Second))
	if cl.Stats().Joins.Value() == 0 {
		t.Fatal("elastic controller never added a matcher")
	}
	if n := len(cl.Matchers()); n <= 3 {
		t.Fatalf("matchers = %d, want growth", n)
	}
}

func TestPublishWithAllMatchersDeadIsLost(t *testing.T) {
	cfg := testConfig(2)
	cfg.FailureDetectDelay = time.Second
	cfg.RecoveryDelay = 100 * time.Hour // block recovery
	cl := NewCluster(cfg)
	gen := workload.New(workload.Default(cfg.Space))
	cl.SubscribeAll(gen.Subscriptions(10))
	cl.RunUntil(int64(time.Second))
	// Kill one matcher (cannot kill the last); after detection, P2P-style
	// single-candidate messages to it are lost. Here with BlueDove the other
	// candidates absorb, so instead mark both dead in dispatcher views.
	for _, d := range cl.dispatchers {
		for _, id := range cl.order {
			d.dead[id] = true
		}
	}
	lostBefore := cl.Stats().Lost.Value()
	cl.Publish(gen.Message())
	cl.RunFor(time.Second)
	if cl.Stats().Lost.Value() != lostBefore+1 {
		t.Error("message without alive candidates should be lost")
	}
}

func TestOverheadCountersAccumulate(t *testing.T) {
	cfg := testConfig(5)
	cl := NewCluster(cfg)
	gen := workload.New(workload.Default(cfg.Space))
	cl.SubscribeAll(gen.Subscriptions(500))
	cl.Drive(gen, workload.ConstantRate(200), int64(30*time.Second))
	cl.RunUntil(int64(30 * time.Second))
	st := cl.Stats()
	if st.GossipBytes.Value() == 0 || st.TablePullBytes.Value() == 0 || st.LoadPushBytes.Value() == 0 {
		t.Errorf("overhead counters: gossip=%d pull=%d push=%d",
			st.GossipBytes.Value(), st.TablePullBytes.Value(), st.LoadPushBytes.Value())
	}
}

func TestUtilizations(t *testing.T) {
	cfg := testConfig(5)
	cl := NewCluster(cfg)
	gen := workload.New(workload.Default(cfg.Space))
	cl.SubscribeAll(gen.Subscriptions(2000))
	cl.Drive(gen, workload.ConstantRate(2000), int64(20*time.Second))
	cl.RunUntil(int64(5 * time.Second))
	cl.MarkUtilization()
	cl.RunUntil(int64(15 * time.Second))
	us := cl.Utilizations(10 * time.Second)
	if len(us) != 5 {
		t.Fatalf("got %d utilizations", len(us))
	}
	var sum float64
	for _, u := range us {
		if u < 0 || u > 1 {
			t.Fatalf("utilization out of range: %v", us)
		}
		sum += u
	}
	if sum == 0 {
		t.Error("all matchers idle under load")
	}
}

func TestFailMatcherErrors(t *testing.T) {
	cl := NewCluster(testConfig(1))
	if err := cl.FailMatcher(99); err == nil {
		t.Error("failing unknown matcher accepted")
	}
	if err := cl.FailMatcher(1); err == nil {
		t.Error("failing last matcher accepted")
	}
	if _, err := cl.FailRandomMatcher(); err == nil {
		t.Error("FailRandomMatcher with one matcher accepted")
	}
}

func TestStatsLossFractionAndBacklog(t *testing.T) {
	st := newStats()
	if st.LossFraction() != 0 {
		t.Error("empty LossFraction")
	}
	st.Arrived.Add(10)
	st.Lost.Add(1)
	st.Completed.Add(6)
	if got := st.LossFraction(); got != 0.1 {
		t.Errorf("LossFraction = %g", got)
	}
	if got := st.Backlog(); got != 3 {
		t.Errorf("Backlog = %d", got)
	}
}

// BatchSize amortizes the fixed per-message matching cost, so the same
// offered load that swamps an unbatched cluster leaves a batched one with
// (near-)empty queues.
func TestBatchSizeRaisesCapacity(t *testing.T) {
	run := func(batch int) (delivered, backlog int) {
		cfg := testConfig(4)
		cfg.BatchSize = batch
		// A fixed cost heavy enough that the unbatched cluster saturates at
		// this offered rate while the batched one keeps up.
		cfg.BaseMatchCost = time.Millisecond
		cfg.OnDeliver = func(m *core.Message, subs []*core.Subscription) { delivered++ }
		cl := NewCluster(cfg)
		gen := workload.New(workload.Default(cfg.Space))
		cl.SubscribeAll(gen.Subscriptions(300))
		cl.RunUntil(int64(3 * time.Second))
		start := cl.Now()
		cl.Drive(gen, workload.ConstantRate(20000), start+int64(3*time.Second))
		cl.RunUntil(start + int64(4*time.Second))
		return delivered, cl.TotalBacklog()
	}
	d1, b1 := run(1)
	d64, b64 := run(64)
	if d64 <= d1 {
		t.Errorf("delivered: batch64=%d batch1=%d; want batching to deliver more", d64, d1)
	}
	if b64 >= b1 {
		t.Errorf("backlog: batch64=%d batch1=%d; want batching to drain queues", b64, b1)
	}
}
