package sim

import (
	"time"

	"bluedove/internal/core"
	"bluedove/internal/workload"
)

// SaturationSearch finds a system's saturation message rate — the highest
// arrival rate it sustains without queues growing without bound (paper
// Section IV-B). The paper detects saturation by feeding increasing rates
// and watching for linear response-time growth; the simulator uses the
// equivalent backlog-growth criterion over a measurement window, and binary
// search instead of a linear ramp.
type SaturationSearch struct {
	// Build constructs a fresh cluster for each probe; required.
	Build func() *Cluster
	// Subscriptions are installed before driving; required non-empty for
	// meaningful results.
	Subscriptions []*core.Subscription
	// Workload generates publications; a fresh generator (same seed) is
	// created per probe. Required.
	Workload workload.Config
	// Warmup is the settling time before measurement (default 2s): load
	// reports must flow before the policies see real rates.
	Warmup time.Duration
	// Measure is the measurement window (default 6s).
	Measure time.Duration
	// LoRate is a rate known (or assumed) sustainable (default 100/s).
	LoRate float64
	// HiRate is the initial upper probe; doubled until saturated
	// (default 2×LoRate).
	HiRate float64
	// Tolerance is the relative precision of the returned rate
	// (default 0.05).
	Tolerance float64
}

func (s *SaturationSearch) defaults() {
	if s.Warmup <= 0 {
		s.Warmup = 2 * time.Second
	}
	if s.Measure <= 0 {
		s.Measure = 6 * time.Second
	}
	if s.LoRate <= 0 {
		s.LoRate = 100
	}
	if s.HiRate <= s.LoRate {
		s.HiRate = 2 * s.LoRate
	}
	if s.Tolerance <= 0 {
		s.Tolerance = 0.05
	}
}

// Saturated probes one rate: a fresh cluster is driven at the rate, and the
// system counts as saturated when the aggregate backlog keeps growing
// through the second half of the measurement window by more than 2% of the
// offered load (the linear-growth signature of Figure 5).
func (s *SaturationSearch) Saturated(rate float64) bool {
	cl := s.Build()
	cl.SubscribeAll(s.Subscriptions)
	gen := workload.New(s.Workload)
	end := int64(s.Warmup) + int64(s.Measure)
	cl.Drive(gen, workload.ConstantRate(rate), end)
	mid := int64(s.Warmup) + int64(s.Measure)/2
	// Half a second of offered load queued means unmistakable saturation;
	// abort such probes early instead of simulating the full window.
	hard := 0.5*rate + 100
	step := int64(250 * time.Millisecond)
	b1 := -1
	for t := step; t < end; t += step {
		cl.RunUntil(t)
		if float64(cl.TotalBacklog()) > hard {
			return true
		}
		if b1 < 0 && t >= mid {
			b1 = cl.TotalBacklog()
		}
	}
	cl.RunUntil(end)
	b2 := cl.TotalBacklog()
	if float64(b2) > hard {
		return true
	}
	if b1 < 0 {
		b1 = 0
	}
	halfSec := (float64(s.Measure) / 2) / float64(time.Second)
	growth := float64(b2 - b1)
	threshold := 0.02 * rate * halfSec
	if threshold < 20 {
		threshold = 20
	}
	return growth > threshold
}

// Find runs the search and returns the saturation rate (messages/second).
// The result is the highest probed sustainable rate within Tolerance of the
// lowest saturated rate.
func (s *SaturationSearch) Find() float64 {
	s.defaults()
	lo, hi := s.LoRate, s.HiRate
	// Lower the floor if even LoRate saturates.
	for s.Saturated(lo) {
		hi = lo
		lo /= 4
		if lo < 1 {
			return 1
		}
	}
	// Raise the ceiling until saturated (bounded expansion).
	for i := 0; i < 24 && !s.Saturated(hi); i++ {
		lo = hi
		hi *= 2
	}
	for hi-lo > s.Tolerance*lo {
		mid := (lo + hi) / 2
		if s.Saturated(mid) {
			hi = mid
		} else {
			lo = mid
		}
	}
	return lo
}
