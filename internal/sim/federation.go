package sim

import (
	"time"

	"bluedove/internal/core"
	"bluedove/internal/federation"
	"bluedove/internal/metrics"
)

// Federation is a simulated multi-cluster deployment: Config.Clusters
// complete clusters sharing one virtual clock, each fronted by a modeled
// border that summarizes local interest (the same federation.Summary merge
// the real border computes from its matchers) and forwards publications
// across the inter-cluster link only toward clusters whose summary matches.
// Summaries refresh on the FedSummaryInterval cadence, so — exactly like
// the real tier — a just-registered remote subscription is invisible until
// the next refresh, and a just-removed one yields harmless false positives
// filtered by the remote cluster's real match path.
type Federation struct {
	cfg       Config
	eng       *Engine
	Clusters  []*Cluster
	summaries []*federation.Summary

	// FedPublished counts publications entering the federation;
	// FedForwarded/FedSuppressed count the per-peer routing decisions.
	FedPublished  metrics.Counter
	FedForwarded  metrics.Counter
	FedSuppressed metrics.Counter
}

// NewFederation builds cfg.Clusters simulated clusters over one shared
// engine. Each cluster draws a distinct seed stream from cfg.Seed.
func NewFederation(cfg Config) *Federation {
	cfg = cfg.withDefaults()
	if cfg.Clusters < 2 {
		panic("sim: Config.Clusters must be >= 2 for a federation")
	}
	f := &Federation{cfg: cfg, eng: NewEngine()}
	for i := 0; i < cfg.Clusters; i++ {
		c := cfg
		c.Seed = cfg.Seed + int64(i)*1000003
		f.Clusters = append(f.Clusters, newClusterWithEngine(c, f.eng))
	}
	f.summaries = make([]*federation.Summary, cfg.Clusters)
	// Border summary refresh, first round at time zero so early traffic is
	// not all suppressed by empty summaries.
	f.eng.Every(0, cfg.FedSummaryInterval, func() bool {
		f.refreshSummaries()
		return true
	})
	return f
}

// refreshSummaries recomputes every cluster's interest summary from its
// live matchers' indexes — the simulated counterpart of the border's
// SummaryRequest sweep plus MergeInto.
func (f *Federation) refreshSummaries() {
	k := f.cfg.Space.K()
	for i, cl := range f.Clusters {
		var tables [][][]core.Range
		for _, id := range cl.order {
			m := cl.matchers[id]
			if !m.alive {
				continue
			}
			t := make([][]core.Range, k)
			for dim, idx := range m.indexes {
				for _, s := range idx.All(nil) {
					if dim < len(s.Predicates) {
						t[dim] = append(t[dim], s.Predicates[dim])
					}
				}
			}
			tables = append(tables, t)
		}
		f.summaries[i] = federation.MergeInto(k, tables, f.cfg.FedMaxRangesPerDim)
	}
}

// Summary returns cluster i's current interest summary (nil before the
// first refresh).
func (f *Federation) Summary(i int) *federation.Summary { return f.summaries[i] }

// Publish injects m into cluster origin at the current virtual time and
// routes a copy toward every other cluster whose summary matches, arriving
// after the border hop (one intra-cluster leg to the border, the WAN leg,
// one leg into the remote dispatcher). Non-matching clusters are suppressed
// — the bandwidth the summary tier saves.
func (f *Federation) Publish(origin int, m *core.Message) {
	f.FedPublished.Add(1)
	f.Clusters[origin].Publish(m)
	for j := range f.Clusters {
		if j == origin {
			continue
		}
		if !f.summaries[j].Matches(m.Attrs) {
			f.FedSuppressed.Add(1)
			continue
		}
		f.FedForwarded.Add(1)
		clone := m.Clone()
		clone.Trace = nil // the remote cluster samples its own trace
		target := f.Clusters[j]
		f.eng.After(2*f.cfg.NetDelay+f.cfg.InterClusterLatency, func() {
			target.Publish(clone)
		})
	}
}

// Now returns the shared virtual time.
func (f *Federation) Now() int64 { return f.eng.Now() }

// RunUntil advances the whole federation to virtual time t.
func (f *Federation) RunUntil(t int64) { f.eng.RunUntil(t) }

// RunFor advances the whole federation by d.
func (f *Federation) RunFor(d time.Duration) { f.eng.RunUntil(f.eng.Now() + int64(d)) }
