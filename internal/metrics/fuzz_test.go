package metrics

import (
	"math"
	"testing"
	"time"
)

// FuzzRateMeterTimestamps drives a RateMeter with arbitrary (including
// out-of-order and negative) timestamps and asserts the explicit-timestamp
// invariant: no panic, a finite non-negative rate, and no events lost when
// the reader's clock trails the writer's.
func FuzzRateMeterTimestamps(f *testing.F) {
	f.Add(int64(0), int64(1e9), int64(5e8))
	f.Add(int64(1e9), int64(0), int64(-3))
	f.Add(int64(-7e9), int64(7e9), int64(42))
	f.Fuzz(func(t *testing.T, t1, t2, readAt int64) {
		r := NewRateMeter(time.Second, 10)
		r.Mark(t1, 3)
		r.Mark(t2, 5)
		rate := r.Rate(readAt)
		if math.IsNaN(rate) || math.IsInf(rate, 0) || rate < 0 {
			t.Fatalf("rate(%d) after marks at %d,%d = %v", readAt, t1, t2, rate)
		}
		// A reader at or before the last mark must see at least the newest
		// mark's events (the window is clamped to end at the last mark).
		if readAt <= r.lastMark && rate < 5 {
			t.Fatalf("stale reader lost events: rate=%v, want >= 5 ev/s", rate)
		}
	})
}

// FuzzHistogramQuantile asserts Quantile never panics and always answers
// within [0, max] for arbitrary samples and quantile arguments.
func FuzzHistogramQuantile(f *testing.F) {
	f.Add(int64(5), int64(-1), 0.5)
	f.Add(int64(1<<40), int64(1), 2.0)
	f.Add(int64(0), int64(math.MaxInt64), -0.5)
	f.Fuzz(func(t *testing.T, v1, v2 int64, q float64) {
		h := NewHistogram()
		h.Observe(v1)
		h.Observe(v2)
		got := h.Quantile(q)
		if got < 0 || got > h.Max() {
			t.Fatalf("quantile(%v) = %d outside [0, %d]", q, got, h.Max())
		}
	})
}

// TestRateMeterStaleReaderClamp pins the satellite fix: a snapshot taken
// with a timestamp earlier than the last Mark sees the window ending at the
// mark instead of an empty (or partially drained) window.
func TestRateMeterStaleReaderClamp(t *testing.T) {
	r := NewRateMeter(time.Second, 10)
	r.Mark(100*int64(time.Second), 10)
	for _, readAt := range []int64{0, -5, 99 * int64(time.Second), 100 * int64(time.Second)} {
		if rate := r.Rate(readAt); rate != 10 {
			t.Fatalf("Rate(%d) = %v, want 10 ev/s", readAt, rate)
		}
	}
}

// TestRateMeterBackwardMarkKeepsCounts pins that an out-of-order Mark
// cannot clobber the newest slot.
func TestRateMeterBackwardMarkKeepsCounts(t *testing.T) {
	r := NewRateMeter(time.Second, 10)
	now := 50 * int64(time.Second)
	r.Mark(now, 4)
	r.Mark(now-30*int64(time.Second), 2) // stale writer
	if rate := r.Rate(now); rate != 6 {
		t.Fatalf("Rate = %v, want 6 ev/s (stale mark folded into window)", rate)
	}
}

// TestHistogramQuantileNaN pins NaN handling.
func TestHistogramQuantileNaN(t *testing.T) {
	h := NewHistogram()
	h.Observe(100)
	if got := h.Quantile(math.NaN()); got < 0 || got > h.Max() {
		t.Fatalf("Quantile(NaN) = %d", got)
	}
}
