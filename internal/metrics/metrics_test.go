package metrics

import (
	"math"
	"math/rand"
	"strings"
	"sync"
	"testing"
	"testing/quick"
	"time"
)

func TestRateMeterSteadyRate(t *testing.T) {
	m := NewRateMeter(time.Second, 10)
	// 1000 events spread over 1 second => 1000/s.
	for i := 0; i < 1000; i++ {
		m.Mark(int64(i)*int64(time.Millisecond), 1)
	}
	got := m.Rate(int64(time.Second))
	if math.Abs(got-1000) > 150 {
		t.Errorf("Rate = %g, want ~1000", got)
	}
}

func TestRateMeterWindowExpiry(t *testing.T) {
	m := NewRateMeter(time.Second, 10)
	m.Mark(0, 500)
	if r := m.Rate(int64(500 * time.Millisecond)); r < 400 {
		t.Errorf("rate before expiry = %g, want ~500", r)
	}
	// 3 seconds later the burst left the window entirely.
	if r := m.Rate(int64(3 * time.Second)); r != 0 {
		t.Errorf("rate after expiry = %g, want 0", r)
	}
}

func TestRateMeterSlotReuse(t *testing.T) {
	m := NewRateMeter(time.Second, 4)
	m.Mark(0, 100)
	// Same ring slot, much later period: old count must not leak.
	m.Mark(int64(10*time.Second), 1)
	r := m.Rate(int64(10*time.Second) + 1)
	if r > 10 {
		t.Errorf("stale slot leaked: rate = %g", r)
	}
}

func TestRateMeterPanicsOnBadWindow(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewRateMeter(0, 4)
}

func TestRateMeterConcurrent(t *testing.T) {
	m := NewRateMeter(time.Second, 8)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				m.Mark(int64(i)*int64(time.Millisecond), 1)
				_ = m.Rate(int64(i) * int64(time.Millisecond))
			}
		}(g)
	}
	wg.Wait()
	if r := m.Rate(int64(time.Second)); r <= 0 {
		t.Errorf("rate after concurrent marks = %g", r)
	}
}

func TestHistogramBasics(t *testing.T) {
	h := NewHistogram()
	if h.Count() != 0 || h.Mean() != 0 || h.Max() != 0 || h.Min() != 0 || h.Quantile(0.5) != 0 {
		t.Fatal("empty histogram should report zeros")
	}
	for _, v := range []int64{1, 2, 3, 4, 100} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Errorf("Count = %d", h.Count())
	}
	if got := h.Mean(); math.Abs(got-22) > 0.01 {
		t.Errorf("Mean = %g, want 22", got)
	}
	if h.Max() != 100 || h.Min() != 1 {
		t.Errorf("Max/Min = %d/%d", h.Max(), h.Min())
	}
	if q := h.Quantile(1.0); q != 100 {
		t.Errorf("p100 = %d, want 100 (capped at max)", q)
	}
	if q := h.Quantile(0.5); q < 3 || q > 8 {
		t.Errorf("p50 = %d, want within [3,8]", q)
	}
	h.Observe(-5) // clamped
	if h.Min() != 0 {
		t.Errorf("negative sample should clamp to 0, Min = %d", h.Min())
	}
	h.Reset()
	if h.Count() != 0 {
		t.Error("Reset did not clear")
	}
}

func TestHistogramQuantileMonotonic(t *testing.T) {
	h := NewHistogram()
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 10000; i++ {
		h.Observe(rng.Int63n(1e9))
	}
	prev := int64(-1)
	for _, q := range []float64{-0.1, 0, 0.1, 0.25, 0.5, 0.9, 0.99, 1, 1.5} {
		v := h.Quantile(q)
		if v < prev {
			t.Fatalf("quantile not monotonic at q=%g: %d < %d", q, v, prev)
		}
		prev = v
	}
}

// Property: Quantile(q) is an upper bound on the exact q-quantile.
func TestHistogramQuantileUpperBoundProperty(t *testing.T) {
	f := func(raw []uint32) bool {
		if len(raw) == 0 {
			return true
		}
		h := NewHistogram()
		vals := make([]int64, len(raw))
		for i, r := range raw {
			vals[i] = int64(r)
			h.Observe(vals[i])
		}
		// exact median
		sorted := append([]int64(nil), vals...)
		for i := range sorted {
			for j := i + 1; j < len(sorted); j++ {
				if sorted[j] < sorted[i] {
					sorted[i], sorted[j] = sorted[j], sorted[i]
				}
			}
		}
		exact := sorted[(len(sorted)-1)/2]
		return h.Quantile(0.5) >= exact
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestSummary(t *testing.T) {
	var s Summary
	for _, v := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		s.Add(v)
	}
	if s.N() != 8 {
		t.Errorf("N = %d", s.N())
	}
	if math.Abs(s.Mean()-5) > 1e-9 {
		t.Errorf("Mean = %g, want 5", s.Mean())
	}
	if math.Abs(s.StdDev()-2) > 1e-9 {
		t.Errorf("StdDev = %g, want 2", s.StdDev())
	}
	if math.Abs(s.NormStdDev()-0.4) > 1e-9 {
		t.Errorf("NormStdDev = %g, want 0.4", s.NormStdDev())
	}
	if math.Abs(s.Sum()-40) > 1e-9 {
		t.Errorf("Sum = %g, want 40", s.Sum())
	}
	var empty Summary
	if empty.StdDev() != 0 || empty.NormStdDev() != 0 || empty.Mean() != 0 {
		t.Error("empty summary should report zeros")
	}
}

func TestNormStdDevOf(t *testing.T) {
	if got := NormStdDevOf([]float64{2, 4, 4, 4, 5, 5, 7, 9}); math.Abs(got-0.4) > 1e-9 {
		t.Errorf("NormStdDevOf = %g, want 0.4", got)
	}
	if NormStdDevOf(nil) != 0 {
		t.Error("empty input should return 0")
	}
	if NormStdDevOf([]float64{0, 0}) != 0 {
		t.Error("zero mean should return 0")
	}
	if NormStdDevOf([]float64{5, 5, 5}) != 0 {
		t.Error("constant input should return 0")
	}
}

func TestCounterGauge(t *testing.T) {
	var c Counter
	c.Add(3)
	c.Add(4)
	if c.Value() != 7 {
		t.Errorf("Counter = %d", c.Value())
	}
	var g Gauge
	g.Set(10)
	g.Add(-3)
	if g.Value() != 7 {
		t.Errorf("Gauge = %d", g.Value())
	}
}

func TestSeries(t *testing.T) {
	s := NewSeries("resp")
	if s.Name() != "resp" {
		t.Error("Name")
	}
	s.Append(3e9, 30)
	s.Append(1e9, 10)
	s.Append(2e9, 20)
	if s.Len() != 3 {
		t.Errorf("Len = %d", s.Len())
	}
	pts := s.Points()
	if pts[0].T != 1e9 || pts[2].T != 3e9 {
		t.Errorf("Points not sorted: %v", pts)
	}
	var b strings.Builder
	if err := s.WriteTSV(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "1.000\t10") {
		t.Errorf("TSV = %q", b.String())
	}
}

func TestSeriesDownsample(t *testing.T) {
	s := NewSeries("x")
	for i := 0; i < 100; i++ {
		s.Append(int64(i)*1e8, float64(i)) // 10 samples/second for 10s
	}
	ds := s.Downsample(1e9)
	if len(ds) != 10 {
		t.Fatalf("Downsample buckets = %d, want 10", len(ds))
	}
	if math.Abs(ds[0].V-4.5) > 1e-9 {
		t.Errorf("bucket 0 mean = %g, want 4.5", ds[0].V)
	}
	if got := s.Downsample(0); len(got) != 100 {
		t.Error("non-positive interval should return raw points")
	}
	empty := NewSeries("e")
	if len(empty.Downsample(10)) != 0 {
		t.Error("empty series downsample")
	}
}

func TestBucketOf(t *testing.T) {
	cases := []struct {
		v    int64
		want int
	}{{0, 0}, {1, 0}, {2, 1}, {3, 1}, {4, 2}, {1023, 9}, {1024, 10}}
	for _, tc := range cases {
		if got := bucketOf(tc.v); got != tc.want {
			t.Errorf("bucketOf(%d) = %d, want %d", tc.v, got, tc.want)
		}
	}
}
