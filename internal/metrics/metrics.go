// Package metrics provides the measurement primitives used across BlueDove:
// sliding-window rate meters (the λ and μ estimates of the adaptive policy),
// latency histograms with quantiles (response-time reporting), running
// summaries (mean/stddev for load-balance comparisons), and byte counters
// (overlay maintenance overhead).
//
// Every primitive takes explicit timestamps (nanoseconds) instead of calling
// time.Now, so the same code serves the real-time runtime and the
// discrete-event simulator. All types are safe for concurrent use unless
// noted otherwise.
package metrics

import (
	"math"
	"sync"
	"time"
)

// RateMeter estimates an event rate (events/second) over a sliding window,
// matching the paper's "average message arrival rate λ and matching rate μ
// of the past w seconds" (Section III-B2). It keeps per-slot counts in a
// ring of fixed-width slots covering the window.
type RateMeter struct {
	mu       sync.Mutex
	slotW    int64 // slot width, ns
	slots    []int64
	times    []int64 // start time of the slot's period
	window   int64   // total window, ns
	lastMark int64
}

// NewRateMeter creates a meter with the given window, divided into nslots
// ring slots. Window must be positive; nslots >= 1.
func NewRateMeter(window time.Duration, nslots int) *RateMeter {
	if window <= 0 {
		panic("metrics: non-positive rate meter window")
	}
	if nslots < 1 {
		nslots = 1
	}
	return &RateMeter{
		slotW:  int64(window) / int64(nslots),
		slots:  make([]int64, nslots),
		times:  make([]int64, nslots),
		window: int64(window),
	}
}

func (r *RateMeter) slotFor(now int64) int {
	period := now / r.slotW
	i := int(period % int64(len(r.slots)))
	if i < 0 {
		i += len(r.slots)
	}
	start := period * r.slotW
	if r.times[i] != start {
		r.slots[i] = 0
		r.times[i] = start
	}
	return i
}

// Mark records n events at time now (nanoseconds). Marks never move the
// meter backwards: a now earlier than the latest Mark is clamped up to it,
// so an out-of-order timestamp cannot reset a live slot to a past period
// and drop its counts.
func (r *RateMeter) Mark(now int64, n int64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if now < r.lastMark {
		now = r.lastMark
	}
	r.slots[r.slotFor(now)] += n
	if now > r.lastMark {
		r.lastMark = now
	}
}

// Rate returns the events/second over the window ending at now. A now
// earlier than the last Mark is clamped up to it, so snapshot readers with
// a slightly stale clock (telemetry scrapes racing instrumented threads)
// see the window ending at the newest mark instead of silently dropping
// the most recent slots.
func (r *RateMeter) Rate(now int64) float64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	if now < r.lastMark {
		now = r.lastMark
	}
	var total int64
	oldest := now - r.window
	for i := range r.slots {
		if r.times[i] > oldest && r.times[i] <= now {
			total += r.slots[i]
		}
	}
	return float64(total) / (float64(r.window) / float64(time.Second))
}

// Histogram records durations (or any non-negative int64 samples) into
// logarithmically spaced buckets and answers quantile queries. Bucket i
// covers [2^i, 2^(i+1)) nanoseconds, with bucket 0 covering [0, 2).
type Histogram struct {
	mu      sync.Mutex
	buckets [64]int64
	count   int64
	sum     int64
	max     int64
	min     int64
}

// NewHistogram returns an empty histogram.
func NewHistogram() *Histogram { return &Histogram{min: math.MaxInt64} }

func bucketOf(v int64) int {
	if v < 1 {
		return 0
	}
	b := 63 - leadingZeros64(uint64(v))
	if b > 63 {
		b = 63
	}
	return b
}

func leadingZeros64(x uint64) int {
	n := 0
	for i := 63; i >= 0; i-- {
		if x&(1<<uint(i)) != 0 {
			return n
		}
		n++
	}
	return 64
}

// Observe records one sample. Negative samples are clamped to zero.
func (h *Histogram) Observe(v int64) {
	if v < 0 {
		v = 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	h.buckets[bucketOf(v)]++
	h.count++
	h.sum += v
	if v > h.max {
		h.max = v
	}
	if v < h.min {
		h.min = v
	}
}

// Count returns the number of recorded samples.
func (h *Histogram) Count() int64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.count
}

// Mean returns the arithmetic mean of the samples, or 0 when empty.
func (h *Histogram) Mean() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.count == 0 {
		return 0
	}
	return float64(h.sum) / float64(h.count)
}

// Max returns the largest recorded sample, or 0 when empty.
func (h *Histogram) Max() int64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.count == 0 {
		return 0
	}
	return h.max
}

// Min returns the smallest recorded sample, or 0 when empty.
func (h *Histogram) Min() int64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.count == 0 {
		return 0
	}
	return h.min
}

// Quantile returns an upper bound for the q-quantile (0 <= q <= 1) using the
// bucket upper edges, or 0 when empty.
func (h *Histogram) Quantile(q float64) int64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.count == 0 {
		return 0
	}
	if math.IsNaN(q) || q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	target := int64(math.Ceil(q * float64(h.count)))
	if target < 1 {
		target = 1
	}
	var cum int64
	for i, c := range h.buckets {
		cum += c
		if cum >= target {
			// Upper edge of bucket i, capped by observed max.
			edge := int64(1) << uint(i+1)
			if i >= 62 || edge > h.max {
				return h.max
			}
			return edge
		}
	}
	return h.max
}

// Reset clears all samples.
func (h *Histogram) Reset() {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.buckets = [64]int64{}
	h.count, h.sum, h.max = 0, 0, 0
	h.min = math.MaxInt64
}

// Summary accumulates a running mean and variance (Welford's algorithm).
// Used for the per-matcher load-balance comparison (Figure 8), which reports
// the normalized standard deviation across matchers.
type Summary struct {
	mu    sync.Mutex
	n     int64
	mean  float64
	m2    float64
	total float64
}

// Add records one observation.
func (s *Summary) Add(v float64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.n++
	d := v - s.mean
	s.mean += d / float64(s.n)
	s.m2 += d * (v - s.mean)
	s.total += v
}

// N returns the number of observations.
func (s *Summary) N() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.n
}

// Mean returns the mean of the observations, or 0 when empty.
func (s *Summary) Mean() float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.mean
}

// Sum returns the sum of the observations.
func (s *Summary) Sum() float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.total
}

// StdDev returns the population standard deviation, or 0 for fewer than two
// observations.
func (s *Summary) StdDev() float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.n < 2 {
		return 0
	}
	return math.Sqrt(s.m2 / float64(s.n))
}

// NormStdDev returns StdDev/Mean — the load-imbalance measure of Figure 8 —
// or 0 when the mean is 0.
func (s *Summary) NormStdDev() float64 {
	sd := s.StdDev()
	m := s.Mean()
	if m == 0 {
		return 0
	}
	return sd / m
}

// NormStdDevOf computes stddev/mean over a sample slice (population stddev).
// It returns 0 for empty input or zero mean.
func NormStdDevOf(vals []float64) float64 {
	if len(vals) == 0 {
		return 0
	}
	var sum float64
	for _, v := range vals {
		sum += v
	}
	mean := sum / float64(len(vals))
	if mean == 0 {
		return 0
	}
	var m2 float64
	for _, v := range vals {
		d := v - mean
		m2 += d * d
	}
	return math.Sqrt(m2/float64(len(vals))) / mean
}
