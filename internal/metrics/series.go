package metrics

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing atomic counter (bytes sent, messages
// lost, and similar overhead accounting).
type Counter struct{ v atomic.Int64 }

// Add increments the counter by n.
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is an atomically updated instantaneous value (queue length,
// utilization).
type Gauge struct{ v atomic.Int64 }

// Set stores the value.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add adjusts the value by n (n may be negative).
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Point is one (time, value) sample of a Series.
type Point struct {
	// T is the sample timestamp in nanoseconds.
	T int64
	// V is the sampled value.
	V float64
}

// Series collects timestamped samples for the time-series figures
// (response time over time, loss rate over time). Samples need not arrive in
// time order; Points sorts before returning.
type Series struct {
	mu   sync.Mutex
	name string
	pts  []Point
}

// NewSeries creates an empty named series.
func NewSeries(name string) *Series { return &Series{name: name} }

// Name returns the series name.
func (s *Series) Name() string { return s.name }

// Append records a sample.
func (s *Series) Append(t int64, v float64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.pts = append(s.pts, Point{T: t, V: v})
}

// Len returns the number of samples.
func (s *Series) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.pts)
}

// Points returns the samples sorted by time.
func (s *Series) Points() []Point {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Point, len(s.pts))
	copy(out, s.pts)
	sort.Slice(out, func(i, j int) bool { return out[i].T < out[j].T })
	return out
}

// WriteTSV writes "time_seconds\tvalue" rows to w, suitable for plotting.
func (s *Series) WriteTSV(w io.Writer) error {
	for _, p := range s.Points() {
		if _, err := fmt.Fprintf(w, "%.3f\t%g\n", float64(p.T)/1e9, p.V); err != nil {
			return err
		}
	}
	return nil
}

// Downsample buckets the series into fixed intervals and returns one
// averaged point per non-empty bucket. Useful for rendering long runs.
func (s *Series) Downsample(interval int64) []Point {
	pts := s.Points()
	if len(pts) == 0 || interval <= 0 {
		return pts
	}
	var out []Point
	start := pts[0].T - pts[0].T%interval
	var sum float64
	var n int
	cur := start
	flush := func() {
		if n > 0 {
			out = append(out, Point{T: cur + interval/2, V: sum / float64(n)})
		}
		sum, n = 0, 0
	}
	for _, p := range pts {
		b := p.T - p.T%interval
		if b != cur {
			flush()
			cur = b
		}
		sum += p.V
		n++
	}
	flush()
	return out
}
