package cluster

import (
	"fmt"
	"os"
	"strconv"
	"testing"
	"time"

	"bluedove/internal/chaos"
	"bluedove/internal/core"
	"bluedove/internal/gossip"
)

// fullSpace is a predicate set matching every point of the 4-dim test space.
func fullSpace() []core.Range {
	return []core.Range{
		{Low: 0, High: 1000}, {Low: 0, High: 1000}, {Low: 0, High: 1000}, {Low: 0, High: 1000},
	}
}

// TestChaosKillMidBurstZeroAckedLoss is the headline failover test: with
// persistence on, one matcher is killed in the middle of a publication burst
// by a timed chaos scenario. Every publication the dispatcher accepted must
// still reach the subscriber — the dispatcher reroutes unacked forwards to
// the surviving candidate matchers — and the delivery stall the kill caused
// is reported as the failover latency.
func TestChaosKillMidBurstZeroAckedLoss(t *testing.T) {
	ctrl := chaos.NewController(1)
	defer ctrl.Close()
	opts := fastOptions(4)
	opts.Chaos = ctrl
	opts.Persistent = true
	opts.RetryInterval = 100 * time.Millisecond
	c, err := Start(opts)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.WaitForTable(1, 5*time.Second); err != nil {
		t.Fatal(err)
	}

	aud := chaos.NewAuditor()
	aud.Subscribed(1, fullSpace())
	subCl, err := c.NewClient(0, func(m *core.Message, _ []core.SubscriptionID) {
		aud.Delivered(1, m)
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := subCl.Subscribe(fullSpace()); err != nil {
		t.Fatal(err)
	}
	time.Sleep(300 * time.Millisecond) // let the stores land everywhere

	pubCl, err := c.NewClient(1, nil)
	if err != nil {
		t.Fatal(err)
	}

	victim := c.MatcherIDs()[0]
	killAt := time.Time{}
	run := chaos.NewScenario().
		At(100 * time.Millisecond).Do(func() {
		killAt = time.Now()
		if err := c.CrashMatcher(victim); err != nil {
			t.Errorf("crash matcher %v: %v", victim, err)
		}
	}).Run(ctrl)
	defer run.Stop()

	const burst = 200
	for i := 0; i < burst; i++ {
		token := fmt.Sprintf("tok-%03d", i)
		attrs := []float64{float64((i * 37) % 1000), float64((i * 59) % 1000),
			float64((i * 83) % 1000), float64((i * 101) % 1000)}
		if err := pubCl.Publish(attrs, []byte(token)); err != nil {
			t.Fatalf("publish %d rejected: %v", i, err)
		}
		aud.Published(token, attrs) // acked: the invariant now covers it
		time.Sleep(time.Millisecond)
	}
	run.Wait()
	if killAt.IsZero() {
		t.Fatal("scenario never killed the victim")
	}

	if err := aud.WaitComplete(20 * time.Second); err != nil {
		t.Fatal(err)
	}
	if got, want := aud.Expected(), burst; got != want {
		t.Fatalf("auditor expected %d deliveries, want %d", got, want)
	}
	gap, resumedAt := aud.FirstDeliveryGap(killAt)
	t.Logf("failover: %d/%d acked publications delivered (%d duplicate deliveries); "+
		"longest delivery stall after kill %v (resumed %v after kill)",
		burst, burst, aud.Duplicates(), gap, resumedAt.Sub(killAt))

	// The cluster must also have recovered: victim out of the table, and
	// the survivors' control planes in agreement.
	waitFor(t, 10*time.Second, func() bool {
		tab := c.Table()
		return tab != nil && !tab.HasMatcher(victim)
	})
	if err := c.WaitConverged(10 * time.Second); err != nil {
		t.Fatal(err)
	}
}

// TestChaosOrphanPointRetransmitted pins the nastiest failover case: a
// publication whose candidate owner on EVERY dimension is the matcher that
// just died. With persistence on, the dispatcher must retain it even though
// no candidate is reachable at publish time, and re-forward once recovery
// reassigns the dead matcher's segments.
func TestChaosOrphanPointRetransmitted(t *testing.T) {
	ctrl := chaos.NewController(5)
	defer ctrl.Close()
	opts := fastOptions(4)
	opts.Chaos = ctrl
	opts.Persistent = true
	opts.RetryInterval = 100 * time.Millisecond
	c, err := Start(opts)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.WaitForTable(1, 5*time.Second); err != nil {
		t.Fatal(err)
	}

	aud := chaos.NewAuditor()
	aud.Subscribed(1, fullSpace())
	subCl, err := c.NewClient(0, func(m *core.Message, _ []core.SubscriptionID) {
		aud.Delivered(1, m)
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := subCl.Subscribe(fullSpace()); err != nil {
		t.Fatal(err)
	}
	time.Sleep(300 * time.Millisecond)

	// Build a point owned by the victim on all four dimensions.
	victim := c.MatcherIDs()[0]
	tab := c.Table()
	attrs := make([]float64, 4)
	for d := 0; d < 4; d++ {
		found := false
		for _, v := range []float64{125, 375, 625, 875} {
			probe := []float64{500, 500, 500, 500}
			probe[d] = v
			for _, cand := range tab.CandidatesFor(core.NewMessage(probe, nil)) {
				if cand.Dim == d && cand.Node == victim {
					attrs[d], found = v, true
				}
			}
			if found {
				break
			}
		}
		if !found {
			t.Fatalf("victim %v owns no probed segment on dim %d", victim, d)
		}
	}

	if err := c.CrashMatcher(victim); err != nil {
		t.Fatal(err)
	}
	pubCl, err := c.NewClient(1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := pubCl.Publish(attrs, []byte("orphan")); err != nil {
		t.Fatal(err)
	}
	aud.Published("orphan", attrs)
	// Nothing can match until failure detection + recovery reassigns the
	// victim's segments; then the retained publication must come through.
	if err := aud.WaitComplete(15 * time.Second); err != nil {
		t.Fatal(err)
	}
	retrans := int64(0)
	for _, d := range c.Dispatchers() {
		retrans += d.Retransmits.Value()
	}
	if retrans == 0 {
		t.Fatal("orphaned publication delivered without any retransmission — test lost its teeth")
	}
}

// TestChaosPartitionSuspectDeadHealRejoin drives a full partition lifecycle
// against a running cluster: isolate one matcher (it stays up), watch the
// failure detector walk alive → suspect → dead, heal, and verify the node
// rejoins and the control plane re-converges.
func TestChaosPartitionSuspectDeadHealRejoin(t *testing.T) {
	ctrl := chaos.NewController(3)
	defer ctrl.Close()
	opts := fastOptions(4)
	opts.Chaos = ctrl
	c, err := Start(opts)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.WaitForTable(1, 5*time.Second); err != nil {
		t.Fatal(err)
	}

	victim := c.MatcherIDs()[1]
	addr, ok := c.MatcherAddr(victim)
	if !ok {
		t.Fatalf("no address for matcher %v", victim)
	}
	obs := c.Dispatchers()[0].Gossiper()
	waitFor(t, 5*time.Second, func() bool { return obs.Status(victim) == gossip.StatusAlive })

	ctrl.Isolate(addr, true)
	// FailAfter is 500ms, so SuspectAfter defaults to 250ms: the detector
	// must pass through suspect before declaring death.
	sawSuspect := false
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		switch obs.Status(victim) {
		case gossip.StatusSuspect:
			sawSuspect = true
		case gossip.StatusDead:
			if !sawSuspect {
				t.Fatal("victim jumped alive → dead without a suspect phase")
			}
			goto dead
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatal("victim never declared dead")
dead:

	ctrl.Heal()
	waitFor(t, 10*time.Second, func() bool { return obs.Status(victim) == gossip.StatusAlive })
	if err := c.WaitConverged(10 * time.Second); err != nil {
		t.Fatal(err)
	}
}

// TestChaosSameSeedSameSchedule: two clusters driven with the same chaos
// seed must draw identical fault schedules. Concurrent traffic means the two
// runs can cut their verdict streams at different points, so equality is
// checked on the common prefix of every shared link — the streams themselves
// are pure functions of (seed, link).
func TestChaosSameSeedSameSchedule(t *testing.T) {
	schedule := func() map[[2]string][]chaos.Verdict {
		ctrl := chaos.NewController(99)
		defer ctrl.Close()
		opts := fastOptions(3)
		opts.Chaos = ctrl
		c, err := Start(opts)
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
		if err := c.WaitForTable(1, 5*time.Second); err != nil {
			t.Fatal(err)
		}
		subCl, err := c.NewClient(0, func(*core.Message, []core.SubscriptionID) {})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := subCl.Subscribe(fullSpace()); err != nil {
			t.Fatal(err)
		}
		time.Sleep(200 * time.Millisecond)
		// Degrade every link into the matchers after setup, then drive a
		// fixed workload through it.
		for _, id := range c.MatcherIDs() {
			addr, _ := c.MatcherAddr(id)
			ctrl.SetFaults(chaos.Wildcard, addr, chaos.LinkFaults{Drop: 0.2, Duplicate: 0.1})
		}
		pubCl, err := c.NewClient(1, nil)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 50; i++ {
			_ = pubCl.Publish([]float64{float64(i * 19 % 1000), 500, 500, 500}, nil)
		}
		time.Sleep(300 * time.Millisecond)
		out := make(map[[2]string][]chaos.Verdict)
		for _, link := range ctrl.TracedLinks() {
			out[link] = ctrl.Verdicts(link[0], link[1])
		}
		return out
	}

	a, b := schedule(), schedule()
	compared := 0
	for link, va := range a {
		vb, ok := b[link]
		if !ok {
			continue
		}
		n := len(va)
		if len(vb) < n {
			n = len(vb)
		}
		for i := 0; i < n; i++ {
			if va[i] != vb[i] {
				t.Fatalf("link %s->%s verdict %d diverged: run A %+v, run B %+v",
					link[0], link[1], i, va[i], vb[i])
			}
		}
		compared += n
	}
	if compared < 50 {
		t.Fatalf("only %d verdicts compared across runs — workload did not exercise the fault rules", compared)
	}
}

// TestChaosSoak pushes a publication burst through links degraded with
// random drop/duplicate/delay (no kills: a blackholed matcher changes the
// table, which re-installs subscriptions outside the forwarding invariant)
// and requires the at-least-once accounting to hold exactly. The seed is
// randomized per run and printed for reproduction; set CHAOS_SEED to replay
// a failure.
func TestChaosSoak(t *testing.T) {
	seed := time.Now().UnixNano()
	if s := os.Getenv("CHAOS_SEED"); s != "" {
		v, err := strconv.ParseInt(s, 10, 64)
		if err != nil {
			t.Fatalf("bad CHAOS_SEED %q: %v", s, err)
		}
		seed = v
	}
	t.Logf("chaos seed %d (re-run with CHAOS_SEED=%d)", seed, seed)

	ctrl := chaos.NewController(seed)
	defer ctrl.Close()
	opts := fastOptions(4)
	opts.Chaos = ctrl
	opts.Persistent = true
	opts.RetryInterval = 100 * time.Millisecond
	c, err := Start(opts)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.WaitForTable(1, 5*time.Second); err != nil {
		t.Fatal(err)
	}

	aud := chaos.NewAuditor()
	aud.Subscribed(1, fullSpace())
	subCl, err := c.NewClient(0, func(m *core.Message, _ []core.SubscriptionID) {
		aud.Delivered(1, m)
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := subCl.Subscribe(fullSpace()); err != nil {
		t.Fatal(err)
	}
	time.Sleep(300 * time.Millisecond)

	// Degrade the dispatcher↔matcher fabric only, and only after the
	// subscription stores have landed: forwards and acks are retried by the
	// persistence layer, but a dropped Store would silently shrink the
	// subscription's footprint.
	faults := chaos.LinkFaults{Drop: 0.15, Duplicate: 0.1,
		DelayMin: time.Millisecond, DelayMax: 5 * time.Millisecond}
	for _, id := range c.MatcherIDs() {
		maddr, _ := c.MatcherAddr(id)
		for _, daddr := range c.DispatcherAddrs() {
			ctrl.SetFaults(daddr, maddr, faults)
			ctrl.SetFaults(maddr, daddr, faults)
		}
	}

	pubCl, err := c.NewClient(1, nil)
	if err != nil {
		t.Fatal(err)
	}
	const burst = 100
	for i := 0; i < burst; i++ {
		token := fmt.Sprintf("soak-%03d", i)
		attrs := []float64{float64((i * 37) % 1000), float64((i * 59) % 1000),
			float64((i * 83) % 1000), float64((i * 101) % 1000)}
		if err := pubCl.Publish(attrs, []byte(token)); err != nil {
			t.Fatalf("publish %d rejected: %v", i, err)
		}
		aud.Published(token, attrs)
		time.Sleep(time.Millisecond)
	}

	if err := aud.WaitComplete(20 * time.Second); err != nil {
		t.Fatalf("seed %d: %v", seed, err)
	}
	dropped := 0
	for _, link := range ctrl.TracedLinks() {
		for _, v := range ctrl.Verdicts(link[0], link[1]) {
			if v.Action == chaos.Drop {
				dropped++
			}
		}
	}
	if dropped == 0 {
		t.Fatalf("seed %d: fault rules injected no drops", seed)
	}
	t.Logf("seed %d: %d/%d delivered through %d injected drops (%d duplicate deliveries)",
		seed, burst, burst, dropped, aud.Duplicates())
}
