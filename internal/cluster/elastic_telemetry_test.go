package cluster

import (
	"encoding/json"
	"testing"
	"time"

	"bluedove/internal/elastic"
	"bluedove/internal/telemetry"
)

// TestElasticTelemetryScrape: the embedded controller exposes its own admin
// node (role "elastic") whose /metrics scrape is well-formed Prometheus text
// carrying the decision counters and matcher-state gauges that bluedove-top's
// MATCHERS row and -validate contract read.
func TestElasticTelemetryScrape(t *testing.T) {
	opts := fastOptions(2)
	opts.Dispatchers = 1
	opts.Admin = true
	opts.Elastic = true
	opts.ElasticInterval = 50 * time.Millisecond
	// Park the controller: watermarks never sustain long enough to actuate,
	// so the scrape is stable while we read it.
	opts.ElasticConfig = elastic.Config{SustainRounds: 1 << 20, MinMatchers: 2}
	c, err := Start(opts)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.WaitForTable(1, 5*time.Second); err != nil {
		t.Fatal(err)
	}

	// Find the controller's admin endpoint by its role label.
	var elasticAdmin string
	for _, addr := range c.AdminAddrs() {
		var v struct {
			Labels map[string]string `json:"labels"`
		}
		if err := json.Unmarshal(httpGet(t, addr, "/debug/vars"), &v); err != nil {
			t.Fatalf("%s /debug/vars: %v", addr, err)
		}
		if v.Labels["role"] == "elastic" {
			elasticAdmin = addr
			break
		}
	}
	if elasticAdmin == "" {
		t.Fatalf("no admin endpoint with role=elastic among %v", c.AdminAddrs())
	}

	// Must match requiredSeries("elastic") in cmd/bluedove-top.
	required := []string{
		"bluedove_node_info",
		"bluedove_elastic_scale_up",
		"bluedove_elastic_scale_down",
		"bluedove_elastic_splits",
		"bluedove_elastic_replaces",
		"bluedove_elastic_thrash",
		"bluedove_elastic_journal_errors",
		"bluedove_elastic_matchers",
		"bluedove_elastic_joining",
		"bluedove_elastic_draining",
	}
	scrape := httpGet(t, elasticAdmin, "/metrics")
	if err := telemetry.CheckPrometheusText(scrape, required); err != nil {
		t.Fatalf("elastic scrape invalid: %v\n%s", err, scrape)
	}

	// The matcher-state gauges must reflect the live cluster.
	var vars struct {
		Metrics []struct {
			Name  string  `json:"name"`
			Value float64 `json:"value"`
		} `json:"metrics"`
	}
	if err := json.Unmarshal(httpGet(t, elasticAdmin, "/debug/vars"), &vars); err != nil {
		t.Fatal(err)
	}
	got := map[string]float64{}
	for _, m := range vars.Metrics {
		got[m.Name] = m.Value
	}
	if got["elastic.matchers"] != 2 {
		t.Fatalf("elastic.matchers = %g, want 2", got["elastic.matchers"])
	}
	if got["elastic.joining"] != 0 || got["elastic.draining"] != 0 {
		t.Fatalf("joining/draining = %g/%g, want 0/0",
			got["elastic.joining"], got["elastic.draining"])
	}
}
