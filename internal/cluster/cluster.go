// Package cluster assembles complete BlueDove deployments: N matchers and D
// dispatchers wired over an in-process mesh (tests, examples) or real TCP
// (production, the cmd/ binaries), bootstrapped with a uniform mPartition
// table, with elasticity (joining matchers via the paper's dispatcher-driven
// split protocol) and failure injection.
package cluster

import (
	"errors"
	"fmt"
	"path/filepath"
	"sync"
	"time"

	"bluedove/internal/chaos"
	"bluedove/internal/client"
	"bluedove/internal/core"
	"bluedove/internal/dispatcher"
	"bluedove/internal/edge"
	"bluedove/internal/elastic"
	"bluedove/internal/federation"
	"bluedove/internal/forward"
	"bluedove/internal/gossip"
	"bluedove/internal/index"
	"bluedove/internal/matcher"
	"bluedove/internal/metrics"
	"bluedove/internal/partition"
	"bluedove/internal/placement"
	"bluedove/internal/store"
	"bluedove/internal/telemetry"
	"bluedove/internal/transport"
	"bluedove/internal/wire"
)

// Options configures a cluster.
type Options struct {
	// Space is the attribute space; required.
	Space *core.Space
	// Matchers is the initial matcher count (default 4).
	Matchers int
	// Dispatchers is the dispatcher count (default 2, as in the paper).
	Dispatchers int
	// Strategy is the placement strategy (default placement.BlueDove{}).
	Strategy placement.Strategy
	// Policy is the forwarding policy (default forward.Adaptive{}).
	Policy forward.Policy
	// IndexKind selects matcher indexes (default bucket).
	IndexKind index.Kind
	// IndexBuckets overrides the bucket count of the bucket index (default
	// index.DefaultBuckets; ignored by the other kinds).
	IndexBuckets int
	// Covering enables subscription covering/aggregation on every matcher
	// (see matcher.Config.Covering).
	Covering bool
	// MatchShards partitions each matcher dimension set into this many
	// hash shards matched in parallel (default 1; see
	// matcher.Config.MatchShards).
	MatchShards int
	// TCP selects real TCP on loopback instead of the in-process mesh.
	TCP bool
	// GossipInterval, FailAfter, ReportInterval, RecoveryDelay, PruneGrace
	// tune the control loops; defaults follow the paper (1s, 10s, 1s, 5s,
	// 3s). Tests shrink them.
	GossipInterval time.Duration
	FailAfter      time.Duration
	ReportInterval time.Duration
	RecoveryDelay  time.Duration
	PruneGrace     time.Duration
	// WorkersPerDim sizes matcher stages (default 1).
	WorkersPerDim int
	// Persistent enables at-least-once forwarding: dispatchers retain each
	// publication until a matcher acks it, so crashes lose no accepted
	// messages (paper Section VI future work; duplicates possible). Direct
	// clients created through NewClient get a duplicate-suppression window
	// so redeliveries never reach the application twice.
	Persistent bool
	// DataDir, when set, makes every node durable: each matcher and
	// dispatcher journals its state to a write-ahead log under
	// DataDir/<node-label>/ and recovers it on restart (RestartMatcher,
	// RestartDispatcher). Empty keeps all state in memory — the pre-durable
	// behavior, with zero filesystem traffic.
	DataDir string
	// Fsync is the journal durability policy when DataDir is set (default
	// store.FsyncAlways: every append reaches the disk before it is acked).
	Fsync store.Fsync
	// FailPolicy is every durable node's response to an unrecoverable
	// journal fault (default store.FailStop: the store fails, the cluster
	// crashes the node, and the existing crash-recovery path takes over).
	// store.DegradeToMemory keeps nodes serving non-durably with exact loss
	// accounting; store.Shed makes dispatchers refuse new persistent work
	// with an overloaded-style rejection. Ignored when DataDir is empty.
	FailPolicy store.FailPolicy
	// RetryInterval is the persistence retransmit timeout (default 2s).
	RetryInterval time.Duration
	// ForwardLinger, when positive, enables publication batching on every
	// dispatcher's forward path (see dispatcher.Config.ForwardLinger). Zero
	// keeps the unbatched message-per-frame behavior.
	ForwardLinger time.Duration
	// ForwardBatchCount and ForwardBatchBytes tune the batch flush
	// thresholds (defaults 64 messages / 256 KiB; meaningful only with
	// ForwardLinger > 0).
	ForwardBatchCount int
	ForwardBatchBytes int
	// MatcherQueueDepth bounds each matcher's per-dimension stage queue
	// (matcher.Config.QueueDepth). Forwards arriving at a full stage are
	// rejected with a busy NACK; 0 keeps the matcher's default depth.
	MatcherQueueDepth int
	// RetryBudget, RerouteBackoff, BreakerThreshold, BreakerCooldown,
	// AdmissionLimit and MessageTTL pass through to every dispatcher's
	// overload-control layer (see dispatcher.Config); zeros keep the
	// dispatcher defaults (re-routing and circuit breaking ON; negative
	// RetryBudget/BreakerThreshold disable them).
	RetryBudget      int
	RerouteBackoff   time.Duration
	BreakerThreshold int
	BreakerCooldown  time.Duration
	AdmissionLimit   int
	MessageTTL       time.Duration
	// TCPFlushInterval, when positive on a TCP cluster, enables transport
	// write coalescing on every node (see transport.TCP.FlushInterval).
	TCPFlushInterval time.Duration
	// Chaos, when non-nil, wraps every node's transport in the
	// fault-injection controller: scheduled drops, delays, duplicates,
	// partitions and kills apply to all cluster traffic, keyed by node
	// address (mesh labels like "matcher-1", or the bound TCP address).
	Chaos *chaos.Controller
	// Telemetry enables the observability subsystem on every node: a
	// metrics registry labeled with the node's identity and a hop-level
	// tracer. Implied by TraceSampleRate > 0 or Admin.
	Telemetry bool
	// TraceSampleRate is the fraction of publications traced end to end
	// (0 disables tracing; 1 traces everything).
	TraceSampleRate float64
	// Admin serves each node's admin endpoint (Prometheus /metrics, JSON
	// /debug/vars, /debug/traces, pprof) on a loopback port; see
	// Cluster.AdminAddrs.
	Admin bool
	// Elastic embeds the elasticity controller: a loop that scrapes every
	// matcher's telemetry each ElasticInterval and autoscales the cluster —
	// scale-up via the join protocol, scale-down via the leave protocol,
	// hot-segment splits under skew (see internal/elastic).
	Elastic bool
	// ElasticConfig tunes the controller's watermarks and hysteresis (zero
	// values take the elastic package defaults).
	ElasticConfig elastic.Config
	// ElasticInterval is the scrape/decision cadence (default 1s).
	ElasticInterval time.Duration
	// DrainGrace is how long a removed matcher keeps serving stale-routed
	// traffic before stopping (default PruneGrace).
	DrainGrace time.Duration
	// Edges is the number of edge servers to start (default 0). Each edge
	// multiplexes many lightweight subscriber sessions behind one
	// aggregated upstream subscriber registered with dispatcher 0 (see
	// internal/edge); connect sessions with NewEdgeSession.
	Edges int
	// EdgePolicy is every edge's slow-consumer policy (default
	// backpressure).
	EdgePolicy edge.Policy
	// EdgeBufferBytes bounds each session's send buffer and unacked flight
	// window (0 = edge default, 256 KiB).
	EdgeBufferBytes int
	// ResumeWindow bounds each session's resume replay ring, in deliveries
	// (0 = edge default, 1024).
	ResumeWindow int
	// Federation starts the border tier: Borders border nodes that join the
	// local overlay as core.RoleBorder, summarize the cluster's interest and
	// route publications to/from the peer clusters in FedPeers (see
	// internal/federation).
	Federation bool
	// ClusterID is this cluster's federation identity; required nonzero when
	// Federation is set and unique across the federation (default 1).
	ClusterID uint64
	// FedPeers lists peer-cluster border addresses. Multi-cluster test
	// topologies usually leave this empty and wire the full mesh after start
	// with Border.SetPeers (see StartFederated).
	FedPeers []string
	// Borders is the border node count (default 1 when Federation is set).
	Borders int
	// FedSummaryInterval is the border summary pull/exchange cadence
	// (default 1s; tests shrink it).
	FedSummaryInterval time.Duration
	// FedMaxHops bounds inter-cluster forwarding hops (default 1).
	FedMaxHops int
	// LabelPrefix namespaces every node label (mesh address) of this
	// cluster, so several clusters can share one in-process mesh — the
	// inter-cluster topology StartFederated builds.
	LabelPrefix string
	// Mesh, when set on a non-TCP cluster, uses the given shared mesh
	// instead of creating one; the caller owns its lifecycle.
	Mesh *transport.Mesh
}

// telemetryOn reports whether nodes get a telemetry bundle.
func (o *Options) telemetryOn() bool {
	return o.Telemetry || o.TraceSampleRate > 0 || o.Admin
}

// clampInterval normalizes one control-loop cadence: negative values mean
// "unset" (the default applies), and positive values below a millisecond are
// raised to one — a sub-millisecond ticker busy-spins the control loop (and
// a value rounded to zero panics time.NewTicker outright).
func clampInterval(d *time.Duration) {
	if *d < 0 {
		*d = 0
	} else if *d > 0 && *d < time.Millisecond {
		*d = time.Millisecond
	}
}

// Validate checks required fields and clamps pathological knob values in
// place so they cannot reach a node constructor: negative counts, sizes and
// durations fall back to their documented defaults, and sub-millisecond
// control intervals are raised to 1ms. defaults() runs it on every Start;
// callers may invoke it directly to pre-flight a configuration.
func (o *Options) Validate() error {
	if o.Space == nil {
		return errors.New("cluster: Space is required")
	}
	for _, d := range []*time.Duration{
		&o.GossipInterval, &o.FailAfter, &o.ReportInterval, &o.RecoveryDelay,
		&o.PruneGrace, &o.RetryInterval, &o.ElasticInterval, &o.DrainGrace,
		&o.FedSummaryInterval,
	} {
		clampInterval(d)
	}
	// Optional durations where zero means "default/disabled": a negative
	// value must not arm a negative timer downstream.
	for _, d := range []*time.Duration{
		&o.RerouteBackoff, &o.BreakerCooldown, &o.MessageTTL,
		&o.ForwardLinger, &o.TCPFlushInterval,
	} {
		if *d < 0 {
			*d = 0
		}
	}
	// Counts and buffer sizes where zero selects the node default. Knobs
	// with meaningful negative values (RetryBudget, BreakerThreshold:
	// negative disables the feature) are deliberately left alone.
	for _, n := range []*int{
		&o.IndexBuckets, &o.MatchShards, &o.WorkersPerDim,
		&o.MatcherQueueDepth, &o.ForwardBatchCount, &o.ForwardBatchBytes,
		&o.AdmissionLimit, &o.EdgeBufferBytes, &o.ResumeWindow,
		&o.Edges, &o.Borders, &o.FedMaxHops,
	} {
		if *n < 0 {
			*n = 0
		}
	}
	return nil
}

func (o *Options) defaults() error {
	if err := o.Validate(); err != nil {
		return err
	}
	if o.Matchers <= 0 {
		o.Matchers = 4
	}
	if o.Dispatchers <= 0 {
		o.Dispatchers = 2
	}
	if o.Strategy == nil {
		o.Strategy = placement.BlueDove{}
	}
	if o.Policy == nil {
		o.Policy = forward.Adaptive{}
	}
	if o.GossipInterval <= 0 {
		o.GossipInterval = time.Second
	}
	if o.FailAfter <= 0 {
		o.FailAfter = 10 * time.Second
	}
	if o.ReportInterval <= 0 {
		o.ReportInterval = time.Second
	}
	if o.RecoveryDelay <= 0 {
		o.RecoveryDelay = 5 * time.Second
	}
	if o.PruneGrace <= 0 {
		o.PruneGrace = 3 * time.Second
	}
	if o.ElasticInterval <= 0 {
		o.ElasticInterval = time.Second
	}
	if o.DrainGrace <= 0 {
		o.DrainGrace = o.PruneGrace
	}
	if o.Federation {
		if o.Borders <= 0 {
			o.Borders = 1
		}
		if o.ClusterID == 0 {
			o.ClusterID = 1
		}
	}
	return nil
}

// label namespaces a node label with the cluster's prefix (shared-mesh
// multi-cluster topologies; empty prefix keeps the historical labels).
func (c *Cluster) label(format string, args ...any) string {
	return c.opts.LabelPrefix + fmt.Sprintf(format, args...)
}

// Cluster is a running deployment.
type Cluster struct {
	opts      Options
	mesh      *transport.Mesh // nil when TCP
	meshOwned bool            // false when Options.Mesh was supplied

	// mu guards the mutable node maps and lifecycle state: the elasticity
	// controller mutates membership from its own goroutine while tests and
	// chaos scenarios drive the cluster from theirs.
	mu sync.Mutex

	dispatchers []*dispatcher.Dispatcher
	edges       []*edge.Edge
	edgeTr      []transport.Transport
	borders     []*federation.Border
	borderTr    []transport.Transport
	matchers    map[core.NodeID]*matcher.Matcher
	matcherTr   map[core.NodeID]transport.Transport
	dispTr      map[core.NodeID]transport.Transport
	order       []core.NodeID
	stopped     map[core.NodeID]bool // matchers crashed via CrashMatcher
	stoppedDisp map[int]bool         // dispatchers crashed via CrashDispatcher, by index
	generations map[core.NodeID]uint64
	states      map[core.NodeID]MatcherState // joining/draining markers

	nextNode       core.NodeID
	nextSubscriber core.SubscriberID
	seeds          []string

	telemetries map[core.NodeID]*telemetry.Telemetry
	admins      map[core.NodeID]*telemetry.Admin

	// Elasticity controller state (nil/zero unless Options.Elastic).
	elCtrl      *elastic.Controller
	elJnl       *store.Store
	elJnlErrors metrics.Counter
	elStop      chan struct{}
	elDone      chan struct{}
	elasticID   core.NodeID
}

// Start boots a cluster and blocks until the initial segment table has been
// published.
func Start(opts Options) (*Cluster, error) {
	if err := opts.defaults(); err != nil {
		return nil, err
	}
	c := &Cluster{
		opts:        opts,
		matchers:    make(map[core.NodeID]*matcher.Matcher),
		matcherTr:   make(map[core.NodeID]transport.Transport),
		dispTr:      make(map[core.NodeID]transport.Transport),
		stopped:     make(map[core.NodeID]bool),
		stoppedDisp: make(map[int]bool),
		generations: make(map[core.NodeID]uint64),
		states:      make(map[core.NodeID]MatcherState),
		nextNode:    1,
		telemetries: make(map[core.NodeID]*telemetry.Telemetry),
		admins:      make(map[core.NodeID]*telemetry.Admin),
	}
	if !opts.TCP {
		if opts.Mesh != nil {
			c.mesh = opts.Mesh
		} else {
			c.mesh = transport.NewMesh(0)
			c.meshOwned = true
		}
	}

	// Matchers first: their addresses seed the gossip overlay.
	ids := make([]core.NodeID, opts.Matchers)
	for i := 0; i < opts.Matchers; i++ {
		id := c.nextNode
		c.nextNode++
		m, err := c.startMatcher(id)
		if err != nil {
			c.Close()
			return nil, err
		}
		ids[i] = id
		c.matchers[id] = m
		c.order = append(c.order, id)
		if i == 0 {
			c.seeds = []string{m.Addr()}
		}
	}
	for i := 0; i < opts.Dispatchers; i++ {
		id := c.nextNode
		c.nextNode++
		d, err := c.startDispatcher(id)
		if err != nil {
			c.Close()
			return nil, err
		}
		c.dispatchers = append(c.dispatchers, d)
	}
	tab, err := partition.NewUniform(opts.Space, ids)
	if err != nil {
		c.Close()
		return nil, err
	}
	c.dispatchers[0].SetTable(tab)
	for i := 0; i < opts.Edges; i++ {
		id := c.nextNode
		c.nextNode++
		if err := c.startEdge(id); err != nil {
			c.Close()
			return nil, err
		}
	}
	if opts.Federation {
		for i := 0; i < opts.Borders; i++ {
			id := c.nextNode
			c.nextNode++
			if err := c.startBorder(id); err != nil {
				c.Close()
				return nil, err
			}
		}
	}
	if opts.Elastic {
		if err := c.startElastic(); err != nil {
			c.Close()
			return nil, err
		}
	}
	return c, nil
}

// newTransport creates the per-node transport, wrapped in the chaos
// controller when one is configured. The raw TCP transport (nil on mesh
// clusters) is returned alongside so telemetry can register its counters.
func (c *Cluster) newTransport(label string) (transport.Transport, *transport.TCP) {
	var tr transport.Transport
	var tcp *transport.TCP
	if c.opts.TCP {
		t := transport.NewTCP()
		t.FlushInterval = c.opts.TCPFlushInterval
		tr, tcp = t, t
	} else {
		tr = c.mesh.Endpoint(label)
	}
	if c.opts.Chaos != nil {
		tr = chaos.Wrap(c.opts.Chaos, tr, label)
	}
	return tr, tcp
}

// nodeTelemetry builds one node's telemetry bundle (nil when the subsystem
// is off), registers transport counters, and starts the admin endpoint when
// requested.
func (c *Cluster) nodeTelemetry(id core.NodeID, role string, tcp *transport.TCP) (*telemetry.Telemetry, error) {
	if !c.opts.telemetryOn() {
		return nil, nil
	}
	tel := telemetry.New(telemetry.Options{
		SampleRate: c.opts.TraceSampleRate,
		Base: []telemetry.Label{
			telemetry.L("node", fmt.Sprintf("%d", id)),
			telemetry.L("role", role),
		},
	})
	if tcp != nil {
		r := tel.Registry
		r.Counter("transport.frames_sent", "one-way frames written", &tcp.FramesSent)
		r.Counter("transport.bytes_sent", "frame body bytes written", &tcp.BytesSent)
		r.Counter("transport.frames_received", "inbound frames handled", &tcp.FramesReceived)
		r.Counter("transport.bytes_received", "inbound frame body bytes", &tcp.BytesReceived)
	}
	c.telemetries[id] = tel
	if c.opts.Admin {
		adm, err := telemetry.Serve("127.0.0.1:0", tel)
		if err != nil {
			return nil, fmt.Errorf("cluster: admin endpoint for node %d: %w", id, err)
		}
		c.admins[id] = adm
	}
	return tel, nil
}

// nodeAddr returns the listen address for a node label.
func (c *Cluster) nodeAddr(label string) string {
	if c.opts.TCP {
		return "127.0.0.1:0"
	}
	return label
}

// nodeDataDir returns a node's journal directory (empty when the cluster is
// in-memory). Each node gets its own subdirectory so restarts recover only
// their own state.
func (c *Cluster) nodeDataDir(label string) string {
	if c.opts.DataDir == "" {
		return ""
	}
	return filepath.Join(c.opts.DataDir, label)
}

// diskFS returns the filesystem a durable node's journal should use: the
// chaos controller's fault-injecting wrapper when chaos is configured (keyed
// by the node label, so scenarios target disks the way they target links),
// nil otherwise (the store uses the real filesystem).
func (c *Cluster) diskFS(label string) store.FS {
	if c.opts.Chaos == nil || c.opts.DataDir == "" {
		return nil
	}
	return c.opts.Chaos.DiskFS(label, nil)
}

// onMatcherStoreFailure is the FailStop actuation: a matcher whose journal
// failed is crashed (from a fresh goroutine — the health callback must not
// re-enter the node), handing the incident to the existing failure-detection
// and recovery path.
func (c *Cluster) onMatcherStoreFailure(id core.NodeID) func(error) {
	return func(error) { go func() { _ = c.CrashMatcher(id) }() }
}

// onDispatcherStoreFailure crashes a failed-journal dispatcher by locating
// its current index (restarts keep the ID but may be re-slotted).
func (c *Cluster) onDispatcherStoreFailure(id core.NodeID) func(error) {
	return func(error) {
		go func() {
			for i, d := range c.dispatchers {
				if d.ID() == id && !c.stoppedDisp[i] {
					_ = c.CrashDispatcher(i)
					return
				}
			}
		}()
	}
}

// generation returns a node's current incarnation number (bumped on every
// restart so peers prefer the newest gossip about it).
func (c *Cluster) generation(id core.NodeID) uint64 {
	if g := c.generations[id]; g > 0 {
		return g
	}
	return 1
}

func (c *Cluster) startMatcher(id core.NodeID) (*matcher.Matcher, error) {
	label := c.label("matcher-%d", id)
	tr, tcp := c.newTransport(label)
	tel, err := c.nodeTelemetry(id, "matcher", tcp)
	if err != nil {
		return nil, err
	}
	m, err := matcher.New(matcher.Config{
		ID:             id,
		Addr:           c.nodeAddr(label),
		Space:          c.opts.Space,
		Transport:      tr,
		Seeds:          c.seeds,
		IndexKind:      c.opts.IndexKind,
		IndexBuckets:   c.opts.IndexBuckets,
		Covering:       c.opts.Covering,
		MatchShards:    c.opts.MatchShards,
		WorkersPerDim:  c.opts.WorkersPerDim,
		QueueDepth:     c.opts.MatcherQueueDepth,
		ReportInterval: c.opts.ReportInterval,
		GossipInterval: c.opts.GossipInterval,
		FailAfter:      c.opts.FailAfter,
		PruneGrace:     c.opts.PruneGrace,
		Generation:     c.generation(id),
		DataDir:        c.nodeDataDir(label),
		Fsync:          c.opts.Fsync,
		FS:             c.diskFS(label),
		FailPolicy:     c.opts.FailPolicy,
		OnStoreFailure: c.onMatcherStoreFailure(id),
		Telemetry:      tel,
	})
	if err != nil {
		return nil, err
	}
	if err := m.Start(); err != nil {
		return nil, err
	}
	c.matcherTr[id] = tr
	return m, nil
}

func (c *Cluster) startDispatcher(id core.NodeID) (*dispatcher.Dispatcher, error) {
	label := c.label("dispatcher-%d", id)
	tr, tcp := c.newTransport(label)
	tel, err := c.nodeTelemetry(id, "dispatcher", tcp)
	if err != nil {
		return nil, err
	}
	d, err := dispatcher.New(dispatcher.Config{
		ID:                id,
		Addr:              c.nodeAddr(label),
		Space:             c.opts.Space,
		Transport:         tr,
		Seeds:             c.seeds,
		Strategy:          c.opts.Strategy,
		Policy:            c.opts.Policy,
		GossipInterval:    c.opts.GossipInterval,
		FailAfter:         c.opts.FailAfter,
		RecoveryDelay:     c.opts.RecoveryDelay,
		Persistent:        c.opts.Persistent,
		RetryInterval:     c.opts.RetryInterval,
		RetryBudget:       c.opts.RetryBudget,
		RerouteBackoff:    c.opts.RerouteBackoff,
		BreakerThreshold:  c.opts.BreakerThreshold,
		BreakerCooldown:   c.opts.BreakerCooldown,
		AdmissionLimit:    c.opts.AdmissionLimit,
		MessageTTL:        c.opts.MessageTTL,
		ForwardLinger:     c.opts.ForwardLinger,
		ForwardBatchCount: c.opts.ForwardBatchCount,
		ForwardBatchBytes: c.opts.ForwardBatchBytes,
		Generation:        c.generation(id),
		DataDir:           c.nodeDataDir(label),
		Fsync:             c.opts.Fsync,
		FS:                c.diskFS(label),
		FailPolicy:        c.opts.FailPolicy,
		OnStoreFailure:    c.onDispatcherStoreFailure(id),
		Telemetry:         tel,
	})
	if err != nil {
		return nil, err
	}
	if err := d.Start(); err != nil {
		return nil, err
	}
	c.dispTr[id] = tr
	return d, nil
}

func (c *Cluster) startEdge(id core.NodeID) error {
	label := c.label("edge-%d", id)
	tr, tcp := c.newTransport(label)
	tel, err := c.nodeTelemetry(id, "edge", tcp)
	if err != nil {
		return err
	}
	e, err := edge.New(edge.Config{
		ID:             id,
		Addr:           c.nodeAddr(label),
		Space:          c.opts.Space,
		Transport:      tr,
		DispatcherAddr: c.dispatchers[0].Addr(),
		Policy:         c.opts.EdgePolicy,
		BufferBytes:    c.opts.EdgeBufferBytes,
		ResumeWindow:   c.opts.ResumeWindow,
		IndexKind:      c.opts.IndexKind,
		IndexBuckets:   c.opts.IndexBuckets,
		NoCovering:     !c.opts.Covering,
		Telemetry:      tel,
	})
	if err != nil {
		return err
	}
	if err := e.Start(); err != nil {
		return err
	}
	c.edges = append(c.edges, e)
	c.edgeTr = append(c.edgeTr, tr)
	return nil
}

func (c *Cluster) startBorder(id core.NodeID) error {
	label := c.label("border-%d", id)
	tr, tcp := c.newTransport(label)
	tel, err := c.nodeTelemetry(id, "border", tcp)
	if err != nil {
		return err
	}
	b, err := federation.Start(federation.Config{
		ID:              id,
		Addr:            c.nodeAddr(label),
		Space:           c.opts.Space,
		Transport:       tr,
		Seeds:           c.seeds,
		Cluster:         c.opts.ClusterID,
		Peers:           c.opts.FedPeers,
		SummaryInterval: c.opts.FedSummaryInterval,
		MaxHops:         c.opts.FedMaxHops,
		GossipInterval:  c.opts.GossipInterval,
		FailAfter:       c.opts.FailAfter,
		Generation:      c.generation(id),
		Seed:            int64(c.opts.ClusterID)<<16 | int64(id),
		Telemetry:       tel,
	})
	if err != nil {
		return err
	}
	c.borders = append(c.borders, b)
	c.borderTr = append(c.borderTr, tr)
	return nil
}

// Borders returns the running border nodes (empty unless
// Options.Federation).
func (c *Cluster) Borders() []*federation.Border { return c.borders }

// BorderAddrs returns the peer-facing addresses of every border node.
func (c *Cluster) BorderAddrs() []string {
	out := make([]string, len(c.borders))
	for i, b := range c.borders {
		out[i] = b.Addr()
	}
	return out
}

// Edges returns the running edge servers.
func (c *Cluster) Edges() []*edge.Edge { return c.edges }

// EdgeAddrs returns the session-facing addresses of every edge server.
func (c *Cluster) EdgeAddrs() []string {
	out := make([]string, len(c.edges))
	for i, e := range c.edges {
		out[i] = e.Addr()
	}
	return out
}

// NewEdgeSession attaches a subscriber session to edge edgeIdx. Sessions get
// the same duplicate-suppression window persistent clusters give direct
// clients, so resume replay overlap never reaches the application twice.
func (c *Cluster) NewEdgeSession(edgeIdx int, onDeliver func(*core.Message, []core.SubscriptionID)) (*client.EdgeSession, error) {
	if edgeIdx < 0 || edgeIdx >= len(c.edges) {
		return nil, fmt.Errorf("cluster: edge index %d out of range", edgeIdx)
	}
	sub := c.NewSubscriberID()
	label := c.label("edge-client-%d", sub)
	tr, _ := c.newTransport(label)
	return client.DialEdge(client.EdgeConfig{
		Transport:   tr,
		EdgeAddr:    c.edges[edgeIdx].Addr(),
		Subscriber:  sub,
		ListenAddr:  c.nodeAddr(label),
		OnDeliver:   onDeliver,
		DedupWindow: 4096,
	})
}

// ResumeEdgeSession re-dials a dropped edge session on edge edgeIdx with a
// fresh transport endpoint, carrying over prev's resume token and
// duplicate-suppression window. lastSeq 0 resumes from everything prev saw;
// an older explicit sequence forces a wider replay.
func (c *Cluster) ResumeEdgeSession(prev *client.EdgeSession, edgeIdx int, lastSeq uint64,
	onDeliver func(*core.Message, []core.SubscriptionID)) (*client.EdgeSession, error) {
	if edgeIdx < 0 || edgeIdx >= len(c.edges) {
		return nil, fmt.Errorf("cluster: edge index %d out of range", edgeIdx)
	}
	sub := c.NewSubscriberID()
	label := c.label("edge-client-%d", sub)
	tr, _ := c.newTransport(label)
	return prev.Resume(client.EdgeConfig{
		Transport:  tr,
		EdgeAddr:   c.edges[edgeIdx].Addr(),
		Subscriber: sub,
		ListenAddr: c.nodeAddr(label),
		OnDeliver:  onDeliver,
		LastSeq:    lastSeq,
	})
}

// DispatcherAddrs returns the front-end addresses clients connect to.
func (c *Cluster) DispatcherAddrs() []string {
	out := make([]string, len(c.dispatchers))
	for i, d := range c.dispatchers {
		out[i] = d.Addr()
	}
	return out
}

// Dispatchers returns the running dispatcher nodes.
func (c *Cluster) Dispatchers() []*dispatcher.Dispatcher { return c.dispatchers }

// Matcher returns the running matcher with the given ID, or nil.
func (c *Cluster) Matcher(id core.NodeID) *matcher.Matcher {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.matchers[id]
}

// MatcherIDs returns all started matcher IDs in start order (including any
// later stopped ones).
func (c *Cluster) MatcherIDs() []core.NodeID {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]core.NodeID, len(c.order))
	copy(out, c.order)
	return out
}

// LiveMatcherIDs returns the IDs of matchers currently serving (started and
// not crashed or removed), in start order.
func (c *Cluster) LiveMatcherIDs() []core.NodeID {
	c.mu.Lock()
	defer c.mu.Unlock()
	var out []core.NodeID
	for _, id := range c.order {
		if !c.stopped[id] && c.matchers[id] != nil {
			out = append(out, id)
		}
	}
	return out
}

// AddMatcher starts a new matcher and runs the paper's join protocol: the
// matcher contacts a dispatcher, which splits the most loaded matcher's
// segment on every dimension and hands the halves over. Returns the new
// matcher's ID.
func (c *Cluster) AddMatcher() (core.NodeID, error) {
	c.mu.Lock()
	id := c.nextNode
	c.nextNode++
	m, err := c.startMatcher(id)
	if err != nil {
		c.mu.Unlock()
		return 0, err
	}
	c.matchers[id] = m
	c.order = append(c.order, id)
	c.states[id] = StateJoining
	tr := c.matcherTr[id]
	dispAddr := c.dispatchers[0].Addr()
	c.mu.Unlock()

	clearJoining := func() {
		c.mu.Lock()
		delete(c.states, id)
		c.mu.Unlock()
	}
	body := (&wire.JoinBody{ID: id, Addr: m.Addr()}).Encode()
	resp, err := tr.Request(dispAddr,
		&wire.Envelope{Kind: wire.KindJoin, From: id, Body: body}, 5*time.Second)
	if err != nil {
		clearJoining()
		return id, fmt.Errorf("cluster: join request: %w", err)
	}
	ack, err := wire.DecodeJoinAck(resp.Body)
	if err != nil {
		clearJoining()
		return id, err
	}
	clearJoining()
	if ack.Err != "" {
		return id, fmt.Errorf("cluster: join rejected: %s", ack.Err)
	}
	return id, nil
}

// CrashMatcher kills a matcher without any goodbye: its traffic is dropped
// from the instant of the crash, and the cluster relies on failure
// detection and recovery (paper Section IV-E).
func (c *Cluster) CrashMatcher(id core.NodeID) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	m, ok := c.matchers[id]
	if !ok {
		return fmt.Errorf("cluster: unknown matcher %v", id)
	}
	if c.mesh != nil {
		c.mesh.SetDown(m.Addr(), true)
	}
	if c.opts.Chaos != nil {
		c.opts.Chaos.Kill(m.Addr())
	}
	m.Stop()
	c.stopped[id] = true
	if c.opts.TCP {
		c.matcherTr[id].Close()
	}
	return nil
}

// RestartMatcher boots a crashed matcher again under the same identity with
// a bumped generation. On a durable cluster (Options.DataDir) the new
// incarnation recovers its subscription set from its journal before serving;
// on an in-memory cluster it comes back empty and relies on dispatcher
// re-registration.
func (c *Cluster) RestartMatcher(id core.NodeID) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	m, ok := c.matchers[id]
	if !ok {
		return fmt.Errorf("cluster: unknown matcher %v", id)
	}
	if !c.stopped[id] {
		return fmt.Errorf("cluster: matcher %v is not crashed", id)
	}
	if c.mesh != nil {
		c.mesh.Unbind(m.Addr())
		c.mesh.SetDown(m.Addr(), false)
	}
	if c.opts.Chaos != nil {
		c.opts.Chaos.Restart(m.Addr())
	}
	if adm := c.admins[id]; adm != nil {
		adm.Close()
		delete(c.admins, id)
	}
	c.generations[id] = c.generation(id) + 1
	m2, err := c.startMatcher(id)
	if err != nil {
		return fmt.Errorf("cluster: restart matcher %v: %w", id, err)
	}
	c.matchers[id] = m2
	delete(c.stopped, id)
	return nil
}

// CrashDispatcher kills a dispatcher (by index) without any goodbye —
// in-flight client publishes fail and its pending-forward table freezes
// where it was.
func (c *Cluster) CrashDispatcher(idx int) error {
	if idx < 0 || idx >= len(c.dispatchers) {
		return fmt.Errorf("cluster: dispatcher index %d out of range", idx)
	}
	if c.stoppedDisp[idx] {
		return fmt.Errorf("cluster: dispatcher %d already crashed", idx)
	}
	d := c.dispatchers[idx]
	if c.mesh != nil {
		c.mesh.SetDown(d.Addr(), true)
	}
	if c.opts.Chaos != nil {
		c.opts.Chaos.Kill(d.Addr())
	}
	d.Stop()
	c.stoppedDisp[idx] = true
	if c.opts.TCP {
		c.dispTr[d.ID()].Close()
	}
	return nil
}

// RestartDispatcher boots a crashed dispatcher again under the same identity
// with a bumped generation. On a durable cluster it recovers its
// subscription registry and unacked pending publications from its journal
// and retransmits the latter once a segment table is re-adopted.
func (c *Cluster) RestartDispatcher(idx int) error {
	if idx < 0 || idx >= len(c.dispatchers) {
		return fmt.Errorf("cluster: dispatcher index %d out of range", idx)
	}
	if !c.stoppedDisp[idx] {
		return fmt.Errorf("cluster: dispatcher %d is not crashed", idx)
	}
	d := c.dispatchers[idx]
	id := d.ID()
	if c.mesh != nil {
		c.mesh.Unbind(d.Addr())
		c.mesh.SetDown(d.Addr(), false)
	}
	if c.opts.Chaos != nil {
		c.opts.Chaos.Restart(d.Addr())
	}
	if adm := c.admins[id]; adm != nil {
		adm.Close()
		delete(c.admins, id)
	}
	c.generations[id] = c.generation(id) + 1
	d2, err := c.startDispatcher(id)
	if err != nil {
		return fmt.Errorf("cluster: restart dispatcher %d: %w", idx, err)
	}
	c.dispatchers[idx] = d2
	delete(c.stoppedDisp, idx)
	return nil
}

// ThrottleMatcher slows one matcher's service rate by adding d of work per
// matched publication (0 restores full speed) — a CPU-starved or GC-bound
// "slow node" whose stages back up and busy-NACK, unlike a chaos link delay
// which only stretches latency. Returns false for unknown matchers.
func (c *Cluster) ThrottleMatcher(id core.NodeID, d time.Duration) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	m, ok := c.matchers[id]
	if !ok {
		return false
	}
	m.SetServiceThrottle(d)
	return true
}

// MatcherAddr returns the transport address of a started matcher (crashed
// ones included), for addressing chaos scenarios at cluster nodes.
func (c *Cluster) MatcherAddr(id core.NodeID) (string, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	m, ok := c.matchers[id]
	if !ok {
		return "", false
	}
	return m.Addr(), true
}

// IsolateMatcherOutbound cuts (or heals) every outbound link of a matcher
// on the in-process mesh: it still receives traffic but its deliveries,
// acks, reports and gossip responses are lost — a one-way network failure.
// Only available on mesh clusters.
func (c *Cluster) IsolateMatcherOutbound(id core.NodeID, cut bool) error {
	if c.mesh == nil {
		return errors.New("cluster: outbound isolation requires the in-process mesh")
	}
	m, ok := c.matchers[id]
	if !ok {
		return fmt.Errorf("cluster: unknown matcher %v", id)
	}
	for _, d := range c.dispatchers {
		c.mesh.Partition(m.Addr(), d.Addr(), cut)
	}
	for _, other := range c.matchers {
		if other.ID() != id {
			c.mesh.Partition(m.Addr(), other.Addr(), cut)
		}
	}
	return nil
}

// PartitionLink cuts (or heals) the directed mesh link from one address to
// another (mesh clusters only); exposed for fault-injection tests.
func (c *Cluster) PartitionLink(from, to string, cut bool) error {
	if c.mesh == nil {
		return errors.New("cluster: partitions require the in-process mesh")
	}
	c.mesh.Partition(from, to, cut)
	return nil
}

// NewSubscriberID allocates a unique subscriber identity.
func (c *Cluster) NewSubscriberID() core.SubscriberID {
	c.nextSubscriber++
	return c.nextSubscriber
}

// NewClient connects a client to dispatcher dispIdx. When onDeliver is
// non-nil the client uses direct delivery; otherwise indirect (polled).
func (c *Cluster) NewClient(dispIdx int, onDeliver func(*core.Message, []core.SubscriptionID)) (*client.Client, error) {
	if dispIdx < 0 || dispIdx >= len(c.dispatchers) {
		return nil, fmt.Errorf("cluster: dispatcher index %d out of range", dispIdx)
	}
	sub := c.NewSubscriberID()
	label := c.label("client-%d", sub)
	tr, _ := c.newTransport(label)
	cfg := client.Config{
		Transport:      tr,
		DispatcherAddr: c.dispatchers[dispIdx].Addr(),
		Subscriber:     sub,
	}
	if onDeliver != nil {
		cfg.ListenAddr = c.nodeAddr(label)
		cfg.OnDeliver = onDeliver
		if c.opts.Persistent {
			// At-least-once forwarding can redeliver (lost acks, node
			// restarts); the window keeps redeliveries away from the
			// application callback.
			cfg.DedupWindow = 4096
		}
	}
	return client.New(cfg)
}

// NewAckClient connects a publish-only client to dispatcher dispIdx whose
// publishes round-trip (client.Config.AckPublish): the dispatcher explicitly
// admits or rejects each publication, and admission-control rejections
// surface as client.ErrOverloaded.
func (c *Cluster) NewAckClient(dispIdx int) (*client.Client, error) {
	if dispIdx < 0 || dispIdx >= len(c.dispatchers) {
		return nil, fmt.Errorf("cluster: dispatcher index %d out of range", dispIdx)
	}
	sub := c.NewSubscriberID()
	tr, _ := c.newTransport(c.label("client-%d", sub))
	return client.New(client.Config{
		Transport:      tr,
		DispatcherAddr: c.dispatchers[dispIdx].Addr(),
		Subscriber:     sub,
		AckPublish:     true,
	})
}

// Telemetry returns a node's telemetry bundle (nil when the subsystem is
// off or the ID is unknown).
func (c *Cluster) Telemetry(id core.NodeID) *telemetry.Telemetry {
	return c.telemetries[id]
}

// AdminAddr returns the bound admin endpoint of one node (Options.Admin).
func (c *Cluster) AdminAddr(id core.NodeID) (string, bool) {
	adm, ok := c.admins[id]
	if !ok {
		return "", false
	}
	return adm.Addr(), true
}

// AdminAddrs returns every node's bound admin endpoint, keyed by node ID
// (empty unless Options.Admin was set).
func (c *Cluster) AdminAddrs() map[core.NodeID]string {
	out := make(map[core.NodeID]string, len(c.admins))
	for id, adm := range c.admins {
		out[id] = adm.Addr()
	}
	return out
}

// Table returns the current authoritative table as seen by dispatcher 0.
func (c *Cluster) Table() *partition.Table { return c.dispatchers[0].Table() }

// WaitForTable blocks until every matcher and dispatcher has adopted a
// table with at least the given version (or the timeout elapses).
func (c *Cluster) WaitForTable(version uint64, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		ready := true
		for _, d := range c.dispatchers {
			if t := d.Table(); t == nil || t.Version() < version {
				ready = false
			}
		}
		c.mu.Lock()
		ms := make([]*matcher.Matcher, 0, len(c.order))
		for _, id := range c.order {
			if m := c.matchers[id]; m != nil && !c.stopped[id] {
				ms = append(ms, m)
			}
		}
		c.mu.Unlock()
		for _, m := range ms {
			if t := m.Table(); t == nil || t.Version() < version {
				ready = false
			}
		}
		if ready {
			return nil
		}
		time.Sleep(10 * time.Millisecond)
	}
	return errors.New("cluster: table propagation timed out")
}

// CheckConvergence audits post-fault agreement across the surviving nodes:
// every live dispatcher and matcher must (a) agree on one segment-table
// version, (b) consider every other survivor alive, and (c) consider every
// crashed matcher not alive. A nil return means the control plane has
// re-converged after faults healed.
func (c *Cluster) CheckConvergence() error {
	type node struct {
		name string
		gsp  *gossip.Gossiper
		tab  *partition.Table
	}
	c.mu.Lock()
	var live []node
	for i, d := range c.dispatchers {
		if c.stoppedDisp[i] {
			continue
		}
		live = append(live, node{fmt.Sprintf("dispatcher-%d", d.ID()), d.Gossiper(), d.Table()})
	}
	for _, id := range c.order {
		if c.stopped[id] {
			continue
		}
		m := c.matchers[id]
		live = append(live, node{fmt.Sprintf("matcher-%d", id), m.Gossiper(), m.Table()})
	}
	if len(live) == 0 {
		c.mu.Unlock()
		return errors.New("cluster: no survivors to converge")
	}
	var version uint64
	for i, n := range live {
		if n.tab == nil {
			c.mu.Unlock()
			return fmt.Errorf("cluster: %s has no segment table", n.name)
		}
		if i == 0 {
			version = n.tab.Version()
		} else if v := n.tab.Version(); v != version {
			c.mu.Unlock()
			return fmt.Errorf("cluster: segment tables diverge: %s at v%d, %s at v%d",
				live[0].name, version, n.name, v)
		}
	}
	liveIDs := make(map[core.NodeID]string)
	deadIDs := make(map[core.NodeID]string)
	for i, d := range c.dispatchers {
		if c.stoppedDisp[i] {
			deadIDs[d.ID()] = fmt.Sprintf("dispatcher-%d", d.ID())
		} else {
			liveIDs[d.ID()] = fmt.Sprintf("dispatcher-%d", d.ID())
		}
	}
	for _, id := range c.order {
		if !c.stopped[id] {
			liveIDs[id] = fmt.Sprintf("matcher-%d", id)
		}
	}
	for id := range c.stopped {
		deadIDs[id] = fmt.Sprintf("matcher-%d", id)
	}
	c.mu.Unlock()
	for _, n := range live {
		for id, name := range liveIDs {
			if !n.gsp.Alive(id) {
				return fmt.Errorf("cluster: %s believes survivor %s dead", n.name, name)
			}
		}
		for id, name := range deadIDs {
			if n.gsp.Alive(id) {
				return fmt.Errorf("cluster: %s believes crashed %s alive", n.name, name)
			}
		}
	}
	return nil
}

// WaitConverged polls CheckConvergence until it passes or the timeout
// elapses (returning the last failure).
func (c *Cluster) WaitConverged(timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	var err error
	for {
		if err = c.CheckConvergence(); err == nil {
			return nil
		}
		if !time.Now().Before(deadline) {
			return fmt.Errorf("cluster: convergence timed out: %w", err)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// Close stops every node.
func (c *Cluster) Close() {
	c.stopElastic()
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, adm := range c.admins {
		adm.Close()
	}
	for _, b := range c.borders {
		b.Stop()
	}
	for _, e := range c.edges {
		e.Stop()
	}
	for _, d := range c.dispatchers {
		d.Stop()
	}
	for _, m := range c.matchers {
		m.Stop()
	}
	if c.mesh != nil && c.meshOwned {
		c.mesh.Close()
	}
	if c.opts.TCP {
		for _, tr := range c.matcherTr {
			tr.Close()
		}
		for _, tr := range c.dispTr {
			tr.Close()
		}
		for _, tr := range c.edgeTr {
			tr.Close()
		}
		for _, tr := range c.borderTr {
			tr.Close()
		}
	}
}
