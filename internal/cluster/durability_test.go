package cluster

import (
	"fmt"
	"os"
	"strconv"
	"testing"
	"time"

	"bluedove/internal/chaos"
	"bluedove/internal/core"
	"bluedove/internal/store"
)

// durableOptions is fastOptions plus a journal under dir, with failure
// detection slowed way down so a crash/restart cycle completes without the
// segment table changing — the restarted node must come back from its
// journal, not from recovery reassignment.
func durableOptions(n int, dir string) Options {
	opts := fastOptions(n)
	opts.Persistent = true
	opts.RetryInterval = 100 * time.Millisecond
	opts.DataDir = dir
	opts.Fsync = store.FsyncAlways
	opts.FailAfter = 30 * time.Second
	opts.RecoveryDelay = 30 * time.Second
	return opts
}

// victimPoint builds a publication point owned by the victim matcher on
// every dimension: nothing can match it while the victim is down, and no
// other matcher can ack it on the victim's behalf.
func victimPoint(t *testing.T, c *Cluster, victim core.NodeID) []float64 {
	t.Helper()
	tab := c.Table()
	attrs := make([]float64, 4)
	for d := 0; d < 4; d++ {
		found := false
		for _, v := range []float64{125, 375, 625, 875} {
			probe := []float64{500, 500, 500, 500}
			probe[d] = v
			for _, cand := range tab.CandidatesFor(core.NewMessage(probe, nil)) {
				if cand.Dim == d && cand.Node == victim {
					attrs[d], found = v, true
				}
			}
			if found {
				break
			}
		}
		if !found {
			t.Fatalf("victim %v owns no probed segment on dim %d", victim, d)
		}
	}
	return attrs
}

// TestDurableMatcherRestartKeepsSubscriptions: the straight-line durability
// check — a matcher with a data dir is crashed and restarted, and its
// subscription set must come back from its journal alone (the segment table
// never changes, so no dispatcher re-registration happens).
func TestDurableMatcherRestartKeepsSubscriptions(t *testing.T) {
	c, err := Start(durableOptions(4, t.TempDir()))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.WaitForTable(1, 5*time.Second); err != nil {
		t.Fatal(err)
	}
	subCl, err := c.NewClient(0, func(*core.Message, []core.SubscriptionID) {})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := subCl.Subscribe(fullSpace()); err != nil {
		t.Fatal(err)
	}
	victim := c.MatcherIDs()[0]
	waitFor(t, 5*time.Second, func() bool { return c.Matcher(victim).SubsOnDim(0) == 1 })

	if err := c.CrashMatcher(victim); err != nil {
		t.Fatal(err)
	}
	if err := c.RestartMatcher(victim); err != nil {
		t.Fatal(err)
	}
	m := c.Matcher(victim)
	if got := m.SubsOnDim(0); got != 1 {
		t.Fatalf("restarted matcher rebuilt %d subscriptions, want 1", got)
	}
	if m.Journal() == nil || m.Journal().Recovery().Records == 0 {
		t.Fatal("restart replayed no journal records — the subscription came from somewhere else")
	}
}

// TestChaosRestartWithRecoveryZeroAckedLoss is the durability headline: a
// matcher is killed mid-burst, and the burst deliberately includes orphan
// publications owned by that matcher on every dimension — they cannot be
// delivered or acked until it returns. Then the publisher's dispatcher is
// killed too, with those orphans sitting unacked in its pending table. Both
// nodes restart from their data dirs; the dispatcher must recover the
// orphans from its journal and retransmit, and the matcher must recover its
// subscription set from its journal (the table never changes, so nothing
// re-registers it). Every acked publication must still be delivered.
// The seed is randomized per run and printed; set CHAOS_SEED to replay.
func TestChaosRestartWithRecoveryZeroAckedLoss(t *testing.T) {
	seed := time.Now().UnixNano()
	if s := os.Getenv("CHAOS_SEED"); s != "" {
		v, err := strconv.ParseInt(s, 10, 64)
		if err != nil {
			t.Fatalf("bad CHAOS_SEED %q: %v", s, err)
		}
		seed = v
	}
	t.Logf("chaos seed %d (re-run with CHAOS_SEED=%d)", seed, seed)

	ctrl := chaos.NewController(seed)
	defer ctrl.Close()
	opts := durableOptions(4, t.TempDir())
	opts.Chaos = ctrl
	c, err := Start(opts)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.WaitForTable(1, 5*time.Second); err != nil {
		t.Fatal(err)
	}

	aud := chaos.NewAuditor()
	aud.Subscribed(1, fullSpace())
	subCl, err := c.NewClient(0, func(m *core.Message, _ []core.SubscriptionID) {
		aud.Delivered(1, m)
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := subCl.Subscribe(fullSpace()); err != nil {
		t.Fatal(err)
	}
	time.Sleep(300 * time.Millisecond) // let the stores land (and get journaled)

	victim := c.MatcherIDs()[0]
	orphan := victimPoint(t, c, victim)
	pubCl, err := c.NewClient(1, nil)
	if err != nil {
		t.Fatal(err)
	}

	killAt := time.Time{}
	run := chaos.NewScenario().
		At(100 * time.Millisecond).Do(func() {
		killAt = time.Now()
		if err := c.CrashMatcher(victim); err != nil {
			t.Errorf("crash matcher %v: %v", victim, err)
		}
	}).Run(ctrl)
	defer run.Stop()

	const burst = 150
	for i := 0; i < burst; i++ {
		token := fmt.Sprintf("dur-%03d", i)
		attrs := []float64{float64((i * 37) % 1000), float64((i * 59) % 1000),
			float64((i * 83) % 1000), float64((i * 101) % 1000)}
		if i%10 == 5 {
			attrs = orphan // only the crashed victim can match these
		}
		if err := pubCl.Publish(attrs, []byte(token)); err != nil {
			t.Fatalf("publish %d rejected: %v", i, err)
		}
		aud.Published(token, attrs) // acked: the invariant now covers it
		time.Sleep(time.Millisecond)
	}
	run.Wait()
	if killAt.IsZero() {
		t.Fatal("scenario never killed the victim")
	}

	// Let the dispatcher drain its ingest queue (everything accepted is now
	// journaled) and deliver what the surviving matchers can match; the
	// orphans stay pending against the dead victim.
	pubDisp := c.Dispatchers()[1]
	waitFor(t, 5*time.Second, func() bool {
		n := pubDisp.InflightLen()
		return n > 0 && n <= burst/10+1
	})
	pending := pubDisp.InflightLen()

	// Now lose the publisher's dispatcher with those orphans unacked.
	if err := c.CrashDispatcher(1); err != nil {
		t.Fatal(err)
	}
	// Downtime publishes are refused at the client, so the at-least-once
	// invariant never covers them.
	if err := pubCl.Publish(orphan, []byte("while-down")); err == nil {
		t.Fatal("publish to a crashed dispatcher unexpectedly accepted")
	}
	time.Sleep(200 * time.Millisecond)

	if err := c.RestartMatcher(victim); err != nil {
		t.Fatal(err)
	}
	if err := c.RestartDispatcher(1); err != nil {
		t.Fatal(err)
	}

	// Both recoveries must actually have replayed state.
	if rec := c.Matcher(victim).Journal().Recovery(); rec.Records == 0 && !rec.SnapshotLoaded {
		t.Fatal("restarted matcher recovered nothing from its journal")
	}
	d2 := c.Dispatchers()[1]
	if got := d2.InflightLen(); got < pending {
		t.Fatalf("restarted dispatcher recovered %d pending publications, want >= %d", got, pending)
	}

	if err := aud.WaitComplete(20 * time.Second); err != nil {
		t.Fatalf("seed %d: %v", seed, err)
	}
	if got, want := aud.Expected(), burst; got != want {
		t.Fatalf("auditor expected %d deliveries, want %d", got, want)
	}
	gap, resumedAt := aud.FirstDeliveryGap(killAt)
	t.Logf("seed %d: %d/%d acked publications delivered through a matcher+dispatcher "+
		"crash/restart (%d recovered pending, %d duplicate deliveries); longest stall %v (resumed %v after kill)",
		seed, burst, burst, pending, aud.Duplicates(), gap, resumedAt.Sub(killAt))

	if err := c.WaitConverged(10 * time.Second); err != nil {
		t.Fatal(err)
	}
}
