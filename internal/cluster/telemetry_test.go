package cluster

import (
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"bluedove/internal/core"
	"bluedove/internal/telemetry"
)

// httpGet fetches one admin endpoint, failing the test on any error.
func httpGet(t *testing.T, addr, path string) []byte {
	t.Helper()
	resp, err := http.Get("http://" + addr + path)
	if err != nil {
		t.Fatalf("GET %s%s: %v", addr, path, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("GET %s%s: status %d", addr, path, resp.StatusCode)
	}
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("GET %s%s: %v", addr, path, err)
	}
	return b
}

// TestTelemetryEndToEndTCP is the observability acceptance test: on a real
// 3-node TCP cluster (2 matchers + 1 dispatcher) with full sampling, a
// published message must yield a complete hop-level trace visible at
// /debug/traces, and every node's /metrics scrape must be well-formed
// Prometheus text exposing the paper's load model series (λ, μ, queue
// depth) and the latency summaries.
func TestTelemetryEndToEndTCP(t *testing.T) {
	opts := fastOptions(2)
	opts.Dispatchers = 1
	opts.TCP = true
	opts.TraceSampleRate = 1
	opts.Admin = true
	c, err := Start(opts)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.WaitForTable(1, 5*time.Second); err != nil {
		t.Fatal(err)
	}

	rec := newRecorder()
	subCl, err := c.NewClient(0, rec.onDeliver)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := subCl.Subscribe([]core.Range{
		{Low: 0, High: 1000}, {Low: 0, High: 1000}, {Low: 0, High: 1000}, {Low: 0, High: 1000},
	}); err != nil {
		t.Fatal(err)
	}
	pubCl, err := c.NewClient(0, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Publish until a delivery lands (the subscription must reach a matcher
	// first), then keep publishing until the trace round-trips.
	waitFor(t, 10*time.Second, func() bool {
		if err := pubCl.Publish([]float64{500, 500, 500, 500}, []byte("traced")); err != nil {
			t.Fatal(err)
		}
		return rec.count() > 0
	})

	dispID := c.Dispatchers()[0].ID()
	dispAdmin, ok := c.AdminAddr(dispID)
	if !ok {
		t.Fatal("dispatcher has no admin endpoint")
	}

	// A complete trace (publish → ingest → forward → dequeue → match →
	// deliver, plus the ack hop) must become visible on the dispatcher.
	type traceJSON struct {
		Traces []struct {
			Msg      string           `json:"msg"`
			Complete bool             `json:"complete"`
			Hops     map[string]int64 `json:"hops_ns"`
		} `json:"traces"`
	}
	var complete *struct {
		Msg      string           `json:"msg"`
		Complete bool             `json:"complete"`
		Hops     map[string]int64 `json:"hops_ns"`
	}
	waitFor(t, 10*time.Second, func() bool {
		var tj traceJSON
		if err := json.Unmarshal(httpGet(t, dispAdmin, "/debug/traces?n=64"), &tj); err != nil {
			t.Fatalf("/debug/traces: %v", err)
		}
		for i := range tj.Traces {
			if tj.Traces[i].Complete {
				complete = &tj.Traces[i]
				return true
			}
		}
		return false
	})
	// HopFederate only appears on cross-cluster traces, so a single-cluster
	// round trip stamps exactly the hops below it.
	if len(complete.Hops) != int(core.HopFederate) {
		t.Fatalf("trace hop map = %v, want %d entries", complete.Hops, int(core.HopFederate))
	}
	// Every hop through delivery must be stamped, in causal order.
	order := []string{"publish", "ingest", "forward", "dequeue", "match", "deliver"}
	prev := int64(0)
	for _, h := range order {
		ts, ok := complete.Hops[h]
		if !ok || ts == 0 {
			t.Fatalf("hop %s missing from complete trace: %v", h, complete.Hops)
		}
		if ts < prev {
			t.Fatalf("hop %s at %d precedes previous hop at %d", h, ts, prev)
		}
		prev = ts
	}
	if complete.Hops["ack"] == 0 {
		t.Fatalf("ack hop not stamped on dispatcher-side trace: %v", complete.Hops)
	}

	// Every node's scrape must be structurally valid and expose its role's
	// required series.
	addrs := c.AdminAddrs()
	if len(addrs) != 3 {
		t.Fatalf("admin endpoints = %d, want 3", len(addrs))
	}
	dispRequired := []string{
		"bluedove_node_info",
		"bluedove_dispatcher_published",
		"bluedove_dispatcher_forwarded",
		"bluedove_dispatcher_forward_latency_seconds",
		"bluedove_dispatcher_deliver_latency_seconds",
		"bluedove_dispatcher_journal_errors",
		"bluedove_transport_frames_sent",
		"bluedove_gossip_bytes",
	}
	matchRequired := []string{
		"bluedove_node_info",
		"bluedove_matcher_processed",
		"bluedove_matcher_delivered",
		"bluedove_matcher_stage_arrival_rate",     // λ
		"bluedove_matcher_stage_service_capacity", // μ
		"bluedove_matcher_stage_queue_depth",
		"bluedove_matcher_match_latency_seconds",
		"bluedove_matcher_journal_errors",
		"bluedove_transport_frames_sent",
		"bluedove_gossip_bytes",
	}
	for id, addr := range addrs {
		required := matchRequired
		if id == dispID {
			required = dispRequired
		}
		scrape := httpGet(t, addr, "/metrics")
		if err := telemetry.CheckPrometheusText(scrape, required); err != nil {
			t.Fatalf("node %d scrape invalid: %v\n%s", id, err, scrape)
		}
	}

	// The latency summaries must carry quantile samples once traces flowed.
	scrape := string(httpGet(t, dispAdmin, "/metrics"))
	for _, want := range []string{
		`bluedove_dispatcher_deliver_latency_seconds{`,
		`quantile="0.99"`,
	} {
		if !strings.Contains(scrape, want) {
			t.Fatalf("dispatcher scrape missing %q:\n%s", want, scrape)
		}
	}
}

// TestTelemetryDisabledByDefault pins the zero-config behavior: no bundle,
// no admin endpoints, publications untraced.
func TestTelemetryDisabledByDefault(t *testing.T) {
	c, err := Start(fastOptions(2))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if len(c.AdminAddrs()) != 0 {
		t.Fatal("admin endpoints served without Options.Admin")
	}
	for _, d := range c.Dispatchers() {
		if d.Telemetry() != nil {
			t.Fatalf("dispatcher %d has telemetry without opting in", d.ID())
		}
	}
}
