package cluster

import (
	"testing"
	"time"

	"bluedove/internal/core"
)

// TestValidateClamps table-tests the Options pre-flight: pathological knob
// values (negative or sub-millisecond intervals, negative sizes) must be
// normalized before they can reach a node constructor — PR 4's sub-2ns
// retry ticker showed these slip through otherwise.
func TestValidateClamps(t *testing.T) {
	space := core.UniformSpace(2, 100)
	cases := []struct {
		name  string
		in    Options
		check func(t *testing.T, o Options)
	}{
		{
			name: "sub-millisecond intervals raised to 1ms",
			in: Options{
				Space:           space,
				GossipInterval:  2 * time.Nanosecond,
				ReportInterval:  500 * time.Microsecond,
				RetryInterval:   time.Nanosecond,
				ElasticInterval: 999 * time.Microsecond,
			},
			check: func(t *testing.T, o Options) {
				for name, d := range map[string]time.Duration{
					"GossipInterval":  o.GossipInterval,
					"ReportInterval":  o.ReportInterval,
					"RetryInterval":   o.RetryInterval,
					"ElasticInterval": o.ElasticInterval,
				} {
					if d != time.Millisecond {
						t.Errorf("%s = %v, want 1ms", name, d)
					}
				}
			},
		},
		{
			name: "negative intervals fall back to unset",
			in: Options{
				Space:          space,
				FailAfter:      -time.Second,
				RecoveryDelay:  -1,
				PruneGrace:     -time.Hour,
				RerouteBackoff: -time.Second,
				MessageTTL:     -1,
				ForwardLinger:  -time.Millisecond,
			},
			check: func(t *testing.T, o Options) {
				for name, d := range map[string]time.Duration{
					"FailAfter":      o.FailAfter,
					"RecoveryDelay":  o.RecoveryDelay,
					"PruneGrace":     o.PruneGrace,
					"RerouteBackoff": o.RerouteBackoff,
					"MessageTTL":     o.MessageTTL,
					"ForwardLinger":  o.ForwardLinger,
				} {
					if d != 0 {
						t.Errorf("%s = %v, want 0 (unset)", name, d)
					}
				}
			},
		},
		{
			name: "negative sizes fall back to defaults",
			in: Options{
				Space:             space,
				IndexBuckets:      -4,
				MatcherQueueDepth: -1,
				ForwardBatchCount: -10,
				EdgeBufferBytes:   -1,
				ResumeWindow:      -100,
				AdmissionLimit:    -5,
			},
			check: func(t *testing.T, o Options) {
				for name, n := range map[string]int{
					"IndexBuckets":      o.IndexBuckets,
					"MatcherQueueDepth": o.MatcherQueueDepth,
					"ForwardBatchCount": o.ForwardBatchCount,
					"EdgeBufferBytes":   o.EdgeBufferBytes,
					"ResumeWindow":      o.ResumeWindow,
					"AdmissionLimit":    o.AdmissionLimit,
				} {
					if n != 0 {
						t.Errorf("%s = %d, want 0 (default)", name, n)
					}
				}
			},
		},
		{
			name: "negative disable sentinels preserved",
			in: Options{
				Space:            space,
				RetryBudget:      -1,
				BreakerThreshold: -1,
			},
			check: func(t *testing.T, o Options) {
				if o.RetryBudget != -1 || o.BreakerThreshold != -1 {
					t.Errorf("RetryBudget=%d BreakerThreshold=%d, want -1/-1 (disable sentinel)",
						o.RetryBudget, o.BreakerThreshold)
				}
			},
		},
		{
			name: "sane values untouched",
			in: Options{
				Space:          space,
				GossipInterval: 50 * time.Millisecond,
				AdmissionLimit: 128,
			},
			check: func(t *testing.T, o Options) {
				if o.GossipInterval != 50*time.Millisecond || o.AdmissionLimit != 128 {
					t.Errorf("sane values mutated: %+v", o)
				}
			},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			o := tc.in
			if err := o.Validate(); err != nil {
				t.Fatalf("Validate: %v", err)
			}
			tc.check(t, o)
		})
	}
}

// TestValidateRequiresSpace: the one hard rejection.
func TestValidateRequiresSpace(t *testing.T) {
	var o Options
	if err := o.Validate(); err == nil {
		t.Fatal("Validate accepted a nil Space")
	}
}
