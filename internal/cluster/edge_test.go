package cluster

import (
	"fmt"
	"math/rand"
	"os"
	"strconv"
	"sync"
	"testing"
	"time"

	"bluedove/internal/chaos"
	"bluedove/internal/client"
	"bluedove/internal/core"
)

// edgeOptions is fastOptions plus one edge server.
func edgeOptions(matchers int) Options {
	opts := fastOptions(matchers)
	opts.Edges = 1
	return opts
}

// TestEdgeEquivalence: a session behind the edge tier and a direct
// dispatcher client with the same predicate must see exactly the same
// publications — the edge's aggregated subscription plus local re-matching
// is transparent.
func TestEdgeEquivalence(t *testing.T) {
	c, err := Start(edgeOptions(4))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.WaitForTable(1, 5*time.Second); err != nil {
		t.Fatal(err)
	}

	preds := []core.Range{
		{Low: 100, High: 400}, {Low: 0, High: 1000}, {Low: 0, High: 1000}, {Low: 0, High: 1000},
	}
	var mu sync.Mutex
	direct := make(map[core.MessageID]bool)
	viaEdge := make(map[core.MessageID]bool)

	directCl, err := c.NewClient(0, func(m *core.Message, _ []core.SubscriptionID) {
		mu.Lock()
		direct[m.ID] = true
		mu.Unlock()
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := directCl.Subscribe(preds); err != nil {
		t.Fatal(err)
	}
	sess, err := c.NewEdgeSession(0, func(m *core.Message, _ []core.SubscriptionID) {
		mu.Lock()
		viaEdge[m.ID] = true
		mu.Unlock()
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Subscribe(preds); err != nil {
		t.Fatal(err)
	}
	time.Sleep(300 * time.Millisecond) // let stores land

	pubCl, err := c.NewClient(1, nil)
	if err != nil {
		t.Fatal(err)
	}
	const pubs = 40
	for i := 0; i < pubs; i++ {
		attrs := []float64{float64((i * 53) % 1000), float64((i * 71) % 1000),
			float64((i * 97) % 1000), float64((i * 13) % 1000)}
		if err := pubCl.Publish(attrs, []byte(fmt.Sprintf("eq-%02d", i))); err != nil {
			t.Fatal(err)
		}
	}
	// Both views must converge to the same non-empty set.
	waitFor(t, 10*time.Second, func() bool {
		mu.Lock()
		defer mu.Unlock()
		if len(direct) == 0 || len(direct) != len(viaEdge) {
			return false
		}
		for id := range direct {
			if !viaEdge[id] {
				return false
			}
		}
		return true
	})
	time.Sleep(200 * time.Millisecond) // catch a straggling divergence
	mu.Lock()
	defer mu.Unlock()
	if len(direct) == 0 {
		t.Fatal("no matching publications delivered")
	}
	if len(direct) != len(viaEdge) {
		t.Fatalf("direct saw %d publications, edge session saw %d", len(direct), len(viaEdge))
	}
	for id := range direct {
		if !viaEdge[id] {
			t.Fatalf("publication %d reached the direct client but not the edge session", id)
		}
	}
	for id := range viaEdge {
		if !direct[id] {
			t.Fatalf("publication %d reached the edge session but not the direct client", id)
		}
	}
}

// TestEdgeResumeWithinWindow: kill a session mid-stream, keep publishing
// less than ResumeWindow, resume with the token — the application misses
// nothing and sees nothing twice.
func TestEdgeResumeWithinWindow(t *testing.T) {
	opts := edgeOptions(3)
	opts.ResumeWindow = 256
	c, err := Start(opts)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.WaitForTable(1, 5*time.Second); err != nil {
		t.Fatal(err)
	}

	var mu sync.Mutex
	seen := make(map[string]int)
	onDeliver := func(m *core.Message, _ []core.SubscriptionID) {
		mu.Lock()
		seen[string(m.Payload)]++
		mu.Unlock()
	}
	count := func() int {
		mu.Lock()
		defer mu.Unlock()
		return len(seen)
	}
	sess, err := c.NewEdgeSession(0, onDeliver)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Subscribe(fullSpace()); err != nil {
		t.Fatal(err)
	}
	time.Sleep(300 * time.Millisecond)

	pubCl, err := c.NewClient(0, nil)
	if err != nil {
		t.Fatal(err)
	}
	publish := func(lo, hi int) {
		for i := lo; i < hi; i++ {
			attrs := []float64{float64((i * 37) % 1000), float64((i * 59) % 1000),
				float64((i * 83) % 1000), float64((i * 101) % 1000)}
			if err := pubCl.Publish(attrs, []byte(fmt.Sprintf("res-%03d", i))); err != nil {
				t.Fatal(err)
			}
		}
	}
	publish(0, 30)
	waitFor(t, 10*time.Second, func() bool { return count() == 30 })
	sess.Ack()

	// Mid-stream kill: the edge detaches the session; publications keep
	// flowing into its resume ring.
	edge := c.Edges()[0]
	waitFor(t, 5*time.Second, func() bool { return edge.Detach(sess.Token()) })
	publish(30, 80) // 50 missed — well within the 256-entry window
	waitFor(t, 10*time.Second, func() bool { return edge.FanIn() >= 80 })

	resumed, err := c.ResumeEdgeSession(sess, 0, 0, onDeliver)
	if err != nil {
		t.Fatal(err)
	}
	if resumed.ReplayLost() != 0 {
		t.Fatalf("resume reported %d lost, want 0 within the window", resumed.ReplayLost())
	}
	waitFor(t, 10*time.Second, func() bool { return count() == 80 })
	time.Sleep(200 * time.Millisecond)
	mu.Lock()
	defer mu.Unlock()
	for i := 0; i < 80; i++ {
		token := fmt.Sprintf("res-%03d", i)
		if n := seen[token]; n != 1 {
			t.Fatalf("publication %s delivered %d times across the resume, want exactly 1", token, n)
		}
	}
}

// TestEdgeReconnectStormZeroAckedLoss is the chaos-audited reconnect storm
// the CI edge-soak job replays: many sessions detach and resume repeatedly
// while a publication burst flows, under the backpressure policy. Every
// session must end with every matching publication delivered at least once
// and the application seeing no duplicates (the carried dedup window absorbs
// replay overlap). The seed is printed; set CHAOS_SEED to replay a failure.
func TestEdgeReconnectStormZeroAckedLoss(t *testing.T) {
	seed := time.Now().UnixNano()
	if s := os.Getenv("CHAOS_SEED"); s != "" {
		v, err := strconv.ParseInt(s, 10, 64)
		if err != nil {
			t.Fatalf("bad CHAOS_SEED %q: %v", s, err)
		}
		seed = v
	}
	t.Logf("chaos seed %d (re-run with CHAOS_SEED=%d)", seed, seed)
	rng := rand.New(rand.NewSource(seed))

	opts := edgeOptions(3)
	opts.EdgePolicy = 0 // backpressure
	opts.ResumeWindow = 4096
	c, err := Start(opts)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.WaitForTable(1, 5*time.Second); err != nil {
		t.Fatal(err)
	}

	const sessions = 8
	aud := chaos.NewAuditor()
	current := make([]*client.EdgeSession, sessions)
	for i := 0; i < sessions; i++ {
		i := i
		aud.Subscribed(i, fullSpace())
		s, err := c.NewEdgeSession(0, func(m *core.Message, _ []core.SubscriptionID) {
			aud.Delivered(i, m)
		})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := s.Subscribe(fullSpace()); err != nil {
			t.Fatal(err)
		}
		current[i] = s
	}
	// resume re-dials a stormed session, carrying its token and dedup
	// window into the replacement (driven only from this goroutine).
	resume := func(i int) error {
		next, err := c.ResumeEdgeSession(current[i], 0, 0, func(m *core.Message, _ []core.SubscriptionID) {
			aud.Delivered(i, m)
		})
		if err != nil {
			return err
		}
		current[i] = next
		return nil
	}
	time.Sleep(300 * time.Millisecond)

	pubCl, err := c.NewClient(0, nil)
	if err != nil {
		t.Fatal(err)
	}
	edge := c.Edges()[0]
	const burst = 120
	for i := 0; i < burst; i++ {
		token := fmt.Sprintf("storm-%03d", i)
		attrs := []float64{float64((i * 37) % 1000), float64((i * 59) % 1000),
			float64((i * 83) % 1000), float64((i * 101) % 1000)}
		if err := pubCl.Publish(attrs, []byte(token)); err != nil {
			t.Fatalf("publish %d rejected: %v", i, err)
		}
		aud.Published(token, attrs)
		// Reconnect storm: every few publications a random session's
		// connection dies and resumes shortly after.
		if i%4 == 1 {
			victim := rng.Intn(sessions)
			edge.Detach(current[victim].Token())
			if err := resume(victim); err != nil {
				t.Fatalf("seed %d: resume session %d: %v", seed, victim, err)
			}
		}
		time.Sleep(time.Millisecond)
	}

	if err := aud.WaitComplete(30 * time.Second); err != nil {
		t.Fatalf("seed %d: acked loss through reconnect storm: %v", seed, err)
	}
	if aud.Duplicates() != 0 {
		t.Fatalf("seed %d: %d duplicate application deliveries — dedup window failed to absorb replay",
			seed, aud.Duplicates())
	}
	if edge.Resumes() == 0 {
		t.Fatalf("seed %d: storm resumed no sessions", seed)
	}
	var suppressed int64
	for i := 0; i < sessions; i++ {
		suppressed += current[i].SuppressedDuplicates()
	}
	t.Logf("seed %d: %d publications x %d sessions, %d resumes, %d replay duplicates suppressed",
		seed, burst, sessions, edge.Resumes(), suppressed)
}
