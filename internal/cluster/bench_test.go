package cluster

import (
	"sync/atomic"
	"testing"
	"time"

	"bluedove/internal/core"
	"bluedove/internal/workload"
)

// BenchmarkEndToEndPublish measures the real runtime (not the simulator):
// publish → dispatch → match → direct delivery across an in-process mesh.
func BenchmarkEndToEndPublish(b *testing.B) {
	opts := fastOptions(4)
	c, err := Start(opts)
	if err != nil {
		b.Fatal(err)
	}
	defer c.Close()
	if err := c.WaitForTable(1, 5*time.Second); err != nil {
		b.Fatal(err)
	}
	var delivered atomic.Int64
	sub, err := c.NewClient(0, func(*core.Message, []core.SubscriptionID) {
		delivered.Add(1)
	})
	if err != nil {
		b.Fatal(err)
	}
	gen := workload.New(workload.Default(opts.Space))
	for i := 0; i < 500; i++ {
		s := gen.Subscription()
		if _, err := sub.Subscribe(s.Predicates); err != nil {
			b.Fatal(err)
		}
	}
	time.Sleep(300 * time.Millisecond)
	pub, err := c.NewClient(1, nil)
	if err != nil {
		b.Fatal(err)
	}
	msgs := gen.Messages(1024)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m := msgs[i%len(msgs)]
		if err := pub.Publish(m.Attrs, nil); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	// Drain so the delivery rate is meaningful.
	deadline := time.Now().Add(10 * time.Second)
	var last int64 = -1
	for time.Now().Before(deadline) {
		cur := delivered.Load()
		if cur == last {
			break
		}
		last = cur
		time.Sleep(50 * time.Millisecond)
	}
	b.ReportMetric(float64(delivered.Load())/float64(b.N), "deliveries/publish")
}
