package cluster

import (
	"sort"
	"sync"
	"testing"
	"time"

	"bluedove/internal/core"
	"bluedove/internal/placement"
)

// fastOptions returns cluster options with sub-second control loops so
// integration tests finish quickly.
func fastOptions(matchers int) Options {
	return Options{
		Space:          core.UniformSpace(4, 1000),
		Matchers:       matchers,
		Dispatchers:    2,
		GossipInterval: 50 * time.Millisecond,
		FailAfter:      500 * time.Millisecond,
		ReportInterval: 50 * time.Millisecond,
		RecoveryDelay:  200 * time.Millisecond,
		PruneGrace:     300 * time.Millisecond,
	}
}

// deliverRecorder collects direct deliveries.
type deliverRecorder struct {
	mu   sync.Mutex
	msgs map[core.MessageID][]core.SubscriptionID
}

func newRecorder() *deliverRecorder {
	return &deliverRecorder{msgs: make(map[core.MessageID][]core.SubscriptionID)}
}

func (r *deliverRecorder) onDeliver(m *core.Message, ids []core.SubscriptionID) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.msgs[m.ID] = append(r.msgs[m.ID], ids...)
}

func (r *deliverRecorder) count() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.msgs)
}

func (r *deliverRecorder) totalSubIDs() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	n := 0
	for _, ids := range r.msgs {
		n += len(ids)
	}
	return n
}

func waitFor(t *testing.T, d time.Duration, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatal("condition not reached in time")
}

func TestEndToEndDirectDelivery(t *testing.T) {
	c, err := Start(fastOptions(4))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.WaitForTable(1, 5*time.Second); err != nil {
		t.Fatal(err)
	}

	rec := newRecorder()
	subCl, err := c.NewClient(0, rec.onDeliver)
	if err != nil {
		t.Fatal(err)
	}
	subID, err := subCl.Subscribe([]core.Range{
		{Low: 100, High: 400}, {Low: 0, High: 1000}, {Low: 0, High: 1000}, {Low: 0, High: 1000},
	})
	if err != nil {
		t.Fatal(err)
	}
	if subID == 0 {
		t.Fatal("zero subscription ID")
	}
	time.Sleep(200 * time.Millisecond) // let stores land

	pubCl, err := c.NewClient(1, nil)
	if err != nil {
		t.Fatal(err)
	}
	// One matching, one non-matching publication.
	if err := pubCl.Publish([]float64{250, 500, 500, 500}, []byte("hit")); err != nil {
		t.Fatal(err)
	}
	if err := pubCl.Publish([]float64{700, 500, 500, 500}, []byte("miss")); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 5*time.Second, func() bool { return rec.count() >= 1 })
	time.Sleep(200 * time.Millisecond)
	if got := rec.count(); got != 1 {
		t.Fatalf("delivered %d distinct messages, want 1", got)
	}
	if got := rec.totalSubIDs(); got != 1 {
		t.Fatalf("delivered %d subscription matches, want 1", got)
	}
}

func TestEndToEndIndirectPolling(t *testing.T) {
	c, err := Start(fastOptions(3))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.WaitForTable(1, 5*time.Second); err != nil {
		t.Fatal(err)
	}
	cl, err := c.NewClient(0, nil) // indirect: no delivery handler
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Subscribe([]core.Range{
		{Low: 0, High: 1000}, {Low: 0, High: 1000}, {Low: 0, High: 1000}, {Low: 0, High: 1000},
	}); err != nil {
		t.Fatal(err)
	}
	time.Sleep(200 * time.Millisecond)
	for i := 0; i < 5; i++ {
		if err := cl.Publish([]float64{float64(i * 100), 1, 2, 3}, nil); err != nil {
			t.Fatal(err)
		}
	}
	var got int
	waitFor(t, 5*time.Second, func() bool {
		ds, err := cl.Poll(10)
		if err != nil {
			t.Fatal(err)
		}
		got += len(ds)
		return got >= 5
	})
	if got != 5 {
		t.Fatalf("polled %d deliveries, want 5", got)
	}
}

func TestMultiSubscriberFanout(t *testing.T) {
	c, err := Start(fastOptions(4))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.WaitForTable(1, 5*time.Second); err != nil {
		t.Fatal(err)
	}
	const n = 5
	recs := make([]*deliverRecorder, n)
	for i := 0; i < n; i++ {
		recs[i] = newRecorder()
		cl, err := c.NewClient(i%2, recs[i].onDeliver)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := cl.Subscribe([]core.Range{
			{Low: 0, High: 500}, {Low: 0, High: 1000}, {Low: 0, High: 1000}, {Low: 0, High: 1000},
		}); err != nil {
			t.Fatal(err)
		}
	}
	time.Sleep(300 * time.Millisecond)
	pub, err := c.NewClient(0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := pub.Publish([]float64{100, 100, 100, 100}, nil); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 5*time.Second, func() bool {
		for _, r := range recs {
			if r.count() == 0 {
				return false
			}
		}
		return true
	})
}

func TestElasticJoinKeepsMatching(t *testing.T) {
	c, err := Start(fastOptions(3))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.WaitForTable(1, 5*time.Second); err != nil {
		t.Fatal(err)
	}
	rec := newRecorder()
	cl, err := c.NewClient(0, rec.onDeliver)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Subscribe([]core.Range{
		{Low: 0, High: 1000}, {Low: 0, High: 1000}, {Low: 0, High: 1000}, {Low: 0, High: 1000},
	}); err != nil {
		t.Fatal(err)
	}
	time.Sleep(200 * time.Millisecond)

	id, err := c.AddMatcher()
	if err != nil {
		t.Fatal(err)
	}
	if err := c.WaitForTable(2, 5*time.Second); err != nil {
		t.Fatal(err)
	}
	tab := c.Table()
	if tab.N() != 4 || !tab.HasMatcher(id) {
		t.Fatalf("table after join: %v", tab)
	}
	// The new matcher must hold transferred subscriptions on some dimension
	// (the wide subscription overlaps every segment).
	nm := c.Matcher(id)
	waitFor(t, 5*time.Second, func() bool {
		total := 0
		for dim := 0; dim < 4; dim++ {
			total += nm.SubsOnDim(dim)
		}
		return total >= 4
	})
	// Matching still works after the split (publish across the space).
	before := rec.count()
	for i := 0; i < 10; i++ {
		if err := cl.Publish([]float64{float64(i*100 + 50), 500, 500, 500}, nil); err != nil {
			t.Fatal(err)
		}
	}
	waitFor(t, 5*time.Second, func() bool { return rec.count() >= before+10 })
}

func TestCrashRecoveryReinstallsAndResumes(t *testing.T) {
	c, err := Start(fastOptions(4))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.WaitForTable(1, 5*time.Second); err != nil {
		t.Fatal(err)
	}
	rec := newRecorder()
	cl, err := c.NewClient(0, rec.onDeliver)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Subscribe([]core.Range{
		{Low: 0, High: 1000}, {Low: 0, High: 1000}, {Low: 0, High: 1000}, {Low: 0, High: 1000},
	}); err != nil {
		t.Fatal(err)
	}
	time.Sleep(300 * time.Millisecond)

	victim := c.MatcherIDs()[0]
	if err := c.CrashMatcher(victim); err != nil {
		t.Fatal(err)
	}
	// Recovery: failure detection (FailAfter) + RecoveryDelay + gossip.
	waitFor(t, 10*time.Second, func() bool {
		tab := c.Table()
		return tab != nil && tab.Version() >= 2 && !tab.HasMatcher(victim)
	})
	// After recovery, publications anywhere in the space must be delivered.
	deadline := time.Now().Add(8 * time.Second)
	for time.Now().Before(deadline) {
		before := rec.count()
		for i := 0; i < 10; i++ {
			_ = cl.Publish([]float64{float64(i*100 + 50), 500, 500, 500}, nil)
		}
		time.Sleep(400 * time.Millisecond)
		if rec.count() >= before+10 {
			return // all 10 delivered post-recovery
		}
	}
	t.Fatal("publications still being lost after recovery")
}

func TestUnsubscribeStopsDelivery(t *testing.T) {
	c, err := Start(fastOptions(3))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.WaitForTable(1, 5*time.Second); err != nil {
		t.Fatal(err)
	}
	rec := newRecorder()
	cl, err := c.NewClient(0, rec.onDeliver)
	if err != nil {
		t.Fatal(err)
	}
	id, err := cl.Subscribe([]core.Range{
		{Low: 0, High: 1000}, {Low: 0, High: 1000}, {Low: 0, High: 1000}, {Low: 0, High: 1000},
	})
	if err != nil {
		t.Fatal(err)
	}
	time.Sleep(200 * time.Millisecond)
	if err := cl.Publish([]float64{1, 2, 3, 4}, nil); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 5*time.Second, func() bool { return rec.count() == 1 })

	if err := cl.Unsubscribe(id); err != nil {
		t.Fatal(err)
	}
	time.Sleep(300 * time.Millisecond)
	if err := cl.Publish([]float64{5, 6, 7, 8}, nil); err != nil {
		t.Fatal(err)
	}
	time.Sleep(500 * time.Millisecond)
	if got := rec.count(); got != 1 {
		t.Fatalf("delivery after unsubscribe: %d messages", got)
	}
}

func TestP2PStrategyEndToEnd(t *testing.T) {
	opts := fastOptions(3)
	opts.Strategy = placement.P2P{}
	c, err := Start(opts)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.WaitForTable(1, 5*time.Second); err != nil {
		t.Fatal(err)
	}
	rec := newRecorder()
	cl, err := c.NewClient(0, rec.onDeliver)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Subscribe([]core.Range{
		{Low: 200, High: 600}, {Low: 0, High: 1000}, {Low: 0, High: 1000}, {Low: 0, High: 1000},
	}); err != nil {
		t.Fatal(err)
	}
	time.Sleep(200 * time.Millisecond)
	if err := cl.Publish([]float64{300, 1, 2, 3}, nil); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 5*time.Second, func() bool { return rec.count() == 1 })
}

func TestLoadReportsReachDispatchers(t *testing.T) {
	c, err := Start(fastOptions(3))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.WaitForTable(1, 5*time.Second); err != nil {
		t.Fatal(err)
	}
	cl, err := c.NewClient(0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Subscribe([]core.Range{
		{Low: 0, High: 1000}, {Low: 0, High: 1000}, {Low: 0, High: 1000}, {Low: 0, High: 1000},
	}); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 5*time.Second, func() bool {
		d := c.Dispatchers()[1] // reports must reach the other dispatcher too
		for _, id := range c.MatcherIDs() {
			if l, ok := d.Load(id, 0); ok && l.Subs > 0 {
				return true
			}
		}
		return false
	})
}

func TestOverTCP(t *testing.T) {
	opts := fastOptions(3)
	opts.TCP = true
	c, err := Start(opts)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.WaitForTable(1, 10*time.Second); err != nil {
		t.Fatal(err)
	}
	rec := newRecorder()
	cl, err := c.NewClient(0, rec.onDeliver)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Subscribe([]core.Range{
		{Low: 0, High: 500}, {Low: 0, High: 1000}, {Low: 0, High: 1000}, {Low: 0, High: 1000},
	}); err != nil {
		t.Fatal(err)
	}
	time.Sleep(300 * time.Millisecond)
	if err := cl.Publish([]float64{250, 100, 100, 100}, []byte("tcp")); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 8*time.Second, func() bool { return rec.count() == 1 })
}

// Exhaustive correctness against a brute-force oracle over the full stack.
func TestEndToEndOracle(t *testing.T) {
	c, err := Start(fastOptions(5))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.WaitForTable(1, 5*time.Second); err != nil {
		t.Fatal(err)
	}
	rec := newRecorder()
	cl, err := c.NewClient(0, rec.onDeliver)
	if err != nil {
		t.Fatal(err)
	}
	// A spread of narrow subscriptions.
	type reg struct {
		id    core.SubscriptionID
		preds []core.Range
	}
	var regs []reg
	for i := 0; i < 20; i++ {
		lo := float64(i * 50)
		preds := []core.Range{
			{Low: lo, High: lo + 250},
			{Low: 0, High: 1000},
			{Low: float64(i * 30), High: float64(i*30) + 400},
			{Low: 0, High: 1000},
		}
		id, err := cl.Subscribe(preds)
		if err != nil {
			t.Fatal(err)
		}
		regs = append(regs, reg{id: id, preds: preds})
	}
	time.Sleep(400 * time.Millisecond)

	pub, err := c.NewClient(1, nil)
	if err != nil {
		t.Fatal(err)
	}
	msgs := [][]float64{
		{25, 10, 10, 10}, {333, 900, 333, 1}, {975, 10, 610, 999}, {500, 500, 500, 500},
	}
	wantTotal := 0
	for _, attrs := range msgs {
		for _, r := range regs {
			match := true
			for d, p := range r.preds {
				if !p.Contains(attrs[d]) {
					match = false
					break
				}
			}
			if match {
				wantTotal++
			}
		}
		if err := pub.Publish(attrs, nil); err != nil {
			t.Fatal(err)
		}
	}
	waitFor(t, 8*time.Second, func() bool { return rec.totalSubIDs() >= wantTotal })
	time.Sleep(300 * time.Millisecond)
	if got := rec.totalSubIDs(); got != wantTotal {
		t.Fatalf("delivered %d subscription matches, oracle says %d", got, wantTotal)
	}
}

func TestNewClientBadIndex(t *testing.T) {
	c, err := Start(fastOptions(2))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.NewClient(9, nil); err == nil {
		t.Error("out-of-range dispatcher index accepted")
	}
}

func TestMatcherIDsSorted(t *testing.T) {
	c, err := Start(fastOptions(4))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ids := c.MatcherIDs()
	if len(ids) != 4 {
		t.Fatalf("ids: %v", ids)
	}
	if !sort.SliceIsSorted(ids, func(i, j int) bool { return ids[i] < ids[j] }) {
		t.Errorf("ids not in start order: %v", ids)
	}
}

// With persistence enabled, a matcher crash under load loses no accepted
// publications: unacked forwards are retransmitted to the survivors.
func TestPersistentForwardingSurvivesCrash(t *testing.T) {
	opts := fastOptions(4)
	opts.Persistent = true
	opts.RetryInterval = 200 * time.Millisecond
	c, err := Start(opts)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.WaitForTable(1, 5*time.Second); err != nil {
		t.Fatal(err)
	}
	rec := newRecorder()
	cl, err := c.NewClient(0, rec.onDeliver)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Subscribe([]core.Range{
		{Low: 0, High: 1000}, {Low: 0, High: 1000}, {Low: 0, High: 1000}, {Low: 0, High: 1000},
	}); err != nil {
		t.Fatal(err)
	}
	time.Sleep(300 * time.Millisecond)

	// A one-way failure: the victim keeps accepting forwards but its
	// deliveries and acks vanish. Messages routed to it before failure
	// detection can only be recovered by dispatcher retransmission.
	const total = 60
	victim := c.MatcherIDs()[1]
	// Points the victim owns on every dimension: the forwarding policy has
	// no other candidate, so sprinkling these into the isolated half
	// guarantees unacked forwards (the plain points leave the victim as
	// one candidate among several, and the adaptive policy may dodge it).
	vp := victimPoint(t, c, victim)
	for i := 0; i < total; i++ {
		if i == total/2 {
			if err := c.IsolateMatcherOutbound(victim, true); err != nil {
				t.Fatal(err)
			}
		}
		attrs := []float64{float64(i*16 + 1), 500, 500, 500}
		if i >= total/2 && i%5 == 0 {
			attrs = vp
		}
		if err := cl.Publish(attrs, nil); err != nil {
			t.Fatal(err)
		}
		time.Sleep(5 * time.Millisecond)
	}
	// All messages must eventually be delivered (possibly duplicated); the
	// recorder counts distinct message IDs.
	waitFor(t, 20*time.Second, func() bool { return rec.count() >= total })
	// And the retransmit state drains as acks arrive.
	waitFor(t, 10*time.Second, func() bool {
		for _, d := range c.Dispatchers() {
			if d.InflightLen() > 0 {
				return false
			}
		}
		return true
	})
	retrans := int64(0)
	for _, d := range c.Dispatchers() {
		retrans += d.Retransmits.Value()
	}
	if retrans == 0 {
		t.Error("crash under load should have caused retransmissions")
	}
}
