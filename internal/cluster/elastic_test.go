package cluster

import (
	"fmt"
	"testing"
	"time"

	"bluedove/internal/chaos"
	"bluedove/internal/core"
	"bluedove/internal/wire"
)

// subCount sums a matcher's stored subscriptions across dimensions.
func subCount(c *Cluster, id core.NodeID) int {
	m := c.Matcher(id)
	if m == nil {
		return -1
	}
	total := 0
	for _, l := range m.LoadSnapshot() {
		total += l.Subs
	}
	return total
}

// TestRemoveMatcherDrainsZeroLoss: a controller-initiated scale-down in the
// middle of a publication burst loses nothing the dispatcher acked — the
// leaving matcher transfers its subscriptions over range-bounded frames,
// keeps serving stale-routed traffic through the drain grace, and only then
// stops.
func TestRemoveMatcherDrainsZeroLoss(t *testing.T) {
	opts := fastOptions(4)
	opts.Persistent = true
	opts.RetryInterval = 100 * time.Millisecond
	opts.DrainGrace = 400 * time.Millisecond
	c, err := Start(opts)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.WaitForTable(1, 5*time.Second); err != nil {
		t.Fatal(err)
	}

	aud := chaos.NewAuditor()
	aud.Subscribed(1, fullSpace())
	subCl, err := c.NewClient(0, func(m *core.Message, _ []core.SubscriptionID) {
		aud.Delivered(1, m)
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := subCl.Subscribe(fullSpace()); err != nil {
		t.Fatal(err)
	}
	time.Sleep(300 * time.Millisecond)

	pubCl, err := c.NewClient(1, nil)
	if err != nil {
		t.Fatal(err)
	}
	victim := c.MatcherIDs()[1]
	removed := make(chan error, 1)
	const burst = 150
	for i := 0; i < burst; i++ {
		if i == burst/3 {
			go func() { removed <- c.RemoveMatcher(victim) }()
		}
		token := fmt.Sprintf("drain-%03d", i)
		attrs := []float64{float64((i * 37) % 1000), float64((i * 59) % 1000),
			float64((i * 83) % 1000), float64((i * 101) % 1000)}
		if err := pubCl.Publish(attrs, []byte(token)); err != nil {
			t.Fatalf("publish %d rejected: %v", i, err)
		}
		aud.Published(token, attrs)
		time.Sleep(2 * time.Millisecond)
	}
	if err := <-removed; err != nil {
		t.Fatalf("remove matcher: %v", err)
	}
	if err := aud.WaitComplete(20 * time.Second); err != nil {
		t.Fatal(err)
	}
	if tab := c.Table(); tab.HasMatcher(victim) {
		t.Fatalf("removed matcher %v still in table v%d", victim, tab.Version())
	}
	if got := len(c.LiveMatcherIDs()); got != 3 {
		t.Fatalf("live matchers = %d, want 3", got)
	}
	if err := c.WaitConverged(10 * time.Second); err != nil {
		t.Fatal(err)
	}
}

// TestSplitSegmentRehomesRange: SplitSegment cuts the hot matcher's widest
// segment and re-homes the upper half, growing the table without losing
// acked traffic.
func TestSplitSegmentRehomesZeroLoss(t *testing.T) {
	opts := fastOptions(3)
	opts.Persistent = true
	opts.RetryInterval = 100 * time.Millisecond
	c, err := Start(opts)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.WaitForTable(1, 5*time.Second); err != nil {
		t.Fatal(err)
	}

	aud := chaos.NewAuditor()
	aud.Subscribed(1, fullSpace())
	subCl, err := c.NewClient(0, func(m *core.Message, _ []core.SubscriptionID) {
		aud.Delivered(1, m)
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := subCl.Subscribe(fullSpace()); err != nil {
		t.Fatal(err)
	}
	time.Sleep(300 * time.Millisecond)

	ids := c.MatcherIDs()
	hot, to := ids[0], ids[2]
	segsBefore := c.Table().Segments(0)
	cut, err := c.SplitSegment(hot, 0, to)
	if err != nil {
		t.Fatalf("split: %v", err)
	}
	if got := c.Table().Segments(0); got != segsBefore+1 {
		t.Fatalf("dim-0 segments = %d after split, want %d", got, segsBefore+1)
	}
	t.Logf("split matcher %v dim 0 at %g -> matcher %v", hot, cut, to)

	pubCl, err := c.NewClient(1, nil)
	if err != nil {
		t.Fatal(err)
	}
	const burst = 100
	for i := 0; i < burst; i++ {
		token := fmt.Sprintf("split-%03d", i)
		attrs := []float64{float64((i * 37) % 1000), float64((i * 59) % 1000),
			float64((i * 83) % 1000), float64((i * 101) % 1000)}
		if err := pubCl.Publish(attrs, []byte(token)); err != nil {
			t.Fatalf("publish %d rejected: %v", i, err)
		}
		aud.Published(token, attrs)
		time.Sleep(time.Millisecond)
	}
	if err := aud.WaitComplete(20 * time.Second); err != nil {
		t.Fatal(err)
	}
	if err := c.WaitConverged(10 * time.Second); err != nil {
		t.Fatal(err)
	}
}

// TestElasticIdleScalesDownToFloor: with the embedded controller on, a
// sustained-idle cluster shrinks itself to MinMatchers and stops — scale-down
// decisions fire, are journaled through the hook, and never cross the floor.
func TestElasticIdleScalesDownToFloor(t *testing.T) {
	opts := fastOptions(4)
	opts.Elastic = true
	opts.ElasticInterval = 50 * time.Millisecond
	opts.DrainGrace = 200 * time.Millisecond
	opts.ElasticConfig.SustainRounds = 3
	opts.ElasticConfig.CooldownRounds = 2
	opts.ElasticConfig.MinMatchers = 2
	c, err := Start(opts)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.WaitForTable(1, 5*time.Second); err != nil {
		t.Fatal(err)
	}

	waitFor(t, 15*time.Second, func() bool {
		return len(c.LiveMatcherIDs()) == 2
	})
	// The floor holds: no further shrink.
	time.Sleep(500 * time.Millisecond)
	if got := len(c.LiveMatcherIDs()); got != 2 {
		t.Fatalf("live matchers = %d after floor, want 2", got)
	}
	ctrl := c.ElasticController()
	if ctrl.ScaleDowns.Value() != 2 {
		t.Errorf("scale-down counter = %d, want 2", ctrl.ScaleDowns.Value())
	}
	if ctrl.Thrash.Value() != 0 {
		t.Errorf("thrash = %d, want 0", ctrl.Thrash.Value())
	}
	active, joining, draining := c.MatcherStates()
	if active != 2 || joining != 0 || draining != 0 {
		t.Errorf("states = %d active %d joining %d draining, want 2/0/0", active, joining, draining)
	}
	if err := c.WaitConverged(10 * time.Second); err != nil {
		t.Fatal(err)
	}
}

// TestElasticScaleUpUnderLoad: throttled matchers under a sustained publish
// stream push utilization over the high watermark; the controller starts a
// new matcher through the join protocol.
func TestElasticScaleUpUnderLoad(t *testing.T) {
	opts := fastOptions(2)
	opts.Elastic = true
	opts.ElasticInterval = 50 * time.Millisecond
	opts.ElasticConfig.SustainRounds = 2
	opts.ElasticConfig.CooldownRounds = 4
	opts.ElasticConfig.MinMatchers = 2
	opts.ElasticConfig.MaxMatchers = 4
	c, err := Start(opts)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.WaitForTable(1, 5*time.Second); err != nil {
		t.Fatal(err)
	}
	subCl, err := c.NewClient(0, func(*core.Message, []core.SubscriptionID) {})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := subCl.Subscribe(fullSpace()); err != nil {
		t.Fatal(err)
	}
	time.Sleep(200 * time.Millisecond)

	// Starve the matchers (synthetic 20ms service time ≈ 50 msg/s capacity)
	// and outrun them.
	for _, id := range c.MatcherIDs() {
		c.ThrottleMatcher(id, 20*time.Millisecond)
	}
	stop := make(chan struct{})
	for p := 0; p < 2; p++ {
		pubCl, err := c.NewClient(1, nil)
		if err != nil {
			t.Fatal(err)
		}
		go func(off int) {
			i := off
			for {
				select {
				case <-stop:
					return
				default:
				}
				_ = pubCl.Publish([]float64{float64(i % 1000), 500, 500, 500}, nil)
				i += 2
				time.Sleep(time.Millisecond)
			}
		}(p)
	}
	defer close(stop)

	waitFor(t, 15*time.Second, func() bool {
		return len(c.LiveMatcherIDs()) >= 3
	})
	if c.ElasticController().ScaleUps.Value() == 0 {
		t.Fatal("scale-up counter still 0 after growth")
	}
}

// TestChaosMidTransferCrashDoubleAdoptionGuard is the satellite chaos test
// for the range-bounded transfer frame: the receiver crashes after adopting a
// controller-initiated transfer, so the controller — unable to know whether
// it landed — re-issues the identical handover after the restart. The
// journal-backed adoption guard must drop the replays (the subscription is
// stored exactly once) and the whole dance must lose no acked publication
// under degraded links.
func TestChaosMidTransferCrashDoubleAdoptionGuard(t *testing.T) {
	seed := chaosSeed(t)
	ctrl := chaos.NewController(seed)
	defer ctrl.Close()
	opts := fastOptions(3)
	opts.Chaos = ctrl
	opts.DataDir = t.TempDir()
	opts.Persistent = true
	opts.RetryInterval = 100 * time.Millisecond
	// A long prune grace keeps the source's copy alive across the whole
	// crash/retry dance, so the re-issued transfers below really carry the
	// subscription — the guard, not an empty frame, is what stops them.
	opts.PruneGrace = 5 * time.Second
	c, err := Start(opts)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.WaitForTable(1, 5*time.Second); err != nil {
		t.Fatal(err)
	}

	// A narrow subscription: its per-dimension copies each land on exactly
	// one matcher, so a range transfer observably moves it (a full-space
	// subscription lives everywhere and a transfer is an invisible upsert).
	narrow := []core.Range{
		{Low: 10, High: 20}, {Low: 10, High: 20}, {Low: 10, High: 20}, {Low: 10, High: 20},
	}
	aud := chaos.NewAuditor()
	aud.Subscribed(1, narrow)
	subCl, err := c.NewClient(0, func(m *core.Message, _ []core.SubscriptionID) {
		aud.Delivered(1, m)
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := subCl.Subscribe(narrow); err != nil {
		t.Fatal(err)
	}
	time.Sleep(300 * time.Millisecond)

	// Find a (holder, dimension) of the subscription and a target matcher
	// that does not hold it along that dimension.
	var src, dst core.NodeID
	var dim int
	ids := c.MatcherIDs()
search:
	for d := 0; d < 4; d++ {
		for _, id := range ids {
			if c.Matcher(id).LoadSnapshot()[d].Subs > 0 {
				src, dim = id, d
				break
			}
		}
		if src != 0 {
			for _, id := range ids {
				if id != src && c.Matcher(id).LoadSnapshot()[d].Subs == 0 {
					dst = id
					break search
				}
			}
			src = 0
		}
	}
	if src == 0 || dst == 0 {
		t.Fatal("no (holder, target) pair for the transfer")
	}
	dstBefore := subCount(c, dst)

	// Split src's dim segment just below the subscription, exactly as the
	// controller's SplitSegment would: the upper half — containing the
	// subscription — moves to dst, with a TransferID derived from the new
	// table version.
	tab := c.Table()
	newTab, h, err := tab.Split(dim, 5, dst)
	if err != nil {
		t.Fatalf("split table: %v", err)
	}
	if h.From != src || h.To != dst {
		t.Fatalf("split handover %+v, want %v -> %v", h, src, dst)
	}
	tid := wire.TransferRangeID(src, newTab.Version(), dim, h.Range.Low, h.Range.High)
	dstAddr, _ := c.MatcherAddr(dst)
	srcAddr, _ := c.MatcherAddr(src)
	sendTransfer := func() {
		body := (&wire.HandoverBody{
			Dim: dim, Low: h.Range.Low, High: h.Range.High, TargetAddr: dstAddr, TransferID: tid,
		}).Encode()
		c.mu.Lock()
		tr := c.matcherTr[src]
		c.mu.Unlock()
		if err := tr.Send(srcAddr, &wire.Envelope{Kind: wire.KindHandover, From: src, Body: body}); err != nil {
			t.Fatalf("send handover: %v", err)
		}
	}

	sendTransfer()
	waitFor(t, 5*time.Second, func() bool { return subCount(c, dst) == dstBefore+1 })
	c.Dispatchers()[0].SetTable(newTab)
	if err := c.WaitForTable(newTab.Version(), 5*time.Second); err != nil {
		t.Fatal(err)
	}

	// Receiver crashes mid-flow and comes back from its journal — with the
	// subscription AND the adopted transfer ID.
	if err := c.CrashMatcher(dst); err != nil {
		t.Fatal(err)
	}
	if err := c.RestartMatcher(dst); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 5*time.Second, func() bool { return subCount(c, dst) == dstBefore+1 })

	// Controller retries: identical transfer, twice. The source must still
	// hold its copy (prune grace pending) so the replays are not empty, and
	// the journal-recovered guard must drop them.
	if c.Matcher(src).LoadSnapshot()[dim].Subs == 0 {
		t.Fatal("source already pruned its copy — replayed transfers would be empty")
	}
	sendTransfer()
	sendTransfer()
	time.Sleep(300 * time.Millisecond)
	if got := subCount(c, dst); got != dstBefore+1 {
		t.Fatalf("seed %d: receiver holds %d subs after replayed transfers, want %d — double adoption",
			seed, got, dstBefore+1)
	}

	// The cluster still delivers everything it acks, through degraded links.
	faults := chaos.LinkFaults{Drop: 0.1, Duplicate: 0.1,
		DelayMin: time.Millisecond, DelayMax: 3 * time.Millisecond}
	for _, id := range c.MatcherIDs() {
		maddr, _ := c.MatcherAddr(id)
		for _, daddr := range c.DispatcherAddrs() {
			ctrl.SetFaults(daddr, maddr, faults)
			ctrl.SetFaults(maddr, daddr, faults)
		}
	}
	pubCl, err := c.NewClient(1, nil)
	if err != nil {
		t.Fatal(err)
	}
	const burst = 80
	for i := 0; i < burst; i++ {
		token := fmt.Sprintf("xfer-%03d", i)
		attrs := []float64{10 + float64((i*37)%100)/10, 10 + float64((i*59)%100)/10,
			10 + float64((i*83)%100)/10, 10 + float64((i*101)%100)/10}
		if err := pubCl.Publish(attrs, []byte(token)); err != nil {
			t.Fatalf("publish %d rejected: %v", i, err)
		}
		aud.Published(token, attrs)
		time.Sleep(time.Millisecond)
	}
	if err := aud.WaitComplete(20 * time.Second); err != nil {
		t.Fatalf("seed %d: %v", seed, err)
	}
}
