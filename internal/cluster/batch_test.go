package cluster

import (
	"testing"
	"time"

	"bluedove/internal/client"
	"bluedove/internal/core"
)

// TestBatchingEndToEnd drives a batching cluster (ForwardLinger on, several
// concurrent publishers, direct and indirect subscribers) and checks that
// every matching publication is delivered exactly as in the unbatched mode.
// Run under -race this also exercises the batcher/flusher concurrency.
func TestBatchingEndToEnd(t *testing.T) {
	opts := fastOptions(4)
	opts.ForwardLinger = time.Millisecond
	opts.Persistent = true // batch acks must clear inflight state
	c, err := Start(opts)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.WaitForTable(1, 5*time.Second); err != nil {
		t.Fatal(err)
	}

	// A direct subscriber covering the lower half of dim 0 and an indirect
	// (polled) subscriber covering the upper half.
	rec := newRecorder()
	directCl, err := c.NewClient(0, rec.onDeliver)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := directCl.Subscribe([]core.Range{
		{Low: 0, High: 499}, {Low: 0, High: 1000}, {Low: 0, High: 1000}, {Low: 0, High: 1000},
	}); err != nil {
		t.Fatal(err)
	}
	indirectCl, err := c.NewClient(1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := indirectCl.Subscribe([]core.Range{
		{Low: 500, High: 1000}, {Low: 0, High: 1000}, {Low: 0, High: 1000}, {Low: 0, High: 1000},
	}); err != nil {
		t.Fatal(err)
	}
	time.Sleep(300 * time.Millisecond) // let stores land

	// Concurrent publishers through both dispatchers; every publication
	// matches exactly one of the two subscribers.
	const pubs, perPub = 4, 50
	pubClients := make([]*client.Client, pubs)
	for p := range pubClients {
		cl, err := c.NewClient(p%2, nil)
		if err != nil {
			t.Fatal(err)
		}
		pubClients[p] = cl
	}
	errs := make(chan error, pubs)
	for p := 0; p < pubs; p++ {
		go func(p int) {
			cl := pubClients[p]
			for i := 0; i < perPub; i++ {
				x := float64((p*perPub + i) % 1000)
				if err := cl.Publish([]float64{x, 500, 500, 500}, []byte("m")); err != nil {
					errs <- err
					return
				}
			}
			errs <- nil
		}(p)
	}
	for p := 0; p < pubs; p++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}

	total := pubs * perPub
	lower := 0 // publications with x < 500 go to the direct subscriber
	for p := 0; p < pubs; p++ {
		for i := 0; i < perPub; i++ {
			if (p*perPub+i)%1000 < 500 {
				lower++
			}
		}
	}
	waitFor(t, 10*time.Second, func() bool { return rec.totalSubIDs() == lower })

	// The indirect subscriber polls its dispatcher-hosted queue.
	polledIDs := make(map[core.MessageID]bool)
	waitFor(t, 10*time.Second, func() bool {
		ds, err := indirectCl.Poll(64)
		if err != nil {
			t.Fatal(err)
		}
		for _, d := range ds {
			polledIDs[d.Msg.ID] = true
		}
		return len(polledIDs) == total-lower
	})

	// Batching actually happened (coalesced frames, fewer than messages),
	// and persistence state drained via batch acks.
	var batches, forwarded int64
	for _, d := range c.Dispatchers() {
		batches += d.ForwardBatches.Value()
		forwarded += d.Forwarded.Value()
	}
	if forwarded != int64(total) {
		t.Errorf("forwarded=%d, want %d", forwarded, total)
	}
	if batches == 0 || batches >= forwarded {
		t.Errorf("ForwardBatches=%d of %d forwards; want coalescing", batches, forwarded)
	}
	waitFor(t, 10*time.Second, func() bool {
		for _, d := range c.Dispatchers() {
			if d.InflightLen() != 0 {
				return false
			}
		}
		return true
	})
}
