package cluster

import (
	"encoding/json"
	"fmt"
	"time"

	"bluedove/internal/core"
	"bluedove/internal/elastic"
	"bluedove/internal/store"
	"bluedove/internal/telemetry"
	"bluedove/internal/wire"
)

// MatcherState is a matcher's lifecycle phase as tracked by the elasticity
// controller: active (serving), joining (started, segment handover in
// flight), draining (chosen for removal, handing its segments away).
type MatcherState string

// Matcher lifecycle states.
const (
	StateActive   MatcherState = "active"
	StateJoining  MatcherState = "joining"
	StateDraining MatcherState = "draining"
)

// recElasticDecision is the decision journal's record kind (the journal has
// a single record type: one JSON-encoded elastic.Decision per actuation).
const recElasticDecision uint8 = 1

// startElastic boots the embedded elasticity controller: a telemetry node
// (role "elastic") exporting the decision counters and matcher-state gauges,
// an optional decision journal under DataDir/elastic, and the scrape loop.
func (c *Cluster) startElastic() error {
	cfg := c.opts.ElasticConfig
	if c.opts.DataDir != "" {
		jnl, err := store.Open(store.Options{
			Dir:   c.nodeDataDir("elastic"),
			Fsync: c.opts.Fsync,
		})
		if err != nil {
			return fmt.Errorf("cluster: elastic journal: %w", err)
		}
		c.elJnl = jnl
	}
	prev := cfg.OnDecision
	cfg.OnDecision = func(d elastic.Decision) {
		if c.elJnl != nil {
			if p, err := json.Marshal(d); err == nil {
				if err := c.elJnl.Append(recElasticDecision, p); err != nil {
					c.elJnlErrors.Add(1)
				}
			}
		}
		if prev != nil {
			prev(d)
		}
	}
	c.elCtrl = elastic.NewController(cfg)

	if c.opts.telemetryOn() {
		id := c.nextNode
		c.nextNode++
		c.elasticID = id
		tel := telemetry.New(telemetry.Options{
			Base: []telemetry.Label{
				telemetry.L("node", fmt.Sprintf("%d", id)),
				telemetry.L("role", "elastic"),
			},
		})
		r := tel.Registry
		r.Gauge("node.info", "constant 1; labels identify the node", func(int64) float64 { return 1 })
		r.Counter("elastic.scale_up", "controller scale-up decisions", &c.elCtrl.ScaleUps)
		r.Counter("elastic.scale_down", "controller scale-down decisions", &c.elCtrl.ScaleDowns)
		r.Counter("elastic.splits", "controller hot-segment split decisions", &c.elCtrl.Splits)
		r.Counter("elastic.replaces", "scale-ups fired to replace a durability-failed matcher", &c.elCtrl.Replaces)
		r.Counter("elastic.thrash", "scale direction reversals inside the thrash window", &c.elCtrl.Thrash)
		r.Counter("elastic.journal_errors", "decision-journal appends that failed", &c.elJnlErrors)
		r.Gauge("elastic.matchers", "active matcher count", func(int64) float64 {
			a, _, _ := c.MatcherStates()
			return float64(a)
		})
		r.Gauge("elastic.joining", "matchers mid-join", func(int64) float64 {
			_, j, _ := c.MatcherStates()
			return float64(j)
		})
		r.Gauge("elastic.draining", "matchers mid-removal", func(int64) float64 {
			_, _, d := c.MatcherStates()
			return float64(d)
		})
		c.telemetries[id] = tel
		if c.opts.Admin {
			adm, err := telemetry.Serve("127.0.0.1:0", tel)
			if err != nil {
				return fmt.Errorf("cluster: elastic admin endpoint: %w", err)
			}
			c.admins[id] = adm
		}
	}

	c.elStop = make(chan struct{})
	c.elDone = make(chan struct{})
	go c.elasticLoop()
	return nil
}

// stopElastic halts the controller loop and closes the decision journal.
func (c *Cluster) stopElastic() {
	if c.elStop == nil {
		return
	}
	select {
	case <-c.elStop:
	default:
		close(c.elStop)
	}
	<-c.elDone
	if c.elJnl != nil {
		_ = c.elJnl.Close()
	}
}

// elasticLoop scrapes matcher telemetry on every tick and executes at most
// one controller decision per tick. Actuations run inline — the controller's
// cooldown is counted in observation rounds, so a slow handover simply
// stretches the wall-clock spacing without changing the decision sequence.
func (c *Cluster) elasticLoop() {
	defer close(c.elDone)
	ticker := time.NewTicker(c.opts.ElasticInterval)
	defer ticker.Stop()
	for {
		select {
		case <-c.elStop:
			return
		case <-ticker.C:
			d := c.elCtrl.Observe(c.Scrape(time.Now().UnixNano()))
			if d == nil {
				continue
			}
			c.actuate(*d)
		}
	}
}

// Scrape samples every live matcher's load for the controller (exported for
// tests and tooling). Decisions depend only on the returned samples.
func (c *Cluster) Scrape(now int64) elastic.Scrape {
	c.mu.Lock()
	defer c.mu.Unlock()
	var trips int64
	for i, d := range c.dispatchers {
		if !c.stoppedDisp[i] {
			trips += d.BreakerTrips()
		}
	}
	s := elastic.Scrape{At: now}
	for _, id := range c.order {
		if c.stopped[id] {
			continue
		}
		m := c.matchers[id]
		if m == nil {
			continue
		}
		ms := elastic.MatcherSample{
			ID:           id,
			BreakerTrips: trips,
			Draining:     c.states[id] == StateDraining,
			Failed:       m.StoreHealth() == store.Failed,
		}
		for _, l := range m.LoadSnapshot() {
			ms.Dims = append(ms.Dims, elastic.DimSample{
				Subs:        l.Subs,
				QueueLen:    l.QueueLen,
				ArrivalRate: l.ArrivalRate,
				MatchRate:   l.MatchRate,
			})
		}
		if p := m.Processed.Value(); p > 0 {
			ms.ScannedPerMsg = float64(m.Scanned.Value()) / float64(p)
		}
		s.Matchers = append(s.Matchers, ms)
	}
	return s
}

// actuate executes one controller decision against the cluster.
func (c *Cluster) actuate(d elastic.Decision) {
	switch d.Action {
	case elastic.ScaleUp:
		_, _ = c.AddMatcher()
	case elastic.ScaleDown:
		_ = c.RemoveMatcher(d.Target)
	case elastic.Split:
		_, _ = c.SplitSegment(d.Target, d.Dim, d.To)
	}
}

// ElasticController exposes the embedded controller (nil unless
// Options.Elastic), for tests and tooling.
func (c *Cluster) ElasticController() *elastic.Controller { return c.elCtrl }

// MatcherStates returns the live matcher counts by lifecycle state.
func (c *Cluster) MatcherStates() (active, joining, draining int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, id := range c.order {
		if c.stopped[id] || c.matchers[id] == nil {
			continue
		}
		switch c.states[id] {
		case StateJoining:
			joining++
		case StateDraining:
			draining++
		default:
			active++
		}
	}
	return
}

// RemoveMatcher gracefully removes a matcher: its segments are absorbed by
// adjacent owners (the paper's leave protocol), range-bounded transfers move
// its subscriptions, the shrunk table is published, and after the drain
// grace the node stops. The last DrainGrace of the matcher's life it keeps
// matching messages routed by stale tables — with persistence enabled any
// forward that still reaches the dead node is retransmitted elsewhere, so no
// acked publication is lost.
func (c *Cluster) RemoveMatcher(id core.NodeID) error {
	c.mu.Lock()
	m, ok := c.matchers[id]
	if !ok || c.stopped[id] {
		c.mu.Unlock()
		return fmt.Errorf("cluster: unknown or stopped matcher %v", id)
	}
	if c.states[id] == StateDraining {
		c.mu.Unlock()
		return fmt.Errorf("cluster: matcher %v already draining", id)
	}
	t := c.dispatchers[0].Table()
	if t == nil {
		c.mu.Unlock()
		return fmt.Errorf("cluster: no table to leave")
	}
	newTab, handovers, err := t.Leave(id)
	if err != nil {
		c.mu.Unlock()
		return err
	}
	c.states[id] = StateDraining
	tr := c.matcherTr[id]
	selfAddr := m.Addr()
	targets := make(map[core.NodeID]string, len(handovers))
	for _, h := range handovers {
		if tm := c.matchers[h.To]; tm != nil && !c.stopped[h.To] {
			targets[h.To] = tm.Addr()
		}
	}
	c.mu.Unlock()

	// Order the leaving matcher to transfer each absorbed range. The
	// TransferID is derived from the new table version, so a re-issued
	// handover (crash mid-transfer, controller retry) is adopted once.
	for _, h := range handovers {
		ta, ok := targets[h.To]
		if !ok {
			continue
		}
		body := (&wire.HandoverBody{
			Dim: h.Dim, Low: h.Range.Low, High: h.Range.High, TargetAddr: ta,
			TransferID: wire.TransferRangeID(h.From, newTab.Version(), h.Dim, h.Range.Low, h.Range.High),
		}).Encode()
		_ = tr.Send(selfAddr, &wire.Envelope{Kind: wire.KindHandover, From: id, Body: body})
	}
	c.dispatchers[0].SetTable(newTab)

	// Drain: keep serving stale-routed traffic until tables propagate.
	select {
	case <-time.After(c.opts.DrainGrace):
	case <-c.closing():
	}

	c.mu.Lock()
	defer c.mu.Unlock()
	if c.stopped[id] {
		return nil // crashed while draining
	}
	if c.mesh != nil {
		c.mesh.SetDown(m.Addr(), true)
	}
	if c.opts.Chaos != nil {
		c.opts.Chaos.Kill(m.Addr())
	}
	m.Stop()
	c.stopped[id] = true
	delete(c.states, id)
	if c.opts.TCP {
		c.matcherTr[id].Close()
	}
	return nil
}

// SplitSegment cuts hot's widest dimension-dim segment at a load-weighted
// point (the median predicate center of the stored subscriptions) and
// re-homes the upper half onto matcher to — the controller's answer to a
// σ-skewed workload where one segment is hot while the cluster is cold.
// Returns the cut point.
func (c *Cluster) SplitSegment(hot core.NodeID, dim int, to core.NodeID) (float64, error) {
	c.mu.Lock()
	hm, ok := c.matchers[hot]
	if !ok || c.stopped[hot] {
		c.mu.Unlock()
		return 0, fmt.Errorf("cluster: unknown or stopped matcher %v", hot)
	}
	tm, ok := c.matchers[to]
	if !ok || c.stopped[to] {
		c.mu.Unlock()
		return 0, fmt.Errorf("cluster: unknown or stopped split target %v", to)
	}
	t := c.dispatchers[0].Table()
	if t == nil {
		c.mu.Unlock()
		return 0, fmt.Errorf("cluster: no table to split")
	}
	segs, err := t.SegmentsOf(hot, dim)
	if err != nil {
		c.mu.Unlock()
		return 0, err
	}
	widest := segs[0]
	for _, s := range segs[1:] {
		if s.High-s.Low > widest.High-widest.Low {
			widest = s
		}
	}
	cut := hm.SplitPoint(dim, widest)
	newTab, h, err := t.Split(dim, cut, to)
	if err != nil {
		c.mu.Unlock()
		return 0, err
	}
	tr := c.matcherTr[hot]
	selfAddr := hm.Addr()
	targetAddr := tm.Addr()
	c.mu.Unlock()

	body := (&wire.HandoverBody{
		Dim: h.Dim, Low: h.Range.Low, High: h.Range.High, TargetAddr: targetAddr,
		TransferID: wire.TransferRangeID(h.From, newTab.Version(), h.Dim, h.Range.Low, h.Range.High),
	}).Encode()
	_ = tr.Send(selfAddr, &wire.Envelope{Kind: wire.KindHandover, From: hot, Body: body})
	c.dispatchers[0].SetTable(newTab)
	return cut, nil
}

// closing returns a channel closed when the elastic loop is told to stop
// (never closed on clusters without the controller), so drains abort on
// shutdown instead of sleeping through it.
func (c *Cluster) closing() <-chan struct{} {
	if c.elStop != nil {
		return c.elStop
	}
	return make(chan struct{})
}
