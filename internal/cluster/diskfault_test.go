package cluster

import (
	"errors"
	"fmt"
	"strconv"
	"strings"
	"testing"
	"time"

	"bluedove/internal/chaos"
	"bluedove/internal/client"
	"bluedove/internal/core"
	"bluedove/internal/store"
	"bluedove/internal/telemetry"
)

// scrapeValue extracts the first sample of a metric family from Prometheus
// text exposition (any label set).
func scrapeValue(scrape []byte, name string) (float64, bool) {
	for _, line := range strings.Split(string(scrape), "\n") {
		if !strings.HasPrefix(line, name) {
			continue
		}
		rest := line[len(name):]
		if len(rest) == 0 || (rest[0] != ' ' && rest[0] != '{') {
			continue // longer name sharing the prefix
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			continue
		}
		v, err := strconv.ParseFloat(fields[len(fields)-1], 64)
		if err != nil {
			continue
		}
		return v, true
	}
	return 0, false
}

// TestDiskFaultFailStopZeroAckedLoss is the FailStop half of the disk-fault
// certification: a durable persistent cluster runs under network chaos
// (drops, duplicates, delays on the dispatcher↔matcher fabric) while one
// matcher's disk starts failing every fsync mid-burst. Under the default
// FailStop policy the victim's store fails, the cluster crashes the node
// (the OnStoreFailure actuation), and the persistence layer reroutes its
// unacked forwards — every acked publication must still be delivered.
func TestDiskFaultFailStopZeroAckedLoss(t *testing.T) {
	seed := chaosSeed(t)
	ctrl := chaos.NewController(seed)
	defer ctrl.Close()

	opts := fastOptions(4)
	opts.Chaos = ctrl
	opts.Persistent = true
	opts.RetryInterval = 100 * time.Millisecond
	opts.DataDir = t.TempDir()
	opts.Fsync = store.FsyncAlways
	c, err := Start(opts)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.WaitForTable(1, 5*time.Second); err != nil {
		t.Fatal(err)
	}

	aud := chaos.NewAuditor()
	aud.Subscribed(1, fullSpace())
	subCl, err := c.NewClient(0, func(m *core.Message, _ []core.SubscriptionID) {
		aud.Delivered(1, m)
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := subCl.Subscribe(fullSpace()); err != nil {
		t.Fatal(err)
	}
	time.Sleep(300 * time.Millisecond) // let the stores land everywhere

	// Network chaos on the whole dispatcher↔matcher fabric for the entire
	// burst; the disk fault arrives mid-burst on one matcher.
	linkFaults := chaos.LinkFaults{Drop: 0.1, Duplicate: 0.05,
		DelayMin: time.Millisecond, DelayMax: 3 * time.Millisecond}
	for _, id := range c.MatcherIDs() {
		maddr, _ := c.MatcherAddr(id)
		for _, daddr := range c.DispatcherAddrs() {
			ctrl.SetFaults(daddr, maddr, linkFaults)
			ctrl.SetFaults(maddr, daddr, linkFaults)
		}
	}

	victim := c.MatcherIDs()[0]
	pubCl, err := c.NewClient(1, nil)
	if err != nil {
		t.Fatal(err)
	}

	const burst = 200
	for i := 0; i < burst; i++ {
		if i == burst/2 {
			// The victim's disk starts failing every fsync. The next journal
			// append (triggered below by a fresh subscription install, which
			// every matcher journals) poisons its segment; repair fails too,
			// and FailStop crashes the node mid-burst.
			ctrl.SetDiskFaults(fmt.Sprintf("matcher-%d", victim), chaos.DiskFaults{SyncErr: 1.0})
			trig, err := c.NewClient(0, func(*core.Message, []core.SubscriptionID) {})
			if err != nil {
				t.Fatal(err)
			}
			_, _ = trig.Subscribe(fullSpace()) // may race the crash; best-effort
		}
		token := fmt.Sprintf("dfk-%03d", i)
		attrs := []float64{float64((i * 37) % 1000), float64((i * 59) % 1000),
			float64((i * 83) % 1000), float64((i * 101) % 1000)}
		if err := pubCl.Publish(attrs, []byte(token)); err != nil {
			t.Fatalf("publish %d rejected: %v", i, err)
		}
		aud.Published(token, attrs)
		time.Sleep(time.Millisecond)
	}

	// FailStop actuation: the store failed and the cluster crashed the node.
	waitFor(t, 10*time.Second, func() bool {
		for _, id := range c.LiveMatcherIDs() {
			if id == victim {
				return false
			}
		}
		return true
	})
	if h := c.Matcher(victim).StoreHealth(); h != store.Failed {
		t.Fatalf("victim store health = %v, want failed", h)
	}

	if err := aud.WaitComplete(30 * time.Second); err != nil {
		t.Fatalf("seed %d: acked loss under FailStop: %v", seed, err)
	}
	if got := aud.Expected(); got != burst {
		t.Fatalf("auditor expected %d deliveries, want %d", got, burst)
	}
	if tr := ctrl.DiskTrace(fmt.Sprintf("matcher-%d", victim)); len(tr) == 0 {
		t.Fatalf("seed %d: no disk faults were injected — test lost its teeth", seed)
	}
	t.Logf("seed %d: %d/%d acked publications delivered through combined disk+network chaos (%d duplicates)",
		seed, burst, burst, aud.Duplicates())
}

// TestDiskFaultDegradeToMemoryExactAccounting is the DegradeToMemory half of
// the certification: a dispatcher's disk runs out of space mid-burst under
// network chaos. The node must keep serving — every publication is still
// accepted and delivered — while the weakened guarantee is reported exactly:
// store.health flips to degraded and dropped_appends counts every append
// accepted non-durably, with nothing lost silently.
func TestDiskFaultDegradeToMemoryExactAccounting(t *testing.T) {
	seed := chaosSeed(t)
	ctrl := chaos.NewController(seed)
	defer ctrl.Close()

	opts := fastOptions(3)
	opts.Chaos = ctrl
	opts.Persistent = true
	opts.RetryInterval = 100 * time.Millisecond
	opts.DataDir = t.TempDir()
	opts.Fsync = store.FsyncAlways
	opts.FailPolicy = store.DegradeToMemory
	c, err := Start(opts)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.WaitForTable(1, 5*time.Second); err != nil {
		t.Fatal(err)
	}

	aud := chaos.NewAuditor()
	aud.Subscribed(1, fullSpace())
	subCl, err := c.NewClient(1, func(m *core.Message, _ []core.SubscriptionID) {
		aud.Delivered(1, m)
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := subCl.Subscribe(fullSpace()); err != nil {
		t.Fatal(err)
	}
	time.Sleep(300 * time.Millisecond)

	linkFaults := chaos.LinkFaults{Drop: 0.1, Duplicate: 0.05}
	for _, id := range c.MatcherIDs() {
		maddr, _ := c.MatcherAddr(id)
		for _, daddr := range c.DispatcherAddrs() {
			ctrl.SetFaults(daddr, maddr, linkFaults)
			ctrl.SetFaults(maddr, daddr, linkFaults)
		}
	}
	// Dispatcher 0 journals every accepted publication (persistent mode);
	// its disk admits ~4KiB more, then every write fails with ENOSPC.
	d0 := c.Dispatchers()[0]
	ctrl.SetDiskFaults(fmt.Sprintf("dispatcher-%d", d0.ID()), chaos.DiskFaults{ENOSPCAfter: 4096})

	pubCl, err := c.NewClient(0, nil) // publishes through dispatcher 0
	if err != nil {
		t.Fatal(err)
	}
	const burst = 200
	for i := 0; i < burst; i++ {
		token := fmt.Sprintf("deg-%03d", i)
		attrs := []float64{float64((i * 41) % 1000), float64((i * 67) % 1000),
			float64((i * 89) % 1000), float64((i * 103) % 1000)}
		if err := pubCl.Publish(attrs, []byte(token)); err != nil {
			t.Fatalf("publish %d rejected — DegradeToMemory must keep serving: %v", i, err)
		}
		aud.Published(token, attrs)
		time.Sleep(time.Millisecond)
	}

	// Service preserved: every acked publication delivered despite the
	// degraded journal and the lossy fabric.
	if err := aud.WaitComplete(30 * time.Second); err != nil {
		t.Fatalf("seed %d: delivery loss under DegradeToMemory: %v", seed, err)
	}

	// The weakened guarantee is reported exactly, not silently: the store is
	// degraded, every non-durable accept is counted, and the durable prefix
	// plus the reported drops covers every journal append the node accepted.
	jnl := d0.Journal()
	if jnl == nil {
		t.Fatal("dispatcher 0 has no journal")
	}
	if h := jnl.Health(); h != store.Degraded {
		t.Fatalf("seed %d: dispatcher 0 store health = %v, want degraded", seed, h)
	}
	dropped := jnl.DroppedAppends.Value()
	durable := jnl.Appends.Value()
	if dropped == 0 {
		t.Fatalf("seed %d: ENOSPC injected but no appends reported dropped", seed)
	}
	// Persistent mode journals at least one record per accepted publication
	// (pending) plus one per matcher ack; each landed either durably or in
	// the reported drop count.
	if durable+dropped < burst {
		t.Fatalf("seed %d: accounting hole: %d durable + %d dropped < %d accepted publications",
			seed, durable, dropped, burst)
	}
	t.Logf("seed %d: %d/%d delivered; journal accounting: %d durable, %d reported dropped (health=%v)",
		seed, burst, burst, durable, dropped, jnl.Health())
}

// TestDiskFaultShedRejectsAndDeprioritizes covers the third policy and the
// health-propagation chain: with Shed, a dispatcher whose journal degrades
// refuses new persistent work with the overloaded-style rejection (visible
// to AckPublish clients as client.ErrOverloaded), and a matcher whose
// journal degrades is deprioritized by dispatchers once its load report
// carries the degraded health bit.
func TestDiskFaultShedRejectsAndDeprioritizes(t *testing.T) {
	ctrl := chaos.NewController(7)
	defer ctrl.Close()

	opts := fastOptions(3)
	opts.Chaos = ctrl
	opts.Persistent = true
	opts.DataDir = t.TempDir()
	opts.Fsync = store.FsyncAlways
	opts.FailPolicy = store.Shed
	c, err := Start(opts)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.WaitForTable(1, 5*time.Second); err != nil {
		t.Fatal(err)
	}
	subCl, err := c.NewClient(1, func(*core.Message, []core.SubscriptionID) {})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := subCl.Subscribe(fullSpace()); err != nil {
		t.Fatal(err)
	}
	time.Sleep(300 * time.Millisecond)

	// Degrade dispatcher 0's journal: the next publish's pending-record
	// append fails, sheds the store, and every subsequent publish must be
	// rejected at admission.
	d0 := c.Dispatchers()[0]
	ctrl.SetDiskFaults(fmt.Sprintf("dispatcher-%d", d0.ID()), chaos.DiskFaults{WriteErr: 1.0})
	ackCl, err := c.NewAckClient(0)
	if err != nil {
		t.Fatal(err)
	}
	sawOverloaded := false
	for i := 0; i < 20 && !sawOverloaded; i++ {
		err := ackCl.Publish([]float64{500, 500, 500, 500}, []byte("shed-probe"))
		if errors.Is(err, client.ErrOverloaded) {
			sawOverloaded = true
		} else if err != nil {
			t.Fatalf("publish %d: unexpected error %v", i, err)
		}
	}
	if !sawOverloaded {
		t.Fatal("shedding dispatcher never rejected a publish with ErrOverloaded")
	}
	if h := d0.StoreHealth(); h != store.Degraded {
		t.Fatalf("dispatcher 0 store health = %v, want degraded", h)
	}
	if d0.JournalErrors.Value() == 0 {
		t.Fatal("dispatcher.journal_errors did not count the failed append")
	}

	// Degrade one matcher and force a journal append (subscription install);
	// its next load report carries the degraded bit and the healthy
	// dispatcher must deprioritize it while keeping it routable.
	victim := c.MatcherIDs()[0]
	ctrl.SetDiskFaults(fmt.Sprintf("matcher-%d", victim), chaos.DiskFaults{WriteErr: 1.0})
	if _, err := subCl.Subscribe(fullSpace()); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 5*time.Second, func() bool {
		return c.Matcher(victim).StoreHealth() == store.Degraded
	})
	if c.Matcher(victim).JournalErrors.Value() == 0 {
		t.Fatal("matcher.journal_errors did not count the failed append")
	}
	d1 := c.Dispatchers()[1]
	waitFor(t, 5*time.Second, func() bool { return d1.Deprioritized(victim) })
	if !d1.Routable(victim) {
		t.Fatal("degraded matcher must stay routable (soft demotion, not a veto)")
	}
}

// TestDiskFaultScrapeContract pins the journal-error observability chain
// end to end: injected disk faults must surface in a /metrics scrape as
// bluedove_{matcher,dispatcher}_journal_errors > 0 and bluedove_store_health
// = 1 — the series the bluedove-top -validate contract requires.
func TestDiskFaultScrapeContract(t *testing.T) {
	ctrl := chaos.NewController(11)
	defer ctrl.Close()

	opts := fastOptions(2)
	opts.Chaos = ctrl
	opts.Persistent = true
	opts.DataDir = t.TempDir()
	opts.Fsync = store.FsyncAlways
	opts.FailPolicy = store.Shed
	opts.Admin = true
	c, err := Start(opts)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.WaitForTable(1, 5*time.Second); err != nil {
		t.Fatal(err)
	}
	subCl, err := c.NewClient(1, func(*core.Message, []core.SubscriptionID) {})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := subCl.Subscribe(fullSpace()); err != nil {
		t.Fatal(err)
	}
	time.Sleep(300 * time.Millisecond)

	victim := c.MatcherIDs()[0]
	d0 := c.Dispatchers()[0]
	ctrl.SetDiskFaults(fmt.Sprintf("matcher-%d", victim), chaos.DiskFaults{WriteErr: 1.0})
	ctrl.SetDiskFaults(fmt.Sprintf("dispatcher-%d", d0.ID()), chaos.DiskFaults{WriteErr: 1.0})

	// Trigger journal appends on both: an install for the matcher, a
	// pending record for the dispatcher.
	if _, err := subCl.Subscribe(fullSpace()); err != nil {
		t.Fatal(err)
	}
	pubCl, err := c.NewClient(0, nil)
	if err != nil {
		t.Fatal(err)
	}
	_ = pubCl.Publish([]float64{500, 500, 500, 500}, []byte("scrape-probe"))
	waitFor(t, 5*time.Second, func() bool {
		return c.Matcher(victim).JournalErrors.Value() > 0 && d0.JournalErrors.Value() > 0
	})

	checks := []struct {
		id      core.NodeID
		counter string
	}{
		{victim, "bluedove_matcher_journal_errors"},
		{d0.ID(), "bluedove_dispatcher_journal_errors"},
	}
	for _, chk := range checks {
		addr, ok := c.AdminAddr(chk.id)
		if !ok {
			t.Fatalf("no admin endpoint for node %d", chk.id)
		}
		scrape := httpGet(t, addr, "/metrics")
		if err := telemetry.CheckPrometheusText(scrape, []string{chk.counter, "bluedove_store_health"}); err != nil {
			t.Fatalf("node %d scrape missing durability series: %v", chk.id, err)
		}
		if v, ok := scrapeValue(scrape, chk.counter); !ok || v <= 0 {
			t.Fatalf("node %d: %s = %v (present=%v), want > 0\n%s", chk.id, chk.counter, v, ok, scrape)
		}
		if v, ok := scrapeValue(scrape, "bluedove_store_health"); !ok || v != 1 {
			t.Fatalf("node %d: bluedove_store_health = %v (present=%v), want 1 (degraded)", chk.id, v, ok)
		}
	}
}
