package cluster

import (
	"fmt"
	"math/rand"
	"strconv"
	"sync"
	"testing"
	"time"

	"bluedove/internal/chaos"
	"bluedove/internal/client"
	"bluedove/internal/core"
)

func fedOptions(matchers int) Options {
	o := fastOptions(matchers)
	o.FedSummaryInterval = 50 * time.Millisecond
	return o
}

// waitFor polls cond until it holds or the timeout elapses.
func fedWaitFor(t *testing.T, timeout time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// fedRecorder collects deliveries by payload (cross-cluster message IDs are
// reassigned on injection, so payloads are the stable identity).
type fedRecorder struct {
	mu   sync.Mutex
	seen map[string]int
}

func newFedRecorder() *fedRecorder { return &fedRecorder{seen: map[string]int{}} }

func (r *fedRecorder) onDeliver(m *core.Message, _ []core.SubscriptionID) {
	r.mu.Lock()
	r.seen[string(m.Payload)]++
	r.mu.Unlock()
}

func (r *fedRecorder) count(payload string) int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.seen[payload]
}

func (r *fedRecorder) total() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	n := 0
	for _, c := range r.seen {
		n += c
	}
	return n
}

// TestFederationRouting proves the basic cross-cluster path: a subscriber in
// cluster 2, a publisher in cluster 1, delivery across the border tier.
func TestFederationRouting(t *testing.T) {
	f, err := StartFederated(2, fedOptions(2))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := f.WaitForTables(1, 5*time.Second); err != nil {
		t.Fatal(err)
	}

	rec := newFedRecorder()
	sub, err := f.Clusters[1].NewClient(0, rec.onDeliver)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sub.Subscribe([]core.Range{{Low: 100, High: 200}, {Low: 0, High: 1000}, {Low: 0, High: 1000}, {Low: 0, High: 1000}}); err != nil {
		t.Fatal(err)
	}

	// Cluster 1's border must learn cluster 2's interest before routing.
	b1 := f.Clusters[0].Borders()[0]
	remote := f.Clusters[1].BorderAddrs()[0]
	fedWaitFor(t, 5*time.Second, "cluster 2 summary at cluster 1", func() bool {
		s := b1.RemoteSummary(remote)
		return s != nil && s.Matches([]float64{150, 500, 500, 500})
	})

	pub, err := f.Clusters[0].NewClient(0, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Publish until one lands: the border's aggregated subscription needs a
	// table-propagation round trip after the summary arrives.
	fedWaitFor(t, 10*time.Second, "cross-cluster delivery", func() bool {
		if err := pub.Publish([]float64{150, 500, 500, 500}, []byte("xc")); err != nil {
			return false
		}
		time.Sleep(20 * time.Millisecond)
		return rec.count("xc") > 0
	})

	// Disjoint publications stay home: nothing in cluster 2 wants dim0=900.
	before := rec.total()
	for i := 0; i < 20; i++ {
		if err := pub.Publish([]float64{900, 500, 500, 500}, []byte(fmt.Sprintf("miss-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	time.Sleep(300 * time.Millisecond)
	if got := rec.total(); got != before {
		t.Fatalf("disjoint publications crossed the border: %d deliveries appeared", got-before)
	}
	if b1.FedForwarded.Value() == 0 {
		t.Fatal("border forwarded nothing")
	}
}

// TestFederationEquivalence checks the federation's core property: the set
// of (subscriber predicate, publication) deliveries in a two-cluster
// federation equals the delivery set of one flat cluster with the same
// subscriptions and publications — covering riders included.
func TestFederationEquivalence(t *testing.T) {
	seed := chaosSeed(t)
	rng := rand.New(rand.NewSource(seed))
	t.Logf("CHAOS_SEED=%d", seed)

	type subSpec struct {
		preds   []core.Range
		cluster int
	}
	var subs []subSpec
	// A mix of narrow and wide subscriptions across both clusters, plus a
	// covered pair (one subscription strictly inside another) to exercise
	// covering riders across the summary path.
	for i := 0; i < 8; i++ {
		var preds []core.Range
		for d := 0; d < 4; d++ {
			lo := float64(rng.Intn(800))
			preds = append(preds, core.Range{Low: lo, High: lo + float64(50+rng.Intn(200))})
		}
		subs = append(subs, subSpec{preds, i % 2})
	}
	subs = append(subs,
		subSpec{[]core.Range{{Low: 100, High: 400}, {Low: 0, High: 1000}, {Low: 0, High: 1000}, {Low: 0, High: 1000}}, 1},
		subSpec{[]core.Range{{Low: 150, High: 350}, {Low: 200, High: 800}, {Low: 0, High: 1000}, {Low: 0, High: 1000}}, 1},
	)
	var pubs [][]float64
	for i := 0; i < 60; i++ {
		pubs = append(pubs, []float64{
			float64(rng.Intn(1000)), float64(rng.Intn(1000)),
			float64(rng.Intn(1000)), float64(rng.Intn(1000))})
	}

	// Brute-force oracle: which publications should reach each subscription.
	matches := func(preds []core.Range, attrs []float64) bool {
		for d, p := range preds {
			if attrs[d] < p.Low || attrs[d] >= p.High {
				return false
			}
		}
		return true
	}
	want := map[string]bool{} // "sub#/pub#"
	for si, s := range subs {
		for pi, p := range pubs {
			if matches(s.preds, p) {
				want[fmt.Sprintf("%d/%d", si, pi)] = true
			}
		}
	}

	opts := fedOptions(2)
	opts.Covering = true
	f, err := StartFederated(2, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := f.WaitForTables(1, 5*time.Second); err != nil {
		t.Fatal(err)
	}

	type subHandle struct {
		rec *fedRecorder
	}
	handles := make([]*subHandle, len(subs))
	for si, s := range subs {
		rec := newFedRecorder()
		cl, err := f.Clusters[s.cluster].NewClient(0, rec.onDeliver)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := cl.Subscribe(s.preds); err != nil {
			t.Fatal(err)
		}
		handles[si] = &subHandle{rec: rec}
	}

	// Both borders must cover every remote subscription before publishing,
	// or early publications legitimately miss (summaries are eventually
	// consistent; the equivalence claim is for the steady state).
	for ci := 0; ci < 2; ci++ {
		b := f.Clusters[ci].Borders()[0]
		remote := f.Clusters[1-ci].BorderAddrs()[0]
		remoteSubs := make([]subSpec, 0)
		for _, s := range subs {
			if s.cluster == 1-ci {
				remoteSubs = append(remoteSubs, s)
			}
		}
		fedWaitFor(t, 10*time.Second, fmt.Sprintf("summary convergence at cluster %d", ci+1), func() bool {
			sum := b.RemoteSummary(remote)
			if sum == nil {
				return false
			}
			for _, s := range remoteSubs {
				probe := make([]float64, 4)
				for d, p := range s.preds {
					probe[d] = (p.Low + p.High) / 2
				}
				if !sum.Matches(probe) {
					return false
				}
			}
			return true
		})
	}
	// The aggregated border subscriptions also need the local match path to
	// adopt them; give interest sync one extra cadence.
	time.Sleep(500 * time.Millisecond)

	pubClients := [2]*client.Client{}
	for ci := 0; ci < 2; ci++ {
		cl, err := f.Clusters[ci].NewClient(0, nil)
		if err != nil {
			t.Fatal(err)
		}
		pubClients[ci] = cl
	}
	for pi, p := range pubs {
		// Alternate the publishing cluster so both directions are exercised.
		if err := pubClients[pi%2].Publish(p, []byte(strconv.Itoa(pi))); err != nil {
			t.Fatal(err)
		}
	}

	fedWaitFor(t, 20*time.Second, "federated delivery set == flat oracle", func() bool {
		for si := range subs {
			for pi := range pubs {
				if want[fmt.Sprintf("%d/%d", si, pi)] && handles[si].rec.count(strconv.Itoa(pi)) == 0 {
					return false
				}
			}
		}
		return true
	})

	// No false deliveries: federation must never deliver what the oracle
	// says should not match (the remote cluster's real match path filters
	// summary false positives).
	for si := range subs {
		for pi := range pubs {
			got := handles[si].rec.count(strconv.Itoa(pi))
			if !want[fmt.Sprintf("%d/%d", si, pi)] && got > 0 {
				t.Errorf("sub %d wrongly received pub %d (%v)", si, pi, pubs[pi])
			}
		}
	}
}

// TestFederationSuppression proves summary routing suppresses disjoint
// traffic: with non-overlapping interest, nothing crosses the link.
func TestFederationSuppression(t *testing.T) {
	f, err := StartFederated(2, fedOptions(2))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := f.WaitForTables(1, 5*time.Second); err != nil {
		t.Fatal(err)
	}

	// Cluster 2 wants only dim0 in [800, 900); cluster 1 publishes far away.
	rec := newFedRecorder()
	sub, err := f.Clusters[1].NewClient(0, rec.onDeliver)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sub.Subscribe([]core.Range{{Low: 800, High: 900}, {Low: 0, High: 1000}, {Low: 0, High: 1000}, {Low: 0, High: 1000}}); err != nil {
		t.Fatal(err)
	}
	b1 := f.Clusters[0].Borders()[0]
	remote := f.Clusters[1].BorderAddrs()[0]
	fedWaitFor(t, 5*time.Second, "summary at cluster 1", func() bool {
		return b1.RemoteSummary(remote) != nil
	})

	// A local subscriber in cluster 1 overlapping the publications makes the
	// border's suppression observable (the publication is live locally, so
	// any cross-cluster copy would be pure waste).
	localRec := newFedRecorder()
	local, err := f.Clusters[0].NewClient(0, localRec.onDeliver)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := local.Subscribe([]core.Range{{Low: 0, High: 100}, {Low: 0, High: 1000}, {Low: 0, High: 1000}, {Low: 0, High: 1000}}); err != nil {
		t.Fatal(err)
	}

	pub, err := f.Clusters[0].NewClient(0, nil)
	if err != nil {
		t.Fatal(err)
	}
	fedWaitFor(t, 5*time.Second, "local deliveries", func() bool {
		if err := pub.Publish([]float64{50, 500, 500, 500}, []byte("home")); err != nil {
			return false
		}
		time.Sleep(10 * time.Millisecond)
		return localRec.count("home") > 0
	})
	time.Sleep(200 * time.Millisecond)
	if got := b1.FedForwarded.Value(); got != 0 {
		t.Fatalf("disjoint interest still forwarded %d publications", got)
	}
	if rec.total() != 0 {
		t.Fatalf("cluster 2 received %d deliveries it never subscribed to", rec.total())
	}
}

// TestFederationChaosLinkFlap injects a full inter-cluster partition in the
// middle of a publication burst, heals it, and requires zero acked loss:
// every publication the origin dispatcher admitted must reach the remote
// subscriber — the pending-forward queue plus FedAck settlement carries the
// flap.
func TestFederationChaosLinkFlap(t *testing.T) {
	seed := chaosSeed(t)
	t.Logf("CHAOS_SEED=%d", seed)
	ctrl := chaos.NewController(seed)

	opts := fedOptions(2)
	opts.Chaos = ctrl
	opts.Persistent = true
	f, err := StartFederated(2, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := f.WaitForTables(1, 5*time.Second); err != nil {
		t.Fatal(err)
	}

	rec := newFedRecorder()
	sub, err := f.Clusters[1].NewClient(0, rec.onDeliver)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sub.Subscribe([]core.Range{{Low: 0, High: 1000}, {Low: 0, High: 1000}, {Low: 0, High: 1000}, {Low: 0, High: 1000}}); err != nil {
		t.Fatal(err)
	}
	b1 := f.Clusters[0].Borders()[0]
	remote := f.Clusters[1].BorderAddrs()[0]
	fedWaitFor(t, 5*time.Second, "summary at cluster 1", func() bool {
		s := b1.RemoteSummary(remote)
		return s != nil && !s.Empty()
	})
	// Make sure the routed path works before injecting faults.
	pub, err := f.Clusters[0].NewAckClient(0)
	if err != nil {
		t.Fatal(err)
	}
	fedWaitFor(t, 10*time.Second, "pre-fault delivery", func() bool {
		if err := pub.Publish([]float64{500, 500, 500, 500}, []byte("warm")); err != nil {
			return false
		}
		time.Sleep(20 * time.Millisecond)
		return rec.count("warm") > 0
	})

	// Burst with a partition dropped in the middle and healed later. Every
	// acked publish must eventually arrive in cluster 2.
	const burst = 120
	acked := make([]string, 0, burst)
	rng := rand.New(rand.NewSource(seed))
	for i := 0; i < burst; i++ {
		if i == burst/3 {
			if err := f.PartitionBorderLinks(0, 1, true); err != nil {
				t.Fatal(err)
			}
		}
		if i == 2*burst/3 {
			if err := f.PartitionBorderLinks(0, 1, false); err != nil {
				t.Fatal(err)
			}
		}
		payload := fmt.Sprintf("burst-%d", i)
		attrs := []float64{float64(rng.Intn(1000)), float64(rng.Intn(1000)),
			float64(rng.Intn(1000)), float64(rng.Intn(1000))}
		if err := pub.Publish(attrs, []byte(payload)); err != nil {
			// Not admitted — not acked, so not part of the loss contract.
			continue
		}
		acked = append(acked, payload)
		time.Sleep(2 * time.Millisecond)
	}
	if len(acked) == 0 {
		t.Fatal("no publications were admitted")
	}

	fedWaitFor(t, 30*time.Second, "zero acked loss across the flap", func() bool {
		for _, p := range acked {
			if rec.count(p) == 0 {
				return false
			}
		}
		return true
	})
	if b1.Retries.Value() == 0 {
		t.Log("warning: flap produced no retries (partition may have fallen between sends)")
	}
}

// TestFederationTrace requires the cross-cluster hop to appear in the remote
// cluster's recorded traces: publish → ingest → forward → federate, then
// the remote dequeue/match/deliver stamped fresh.
func TestFederationTrace(t *testing.T) {
	opts := fedOptions(2)
	opts.TraceSampleRate = 1
	f, err := StartFederated(2, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := f.WaitForTables(1, 5*time.Second); err != nil {
		t.Fatal(err)
	}

	rec := newFedRecorder()
	sub, err := f.Clusters[1].NewClient(0, rec.onDeliver)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sub.Subscribe([]core.Range{{Low: 0, High: 1000}, {Low: 0, High: 1000}, {Low: 0, High: 1000}, {Low: 0, High: 1000}}); err != nil {
		t.Fatal(err)
	}
	b1 := f.Clusters[0].Borders()[0]
	remote := f.Clusters[1].BorderAddrs()[0]
	fedWaitFor(t, 5*time.Second, "summary at cluster 1", func() bool {
		s := b1.RemoteSummary(remote)
		return s != nil && !s.Empty()
	})
	pub, err := f.Clusters[0].NewClient(0, nil)
	if err != nil {
		t.Fatal(err)
	}
	fedWaitFor(t, 10*time.Second, "cross-cluster delivery", func() bool {
		if err := pub.Publish([]float64{500, 500, 500, 500}, []byte("traced")); err != nil {
			return false
		}
		time.Sleep(20 * time.Millisecond)
		return rec.count("traced") > 0
	})

	// Some matcher in cluster 2 must have recorded a trace carrying the
	// federate hop plus a complete intra-cluster path — the full
	// cross-cluster timeline /debug/traces renders.
	fedWaitFor(t, 10*time.Second, "federate hop in remote trace", func() bool {
		for _, id := range f.Clusters[1].MatcherIDs() {
			tel := f.Clusters[1].Telemetry(id)
			if tel == nil {
				continue
			}
			for _, tr := range tel.Tracer.Recent(64) {
				ctx := tr.Ctx
				if ctx.Hops[core.HopFederate] != 0 && ctx.Complete() {
					return true
				}
			}
		}
		return false
	})
}

