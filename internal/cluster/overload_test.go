package cluster

import (
	"errors"
	"fmt"
	"os"
	"strconv"
	"testing"
	"time"

	"bluedove/internal/chaos"
	"bluedove/internal/client"
	"bluedove/internal/core"
	"bluedove/internal/forward"
)

// chaosSeed resolves the run's chaos seed: randomized and printed for
// reproduction, overridden by CHAOS_SEED to replay a failure.
func chaosSeed(t *testing.T) int64 {
	t.Helper()
	seed := time.Now().UnixNano()
	if s := os.Getenv("CHAOS_SEED"); s != "" {
		v, err := strconv.ParseInt(s, 10, 64)
		if err != nil {
			t.Fatalf("bad CHAOS_SEED %q: %v", s, err)
		}
		seed = v
	}
	t.Logf("chaos seed %d (re-run with CHAOS_SEED=%d)", seed, seed)
	return seed
}

// TestOverloadSlowMatcherZeroAckedLoss is the headline overload test: one
// matcher is throttled to a small fraction of its service rate in the middle
// of a publication burst, with per-dimension stage queues bounded tightly.
// The throttled matcher's stages fill and busy-NACK further forwards, and
// the dispatchers must absorb the hot spot by re-routing the NACKed
// publications to sibling candidates — every acked publication still reaches
// the subscriber, with forward.rerouted > 0 proving the re-route path (not
// just the persistence retransmit timer) carried them.
func TestOverloadSlowMatcherZeroAckedLoss(t *testing.T) {
	seed := chaosSeed(t)
	ctrl := chaos.NewController(seed)
	defer ctrl.Close()
	opts := fastOptions(4)
	opts.Chaos = ctrl
	opts.Persistent = true
	opts.RetryInterval = 100 * time.Millisecond
	opts.MatcherQueueDepth = 4
	opts.RerouteBackoff = time.Millisecond
	// The load-blind Random policy keeps forwarding to the throttled hot
	// spot no matter what the load reports say — the overload layer (busy
	// NACK + re-route + breaker) alone must absorb it. The adaptive policy
	// would mask the mechanism under test by steering away early.
	opts.Policy = forward.NewRandom(seed)
	c, err := Start(opts)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.WaitForTable(1, 5*time.Second); err != nil {
		t.Fatal(err)
	}

	aud := chaos.NewAuditor()
	aud.Subscribed(1, fullSpace())
	subCl, err := c.NewClient(0, func(m *core.Message, _ []core.SubscriptionID) {
		aud.Delivered(1, m)
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := subCl.Subscribe(fullSpace()); err != nil {
		t.Fatal(err)
	}
	time.Sleep(300 * time.Millisecond) // let the stores land everywhere

	pubCl, err := c.NewClient(1, nil)
	if err != nil {
		t.Fatal(err)
	}

	// Throttle one matcher to well under 10% of its service rate mid-burst:
	// 50ms of extra work per publication dwarfs the sub-millisecond normal
	// matching cost, so its 4-deep stages back up within a handful of
	// forwards while the burst is still arriving.
	victim := c.MatcherIDs()[0]
	throttledAt := time.Time{}
	run := chaos.NewScenario().
		At(10 * time.Millisecond).Do(func() {
		throttledAt = time.Now()
		if !c.ThrottleMatcher(victim, 50*time.Millisecond) {
			t.Errorf("throttle matcher %v: unknown id", victim)
		}
	}).Run(ctrl)
	defer run.Stop()

	const burst = 300
	for i := 0; i < burst; i++ {
		token := fmt.Sprintf("slow-%03d", i)
		attrs := []float64{float64((i * 37) % 1000), float64((i * 59) % 1000),
			float64((i * 83) % 1000), float64((i * 101) % 1000)}
		if err := pubCl.Publish(attrs, []byte(token)); err != nil {
			t.Fatalf("publish %d rejected: %v", i, err)
		}
		aud.Published(token, attrs) // acked: the invariant now covers it
		time.Sleep(100 * time.Microsecond)
	}
	run.Wait()
	if throttledAt.IsZero() {
		t.Fatal("scenario never throttled the victim")
	}

	if err := aud.WaitComplete(30 * time.Second); err != nil {
		t.Fatalf("seed %d: %v", seed, err)
	}
	if got, want := aud.Expected(), burst; got != want {
		t.Fatalf("auditor expected %d deliveries, want %d", got, want)
	}

	var busy, rerouted int64
	for _, d := range c.Dispatchers() {
		busy += d.BusyReceived.Value()
		rerouted += d.Rerouted.Value()
	}
	nacks := c.Matcher(victim).BusyNacks.Value()
	if busy == 0 || nacks == 0 {
		t.Fatalf("seed %d: throttled matcher never busy-NACKed (matcher nacks=%d, dispatcher busy=%d) — test lost its teeth",
			seed, nacks, busy)
	}
	if rerouted == 0 {
		t.Fatalf("seed %d: busy NACKs received (%d) but nothing re-routed", seed, busy)
	}
	gap, resumedAt := aud.FirstDeliveryGap(throttledAt)
	t.Logf("seed %d: %d/%d acked publications delivered through overload "+
		"(%d busy NACKs, %d rerouted, %d duplicates); longest stall after throttle %v (resumed %v after)",
		seed, burst, burst, busy, rerouted, aud.Duplicates(), gap, resumedAt.Sub(throttledAt))
}

// TestOverloadAdmissionControl: a dispatcher over its unacked bound must
// reject further acked publishes with a typed overload error instead of
// accepting work it cannot track, and recover once the backlog drains.
func TestOverloadAdmissionControl(t *testing.T) {
	opts := fastOptions(2)
	opts.Persistent = true
	opts.RetryInterval = 50 * time.Millisecond
	opts.AdmissionLimit = 8
	c, err := Start(opts)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.WaitForTable(1, 5*time.Second); err != nil {
		t.Fatal(err)
	}
	// Black-hole every matcher so no forward is ever acked: the dispatcher's
	// inflight table can only grow.
	for _, id := range c.MatcherIDs() {
		addr, _ := c.MatcherAddr(id)
		for _, daddr := range c.DispatcherAddrs() {
			if err := c.PartitionLink(daddr, addr, true); err != nil {
				t.Fatal(err)
			}
		}
	}
	pubCl, err := c.NewAckClient(0)
	if err != nil {
		t.Fatal(err)
	}
	var rejected error
	for i := 0; i < opts.AdmissionLimit+4; i++ {
		if err := pubCl.Publish([]float64{500, 500, 500, 500}, nil); err != nil {
			rejected = err
			break
		}
	}
	if rejected == nil {
		t.Fatal("dispatcher over its admission limit rejected nothing")
	}
	if !errors.Is(rejected, client.ErrOverloaded) {
		t.Fatalf("rejection error = %v, want client.ErrOverloaded", rejected)
	}
	d := c.Dispatchers()[0]
	if got := d.Overloaded.Value(); got == 0 {
		t.Fatal("dispatcher.overloaded counter did not move")
	}
	if got := d.InflightLen(); got > opts.AdmissionLimit {
		t.Fatalf("inflight table grew to %d, admission limit %d", got, opts.AdmissionLimit)
	}
}
