package cluster

import (
	"errors"
	"fmt"
	"path/filepath"
	"time"

	"bluedove/internal/transport"
)

// Federation is a multi-cluster topology: n complete clusters sharing one
// in-process mesh (or plain TCP), with every cluster's border nodes fully
// meshed against every other cluster's. Tests and experiments use it to
// drive cross-cluster scenarios without real networks.
type Federation struct {
	Clusters []*Cluster
	mesh     *transport.Mesh // nil on TCP federations
}

// StartFederated boots n clusters from the same base options. Each cluster
// gets ClusterID i+1 and (on the mesh) label prefix "c<i+1>-" so node labels
// stay unique on the shared mesh; DataDir, when set, is subdivided per
// cluster. The border mesh is wired full-duplex after every cluster is up.
func StartFederated(n int, base Options) (*Federation, error) {
	if n < 2 {
		return nil, errors.New("cluster: a federation needs at least 2 clusters")
	}
	f := &Federation{}
	if !base.TCP {
		f.mesh = transport.NewMesh(0)
	}
	for i := 0; i < n; i++ {
		o := base
		o.Federation = true
		o.ClusterID = uint64(i + 1)
		o.LabelPrefix = fmt.Sprintf("c%d-", i+1)
		o.Mesh = f.mesh
		o.FedPeers = nil
		if base.DataDir != "" {
			o.DataDir = filepath.Join(base.DataDir, fmt.Sprintf("c%d", i+1))
		}
		c, err := Start(o)
		if err != nil {
			f.Close()
			return nil, err
		}
		f.Clusters = append(f.Clusters, c)
	}
	for i, c := range f.Clusters {
		var peers []string
		for j, o := range f.Clusters {
			if j == i {
				continue
			}
			peers = append(peers, o.BorderAddrs()...)
		}
		for _, b := range c.Borders() {
			b.SetPeers(peers)
		}
	}
	return f, nil
}

// WaitForTables blocks until every cluster's dispatchers hold a partition
// table of at least the given version — the point at which subscriptions
// and publications route. Call it before driving traffic.
func (f *Federation) WaitForTables(version uint64, timeout time.Duration) error {
	for i, c := range f.Clusters {
		if err := c.WaitForTable(version, timeout); err != nil {
			return fmt.Errorf("cluster %d: %w", i+1, err)
		}
	}
	return nil
}

// PartitionBorderLinks cuts (or heals) every directed mesh link between
// cluster i's borders and cluster j's borders — the inter-cluster link flap
// chaos scenarios inject. Mesh federations only.
func (f *Federation) PartitionBorderLinks(i, j int, cut bool) error {
	if f.mesh == nil {
		return errors.New("cluster: border partitions require the in-process mesh")
	}
	if i < 0 || i >= len(f.Clusters) || j < 0 || j >= len(f.Clusters) {
		return fmt.Errorf("cluster: federation index out of range (%d, %d)", i, j)
	}
	for _, a := range f.Clusters[i].BorderAddrs() {
		for _, b := range f.Clusters[j].BorderAddrs() {
			f.mesh.Partition(a, b, cut)
			f.mesh.Partition(b, a, cut)
		}
	}
	return nil
}

// Close stops every cluster, then the shared mesh.
func (f *Federation) Close() {
	for _, c := range f.Clusters {
		c.Close()
	}
	if f.mesh != nil {
		f.mesh.Close()
	}
}
