package federation

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"bluedove/internal/core"
	"bluedove/internal/forward"
	"bluedove/internal/gossip"
	"bluedove/internal/metrics"
	"bluedove/internal/telemetry"
	"bluedove/internal/transport"
	"bluedove/internal/wire"
)

// Config parameterizes one border node.
type Config struct {
	// ID is this border's node ID; required, unique across the whole local
	// cluster (borders share the dispatcher/matcher gossip ID space).
	// Locally injected remote publications carry ID<<40|seq message IDs, so
	// the delivery loop guard depends on this uniqueness.
	ID core.NodeID
	// Addr is the listen address for deliveries, gossip and peer-cluster
	// frames; peer clusters must be configured with the bound address.
	Addr string
	// Space is the cluster's attribute space; required.
	Space *core.Space
	// Transport carries all traffic; required.
	Transport transport.Transport
	// Seeds bootstrap membership in the local cluster's gossip overlay.
	Seeds []string
	// Cluster is this cluster's federation ID; required, nonzero, unique
	// across the federation (the loop guard and cross-cluster message
	// identity are keyed on it).
	Cluster uint64
	// Peers lists peer-cluster border addresses (the inter-cluster mesh).
	// More links can be added after start with SetPeers.
	Peers []string
	// SummaryInterval is the cadence of the matcher summary pull and
	// interest sync loop (default 1s).
	SummaryInterval time.Duration
	// AnnounceEvery sends a full SummaryAnnounce every n-th summary round
	// as anti-entropy for lost deltas (default 5).
	AnnounceEvery int
	// MaxRangesPerDim caps the cluster summary's interval count per
	// dimension; tighter caps mean smaller exchanges but more
	// false-positive forwarding (default 64).
	MaxRangesPerDim int
	// MaxHops bounds inter-cluster hops; 1 (the default) federates only
	// over direct links, >1 lets borders relay for partially connected
	// meshes.
	MaxHops int
	// RequestTimeout bounds every outbound request (default 5s).
	RequestTimeout time.Duration
	// RetryMax caps the backoff between FedPublish retries (default 2s).
	RetryMax time.Duration
	// MaxPending bounds each peer link's pending-forward queue and the
	// local injection queue. A full injection queue refuses (rather than
	// acks) incoming FedPublish frames so an acked publication is never
	// dropped (default 65536).
	MaxPending int
	// BreakerThreshold and BreakerCooldown parameterize the per-peer
	// circuit breaker (defaults 5 failures, 1s cooldown).
	BreakerThreshold int
	BreakerCooldown  time.Duration
	// DedupWindow is the size of the (origin, id) receive-dedup ring and
	// the local delivery dedup ring (default 8192).
	DedupWindow int
	// GossipInterval, FailAfter, Generation tune local-cluster membership.
	GossipInterval time.Duration
	FailAfter      time.Duration
	Generation     uint64
	// Seed drives retry jitter (default derived from ID).
	Seed int64
	// Telemetry, when set, registers federation.* series.
	Telemetry *telemetry.Telemetry
	// Now supplies the clock in nanoseconds (default time.Now).
	Now func() int64
}

func (c *Config) defaults() error {
	if c.ID == 0 || c.Space == nil || c.Transport == nil || c.Cluster == 0 {
		return errors.New("federation: ID, Space, Transport and Cluster are required")
	}
	if c.SummaryInterval <= 0 {
		c.SummaryInterval = time.Second
	}
	if c.AnnounceEvery <= 0 {
		c.AnnounceEvery = 5
	}
	if c.MaxRangesPerDim <= 0 {
		c.MaxRangesPerDim = 64
	}
	if c.MaxHops <= 0 {
		c.MaxHops = 1
	}
	if c.RequestTimeout <= 0 {
		c.RequestTimeout = 5 * time.Second
	}
	if c.RetryMax <= 0 {
		c.RetryMax = 2 * time.Second
	}
	if c.MaxPending <= 0 {
		c.MaxPending = 65536
	}
	if c.BreakerCooldown <= 0 {
		c.BreakerCooldown = time.Second
	}
	if c.DedupWindow <= 0 {
		c.DedupWindow = 8192
	}
	if c.Seed == 0 {
		c.Seed = int64(c.ID)*0x9e3779b9 + int64(c.Cluster)
	}
	if c.Now == nil {
		c.Now = func() int64 { return time.Now().UnixNano() }
	}
	return nil
}

// fedKey is the cross-cluster identity of a publication: the origin cluster
// plus the message ID the origin cluster assigned. Local delivery dedup uses
// origin 0 with the local message ID.
type fedKey struct {
	origin uint64
	id     core.MessageID
}

// dedupRing is a bounded seen-set: at capacity the oldest key is forgotten.
type dedupRing struct {
	seen  map[fedKey]struct{}
	order []fedKey
	next  int
	cap   int
}

func newDedupRing(capacity int) *dedupRing {
	return &dedupRing{seen: make(map[fedKey]struct{}), cap: capacity}
}

// add records k and reports whether it was new.
func (r *dedupRing) add(k fedKey) bool {
	if _, ok := r.seen[k]; ok {
		return false
	}
	if len(r.order) < r.cap {
		r.order = append(r.order, k)
	} else {
		delete(r.seen, r.order[r.next])
		r.order[r.next] = k
		r.next = (r.next + 1) % r.cap
	}
	r.seen[k] = struct{}{}
	return true
}

// fedItem is one pending forward on a peer link.
type fedItem struct {
	origin uint64
	hops   uint8
	msg    *core.Message
}

// link is one peer-cluster border connection: the remote summary it last
// announced, the aggregated local subscription representing it, and the
// pending-forward queue drained by a dedicated worker.
type link struct {
	idx  int
	addr string
	// node keys the per-peer circuit breaker.
	node core.NodeID

	qmu    sync.Mutex
	cond   *sync.Cond
	queue  []*fedItem
	closed bool

	// subMu serializes interest-subscription updates for this link.
	subMu sync.Mutex

	// Guarded by Border.mu:
	cluster   uint64
	sum       *Summary
	subID     core.SubscriptionID
	subCuboid []core.Range

	// up mirrors the last send outcome (the peer_up telemetry gauge).
	up atomic.Bool
}

// Border is one border node: it joins the local cluster's gossip overlay as
// core.RoleBorder, keeps an aggregated interest subscription per peer
// cluster so remotely-interesting publications reach it through the normal
// match path, and exchanges summaries and publications with peer borders.
type Border struct {
	cfg  Config
	addr string
	gsp  *gossip.Gossiper
	brk  *forward.Breaker
	stop chan struct{}
	wg   sync.WaitGroup

	mu          sync.Mutex
	links       []*link
	local       *Summary
	matcherVer  map[core.NodeID]uint64
	matcherDims map[core.NodeID][][]core.Range
	borderIDs   map[core.NodeID]bool
	fwdSeen     *dedupRing
	recvSeen    *dedupRing
	round       uint64

	nextMsg atomic.Uint64

	imu     sync.Mutex
	icond   *sync.Cond
	injq    []*core.Message
	iclosed bool

	// Telemetry counters (federation.* series).
	FedPublished  metrics.Counter
	FedForwarded  metrics.Counter
	FedSuppressed metrics.Counter
	FedReceived   metrics.Counter
	FedInjected   metrics.Counter
	Duplicates    metrics.Counter
	LoopDropped   metrics.Counter
	Retries       metrics.Counter
	Malformed     metrics.Counter
	Rejected      metrics.Counter
}

// Start listens, joins the local gossip overlay and begins the summary and
// forwarding loops.
func Start(cfg Config) (*Border, error) {
	if err := cfg.defaults(); err != nil {
		return nil, err
	}
	b := &Border{
		cfg:         cfg,
		stop:        make(chan struct{}),
		matcherVer:  map[core.NodeID]uint64{},
		matcherDims: map[core.NodeID][][]core.Range{},
		borderIDs:   map[core.NodeID]bool{},
		fwdSeen:     newDedupRing(cfg.DedupWindow),
		recvSeen:    newDedupRing(cfg.DedupWindow),
	}
	b.icond = sync.NewCond(&b.imu)
	b.brk = forward.NewBreaker(cfg.BreakerThreshold, cfg.BreakerCooldown, cfg.Now)
	addr, err := cfg.Transport.Listen(cfg.Addr, b.handle)
	if err != nil {
		return nil, err
	}
	b.addr = addr
	g, err := gossip.New(gossip.Config{
		ID:         cfg.ID,
		Addr:       addr,
		Role:       core.RoleBorder,
		Transport:  cfg.Transport,
		Seeds:      cfg.Seeds,
		Interval:   cfg.GossipInterval,
		FailAfter:  cfg.FailAfter,
		Generation: cfg.Generation,
		Now:        cfg.Now,
	})
	if err != nil {
		return nil, err
	}
	b.mu.Lock()
	b.gsp = g
	b.mu.Unlock()
	g.Start()
	b.registerTelemetry()
	for _, p := range cfg.Peers {
		b.addLink(p)
	}
	b.wg.Add(2)
	go b.summaryLoop()
	go b.injectLoop()
	return b, nil
}

// Stop shuts the border down. Pending forwards and injections not yet acked
// are dropped with the process — pending-forward durability spans link
// faults, not border restarts (see DESIGN.md).
func (b *Border) Stop() {
	b.mu.Lock()
	select {
	case <-b.stop:
		b.mu.Unlock()
		return
	default:
		close(b.stop)
	}
	links := append([]*link(nil), b.links...)
	b.mu.Unlock()
	for _, l := range links {
		l.qmu.Lock()
		l.closed = true
		l.cond.Broadcast()
		l.qmu.Unlock()
	}
	b.imu.Lock()
	b.iclosed = true
	b.icond.Broadcast()
	b.imu.Unlock()
	b.gsp.Stop()
	b.wg.Wait()
}

// Addr returns the bound listen address.
func (b *Border) Addr() string { return b.addr }

// SetPeers adds links for any peer addresses not yet known. Existing links
// are kept; federation meshes only grow at runtime.
func (b *Border) SetPeers(addrs []string) {
	for _, a := range addrs {
		b.addLink(a)
	}
}

// LocalSummary returns a clone of the current cluster summary (nil before
// the first refresh).
func (b *Border) LocalSummary() *Summary {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.local.Clone()
}

// RemoteSummary returns a clone of the last summary announced by the peer
// at addr (nil while unknown).
func (b *Border) RemoteSummary(addr string) *Summary {
	b.mu.Lock()
	defer b.mu.Unlock()
	for _, l := range b.links {
		if l.addr == addr {
			return l.sum.Clone()
		}
	}
	return nil
}

// PendingTotal counts queued-but-unacked forwards across all links plus
// accepted-but-uninjected remote publications.
func (b *Border) PendingTotal() int {
	b.mu.Lock()
	links := append([]*link(nil), b.links...)
	b.mu.Unlock()
	n := 0
	for _, l := range links {
		l.qmu.Lock()
		n += len(l.queue)
		l.qmu.Unlock()
	}
	b.imu.Lock()
	n += len(b.injq)
	b.imu.Unlock()
	return n
}

func (b *Border) addLink(addr string) {
	if addr == "" || addr == b.addr {
		return
	}
	b.mu.Lock()
	for _, l := range b.links {
		if l.addr == addr {
			b.mu.Unlock()
			return
		}
	}
	l := &link{idx: len(b.links), addr: addr}
	l.node = core.NodeID(l.idx + 1)
	l.cond = sync.NewCond(&l.qmu)
	b.links = append(b.links, l)
	b.mu.Unlock()
	if b.cfg.Telemetry != nil {
		r := b.cfg.Telemetry.Registry
		peer := telemetry.L("peer", l.addr)
		r.Gauge("federation.peer_up", "1 when the last send on this peer link succeeded",
			func(int64) float64 {
				if l.up.Load() {
					return 1
				}
				return 0
			}, peer)
		r.Gauge("federation.peer_pending", "forwards queued for this peer and not yet acked",
			func(int64) float64 {
				l.qmu.Lock()
				defer l.qmu.Unlock()
				return float64(len(l.queue))
			}, peer)
		r.Gauge("federation.peer_breaker_open", "per-peer circuit state: 0 closed, 0.5 half-open, 1 open",
			func(int64) float64 {
				switch b.brk.State(l.node) {
				case "open":
					return 1
				case "half-open":
					return 0.5
				}
				return 0
			}, peer)
	}
	b.wg.Add(1)
	go b.linkLoop(l)
}

func (b *Border) registerTelemetry() {
	if b.cfg.Telemetry == nil {
		return
	}
	r := b.cfg.Telemetry.Registry
	r.Gauge("node.info", "constant 1; labels identify the node", func(int64) float64 { return 1 })
	r.Counter("federation.fed_published", "local publications that reached the border for federation", &b.FedPublished)
	r.Counter("federation.fed_forwarded", "FedPublish frames acked by peer clusters", &b.FedForwarded)
	r.Counter("federation.fed_suppressed", "per-peer forwards suppressed because the peer summary does not match", &b.FedSuppressed)
	r.Counter("federation.fed_received", "FedPublish frames received from peer clusters", &b.FedReceived)
	r.Counter("federation.fed_injected", "remote publications injected into the local cluster", &b.FedInjected)
	r.Counter("federation.duplicates", "cross-cluster duplicates dropped by the (origin, id) window", &b.Duplicates)
	r.Counter("federation.loop_dropped", "frames dropped by the origin-cluster/hop-count loop guard", &b.LoopDropped)
	r.Counter("federation.retries", "FedPublish send attempts that failed and were retried", &b.Retries)
	r.Counter("federation.malformed", "malformed or hostile federation frames dropped", &b.Malformed)
	r.Counter("federation.rejected", "forwards dropped at a full pending queue", &b.Rejected)
	r.Counter("federation.breaker_tripped", "per-peer circuit breaker closed-to-open transitions", &b.brk.Tripped)
	r.Counter("gossip.bytes", "gossip payload traffic", &b.gsp.Bytes)
	r.Gauge("federation.summary_size", "intervals in the local cluster summary across dimensions", func(int64) float64 {
		b.mu.Lock()
		defer b.mu.Unlock()
		return float64(b.local.Size())
	})
	r.Gauge("federation.summary_version", "local cluster summary version", func(int64) float64 {
		b.mu.Lock()
		defer b.mu.Unlock()
		if b.local == nil {
			return 0
		}
		return float64(b.local.Version)
	})
	r.Gauge("federation.pending", "pending forwards plus accepted-but-uninjected remote publications", func(int64) float64 {
		return float64(b.PendingTotal())
	})
	r.Gauge("federation.peers", "configured peer links", func(int64) float64 {
		b.mu.Lock()
		defer b.mu.Unlock()
		return float64(len(b.links))
	})
	tr := b.cfg.Telemetry.Tracer
	r.Gauge("trace.completed", "traces recorded on this node", func(int64) float64 {
		return float64(tr.Total())
	})
}

// ---- transport handler ----

func (b *Border) handle(env *wire.Envelope) *wire.Envelope {
	switch env.Kind {
	case wire.KindGossip:
		if g := b.gossiper(); g != nil {
			return g.HandleGossip(env)
		}
		return nil
	case wire.KindDeliver:
		if d, err := wire.DecodeDeliver(env.Body); err == nil {
			b.fanOut(d.Msg)
		} else {
			b.Malformed.Add(1)
		}
		return nil
	case wire.KindDeliverBatch:
		if db, err := wire.DecodeDeliverBatch(env.Body); err == nil {
			for i := range db.Deliveries {
				b.fanOut(db.Deliveries[i].Msg)
			}
		} else {
			b.Malformed.Add(1)
		}
		return nil
	case wire.KindSummaryAnnounce:
		b.onAnnounce(env)
		return nil
	case wire.KindSummaryDelta:
		b.onDelta(env)
		return nil
	case wire.KindFedPublish:
		return b.onFedPublish(env)
	}
	return nil
}

func (b *Border) gossiper() *gossip.Gossiper {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.gsp
}

// ---- outbound: local deliveries fan out to matching peer clusters ----

// fanOut routes one locally-delivered publication toward every peer cluster
// whose summary matches it. Deliveries reach the border through the
// aggregated per-peer cuboid subscriptions, so a cuboid hit whose full
// summary misses is exactly the suppression the interval lists buy over
// plain bounding boxes.
func (b *Border) fanOut(msg *core.Message) {
	if msg == nil {
		return
	}
	if b.isLocalBorderID(msg.ID) {
		// A publication this cluster's border tier injected on behalf of a
		// remote cluster: matching it back to the border is the loop the
		// guard exists to break.
		b.LoopDropped.Add(1)
		return
	}
	b.mu.Lock()
	if !b.fwdSeen.add(fedKey{0, msg.ID}) {
		// Same publication delivered again (overlapping per-peer cuboids or
		// a matcher retransmit): the first arrival already evaluated every
		// peer.
		b.mu.Unlock()
		return
	}
	links := append([]*link(nil), b.links...)
	sums := make([]*Summary, len(links))
	for i, l := range links {
		sums[i] = l.sum
	}
	b.mu.Unlock()
	b.FedPublished.Add(1)
	var fwd *core.Message
	for i, l := range links {
		if sums[i] == nil {
			continue
		}
		if !sums[i].Matches(msg.Attrs) {
			b.FedSuppressed.Add(1)
			continue
		}
		if fwd == nil {
			fwd = b.fedClone(msg)
			if fwd.Trace != nil && b.cfg.Telemetry != nil {
				b.cfg.Telemetry.Tracer.Record(msg.ID, fwd.Trace)
			}
		}
		b.enqueue(l, &fedItem{origin: b.cfg.Cluster, hops: 1, msg: fwd})
	}
}

// fedClone prepares the cross-cluster copy of a publication: the upstream
// hops (publish, ingest, forward) are kept so the remote timeline starts at
// the true publish instant, the downstream hops are cleared so the remote
// cluster's stamp-if-unset fills them with its own dequeue/match/deliver
// times, and the federate hop marks the cluster boundary.
func (b *Border) fedClone(msg *core.Message) *core.Message {
	c := msg.Clone()
	if c.Trace != nil {
		t := &core.TraceCtx{ID: c.Trace.ID, Dispatcher: c.Trace.Dispatcher}
		t.Hops[core.HopPublish] = c.Trace.Hops[core.HopPublish]
		t.Hops[core.HopIngest] = c.Trace.Hops[core.HopIngest]
		t.Hops[core.HopForward] = c.Trace.Hops[core.HopForward]
		t.Stamp(core.HopFederate, b.cfg.Now())
		c.Trace = t
	}
	return c
}

// isLocalBorderID reports whether the message ID was assigned by this
// cluster's border tier (IDs carry the assigning node in the top bits).
// Border IDs seen via gossip are remembered stickily so a border's in-flight
// injections keep being recognized briefly past its death.
func (b *Border) isLocalBorderID(id core.MessageID) bool {
	nid := core.NodeID(uint64(id) >> 40)
	if nid == b.cfg.ID {
		return true
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.borderIDs[nid]
}

func (b *Border) enqueue(l *link, it *fedItem) {
	l.qmu.Lock()
	defer l.qmu.Unlock()
	if l.closed {
		return
	}
	if len(l.queue) >= b.cfg.MaxPending {
		b.Rejected.Add(1)
		return
	}
	l.queue = append(l.queue, it)
	l.cond.Signal()
}

// linkLoop drains one peer link's pending queue. The head is retried with
// capped jittered backoff until the peer acks it; the per-peer breaker stops
// hammering a dead link while the queue retains everything.
func (b *Border) linkLoop(l *link) {
	defer b.wg.Done()
	rng := rand.New(rand.NewSource(b.cfg.Seed ^ (int64(l.idx+1) * 0x9e3779b9)))
	attempt := 0
	for {
		l.qmu.Lock()
		for len(l.queue) == 0 && !l.closed {
			l.cond.Wait()
		}
		if l.closed {
			l.qmu.Unlock()
			return
		}
		it := l.queue[0]
		l.qmu.Unlock()
		if !b.brk.Routable(l.node) {
			if b.sleepFor(b.cfg.BreakerCooldown / 2) {
				return
			}
			continue
		}
		body := (&wire.FedPublishBody{Origin: it.origin, Sender: b.cfg.Cluster, Hops: it.hops, Msg: it.msg}).Encode()
		resp, err := b.cfg.Transport.Request(l.addr,
			&wire.Envelope{Kind: wire.KindFedPublish, From: b.cfg.ID, Body: body}, b.cfg.RequestTimeout)
		if err == nil && resp != nil && resp.Kind == wire.KindFedAck {
			b.brk.Success(l.node)
			l.up.Store(true)
			attempt = 0
			b.FedForwarded.Add(1)
			l.qmu.Lock()
			if len(l.queue) > 0 && l.queue[0] == it {
				l.queue = l.queue[1:]
			}
			l.qmu.Unlock()
			continue
		}
		b.brk.Failure(l.node)
		l.up.Store(false)
		b.Retries.Add(1)
		attempt++
		d := time.Duration(1<<min(attempt, 8)) * 5 * time.Millisecond
		if d > b.cfg.RetryMax {
			d = b.cfg.RetryMax
		}
		if b.sleepFor(time.Millisecond + time.Duration(rng.Int63n(int64(d)))) {
			return
		}
	}
}

func (b *Border) sleepFor(d time.Duration) (stopped bool) {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-b.stop:
		return true
	case <-t.C:
		return false
	}
}

// ---- inbound: FedPublish from peer clusters ----

func (b *Border) onFedPublish(env *wire.Envelope) *wire.Envelope {
	fp, err := wire.DecodeFedPublish(env.Body)
	if err != nil || fp.Msg == nil {
		b.Malformed.Add(1)
		return b.errEnv(fmt.Errorf("federation: bad fed-publish: %v", err))
	}
	b.FedReceived.Add(1)
	ack := func(dup bool) *wire.Envelope {
		return &wire.Envelope{Kind: wire.KindFedAck, From: b.cfg.ID,
			Body: (&wire.FedAckBody{Origin: fp.Origin, ID: fp.Msg.ID, Dup: dup}).Encode()}
	}
	// Loop guards: our own cluster's publication coming back, or a frame
	// that already used up its hop budget. Both are acked — the sender must
	// settle its pending entry; the frame is just not propagated.
	if fp.Origin == b.cfg.Cluster || int(fp.Hops) > b.cfg.MaxHops {
		b.LoopDropped.Add(1)
		return ack(false)
	}
	if err := fp.Msg.Validate(b.cfg.Space); err != nil {
		// A poison frame must not wedge the sender's queue: ack it away.
		b.Malformed.Add(1)
		return ack(false)
	}
	// Refuse (no ack) while the injection queue is full so responsibility
	// stays with the sender; acked publications are never dropped.
	b.imu.Lock()
	full := b.iclosed || len(b.injq) >= b.cfg.MaxPending
	b.imu.Unlock()
	if full {
		b.Rejected.Add(1)
		return b.errEnv(errors.New("federation: injection queue full"))
	}
	b.mu.Lock()
	fresh := b.recvSeen.add(fedKey{fp.Origin, fp.Msg.ID})
	b.mu.Unlock()
	if !fresh {
		b.Duplicates.Add(1)
		return ack(true)
	}
	b.relay(fp)
	inj := fp.Msg.Clone()
	inj.ID = core.MessageID(uint64(b.cfg.ID)<<40 | (b.nextMsg.Add(1) & ((1 << 40) - 1)))
	inj.PublishedAt = 0
	b.imu.Lock()
	if !b.iclosed {
		b.injq = append(b.injq, inj)
		b.icond.Signal()
	}
	b.imu.Unlock()
	return ack(false)
}

// relay forwards an accepted remote publication onward when the hop budget
// allows (MaxHops > 1, partially connected meshes). The origin cluster and
// the sending cluster are skipped; the hop count increments.
func (b *Border) relay(fp *wire.FedPublishBody) {
	if int(fp.Hops) >= b.cfg.MaxHops {
		return
	}
	b.mu.Lock()
	links := append([]*link(nil), b.links...)
	sums := make([]*Summary, len(links))
	clusters := make([]uint64, len(links))
	for i, l := range links {
		sums[i] = l.sum
		clusters[i] = l.cluster
	}
	b.mu.Unlock()
	for i, l := range links {
		if sums[i] == nil || clusters[i] == fp.Origin || clusters[i] == fp.Sender {
			continue
		}
		if !sums[i].Matches(fp.Msg.Attrs) {
			b.FedSuppressed.Add(1)
			continue
		}
		b.enqueue(l, &fedItem{origin: fp.Origin, hops: fp.Hops + 1, msg: fp.Msg})
	}
}

// injectLoop publishes accepted remote publications into the local cluster
// through a live dispatcher, retrying until one admits each.
func (b *Border) injectLoop() {
	defer b.wg.Done()
	rng := rand.New(rand.NewSource(b.cfg.Seed ^ 0x5bd1e995))
	for {
		b.imu.Lock()
		for len(b.injq) == 0 && !b.iclosed {
			b.icond.Wait()
		}
		if b.iclosed {
			b.imu.Unlock()
			return
		}
		msg := b.injq[0]
		b.imu.Unlock()
		if b.injectOnce(msg) {
			b.FedInjected.Add(1)
			b.imu.Lock()
			if len(b.injq) > 0 && b.injq[0] == msg {
				b.injq = b.injq[1:]
			}
			b.imu.Unlock()
			continue
		}
		if b.sleepFor(20*time.Millisecond + time.Duration(rng.Int63n(int64(30*time.Millisecond)))) {
			return
		}
	}
}

func (b *Border) injectOnce(msg *core.Message) bool {
	for _, addr := range b.dispatcherAddrs() {
		resp, err := b.cfg.Transport.Request(addr,
			&wire.Envelope{Kind: wire.KindPublishReq, From: b.cfg.ID,
				Body: (&wire.PublishBody{Msg: msg}).Encode()}, b.cfg.RequestTimeout)
		if err == nil && resp != nil && resp.Kind == wire.KindPublishAck {
			return true
		}
	}
	return false
}

// dispatcherAddrs lists live local dispatchers, lowest ID first.
func (b *Border) dispatcherAddrs() []string {
	g := b.gossiper()
	if g == nil {
		return nil
	}
	peers := g.Peers()
	sort.Slice(peers, func(i, j int) bool { return peers[i].ID < peers[j].ID })
	var out []string
	for _, p := range peers {
		if p.Role == core.RoleDispatcher && p.Alive {
			out = append(out, p.Addr)
		}
	}
	return out
}

// ---- summary exchange ----

func (b *Border) summaryLoop() {
	defer b.wg.Done()
	t := time.NewTicker(b.cfg.SummaryInterval)
	defer t.Stop()
	for {
		select {
		case <-b.stop:
			return
		case <-t.C:
			b.refreshBorderIDs()
			b.refreshSummary()
			b.syncInterests()
		}
	}
}

// refreshBorderIDs accumulates every border node ID seen in the local
// overlay (sticky: a dead border's in-flight injections must still be
// recognized by the delivery loop guard).
func (b *Border) refreshBorderIDs() {
	g := b.gossiper()
	if g == nil {
		return
	}
	for _, p := range g.Peers() {
		if p.Role == core.RoleBorder {
			b.mu.Lock()
			b.borderIDs[p.ID] = true
			b.mu.Unlock()
		}
	}
}

// refreshSummary pulls every live matcher's interest summary (version-gated
// so unchanged matchers answer cheaply), merges the tables into the cluster
// summary, and pushes the change to peers: a delta when the peers track our
// previous version, a full announce on the anti-entropy cadence.
func (b *Border) refreshSummary() {
	g := b.gossiper()
	if g == nil {
		return
	}
	peers := g.Peers()
	sort.Slice(peers, func(i, j int) bool { return peers[i].ID < peers[j].ID })
	live := map[core.NodeID]bool{}
	changed := false
	for _, p := range peers {
		if p.Role != core.RoleMatcher || !p.Alive {
			continue
		}
		live[p.ID] = true
		b.mu.Lock()
		ver := b.matcherVer[p.ID]
		b.mu.Unlock()
		resp, err := b.cfg.Transport.Request(p.Addr,
			&wire.Envelope{Kind: wire.KindSummaryRequest, From: b.cfg.ID,
				Body: (&wire.SummaryRequestBody{IfVersion: ver}).Encode()}, b.cfg.RequestTimeout)
		if err != nil || resp == nil || resp.Kind != wire.KindSummaryResponse {
			continue
		}
		sr, err := wire.DecodeSummaryResponse(resp.Body)
		if err != nil {
			continue
		}
		b.mu.Lock()
		if !sr.Unchanged {
			b.matcherDims[p.ID] = sr.Dims
			changed = true
		}
		b.matcherVer[p.ID] = sr.Version
		b.mu.Unlock()
	}
	b.mu.Lock()
	for id := range b.matcherDims {
		if !live[id] {
			delete(b.matcherDims, id)
			delete(b.matcherVer, id)
			changed = true
		}
	}
	round := b.round
	b.round++
	prev := b.local
	announceDue := round%uint64(b.cfg.AnnounceEvery) == 0
	if !changed && prev != nil && !announceDue {
		b.mu.Unlock()
		return
	}
	ids := make([]core.NodeID, 0, len(b.matcherDims))
	for id := range b.matcherDims {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	tables := make([][][]core.Range, 0, len(ids))
	for _, id := range ids {
		tables = append(tables, b.matcherDims[id])
	}
	b.mu.Unlock()
	merged := MergeInto(b.cfg.Space.K(), tables, b.cfg.MaxRangesPerDim)
	var delta *wire.SummaryDeltaBody
	b.mu.Lock()
	if prev == nil || !merged.Equal(prev) {
		if prev == nil {
			merged.Version = 1
		} else {
			merged.Version = prev.Version + 1
		}
		b.local = merged
		delta = merged.DeltaFrom(prev, b.cfg.Cluster)
	}
	cur := b.local.Clone()
	links := append([]*link(nil), b.links...)
	b.mu.Unlock()
	if cur == nil {
		return
	}
	if announceDue || prev == nil {
		body := (&wire.SummaryAnnounceBody{Cluster: b.cfg.Cluster, Version: cur.Version,
			Addr: b.addr, Dims: cur.Dims}).Encode()
		for _, l := range links {
			_ = b.cfg.Transport.Send(l.addr, &wire.Envelope{Kind: wire.KindSummaryAnnounce, From: b.cfg.ID, Body: body})
		}
	} else if delta != nil {
		delta.Addr = b.addr
		body := delta.Encode()
		for _, l := range links {
			_ = b.cfg.Transport.Send(l.addr, &wire.Envelope{Kind: wire.KindSummaryDelta, From: b.cfg.ID, Body: body})
		}
	}
}

func (b *Border) linkByAddr(addr string) *link {
	b.mu.Lock()
	defer b.mu.Unlock()
	for _, l := range b.links {
		if l.addr == addr {
			return l
		}
	}
	return nil
}

func (b *Border) onAnnounce(env *wire.Envelope) {
	a, err := wire.DecodeSummaryAnnounce(env.Body)
	if err != nil {
		b.Malformed.Add(1)
		return
	}
	if len(a.Dims) != b.cfg.Space.K() || a.Cluster == 0 {
		b.Malformed.Add(1)
		return
	}
	l := b.linkByAddr(a.Addr)
	if l == nil {
		// Not a configured peer: summaries only bind to explicit links.
		b.Malformed.Add(1)
		return
	}
	ns := &Summary{Version: a.Version, Dims: a.Dims}
	b.mu.Lock()
	l.cluster = a.Cluster
	changed := l.sum == nil || l.sum.Version != ns.Version || !l.sum.Equal(ns)
	if changed {
		l.sum = ns
	}
	b.mu.Unlock()
	if changed {
		b.syncInterest(l)
	}
}

func (b *Border) onDelta(env *wire.Envelope) {
	d, err := wire.DecodeSummaryDelta(env.Body)
	if err != nil {
		b.Malformed.Add(1)
		return
	}
	l := b.linkByAddr(d.Addr)
	if l == nil {
		b.Malformed.Add(1)
		return
	}
	b.mu.Lock()
	var next *Summary
	if l.sum != nil && l.sum.Version == d.FromVersion {
		next = l.sum.ApplyDelta(d)
	}
	// A version mismatch or bad delta leaves the old summary in place —
	// still sound (old interest over-approximates until the next announce
	// repairs it) as long as the origin keeps announcing periodically.
	if next != nil {
		l.cluster = d.Cluster
		l.sum = next
	}
	b.mu.Unlock()
	if next != nil {
		b.syncInterest(l)
	}
}

// ---- per-peer aggregated interest subscription ----

func (b *Border) syncInterests() {
	b.mu.Lock()
	links := append([]*link(nil), b.links...)
	b.mu.Unlock()
	for _, l := range links {
		b.syncInterest(l)
	}
}

// syncInterest makes the local cluster deliver what the peer currently
// wants: one subscription on the peer summary's bounding cuboid, owned by a
// federation-tagged subscriber so matchers exclude it from the local
// summary. The new subscription registers before the old one is dropped, so
// interest widening never opens a delivery gap; the overlap's duplicate
// deliveries collapse in fanOut's dedup ring.
func (b *Border) syncInterest(l *link) {
	l.subMu.Lock()
	defer l.subMu.Unlock()
	b.mu.Lock()
	var want []core.Range
	if l.sum != nil {
		want = l.sum.BoundingCuboid()
	}
	have := l.subCuboid
	haveID := l.subID
	b.mu.Unlock()
	if core.RangesEqual(want, have) && (len(want) > 0) == (haveID != 0) {
		return
	}
	var newID core.SubscriptionID
	if len(want) > 0 {
		sub := core.NewSubscription(
			core.FederationSubscriber(core.SubscriberID(uint64(b.cfg.ID)<<16|uint64(l.idx+1))), want)
		body := (&wire.SubscribeBody{Sub: sub, DeliverAddr: b.addr}).Encode()
		ok := false
		for _, addr := range b.dispatcherAddrs() {
			resp, err := b.cfg.Transport.Request(addr,
				&wire.Envelope{Kind: wire.KindSubscribe, From: b.cfg.ID, Body: body}, b.cfg.RequestTimeout)
			if err != nil || resp == nil || resp.Kind != wire.KindSubscribeAck {
				continue
			}
			if ack, err := wire.DecodeSubscribeAck(resp.Body); err == nil {
				newID = ack.ID
				ok = true
				break
			}
		}
		if !ok {
			// No dispatcher admitted the subscription; keep the old
			// interest (over- or under-stated is repaired next round).
			return
		}
	}
	b.mu.Lock()
	oldID := l.subID
	l.subID = newID
	l.subCuboid = want
	b.mu.Unlock()
	if oldID != 0 {
		body := (&wire.UnsubscribeBody{ID: oldID}).Encode()
		for _, addr := range b.dispatcherAddrs() {
			if b.cfg.Transport.Send(addr, &wire.Envelope{Kind: wire.KindUnsubscribe, From: b.cfg.ID, Body: body}) == nil {
				break
			}
		}
	}
}

func (b *Border) errEnv(err error) *wire.Envelope {
	return &wire.Envelope{Kind: wire.KindError, From: b.cfg.ID,
		Body: (&wire.ErrorBody{Text: err.Error()}).Encode()}
}
