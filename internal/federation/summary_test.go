package federation

import (
	"math/rand"
	"testing"

	"bluedove/internal/core"
)

// randomTables builds per-matcher per-dimension interval tables from a
// seeded source, mimicking what SummaryRequest responses carry.
func randomTables(rng *rand.Rand, matchers, dims int) [][][]core.Range {
	tables := make([][][]core.Range, matchers)
	for m := range tables {
		t := make([][]core.Range, dims)
		for j := range t {
			n := rng.Intn(6)
			for i := 0; i < n; i++ {
				lo := rng.Float64() * 900
				t[j] = append(t[j], core.Range{Low: lo, High: lo + 1 + rng.Float64()*100})
			}
		}
		tables[m] = t
	}
	return tables
}

// TestMergeNoFalseNegatives is the core safety property: for any point
// inside any input interval on every dimension, the merged-and-capped
// summary must match — the cap may widen, never narrow.
func TestMergeNoFalseNegatives(t *testing.T) {
	for seed := int64(0); seed < 50; seed++ {
		rng := rand.New(rand.NewSource(seed))
		dims := 1 + rng.Intn(4)
		tables := randomTables(rng, 1+rng.Intn(4), dims)
		cap := 1 + rng.Intn(4) // aggressively small to force widening
		s := MergeInto(dims, tables, cap)
		for j := 0; j < dims; j++ {
			if len(s.Dims[j]) > cap {
				t.Fatalf("seed %d dim %d: %d intervals past cap %d", seed, j, len(s.Dims[j]), cap)
			}
		}
		// Sample points inside input intervals; every one must be covered
		// on its dimension.
		for _, tab := range tables {
			for j, rs := range tab {
				for _, r := range rs {
					for _, p := range []float64{r.Low, (r.Low + r.High) / 2} {
						if !core.RangesContain(s.Dims[j], p) {
							t.Fatalf("seed %d: point %g in input [%g,%g) dim %d not covered by %v",
								seed, p, r.Low, r.High, j, s.Dims[j])
						}
					}
				}
			}
		}
	}
}

// TestMergeDeterministic: the merge must not depend on matcher order —
// borders on different nodes must converge to identical summaries.
func TestMergeDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	tables := randomTables(rng, 4, 3)
	a := MergeInto(3, tables, 8)
	rev := make([][][]core.Range, len(tables))
	for i := range tables {
		rev[i] = tables[len(tables)-1-i]
	}
	b := MergeInto(3, rev, 8)
	if !a.Equal(b) {
		t.Fatalf("merge depends on table order:\n%v\n%v", a.Dims, b.Dims)
	}
}

// TestDeltaExchange drives a seeded sequence of summary mutations through
// DeltaFrom/ApplyDelta and checks the receiver tracks the sender exactly;
// run twice with the same seed, the delta streams must be identical
// (same-seed determinism for the summary exchange).
func TestDeltaExchange(t *testing.T) {
	run := func(seed int64) (final *Summary, stream []string) {
		rng := rand.New(rand.NewSource(seed))
		var sender, receiver *Summary
		for step := 0; step < 40; step++ {
			next := MergeInto(3, randomTables(rng, 2, 3), 8)
			next.Version = uint64(step + 1)
			d := next.DeltaFrom(sender, 1)
			if d != nil {
				stream = append(stream, string(d.Encode()))
				if got := receiver.ApplyDelta(d); got != nil {
					receiver = got
				} else {
					// Base mismatch — anti-entropy announce repairs.
					receiver = next.Clone()
				}
			}
			sender = next
		}
		return receiver, stream
	}
	a, sa := run(99)
	b, sb := run(99)
	if len(sa) == 0 {
		t.Fatal("no deltas produced")
	}
	if len(sa) != len(sb) {
		t.Fatalf("delta stream lengths differ: %d vs %d", len(sa), len(sb))
	}
	for i := range sa {
		if sa[i] != sb[i] {
			t.Fatalf("delta %d differs between same-seed runs", i)
		}
	}
	if !a.Equal(b) {
		t.Fatal("same-seed runs diverged")
	}
}

// TestApplyDeltaRejectsStaleBase: a delta on the wrong base must be
// refused, leaving the receiver to wait for the next announce.
func TestApplyDeltaRejectsStaleBase(t *testing.T) {
	s := &Summary{Version: 3, Dims: [][]core.Range{{{Low: 0, High: 1}}}}
	newer := &Summary{Version: 5, Dims: [][]core.Range{{{Low: 0, High: 2}}}}
	d := newer.DeltaFrom(&Summary{Version: 4, Dims: [][]core.Range{{{Low: 0, High: 1}}}}, 1)
	if d == nil {
		t.Fatal("expected a delta")
	}
	if got := s.ApplyDelta(d); got != nil {
		t.Fatalf("stale-base delta applied: %+v", got)
	}
	// Out-of-range dimension index must also be refused.
	d.FromVersion = 3
	d.DimIdx = []uint16{9}
	if got := s.ApplyDelta(d); got != nil {
		t.Fatal("out-of-range dim index applied")
	}
}

func TestBoundingCuboid(t *testing.T) {
	s := &Summary{Dims: [][]core.Range{
		{{Low: 10, High: 20}, {Low: 50, High: 60}},
		{{Low: 0, High: 5}},
	}}
	got := s.BoundingCuboid()
	want := []core.Range{{Low: 10, High: 60}, {Low: 0, High: 5}}
	if !core.RangesEqual(got, want) {
		t.Fatalf("cuboid = %v, want %v", got, want)
	}
	empty := &Summary{Dims: [][]core.Range{{}, {{Low: 0, High: 1}}}}
	if empty.BoundingCuboid() != nil {
		t.Fatal("empty summary produced a cuboid")
	}
}

func TestSummaryMatches(t *testing.T) {
	s := &Summary{Dims: [][]core.Range{
		{{Low: 0, High: 10}, {Low: 20, High: 30}},
		{{Low: 100, High: 200}},
	}}
	cases := []struct {
		attrs []float64
		want  bool
	}{
		{[]float64{5, 150}, true},
		{[]float64{25, 150}, true},
		{[]float64{15, 150}, false}, // gap on dim 0
		{[]float64{5, 50}, false},   // outside dim 1
		{[]float64{5}, false},       // too few attributes
		{[]float64{5, 150, 7}, true},
	}
	for _, c := range cases {
		if got := s.Matches(c.attrs); got != c.want {
			t.Fatalf("Matches(%v) = %v, want %v", c.attrs, got, c.want)
		}
	}
	var nilSum *Summary
	if nilSum.Matches([]float64{1}) {
		t.Fatal("nil summary matched")
	}
}

func TestDedupRing(t *testing.T) {
	// add reports true when the key is new.
	r := newDedupRing(4)
	for i := 0; i < 4; i++ {
		if !r.add(fedKey{origin: 1, id: core.MessageID(i)}) {
			t.Fatalf("fresh key %d reported duplicate", i)
		}
	}
	for i := 0; i < 4; i++ {
		if r.add(fedKey{origin: 1, id: core.MessageID(i)}) {
			t.Fatalf("repeat key %d not caught", i)
		}
	}
	// Overflow evicts the oldest entries only.
	for i := 4; i < 8; i++ {
		r.add(fedKey{origin: 1, id: core.MessageID(i)})
	}
	if !r.add(fedKey{origin: 1, id: core.MessageID(0)}) {
		t.Fatal("evicted key still reported seen")
	}
	// 7 was just inserted, then 0 re-inserted (evicting 5) — 7 must remain.
	if r.add(fedKey{origin: 1, id: core.MessageID(7)}) {
		t.Fatal("recent key lost")
	}
	// Same ID, different origin, is a distinct identity.
	if !r.add(fedKey{origin: 2, id: core.MessageID(7)}) {
		t.Fatal("origin not part of the dedup identity")
	}
}
