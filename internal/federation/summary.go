// Package federation implements BlueDove's border-dispatcher tier: one or
// more border nodes per cluster that compute a compact interest summary of
// the local subscription set, exchange summaries with peer clusters over
// versioned announce/delta frames, and route publications across the
// inter-cluster mesh only toward clusters whose summary matches.
//
// The design follows subscription subgrouping over structured overlays and
// aggregated-cuboid summaries (see PAPERS.md): a summary is a per-dimension
// union of disjoint intervals, lossily widened to a small cap, so it can
// only over-approximate interest — false positives are filtered by the
// remote cluster's real match path, false negatives are impossible. Borders
// ride the existing machinery end to end: the local cluster delivers
// remotely-interesting publications to the border through the normal
// subscribe/match/deliver path (one aggregated, federation-tagged
// subscription per peer), pending FedPublish frames are retained and
// retried across link faults until the peer acks them, per-peer circuit
// breakers bound retry pressure, and the cross-cluster leg stamps
// core.HopFederate into sampled trace contexts.
package federation

import (
	"bluedove/internal/core"
	"bluedove/internal/wire"
)

// Summary is one cluster's versioned interest summary: per space dimension,
// a sorted list of disjoint intervals covering every live subscription's
// predicate on that dimension. A publication can match the cluster only if
// every dimension's attribute falls inside that dimension's list.
type Summary struct {
	// Version counts content changes at the owning border. Deltas apply
	// only on the exact base version; announces carry the full state.
	Version uint64
	// Dims holds one interval list per space dimension. An empty list on
	// any dimension means the cluster currently matches nothing (every
	// subscription constrains every dimension, if only by the space
	// extent).
	Dims [][]core.Range
}

// Matches reports whether a publication with the given attributes can match
// any subscription covered by the summary: every dimension must contain its
// attribute. Empty summaries (or empty dimensions) match nothing.
func (s *Summary) Matches(attrs []float64) bool {
	if s == nil || len(s.Dims) == 0 || len(attrs) < len(s.Dims) {
		return false
	}
	for j, rs := range s.Dims {
		if !core.RangesContain(rs, attrs[j]) {
			return false
		}
	}
	return true
}

// Size returns the total interval count across dimensions (the
// federation.summary_size telemetry gauge).
func (s *Summary) Size() int {
	if s == nil {
		return 0
	}
	n := 0
	for _, rs := range s.Dims {
		n += len(rs)
	}
	return n
}

// Empty reports whether the summary covers nothing.
func (s *Summary) Empty() bool {
	if s == nil {
		return true
	}
	for _, rs := range s.Dims {
		if len(rs) == 0 {
			return true
		}
	}
	return len(s.Dims) == 0
}

// Equal compares summary content (Version excluded).
func (s *Summary) Equal(o *Summary) bool {
	if s == nil || o == nil {
		return s.Empty() == o.Empty()
	}
	if len(s.Dims) != len(o.Dims) {
		return false
	}
	for j := range s.Dims {
		if !core.RangesEqual(s.Dims[j], o.Dims[j]) {
			return false
		}
	}
	return true
}

// Clone deep-copies the summary.
func (s *Summary) Clone() *Summary {
	if s == nil {
		return nil
	}
	c := &Summary{Version: s.Version, Dims: make([][]core.Range, len(s.Dims))}
	for j, rs := range s.Dims {
		c.Dims[j] = append([]core.Range(nil), rs...)
	}
	return c
}

// BoundingCuboid collapses the summary to one cuboid — per dimension the
// [lowest low, highest high) hull — suitable as the predicate set of the
// single aggregated subscription a border registers with its local
// dispatcher per peer cluster. Returns nil when the summary covers nothing.
func (s *Summary) BoundingCuboid() []core.Range {
	if s.Empty() {
		return nil
	}
	out := make([]core.Range, len(s.Dims))
	for j, rs := range s.Dims {
		out[j] = core.Range{Low: rs[0].Low, High: rs[len(rs)-1].High}
	}
	return out
}

// MergeInto unions per-matcher interval tables into one cluster summary,
// capping every dimension at maxRanges. Deterministic: inputs are
// concatenated and re-merged through core.MergeRanges, so the result
// depends only on the interval multiset, not on matcher order.
func MergeInto(k int, tables [][][]core.Range, maxRanges int) *Summary {
	s := &Summary{Dims: make([][]core.Range, k)}
	for j := 0; j < k; j++ {
		var all []core.Range
		for _, t := range tables {
			if j < len(t) {
				all = append(all, t[j]...)
			}
		}
		s.Dims[j] = core.MergeRanges(all, maxRanges)
	}
	return s
}

// DeltaFrom builds the wire delta carrying every dimension that differs
// between base and s (nil when nothing changed). cluster stamps the
// announcing cluster ID.
func (s *Summary) DeltaFrom(base *Summary, cluster uint64) *wire.SummaryDeltaBody {
	if base == nil {
		base = &Summary{}
	}
	d := &wire.SummaryDeltaBody{Cluster: cluster, FromVersion: base.Version, ToVersion: s.Version}
	for j := range s.Dims {
		var old []core.Range
		if j < len(base.Dims) {
			old = base.Dims[j]
		}
		if !core.RangesEqual(old, s.Dims[j]) {
			d.DimIdx = append(d.DimIdx, uint16(j))
			d.Dims = append(d.Dims, s.Dims[j])
		}
	}
	if len(d.DimIdx) == 0 {
		return nil
	}
	return d
}

// ApplyDelta applies d on s (which must hold d.FromVersion) and returns the
// updated clone, or nil when the base version does not match or an index is
// out of range — the caller then waits for the next full announce.
func (s *Summary) ApplyDelta(d *wire.SummaryDeltaBody) *Summary {
	base := s
	if base == nil {
		base = &Summary{}
	}
	if base.Version != d.FromVersion {
		return nil
	}
	out := base.Clone()
	if out == nil {
		out = &Summary{}
	}
	for i, j := range d.DimIdx {
		if int(j) >= len(out.Dims) {
			return nil
		}
		out.Dims[int(j)] = append([]core.Range(nil), d.Dims[i]...)
	}
	out.Version = d.ToVersion
	return out
}
