// Package index provides per-dimension subscription indexes for matchers.
//
// A matcher stores the subscriptions it received along each dimension in a
// separate set Si(Mj) (paper Section III-A) and builds a separate index per
// set. Matching a message that was forwarded along dimension i is a stabbing
// query: find every subscription whose predicate on dimension i contains the
// message's value on i, then verify the remaining dimensions.
//
// Three implementations are provided:
//
//   - Scan: brute-force over all stored subscriptions. The reference
//     implementation used for correctness testing and as the cost model for
//     the full-replication baseline.
//   - Bucket: the dimension extent is divided into fixed-width buckets; an
//     interval is registered in every bucket it overlaps (wide intervals go
//     to an always-scanned overflow list).
//   - IntervalTree: a centered interval tree rebuilt lazily after batches of
//     updates.
//
// Indexes are NOT safe for concurrent use; a matcher serializes access to
// each per-dimension set through its SEDA stage.
package index

import (
	"fmt"

	"bluedove/internal/core"
)

// Index is a set of subscriptions searchable by stabbing queries on one
// fixed dimension.
type Index interface {
	// Dim returns the dimension this index searches on.
	Dim() int
	// Add inserts a subscription. Adding a subscription whose ID is already
	// present replaces the previous entry.
	Add(s *core.Subscription)
	// Remove deletes the subscription with the given ID, reporting whether
	// it was present.
	Remove(id core.SubscriptionID) bool
	// Len returns the number of stored subscriptions.
	Len() int
	// Contains reports whether a subscription with the given ID is stored.
	Contains(id core.SubscriptionID) bool
	// Stab appends to dst every stored subscription whose predicate on Dim
	// contains v and returns the extended slice together with the number of
	// stored subscriptions examined to answer the query (the matching-cost
	// measure used by the paper's subscription-amount policy discussion and
	// by the simulator's service-time model).
	Stab(v float64, dst []*core.Subscription) (res []*core.Subscription, scanned int)
	// Overlapping appends to dst every stored subscription whose predicate
	// on Dim overlaps r. Used for segment split/handover.
	Overlapping(r core.Range, dst []*core.Subscription) []*core.Subscription
	// All appends every stored subscription to dst.
	All(dst []*core.Subscription) []*core.Subscription
}

// Kind selects an Index implementation.
type Kind uint8

// Available index kinds.
const (
	// KindScan is the brute-force reference index.
	KindScan Kind = iota
	// KindBucket is the fixed-width bucket index.
	KindBucket
	// KindIntervalTree is the centered interval tree.
	KindIntervalTree
)

// String names the kind.
func (k Kind) String() string {
	switch k {
	case KindScan:
		return "scan"
	case KindBucket:
		return "bucket"
	case KindIntervalTree:
		return "intervaltree"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// KindByName parses a kind name as printed by Kind.String.
func KindByName(name string) (Kind, error) {
	switch name {
	case "scan":
		return KindScan, nil
	case "bucket":
		return KindBucket, nil
	case "intervaltree":
		return KindIntervalTree, nil
	default:
		return 0, fmt.Errorf("index: unknown kind %q (want scan|bucket|intervaltree)", name)
	}
}

// New constructs an index of the given kind for dimension dim of space sp
// with the default sizing (DefaultBuckets for KindBucket).
func New(k Kind, sp *core.Space, dim int) Index {
	return NewSized(k, sp, dim, 0)
}

// NewSized constructs an index of the given kind for dimension dim of space
// sp. buckets overrides the bucket count for KindBucket (<= 0 keeps
// DefaultBuckets); the other kinds ignore it.
func NewSized(k Kind, sp *core.Space, dim, buckets int) Index {
	switch k {
	case KindScan:
		return NewScan(dim)
	case KindBucket:
		if buckets <= 0 {
			buckets = DefaultBuckets
		}
		return NewBucket(sp.Dim(dim), dim, buckets)
	case KindIntervalTree:
		return NewIntervalTree(dim)
	default:
		panic(fmt.Sprintf("index: unknown kind %d", k))
	}
}

// Match runs a full match for message m against idx: stab on the index's
// dimension, then verify every other dimension. It returns the matching
// subscriptions appended to dst and the number of stored subscriptions
// scanned.
//
// cands is the stabbing candidate buffer; the (possibly grown) buffer is
// returned so callers on the hot path can retain its capacity across calls
// and keep steady-state matching allocation-free. Passing nil allocates a
// fresh buffer, which is fine off the hot path.
func Match(idx Index, m *core.Message, dst, cands []*core.Subscription) (matched, candsOut []*core.Subscription, scanned int) {
	dim := idx.Dim()
	cands, scanned = idx.Stab(m.Attrs[dim], cands[:0])
	matched = dst
	for _, s := range cands {
		if s.MatchesExcept(m, dim) {
			matched = append(matched, s)
		}
	}
	return matched, cands, scanned
}
