package index

import "bluedove/internal/core"

// Scan is the brute-force reference index: every query examines every stored
// subscription. Its cost model — scanned == Len() — is exactly the per-message
// search cost of the full-replication baseline in the paper.
type Scan struct {
	dim  int
	subs []*core.Subscription
	pos  map[core.SubscriptionID]int
}

var _ Index = (*Scan)(nil)

// NewScan returns an empty brute-force index for the given dimension.
func NewScan(dim int) *Scan {
	return &Scan{dim: dim, pos: make(map[core.SubscriptionID]int)}
}

// Dim returns the dimension this index searches on.
func (x *Scan) Dim() int { return x.dim }

// Len returns the number of stored subscriptions.
func (x *Scan) Len() int { return len(x.subs) }

// Add inserts or replaces a subscription.
func (x *Scan) Add(s *core.Subscription) {
	if i, ok := x.pos[s.ID]; ok {
		x.subs[i] = s
		return
	}
	x.pos[s.ID] = len(x.subs)
	x.subs = append(x.subs, s)
}

// Remove deletes the subscription with the given ID.
func (x *Scan) Remove(id core.SubscriptionID) bool {
	i, ok := x.pos[id]
	if !ok {
		return false
	}
	last := len(x.subs) - 1
	if i != last {
		x.subs[i] = x.subs[last]
		x.pos[x.subs[i].ID] = i
	}
	x.subs[last] = nil
	x.subs = x.subs[:last]
	delete(x.pos, id)
	return true
}

// Stab scans all subscriptions, returning those containing v on Dim.
func (x *Scan) Stab(v float64, dst []*core.Subscription) ([]*core.Subscription, int) {
	for _, s := range x.subs {
		if s.Predicates[x.dim].Contains(v) {
			dst = append(dst, s)
		}
	}
	return dst, len(x.subs)
}

// Overlapping scans all subscriptions, returning those whose predicate on
// Dim overlaps r.
func (x *Scan) Overlapping(r core.Range, dst []*core.Subscription) []*core.Subscription {
	for _, s := range x.subs {
		if s.Predicates[x.dim].Overlaps(r) {
			dst = append(dst, s)
		}
	}
	return dst
}

// All appends every stored subscription to dst.
func (x *Scan) All(dst []*core.Subscription) []*core.Subscription {
	return append(dst, x.subs...)
}

// Contains reports whether a subscription with the given ID is stored.
func (x *Scan) Contains(id core.SubscriptionID) bool {
	_, ok := x.pos[id]
	return ok
}
