package index

import (
	"math/rand"
	"sort"
	"testing"

	"bluedove/internal/core"
)

var testSpace = core.UniformSpace(3, 1000)

func allKinds(t *testing.T, dim int) map[string]Index {
	t.Helper()
	return map[string]Index{
		"scan":         New(KindScan, testSpace, dim),
		"bucket":       New(KindBucket, testSpace, dim),
		"intervaltree": New(KindIntervalTree, testSpace, dim),
	}
}

func randSub(rng *rand.Rand, id core.SubscriptionID, maxLen float64) *core.Subscription {
	preds := make([]core.Range, testSpace.K())
	for i := range preds {
		lo := rng.Float64() * 1000
		preds[i] = core.Range{Low: lo, High: lo + rng.Float64()*maxLen + 0.01}
	}
	s := core.NewSubscription(core.SubscriberID(id), preds)
	s.ID = id
	return s
}

func ids(subs []*core.Subscription) []core.SubscriptionID {
	out := make([]core.SubscriptionID, len(subs))
	for i, s := range subs {
		out[i] = s.ID
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func sameIDs(a, b []core.SubscriptionID) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestKindString(t *testing.T) {
	if KindScan.String() != "scan" || KindBucket.String() != "bucket" ||
		KindIntervalTree.String() != "intervaltree" || Kind(9).String() == "" {
		t.Error("Kind.String")
	}
}

func TestNewUnknownKindPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New with unknown kind did not panic")
		}
	}()
	New(Kind(42), testSpace, 0)
}

func TestStabBasic(t *testing.T) {
	for name, idx := range allKinds(t, 0) {
		a := core.NewSubscription(1, []core.Range{{Low: 0, High: 100}, {Low: 0, High: 1000}, {Low: 0, High: 1000}})
		a.ID = 1
		b := core.NewSubscription(2, []core.Range{{Low: 50, High: 60}, {Low: 0, High: 1000}, {Low: 0, High: 1000}})
		b.ID = 2
		idx.Add(a)
		idx.Add(b)
		if idx.Len() != 2 {
			t.Fatalf("%s: Len = %d, want 2", name, idx.Len())
		}
		got, scanned := idx.Stab(55, nil)
		if !sameIDs(ids(got), []core.SubscriptionID{1, 2}) {
			t.Errorf("%s: Stab(55) = %v, want both", name, ids(got))
		}
		if scanned < len(got) {
			t.Errorf("%s: scanned %d < results %d", name, scanned, len(got))
		}
		got, _ = idx.Stab(75, nil)
		if !sameIDs(ids(got), []core.SubscriptionID{1}) {
			t.Errorf("%s: Stab(75) = %v, want [1]", name, ids(got))
		}
		got, _ = idx.Stab(100, nil) // exclusive upper bound
		if len(got) != 0 {
			t.Errorf("%s: Stab(100) = %v, want empty", name, ids(got))
		}
		got, _ = idx.Stab(0, nil) // inclusive lower bound
		if !sameIDs(ids(got), []core.SubscriptionID{1}) {
			t.Errorf("%s: Stab(0) = %v, want [1]", name, ids(got))
		}
	}
}

func TestAddReplacesSameID(t *testing.T) {
	for name, idx := range allKinds(t, 0) {
		s1 := core.NewSubscription(1, []core.Range{{Low: 0, High: 10}, {Low: 0, High: 1}, {Low: 0, High: 1}})
		s1.ID = 7
		s2 := core.NewSubscription(1, []core.Range{{Low: 500, High: 510}, {Low: 0, High: 1}, {Low: 0, High: 1}})
		s2.ID = 7
		idx.Add(s1)
		idx.Add(s2)
		if idx.Len() != 1 {
			t.Fatalf("%s: Len = %d after replace, want 1", name, idx.Len())
		}
		if got, _ := idx.Stab(5, nil); len(got) != 0 {
			t.Errorf("%s: old entry still stabs", name)
		}
		if got, _ := idx.Stab(505, nil); len(got) != 1 {
			t.Errorf("%s: new entry missing", name)
		}
	}
}

func TestRemove(t *testing.T) {
	for name, idx := range allKinds(t, 1) {
		rng := rand.New(rand.NewSource(1))
		var kept []*core.Subscription
		for i := 1; i <= 100; i++ {
			s := randSub(rng, core.SubscriptionID(i), 300)
			idx.Add(s)
			if i%2 == 0 {
				kept = append(kept, s)
			}
		}
		for i := 1; i <= 100; i += 2 {
			if !idx.Remove(core.SubscriptionID(i)) {
				t.Fatalf("%s: Remove(%d) = false", name, i)
			}
		}
		if idx.Remove(1) {
			t.Errorf("%s: double remove returned true", name)
		}
		if idx.Remove(999) {
			t.Errorf("%s: removing absent ID returned true", name)
		}
		if idx.Len() != 50 {
			t.Fatalf("%s: Len = %d, want 50", name, idx.Len())
		}
		want := ids(kept)
		if got := ids(idx.All(nil)); !sameIDs(got, want) {
			t.Errorf("%s: All after removals mismatch", name)
		}
	}
}

func TestOverlapping(t *testing.T) {
	for name, idx := range allKinds(t, 2) {
		mk := func(id core.SubscriptionID, lo, hi float64) *core.Subscription {
			s := core.NewSubscription(1, []core.Range{{Low: 0, High: 1}, {Low: 0, High: 1}, {Low: lo, High: hi}})
			s.ID = id
			return s
		}
		idx.Add(mk(1, 0, 100))
		idx.Add(mk(2, 100, 200))
		idx.Add(mk(3, 150, 900)) // wide for bucket index
		idx.Add(mk(4, 950, 999))
		got := ids(idx.Overlapping(core.Range{Low: 90, High: 160}, nil))
		if !sameIDs(got, []core.SubscriptionID{1, 2, 3}) {
			t.Errorf("%s: Overlapping = %v, want [1 2 3]", name, got)
		}
		got = ids(idx.Overlapping(core.Range{Low: 905, High: 940}, nil))
		if len(got) != 0 {
			t.Errorf("%s: Overlapping gap = %v, want empty", name, got)
		}
	}
}

// Property: bucket and interval tree agree with brute-force scan under
// random churn (adds, removes, stabs).
func TestEquivalenceUnderChurn(t *testing.T) {
	for _, dim := range []int{0, 1, 2} {
		ref := NewScan(dim)
		under := map[string]Index{
			"bucket":       New(KindBucket, testSpace, dim),
			"intervaltree": New(KindIntervalTree, testSpace, dim),
		}
		rng := rand.New(rand.NewSource(int64(7 + dim)))
		nextID := core.SubscriptionID(1)
		live := []*core.Subscription{}
		for step := 0; step < 3000; step++ {
			switch op := rng.Intn(10); {
			case op < 5 || len(live) == 0: // add (wide ranges sometimes)
				maxLen := 200.0
				if rng.Intn(5) == 0 {
					maxLen = 1200 // exceed wide threshold / extend past dimension
				}
				s := randSub(rng, nextID, maxLen)
				nextID++
				live = append(live, s)
				ref.Add(s)
				for _, u := range under {
					u.Add(s)
				}
			case op < 7: // remove
				i := rng.Intn(len(live))
				id := live[i].ID
				live[i] = live[len(live)-1]
				live = live[:len(live)-1]
				if !ref.Remove(id) {
					t.Fatal("ref remove failed")
				}
				for name, u := range under {
					if !u.Remove(id) {
						t.Fatalf("%s: remove %v failed", name, id)
					}
				}
			default: // stab + overlap query
				v := rng.Float64() * 1000
				want, _ := ref.Stab(v, nil)
				for name, u := range under {
					got, scanned := u.Stab(v, nil)
					if !sameIDs(ids(got), ids(want)) {
						t.Fatalf("step %d dim %d %s: Stab(%g) = %v, want %v",
							step, dim, name, v, ids(got), ids(want))
					}
					if scanned < len(got) {
						t.Fatalf("%s: scanned < |answer|", name)
					}
				}
				lo := rng.Float64() * 1000
				r := core.Range{Low: lo, High: lo + rng.Float64()*300}
				if r.Empty() {
					continue
				}
				wantO := ids(ref.Overlapping(r, nil))
				for name, u := range under {
					gotO := ids(u.Overlapping(r, nil))
					if !sameIDs(gotO, wantO) {
						t.Fatalf("step %d %s: Overlapping(%v) = %v, want %v", step, name, r, gotO, wantO)
					}
				}
			}
			if ref.Len() != len(live) {
				t.Fatal("ref length drift")
			}
			for name, u := range under {
				if u.Len() != len(live) {
					t.Fatalf("%s: Len = %d, want %d", name, u.Len(), len(live))
				}
			}
		}
	}
}

func TestMatchVerifiesOtherDims(t *testing.T) {
	for name, idx := range allKinds(t, 0) {
		// Matches on dim 0 but not dim 1.
		s := core.NewSubscription(1, []core.Range{{Low: 0, High: 100}, {Low: 0, High: 10}, {Low: 0, High: 1000}})
		s.ID = 1
		// Full match.
		s2 := core.NewSubscription(2, []core.Range{{Low: 0, High: 100}, {Low: 0, High: 1000}, {Low: 0, High: 1000}})
		s2.ID = 2
		idx.Add(s)
		idx.Add(s2)
		m := core.NewMessage([]float64{50, 500, 500}, nil)
		got, _, scanned := Match(idx, m, nil, nil)
		if !sameIDs(ids(got), []core.SubscriptionID{2}) {
			t.Errorf("%s: Match = %v, want [2]", name, ids(got))
		}
		if scanned <= 0 {
			t.Errorf("%s: scanned = %d", name, scanned)
		}
	}
}

// Property: scanned cost of bucket and interval tree is never more than a
// small constant factor above the brute-force cost, and typically far less
// for narrow predicates.
func TestIndexCostSanity(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	scan := NewScan(0)
	bucket := New(KindBucket, testSpace, 0)
	tree := New(KindIntervalTree, testSpace, 0)
	for i := 1; i <= 5000; i++ {
		s := randSub(rng, core.SubscriptionID(i), 50)
		scan.Add(s)
		bucket.Add(s)
		tree.Add(s)
	}
	var totScan, totBucket, totTree int
	for q := 0; q < 500; q++ {
		v := rng.Float64() * 1000
		_, c := scan.Stab(v, nil)
		totScan += c
		_, c = bucket.Stab(v, nil)
		totBucket += c
		_, c = tree.Stab(v, nil)
		totTree += c
	}
	if totBucket*2 > totScan {
		t.Errorf("bucket scanned %d, scan %d: expected <50%%", totBucket, totScan)
	}
	if totTree*2 > totScan {
		t.Errorf("tree scanned %d, scan %d: expected <50%%", totTree, totScan)
	}
}
