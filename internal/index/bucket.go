package index

import (
	"math"

	"bluedove/internal/core"
)

// DefaultBuckets is the bucket count used by New for KindBucket.
const DefaultBuckets = 256

// wideThreshold is the fraction of the dimension extent above which an
// interval is stored in the overflow list rather than registered in every
// bucket it spans. This bounds per-subscription memory to O(threshold *
// buckets) entries.
const wideThreshold = 0.25

// Bucket divides the dimension's value set into fixed-width buckets; each
// stored interval is registered in every bucket it overlaps. Intervals wider
// than a quarter of the dimension extent live in an overflow list that every
// query scans. Stabbing cost is the size of one bucket plus the overflow
// list — far below Len() when predicate ranges are narrow, as in the paper's
// workload (range 250 of 1000).
type Bucket struct {
	dim     int
	d       core.Dimension
	width   float64
	buckets [][]*core.Subscription
	wide    []*core.Subscription
	entries map[core.SubscriptionID]*core.Subscription
}

var _ Index = (*Bucket)(nil)

// NewBucket returns an empty bucket index over dimension d (dimension index
// dim) with n buckets. n must be >= 1.
func NewBucket(d core.Dimension, dim, n int) *Bucket {
	if n < 1 {
		n = 1
	}
	return &Bucket{
		dim:     dim,
		d:       d,
		width:   d.Extent() / float64(n),
		buckets: make([][]*core.Subscription, n),
		entries: make(map[core.SubscriptionID]*core.Subscription),
	}
}

// Dim returns the dimension this index searches on.
func (x *Bucket) Dim() int { return x.dim }

// Len returns the number of stored subscriptions.
func (x *Bucket) Len() int { return len(x.entries) }

// bucketOf maps a value (clamped to the dimension) to a bucket number.
func (x *Bucket) bucketOf(v float64) int {
	v = x.d.Clamp(v)
	b := int((v - x.d.Min) / x.width)
	if b >= len(x.buckets) {
		b = len(x.buckets) - 1
	}
	if b < 0 {
		b = 0
	}
	return b
}

// span returns the inclusive bucket range covered by interval r clipped to
// the dimension, plus whether the interval counts as wide.
func (x *Bucket) span(r core.Range) (lo, hi int, wide bool) {
	clipped := r.Intersect(core.Range{Low: x.d.Min, High: x.d.Max})
	if clipped.Empty() {
		return 0, -1, false // registers nowhere; unreachable for validated subscriptions
	}
	// The tolerance keeps intervals sitting exactly on the threshold out of
	// the overflow list when float arithmetic nudges their length up by an
	// ulp (lo + 0.25*extent - lo can exceed 0.25*extent): every such
	// interval would otherwise be scanned by every query.
	if clipped.Length() > wideThreshold*x.d.Extent()*(1+1e-9) {
		return 0, -1, true
	}
	lo = x.bucketOf(clipped.Low)
	// High is exclusive; nextafter below keeps an interval ending exactly on
	// a bucket boundary out of the next bucket.
	hi = x.bucketOf(math.Nextafter(clipped.High, clipped.Low))
	return lo, hi, false
}

// Add inserts or replaces a subscription.
func (x *Bucket) Add(s *core.Subscription) {
	if _, ok := x.entries[s.ID]; ok {
		x.Remove(s.ID)
	}
	x.entries[s.ID] = s
	lo, hi, wide := x.span(s.Predicates[x.dim])
	if wide {
		x.wide = append(x.wide, s)
		return
	}
	for b := lo; b <= hi; b++ {
		x.buckets[b] = append(x.buckets[b], s)
	}
}

func removeFrom(list []*core.Subscription, id core.SubscriptionID) []*core.Subscription {
	for i, s := range list {
		if s.ID == id {
			last := len(list) - 1
			list[i] = list[last]
			list[last] = nil
			return list[:last]
		}
	}
	return list
}

// Remove deletes the subscription with the given ID.
func (x *Bucket) Remove(id core.SubscriptionID) bool {
	s, ok := x.entries[id]
	if !ok {
		return false
	}
	delete(x.entries, id)
	lo, hi, wide := x.span(s.Predicates[x.dim])
	if wide {
		x.wide = removeFrom(x.wide, id)
		return true
	}
	for b := lo; b <= hi; b++ {
		x.buckets[b] = removeFrom(x.buckets[b], id)
	}
	return true
}

// Stab returns the subscriptions containing v on Dim. Cost is the bucket of
// v plus the wide-interval overflow list.
func (x *Bucket) Stab(v float64, dst []*core.Subscription) ([]*core.Subscription, int) {
	if !x.d.Contains(v) {
		// Out-of-dimension values can still hit wide (unclipped) predicates.
		for _, s := range x.wide {
			if s.Predicates[x.dim].Contains(v) {
				dst = append(dst, s)
			}
		}
		return dst, len(x.wide)
	}
	b := x.buckets[x.bucketOf(v)]
	for _, s := range b {
		if s.Predicates[x.dim].Contains(v) {
			dst = append(dst, s)
		}
	}
	for _, s := range x.wide {
		if s.Predicates[x.dim].Contains(v) {
			dst = append(dst, s)
		}
	}
	return dst, len(b) + len(x.wide)
}

// Overlapping returns subscriptions whose predicate on Dim overlaps r.
func (x *Bucket) Overlapping(r core.Range, dst []*core.Subscription) []*core.Subscription {
	seen := make(map[core.SubscriptionID]bool)
	emit := func(s *core.Subscription) {
		if !seen[s.ID] && s.Predicates[x.dim].Overlaps(r) {
			seen[s.ID] = true
			dst = append(dst, s)
		}
	}
	clipped := r.Intersect(core.Range{Low: x.d.Min, High: x.d.Max})
	if !clipped.Empty() {
		lo := x.bucketOf(clipped.Low)
		hi := x.bucketOf(math.Nextafter(clipped.High, clipped.Low))
		for b := lo; b <= hi; b++ {
			for _, s := range x.buckets[b] {
				emit(s)
			}
		}
	}
	for _, s := range x.wide {
		emit(s)
	}
	return dst
}

// All appends every stored subscription to dst.
func (x *Bucket) All(dst []*core.Subscription) []*core.Subscription {
	for _, s := range x.entries {
		dst = append(dst, s)
	}
	return dst
}

// Contains reports whether a subscription with the given ID is stored.
func (x *Bucket) Contains(id core.SubscriptionID) bool {
	_, ok := x.entries[id]
	return ok
}
