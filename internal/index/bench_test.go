package index

import (
	"fmt"
	"math/rand"
	"testing"

	"bluedove/internal/core"
)

func benchIndex(b *testing.B, kind Kind, nsubs int, predLen float64) {
	sp := core.UniformSpace(4, 1000)
	idx := New(kind, sp, 0)
	rng := rand.New(rand.NewSource(1))
	for i := 1; i <= nsubs; i++ {
		preds := make([]core.Range, 4)
		for d := range preds {
			lo := rng.Float64() * (1000 - predLen)
			preds[d] = core.Range{Low: lo, High: lo + predLen}
		}
		s := core.NewSubscription(core.SubscriberID(i), preds)
		s.ID = core.SubscriptionID(i)
		idx.Add(s)
	}
	msgs := make([]*core.Message, 256)
	for i := range msgs {
		msgs[i] = core.NewMessage([]float64{rng.Float64() * 1000, rng.Float64() * 1000,
			rng.Float64() * 1000, rng.Float64() * 1000}, nil)
	}
	var dst, cands []*core.Subscription
	totScan := 0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var scanned int
		dst, cands, scanned = Match(idx, msgs[i%len(msgs)], dst[:0], cands)
		totScan += scanned
	}
	b.StopTimer()
	if b.N > 0 {
		b.ReportMetric(float64(totScan)/float64(b.N), "scanned/op")
	}
}

func BenchmarkMatch(b *testing.B) {
	for _, kind := range []Kind{KindScan, KindBucket, KindIntervalTree} {
		for _, n := range []int{1000, 10000} {
			b.Run(fmt.Sprintf("%s/subs=%d", kind, n), func(b *testing.B) {
				benchIndex(b, kind, n, 250)
			})
		}
	}
}

func BenchmarkAdd(b *testing.B) {
	sp := core.UniformSpace(4, 1000)
	for _, kind := range []Kind{KindScan, KindBucket, KindIntervalTree} {
		b.Run(kind.String(), func(b *testing.B) {
			idx := New(kind, sp, 0)
			rng := rand.New(rand.NewSource(1))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				lo := rng.Float64() * 750
				s := core.NewSubscription(1, []core.Range{
					{Low: lo, High: lo + 250}, {Low: 0, High: 1000},
					{Low: 0, High: 1000}, {Low: 0, High: 1000}})
				s.ID = core.SubscriptionID(i + 1)
				idx.Add(s)
			}
		})
	}
}
