package index

import "bluedove/internal/core"

// Covering wraps a base Index with subscription covering/aggregation
// (SIENA-style, per "Towards Scalable Subscription Aggregation and Real Time
// Event Matching"): when an incoming subscription's cuboid is contained by an
// already-indexed one, only the cover stays in the base index and the covered
// subscription rides in a cover table keyed by the cover's ID. Templated
// multi-tenant workloads — thousands of subscribers sharing a handful of
// predicate shapes — collapse to one indexed entry per shape, shrinking the
// stabbing structure (and its per-query scan cost) by the covering ratio.
//
// Correctness is preserved because covering here is containment of the FULL
// cuboid, not just the indexed dimension: a message stabbing a cover may
// still miss a covered subscription, so Stab re-checks each covered entry's
// predicate on the indexed dimension and Match's verify pass checks the
// rest, exactly as for directly indexed subscriptions.
//
// Removing a cover re-exposes its covered set: every rider is re-added
// through the normal Add path, so one of them becomes the new cover (or they
// attach to other existing covers). Overlapping and All enumerate covered
// subscriptions too, so segment split/handover and snapshotting see the full
// set. Like the wrapped indexes, Covering is NOT safe for concurrent use.
type Covering struct {
	base Index
	// covered maps a cover's ID to the subscriptions riding on it; the cover
	// itself lives in base. Len(covered[id]) is the cover's refcount.
	covered map[core.SubscriptionID][]*core.Subscription
	// coverOf maps a covered subscription to its cover.
	coverOf map[core.SubscriptionID]core.SubscriptionID
	// subs holds every live subscription, cover or covered.
	subs map[core.SubscriptionID]*core.Subscription
	// probe is Add's candidate scratch.
	probe []*core.Subscription
}

var _ Index = (*Covering)(nil)

// NewCovering wraps base with covering/aggregation. The base index must be
// empty.
func NewCovering(base Index) *Covering {
	return &Covering{
		base:    base,
		covered: make(map[core.SubscriptionID][]*core.Subscription),
		coverOf: make(map[core.SubscriptionID]core.SubscriptionID),
		subs:    make(map[core.SubscriptionID]*core.Subscription),
	}
}

// Dim returns the dimension this index searches on.
func (x *Covering) Dim() int { return x.base.Dim() }

// Len returns the number of stored subscriptions, covered ones included.
func (x *Covering) Len() int { return len(x.subs) }

// IndexedLen returns the number of entries in the base stabbing index — the
// covers. Len()/IndexedLen() is the covering collapse ratio.
func (x *Covering) IndexedLen() int { return x.base.Len() }

// covers reports whether a's cuboid contains b's: every predicate of a
// contains the corresponding predicate of b (half-open intervals, so plain
// bound comparison).
func covers(a, b *core.Subscription) bool {
	if len(a.Predicates) != len(b.Predicates) {
		return false
	}
	for i, ra := range a.Predicates {
		rb := b.Predicates[i]
		if ra.Low > rb.Low || ra.High < rb.High {
			return false
		}
	}
	return true
}

// Add inserts a subscription, attaching it to an existing cover when one
// contains its cuboid, demoting existing covers its cuboid contains, and
// indexing it otherwise. Adding an ID already present replaces the previous
// entry.
func (x *Covering) Add(s *core.Subscription) {
	if _, ok := x.subs[s.ID]; ok {
		x.Remove(s.ID)
	}
	dim := x.base.Dim()
	// Any cover containing s's full cuboid contains, on the indexed
	// dimension, every point of s's predicate — so a stab at its midpoint
	// finds all candidates.
	r := s.Predicates[dim]
	x.probe, _ = x.base.Stab((r.Low+r.High)/2, x.probe[:0])
	for _, c := range x.probe {
		if covers(c, s) {
			x.subs[s.ID] = s
			x.coverOf[s.ID] = c.ID
			x.covered[c.ID] = append(x.covered[c.ID], s)
			return
		}
	}
	// s becomes a cover. Demote every existing cover whose cuboid s
	// contains: the demoted cover and its riders all attach under s.
	x.probe = x.base.Overlapping(r, x.probe[:0])
	for _, c := range x.probe {
		if !covers(s, c) {
			continue
		}
		x.base.Remove(c.ID)
		x.coverOf[c.ID] = s.ID
		x.covered[s.ID] = append(x.covered[s.ID], c)
		for _, rider := range x.covered[c.ID] {
			x.coverOf[rider.ID] = s.ID
			x.covered[s.ID] = append(x.covered[s.ID], rider)
		}
		delete(x.covered, c.ID)
	}
	x.subs[s.ID] = s
	x.base.Add(s)
}

// Remove deletes the subscription with the given ID. Removing a cover
// re-exposes its covered set by re-adding every rider through Add.
func (x *Covering) Remove(id core.SubscriptionID) bool {
	if _, ok := x.subs[id]; !ok {
		return false
	}
	delete(x.subs, id)
	if cid, ok := x.coverOf[id]; ok {
		delete(x.coverOf, id)
		riders := x.covered[cid]
		for i, rider := range riders {
			if rider.ID == id {
				last := len(riders) - 1
				riders[i] = riders[last]
				riders[last] = nil
				riders = riders[:last]
				break
			}
		}
		if len(riders) == 0 {
			delete(x.covered, cid)
		} else {
			x.covered[cid] = riders
		}
		return true
	}
	// A cover: drop it from the base index and re-expose its riders.
	x.base.Remove(id)
	riders := x.covered[id]
	delete(x.covered, id)
	for _, rider := range riders {
		delete(x.coverOf, rider.ID)
		delete(x.subs, rider.ID)
	}
	for _, rider := range riders {
		x.Add(rider)
	}
	return true
}

// Contains reports whether a subscription with the given ID is stored.
func (x *Covering) Contains(id core.SubscriptionID) bool {
	_, ok := x.subs[id]
	return ok
}

// Stab appends every stored subscription whose predicate on Dim contains v:
// the stabbed covers, plus each stabbed cover's riders re-checked on Dim
// (a rider's predicate is contained in its cover's, so every rider whose
// predicate contains v rides on a stabbed cover — no rider is missed).
func (x *Covering) Stab(v float64, dst []*core.Subscription) ([]*core.Subscription, int) {
	start := len(dst)
	dst, scanned := x.base.Stab(v, dst)
	for i, end := start, len(dst); i < end; i++ {
		for _, rider := range x.covered[dst[i].ID] {
			scanned++
			if rider.Predicates[x.base.Dim()].Contains(v) {
				dst = append(dst, rider)
			}
		}
	}
	return dst, scanned
}

// Overlapping appends every stored subscription whose predicate on Dim
// overlaps r — covers from the base index plus their riders re-checked
// against r (a rider overlapping r implies its cover overlaps r, so
// enumerating riders of overlapping covers is complete). Used for segment
// split/handover, which must move covered subscriptions too.
func (x *Covering) Overlapping(r core.Range, dst []*core.Subscription) []*core.Subscription {
	start := len(dst)
	dst = x.base.Overlapping(r, dst)
	for i, end := start, len(dst); i < end; i++ {
		for _, rider := range x.covered[dst[i].ID] {
			if rider.Predicates[x.base.Dim()].Overlaps(r) {
				dst = append(dst, rider)
			}
		}
	}
	return dst
}

// All appends every stored subscription to dst, covered ones included.
func (x *Covering) All(dst []*core.Subscription) []*core.Subscription {
	for _, s := range x.subs {
		dst = append(dst, s)
	}
	return dst
}
