package index

import (
	"sort"

	"bluedove/internal/core"
)

// IntervalTree is a centered (Edelsbrunner-style) interval tree over the
// predicates on one dimension. Each node holds a center value; intervals
// containing the center are stored at the node in two orderings (ascending
// low, descending high), intervals entirely left/right of the center go to
// the subtrees. A stabbing query for v walks one root-to-leaf path and scans
// node lists only up to the first non-containing entry, giving
// O(log n + answer) typical cost.
//
// Mutations are buffered: Add appends to a pending list and Remove records a
// tombstone; queries scan the pending list linearly and consult the
// tombstone set, and the tree is rebuilt once the buffered-change count
// exceeds a fraction of the tree size. This batches the O(n log n) build
// across many updates — the matcher workload is bursty loads of
// subscriptions followed by long runs of queries.
type IntervalTree struct {
	dim     int
	root    *itNode
	size    int // live subscriptions inside the tree (excludes tombstoned)
	pending []*core.Subscription
	dead    map[core.SubscriptionID]bool
	present map[core.SubscriptionID]*core.Subscription
}

type itNode struct {
	center      float64
	byLow       []*core.Subscription // intervals containing center, ascending Low
	byHigh      []*core.Subscription // same intervals, descending High
	left, right *itNode
}

var _ Index = (*IntervalTree)(nil)

// NewIntervalTree returns an empty interval tree for the given dimension.
func NewIntervalTree(dim int) *IntervalTree {
	return &IntervalTree{
		dim:     dim,
		dead:    make(map[core.SubscriptionID]bool),
		present: make(map[core.SubscriptionID]*core.Subscription),
	}
}

// Dim returns the dimension this index searches on.
func (x *IntervalTree) Dim() int { return x.dim }

// Len returns the number of stored subscriptions.
func (x *IntervalTree) Len() int { return len(x.present) }

// rebuildThreshold reports whether buffered changes justify a rebuild.
func (x *IntervalTree) rebuildThreshold() bool {
	buffered := len(x.pending) + len(x.dead)
	return buffered > 64 && buffered*4 > x.size
}

// Add inserts or replaces a subscription.
func (x *IntervalTree) Add(s *core.Subscription) {
	if _, ok := x.present[s.ID]; ok {
		x.Remove(s.ID)
	}
	x.present[s.ID] = s
	x.pending = append(x.pending, s)
	if x.rebuildThreshold() {
		x.rebuild()
	}
}

// Remove deletes the subscription with the given ID.
func (x *IntervalTree) Remove(id core.SubscriptionID) bool {
	if _, ok := x.present[id]; !ok {
		return false
	}
	delete(x.present, id)
	// If it is still in the pending buffer, drop it there; otherwise tombstone.
	for i, s := range x.pending {
		if s.ID == id {
			last := len(x.pending) - 1
			x.pending[i] = x.pending[last]
			x.pending[last] = nil
			x.pending = x.pending[:last]
			return true
		}
	}
	x.dead[id] = true
	if x.rebuildThreshold() {
		x.rebuild()
	}
	return true
}

// rebuild folds pending inserts and tombstones into a fresh tree.
func (x *IntervalTree) rebuild() {
	live := make([]*core.Subscription, 0, len(x.present))
	for _, s := range x.present {
		live = append(live, s)
	}
	// Deterministic build order (map iteration is random).
	sort.Slice(live, func(i, j int) bool { return live[i].ID < live[j].ID })
	x.root = buildIT(live, x.dim)
	x.size = len(live)
	x.pending = x.pending[:0]
	x.dead = make(map[core.SubscriptionID]bool)
}

func buildIT(subs []*core.Subscription, dim int) *itNode {
	if len(subs) == 0 {
		return nil
	}
	// Center: median of interval midpoints.
	mids := make([]float64, len(subs))
	for i, s := range subs {
		r := s.Predicates[dim]
		mids[i] = (r.Low + r.High) / 2
	}
	sort.Float64s(mids)
	center := mids[len(mids)/2]

	var here, left, right []*core.Subscription
	for _, s := range subs {
		r := s.Predicates[dim]
		switch {
		case r.High <= center: // entirely left (High exclusive)
			left = append(left, s)
		case r.Low > center: // entirely right
			right = append(right, s)
		default:
			here = append(here, s)
		}
	}
	// Degenerate split guard: if everything landed on one side, store it here
	// to guarantee termination.
	if len(here) == 0 && (len(left) == 0 || len(right) == 0) {
		here = append(here, left...)
		here = append(here, right...)
		left, right = nil, nil
	}
	n := &itNode{center: center}
	n.byLow = append(n.byLow, here...)
	sort.Slice(n.byLow, func(i, j int) bool {
		return n.byLow[i].Predicates[dim].Low < n.byLow[j].Predicates[dim].Low
	})
	n.byHigh = append(n.byHigh, here...)
	sort.Slice(n.byHigh, func(i, j int) bool {
		return n.byHigh[i].Predicates[dim].High > n.byHigh[j].Predicates[dim].High
	})
	n.left = buildIT(left, dim)
	n.right = buildIT(right, dim)
	return n
}

// Stab returns the subscriptions containing v on Dim.
func (x *IntervalTree) Stab(v float64, dst []*core.Subscription) ([]*core.Subscription, int) {
	scanned := 0
	emit := func(s *core.Subscription) {
		if !x.dead[s.ID] {
			dst = append(dst, s)
		}
	}
	for n := x.root; n != nil; {
		switch {
		case v < n.center:
			for _, s := range n.byLow {
				scanned++
				if s.Predicates[x.dim].Low > v {
					break
				}
				// Low <= v < center <= High-... : containment on the left walk
				// still needs the explicit check because High is exclusive.
				if s.Predicates[x.dim].Contains(v) {
					emit(s)
				}
			}
			n = n.left
		case v > n.center:
			for _, s := range n.byHigh {
				scanned++
				if s.Predicates[x.dim].High <= v {
					break
				}
				if s.Predicates[x.dim].Contains(v) {
					emit(s)
				}
			}
			n = n.right
		default: // v == center: every interval at the node contains v (half-open check still applies)
			for _, s := range n.byLow {
				scanned++
				if s.Predicates[x.dim].Contains(v) {
					emit(s)
				}
			}
			n = nil
		}
	}
	for _, s := range x.pending {
		scanned++
		if s.Predicates[x.dim].Contains(v) {
			dst = append(dst, s)
		}
	}
	return dst, scanned
}

// Overlapping returns subscriptions whose predicate on Dim overlaps r.
func (x *IntervalTree) Overlapping(r core.Range, dst []*core.Subscription) []*core.Subscription {
	for _, s := range x.present {
		if s.Predicates[x.dim].Overlaps(r) {
			dst = append(dst, s)
		}
	}
	return dst
}

// All appends every stored subscription to dst.
func (x *IntervalTree) All(dst []*core.Subscription) []*core.Subscription {
	for _, s := range x.present {
		dst = append(dst, s)
	}
	return dst
}

// Contains reports whether a subscription with the given ID is stored.
func (x *IntervalTree) Contains(id core.SubscriptionID) bool {
	_, ok := x.present[id]
	return ok
}
