package index

import (
	"math/rand"
	"testing"

	"bluedove/internal/core"
)

// mkBox builds a subscription with the given cuboid over testSpace.
func mkBox(id core.SubscriptionID, preds ...core.Range) *core.Subscription {
	s := core.NewSubscription(core.SubscriberID(id), preds)
	s.ID = id
	return s
}

func TestCoveringBasic(t *testing.T) {
	for _, kind := range []Kind{KindScan, KindBucket, KindIntervalTree} {
		x := NewCovering(New(kind, testSpace, 0))
		cover := mkBox(1, core.Range{Low: 0, High: 100}, core.Range{Low: 0, High: 1000}, core.Range{Low: 0, High: 1000})
		rider := mkBox(2, core.Range{Low: 10, High: 90}, core.Range{Low: 100, High: 900}, core.Range{Low: 0, High: 1000})
		x.Add(cover)
		x.Add(rider)
		if x.Len() != 2 || x.IndexedLen() != 1 {
			t.Fatalf("%s: Len=%d IndexedLen=%d, want 2/1", kind, x.Len(), x.IndexedLen())
		}
		if !x.Contains(1) || !x.Contains(2) {
			t.Fatalf("%s: Contains lost a subscription", kind)
		}
		got, _ := x.Stab(50, nil)
		if !sameIDs(ids(got), []core.SubscriptionID{1, 2}) {
			t.Fatalf("%s: Stab(50) = %v, want both", kind, ids(got))
		}
		// A value inside the cover but outside the rider returns only the cover.
		got, _ = x.Stab(5, nil)
		if !sameIDs(ids(got), []core.SubscriptionID{1}) {
			t.Fatalf("%s: Stab(5) = %v, want [1]", kind, ids(got))
		}
		if gotA := ids(x.All(nil)); !sameIDs(gotA, []core.SubscriptionID{1, 2}) {
			t.Fatalf("%s: All = %v", kind, gotA)
		}
		// Removing the cover re-exposes the rider as its own cover.
		if !x.Remove(1) {
			t.Fatalf("%s: Remove(cover) = false", kind)
		}
		if x.Len() != 1 || x.IndexedLen() != 1 {
			t.Fatalf("%s: after cover removal Len=%d IndexedLen=%d, want 1/1", kind, x.Len(), x.IndexedLen())
		}
		got, _ = x.Stab(50, nil)
		if !sameIDs(ids(got), []core.SubscriptionID{2}) {
			t.Fatalf("%s: rider lost after cover removal: %v", kind, ids(got))
		}
	}
}

func TestCoveringDemotionFlattens(t *testing.T) {
	x := NewCovering(New(KindBucket, testSpace, 0))
	full := core.Range{Low: 0, High: 1000}
	inner := mkBox(1, core.Range{Low: 40, High: 60}, full, full)
	mid := mkBox(2, core.Range{Low: 30, High: 70}, full, full)
	outer := mkBox(3, core.Range{Low: 0, High: 100}, full, full)
	x.Add(inner) // becomes a cover
	x.Add(mid)   // contains inner: demotes it, inner rides on mid
	if x.IndexedLen() != 1 {
		t.Fatalf("after demotion IndexedLen=%d, want 1", x.IndexedLen())
	}
	x.Add(outer) // contains mid (and transitively inner): both ride on outer
	if x.Len() != 3 || x.IndexedLen() != 1 {
		t.Fatalf("Len=%d IndexedLen=%d, want 3/1", x.Len(), x.IndexedLen())
	}
	got, _ := x.Stab(50, nil)
	if !sameIDs(ids(got), []core.SubscriptionID{1, 2, 3}) {
		t.Fatalf("Stab(50) = %v, want all three", ids(got))
	}
	// One-level invariant: removing the outer cover re-exposes both.
	x.Remove(3)
	got, _ = x.Stab(50, nil)
	if !sameIDs(ids(got), []core.SubscriptionID{1, 2}) {
		t.Fatalf("after outer removal Stab(50) = %v, want [1 2]", ids(got))
	}
}

func TestCoveringReplaceSameID(t *testing.T) {
	x := NewCovering(New(KindBucket, testSpace, 0))
	full := core.Range{Low: 0, High: 1000}
	x.Add(mkBox(1, core.Range{Low: 0, High: 100}, full, full))
	x.Add(mkBox(2, core.Range{Low: 10, High: 20}, full, full)) // rides on 1
	// Replacing the rider with a cuboid outside the cover must re-home it.
	x.Add(mkBox(2, core.Range{Low: 500, High: 600}, full, full))
	if x.Len() != 2 {
		t.Fatalf("Len=%d, want 2", x.Len())
	}
	got, _ := x.Stab(550, nil)
	if !sameIDs(ids(got), []core.SubscriptionID{2}) {
		t.Fatalf("Stab(550) = %v, want [2]", ids(got))
	}
	if got, _ = x.Stab(15, nil); len(got) != 1 || got[0].ID != 1 {
		t.Fatalf("old rider shape still stored")
	}
}

// Property: covering-wrapped indexes agree with brute-force scan under
// random churn, across all base kinds, including heavily-templated input
// that drives the cover table hard.
func TestCoveringEquivalenceUnderChurn(t *testing.T) {
	for _, dim := range []int{0, 1, 2} {
		ref := NewScan(dim)
		under := map[string]Index{
			"cov-scan":         NewCovering(New(KindScan, testSpace, dim)),
			"cov-bucket":       NewCovering(New(KindBucket, testSpace, dim)),
			"cov-intervaltree": NewCovering(New(KindIntervalTree, testSpace, dim)),
		}
		rng := rand.New(rand.NewSource(int64(11 + dim)))
		// A small template pool makes containment chains common.
		templates := make([][]core.Range, 6)
		for i := range templates {
			templates[i] = randSub(rng, 1, 400).Predicates
		}
		nextID := core.SubscriptionID(1)
		live := []*core.Subscription{}
		for step := 0; step < 2500; step++ {
			switch op := rng.Intn(10); {
			case op < 5 || len(live) == 0: // add
				var s *core.Subscription
				if rng.Intn(2) == 0 {
					// Shrink a template: containment against earlier copies.
					tpl := templates[rng.Intn(len(templates))]
					preds := make([]core.Range, len(tpl))
					for d, r := range tpl {
						shrink := rng.Float64() * 0.3 * r.Length()
						preds[d] = core.Range{Low: r.Low + shrink/2, High: r.High - shrink/2}
					}
					s = core.NewSubscription(core.SubscriberID(nextID), preds)
					s.ID = nextID
				} else {
					s = randSub(rng, nextID, 300)
				}
				nextID++
				live = append(live, s)
				ref.Add(s)
				for _, u := range under {
					u.Add(s)
				}
			case op < 7: // remove (covers and riders alike)
				i := rng.Intn(len(live))
				id := live[i].ID
				live[i] = live[len(live)-1]
				live = live[:len(live)-1]
				ref.Remove(id)
				for name, u := range under {
					if !u.Remove(id) {
						t.Fatalf("%s: remove %v failed", name, id)
					}
				}
			default: // stab + overlap
				v := rng.Float64() * 1000
				want, _ := ref.Stab(v, nil)
				for name, u := range under {
					got, scanned := u.Stab(v, nil)
					if !sameIDs(ids(got), ids(want)) {
						t.Fatalf("step %d dim %d %s: Stab(%g) = %v, want %v",
							step, dim, name, v, ids(got), ids(want))
					}
					if scanned < len(got) {
						t.Fatalf("%s: scanned < |answer|", name)
					}
				}
				lo := rng.Float64() * 1000
				r := core.Range{Low: lo, High: lo + rng.Float64()*300}
				if r.Empty() {
					continue
				}
				wantO := ids(ref.Overlapping(r, nil))
				for name, u := range under {
					if gotO := ids(u.Overlapping(r, nil)); !sameIDs(gotO, wantO) {
						t.Fatalf("step %d %s: Overlapping = %v, want %v", step, name, gotO, wantO)
					}
				}
			}
			for name, u := range under {
				if u.Len() != len(live) {
					t.Fatalf("%s: Len = %d, want %d", name, u.Len(), len(live))
				}
				if u.(*Covering).IndexedLen() > u.Len() {
					t.Fatalf("%s: IndexedLen exceeds Len", name)
				}
			}
		}
	}
}

// The steady-state match hot path must not allocate: stab with a reused
// candidate buffer, verify, append into a reused destination.
func TestMatchZeroAlloc(t *testing.T) {
	for _, kind := range []Kind{KindScan, KindBucket, KindIntervalTree} {
		for _, cov := range []bool{false, true} {
			idx := New(kind, testSpace, 0)
			if cov {
				idx = NewCovering(idx)
			}
			rng := rand.New(rand.NewSource(3))
			for i := 1; i <= 500; i++ {
				idx.Add(randSub(rng, core.SubscriptionID(i), 300))
			}
			msg := core.NewMessage([]float64{500, 500, 500}, nil)
			var dst, cands []*core.Subscription
			dst, cands, _ = Match(idx, msg, dst[:0], cands) // warm capacities
			allocs := testing.AllocsPerRun(100, func() {
				dst, cands, _ = Match(idx, msg, dst[:0], cands)
			})
			if allocs != 0 {
				t.Errorf("%s covering=%v: %v allocs/op on the match hot path, want 0", kind, cov, allocs)
			}
		}
	}
}
