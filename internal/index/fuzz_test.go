package index

import (
	"testing"

	"bluedove/internal/core"
)

// FuzzCoveringAddRemove drives a covering-wrapped bucket index through an
// arbitrary add/remove/stab/overlap sequence decoded from the fuzz input and
// checks every answer against a brute-force scan oracle. The cover table's
// attach/demote/re-expose transitions are all reachable from small inputs:
// cuboid sizes derive from the input bytes, so nested shapes are common.
func FuzzCoveringAddRemove(f *testing.F) {
	f.Add([]byte{0x01, 0x40, 0x02, 0x10, 0x83, 0x50})
	f.Add([]byte{0x01, 0xff, 0x01, 0x80, 0x01, 0x20, 0x81, 0x81, 0xc0})
	f.Fuzz(func(t *testing.T, data []byte) {
		sp := core.UniformSpace(2, 256)
		ref := NewScan(0)
		cov := NewCovering(New(KindBucket, sp, 0))
		nextID := core.SubscriptionID(1)
		var live []core.SubscriptionID
		for i := 0; i+1 < len(data); i += 2 {
			op, arg := data[i], float64(data[i+1])
			switch op % 4 {
			case 0, 1: // add: cuboid centered on arg, size from op's high bits
				half := float64(op>>2) + 0.5
				preds := []core.Range{
					{Low: arg - half, High: arg + half},
					{Low: arg / 2, High: arg/2 + half*2},
				}
				s := core.NewSubscription(core.SubscriberID(nextID), preds)
				s.ID = nextID
				nextID++
				live = append(live, s.ID)
				ref.Add(s)
				cov.Add(s)
			case 2: // remove an arbitrary live subscription
				if len(live) == 0 {
					continue
				}
				k := int(arg) % len(live)
				id := live[k]
				live[k] = live[len(live)-1]
				live = live[:len(live)-1]
				if ref.Remove(id) != cov.Remove(id) {
					t.Fatalf("Remove(%v) presence mismatch", id)
				}
			case 3: // stab + overlap, answers must agree with the oracle
				want, _ := ref.Stab(arg, nil)
				got, scanned := cov.Stab(arg, nil)
				if !sameIDs(ids(got), ids(want)) {
					t.Fatalf("Stab(%g) = %v, want %v", arg, ids(got), ids(want))
				}
				if scanned < len(got) {
					t.Fatalf("scanned %d < |answer| %d", scanned, len(got))
				}
				r := core.Range{Low: arg - 3, High: arg + float64(op>>4) + 1}
				if !sameIDs(ids(cov.Overlapping(r, nil)), ids(ref.Overlapping(r, nil))) {
					t.Fatalf("Overlapping(%v) mismatch", r)
				}
			}
			if cov.Len() != ref.Len() {
				t.Fatalf("Len drift: covering %d, oracle %d", cov.Len(), ref.Len())
			}
			if cov.IndexedLen() > cov.Len() {
				t.Fatal("IndexedLen exceeds Len")
			}
		}
		if !sameIDs(ids(cov.All(nil)), ids(ref.All(nil))) {
			t.Fatal("All mismatch after sequence")
		}
	})
}
