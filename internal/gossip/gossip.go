package gossip

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"bluedove/internal/core"
	"bluedove/internal/metrics"
	"bluedove/internal/transport"
	"bluedove/internal/wire"
)

// Config parameterizes a Gossiper.
type Config struct {
	// ID is this node's cluster identifier; required.
	ID core.NodeID
	// Addr is this node's transport address (as peers should dial it);
	// required.
	Addr string
	// Role is this node's tier.
	Role core.NodeRole
	// Transport sends gossip exchanges; required.
	Transport transport.Transport
	// Seeds are addresses contacted when no live peers are known.
	Seeds []string
	// Interval is the gossip round period (default 1s, as in the paper).
	Interval time.Duration
	// Fanout is the number of peers contacted per round (default
	// ~log2(N)+1, recomputed each round; explicit values override).
	Fanout int
	// FailAfter marks an endpoint dead when its heartbeat has not advanced
	// for this long (default 10s).
	FailAfter time.Duration
	// SuspectAfter marks an endpoint suspect — still routed to, but under
	// watch — when its heartbeat has stalled this long (default FailAfter/2).
	// Must be less than FailAfter.
	SuspectAfter time.Duration
	// Generation is this incarnation's number; pass a value greater than
	// any previous incarnation's (e.g. boot time). Default: current time.
	Generation uint64
	// Now supplies the local clock in nanoseconds (default time.Now); tests
	// inject virtual clocks.
	Now func() int64
	// Seed drives peer selection (default: derived from ID).
	Seed int64
}

// Gossiper maintains the cluster view for one node.
type Gossiper struct {
	cfg  Config
	mu   sync.Mutex
	self *Endpoint
	eps  map[core.NodeID]*Endpoint
	rng  *rand.Rand
	stop chan struct{}
	wg   sync.WaitGroup
	// Bytes counts gossip payload traffic for overhead accounting.
	Bytes metrics.Counter
	// onAlive, onDead are invoked (outside the lock) on liveness changes.
	onChange func(id core.NodeID, alive bool)
	lastLive map[core.NodeID]bool
}

// New builds a Gossiper. It does not start gossiping; call Start.
func New(cfg Config) (*Gossiper, error) {
	if cfg.ID == 0 || cfg.Addr == "" || cfg.Transport == nil {
		return nil, errors.New("gossip: ID, Addr and Transport are required")
	}
	if cfg.Interval <= 0 {
		cfg.Interval = time.Second
	}
	if cfg.FailAfter <= 0 {
		cfg.FailAfter = 10 * time.Second
	}
	if cfg.SuspectAfter <= 0 || cfg.SuspectAfter >= cfg.FailAfter {
		cfg.SuspectAfter = cfg.FailAfter / 2
	}
	if cfg.Now == nil {
		cfg.Now = func() int64 { return time.Now().UnixNano() }
	}
	if cfg.Generation == 0 {
		cfg.Generation = uint64(cfg.Now())
	}
	if cfg.Seed == 0 {
		cfg.Seed = int64(cfg.ID) * 2654435761
	}
	g := &Gossiper{
		cfg:      cfg,
		eps:      make(map[core.NodeID]*Endpoint),
		rng:      rand.New(rand.NewSource(cfg.Seed)),
		stop:     make(chan struct{}),
		lastLive: make(map[core.NodeID]bool),
	}
	g.self = &Endpoint{
		ID:         cfg.ID,
		Addr:       cfg.Addr,
		Role:       cfg.Role,
		Generation: cfg.Generation,
		Heartbeat:  1,
		States:     make(map[string]Versioned),
		lastSeen:   cfg.Now(),
	}
	g.eps[cfg.ID] = g.self
	return g, nil
}

// OnLivenessChange registers a callback invoked when a peer's liveness flips
// (called from the gossip goroutine, outside the internal lock). Must be set
// before Start.
func (g *Gossiper) OnLivenessChange(fn func(id core.NodeID, alive bool)) {
	g.onChange = fn
}

// Start begins periodic gossip rounds.
func (g *Gossiper) Start() {
	g.wg.Add(1)
	go g.loop()
}

// Stop halts gossip rounds.
func (g *Gossiper) Stop() {
	select {
	case <-g.stop:
	default:
		close(g.stop)
	}
	g.wg.Wait()
}

func (g *Gossiper) loop() {
	defer g.wg.Done()
	ticker := time.NewTicker(g.cfg.Interval)
	defer ticker.Stop()
	for {
		select {
		case <-g.stop:
			return
		case <-ticker.C:
			g.Round()
		}
	}
}

// SetState publishes (or updates) one of this node's application states;
// the version must increase for peers to adopt it.
func (g *Gossiper) SetState(key string, value []byte, version uint64) {
	g.mu.Lock()
	defer g.mu.Unlock()
	cur, ok := g.self.States[key]
	if ok && version <= cur.Version {
		return
	}
	val := make([]byte, len(value))
	copy(val, value)
	g.self.States[key] = Versioned{Value: val, Version: version}
}

// StateOf returns endpoint id's value for key.
func (g *Gossiper) StateOf(id core.NodeID, key string) (value []byte, version uint64, ok bool) {
	g.mu.Lock()
	defer g.mu.Unlock()
	e, found := g.eps[id]
	if !found {
		return nil, 0, false
	}
	v, found := e.States[key]
	if !found {
		return nil, 0, false
	}
	out := make([]byte, len(v.Value))
	copy(out, v.Value)
	return out, v.Version, true
}

// HighestState returns the freshest value of key across all endpoints
// (highest version wins; dead endpoints included — state outlives its
// publisher). ok is false when no endpoint publishes the key.
func (g *Gossiper) HighestState(key string) (value []byte, version uint64, ok bool) {
	g.mu.Lock()
	defer g.mu.Unlock()
	for _, e := range g.eps {
		if v, found := e.States[key]; found && (!ok || v.Version > version) {
			version = v.Version
			value = v.Value
			ok = true
		}
	}
	if ok {
		out := make([]byte, len(value))
		copy(out, value)
		value = out
	}
	return value, version, ok
}

// Peer is a read-only snapshot of one endpoint.
type Peer struct {
	ID    core.NodeID
	Addr  string
	Role  core.NodeRole
	Alive bool
}

// Peers returns a snapshot of all known endpoints (including self).
func (g *Gossiper) Peers() []Peer {
	now := g.cfg.Now()
	g.mu.Lock()
	defer g.mu.Unlock()
	out := make([]Peer, 0, len(g.eps))
	for _, e := range g.eps {
		out = append(out, Peer{ID: e.ID, Addr: e.Addr, Role: e.Role, Alive: g.aliveLocked(e, now)})
	}
	return out
}

// Alive reports whether endpoint id is currently believed live.
func (g *Gossiper) Alive(id core.NodeID) bool {
	now := g.cfg.Now()
	g.mu.Lock()
	defer g.mu.Unlock()
	e, ok := g.eps[id]
	return ok && g.aliveLocked(e, now)
}

// AddrOf returns endpoint id's transport address.
func (g *Gossiper) AddrOf(id core.NodeID) (string, bool) {
	g.mu.Lock()
	defer g.mu.Unlock()
	e, ok := g.eps[id]
	if !ok {
		return "", false
	}
	return e.Addr, true
}

func (g *Gossiper) aliveLocked(e *Endpoint, now int64) bool {
	return g.statusLocked(e, now) != StatusDead
}

// Status classifies one endpoint's liveness: alive (fresh heartbeats),
// suspect (heartbeat stalled past SuspectAfter but not yet FailAfter — the
// node is still routed to), or dead (stalled past FailAfter).
type Status int

const (
	// StatusAlive endpoints have recent heartbeat progress.
	StatusAlive Status = iota
	// StatusSuspect endpoints have a stalled heartbeat but are not yet
	// declared dead; they still count as alive for routing.
	StatusSuspect
	// StatusDead endpoints have exceeded the failure timeout (or are
	// unknown).
	StatusDead
)

// String renders the status.
func (s Status) String() string {
	switch s {
	case StatusAlive:
		return "alive"
	case StatusSuspect:
		return "suspect"
	case StatusDead:
		return "dead"
	}
	return fmt.Sprintf("status(%d)", int(s))
}

// Status returns the current liveness classification of endpoint id
// (StatusDead for unknown endpoints; self is always alive).
func (g *Gossiper) Status(id core.NodeID) Status {
	now := g.cfg.Now()
	g.mu.Lock()
	defer g.mu.Unlock()
	e, ok := g.eps[id]
	if !ok {
		return StatusDead
	}
	return g.statusLocked(e, now)
}

func (g *Gossiper) statusLocked(e *Endpoint, now int64) Status {
	if e.ID == g.cfg.ID {
		return StatusAlive
	}
	stall := now - e.lastSeen
	switch {
	case stall < int64(g.cfg.SuspectAfter):
		return StatusAlive
	case stall < int64(g.cfg.FailAfter):
		return StatusSuspect
	default:
		return StatusDead
	}
}

// Round performs one gossip round synchronously: bump the heartbeat, pick
// peers, push-pull full state with each. Exposed for tests and for
// virtual-time harnesses; production uses Start's ticker.
func (g *Gossiper) Round() {
	now := g.cfg.Now()
	g.mu.Lock()
	g.self.Heartbeat++
	g.self.lastSeen = now
	payload := encodeEndpoints(g.snapshotLocked())
	targets := g.pickTargetsLocked(now)
	g.mu.Unlock()

	for _, addr := range targets {
		g.exchange(addr, payload)
	}
	g.notifyLiveness()
}

// exchange performs one push-pull with a peer address.
func (g *Gossiper) exchange(addr string, payload []byte) {
	env := &wire.Envelope{Kind: wire.KindGossip, From: g.cfg.ID, Body: payload}
	g.Bytes.Add(int64(len(payload)))
	resp, err := g.cfg.Transport.Request(addr, env, g.cfg.Interval)
	if err != nil {
		return // unreachable peers age out via heartbeat timeouts
	}
	if resp.Kind != wire.KindGossip {
		return
	}
	g.Bytes.Add(int64(len(resp.Body)))
	remote, err := decodeEndpoints(resp.Body)
	if err != nil {
		return
	}
	g.mergeRemote(remote)
}

// HandleGossip is the inbound handler: merge the sender's view and answer
// with ours (the pull half of push-pull). Nodes route wire.KindGossip
// envelopes here.
func (g *Gossiper) HandleGossip(env *wire.Envelope) *wire.Envelope {
	remote, err := decodeEndpoints(env.Body)
	if err != nil {
		return &wire.Envelope{Kind: wire.KindError, From: g.cfg.ID, Body: (&wire.ErrorBody{Text: err.Error()}).Encode()}
	}
	g.mergeRemote(remote)
	g.mu.Lock()
	payload := encodeEndpoints(g.snapshotLocked())
	g.mu.Unlock()
	// Count inbound + response traffic so per-node overhead accounting
	// covers both sides of every exchange.
	g.Bytes.Add(int64(len(env.Body) + len(payload)))
	g.notifyLiveness()
	return &wire.Envelope{Kind: wire.KindGossip, From: g.cfg.ID, Body: payload}
}

// mergeRemote folds a remote view into ours.
func (g *Gossiper) mergeRemote(remote []*Endpoint) {
	now := g.cfg.Now()
	g.mu.Lock()
	defer g.mu.Unlock()
	for _, re := range remote {
		if re.ID == g.cfg.ID {
			// Never let peers roll back our own state; a higher remote
			// generation for our own ID would mean an ID collision.
			continue
		}
		local, ok := g.eps[re.ID]
		if !ok {
			ne := re.clone()
			ne.lastSeen = now
			g.eps[re.ID] = ne
			continue
		}
		local.merge(re, now)
	}
}

// snapshotLocked clones all endpoints for encoding.
func (g *Gossiper) snapshotLocked() []*Endpoint {
	out := make([]*Endpoint, 0, len(g.eps))
	for _, e := range g.eps {
		out = append(out, e)
	}
	return out
}

// pickTargetsLocked chooses this round's gossip targets: ~log2(N)+1 random
// live peers, falling back to seeds when nobody is known.
func (g *Gossiper) pickTargetsLocked(now int64) []string {
	var live []string
	for _, e := range g.eps {
		if e.ID != g.cfg.ID && g.aliveLocked(e, now) {
			live = append(live, e.Addr)
		}
	}
	if len(live) == 0 {
		seeds := make([]string, 0, len(g.cfg.Seeds))
		for _, s := range g.cfg.Seeds {
			if s != g.cfg.Addr {
				seeds = append(seeds, s)
			}
		}
		return seeds
	}
	fanout := g.cfg.Fanout
	if fanout <= 0 {
		fanout = 1
		for n := len(live); n > 1; n >>= 1 {
			fanout++
		}
	}
	if fanout > len(live) {
		fanout = len(live)
	}
	g.rng.Shuffle(len(live), func(i, j int) { live[i], live[j] = live[j], live[i] })
	return live[:fanout]
}

// notifyLiveness fires the liveness-change callback for peers whose alive
// state flipped since the last notification.
func (g *Gossiper) notifyLiveness() {
	if g.onChange == nil {
		return
	}
	now := g.cfg.Now()
	type change struct {
		id    core.NodeID
		alive bool
	}
	var changes []change
	g.mu.Lock()
	for id, e := range g.eps {
		if id == g.cfg.ID {
			continue
		}
		alive := g.aliveLocked(e, now)
		if prev, seen := g.lastLive[id]; !seen || prev != alive {
			g.lastLive[id] = alive
			changes = append(changes, change{id: id, alive: alive})
		}
	}
	g.mu.Unlock()
	for _, c := range changes {
		g.onChange(c.id, c.alive)
	}
}
