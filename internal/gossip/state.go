// Package gossip implements the Cassandra-style gossip protocol BlueDove
// uses to organize its one-hop overlay (paper Sections II-B and III-C):
// every node maintains versioned state for every endpoint — generation
// (incarnation), heartbeat, and application key/value states such as the
// encoded segment table — and periodically exchanges it with a few random
// peers. Any state change reaches the whole cluster in O(log N) rounds.
// Liveness is inferred from heartbeat progress: an endpoint whose heartbeat
// has not advanced within the failure timeout is marked dead (and revived
// by a newer generation or fresh heartbeats).
package gossip

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"

	"bluedove/internal/core"
)

// Versioned is one application state value with its per-endpoint version.
type Versioned struct {
	// Value is the opaque state payload.
	Value []byte
	// Version orders updates of the same key from the same endpoint.
	Version uint64
}

// Endpoint is the gossip view of one node.
type Endpoint struct {
	// ID is the node's cluster-wide identifier.
	ID core.NodeID
	// Addr is the node's transport address.
	Addr string
	// Role distinguishes dispatchers from matchers.
	Role core.NodeRole
	// Generation is the node's incarnation number; a restarted node comes
	// back with a higher generation, which supersedes all older state.
	Generation uint64
	// Heartbeat increases every gossip round the node is alive.
	Heartbeat uint64
	// States holds the application key/value states.
	States map[string]Versioned

	// lastSeen is the local receive time (ns) of the last heartbeat
	// advance; it is not gossiped.
	lastSeen int64
}

// clone deep-copies the endpoint.
func (e *Endpoint) clone() *Endpoint {
	c := *e
	c.States = make(map[string]Versioned, len(e.States))
	for k, v := range e.States {
		val := make([]byte, len(v.Value))
		copy(val, v.Value)
		c.States[k] = Versioned{Value: val, Version: v.Version}
	}
	return &c
}

// newer reports whether remote strictly supersedes local by (generation,
// heartbeat) order.
func newer(remoteGen, remoteHb, localGen, localHb uint64) bool {
	if remoteGen != localGen {
		return remoteGen > localGen
	}
	return remoteHb > localHb
}

// merge folds the remote endpoint view into local, returning whether
// anything changed and whether the endpoint's liveness signal advanced.
func (e *Endpoint) merge(remote *Endpoint, now int64) (changed, beat bool) {
	if remote.Generation > e.Generation {
		// New incarnation replaces everything.
		addr, id := remote.Addr, remote.ID
		*e = *remote.clone()
		e.Addr, e.ID = addr, id
		e.lastSeen = now
		return true, true
	}
	if remote.Generation < e.Generation {
		return false, false
	}
	if remote.Heartbeat > e.Heartbeat {
		e.Heartbeat = remote.Heartbeat
		e.lastSeen = now
		changed, beat = true, true
	}
	for k, rv := range remote.States {
		lv, ok := e.States[k]
		if !ok || rv.Version > lv.Version {
			val := make([]byte, len(rv.Value))
			copy(val, rv.Value)
			e.States[k] = Versioned{Value: val, Version: rv.Version}
			changed = true
		}
	}
	if remote.Addr != "" && remote.Addr != e.Addr {
		e.Addr = remote.Addr
		changed = true
	}
	return changed, beat
}

// --- state map wire encoding -------------------------------------------

// maxEndpoints bounds decoded endpoint counts against corrupt frames.
const maxEndpoints = 1 << 20

// maxStates bounds decoded per-endpoint state counts.
const maxStates = 1 << 10

// encodeEndpoints serializes a set of endpoints for a gossip exchange.
func encodeEndpoints(eps []*Endpoint) []byte {
	var buf []byte
	put64 := func(v uint64) { buf = binary.LittleEndian.AppendUint64(buf, v) }
	put32 := func(v uint32) { buf = binary.LittleEndian.AppendUint32(buf, v) }
	put16 := func(v uint16) { buf = binary.LittleEndian.AppendUint16(buf, v) }
	putStr := func(s string) {
		put16(uint16(len(s)))
		buf = append(buf, s...)
	}
	put32(uint32(len(eps)))
	for _, e := range eps {
		put64(uint64(e.ID))
		putStr(e.Addr)
		buf = append(buf, byte(e.Role))
		put64(e.Generation)
		put64(e.Heartbeat)
		put16(uint16(len(e.States)))
		for k, v := range e.States {
			putStr(k)
			put64(v.Version)
			put32(uint32(len(v.Value)))
			buf = append(buf, v.Value...)
		}
	}
	return buf
}

// errTruncated reports a short gossip payload.
var errTruncated = errors.New("gossip: truncated state")

// decodeEndpoints parses a gossip exchange payload.
func decodeEndpoints(data []byte) ([]*Endpoint, error) {
	off := 0
	need := func(n int) ([]byte, error) {
		if off+n > len(data) {
			return nil, errTruncated
		}
		b := data[off : off+n]
		off += n
		return b, nil
	}
	get64 := func() (uint64, error) {
		b, err := need(8)
		if err != nil {
			return 0, err
		}
		return binary.LittleEndian.Uint64(b), nil
	}
	get32 := func() (uint32, error) {
		b, err := need(4)
		if err != nil {
			return 0, err
		}
		return binary.LittleEndian.Uint32(b), nil
	}
	get16 := func() (uint16, error) {
		b, err := need(2)
		if err != nil {
			return 0, err
		}
		return binary.LittleEndian.Uint16(b), nil
	}
	getStr := func() (string, error) {
		n, err := get16()
		if err != nil {
			return "", err
		}
		b, err := need(int(n))
		if err != nil {
			return "", err
		}
		return string(b), nil
	}

	count, err := get32()
	if err != nil {
		return nil, err
	}
	if count > maxEndpoints {
		return nil, fmt.Errorf("gossip: implausible endpoint count %d", count)
	}
	out := make([]*Endpoint, 0, count)
	for i := uint32(0); i < count; i++ {
		e := &Endpoint{States: make(map[string]Versioned)}
		id, err := get64()
		if err != nil {
			return nil, err
		}
		e.ID = core.NodeID(id)
		if e.Addr, err = getStr(); err != nil {
			return nil, err
		}
		roleB, err := need(1)
		if err != nil {
			return nil, err
		}
		e.Role = core.NodeRole(roleB[0])
		if e.Generation, err = get64(); err != nil {
			return nil, err
		}
		if e.Heartbeat, err = get64(); err != nil {
			return nil, err
		}
		nStates, err := get16()
		if err != nil {
			return nil, err
		}
		if nStates > maxStates {
			return nil, fmt.Errorf("gossip: implausible state count %d", nStates)
		}
		for j := uint16(0); j < nStates; j++ {
			key, err := getStr()
			if err != nil {
				return nil, err
			}
			ver, err := get64()
			if err != nil {
				return nil, err
			}
			vlen, err := get32()
			if err != nil {
				return nil, err
			}
			if vlen > math.MaxInt32 || int(vlen) > len(data)-off {
				return nil, errTruncated
			}
			raw, err := need(int(vlen))
			if err != nil {
				return nil, err
			}
			val := make([]byte, len(raw))
			copy(val, raw)
			e.States[key] = Versioned{Value: val, Version: ver}
		}
		out = append(out, e)
	}
	if off != len(data) {
		return nil, fmt.Errorf("gossip: %d trailing bytes", len(data)-off)
	}
	return out, nil
}
