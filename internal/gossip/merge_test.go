package gossip

import (
	"fmt"
	"math/rand"
	"testing"

	"bluedove/internal/core"
)

// randomEndpointViews builds v independently mutated views of the same n
// endpoints.
func randomEndpointViews(rng *rand.Rand, n, v int) [][]*Endpoint {
	views := make([][]*Endpoint, v)
	for vi := 0; vi < v; vi++ {
		eps := make([]*Endpoint, 0, n)
		for id := 1; id <= n; id++ {
			e := &Endpoint{
				ID:         core.NodeID(id),
				Addr:       fmt.Sprintf("n%d", id),
				Role:       core.RoleMatcher,
				Generation: uint64(1 + rng.Intn(3)),
				Heartbeat:  uint64(rng.Intn(100)),
				States:     map[string]Versioned{},
			}
			for _, key := range []string{"a", "b"} {
				if rng.Intn(2) == 0 {
					ver := uint64(rng.Intn(10))
					e.States[key] = Versioned{Value: []byte(fmt.Sprintf("%s-g%d-v%d", key, e.Generation, ver)), Version: ver}
				}
			}
			eps = append(eps, e)
		}
		views[vi] = eps
	}
	return views
}

// mergeAll folds views into a fresh map in the given order.
func mergeAll(views [][]*Endpoint, order []int) map[core.NodeID]*Endpoint {
	out := make(map[core.NodeID]*Endpoint)
	for _, vi := range order {
		for _, re := range views[vi] {
			local, ok := out[re.ID]
			if !ok {
				out[re.ID] = re.clone()
				continue
			}
			local.merge(re, 0)
		}
	}
	return out
}

// Property: merging the same set of views in any order converges to the
// same (generation, heartbeat) and per-key versions — the anti-entropy
// convergence the overlay depends on.
func TestMergeOrderIndependenceProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for iter := 0; iter < 300; iter++ {
		views := randomEndpointViews(rng, 5, 4)
		base := mergeAll(views, []int{0, 1, 2, 3})
		perm := rng.Perm(4)
		other := mergeAll(views, perm)
		for id, be := range base {
			oe, ok := other[id]
			if !ok {
				t.Fatalf("iter %d: endpoint %v missing under order %v", iter, id, perm)
			}
			if be.Generation != oe.Generation || be.Heartbeat != oe.Heartbeat {
				t.Fatalf("iter %d: endpoint %v diverged: (g%d,h%d) vs (g%d,h%d) order %v",
					iter, id, be.Generation, be.Heartbeat, oe.Generation, oe.Heartbeat, perm)
			}
			for k, bv := range be.States {
				ov, ok := oe.States[k]
				if !ok || bv.Version != ov.Version {
					t.Fatalf("iter %d: endpoint %v state %q diverged: v%d vs v%d (present=%v)",
						iter, id, k, bv.Version, ov.Version, ok)
				}
			}
		}
	}
}

// Property: merge never regresses — folding any remote view into a local
// one never lowers generation, heartbeat, or any state version.
func TestMergeMonotoneProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for iter := 0; iter < 500; iter++ {
		views := randomEndpointViews(rng, 1, 2)
		local := views[0][0].clone()
		before := local.clone()
		local.merge(views[1][0], 0)
		if local.Generation < before.Generation {
			t.Fatal("generation regressed")
		}
		if local.Generation == before.Generation && local.Heartbeat < before.Heartbeat {
			t.Fatal("heartbeat regressed")
		}
		if local.Generation == before.Generation {
			for k, bv := range before.States {
				if lv, ok := local.States[k]; !ok || lv.Version < bv.Version {
					t.Fatalf("state %q regressed", k)
				}
			}
		}
	}
}
