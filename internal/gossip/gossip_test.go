package gossip

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"bluedove/internal/core"
	"bluedove/internal/transport"
	"bluedove/internal/wire"
)

// testClock is a manually advanced clock shared by a test cluster.
type testClock struct {
	mu  sync.Mutex
	now int64
}

func (c *testClock) Now() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

func (c *testClock) Advance(d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.now += int64(d)
}

// testNode bundles a gossiper with its mesh endpoint.
type testNode struct {
	g    *Gossiper
	addr string
}

// newCluster builds n gossipers on one mesh, with node 1 as the seed.
// Gossip rounds are driven manually via Round() for determinism.
func newCluster(t *testing.T, mesh *transport.Mesh, clock *testClock, n int) []*testNode {
	t.Helper()
	nodes := make([]*testNode, n)
	seed := "node-1"
	for i := 0; i < n; i++ {
		addr := fmt.Sprintf("node-%d", i+1)
		ep := mesh.Endpoint(addr)
		g, err := New(Config{
			ID:         core.NodeID(i + 1),
			Addr:       addr,
			Role:       core.RoleMatcher,
			Transport:  ep,
			Seeds:      []string{seed},
			Interval:   time.Second,
			FailAfter:  5 * time.Second,
			Generation: 1,
			Now:        clock.Now,
		})
		if err != nil {
			t.Fatal(err)
		}
		node := &testNode{g: g, addr: addr}
		if _, err := ep.Listen(addr, func(env *wire.Envelope) *wire.Envelope {
			if env.Kind == wire.KindGossip {
				return g.HandleGossip(env)
			}
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		nodes[i] = node
	}
	return nodes
}

// rounds drives r synchronized gossip rounds, advancing the clock 1s per
// round.
func rounds(clock *testClock, nodes []*testNode, r int) {
	for i := 0; i < r; i++ {
		clock.Advance(time.Second)
		for _, n := range nodes {
			n.g.Round()
		}
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Error("empty config accepted")
	}
	mesh := transport.NewMesh(0)
	defer mesh.Close()
	g, err := New(Config{ID: 1, Addr: "a", Transport: mesh.Endpoint("a")})
	if err != nil {
		t.Fatal(err)
	}
	if g.cfg.Interval != time.Second || g.cfg.FailAfter != 10*time.Second {
		t.Error("defaults not applied")
	}
}

func TestMembershipConverges(t *testing.T) {
	mesh := transport.NewMesh(0)
	defer mesh.Close()
	clock := &testClock{}
	nodes := newCluster(t, mesh, clock, 10)
	rounds(clock, nodes, 8) // > log2(10) rounds
	for _, n := range nodes {
		peers := n.g.Peers()
		if len(peers) != 10 {
			t.Fatalf("%s sees %d peers, want 10", n.addr, len(peers))
		}
		for _, p := range peers {
			if !p.Alive {
				t.Fatalf("%s sees %v dead", n.addr, p.ID)
			}
		}
	}
}

func TestStateDissemination(t *testing.T) {
	mesh := transport.NewMesh(0)
	defer mesh.Close()
	clock := &testClock{}
	nodes := newCluster(t, mesh, clock, 8)
	rounds(clock, nodes, 6)
	nodes[3].g.SetState("table", []byte("v1-table"), 1)
	rounds(clock, nodes, 6)
	for _, n := range nodes {
		val, ver, ok := n.g.StateOf(4, "table")
		if !ok || string(val) != "v1-table" || ver != 1 {
			t.Fatalf("%s: table state = %q v%d ok=%v", n.addr, val, ver, ok)
		}
	}
	// Update must supersede.
	nodes[3].g.SetState("table", []byte("v2-table"), 2)
	rounds(clock, nodes, 6)
	for _, n := range nodes {
		val, _, _ := n.g.StateOf(4, "table")
		if string(val) != "v2-table" {
			t.Fatalf("%s: stale table state %q", n.addr, val)
		}
	}
	// Stale version must be ignored at the source.
	nodes[3].g.SetState("table", []byte("old"), 1)
	if val, _, _ := nodes[3].g.StateOf(4, "table"); string(val) != "v2-table" {
		t.Error("stale SetState overwrote newer value")
	}
}

func TestHighestState(t *testing.T) {
	mesh := transport.NewMesh(0)
	defer mesh.Close()
	clock := &testClock{}
	nodes := newCluster(t, mesh, clock, 4)
	rounds(clock, nodes, 5)
	nodes[0].g.SetState("table", []byte("t3"), 3)
	nodes[1].g.SetState("table", []byte("t7"), 7)
	rounds(clock, nodes, 5)
	for _, n := range nodes {
		val, ver, ok := n.g.HighestState("table")
		if !ok || ver != 7 || string(val) != "t7" {
			t.Fatalf("%s: highest = %q v%d ok=%v", n.addr, val, ver, ok)
		}
	}
	if _, _, ok := nodes[0].g.HighestState("nope"); ok {
		t.Error("unknown key reported")
	}
}

func TestFailureDetection(t *testing.T) {
	mesh := transport.NewMesh(0)
	defer mesh.Close()
	clock := &testClock{}
	nodes := newCluster(t, mesh, clock, 6)
	rounds(clock, nodes, 6)

	var mu sync.Mutex
	flips := map[core.NodeID][]bool{}
	nodes[0].g.OnLivenessChange(func(id core.NodeID, alive bool) {
		mu.Lock()
		flips[id] = append(flips[id], alive)
		mu.Unlock()
	})

	// Crash node 6: stop gossiping it and cut its links.
	mesh.SetDown("node-6", true)
	live := nodes[:5]
	rounds(clock, live, 7) // FailAfter is 5s; 7 rounds push it past

	for _, n := range live {
		if n.g.Alive(6) {
			t.Fatalf("%s still believes node 6 alive", n.addr)
		}
	}
	mu.Lock()
	seq := flips[6]
	mu.Unlock()
	if len(seq) == 0 || seq[len(seq)-1] != false {
		t.Fatalf("liveness callback sequence for node 6: %v", seq)
	}

	// Node 6 restarts with a higher generation and rejoins.
	mesh.SetDown("node-6", false)
	ep := mesh.Endpoint("node-6b")
	g6, err := New(Config{
		ID: 6, Addr: "node-6", Transport: ep, Seeds: []string{"node-1"},
		FailAfter: 5 * time.Second, Generation: 2, Now: clock.Now,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Rebind the handler address by reusing the original listener's queue:
	// the mesh still routes node-6; point its handler at the new gossiper
	// by re-listening under a fresh label is not possible, so drive the
	// exchange from node 6's side only.
	all := append(append([]*testNode{}, live...), &testNode{g: g6, addr: "node-6"})
	rounds(clock, all, 7)
	for _, n := range live {
		if !n.g.Alive(6) {
			t.Fatalf("%s did not revive node 6", n.addr)
		}
	}
	mu.Lock()
	seq = flips[6]
	mu.Unlock()
	if seq[len(seq)-1] != true {
		t.Fatalf("liveness callback did not report revival: %v", seq)
	}
}

func TestAddrOfAndAlive(t *testing.T) {
	mesh := transport.NewMesh(0)
	defer mesh.Close()
	clock := &testClock{}
	nodes := newCluster(t, mesh, clock, 3)
	rounds(clock, nodes, 4)
	addr, ok := nodes[0].g.AddrOf(3)
	if !ok || addr != "node-3" {
		t.Fatalf("AddrOf(3) = %q, %v", addr, ok)
	}
	if _, ok := nodes[0].g.AddrOf(99); ok {
		t.Error("unknown node resolved")
	}
	if nodes[0].g.Alive(99) {
		t.Error("unknown node alive")
	}
	if !nodes[0].g.Alive(1) {
		t.Error("self not alive")
	}
}

func TestOwnStateNeverRolledBack(t *testing.T) {
	mesh := transport.NewMesh(0)
	defer mesh.Close()
	clock := &testClock{}
	nodes := newCluster(t, mesh, clock, 2)
	nodes[0].g.SetState("k", []byte("mine"), 5)
	rounds(clock, nodes, 4)
	// Forge a gossip message claiming node 1 has different state.
	forged := &Endpoint{
		ID: 1, Addr: "node-1", Role: core.RoleMatcher,
		Generation: 99, Heartbeat: 99,
		States: map[string]Versioned{"k": {Value: []byte("forged"), Version: 100}},
	}
	env := &wire.Envelope{Kind: wire.KindGossip, From: 2, Body: encodeEndpoints([]*Endpoint{forged})}
	nodes[0].g.HandleGossip(env)
	if val, _, _ := nodes[0].g.StateOf(1, "k"); string(val) != "mine" {
		t.Fatalf("own state rolled back to %q", val)
	}
}

func TestHandleGossipRejectsGarbage(t *testing.T) {
	mesh := transport.NewMesh(0)
	defer mesh.Close()
	g, err := New(Config{ID: 1, Addr: "a", Transport: mesh.Endpoint("a"), Now: (&testClock{}).Now})
	if err != nil {
		t.Fatal(err)
	}
	resp := g.HandleGossip(&wire.Envelope{Kind: wire.KindGossip, Body: []byte{1, 2, 3}})
	if resp.Kind != wire.KindError {
		t.Fatalf("garbage accepted: %v", resp.Kind)
	}
}

func TestEncodeDecodeEndpointsRoundtrip(t *testing.T) {
	eps := []*Endpoint{
		{ID: 1, Addr: "a:1", Role: core.RoleMatcher, Generation: 3, Heartbeat: 9,
			States: map[string]Versioned{"x": {Value: []byte("v"), Version: 4}}},
		{ID: 2, Addr: "b:2", Role: core.RoleDispatcher, Generation: 1, Heartbeat: 2,
			States: map[string]Versioned{}},
	}
	data := encodeEndpoints(eps)
	got, err := decodeEndpoints(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0].ID != 1 || got[0].Addr != "a:1" || got[1].Role != core.RoleDispatcher {
		t.Fatalf("%+v", got)
	}
	if string(got[0].States["x"].Value) != "v" || got[0].States["x"].Version != 4 {
		t.Fatalf("states: %+v", got[0].States)
	}
	// Truncations must error, never panic.
	for cut := 0; cut < len(data); cut++ {
		if _, err := decodeEndpoints(data[:cut]); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
	if _, err := decodeEndpoints(append(data, 0)); err == nil {
		t.Error("trailing byte accepted")
	}
}

func TestStartStopRealTime(t *testing.T) {
	mesh := transport.NewMesh(0)
	defer mesh.Close()
	mk := func(id core.NodeID, addr string) *Gossiper {
		ep := mesh.Endpoint(addr)
		g, err := New(Config{
			ID: id, Addr: addr, Transport: ep, Seeds: []string{"ga"},
			Interval: 10 * time.Millisecond, FailAfter: time.Second, Generation: 1,
		})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := ep.Listen(addr, func(env *wire.Envelope) *wire.Envelope {
			if env.Kind == wire.KindGossip {
				return g.HandleGossip(env)
			}
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		return g
	}
	a := mk(1, "ga")
	b := mk(2, "gb")
	a.Start()
	b.Start()
	defer a.Stop()
	defer b.Stop()
	deadline := time.Now().Add(3 * time.Second)
	for time.Now().Before(deadline) {
		if a.Alive(2) && b.Alive(1) {
			if a.Bytes.Value() == 0 {
				t.Error("gossip byte accounting is zero")
			}
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatal("real-time gossip did not converge")
}
