package gossip

import (
	"fmt"
	"testing"
	"time"

	"bluedove/internal/chaos"
	"bluedove/internal/core"
	"bluedove/internal/transport"
	"bluedove/internal/wire"
)

// newChaosCluster builds n gossipers whose mesh endpoints are wrapped by the
// chaos controller, with explicit suspect/fail timeouts. Rounds are driven
// manually via the shared virtual clock.
func newChaosCluster(t *testing.T, ctrl *chaos.Controller, mesh *transport.Mesh,
	clock *testClock, n int) []*testNode {
	t.Helper()
	nodes := make([]*testNode, n)
	for i := 0; i < n; i++ {
		addr := fmt.Sprintf("node-%d", i+1)
		ep := chaos.Wrap(ctrl, mesh.Endpoint(addr), addr)
		g, err := New(Config{
			ID:           core.NodeID(i + 1),
			Addr:         addr,
			Role:         core.RoleMatcher,
			Transport:    ep,
			Seeds:        []string{"node-1"},
			Interval:     time.Second,
			SuspectAfter: 3 * time.Second,
			FailAfter:    6 * time.Second,
			Generation:   1,
			Now:          clock.Now,
		})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := ep.Listen(addr, func(env *wire.Envelope) *wire.Envelope {
			if env.Kind == wire.KindGossip {
				return g.HandleGossip(env)
			}
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		nodes[i] = &testNode{g: g, addr: addr}
	}
	return nodes
}

// settle lets wall-clock-delayed chaos frames land between virtual rounds.
func settle() { time.Sleep(10 * time.Millisecond) }

// TestSuspectDeadRejoinUnderIsolation walks one node through the full
// liveness lifecycle: alive → suspect (heartbeat stalled past SuspectAfter)
// → dead (past FailAfter) → alive again after the partition heals.
func TestSuspectDeadRejoinUnderIsolation(t *testing.T) {
	ctrl := chaos.NewController(42)
	defer ctrl.Close()
	mesh := transport.NewMesh(0)
	defer mesh.Close()
	clock := &testClock{}
	nodes := newChaosCluster(t, ctrl, mesh, clock, 4)
	rounds(clock, nodes, 6)
	observers := nodes[:3]
	for _, n := range observers {
		if got := n.g.Status(4); got != StatusAlive {
			t.Fatalf("%s: node 4 status %v before any fault", n.addr, got)
		}
	}

	// Full network partition of node 4 (it keeps running — not a crash).
	ctrl.Isolate("node-4", true)

	// 4 rounds = 4s of stall: past SuspectAfter (3s), before FailAfter (6s).
	rounds(clock, observers, 4)
	for _, n := range observers {
		if got := n.g.Status(4); got != StatusSuspect {
			t.Fatalf("%s: node 4 status %v after 4s stall, want suspect", n.addr, got)
		}
		if !n.g.Alive(4) {
			t.Fatalf("%s: suspect node 4 must still count as alive for routing", n.addr)
		}
	}

	// 3 more rounds: past FailAfter — dead.
	rounds(clock, observers, 3)
	for _, n := range observers {
		if got := n.g.Status(4); got != StatusDead {
			t.Fatalf("%s: node 4 status %v after 7s stall, want dead", n.addr, got)
		}
		if n.g.Alive(4) {
			t.Fatalf("%s: dead node 4 still alive", n.addr)
		}
	}

	// Heal: the isolated node rejoins with fresh heartbeats (it was never
	// down, so no new generation is needed).
	ctrl.Heal()
	rounds(clock, nodes, 4)
	for _, n := range observers {
		if got := n.g.Status(4); got != StatusAlive {
			t.Fatalf("%s: node 4 status %v after heal, want alive", n.addr, got)
		}
	}
	if nodes[3].g.Status(1) != StatusAlive {
		t.Fatal("rejoined node does not see the cluster alive")
	}
}

// TestSuspectRecoversWithoutDeath: a stall shorter than FailAfter must pass
// through suspect and return to alive without ever being declared dead (no
// liveness-change callback fires).
func TestSuspectRecoversWithoutDeath(t *testing.T) {
	ctrl := chaos.NewController(7)
	defer ctrl.Close()
	mesh := transport.NewMesh(0)
	defer mesh.Close()
	clock := &testClock{}
	nodes := newChaosCluster(t, ctrl, mesh, clock, 3)
	rounds(clock, nodes, 6)
	died := false
	nodes[0].g.OnLivenessChange(func(id core.NodeID, alive bool) {
		if id == 3 && !alive {
			died = true
		}
	})

	ctrl.Isolate("node-3", true)
	rounds(clock, nodes[:2], 4) // 4s: suspect
	if got := nodes[0].g.Status(3); got != StatusSuspect {
		t.Fatalf("status %v, want suspect", got)
	}
	ctrl.Heal()
	rounds(clock, nodes, 3)
	if got := nodes[0].g.Status(3); got != StatusAlive {
		t.Fatalf("status %v after recovery, want alive", got)
	}
	if died {
		t.Fatal("transient stall below FailAfter was declared dead")
	}
}

// TestLivenessStableUnderLossAndDelay: with every link degraded (30% loss,
// 1–3ms added delay), no node may be falsely suspected dead — gossip's
// redundancy must absorb the noise.
func TestLivenessStableUnderLossAndDelay(t *testing.T) {
	ctrl := chaos.NewController(42)
	defer ctrl.Close()
	mesh := transport.NewMesh(0)
	defer mesh.Close()
	clock := &testClock{}
	nodes := newChaosCluster(t, ctrl, mesh, clock, 4)
	rounds(clock, nodes, 6) // converge on a clean network first
	ctrl.SetFaults(chaos.Wildcard, chaos.Wildcard, chaos.LinkFaults{
		Drop:     0.3,
		DelayMin: time.Millisecond,
		DelayMax: 3 * time.Millisecond,
	})
	for r := 0; r < 24; r++ {
		clock.Advance(time.Second)
		for _, n := range nodes {
			n.g.Round()
		}
		settle()
		for _, n := range nodes {
			for _, m := range nodes {
				if n == m {
					continue
				}
				if got := n.g.Status(m.g.cfg.ID); got == StatusDead {
					t.Fatalf("round %d: %s declared %s dead under 30%% loss", r, n.addr, m.addr)
				}
			}
		}
	}
	// The fault schedule must have actually exercised the links.
	dropped := 0
	for _, link := range ctrl.TracedLinks() {
		for _, v := range ctrl.Verdicts(link[0], link[1]) {
			if v.Action == chaos.Drop {
				dropped++
			}
		}
	}
	if dropped == 0 {
		t.Fatal("loss rule injected no drops — the test exercised nothing")
	}
}

// TestSuspectAfterDefault: SuspectAfter defaults to half of FailAfter and is
// clamped below it.
func TestSuspectAfterDefault(t *testing.T) {
	mesh := transport.NewMesh(0)
	defer mesh.Close()
	g, err := New(Config{ID: 1, Addr: "a", Transport: mesh.Endpoint("a"), FailAfter: 8 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	if g.cfg.SuspectAfter != 4*time.Second {
		t.Fatalf("SuspectAfter default = %v, want 4s", g.cfg.SuspectAfter)
	}
	g2, err := New(Config{ID: 1, Addr: "a", Transport: mesh.Endpoint("b"),
		FailAfter: 4 * time.Second, SuspectAfter: 9 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	if g2.cfg.SuspectAfter >= g2.cfg.FailAfter {
		t.Fatalf("SuspectAfter %v not clamped below FailAfter %v", g2.cfg.SuspectAfter, g2.cfg.FailAfter)
	}
}
