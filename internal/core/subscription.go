package core

import (
	"fmt"
	"math"
	"strconv"
	"strings"
)

// SubscriptionID uniquely identifies a subscription within a cluster.
type SubscriptionID uint64

// String renders the ID in decimal.
func (id SubscriptionID) String() string { return "sub-" + strconv.FormatUint(uint64(id), 10) }

// SubscriberID identifies the client that registered a subscription; the
// delivery substrate uses it to route notifications.
type SubscriberID uint64

// String renders the ID in decimal.
func (id SubscriberID) String() string { return "client-" + strconv.FormatUint(uint64(id), 10) }

// Range is a half-open interval [Low, High) — one range predicate along one
// dimension.
type Range struct {
	Low  float64
	High float64
}

// Contains reports whether v ∈ [Low, High).
func (r Range) Contains(v float64) bool { return v >= r.Low && v < r.High }

// Overlaps reports whether two half-open intervals intersect.
func (r Range) Overlaps(o Range) bool { return r.Low < o.High && o.Low < r.High }

// Empty reports whether the interval contains no values.
func (r Range) Empty() bool { return !(r.Low < r.High) }

// Length returns High - Low.
func (r Range) Length() float64 { return r.High - r.Low }

// Intersect returns the intersection of two ranges; the result may be empty.
func (r Range) Intersect(o Range) Range {
	return Range{Low: math.Max(r.Low, o.Low), High: math.Min(r.High, o.High)}
}

// String renders the range as "[low,high)".
func (r Range) String() string { return fmt.Sprintf("[%g,%g)", r.Low, r.High) }

// Subscription is a registered interest: the logical conjunction of one range
// predicate per dimension, equivalently a k-dimensional hyper-cuboid
// S = S^1 x ... x S^k. A message matches iff every attribute value falls in
// the corresponding predicate.
type Subscription struct {
	// ID is assigned on entry to the system; zero until then.
	ID SubscriptionID
	// Subscriber is the registering client.
	Subscriber SubscriberID
	// Predicates holds one Range per dimension, in dimension order.
	Predicates []Range
}

// NewSubscription builds a subscription for the given subscriber with the
// given predicates (copied).
func NewSubscription(sub SubscriberID, preds []Range) *Subscription {
	p := make([]Range, len(preds))
	copy(p, preds)
	return &Subscription{Subscriber: sub, Predicates: p}
}

// Validate checks that the subscription is a non-empty cuboid within the
// given space. Predicates are allowed to extend beyond a dimension's bounds
// (e.g. "any speed"); only emptiness and NaN are rejected, and each predicate
// must intersect the dimension's value set so the subscription is satisfiable.
func (s *Subscription) Validate(sp *Space) error {
	if len(s.Predicates) != sp.K() {
		return fmt.Errorf("core: subscription has %d predicates, space has %d dimensions", len(s.Predicates), sp.K())
	}
	for i, r := range s.Predicates {
		d := sp.Dim(i)
		if math.IsNaN(r.Low) || math.IsNaN(r.High) {
			return fmt.Errorf("core: subscription predicate %d (%s) has NaN bound", i, d.Name)
		}
		if r.Empty() {
			return fmt.Errorf("core: subscription predicate %d (%s) is empty: %v", i, d.Name, r)
		}
		if !r.Overlaps(Range{Low: d.Min, High: d.Max}) {
			return fmt.Errorf("core: subscription predicate %d (%s) %v does not intersect dimension range [%g,%g)",
				i, d.Name, r, d.Min, d.Max)
		}
	}
	return nil
}

// Matches reports whether the message point lies inside the subscription
// cuboid. Both must belong to the same space; lengths must agree.
func (s *Subscription) Matches(m *Message) bool {
	if len(s.Predicates) != len(m.Attrs) {
		return false
	}
	for i, r := range s.Predicates {
		if !r.Contains(m.Attrs[i]) {
			return false
		}
	}
	return true
}

// MatchesExcept reports whether the message satisfies every predicate except
// possibly the one on dimension skip. Matchers use it to verify the remaining
// dimensions after an index has already filtered on dimension skip.
func (s *Subscription) MatchesExcept(m *Message, skip int) bool {
	for i, r := range s.Predicates {
		if i == skip {
			continue
		}
		if !r.Contains(m.Attrs[i]) {
			return false
		}
	}
	return true
}

// Clone returns a deep copy of the subscription.
func (s *Subscription) Clone() *Subscription {
	c := *s
	c.Predicates = make([]Range, len(s.Predicates))
	copy(c.Predicates, s.Predicates)
	return &c
}

// String renders a compact human-readable form.
func (s *Subscription) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s@%s{", s.ID, s.Subscriber)
	for i, r := range s.Predicates {
		if i > 0 {
			b.WriteString(" ∧ ")
		}
		b.WriteString(r.String())
	}
	b.WriteByte('}')
	return b.String()
}
