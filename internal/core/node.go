package core

import "strconv"

// NodeID identifies a server (dispatcher or matcher) in the cluster. IDs are
// stable for the life of a process incarnation; a restarted server rejoins
// with a fresh generation number in the gossip layer but keeps its NodeID.
type NodeID uint64

// String renders the ID in decimal.
func (id NodeID) String() string { return "node-" + strconv.FormatUint(uint64(id), 10) }

// NodeRole distinguishes the two tiers of the BlueDove architecture
// (Section II-B): front-end dispatchers and back-end matchers.
type NodeRole uint8

// Node roles.
const (
	// RoleDispatcher marks a front-end server that receives subscriptions
	// and publications from clients and forwards them to matchers.
	RoleDispatcher NodeRole = iota + 1
	// RoleMatcher marks a back-end server that stores subscriptions and
	// performs matching.
	RoleMatcher
	// RoleBorder marks a federation border node: it computes this cluster's
	// interest summary, exchanges summaries with peer clusters, and routes
	// publications across the inter-cluster mesh (see internal/federation).
	RoleBorder
)

// String returns "dispatcher", "matcher", "border", or "unknown".
func (r NodeRole) String() string {
	switch r {
	case RoleDispatcher:
		return "dispatcher"
	case RoleMatcher:
		return "matcher"
	case RoleBorder:
		return "border"
	default:
		return "unknown"
	}
}
