// Package core defines the attribute-based publish/subscribe data model used
// throughout BlueDove: a k-dimensional attribute space, messages as points in
// that space, and subscriptions as hyper-cuboids (conjunctions of one range
// predicate per dimension).
//
// The model follows Section II-A of the paper: given k attributes
// {L1,...,Lk} with ordered value sets V^i, a message is a point
// m = (v1,...,vk) and a subscription is S = S^1 x ... x S^k with
// S^i = [l^i, u^i). A message matches a subscription iff m ∈ S.
package core

import (
	"errors"
	"fmt"
	"math"
	"strings"
)

// Dimension describes one attribute (one axis of the attribute space).
// Values along a dimension are float64 drawn from the half-open interval
// [Min, Max). Integer- or enum-valued attributes are represented by mapping
// them onto this continuum.
type Dimension struct {
	// Name identifies the attribute, e.g. "longitude" or "speed".
	Name string
	// Min is the inclusive lower bound of the attribute's value set.
	Min float64
	// Max is the exclusive upper bound of the attribute's value set.
	Max float64
}

// Extent returns the length of the dimension's value range.
func (d Dimension) Extent() float64 { return d.Max - d.Min }

// Contains reports whether v lies within the dimension's value set [Min, Max).
func (d Dimension) Contains(v float64) bool { return v >= d.Min && v < d.Max }

// Clamp returns v restricted to [Min, Max). Values at or above Max are
// mapped to the largest representable value below Max.
func (d Dimension) Clamp(v float64) float64 {
	if v < d.Min {
		return d.Min
	}
	if v >= d.Max {
		return math.Nextafter(d.Max, d.Min)
	}
	return v
}

func (d Dimension) validate() error {
	if d.Name == "" {
		return errors.New("core: dimension has empty name")
	}
	if !(d.Min < d.Max) {
		return fmt.Errorf("core: dimension %q has empty value range [%g, %g)", d.Name, d.Min, d.Max)
	}
	if math.IsNaN(d.Min) || math.IsNaN(d.Max) || math.IsInf(d.Min, 0) || math.IsInf(d.Max, 0) {
		return fmt.Errorf("core: dimension %q has non-finite bounds", d.Name)
	}
	return nil
}

// Space is a k-dimensional attribute space V = V^1 x ... x V^k. It is
// immutable after construction and safe for concurrent use.
type Space struct {
	dims   []Dimension
	byName map[string]int
}

// NewSpace constructs a Space from the given dimensions. It returns an error
// if there are no dimensions, a dimension is invalid, or two dimensions share
// a name.
func NewSpace(dims ...Dimension) (*Space, error) {
	if len(dims) == 0 {
		return nil, errors.New("core: space needs at least one dimension")
	}
	s := &Space{
		dims:   make([]Dimension, len(dims)),
		byName: make(map[string]int, len(dims)),
	}
	copy(s.dims, dims)
	for i, d := range s.dims {
		if err := d.validate(); err != nil {
			return nil, err
		}
		if _, dup := s.byName[d.Name]; dup {
			return nil, fmt.Errorf("core: duplicate dimension name %q", d.Name)
		}
		s.byName[d.Name] = i
	}
	return s, nil
}

// MustSpace is like NewSpace but panics on error. It is intended for
// package-level defaults and tests.
func MustSpace(dims ...Dimension) *Space {
	s, err := NewSpace(dims...)
	if err != nil {
		panic(err)
	}
	return s
}

// UniformSpace returns a Space with k dimensions named "d0".."d(k-1)", each
// with the value set [0, extent). This matches the paper's evaluation setup
// (four dimensions, each of length 1000).
func UniformSpace(k int, extent float64) *Space {
	dims := make([]Dimension, k)
	for i := range dims {
		dims[i] = Dimension{Name: fmt.Sprintf("d%d", i), Min: 0, Max: extent}
	}
	return MustSpace(dims...)
}

// K returns the number of dimensions.
func (s *Space) K() int { return len(s.dims) }

// Dim returns the i-th dimension. It panics if i is out of range.
func (s *Space) Dim(i int) Dimension { return s.dims[i] }

// Dims returns a copy of all dimensions in order.
func (s *Space) Dims() []Dimension {
	out := make([]Dimension, len(s.dims))
	copy(out, s.dims)
	return out
}

// IndexOf returns the index of the dimension with the given name, or -1 if
// no such dimension exists.
func (s *Space) IndexOf(name string) int {
	if i, ok := s.byName[name]; ok {
		return i
	}
	return -1
}

// Equal reports whether two spaces have identical dimensions in identical
// order.
func (s *Space) Equal(o *Space) bool {
	if s == o {
		return true
	}
	if o == nil || len(s.dims) != len(o.dims) {
		return false
	}
	for i, d := range s.dims {
		if d != o.dims[i] {
			return false
		}
	}
	return true
}

// String renders the space as "name[min,max) x ...".
func (s *Space) String() string {
	var b strings.Builder
	for i, d := range s.dims {
		if i > 0 {
			b.WriteString(" x ")
		}
		fmt.Fprintf(&b, "%s[%g,%g)", d.Name, d.Min, d.Max)
	}
	return b.String()
}
