package core

import (
	"fmt"
	"math"
	"strconv"
)

// MessageID uniquely identifies a publication within a cluster. IDs are
// assigned by the dispatcher that first receives the publication.
type MessageID uint64

// String renders the ID in decimal.
func (id MessageID) String() string { return "msg-" + strconv.FormatUint(uint64(id), 10) }

// Message is a publication: a point in the attribute space plus an opaque
// payload. Attrs[i] is the value on dimension i of the owning Space.
type Message struct {
	// ID is assigned on entry to the system; zero until then.
	ID MessageID
	// Attrs holds one value per dimension of the space, in dimension order.
	Attrs []float64
	// Payload is the application data carried by the publication. BlueDove
	// never interprets it.
	Payload []byte
	// PublishedAt is the cluster-clock timestamp (nanoseconds) when the
	// message entered a dispatcher. Used for response-time accounting.
	PublishedAt int64
	// TTL is the optional time-to-live in nanoseconds from PublishedAt.
	// Zero means the publication never expires. Expired publications are
	// shed at matcher dequeue instead of being matched.
	TTL int64
	// Trace is the hop-level trace context for sampled publications; nil
	// (the overwhelmingly common case) means the publication is untraced.
	Trace *TraceCtx
}

// NewMessage builds a message with the given attribute values and payload.
func NewMessage(attrs []float64, payload []byte) *Message {
	a := make([]float64, len(attrs))
	copy(a, attrs)
	return &Message{Attrs: a, Payload: payload}
}

// Validate checks that the message is a point inside the given space.
func (m *Message) Validate(s *Space) error {
	if len(m.Attrs) != s.K() {
		return fmt.Errorf("core: message has %d attributes, space has %d dimensions", len(m.Attrs), s.K())
	}
	for i, v := range m.Attrs {
		if math.IsNaN(v) {
			return fmt.Errorf("core: message attribute %d (%s) is NaN", i, s.Dim(i).Name)
		}
		if !s.Dim(i).Contains(v) {
			return fmt.Errorf("core: message attribute %d (%s) value %g outside [%g,%g)",
				i, s.Dim(i).Name, v, s.Dim(i).Min, s.Dim(i).Max)
		}
	}
	return nil
}

// Clone returns a deep copy of the message. The payload bytes are shared
// (payloads are immutable by convention).
func (m *Message) Clone() *Message {
	c := *m
	c.Attrs = make([]float64, len(m.Attrs))
	copy(c.Attrs, m.Attrs)
	if m.Trace != nil {
		tc := *m.Trace
		c.Trace = &tc
	}
	return &c
}

// String renders a compact human-readable form.
func (m *Message) String() string {
	return fmt.Sprintf("%s%v", m.ID, m.Attrs)
}
