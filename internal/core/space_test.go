package core

import (
	"math"
	"strings"
	"testing"
)

func TestNewSpaceValid(t *testing.T) {
	s, err := NewSpace(
		Dimension{Name: "longitude", Min: -180, Max: 180},
		Dimension{Name: "latitude", Min: -90, Max: 90},
		Dimension{Name: "speed", Min: 0, Max: 200},
	)
	if err != nil {
		t.Fatalf("NewSpace: %v", err)
	}
	if got := s.K(); got != 3 {
		t.Fatalf("K() = %d, want 3", got)
	}
	if got := s.Dim(1).Name; got != "latitude" {
		t.Fatalf("Dim(1).Name = %q, want latitude", got)
	}
}

func TestNewSpaceErrors(t *testing.T) {
	cases := []struct {
		name string
		dims []Dimension
	}{
		{"empty", nil},
		{"unnamed", []Dimension{{Min: 0, Max: 1}}},
		{"empty range", []Dimension{{Name: "x", Min: 1, Max: 1}}},
		{"inverted range", []Dimension{{Name: "x", Min: 2, Max: 1}}},
		{"nan bound", []Dimension{{Name: "x", Min: math.NaN(), Max: 1}}},
		{"inf bound", []Dimension{{Name: "x", Min: 0, Max: math.Inf(1)}}},
		{"duplicate name", []Dimension{{Name: "x", Min: 0, Max: 1}, {Name: "x", Min: 0, Max: 2}}},
	}
	for _, tc := range cases {
		if _, err := NewSpace(tc.dims...); err == nil {
			t.Errorf("%s: expected error, got nil", tc.name)
		}
	}
}

func TestMustSpacePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustSpace did not panic on invalid input")
		}
	}()
	MustSpace()
}

func TestUniformSpace(t *testing.T) {
	s := UniformSpace(4, 1000)
	if s.K() != 4 {
		t.Fatalf("K() = %d, want 4", s.K())
	}
	for i := 0; i < 4; i++ {
		d := s.Dim(i)
		if d.Min != 0 || d.Max != 1000 {
			t.Fatalf("dim %d = [%g,%g), want [0,1000)", i, d.Min, d.Max)
		}
	}
	if s.IndexOf("d2") != 2 {
		t.Fatalf("IndexOf(d2) = %d, want 2", s.IndexOf("d2"))
	}
	if s.IndexOf("nope") != -1 {
		t.Fatalf("IndexOf(nope) = %d, want -1", s.IndexOf("nope"))
	}
}

func TestDimensionContainsClamp(t *testing.T) {
	d := Dimension{Name: "x", Min: 0, Max: 10}
	if !d.Contains(0) {
		t.Error("Contains(0) = false, want true (lower bound inclusive)")
	}
	if d.Contains(10) {
		t.Error("Contains(10) = true, want false (upper bound exclusive)")
	}
	if d.Contains(-0.001) || d.Contains(10.5) {
		t.Error("Contains out-of-range value")
	}
	if got := d.Clamp(-5); got != 0 {
		t.Errorf("Clamp(-5) = %g, want 0", got)
	}
	if got := d.Clamp(15); !(got < 10) || got < 9.999 {
		t.Errorf("Clamp(15) = %g, want just below 10", got)
	}
	if got := d.Clamp(5); got != 5 {
		t.Errorf("Clamp(5) = %g, want 5", got)
	}
	if !d.Contains(d.Clamp(10)) {
		t.Error("Clamp(Max) must land inside the dimension")
	}
	if got := d.Extent(); got != 10 {
		t.Errorf("Extent() = %g, want 10", got)
	}
}

func TestSpaceEqual(t *testing.T) {
	a := UniformSpace(3, 100)
	b := UniformSpace(3, 100)
	c := UniformSpace(3, 200)
	d := UniformSpace(2, 100)
	if !a.Equal(a) || !a.Equal(b) {
		t.Error("equal spaces reported unequal")
	}
	if a.Equal(c) || a.Equal(d) || a.Equal(nil) {
		t.Error("unequal spaces reported equal")
	}
}

func TestSpaceDimsIsCopy(t *testing.T) {
	s := UniformSpace(2, 10)
	dims := s.Dims()
	dims[0].Max = 999
	if s.Dim(0).Max != 10 {
		t.Error("mutating Dims() result changed the space")
	}
}

func TestSpaceString(t *testing.T) {
	s := MustSpace(Dimension{Name: "x", Min: 0, Max: 1}, Dimension{Name: "y", Min: -1, Max: 1})
	got := s.String()
	if !strings.Contains(got, "x[0,1)") || !strings.Contains(got, "y[-1,1)") {
		t.Errorf("String() = %q", got)
	}
}
