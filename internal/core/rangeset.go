package core

import "sort"

// Range-set helpers shared by the matcher's interest-summary computation and
// the federation border tier. A range set is a sorted list of disjoint,
// non-touching half-open intervals over one dimension; MergeRanges is the
// only constructor, and it is deterministic — the same input multiset always
// produces the same output — so two nodes summarizing the same subscription
// set emit byte-identical summaries (the same-seed determinism contract).

// MergeRanges sorts rs, unions overlapping or touching intervals, and then
// lossily widens the result down to at most max intervals by repeatedly
// closing the smallest gap between neighbors (ties broken toward the lowest
// interval). Widening can only ADD covered volume, never remove it, so a
// capped summary may cause false-positive forwarding but never a false
// negative. rs is modified in place; max <= 0 means no cap.
func MergeRanges(rs []Range, max int) []Range {
	if len(rs) == 0 {
		return rs[:0]
	}
	sort.Slice(rs, func(i, j int) bool {
		if rs[i].Low != rs[j].Low {
			return rs[i].Low < rs[j].Low
		}
		return rs[i].High < rs[j].High
	})
	out := rs[:1]
	for _, r := range rs[1:] {
		last := &out[len(out)-1]
		if r.Low <= last.High {
			if r.High > last.High {
				last.High = r.High
			}
			continue
		}
		out = append(out, r)
	}
	for max > 0 && len(out) > max {
		best, gap := 0, out[1].Low-out[0].High
		for i := 1; i < len(out)-1; i++ {
			if g := out[i+1].Low - out[i].High; g < gap {
				best, gap = i, g
			}
		}
		out[best].High = out[best+1].High
		out = append(out[:best+1], out[best+2:]...)
	}
	return out
}

// RangesContain reports whether v falls inside any interval of the sorted
// disjoint set rs.
func RangesContain(rs []Range, v float64) bool {
	i := sort.Search(len(rs), func(i int) bool { return rs[i].High > v })
	return i < len(rs) && rs[i].Low <= v
}

// RangesEqual reports element-wise equality of two range sets.
func RangesEqual(a, b []Range) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
