package core

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// TraceID identifies one sampled publication trace. Traces are sampled at
// the edge (client or dispatcher ingest); the ID defaults to the message ID
// so a trace can be joined back to delivery accounting.
type TraceID uint64

// String renders the ID in hex.
func (id TraceID) String() string { return "trace-" + strconv.FormatUint(uint64(id), 16) }

// Hop indexes one stage of a publication's path through the system. The
// hops are stamped in order; a timestamp of zero means "not reached" (or
// not visible to the node that recorded the trace).
type Hop int

// The per-publication hops, in path order (paper §IV measures the
// dispatcher→matcher→subscriber path; HopPublish/HopAck add the client and
// acknowledgement edges around it).
const (
	// HopPublish is when the client handed the publication to its transport.
	HopPublish Hop = iota
	// HopIngest is when a dispatcher accepted the publication and assigned
	// its message ID.
	HopIngest
	// HopForward is when the dispatcher picked a candidate matcher and
	// queued the publication for forwarding.
	HopForward
	// HopDequeue is when the matcher's per-dimension SEDA stage dequeued
	// the publication for matching.
	HopDequeue
	// HopMatch is when the matcher finished searching its subscription
	// index for the publication.
	HopMatch
	// HopDeliver is when the matcher queued the first delivery (zero when
	// the publication matched no subscriber).
	HopDeliver
	// HopAck is when the dispatcher processed the matcher's forward ack.
	HopAck
	// HopFederate is when a border node shipped the publication to a peer
	// cluster (stamped on the cross-cluster leg's trace clone). It sits
	// after HopAck — not in path position — so Complete() keeps covering
	// exactly the intra-cluster publish…deliver path; String() orders hops
	// by timestamp, which puts federate where it belongs on the timeline.
	HopFederate
	// HopCount is the number of hops in a trace.
	HopCount
)

// hopNames aligns with the Hop constants.
var hopNames = [HopCount]string{
	"publish", "ingest", "forward", "dequeue", "match", "deliver", "ack",
	"federate",
}

// String names the hop.
func (h Hop) String() string {
	if h >= 0 && h < HopCount {
		return hopNames[h]
	}
	return fmt.Sprintf("hop(%d)", int(h))
}

// TraceCtx is the per-publication trace context carried in wire frames for
// sampled publications. Timestamps are nanoseconds on whatever clock the
// deployment runs (wall clock for the runtime, virtual time for the
// simulator); hops stamped by different nodes therefore mix clocks, which
// is fine on one host (tests, loopback clusters, the simulator) and
// approximate across hosts.
type TraceCtx struct {
	// ID identifies the trace (defaults to the message ID at ingest).
	ID TraceID
	// Dispatcher is the node that ingested and forwarded the publication.
	Dispatcher NodeID
	// Matcher is the candidate matcher the publication was forwarded to.
	Matcher NodeID
	// Dim is the mPartition dimension the matcher searched.
	Dim int
	// Hops holds one timestamp per Hop constant; zero = not reached.
	Hops [HopCount]int64
}

// Stamp records now for the hop if it has not been stamped yet, so
// retransmissions keep the first attempt's timestamps.
func (t *TraceCtx) Stamp(h Hop, now int64) {
	if t.Hops[h] == 0 {
		t.Hops[h] = now
	}
}

// Merge copies every hop (and node/dim assignment) stamped in other but not
// in t. Used when a trace context returns to the dispatcher on an ack and
// must be joined with the locally retained copy.
func (t *TraceCtx) Merge(other *TraceCtx) {
	if other == nil {
		return
	}
	if t.ID == 0 {
		t.ID = other.ID
	}
	if t.Dispatcher == 0 {
		t.Dispatcher = other.Dispatcher
	}
	if t.Matcher == 0 {
		t.Matcher = other.Matcher
	}
	if t.Dim == 0 {
		t.Dim = other.Dim
	}
	for h := range t.Hops {
		if t.Hops[h] == 0 {
			t.Hops[h] = other.Hops[h]
		}
	}
}

// Complete reports whether every hop through deliver has been stamped.
// (HopAck is excluded: a matcher-side trace is complete before the ack, and
// HopDeliver is the last hop a matcher can see.)
func (t *TraceCtx) Complete() bool {
	for h := HopPublish; h < HopAck; h++ {
		if t.Hops[h] == 0 {
			return false
		}
	}
	return true
}

// String renders the trace as "trace-id hop=+Δ …" with deltas from the
// earliest stamped hop, for logs and the admin surface. Hops print in
// timestamp order, not constant order, so a cross-cluster trace reads as
// the actual timeline (… forward → federate → dequeue …) even though
// HopFederate's constant sits after HopAck.
func (t *TraceCtx) String() string {
	var sb strings.Builder
	sb.WriteString(t.ID.String())
	stamped := make([]Hop, 0, HopCount)
	base := int64(0)
	for h := Hop(0); h < HopCount; h++ {
		if t.Hops[h] == 0 {
			continue
		}
		if base == 0 || t.Hops[h] < base {
			base = t.Hops[h]
		}
		stamped = append(stamped, h)
	}
	sort.SliceStable(stamped, func(i, j int) bool {
		return t.Hops[stamped[i]] < t.Hops[stamped[j]]
	})
	for _, h := range stamped {
		fmt.Fprintf(&sb, " %s=+%dus", h, (t.Hops[h]-base)/1000)
	}
	return sb.String()
}
