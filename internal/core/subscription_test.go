package core

import (
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestRangeContains(t *testing.T) {
	r := Range{Low: 10, High: 20}
	cases := []struct {
		v    float64
		want bool
	}{
		{10, true}, {15, true}, {19.999, true},
		{20, false}, {9.999, false}, {-10, false}, {100, false},
	}
	for _, tc := range cases {
		if got := r.Contains(tc.v); got != tc.want {
			t.Errorf("Contains(%g) = %v, want %v", tc.v, got, tc.want)
		}
	}
}

func TestRangeOverlaps(t *testing.T) {
	cases := []struct {
		a, b Range
		want bool
	}{
		{Range{0, 10}, Range{5, 15}, true},
		{Range{0, 10}, Range{10, 20}, false}, // touching half-open intervals do not overlap
		{Range{10, 20}, Range{0, 10}, false},
		{Range{0, 10}, Range{2, 3}, true},
		{Range{2, 3}, Range{0, 10}, true},
		{Range{0, 1}, Range{5, 6}, false},
		{Range{0, 10}, Range{0, 10}, true},
	}
	for _, tc := range cases {
		if got := tc.a.Overlaps(tc.b); got != tc.want {
			t.Errorf("%v.Overlaps(%v) = %v, want %v", tc.a, tc.b, got, tc.want)
		}
		if got := tc.b.Overlaps(tc.a); got != tc.want {
			t.Errorf("Overlaps not symmetric for %v, %v", tc.a, tc.b)
		}
	}
}

func TestRangeIntersect(t *testing.T) {
	got := Range{0, 10}.Intersect(Range{5, 15})
	if got != (Range{5, 10}) {
		t.Errorf("Intersect = %v, want [5,10)", got)
	}
	if !(Range{0, 5}).Intersect(Range{7, 9}).Empty() {
		t.Error("disjoint intersection should be empty")
	}
	if (Range{0, 5}).Length() != 5 {
		t.Error("Length")
	}
}

func TestSubscriptionValidate(t *testing.T) {
	sp := UniformSpace(2, 100)
	ok := NewSubscription(1, []Range{{10, 20}, {0, 100}})
	if err := ok.Validate(sp); err != nil {
		t.Fatalf("valid subscription rejected: %v", err)
	}
	// Predicates wider than the dimension are allowed.
	wide := NewSubscription(1, []Range{{-1e9, 1e9}, {-1e9, 1e9}})
	if err := wide.Validate(sp); err != nil {
		t.Fatalf("wide subscription rejected: %v", err)
	}
	bad := []*Subscription{
		NewSubscription(1, []Range{{10, 20}}),                   // wrong arity
		NewSubscription(1, []Range{{20, 10}, {0, 100}}),         // inverted
		NewSubscription(1, []Range{{10, 10}, {0, 100}}),         // empty
		NewSubscription(1, []Range{{math.NaN(), 20}, {0, 100}}), // NaN
		NewSubscription(1, []Range{{200, 300}, {0, 100}}),       // unsatisfiable
		NewSubscription(1, []Range{{0, 100}, {-50, -10}}),       // unsatisfiable dim 1
		NewSubscription(1, []Range{{0, 1}, {0, 1}, {0, 1}}),     // too many
	}
	for i, s := range bad {
		if err := s.Validate(sp); err == nil {
			t.Errorf("bad subscription %d accepted: %v", i, s)
		}
	}
}

func TestMessageValidate(t *testing.T) {
	sp := UniformSpace(3, 1000)
	if err := NewMessage([]float64{0, 500, 999.9}, nil).Validate(sp); err != nil {
		t.Fatalf("valid message rejected: %v", err)
	}
	bad := []*Message{
		NewMessage([]float64{0, 500}, nil),           // wrong arity
		NewMessage([]float64{0, 500, 1000}, nil),     // at exclusive max
		NewMessage([]float64{-1, 0, 0}, nil),         // below min
		NewMessage([]float64{0, math.NaN(), 0}, nil), // NaN
	}
	for i, m := range bad {
		if err := m.Validate(sp); err == nil {
			t.Errorf("bad message %d accepted: %v", i, m)
		}
	}
}

func TestMatchesBasic(t *testing.T) {
	s := NewSubscription(7, []Range{{0, 25}, {-42, -41}, {70, 74}})
	match := NewMessage([]float64{10, -41.5, 72}, nil)
	if !s.Matches(match) {
		t.Error("expected match")
	}
	for i, m := range []*Message{
		NewMessage([]float64{25, -41.5, 72}, nil), // speed at exclusive bound
		NewMessage([]float64{10, -40, 72}, nil),   // longitude outside
		NewMessage([]float64{10, -41.5, 74}, nil), // latitude at exclusive bound
		NewMessage([]float64{10, -41.5}, nil),     // arity mismatch
	} {
		if s.Matches(m) {
			t.Errorf("case %d: expected no match for %v", i, m)
		}
	}
}

func TestMatchesExcept(t *testing.T) {
	s := NewSubscription(1, []Range{{0, 10}, {0, 10}, {0, 10}})
	m := NewMessage([]float64{50, 5, 5}, nil) // fails only dim 0
	if s.Matches(m) {
		t.Fatal("should not fully match")
	}
	if !s.MatchesExcept(m, 0) {
		t.Error("MatchesExcept(m, 0) = false, want true")
	}
	if s.MatchesExcept(m, 1) {
		t.Error("MatchesExcept(m, 1) = true, want false")
	}
}

func TestClones(t *testing.T) {
	s := NewSubscription(3, []Range{{1, 2}})
	s.ID = 9
	c := s.Clone()
	c.Predicates[0].Low = 99
	if s.Predicates[0].Low != 1 {
		t.Error("subscription clone shares predicate storage")
	}
	if c.ID != 9 || c.Subscriber != 3 {
		t.Error("subscription clone lost fields")
	}

	m := NewMessage([]float64{1, 2}, []byte("p"))
	m.ID = 4
	cm := m.Clone()
	cm.Attrs[0] = 99
	if m.Attrs[0] != 1 {
		t.Error("message clone shares attr storage")
	}
	if cm.ID != 4 || string(cm.Payload) != "p" {
		t.Error("message clone lost fields")
	}
}

func TestStringForms(t *testing.T) {
	s := NewSubscription(3, []Range{{1, 2}, {3, 4}})
	s.ID = 5
	got := s.String()
	for _, want := range []string{"sub-5", "client-3", "[1,2)", "[3,4)"} {
		if !strings.Contains(got, want) {
			t.Errorf("Subscription.String() = %q, missing %q", got, want)
		}
	}
	m := NewMessage([]float64{1}, nil)
	m.ID = 2
	if !strings.Contains(m.String(), "msg-2") {
		t.Errorf("Message.String() = %q", m.String())
	}
	if MessageID(1).String() != "msg-1" || SubscriberID(2).String() != "client-2" ||
		NodeID(3).String() != "node-3" {
		t.Error("ID String forms")
	}
	if RoleDispatcher.String() != "dispatcher" || RoleMatcher.String() != "matcher" ||
		NodeRole(0).String() != "unknown" {
		t.Error("NodeRole String forms")
	}
}

// Property: Matches is exactly per-dimension containment.
func TestMatchesEquivalenceProperty(t *testing.T) {
	const k = 4
	f := func(lows, lens [k]float64, point [k]float64) bool {
		preds := make([]Range, k)
		attrs := make([]float64, k)
		for i := 0; i < k; i++ {
			lo := math.Mod(math.Abs(lows[i]), 1000)
			ln := math.Mod(math.Abs(lens[i]), 500) + 0.001
			preds[i] = Range{Low: lo, High: lo + ln}
			attrs[i] = math.Mod(math.Abs(point[i]), 1500)
		}
		s := NewSubscription(1, preds)
		m := NewMessage(attrs, nil)
		want := true
		for i := 0; i < k; i++ {
			if !(attrs[i] >= preds[i].Low && attrs[i] < preds[i].High) {
				want = false
			}
		}
		return s.Matches(m) == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

// Property: MatchesExcept(skip) ∧ Contains(skip) ⇔ Matches.
func TestMatchesExceptConsistencyProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	sp := UniformSpace(4, 1000)
	for iter := 0; iter < 2000; iter++ {
		preds := make([]Range, 4)
		attrs := make([]float64, 4)
		for i := range preds {
			lo := rng.Float64() * 900
			preds[i] = Range{Low: lo, High: lo + rng.Float64()*300 + 1}
			attrs[i] = rng.Float64() * 1000
		}
		s := NewSubscription(1, preds)
		m := NewMessage(attrs, nil)
		if err := m.Validate(sp); err != nil {
			t.Fatal(err)
		}
		for skip := 0; skip < 4; skip++ {
			lhs := s.MatchesExcept(m, skip) && preds[skip].Contains(attrs[skip])
			if lhs != s.Matches(m) {
				t.Fatalf("inconsistent: sub=%v msg=%v skip=%d", s, m, skip)
			}
		}
	}
}
