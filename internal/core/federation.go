package core

// federationSubscriberBit tags subscriber IDs owned by federation border
// nodes: a border registers one aggregated subscription per peer cluster
// with its local dispatcher, and matchers must exclude those subscribers
// when computing the cluster's own interest summary — otherwise remote
// interest would leak back into the summary and echo between clusters
// forever. The 0xF tag is disjoint from the edge tier's 0xE session tag.
const federationSubscriberBit SubscriberID = 0xF << 56

// FederationSubscriber tags id as border-owned.
func FederationSubscriber(id SubscriberID) SubscriberID {
	return id | federationSubscriberBit
}

// IsFederationSubscriber reports whether id is a border-owned aggregated
// subscriber (and must be excluded from interest summaries).
func IsFederationSubscriber(id SubscriberID) bool {
	return id&federationSubscriberBit == federationSubscriberBit
}
