// Package matcher implements a BlueDove back-end matching server: it stores
// the subscriptions assigned to it along each searchable dimension in
// separate indexed sets (paper Section III-A), matches forwarded
// publications on per-dimension SEDA stages (Section III-B), delivers
// matches to subscribers (directly or via their dispatcher's queue), pushes
// per-dimension load reports to dispatchers, participates in the gossip
// overlay, and hands segments over during elasticity events (Section III-C).
package matcher

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"bluedove/internal/core"
	"bluedove/internal/delivery"
	"bluedove/internal/forward"
	"bluedove/internal/gossip"
	"bluedove/internal/index"
	"bluedove/internal/metrics"
	"bluedove/internal/partition"
	"bluedove/internal/store"
	"bluedove/internal/telemetry"
	"bluedove/internal/transport"
	"bluedove/internal/wire"
)

// Config parameterizes a Matcher.
type Config struct {
	// ID is the node's cluster identifier; required.
	ID core.NodeID
	// Addr is the listen address; required (":0"-style addresses allowed).
	Addr string
	// Space is the attribute space; required.
	Space *core.Space
	// Transport carries all node traffic; required.
	Transport transport.Transport
	// Seeds are gossip bootstrap addresses.
	Seeds []string
	// IndexKind selects the per-dimension index (default bucket).
	IndexKind index.Kind
	// IndexBuckets overrides the bucket count for the bucket index
	// (default index.DefaultBuckets; ignored by the other kinds).
	IndexBuckets int
	// Covering enables subscription covering/aggregation on every dimension
	// set: a subscription whose cuboid is contained by an already-stored one
	// rides in a cover table instead of the stabbing index, collapsing
	// templated multi-tenant workloads to one indexed entry per predicate
	// shape (see index.Covering).
	Covering bool
	// MatchShards partitions each dimension set into this many
	// subscription-ID-hashed shards whose stab+verify work is matched in
	// parallel on a shared worker pool (default 1 — the single-index layout;
	// set runtime.GOMAXPROCS(0) to saturate the node from one stage).
	MatchShards int
	// WorkersPerDim sizes each dimension stage's worker pool (default 1 —
	// the paper's one-core-per-dimension layout).
	WorkersPerDim int
	// QueueDepth bounds each dimension stage's queue (default 65536).
	QueueDepth int
	// ReportInterval is the load-report cadence (default 1s).
	ReportInterval time.Duration
	// ReportDeltaFrac suppresses reports below this relative change
	// (default 0.1).
	ReportDeltaFrac float64
	// GossipInterval is the gossip round period (default 1s).
	GossipInterval time.Duration
	// FailAfter is the gossip liveness timeout (default 10s).
	FailAfter time.Duration
	// PruneGrace delays post-table-change pruning so stale-routed messages
	// still match (default 3s).
	PruneGrace time.Duration
	// Generation is the gossip incarnation (default: boot time).
	Generation uint64
	// Now supplies the clock (default time.Now).
	Now func() int64
	// Telemetry, when non-nil, enables the observability subsystem on this
	// node: traced publications get their dequeue/match/deliver hops
	// stamped and returned on acks, and every counter, per-stage λ/μ/queue
	// gauge and latency histogram is registered under the node's registry.
	Telemetry *telemetry.Telemetry
	// DataDir, when non-empty, makes the matcher's subscription state
	// durable: every store, remove, transfer and table adoption is journaled
	// to a write-ahead log in this directory (see internal/store), folded
	// into periodic snapshots, and replayed on Start — a restarted matcher
	// resumes with its exact pre-crash subscription sets. Empty (the
	// default) keeps all state in memory.
	DataDir string
	// Fsync is the journal sync policy (default store.FsyncInterval); only
	// meaningful with DataDir set.
	Fsync store.Fsync
	// SnapshotEvery folds the journal into a snapshot after this many
	// appends (default: the store package default).
	SnapshotEvery int
	// FS is the journal's filesystem seam (default: the OS passthrough);
	// internal/chaos injects disk faults through it. Only meaningful with
	// DataDir set.
	FS store.FS
	// FailPolicy decides what an unrepairable journal disk fault does to
	// this node: FailStop (default), DegradeToMemory, or Shed.
	FailPolicy store.FailPolicy
	// OnStoreFailure, when non-nil, is invoked once (on its own goroutine)
	// when the journal transitions to store.Failed — the cluster wires it
	// to the node's crash path so FailStop actually stops.
	OnStoreFailure func(error)
}

func (c *Config) defaults() error {
	if c.ID == 0 || c.Addr == "" || c.Space == nil || c.Transport == nil {
		return errors.New("matcher: ID, Addr, Space and Transport are required")
	}
	if c.MatchShards <= 0 {
		c.MatchShards = 1
	}
	if c.WorkersPerDim <= 0 {
		c.WorkersPerDim = 1
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 65536
	}
	if c.ReportInterval <= 0 {
		c.ReportInterval = time.Second
	}
	if c.ReportDeltaFrac <= 0 {
		c.ReportDeltaFrac = 0.1
	}
	if c.GossipInterval <= 0 {
		c.GossipInterval = time.Second
	}
	if c.FailAfter <= 0 {
		c.FailAfter = 10 * time.Second
	}
	if c.PruneGrace <= 0 {
		c.PruneGrace = 3 * time.Second
	}
	if c.Now == nil {
		c.Now = func() int64 { return time.Now().UnixNano() }
	}
	return nil
}

// dimSet is one per-dimension subscription set — Config.MatchShards
// subscription-ID-hashed index shards plus the SEDA stage matching messages
// forwarded along this dimension. The stage serializes nothing about reads:
// a batch's stab+verify work fans out across the shards on the matcher's
// worker pool, while mutations lock only the one shard that owns the
// subscription.
type dimSet struct {
	shards []*indexShard
	stage  *sedaStage
}

// subsCount returns the number of stored subscriptions across all shards.
func (ds *dimSet) subsCount() int {
	n := 0
	for _, sh := range ds.shards {
		sh.mu.RLock()
		n += sh.idx.Len()
		sh.mu.RUnlock()
	}
	return n
}

// indexedCount returns the number of entries in the stabbing indexes across
// all shards — with covering enabled this is the cover count, and
// subsCount()/indexedCount() is the covering collapse ratio.
func (ds *dimSet) indexedCount() int {
	n := 0
	for _, sh := range ds.shards {
		sh.mu.RLock()
		if cov, ok := sh.idx.(*index.Covering); ok {
			n += cov.IndexedLen()
		} else {
			n += sh.idx.Len()
		}
		sh.mu.RUnlock()
	}
	return n
}

// Matcher is a running matching server.
type Matcher struct {
	cfg  Config
	gsp  *gossip.Gossiper
	addr string
	dims []*dimSet
	// pool fans per-shard stab+verify work across workers (nil when
	// MatchShards is 1 — the inline path).
	pool *matchPool

	tableMu sync.Mutex
	table   *partition.Table

	// adopted guards against double adoption of range transfers: a transfer
	// re-sent after a mid-handover crash carries the same TransferID and is
	// acknowledged without storing its subscriptions twice.
	adoptedMu sync.Mutex
	adopted   map[uint64]bool

	// jnl is the durable subscription journal (nil on in-memory nodes).
	jnl *store.Store

	stop chan struct{}
	// ready gates the transport handler until Start finishes initializing:
	// a restarted node's address is already known to gossiping peers, so
	// traffic can arrive between Listen and the end of Start.
	ready chan struct{}
	wg    sync.WaitGroup

	lastReport []forward.DimLoad
	reported   bool

	// sendCopies reports whether the transport copies bodies on Send, so
	// pooled encode buffers may be recycled immediately (see
	// transport.Copying).
	sendCopies bool

	// Matched counts subscriptions matched (deliveries attempted, whether or
	// not a delivery address was known).
	Matched metrics.Counter
	// Delivered counts matched subscriptions actually sent a delivery.
	// Matched - Delivered is the undeliverable residue (subscriptions
	// registered without an address); throughput numbers must use Delivered
	// so they are not inflated by matches that never left the matcher.
	Delivered metrics.Counter
	// Processed counts messages matched (stage completions).
	Processed metrics.Counter
	// Dropped counts forwarded messages rejected by stage backpressure.
	Dropped metrics.Counter
	// BusyNacks counts busy NACKs sent back to dispatchers (one per
	// rejected message, whether single or inside a batch).
	BusyNacks metrics.Counter
	// Shed counts publications whose TTL expired while queued; they are
	// acked but never matched.
	Shed metrics.Counter
	// JournalErrors counts journal appends and snapshots that failed (the
	// durability guarantee weakened or lost; see store.health for state).
	JournalErrors metrics.Counter
	// Scanned counts stored subscriptions examined by stab+verify across all
	// matched messages; Scanned/Processed is the live scanned-per-message
	// index-efficiency figure exported as matcher.scanned_per_msg.
	Scanned metrics.Counter
	// ReportBytes counts load-report traffic for overhead accounting.
	ReportBytes metrics.Counter

	// throttleNs, when positive, adds this many nanoseconds of synthetic
	// service time per dequeued message — a chaos hook that slows the
	// matcher's service rate (not its links) to drive stages into overload.
	throttleNs atomic.Int64

	// mutations counts subscription-set changes (stores, removals, prunes)
	// and versions the interest summary: a border whose cached version
	// still matches gets a cheap "unchanged" instead of a re-enumeration
	// (see summary.go).
	mutations atomic.Uint64

	// matchLatency observes dequeue→match-done per traced publication (ns).
	matchLatency *metrics.Histogram
}

// New builds a matcher (not yet started).
func New(cfg Config) (*Matcher, error) {
	if err := cfg.defaults(); err != nil {
		return nil, err
	}
	m := &Matcher{cfg: cfg, stop: make(chan struct{}), ready: make(chan struct{}),
		sendCopies:   transport.SendCopies(cfg.Transport),
		adopted:      make(map[uint64]bool),
		matchLatency: metrics.NewHistogram()}
	k := cfg.Space.K()
	m.dims = make([]*dimSet, k)
	for i := 0; i < k; i++ {
		ds := &dimSet{shards: make([]*indexShard, cfg.MatchShards)}
		for j := range ds.shards {
			idx := index.NewSized(cfg.IndexKind, cfg.Space, i, cfg.IndexBuckets)
			if cfg.Covering {
				idx = index.NewCovering(idx)
			}
			ds.shards[j] = &indexShard{
				idx:   idx,
				addrs: make(map[core.SubscriptionID]string),
			}
		}
		m.dims[i] = ds
	}
	if cfg.MatchShards > 1 {
		m.pool = newMatchPool(cfg.MatchShards, cfg.MatchShards*k)
	}
	return m, nil
}

// ID returns the matcher's node ID.
func (m *Matcher) ID() core.NodeID { return m.cfg.ID }

// Addr returns the bound listen address (valid after Start).
func (m *Matcher) Addr() string { return m.addr }

// Gossiper exposes the overlay view (for tests and tooling).
func (m *Matcher) Gossiper() *gossip.Gossiper { return m.gsp }

// Start binds the listener, joins the gossip overlay, and starts the
// matching stages and report loop.
func (m *Matcher) Start() error {
	// Recover durable state before the listener binds, so replay never
	// races live mutations.
	if err := m.openJournal(); err != nil {
		return err
	}
	addr, err := m.cfg.Transport.Listen(m.cfg.Addr, func(env *wire.Envelope) *wire.Envelope {
		<-m.ready
		return m.handle(env)
	})
	if err != nil {
		return err
	}
	m.addr = addr
	g, err := gossip.New(gossip.Config{
		ID:         m.cfg.ID,
		Addr:       addr,
		Role:       core.RoleMatcher,
		Transport:  m.cfg.Transport,
		Seeds:      m.cfg.Seeds,
		Interval:   m.cfg.GossipInterval,
		FailAfter:  m.cfg.FailAfter,
		Generation: m.cfg.Generation,
		Now:        m.cfg.Now,
	})
	if err != nil {
		return err
	}
	m.gsp = g
	for i, ds := range m.dims {
		dim := i
		set := ds
		set.stage = newSedaStage(fmt.Sprintf("%v-dim%d", m.cfg.ID, dim),
			m.cfg.QueueDepth, m.cfg.WorkersPerDim, m.cfg.Now,
			func(it forwardItem) { m.matchItem(set, dim, it) })
	}
	if m.cfg.Telemetry != nil {
		m.registerTelemetry()
	}
	g.Start()
	m.wg.Add(2)
	go m.reportLoop()
	go m.tableLoop()
	close(m.ready)
	return nil
}

// Stop halts the matcher.
func (m *Matcher) Stop() {
	select {
	case <-m.stop:
		return
	default:
		close(m.stop)
	}
	m.gsp.Stop()
	for _, ds := range m.dims {
		if ds.stage != nil {
			ds.stage.Stop()
		}
	}
	m.wg.Wait()
	if m.pool != nil {
		m.pool.stop()
	}
	m.closeJournal()
}

// handle is the transport handler, dispatching by message kind.
func (m *Matcher) handle(env *wire.Envelope) *wire.Envelope {
	switch env.Kind {
	case wire.KindGossip:
		return m.gsp.HandleGossip(env)
	case wire.KindStore:
		b, err := wire.DecodeStore(env.Body)
		if err == nil && b.Dim >= 0 && b.Dim < len(m.dims) {
			m.store(b.Dim, b.Sub, b.DeliverAddr)
			m.journal(recSubStore, env.Body)
		}
		return nil
	case wire.KindUnsubscribe:
		if b, err := wire.DecodeUnsubscribe(env.Body); err == nil {
			m.unsubscribe(b.ID)
			m.journal(recSubRemove, env.Body)
		}
		return nil
	case wire.KindForward:
		b, err := wire.DecodeForward(env.Body)
		if err != nil || b.Dim < 0 || b.Dim >= len(m.dims) {
			return nil
		}
		st := m.dims[b.Dim].stage
		if st.EventLen() >= m.cfg.QueueDepth ||
			st.Enqueue(forwardItem{msg: b.Msg, from: env.From}) != nil {
			m.Dropped.Add(1)
			m.BusyNacks.Add(1)
			// Explicit pushback instead of a silent drop: tell the sender
			// which message was rejected so it can re-route immediately.
			if env.From != 0 {
				if addr, ok := m.gsp.AddrOf(env.From); ok {
					m.send(addr, wire.KindBusy,
						&wire.BusyBody{ID: b.Msg.ID, Dim: b.Dim, QueueLen: st.EventLen()})
				}
			}
		}
		return nil
	case wire.KindForwardBatch:
		b, err := wire.DecodeForwardBatch(env.Body)
		if err != nil {
			return nil
		}
		m.enqueueBatch(b, env.From)
		return nil
	case wire.KindTransfer:
		b, err := wire.DecodeTransfer(env.Body)
		if err != nil || b.Dim < 0 || b.Dim >= len(m.dims) {
			return nil
		}
		for i, s := range b.Subs {
			addr := ""
			if i < len(b.DeliverAddrs) {
				addr = b.DeliverAddrs[i]
			}
			m.store(b.Dim, s, addr)
		}
		m.journal(recTransfer, env.Body)
		return nil
	case wire.KindTransferRange:
		b, err := wire.DecodeTransferRange(env.Body)
		if err != nil || b.Dim < 0 || b.Dim >= len(m.dims) {
			return nil
		}
		if !m.adopt(b.TransferID) {
			return nil // duplicate of an already-adopted transfer
		}
		for i, s := range b.Subs {
			addr := ""
			if i < len(b.DeliverAddrs) {
				addr = b.DeliverAddrs[i]
			}
			m.store(b.Dim, s, addr)
		}
		m.journal(recTransferRange, env.Body)
		return nil
	case wire.KindHandover:
		if b, err := wire.DecodeHandover(env.Body); err == nil {
			m.handover(b)
		}
		return nil
	case wire.KindSummaryRequest:
		if b, err := wire.DecodeSummaryRequest(env.Body); err == nil {
			return m.handleSummaryRequest(b)
		}
		return nil
	case wire.KindTableRequest:
		m.tableMu.Lock()
		t := m.table
		m.tableMu.Unlock()
		if t == nil {
			return &wire.Envelope{Kind: wire.KindError, From: m.cfg.ID,
				Body: (&wire.ErrorBody{Text: "matcher: no table yet"}).Encode()}
		}
		return &wire.Envelope{Kind: wire.KindTableResponse, From: m.cfg.ID,
			Body: (&wire.TableResponseBody{Table: t.Encode()}).Encode()}
	default:
		return nil
	}
}

// store installs one subscription copy, locking only the shard that owns it.
func (m *Matcher) store(dim int, s *core.Subscription, deliverAddr string) {
	sh := m.dims[dim].shards[shardOf(s.ID, m.cfg.MatchShards)]
	sh.mu.Lock()
	sh.idx.Add(s)
	sh.addrs[s.ID] = deliverAddr
	sh.mu.Unlock()
	m.mutations.Add(1)
}

// unsubscribe removes a subscription from every dimension set.
func (m *Matcher) unsubscribe(id core.SubscriptionID) {
	si := shardOf(id, m.cfg.MatchShards)
	removed := false
	for _, ds := range m.dims {
		sh := ds.shards[si]
		sh.mu.Lock()
		if sh.idx.Remove(id) {
			delete(sh.addrs, id)
			removed = true
		}
		sh.mu.Unlock()
	}
	if removed {
		m.mutations.Add(1)
	}
}

// SubsOnDim returns the subscription count of one dimension set.
func (m *Matcher) SubsOnDim(dim int) int { return m.dims[dim].subsCount() }

// IndexedOnDim returns the stabbing-index entry count of one dimension set:
// equal to SubsOnDim without covering, the cover count with it.
func (m *Matcher) IndexedOnDim(dim int) int { return m.dims[dim].indexedCount() }

// SetServiceThrottle adds d of synthetic service time per dequeued message
// (0 restores full speed). Used by overload chaos scenarios to throttle one
// matcher's service rate mid-burst — unlike a slow link, this backs messages
// up in the dimension stages and exercises the busy-NACK path.
func (m *Matcher) SetServiceThrottle(d time.Duration) { m.throttleNs.Store(int64(d)) }

// matchItem is the dimension stage handler, dispatching to the single or
// batched matching path.
func (m *Matcher) matchItem(ds *dimSet, dim int, it forwardItem) {
	if d := m.throttleNs.Load(); d > 0 {
		time.Sleep(time.Duration(d) * time.Duration(it.count()))
	}
	if it.msgs != nil {
		m.matchBatch(ds, dim, it)
		return
	}
	m.matchOne(ds, dim, it)
}

// matchOne matches one forwarded message against the dimension's set,
// delivers to each matched subscriber (one Deliver frame per subscriber —
// the message-per-frame semantics of the unbatched path), and acknowledges
// the forwarding dispatcher (which retransmits unacked messages when
// persistence is on).
func (m *Matcher) matchOne(ds *dimSet, dim int, it forwardItem) {
	msg := it.msg
	var tnow int64
	if msg.Trace != nil {
		tnow = m.cfg.Now()
		msg.Trace.Stamp(core.HopDequeue, tnow)
	}
	// TTL shedding at dequeue: an expired publication is acked (processing
	// is complete — deliberately shed) but never matched or delivered.
	if msg.TTL > 0 && m.cfg.Now() > msg.PublishedAt+msg.TTL {
		m.Shed.Add(1)
		m.Processed.Add(1)
		if it.from != 0 {
			if addr, ok := m.gsp.AddrOf(it.from); ok {
				m.send(addr, wire.KindForwardAck, &wire.ForwardAckBody{ID: msg.ID, Trace: msg.Trace})
			}
		}
		return
	}
	sc := getScratch()
	scanned := 0
	for _, sh := range ds.shards {
		sh.mu.RLock()
		var n int
		sc.dst, sc.cands, n = index.Match(sh.idx, msg, sc.dst[:0], sc.cands)
		scanned += n
		for _, s := range sc.dst {
			i, ok := sc.perSub[s.Subscriber]
			if !ok {
				i = sc.addDelivery(sh.addrs[s.ID], s.Subscriber, msg)
			}
			sc.dels[i].body.SubIDs = append(sc.dels[i].body.SubIDs, s.ID)
		}
		sh.mu.RUnlock()
	}
	m.Scanned.Add(int64(scanned))
	m.Processed.Add(1)
	if msg.Trace != nil {
		done := m.cfg.Now()
		msg.Trace.Stamp(core.HopMatch, done)
		m.matchLatency.Observe(done - msg.Trace.Hops[core.HopDequeue])
	}
	for i := range sc.dels {
		d := &sc.dels[i]
		m.Matched.Add(int64(len(d.body.SubIDs)))
		if d.addr == "" {
			continue // nowhere to deliver (registered without an address)
		}
		// Stamp before encode so the deliver frame carries the hop.
		if msg.Trace != nil {
			msg.Trace.Stamp(core.HopDeliver, m.cfg.Now())
		}
		m.Delivered.Add(int64(len(d.body.SubIDs)))
		m.send(d.addr, wire.KindDeliver, &d.body)
	}
	putScratch(sc)
	if msg.Trace != nil {
		if tel := m.cfg.Telemetry; tel != nil {
			tel.Tracer.Record(msg.ID, msg.Trace)
		}
	}
	if it.from != 0 {
		if addr, ok := m.gsp.AddrOf(it.from); ok {
			m.send(addr, wire.KindForwardAck, &wire.ForwardAckBody{ID: msg.ID, Trace: msg.Trace})
		}
	}
}

// appendBody is any wire body that can encode itself into a scratch buffer.
type appendBody interface {
	AppendTo(buf []byte) []byte
	Encode() []byte
}

// envPool recycles envelope headers on the copying-transport send path. A
// copying transport consumes the whole envelope inside Send (it writes the
// frame before returning), so the struct can be reused like the body buffer.
var envPool = sync.Pool{New: func() any { return new(wire.Envelope) }}

// send encodes body and ships it, recycling the encode buffer and envelope
// when the transport copies on Send (TCP); on retaining transports (the
// in-process mesh) the body is encoded into a fresh allocation instead so
// pooled bytes never escape into a delivered message.
func (m *Matcher) send(addr string, kind wire.Kind, body appendBody) {
	if m.sendCopies {
		buf := wire.GetBuf()
		buf.B = body.AppendTo(buf.B)
		env := envPool.Get().(*wire.Envelope)
		env.Kind, env.From, env.Body = kind, m.cfg.ID, buf.B
		_ = m.cfg.Transport.Send(addr, env)
		env.Body = nil
		envPool.Put(env)
		wire.PutBuf(buf)
		return
	}
	_ = m.cfg.Transport.Send(addr, &wire.Envelope{Kind: kind, From: m.cfg.ID, Body: body.Encode()})
}

// adopt records a range-transfer idempotency key, returning false when the
// transfer was already adopted (the double-adoption guard).
func (m *Matcher) adopt(id uint64) bool {
	if id == 0 {
		return true // untagged transfer: no guard requested
	}
	m.adoptedMu.Lock()
	defer m.adoptedMu.Unlock()
	if m.adopted[id] {
		return false
	}
	m.adopted[id] = true
	return true
}

// handover ships every subscription overlapping the handed-over range to the
// target matcher as one range-bounded transfer frame (join, leave and split
// protocols). The frame carries the originator's idempotency key, so a
// handover re-issued after a crash mid-transfer produces a byte-identical
// TransferID and the target's adoption guard drops the duplicate. With
// covering enabled, Overlapping enumerates covered subscriptions too, so
// riders move with their covers.
func (m *Matcher) handover(b *wire.HandoverBody) {
	ds := m.dims[b.Dim]
	r := core.Range{Low: b.Low, High: b.High}
	var subs []*core.Subscription
	var addrs []string
	for _, sh := range ds.shards {
		sh.mu.RLock()
		start := len(subs)
		subs = sh.idx.Overlapping(r, subs)
		for _, s := range subs[start:] {
			addrs = append(addrs, sh.addrs[s.ID])
		}
		sh.mu.RUnlock()
	}
	tid := b.TransferID
	if tid == 0 {
		tid = wire.TransferRangeID(m.cfg.ID, 0, b.Dim, b.Low, b.High)
	}
	body := (&wire.TransferRangeBody{TransferID: tid, Dim: b.Dim,
		Low: b.Low, High: b.High, Subs: subs, DeliverAddrs: addrs}).Encode()
	_ = m.cfg.Transport.Send(b.TargetAddr, &wire.Envelope{Kind: wire.KindTransferRange, From: m.cfg.ID, Body: body})
}

// SplitPoint returns the load-weighted cut point for this matcher's
// dimension-dim subscriptions within r: the median predicate center, so a
// split at this point moves roughly half the stored load. It falls back to
// the range midpoint when fewer than two subscriptions overlap. Deterministic
// given the same stored set — the elasticity controller's split decisions
// replay identically.
func (m *Matcher) SplitPoint(dim int, r core.Range) float64 {
	if dim < 0 || dim >= len(m.dims) {
		return r.Low + (r.High-r.Low)/2
	}
	var centers []float64
	for _, sh := range m.dims[dim].shards {
		sh.mu.RLock()
		for _, s := range sh.idx.Overlapping(r, nil) {
			p := s.Predicates[dim]
			c := p.Low + (p.High-p.Low)/2
			if c > r.Low && c < r.High {
				centers = append(centers, c)
			}
		}
		sh.mu.RUnlock()
	}
	mid := r.Low + (r.High-r.Low)/2
	if len(centers) < 2 {
		return mid
	}
	sort.Float64s(centers)
	cut := centers[len(centers)/2]
	if cut <= r.Low || cut >= r.High {
		return mid
	}
	return cut
}

// reportLoop pushes per-dimension load reports to every dispatcher.
func (m *Matcher) reportLoop() {
	defer m.wg.Done()
	ticker := time.NewTicker(m.cfg.ReportInterval)
	defer ticker.Stop()
	for {
		select {
		case <-m.stop:
			return
		case <-ticker.C:
			m.report()
		}
	}
}

// LoadSnapshot builds the current per-dimension load report.
func (m *Matcher) LoadSnapshot() []forward.DimLoad {
	now := m.cfg.Now()
	out := make([]forward.DimLoad, len(m.dims))
	for i, ds := range m.dims {
		subs := ds.subsCount()
		if ds.stage.ServiceCapacity() == 0 {
			m.seedStage(i)
		}
		out[i] = forward.DimLoad{
			Subs:        subs,
			QueueLen:    ds.stage.EventLen(),
			ArrivalRate: ds.stage.ArrivalRate(),
			MatchRate:   ds.stage.ServiceCapacity(),
			ReportedAt:  now,
		}
	}
	return out
}

// seedStage primes a cold stage's service estimate by timing one synthetic
// match against the stored set, so the first reports carry realistic costs.
func (m *Matcher) seedStage(dim int) {
	ds := m.dims[dim]
	var probe *core.Subscription
	for _, sh := range ds.shards {
		sh.mu.RLock()
		all := sh.idx.All(nil)
		if len(all) > 0 {
			probe = all[0]
		}
		sh.mu.RUnlock()
		if probe != nil {
			break
		}
	}
	if probe == nil {
		return
	}
	attrs := make([]float64, m.cfg.Space.K())
	for i, p := range probe.Predicates {
		attrs[i] = (p.Low + p.High) / 2
	}
	msg := core.NewMessage(attrs, nil)
	start := time.Now()
	for _, sh := range ds.shards {
		sh.mu.RLock()
		_, _, _ = index.Match(sh.idx, msg, nil, nil)
		sh.mu.RUnlock()
	}
	ns := float64(time.Since(start))
	if ns < 1 {
		ns = 1
	}
	ds.stage.SeedServiceTime(ns)
}

// report pushes the snapshot to all alive dispatchers when it changed more
// than the configured fraction (paper Section IV-C: 64-byte pushes on >10%
// change).
func (m *Matcher) report() {
	snap := m.LoadSnapshot()
	if !m.shouldReport(snap) {
		return
	}
	m.lastReport = snap
	m.reported = true
	body := (&wire.LoadReportBody{Loads: snap, Health: uint8(m.StoreHealth())}).Encode()
	env := &wire.Envelope{Kind: wire.KindLoadReport, From: m.cfg.ID, Body: body}
	for _, p := range m.gsp.Peers() {
		if p.Role == core.RoleDispatcher && p.Alive {
			if m.cfg.Transport.Send(p.Addr, env) == nil {
				m.ReportBytes.Add(int64(len(body)))
			}
		}
	}
}

func (m *Matcher) shouldReport(snap []forward.DimLoad) bool {
	if !m.reported || len(m.lastReport) != len(snap) {
		return true
	}
	changed := func(old, new float64) bool {
		if old == 0 {
			return new != 0
		}
		d := (new - old) / old
		if d < 0 {
			d = -d
		}
		return d > m.cfg.ReportDeltaFrac
	}
	for i, l := range snap {
		p := m.lastReport[i]
		if changed(float64(p.QueueLen), float64(l.QueueLen)) ||
			changed(p.ArrivalRate, l.ArrivalRate) ||
			changed(p.MatchRate, l.MatchRate) ||
			p.Subs != l.Subs {
			return true
		}
	}
	return false
}

// tableLoop adopts the freshest segment table seen in gossip and prunes
// no-longer-owned subscriptions after the grace period.
func (m *Matcher) tableLoop() {
	defer m.wg.Done()
	ticker := time.NewTicker(m.cfg.GossipInterval)
	defer ticker.Stop()
	for {
		select {
		case <-m.stop:
			return
		case <-ticker.C:
			m.adoptTable()
		}
	}
}

// TableKey is the gossip state key carrying the encoded segment table.
const TableKey = "table"

func (m *Matcher) adoptTable() {
	raw, _, ok := m.gsp.HighestState(TableKey)
	if !ok {
		return
	}
	t, err := partition.Decode(raw)
	if err != nil {
		return
	}
	m.tableMu.Lock()
	cur := m.table
	if cur != nil && t.Version() <= cur.Version() {
		m.tableMu.Unlock()
		return
	}
	m.table = t
	m.tableMu.Unlock()
	m.journal(recTable, raw)
	// Prune after the grace period so messages routed by stale dispatcher
	// tables still find their subscriptions.
	grace := m.cfg.PruneGrace
	tab := t
	m.wg.Add(1)
	go func() {
		defer m.wg.Done()
		select {
		case <-m.stop:
			return
		case <-time.After(grace):
		}
		m.pruneTo(tab)
	}()
}

// pruneTo removes subscriptions whose predicate no longer overlaps this
// matcher's segment on each dimension under table t. (Replication-safeguard
// copies placed on neighbors are re-installed by dispatchers' reconcile
// pass; see the dispatcher package.)
func (m *Matcher) pruneTo(t *partition.Table) {
	m.tableMu.Lock()
	if m.table == nil || t.Version() < m.table.Version() {
		m.tableMu.Unlock()
		return // superseded
	}
	m.tableMu.Unlock()
	if !t.HasMatcher(m.cfg.ID) {
		return // removed from the table: keep serving until shut down
	}
	for dim, ds := range m.dims {
		// After a split a matcher may own several disjoint ranges on one
		// dimension; a subscription stays if it overlaps any of them.
		segs, err := t.SegmentsOf(m.cfg.ID, dim)
		if err != nil {
			continue
		}
		overlapsAny := func(r core.Range) bool {
			for _, seg := range segs {
				if r.Overlaps(seg) {
					return true
				}
			}
			return false
		}
		for _, sh := range ds.shards {
			sh.mu.Lock()
			for _, s := range sh.idx.All(nil) {
				if !overlapsAny(s.Predicates[dim]) {
					sh.idx.Remove(s.ID)
					delete(sh.addrs, s.ID)
					m.mutations.Add(1)
				}
			}
			sh.mu.Unlock()
		}
	}
}

// Table returns the matcher's current segment table (nil before the first
// gossip adoption).
func (m *Matcher) Table() *partition.Table {
	m.tableMu.Lock()
	defer m.tableMu.Unlock()
	return m.table
}

// QueueStore returns nil: matchers deliver to queue hosts, they do not host
// queues. Defined so tooling can treat nodes uniformly.
func (m *Matcher) QueueStore() *delivery.QueueStore { return nil }
