package matcher

import (
	"testing"
	"time"

	"bluedove/internal/core"
	"bluedove/internal/store"
	"bluedove/internal/transport"
	"bluedove/internal/wire"
)

// startDurable boots a matcher journaling to dir on the given mesh.
func startDurable(t *testing.T, mesh *transport.Mesh, dir string, mut func(*Config)) *Matcher {
	t.Helper()
	cfg := Config{
		ID:             1,
		Addr:           "m1",
		Space:          testSpace,
		Transport:      mesh.Endpoint("m1"),
		GossipInterval: 50 * time.Millisecond,
		ReportInterval: 50 * time.Millisecond,
		Generation:     1,
		DataDir:        dir,
		Fsync:          store.FsyncNever,
	}
	if mut != nil {
		mut(&cfg)
	}
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Start(); err != nil {
		t.Fatal(err)
	}
	return m
}

// TestJournalRestartRestoresSubscriptions: a matcher journaling to a data
// dir is fed stores and a remove, stopped, and restarted from the same dir.
// The rebuilt dimension sets must match exactly — before any traffic
// reaches the restarted node.
func TestJournalRestartRestoresSubscriptions(t *testing.T) {
	dir := t.TempDir()
	mesh := transport.NewMesh(0)
	defer mesh.Close()
	// SnapshotEvery 4 forces the journal through at least one
	// snapshot+compaction cycle, so recovery exercises snapshot restore
	// plus WAL tail replay, not just replay.
	m := startDurable(t, mesh, dir, func(c *Config) { c.SnapshotEvery = 4 })

	ep := mesh.Endpoint("tester")
	for i := 1; i <= 6; i++ {
		body := (&wire.StoreBody{Dim: 0, Sub: mkSub(core.SubscriptionID(i), 0, 50), DeliverAddr: "peer"}).Encode()
		if err := ep.Send("m1", &wire.Envelope{Kind: wire.KindStore, From: 99, Body: body}); err != nil {
			t.Fatal(err)
		}
	}
	waitFor(t, func() bool { return m.SubsOnDim(0) == 6 })
	if err := ep.Send("m1", &wire.Envelope{Kind: wire.KindUnsubscribe, From: 99,
		Body: (&wire.UnsubscribeBody{ID: 3}).Encode()}); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool { return m.SubsOnDim(0) == 5 })
	m.Stop()
	mesh.Unbind("m1")

	m2 := startDurable(t, mesh, dir, nil)
	defer m2.Stop()
	if got := m2.SubsOnDim(0); got != 5 {
		t.Fatalf("restarted matcher rebuilt %d subscriptions, want 5", got)
	}
	rec := m2.Journal().Recovery()
	if !rec.SnapshotLoaded {
		t.Fatalf("recovery skipped the snapshot: %+v", rec)
	}
	// The restarted node keeps serving: another store lands on the rebuilt
	// set and is journaled in turn.
	body := (&wire.StoreBody{Dim: 0, Sub: mkSub(7, 0, 50), DeliverAddr: "peer"}).Encode()
	if err := ep.Send("m1", &wire.Envelope{Kind: wire.KindStore, From: 99, Body: body}); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool { return m2.SubsOnDim(0) == 6 })
}
