//go:build race

package matcher

// raceEnabled reports whether the race detector is compiled in; its
// instrumentation allocates, so allocation-count pins are skipped under -race.
const raceEnabled = true
