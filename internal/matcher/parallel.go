package matcher

import (
	"sync"

	"bluedove/internal/core"
	"bluedove/internal/index"
)

// indexShard is one partition of a dimension's subscription set: its slice
// of the per-dimension index plus the delivery addresses of the
// subscriptions it holds. Subscriptions are assigned to shards by ID hash,
// so every mutation and every per-shard read touches exactly one shard lock.
//
// Concurrency contract: index *mutations* (Add/Remove) take the shard's
// write lock and arrive from the serialized transport handler paths; the
// match path takes only read locks, so with S shards a batch's stab+verify
// work fans out across S read-side workers without contending the mutation
// path.
type indexShard struct {
	mu    sync.RWMutex
	idx   index.Index
	addrs map[core.SubscriptionID]string
}

// shardOf maps a subscription ID to its shard (splitmix64 finalizer — IDs
// are sequential, so low bits alone would stripe poorly).
func shardOf(id core.SubscriptionID, shards int) int {
	if shards == 1 {
		return 0
	}
	z := uint64(id)
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	z ^= z >> 31
	return int(z % uint64(shards))
}

// shardHit is one (message, subscription) match produced by a shard worker,
// carrying the delivery address read under the shard lock. Hits are emitted
// in message order within each shard, so the merge pass is a cursor sweep.
type shardHit struct {
	msg  int32 // index into the batch's live-message slice
	sub  *core.Subscription
	addr string
}

// shardJob is one shard's stab+verify work over a batch of messages. Jobs
// live in the pooled match scratch and are reused, so steady-state parallel
// matching allocates nothing: the hit list, the Match destination and the
// stabbing candidate buffer all retain their capacity.
type shardJob struct {
	shard   *indexShard
	msgs    []*core.Message
	hits    []shardHit
	dst     []*core.Subscription
	cands   []*core.Subscription
	scanned int
	cur     int // merge cursor into hits (owned by the merging stage)
	wg      *sync.WaitGroup
}

// run performs the shard's share of the batch under one read-lock
// acquisition.
func (j *shardJob) run() {
	sh := j.shard
	j.hits = j.hits[:0]
	j.scanned = 0
	sh.mu.RLock()
	for mi, msg := range j.msgs {
		var n int
		j.dst, j.cands, n = index.Match(sh.idx, msg, j.dst[:0], j.cands[:0])
		j.scanned += n
		for _, s := range j.dst {
			j.hits = append(j.hits, shardHit{msg: int32(mi), sub: s, addr: sh.addrs[s.ID]})
		}
	}
	sh.mu.RUnlock()
	j.wg.Done()
}

// reset drops the job's object references so pooling does not pin messages,
// subscriptions or addresses past their useful life.
func (j *shardJob) reset() {
	j.shard = nil
	j.msgs = nil
	j.wg = nil
	j.cur = 0
	clear(j.hits)
	j.hits = j.hits[:0]
	clear(j.dst)
	j.dst = j.dst[:0]
	clear(j.cands)
	j.cands = j.cands[:0]
}

// matchPool is the matcher's shared worker pool for parallel shard matching:
// submitted jobs are pointers into pooled scratch, so dispatch is
// allocation-free. One pool serves every dimension stage — the stages
// serialize mutations, the pool spreads reads across cores.
type matchPool struct {
	jobs chan *shardJob
	wg   sync.WaitGroup
}

// newMatchPool starts a pool with the given number of workers.
func newMatchPool(workers, queue int) *matchPool {
	p := &matchPool{jobs: make(chan *shardJob, queue)}
	p.wg.Add(workers)
	for i := 0; i < workers; i++ {
		go p.work()
	}
	return p
}

func (p *matchPool) work() {
	defer p.wg.Done()
	for j := range p.jobs {
		j.run()
	}
}

// submit hands one shard job to the pool.
func (p *matchPool) submit(j *shardJob) { p.jobs <- j }

// stop drains and terminates the workers.
func (p *matchPool) stop() {
	close(p.jobs)
	p.wg.Wait()
}
