package matcher

import (
	"bluedove/internal/core"
	"bluedove/internal/seda"
)

// forwardItem is one forwarded publication plus its forwarding dispatcher
// (acked back to it by the persistence extension).
type forwardItem struct {
	msg  *core.Message
	from core.NodeID
}

// sedaStage is the per-dimension matching stage: a bounded SEDA queue of
// forwarded publications.
type sedaStage = seda.Stage[forwardItem]

// newSedaStage builds and starts one dimension stage.
func newSedaStage(name string, depth, workers int, now func() int64, fn func(forwardItem)) *sedaStage {
	return seda.New(seda.Config{Name: name, Depth: depth, Workers: workers, Now: now}, fn)
}
