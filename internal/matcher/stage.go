package matcher

import (
	"bluedove/internal/core"
	"bluedove/internal/seda"
)

// forwardItem is one unit of work for a dimension stage: either a single
// forwarded publication (message-per-frame path) or a batch of publications
// that arrived in one ForwardBatch frame, plus the forwarding dispatcher
// (acked back to it by the persistence extension).
type forwardItem struct {
	msg  *core.Message   // single publication; nil on the batched path
	msgs []*core.Message // batched publications; nil on the single path
	from core.NodeID
}

// count returns the number of publications the item carries.
func (it forwardItem) count() int64 {
	if it.msgs != nil {
		return int64(len(it.msgs))
	}
	return 1
}

// sedaStage is the per-dimension matching stage: a bounded SEDA queue of
// forwarded publications (single or batched).
type sedaStage = seda.Stage[forwardItem]

// newSedaStage builds and starts one dimension stage. Items are weighted by
// the number of publications they carry so λ, μ and queue lengths stay in
// per-message units under batching.
func newSedaStage(name string, depth, workers int, now func() int64, fn func(forwardItem)) *sedaStage {
	return seda.New(seda.Config[forwardItem]{
		Name: name, Depth: depth, Workers: workers, Now: now,
		Weight: forwardItem.count,
	}, fn)
}
