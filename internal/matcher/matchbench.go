package matcher

import (
	"math/rand"
	"time"

	"bluedove/internal/core"
	"bluedove/internal/index"
	"bluedove/internal/transport"
	"bluedove/internal/wire"
)

// discardTransport drops every send; it reports SendCopies so the matching
// hot path recycles its pooled encode buffers, exercising the full
// delivery-coalescing and encode work without network cost.
type discardTransport struct{}

func (discardTransport) Listen(addr string, h transport.Handler) (string, error) { return addr, nil }
func (discardTransport) Send(string, *wire.Envelope) error                       { return nil }
func (discardTransport) Request(string, *wire.Envelope, time.Duration) (*wire.Envelope, error) {
	return nil, nil
}
func (discardTransport) Close() error     { return nil }
func (discardTransport) SendCopies() bool { return true }

// MatchBenchOpts parameterizes one cell of the standalone match-throughput
// benchmark (bluedove-bench -match). Zero fields take the paper-workload
// defaults: 4 dimensions of extent 1000, predicate length 250 (0.25
// per-dimension selectivity), 10k subscriptions, 64-message batches.
type MatchBenchOpts struct {
	Kind     index.Kind
	Buckets  int
	Covering bool
	Shards   int

	Dims    int
	Extent  float64
	PredLen float64
	Subs    int
	// Templates > 0 draws subscription cuboids as slight shrinkings of this
	// many shared template cuboids — the templated multi-tenant workload
	// covering is built to collapse. 0 draws every cuboid independently.
	Templates int
	Batch     int
	Msgs      int
	// MinDuration keeps re-running the message set until this much time has
	// been measured (default 1s).
	MinDuration time.Duration
	Seed        int64
}

func (o *MatchBenchOpts) defaults() {
	if o.Dims <= 0 {
		o.Dims = 4
	}
	if o.Extent <= 0 {
		o.Extent = 1000
	}
	if o.PredLen <= 0 {
		o.PredLen = 250
	}
	if o.Subs <= 0 {
		o.Subs = 10000
	}
	if o.Batch <= 0 {
		o.Batch = 64
	}
	if o.Msgs <= 0 {
		o.Msgs = 4096
	}
	if o.MinDuration <= 0 {
		o.MinDuration = time.Second
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.Shards <= 0 {
		o.Shards = 1
	}
}

// MatchBenchResult is one cell's measurement.
type MatchBenchResult struct {
	// MatchedPerSec is the subscription-match (delivery) rate; MsgsPerSec the
	// message rate. MatchedPerSec = MsgsPerSec × MatchesPerMsg.
	MatchedPerSec float64
	MsgsPerSec    float64
	MatchesPerMsg float64
	ScannedPerMsg float64
	// StoredSubs / IndexedSubs is the covering collapse ratio (1 without
	// covering).
	StoredSubs    int
	IndexedSubs   int
	CollapseRatio float64
	Elapsed       time.Duration
	Processed     int64
}

// RunMatchBench measures steady-state batched match throughput of one
// matcher dimension stage, driving the same matchBatch path the SEDA stage
// runs — TTL check, stab+verify across the configured shards, delivery
// coalescing into DeliverBatch frames — against a discard transport.
func RunMatchBench(o MatchBenchOpts) (*MatchBenchResult, error) {
	o.defaults()
	sp := core.UniformSpace(o.Dims, o.Extent)
	m, err := New(Config{
		ID: 1, Addr: "bench", Space: sp, Transport: discardTransport{},
		IndexKind: o.Kind, IndexBuckets: o.Buckets,
		Covering: o.Covering, MatchShards: o.Shards,
	})
	if err != nil {
		return nil, err
	}
	defer func() {
		if m.pool != nil {
			m.pool.stop()
		}
	}()

	rng := rand.New(rand.NewSource(o.Seed))
	mkCuboid := func() []core.Range {
		preds := make([]core.Range, o.Dims)
		for d := range preds {
			lo := rng.Float64() * (o.Extent - o.PredLen)
			preds[d] = core.Range{Low: lo, High: lo + o.PredLen}
		}
		return preds
	}
	var templates [][]core.Range
	if o.Templates > 0 {
		templates = make([][]core.Range, o.Templates)
		for i := range templates {
			templates[i] = mkCuboid()
		}
	}
	for i := 1; i <= o.Subs; i++ {
		var preds []core.Range
		if templates != nil {
			// The first subscriber of each template takes the exact template
			// cuboid; later ones shrink it slightly on each side — strictly
			// contained, so the covering path sees true containment and each
			// template collapses to one indexed cover.
			t := templates[(i-1)%len(templates)]
			if i <= len(templates) {
				preds = t
			} else {
				preds = make([]core.Range, len(t))
				for d, r := range t {
					eps := o.PredLen * 0.02
					preds[d] = core.Range{Low: r.Low + rng.Float64()*eps, High: r.High - rng.Float64()*eps}
				}
			}
		} else {
			preds = mkCuboid()
		}
		s := core.NewSubscription(core.SubscriberID(i), preds)
		s.ID = core.SubscriptionID(i)
		m.store(0, s, "sink")
	}

	batches := make([][]*core.Message, 0, o.Msgs/o.Batch+1)
	var cur []*core.Message
	for i := 0; i < o.Msgs; i++ {
		attrs := make([]float64, o.Dims)
		for d := range attrs {
			attrs[d] = rng.Float64() * o.Extent
		}
		msg := core.NewMessage(attrs, nil)
		msg.ID = core.MessageID(i + 1)
		cur = append(cur, msg)
		if len(cur) == o.Batch {
			batches = append(batches, cur)
			cur = nil
		}
	}
	if len(cur) > 0 {
		batches = append(batches, cur)
	}

	ds := m.dims[0]
	pass := func() {
		for _, chunk := range batches {
			m.matchBatch(ds, 0, forwardItem{msgs: chunk})
		}
	}
	pass() // warm the scratch pool and the branch predictors

	matched0, processed0, scanned0 := m.Matched.Value(), m.Processed.Value(), m.Scanned.Value()
	start := time.Now()
	for time.Since(start) < o.MinDuration {
		pass()
	}
	elapsed := time.Since(start)

	res := &MatchBenchResult{
		Elapsed:     elapsed,
		Processed:   m.Processed.Value() - processed0,
		StoredSubs:  m.SubsOnDim(0),
		IndexedSubs: m.IndexedOnDim(0),
	}
	matched := m.Matched.Value() - matched0
	scanned := m.Scanned.Value() - scanned0
	secs := elapsed.Seconds()
	if secs > 0 {
		res.MatchedPerSec = float64(matched) / secs
		res.MsgsPerSec = float64(res.Processed) / secs
	}
	if res.Processed > 0 {
		res.MatchesPerMsg = float64(matched) / float64(res.Processed)
		res.ScannedPerMsg = float64(scanned) / float64(res.Processed)
	}
	if res.IndexedSubs > 0 {
		res.CollapseRatio = float64(res.StoredSubs) / float64(res.IndexedSubs)
	}
	return res, nil
}
