package matcher

import (
	"testing"
	"time"

	"bluedove/internal/core"
	"bluedove/internal/partition"
	"bluedove/internal/wire"
)

func mustTable(t *testing.T, ids ...core.NodeID) *partition.Table {
	t.Helper()
	tab, err := partition.NewUniform(testSpace, ids)
	if err != nil {
		t.Fatal(err)
	}
	return tab
}

func TestAdoptTableAndServeRequests(t *testing.T) {
	h := newHarness(t)
	if h.m.Table() != nil {
		t.Fatal("table before any gossip")
	}
	// No table yet: requests answer with an error.
	ep := h.mesh.Endpoint("req")
	resp, err := ep.Request("m1", &wire.Envelope{Kind: wire.KindTableRequest}, time.Second)
	if err != nil || resp.Kind != wire.KindError {
		t.Fatalf("pre-table request: %v %v", resp, err)
	}
	// Publish a table through the matcher's own gossip state; the table
	// loop adopts the highest version it sees.
	tab := mustTable(t, 1, 2)
	h.m.Gossiper().SetState(TableKey, tab.Encode(), tab.Version())
	waitFor(t, func() bool { return h.m.Table() != nil })
	if h.m.Table().Version() != tab.Version() {
		t.Fatalf("adopted v%d", h.m.Table().Version())
	}
	resp, err = ep.Request("m1", &wire.Envelope{Kind: wire.KindTableRequest}, time.Second)
	if err != nil || resp.Kind != wire.KindTableResponse {
		t.Fatalf("post-table request: %v %v", resp, err)
	}
	body, err := wire.DecodeTableResponse(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	got, err := partition.Decode(body.Table)
	if err != nil || got.Version() != tab.Version() {
		t.Fatalf("served table: %v %v", got, err)
	}
	// Garbage state must be ignored without breaking adoption.
	h.m.Gossiper().SetState(TableKey, []byte{1, 2, 3}, tab.Version()+1)
	time.Sleep(200 * time.Millisecond)
	if h.m.Table().Version() != tab.Version() {
		t.Error("garbage table adopted")
	}
}

func TestPruneAfterTableChange(t *testing.T) {
	h := newHarness(t)
	// Matcher 1 initially owns everything (single-matcher table).
	t1 := mustTable(t, 1)
	h.m.Gossiper().SetState(TableKey, t1.Encode(), t1.Version())
	waitFor(t, func() bool { return h.m.Table() != nil })

	// Store two narrow subscriptions on dim 0: one in the lower half, one
	// in the upper half of the dimension.
	h.send(t, wire.KindStore, (&wire.StoreBody{Dim: 0, Sub: mkSub(1, 5, 20), DeliverAddr: "peer"}).Encode())
	h.send(t, wire.KindStore, (&wire.StoreBody{Dim: 0, Sub: mkSub(2, 80, 95), DeliverAddr: "peer"}).Encode())
	waitFor(t, func() bool { return h.m.SubsOnDim(0) == 2 })

	// A join splits matcher 1: the new matcher 9 takes the upper half of
	// every dimension, so subscription 2 no longer overlaps matcher 1's
	// dim-0 segment and must be pruned after the grace period.
	t2, _, err := t1.Join(9, []core.NodeID{1, 1})
	if err != nil {
		t.Fatal(err)
	}
	h.m.Gossiper().SetState(TableKey, t2.Encode(), t2.Version())
	waitFor(t, func() bool { return h.m.SubsOnDim(0) == 1 })
	// The survivor is the lower-half subscription.
	msg := core.NewMessage([]float64{10, 50}, nil)
	h.send(t, wire.KindForward, (&wire.ForwardBody{Dim: 0, Msg: msg}).Encode())
	waitFor(t, func() bool { return len(h.received(wire.KindDeliver)) == 1 })
}

func TestPruneSkippedWhenRemovedFromTable(t *testing.T) {
	h := newHarness(t)
	t1 := mustTable(t, 1, 9)
	h.m.Gossiper().SetState(TableKey, t1.Encode(), t1.Version())
	waitFor(t, func() bool { return h.m.Table() != nil })
	h.send(t, wire.KindStore, (&wire.StoreBody{Dim: 0, Sub: mkSub(1, 5, 20), DeliverAddr: "peer"}).Encode())
	waitFor(t, func() bool { return h.m.SubsOnDim(0) == 1 })
	// Matcher 1 leaves the table; it must keep its subscriptions and serve
	// stale traffic until shut down.
	t2, _, err := t1.Leave(1)
	if err != nil {
		t.Fatal(err)
	}
	h.m.Gossiper().SetState(TableKey, t2.Encode(), t2.Version())
	time.Sleep(400 * time.Millisecond) // grace is 100ms in the harness
	if h.m.SubsOnDim(0) != 1 {
		t.Error("removed matcher pruned its subscriptions")
	}
}

func TestAccessors(t *testing.T) {
	h := newHarness(t)
	if h.m.ID() != 1 || h.m.Addr() != "m1" {
		t.Errorf("ID/Addr: %v %q", h.m.ID(), h.m.Addr())
	}
	if h.m.Gossiper() == nil {
		t.Error("Gossiper nil")
	}
	if h.m.QueueStore() != nil {
		t.Error("matchers host no queues")
	}
}
