package matcher

import (
	"sync"

	"bluedove/internal/core"
	"bluedove/internal/index"
	"bluedove/internal/wire"
)

// maxDeliverBatchBytes caps one DeliverBatch frame's encoded size; a chain of
// deliveries to one address larger than this is split across frames (well
// under wire.MaxFrame so decode never rejects what we produce).
const maxDeliverBatchBytes = 1 << 20

// delEntry is one pending delivery being assembled: the destination address
// and the body, chained (via next) to the other deliveries for the same
// address so batch flushing needs no per-address slices.
type delEntry struct {
	addr string
	next int // index of the next delEntry with the same addr; -1 at the tail
	body wire.DeliverBody
}

// addrChain is the head/tail of one address's delEntry chain.
type addrChain struct{ head, tail int }

// matchScratch holds the per-call working state of the matching hot path.
// Pooled so steady-state matching allocates nothing: the Match destination
// slice, the stabbing candidate buffer, the per-subscriber grouping map, the
// delivery list (with SubIDs backing arrays), the per-shard parallel jobs and
// the batch assembly buffers are all reused.
type matchScratch struct {
	dst       []*core.Subscription
	cands     []*core.Subscription // stabbing candidate buffer (index.Match)
	live      []*core.Message      // batch minus TTL-shed messages
	jobs      []shardJob           // per-shard parallel work, one entry per shard
	wg        sync.WaitGroup
	perSub    map[core.SubscriberID]int // subscriber → index into dels, per message
	dels      []delEntry
	chains    map[string]addrChain
	batch     wire.DeliverBatchBody
	ackIDs    []core.MessageID
	ackTraces []wire.AckTrace
}

var scratchPool = sync.Pool{New: func() any {
	return &matchScratch{
		perSub: make(map[core.SubscriberID]int, 16),
		chains: make(map[string]addrChain, 8),
	}
}}

func getScratch() *matchScratch { return scratchPool.Get().(*matchScratch) }

// putScratch drops all object references (so pooling does not pin messages
// or subscriptions past their useful life) and returns sc to the pool.
func putScratch(sc *matchScratch) {
	clear(sc.dst)
	sc.dst = sc.dst[:0]
	clear(sc.cands)
	sc.cands = sc.cands[:0]
	clear(sc.live)
	sc.live = sc.live[:0]
	for i := range sc.jobs {
		sc.jobs[i].reset()
	}
	clear(sc.perSub)
	for i := range sc.dels {
		d := &sc.dels[i]
		d.addr = ""
		d.body.Msg = nil
		d.body.SubIDs = d.body.SubIDs[:0]
	}
	sc.dels = sc.dels[:0]
	clear(sc.chains)
	clear(sc.batch.Deliveries)
	sc.batch.Deliveries = sc.batch.Deliveries[:0]
	sc.ackIDs = sc.ackIDs[:0]
	sc.ackTraces = sc.ackTraces[:0]
	scratchPool.Put(sc)
}

// addDelivery starts a new delivery for (addr, sub, msg), reusing a previous
// entry's SubIDs capacity when available, and records it in perSub.
func (sc *matchScratch) addDelivery(addr string, sub core.SubscriberID, msg *core.Message) int {
	i := len(sc.dels)
	if i < cap(sc.dels) {
		sc.dels = sc.dels[:i+1]
		d := &sc.dels[i]
		d.addr = addr
		d.body.Subscriber = sub
		d.body.Msg = msg
		d.body.SubIDs = d.body.SubIDs[:0]
	} else {
		sc.dels = append(sc.dels, delEntry{
			addr: addr,
			body: wire.DeliverBody{Subscriber: sub, Msg: msg},
		})
	}
	sc.perSub[sub] = i
	return i
}

// deliverEncodedSize returns the encoded size of one DeliverBody inside a
// DeliverBatch frame (subscriber + message + trace + id list).
func deliverEncodedSize(d *wire.DeliverBody) int {
	sz := 8 + 8 + 8 + 8 + 2 + 8*len(d.Msg.Attrs) + 4 + len(d.Msg.Payload) + 4 + 8*len(d.SubIDs) + 1
	if d.Msg.Trace != nil {
		sz += wire.TraceOverhead - 1
	}
	return sz
}

// enqueueBatch fans a decoded ForwardBatch out to the dimension stages: one
// forwardItem per dimension carrying that dimension's share of the batch.
//
// The stage queue is bounded in items but weighted in messages — a batch
// occupies one channel slot however many messages it carries — so admission
// is bounded on the weighted backlog (EventLen vs QueueDepth). A batch that
// straddles the bound is split: the accepted prefix is enqueued, and every
// message of the rejected suffix is counted in Dropped and busy-NACKed back
// to the sender inside one ForwardAckBatch frame, instead of vanishing.
func (m *Matcher) enqueueBatch(b *wire.ForwardBatchBody, from core.NodeID) {
	perDim := make([][]*core.Message, len(m.dims))
	for _, e := range b.Entries {
		if e.Dim < 0 || e.Dim >= len(m.dims) || e.Msg == nil {
			continue
		}
		perDim[e.Dim] = append(perDim[e.Dim], e.Msg)
	}
	var busy []wire.BusyEntry
	for d, msgs := range perDim {
		if len(msgs) == 0 {
			continue
		}
		st := m.dims[d].stage
		accept, reject := msgs, []*core.Message(nil)
		if room := m.cfg.QueueDepth - st.EventLen(); room <= 0 {
			accept, reject = nil, msgs
		} else if room < len(msgs) {
			accept, reject = msgs[:room], msgs[room:]
		}
		if len(accept) > 0 && st.Enqueue(forwardItem{msgs: accept, from: from}) != nil {
			accept, reject = nil, msgs // channel full: nothing was admitted
		}
		if len(reject) > 0 {
			m.Dropped.Add(int64(len(reject)))
			m.BusyNacks.Add(int64(len(reject)))
			qlen := st.EventLen()
			for _, msg := range reject {
				busy = append(busy, wire.BusyEntry{ID: msg.ID, Dim: d, QueueLen: qlen})
			}
		}
	}
	if len(busy) > 0 && from != 0 {
		if addr, ok := m.gsp.AddrOf(from); ok {
			m.send(addr, wire.KindForwardAckBatch, &wire.ForwardAckBatchBody{Busy: busy})
		}
	}
}

// matchBatch matches a batch of forwarded messages against the dimension's
// set under one index lock acquisition, coalesces the resulting deliveries
// per destination address into DeliverBatch frames, and acknowledges the
// whole batch with one ForwardAckBatch.
func (m *Matcher) matchBatch(ds *dimSet, dim int, it forwardItem) {
	sc := getScratch()
	var tnow int64
	traced := false
	for _, msg := range it.msgs {
		if msg.Trace != nil {
			if !traced {
				traced, tnow = true, m.cfg.Now()
			}
			msg.Trace.Stamp(core.HopDequeue, tnow)
		}
	}
	// TTL shedding happens at dequeue: a publication that expired while
	// queued is acked (processing is complete — deliberately shed) but
	// never matched or delivered.
	var shedNow int64
	for _, msg := range it.msgs {
		if msg.TTL > 0 {
			shedNow = m.cfg.Now()
			break
		}
	}
	sc.live = sc.live[:0]
	for _, msg := range it.msgs {
		if msg.TTL > 0 && shedNow > msg.PublishedAt+msg.TTL {
			m.Shed.Add(1)
			continue
		}
		sc.live = append(sc.live, msg)
	}
	scanned := 0
	if m.pool == nil || len(ds.shards) == 1 {
		// Single-shard inline path: one read-lock acquisition for the batch.
		sh := ds.shards[0]
		sh.mu.RLock()
		for _, msg := range sc.live {
			var n int
			sc.dst, sc.cands, n = index.Match(sh.idx, msg, sc.dst[:0], sc.cands)
			scanned += n
			for _, s := range sc.dst {
				i, ok := sc.perSub[s.Subscriber]
				if !ok {
					i = sc.addDelivery(sh.addrs[s.ID], s.Subscriber, msg)
				}
				sc.dels[i].body.SubIDs = append(sc.dels[i].body.SubIDs, s.ID)
			}
			clear(sc.perSub) // per-subscriber grouping is per message
		}
		sh.mu.RUnlock()
	} else {
		// Parallel path: fan the batch's stab+verify work across the shards
		// on the matcher's worker pool (the stage goroutine runs one shard's
		// job inline so it always contributes a core), then merge the
		// msg-ordered per-shard hit lists with a cursor sweep so delivery
		// coalescing sees the exact same (message, sub) stream as the inline
		// path. Jobs live in the pooled scratch: steady state allocates
		// nothing.
		for len(sc.jobs) < len(ds.shards) {
			sc.jobs = append(sc.jobs, shardJob{})
		}
		jobs := sc.jobs[:len(ds.shards)]
		sc.wg.Add(len(jobs))
		for i := range jobs {
			j := &jobs[i]
			j.shard = ds.shards[i]
			j.msgs = sc.live
			j.wg = &sc.wg
		}
		for i := 1; i < len(jobs); i++ {
			m.pool.submit(&jobs[i])
		}
		jobs[0].run()
		sc.wg.Wait()
		for i := range jobs {
			scanned += jobs[i].scanned
			jobs[i].cur = 0
		}
		for mi := range sc.live {
			for i := range jobs {
				j := &jobs[i]
				for j.cur < len(j.hits) && int(j.hits[j.cur].msg) == mi {
					h := &j.hits[j.cur]
					j.cur++
					di, ok := sc.perSub[h.sub.Subscriber]
					if !ok {
						di = sc.addDelivery(h.addr, h.sub.Subscriber, sc.live[mi])
					}
					sc.dels[di].body.SubIDs = append(sc.dels[di].body.SubIDs, h.sub.ID)
				}
			}
			clear(sc.perSub) // per-subscriber grouping is per message
		}
		for i := range jobs {
			jobs[i].reset()
		}
	}
	m.Scanned.Add(int64(scanned))
	m.Processed.Add(int64(len(it.msgs)))
	var matchDone int64
	if traced {
		matchDone = m.cfg.Now()
		for _, msg := range it.msgs {
			if msg.Trace != nil {
				msg.Trace.Stamp(core.HopMatch, matchDone)
				m.matchLatency.Observe(matchDone - msg.Trace.Hops[core.HopDequeue])
			}
		}
	}

	// Chain deliveries by destination address.
	for i := range sc.dels {
		d := &sc.dels[i]
		d.next = -1
		if c, ok := sc.chains[d.addr]; ok {
			sc.dels[c.tail].next = i
			c.tail = i
			sc.chains[d.addr] = c
		} else {
			sc.chains[d.addr] = addrChain{head: i, tail: i}
		}
	}

	// Flush one DeliverBatch frame per address (split if oversized).
	for addr, c := range sc.chains {
		sc.batch.Deliveries = sc.batch.Deliveries[:0]
		size := 4
		for i := c.head; i != -1; i = sc.dels[i].next {
			d := &sc.dels[i]
			n := int64(len(d.body.SubIDs))
			m.Matched.Add(n)
			if addr == "" {
				continue // nowhere to deliver (registered without an address)
			}
			m.Delivered.Add(n)
			// Stamp before the body is encoded so the frame carries the hop.
			if d.body.Msg.Trace != nil {
				d.body.Msg.Trace.Stamp(core.HopDeliver, matchDone)
			}
			esz := deliverEncodedSize(&d.body)
			if size+esz > maxDeliverBatchBytes && len(sc.batch.Deliveries) > 0 {
				m.send(addr, wire.KindDeliverBatch, &sc.batch)
				sc.batch.Deliveries = sc.batch.Deliveries[:0]
				size = 4
			}
			sc.batch.Deliveries = append(sc.batch.Deliveries, d.body)
			size += esz
		}
		if len(sc.batch.Deliveries) > 0 {
			m.send(addr, wire.KindDeliverBatch, &sc.batch)
		}
	}

	if traced {
		if tel := m.cfg.Telemetry; tel != nil {
			for _, msg := range it.msgs {
				if msg.Trace != nil {
					tel.Tracer.Record(msg.ID, msg.Trace)
				}
			}
		}
	}
	if it.from != 0 {
		if addr, ok := m.gsp.AddrOf(it.from); ok {
			sc.ackIDs = sc.ackIDs[:0]
			sc.ackTraces = sc.ackTraces[:0]
			for _, msg := range it.msgs {
				sc.ackIDs = append(sc.ackIDs, msg.ID)
				if msg.Trace != nil {
					sc.ackTraces = append(sc.ackTraces, wire.AckTrace{Msg: msg.ID, Ctx: *msg.Trace})
				}
			}
			ack := wire.ForwardAckBatchBody{IDs: sc.ackIDs, Traces: sc.ackTraces}
			m.send(addr, wire.KindForwardAckBatch, &ack)
		}
	}
	putScratch(sc)
}
