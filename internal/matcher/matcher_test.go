package matcher

import (
	"sync"
	"testing"
	"time"

	"bluedove/internal/core"
	"bluedove/internal/transport"
	"bluedove/internal/wire"
)

var testSpace = core.UniformSpace(2, 100)

// harness wires one matcher to a mesh with a fake dispatcher endpoint that
// records everything it receives.
type harness struct {
	mesh *transport.Mesh
	m    *Matcher
	mu   sync.Mutex
	// recv collects envelopes arriving at the fake peer endpoint "peer".
	recv []*wire.Envelope
}

func newHarness(t *testing.T) *harness { return newHarnessMut(t, nil) }

// newHarnessMut builds the harness with a config hook for tests exercising
// non-default match-path layouts (covering, shards, index kinds).
func newHarnessMut(t *testing.T, mut func(*Config)) *harness {
	t.Helper()
	h := &harness{mesh: transport.NewMesh(0)}
	peer := h.mesh.Endpoint("peer")
	if _, err := peer.Listen("peer", func(env *wire.Envelope) *wire.Envelope {
		h.mu.Lock()
		h.recv = append(h.recv, env)
		h.mu.Unlock()
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	cfg := Config{
		ID:             1,
		Addr:           "m1",
		Space:          testSpace,
		Transport:      h.mesh.Endpoint("m1"),
		GossipInterval: 50 * time.Millisecond,
		ReportInterval: 50 * time.Millisecond,
		PruneGrace:     100 * time.Millisecond,
		Generation:     1,
	}
	if mut != nil {
		mut(&cfg)
	}
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Start(); err != nil {
		t.Fatal(err)
	}
	h.m = m
	t.Cleanup(func() {
		m.Stop()
		h.mesh.Close()
	})
	return h
}

func (h *harness) send(t *testing.T, kind wire.Kind, body []byte) {
	t.Helper()
	ep := h.mesh.Endpoint("tester")
	if err := ep.Send("m1", &wire.Envelope{Kind: kind, From: 99, Body: body}); err != nil {
		t.Fatal(err)
	}
}

func (h *harness) received(kind wire.Kind) []*wire.Envelope {
	h.mu.Lock()
	defer h.mu.Unlock()
	var out []*wire.Envelope
	for _, e := range h.recv {
		if e.Kind == kind {
			out = append(out, e)
		}
	}
	return out
}

func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatal("condition not reached in time")
}

func mkSub(id core.SubscriptionID, lo0, hi0 float64) *core.Subscription {
	s := core.NewSubscription(core.SubscriberID(id), []core.Range{{Low: lo0, High: hi0}, {Low: 0, High: 100}})
	s.ID = id
	return s
}

func TestStoreForwardDeliver(t *testing.T) {
	h := newHarness(t)
	sub := mkSub(5, 10, 50)
	h.send(t, wire.KindStore, (&wire.StoreBody{Dim: 0, Sub: sub, DeliverAddr: "peer"}).Encode())
	waitFor(t, func() bool { return h.m.SubsOnDim(0) == 1 })

	msg := core.NewMessage([]float64{20, 30}, []byte("x"))
	msg.ID = 77
	h.send(t, wire.KindForward, (&wire.ForwardBody{Dim: 0, Msg: msg}).Encode())
	waitFor(t, func() bool { return len(h.received(wire.KindDeliver)) == 1 })

	d, err := wire.DecodeDeliver(h.received(wire.KindDeliver)[0].Body)
	if err != nil {
		t.Fatal(err)
	}
	if d.Subscriber != 5 || d.Msg.ID != 77 || len(d.SubIDs) != 1 || d.SubIDs[0] != 5 {
		t.Fatalf("delivery: %+v", d)
	}
	if h.m.Processed.Value() != 1 || h.m.Matched.Value() != 1 {
		t.Errorf("counters: processed=%d matched=%d", h.m.Processed.Value(), h.m.Matched.Value())
	}
}

func TestForwardNonMatchingDeliversNothing(t *testing.T) {
	h := newHarness(t)
	h.send(t, wire.KindStore, (&wire.StoreBody{Dim: 0, Sub: mkSub(5, 10, 50), DeliverAddr: "peer"}).Encode())
	waitFor(t, func() bool { return h.m.SubsOnDim(0) == 1 })
	msg := core.NewMessage([]float64{60, 30}, nil) // outside dim-0 predicate
	h.send(t, wire.KindForward, (&wire.ForwardBody{Dim: 0, Msg: msg}).Encode())
	waitFor(t, func() bool { return h.m.Processed.Value() == 1 })
	if len(h.received(wire.KindDeliver)) != 0 {
		t.Error("non-matching message delivered")
	}
}

func TestDimensionSetsAreSeparate(t *testing.T) {
	h := newHarness(t)
	// Store only on dim 1; a forward marked dim 0 must not match it.
	h.send(t, wire.KindStore, (&wire.StoreBody{Dim: 1, Sub: mkSub(5, 0, 100), DeliverAddr: "peer"}).Encode())
	waitFor(t, func() bool { return h.m.SubsOnDim(1) == 1 })
	if h.m.SubsOnDim(0) != 0 {
		t.Fatal("subscription leaked into dim 0")
	}
	msg := core.NewMessage([]float64{20, 30}, nil)
	h.send(t, wire.KindForward, (&wire.ForwardBody{Dim: 0, Msg: msg}).Encode())
	waitFor(t, func() bool { return h.m.Processed.Value() == 1 })
	if len(h.received(wire.KindDeliver)) != 0 {
		t.Error("matched against wrong dimension set")
	}
	// The same message forwarded along dim 1 matches.
	h.send(t, wire.KindForward, (&wire.ForwardBody{Dim: 1, Msg: msg}).Encode())
	waitFor(t, func() bool { return len(h.received(wire.KindDeliver)) == 1 })
}

func TestUnsubscribeRemovesEverywhere(t *testing.T) {
	h := newHarness(t)
	h.send(t, wire.KindStore, (&wire.StoreBody{Dim: 0, Sub: mkSub(5, 0, 100), DeliverAddr: "peer"}).Encode())
	h.send(t, wire.KindStore, (&wire.StoreBody{Dim: 1, Sub: mkSub(5, 0, 100), DeliverAddr: "peer"}).Encode())
	waitFor(t, func() bool { return h.m.SubsOnDim(0) == 1 && h.m.SubsOnDim(1) == 1 })
	h.send(t, wire.KindUnsubscribe, (&wire.UnsubscribeBody{ID: 5}).Encode())
	waitFor(t, func() bool { return h.m.SubsOnDim(0) == 0 && h.m.SubsOnDim(1) == 0 })
}

func TestDeliveryGroupedPerSubscriber(t *testing.T) {
	h := newHarness(t)
	// Two subscriptions of the same subscriber matching the same message
	// must arrive as one delivery with both IDs.
	s1 := core.NewSubscription(9, []core.Range{{Low: 0, High: 100}, {Low: 0, High: 100}})
	s1.ID = 101
	s2 := core.NewSubscription(9, []core.Range{{Low: 10, High: 40}, {Low: 0, High: 100}})
	s2.ID = 102
	h.send(t, wire.KindStore, (&wire.StoreBody{Dim: 0, Sub: s1, DeliverAddr: "peer"}).Encode())
	h.send(t, wire.KindStore, (&wire.StoreBody{Dim: 0, Sub: s2, DeliverAddr: "peer"}).Encode())
	waitFor(t, func() bool { return h.m.SubsOnDim(0) == 2 })
	msg := core.NewMessage([]float64{20, 20}, nil)
	h.send(t, wire.KindForward, (&wire.ForwardBody{Dim: 0, Msg: msg}).Encode())
	waitFor(t, func() bool { return len(h.received(wire.KindDeliver)) == 1 })
	d, _ := wire.DecodeDeliver(h.received(wire.KindDeliver)[0].Body)
	if len(d.SubIDs) != 2 {
		t.Fatalf("SubIDs: %v", d.SubIDs)
	}
}

func TestHandoverTransfersOverlapping(t *testing.T) {
	h := newHarness(t)
	h.send(t, wire.KindStore, (&wire.StoreBody{Dim: 0, Sub: mkSub(1, 0, 30), DeliverAddr: "a1"}).Encode())
	h.send(t, wire.KindStore, (&wire.StoreBody{Dim: 0, Sub: mkSub(2, 60, 90), DeliverAddr: "a2"}).Encode())
	waitFor(t, func() bool { return h.m.SubsOnDim(0) == 2 })
	// Hand over [50,100): only sub 2 overlaps. The outgoing frame is
	// range-bounded and carries the requested idempotency key.
	h.send(t, wire.KindHandover, (&wire.HandoverBody{Dim: 0, Low: 50, High: 100, TargetAddr: "peer",
		TransferID: 77}).Encode())
	waitFor(t, func() bool { return len(h.received(wire.KindTransferRange)) == 1 })
	tr, err := wire.DecodeTransferRange(h.received(wire.KindTransferRange)[0].Body)
	if err != nil {
		t.Fatal(err)
	}
	if tr.TransferID != 77 || tr.Dim != 0 || tr.Low != 50 || tr.High != 100 {
		t.Fatalf("transfer header: %+v", tr)
	}
	if len(tr.Subs) != 1 || tr.Subs[0].ID != 2 || tr.DeliverAddrs[0] != "a2" {
		t.Fatalf("transfer: %+v", tr)
	}
}

func TestTransferRangeAdoptedOnce(t *testing.T) {
	h := newHarness(t)
	body := (&wire.TransferRangeBody{
		TransferID:   42,
		Dim:          0,
		Low:          0,
		High:         100,
		Subs:         []*core.Subscription{mkSub(1, 10, 20)},
		DeliverAddrs: []string{"a1"},
	}).Encode()
	h.send(t, wire.KindTransferRange, body)
	waitFor(t, func() bool { return h.m.SubsOnDim(0) == 1 })
	// The same transfer retried (sender crashed mid-handover, controller
	// re-issued it) must not double-install.
	h.send(t, wire.KindTransferRange, body)
	// A distinct transfer still lands, proving the guard is per-ID.
	h.send(t, wire.KindTransferRange, (&wire.TransferRangeBody{
		TransferID:   43,
		Dim:          0,
		Low:          0,
		High:         100,
		Subs:         []*core.Subscription{mkSub(2, 30, 40)},
		DeliverAddrs: []string{"a2"},
	}).Encode())
	waitFor(t, func() bool { return h.m.SubsOnDim(0) == 2 })
	if h.m.SubsOnDim(0) != 2 {
		t.Fatalf("subs = %d, want 2 (duplicate transfer adopted?)", h.m.SubsOnDim(0))
	}
}

func TestLoadReportsPushedToDispatchers(t *testing.T) {
	h := newHarness(t)
	// Make the fake peer a dispatcher in gossip by running a real gossiper
	// there would be heavy; instead verify via LoadSnapshot directly.
	h.send(t, wire.KindStore, (&wire.StoreBody{Dim: 0, Sub: mkSub(1, 0, 30), DeliverAddr: "peer"}).Encode())
	waitFor(t, func() bool { return h.m.SubsOnDim(0) == 1 })
	snap := h.m.LoadSnapshot()
	if len(snap) != 2 {
		t.Fatalf("snapshot dims: %d", len(snap))
	}
	if snap[0].Subs != 1 || snap[1].Subs != 0 {
		t.Fatalf("snapshot: %+v", snap)
	}
	if snap[0].MatchRate <= 0 {
		t.Error("cold stage capacity not seeded")
	}
}

func TestBadFramesIgnored(t *testing.T) {
	h := newHarness(t)
	h.send(t, wire.KindStore, []byte{1, 2})
	h.send(t, wire.KindForward, []byte{3})
	h.send(t, wire.KindTransfer, []byte{9, 9, 9})
	h.send(t, wire.KindHandover, []byte{})
	h.send(t, wire.Kind(250), nil)
	// Out-of-range dimension.
	msg := core.NewMessage([]float64{1, 2}, nil)
	h.send(t, wire.KindForward, (&wire.ForwardBody{Dim: 9, Msg: msg}).Encode())
	time.Sleep(100 * time.Millisecond)
	if h.m.Processed.Value() != 0 {
		t.Error("garbage processed")
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Error("empty config accepted")
	}
}
