package matcher

import (
	"testing"
	"time"

	"bluedove/internal/core"
	"bluedove/internal/wire"
)

func TestForwardBatchDelivers(t *testing.T) {
	h := newHarness(t)
	h.send(t, wire.KindStore, (&wire.StoreBody{Dim: 0, Sub: mkSub(5, 10, 50), DeliverAddr: "peer"}).Encode())
	h.send(t, wire.KindStore, (&wire.StoreBody{Dim: 1, Sub: mkSub(6, 0, 100), DeliverAddr: "peer"}).Encode())
	waitFor(t, func() bool { return h.m.SubsOnDim(0) == 1 && h.m.SubsOnDim(1) == 1 })

	// One batch mixing dimensions: two messages for dim 0 (one matching, one
	// not), one for dim 1.
	m1 := core.NewMessage([]float64{20, 30}, []byte("a"))
	m1.ID = 201
	m2 := core.NewMessage([]float64{90, 30}, nil) // outside sub 5's dim-0 range
	m2.ID = 202
	m3 := core.NewMessage([]float64{70, 30}, []byte("c"))
	m3.ID = 203
	batch := &wire.ForwardBatchBody{Entries: []wire.ForwardEntry{
		{Dim: 0, Msg: m1}, {Dim: 0, Msg: m2}, {Dim: 1, Msg: m3},
	}}
	h.send(t, wire.KindForwardBatch, batch.Encode())

	waitFor(t, func() bool { return h.m.Processed.Value() == 3 })
	waitFor(t, func() bool {
		got := 0
		for _, e := range h.received(wire.KindDeliverBatch) {
			db, err := wire.DecodeDeliverBatch(e.Body)
			if err != nil {
				t.Fatal(err)
			}
			got += len(db.Deliveries)
		}
		return got == 2
	})

	seen := map[core.MessageID]core.SubscriberID{}
	for _, e := range h.received(wire.KindDeliverBatch) {
		db, _ := wire.DecodeDeliverBatch(e.Body)
		for _, d := range db.Deliveries {
			if len(d.SubIDs) != 1 {
				t.Fatalf("SubIDs: %v", d.SubIDs)
			}
			seen[d.Msg.ID] = d.Subscriber
		}
	}
	if seen[201] != 5 || seen[203] != 6 {
		t.Fatalf("deliveries: %v", seen)
	}
	if _, ok := seen[202]; ok {
		t.Fatal("non-matching message delivered")
	}
	if h.m.Matched.Value() != 2 || h.m.Delivered.Value() != 2 {
		t.Errorf("counters: matched=%d delivered=%d", h.m.Matched.Value(), h.m.Delivered.Value())
	}
}

func TestForwardBatchCoalescesPerAddress(t *testing.T) {
	h := newHarness(t)
	// Two subscribers behind the same address, both matching both messages:
	// the whole batch's four deliveries must arrive in one DeliverBatch frame.
	h.send(t, wire.KindStore, (&wire.StoreBody{Dim: 0, Sub: mkSub(1, 0, 100), DeliverAddr: "peer"}).Encode())
	h.send(t, wire.KindStore, (&wire.StoreBody{Dim: 0, Sub: mkSub(2, 0, 100), DeliverAddr: "peer"}).Encode())
	waitFor(t, func() bool { return h.m.SubsOnDim(0) == 2 })

	ma := core.NewMessage([]float64{10, 10}, nil)
	ma.ID = 301
	mb := core.NewMessage([]float64{20, 20}, nil)
	mb.ID = 302
	h.send(t, wire.KindForwardBatch, (&wire.ForwardBatchBody{Entries: []wire.ForwardEntry{
		{Dim: 0, Msg: ma}, {Dim: 0, Msg: mb},
	}}).Encode())

	waitFor(t, func() bool { return len(h.received(wire.KindDeliverBatch)) == 1 })
	db, err := wire.DecodeDeliverBatch(h.received(wire.KindDeliverBatch)[0].Body)
	if err != nil {
		t.Fatal(err)
	}
	if len(db.Deliveries) != 4 {
		t.Fatalf("expected 4 coalesced deliveries, got %d", len(db.Deliveries))
	}
	if h.m.Delivered.Value() != 4 {
		t.Errorf("delivered=%d", h.m.Delivered.Value())
	}
}

func TestDeliveredCounterExcludesAddressless(t *testing.T) {
	h := newHarness(t)
	// One subscription with a delivery address, one stored without (e.g. a
	// replication-safeguard copy): both count as matched, only one as
	// delivered.
	h.send(t, wire.KindStore, (&wire.StoreBody{Dim: 0, Sub: mkSub(1, 0, 100), DeliverAddr: "peer"}).Encode())
	h.send(t, wire.KindStore, (&wire.StoreBody{Dim: 0, Sub: mkSub(2, 0, 100), DeliverAddr: ""}).Encode())
	waitFor(t, func() bool { return h.m.SubsOnDim(0) == 2 })

	msg := core.NewMessage([]float64{50, 50}, nil)
	h.send(t, wire.KindForward, (&wire.ForwardBody{Dim: 0, Msg: msg}).Encode())
	waitFor(t, func() bool { return h.m.Processed.Value() == 1 })

	if h.m.Matched.Value() != 2 {
		t.Errorf("matched=%d, want 2 (attempted)", h.m.Matched.Value())
	}
	if h.m.Delivered.Value() != 1 {
		t.Errorf("delivered=%d, want 1 (one had no address)", h.m.Delivered.Value())
	}
	if len(h.received(wire.KindDeliver)) != 1 {
		t.Fatalf("deliver frames: %d", len(h.received(wire.KindDeliver)))
	}

	// Same on the batched path.
	h.send(t, wire.KindForwardBatch, (&wire.ForwardBatchBody{Entries: []wire.ForwardEntry{
		{Dim: 0, Msg: core.NewMessage([]float64{40, 40}, nil)},
	}}).Encode())
	waitFor(t, func() bool { return h.m.Processed.Value() == 2 })
	if h.m.Matched.Value() != 4 || h.m.Delivered.Value() != 2 {
		t.Errorf("after batch: matched=%d delivered=%d", h.m.Matched.Value(), h.m.Delivered.Value())
	}
}

func TestForwardBatchBadDimsDropped(t *testing.T) {
	h := newHarness(t)
	h.send(t, wire.KindStore, (&wire.StoreBody{Dim: 0, Sub: mkSub(1, 0, 100), DeliverAddr: "peer"}).Encode())
	waitFor(t, func() bool { return h.m.SubsOnDim(0) == 1 })
	ok := core.NewMessage([]float64{10, 10}, nil)
	h.send(t, wire.KindForwardBatch, (&wire.ForwardBatchBody{Entries: []wire.ForwardEntry{
		{Dim: 9, Msg: core.NewMessage([]float64{1, 1}, nil)}, // out of range: skipped
		{Dim: 0, Msg: ok},
	}}).Encode())
	waitFor(t, func() bool { return h.m.Processed.Value() == 1 })
	if got := len(h.received(wire.KindDeliverBatch)); got != 1 {
		t.Fatalf("deliver-batch frames: %d", got)
	}
	time.Sleep(20 * time.Millisecond)
	if h.m.Processed.Value() != 1 {
		t.Errorf("processed=%d, want 1", h.m.Processed.Value())
	}
}
