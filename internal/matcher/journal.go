package matcher

import (
	"fmt"
	"sort"

	"bluedove/internal/partition"
	"bluedove/internal/store"
	"bluedove/internal/wire"
)

// Journal record kinds. Payloads reuse the wire codec bodies the transport
// handler already decodes, so replay is literally a second pass through the
// same apply logic — the handler journals the raw body bytes it was handed
// and recovery decodes them with the same wire functions. Snapshot payloads
// are themselves record streams (store.AppendRecord framing), restored
// through the same applyRecord as the WAL tail.
const (
	recSubStore  uint8 = 1 // wire.StoreBody: one subscription copy on one dimension
	recSubRemove uint8 = 2 // wire.UnsubscribeBody: remove from every dimension
	recTransfer  uint8 = 3 // wire.TransferBody: handover bulk install
	recTable     uint8 = 4 // partition table encoding: adopted segment table
	// recTransferRange is a wire.TransferRangeBody: a range-bounded handover
	// install. Replay re-arms the adoption guard with the TransferID, so a
	// transfer retried across a crash of the receiving matcher is still
	// adopted at most once. Snapshots persist the guard as sub-less
	// TransferRangeBody records.
	recTransferRange uint8 = 5
)

// openJournal opens (and recovers) the durable subscription journal when
// Config.DataDir is set. Called from Start before the transport listener
// binds, so replay never races live mutations. Pruning is intentionally NOT
// journaled: after replay the restored table re-derives it, which keeps the
// hot prune path free of WAL writes.
func (m *Matcher) openJournal() error {
	if m.cfg.DataDir == "" {
		return nil
	}
	s, err := store.Open(store.Options{
		Dir:           m.cfg.DataDir,
		Fsync:         m.cfg.Fsync,
		SnapshotEvery: m.cfg.SnapshotEvery,
		Restore:       func(p []byte) error { return store.WalkRecords(p, m.applyRecord) },
		Apply:         m.applyRecord,
		FS:            m.cfg.FS,
		Policy:        m.cfg.FailPolicy,
		OnHealth: func(h store.Health, cause error) {
			if h == store.Failed && m.cfg.OnStoreFailure != nil {
				m.cfg.OnStoreFailure(cause)
			}
		},
	})
	if err != nil {
		return fmt.Errorf("matcher: journal: %w", err)
	}
	m.jnl = s
	if t := m.Table(); t != nil {
		// Replay resurrects every add since the snapshot, including copies a
		// later table change pruned; prune against the restored table now so
		// the rebuilt sets match the pre-crash state.
		m.pruneTo(t)
	}
	return nil
}

// applyRecord is the recovery apply function, for both snapshot payloads and
// the WAL tail. Undecodable records are skipped, mirroring the transport
// handler's tolerance of malformed frames.
func (m *Matcher) applyRecord(kind uint8, payload []byte) error {
	switch kind {
	case recSubStore:
		if b, err := wire.DecodeStore(payload); err == nil && b.Dim >= 0 && b.Dim < len(m.dims) {
			m.store(b.Dim, b.Sub, b.DeliverAddr)
		}
	case recSubRemove:
		if b, err := wire.DecodeUnsubscribe(payload); err == nil {
			m.unsubscribe(b.ID)
		}
	case recTransfer:
		if b, err := wire.DecodeTransfer(payload); err == nil && b.Dim >= 0 && b.Dim < len(m.dims) {
			for i, s := range b.Subs {
				addr := ""
				if i < len(b.DeliverAddrs) {
					addr = b.DeliverAddrs[i]
				}
				m.store(b.Dim, s, addr)
			}
		}
	case recTransferRange:
		if b, err := wire.DecodeTransferRange(payload); err == nil && b.Dim >= 0 && b.Dim < len(m.dims) {
			// Replay unconditionally marks the ID adopted; the subscriptions
			// were stored pre-crash, so re-install them too (idempotent adds).
			m.adoptedMu.Lock()
			if b.TransferID != 0 {
				m.adopted[b.TransferID] = true
			}
			m.adoptedMu.Unlock()
			for i, s := range b.Subs {
				addr := ""
				if i < len(b.DeliverAddrs) {
					addr = b.DeliverAddrs[i]
				}
				m.store(b.Dim, s, addr)
			}
		}
	case recTable:
		if t, err := partition.Decode(payload); err == nil {
			m.tableMu.Lock()
			if m.table == nil || t.Version() > m.table.Version() {
				m.table = t
			}
			m.tableMu.Unlock()
		}
	}
	return nil
}

// journal appends one already-encoded mutation to the WAL and folds the
// journal into a snapshot when due. A nil journal (in-memory node) is a
// no-op; append errors degrade durability, not service — in-memory state is
// already mutated — but they are never silent: every failure counts into
// matcher.journal_errors and flips the store.health gauge, and the health
// machine handles the segment itself (repair, degrade, or fail). Must not
// be called with any dimension lock held (the snapshot pass takes them all).
func (m *Matcher) journal(kind uint8, payload []byte) {
	if m.jnl == nil {
		return
	}
	if err := m.jnl.Append(kind, payload); err != nil {
		m.JournalErrors.Add(1)
	}
	if m.jnl.SnapshotDue() {
		m.snapshotJournal()
	}
}

// snapshotJournal serializes the full subscription state (every dimension's
// stored copies plus the current table) as a record stream and folds the
// WAL into it.
func (m *Matcher) snapshotJournal() {
	var payload []byte
	for dim, ds := range m.dims {
		for _, sh := range ds.shards {
			sh.mu.RLock()
			for _, s := range sh.idx.All(nil) {
				body := (&wire.StoreBody{Dim: dim, Sub: s, DeliverAddr: sh.addrs[s.ID]}).Encode()
				payload = store.AppendRecord(payload, recSubStore, body)
			}
			sh.mu.RUnlock()
		}
	}
	if t := m.Table(); t != nil {
		payload = store.AppendRecord(payload, recTable, t.Encode())
	}
	// Persist the adoption guard: one sub-less transfer-range record per
	// adopted ID, replayed through the same applyRecord path.
	m.adoptedMu.Lock()
	ids := make([]uint64, 0, len(m.adopted))
	for id := range m.adopted {
		ids = append(ids, id)
	}
	m.adoptedMu.Unlock()
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		body := (&wire.TransferRangeBody{TransferID: id, High: 1}).Encode()
		payload = store.AppendRecord(payload, recTransferRange, body)
	}
	if err := m.jnl.Snapshot(payload); err != nil {
		m.JournalErrors.Add(1)
	}
}

// StoreHealth is the journal's durability state (Healthy on in-memory
// nodes: there is no durability guarantee to lose).
func (m *Matcher) StoreHealth() store.Health {
	if m.jnl == nil {
		return store.Healthy
	}
	return m.jnl.Health()
}

// closeJournal syncs and closes the journal at Stop.
func (m *Matcher) closeJournal() {
	if m.jnl != nil {
		_ = m.jnl.Close()
	}
}

// Journal exposes the durable store (nil on in-memory nodes), for tests and
// tooling.
func (m *Matcher) Journal() *store.Store { return m.jnl }
