package matcher

import (
	"bluedove/internal/core"
	"bluedove/internal/wire"
)

// Interest summary: the matcher side of the federation tier. A border node
// periodically asks every local matcher for the per-dimension union of its
// stored subscriptions' predicates (KindSummaryRequest); the border merges
// those unions into the cluster summary it gossips to peer clusters. The
// computation rides the same covering/All enumeration the handover path
// uses, so covered riders are included and replicated copies dedup by ID.

// summaryMaxRanges caps the per-dimension interval count of one matcher's
// response. Borders re-merge and re-cap across matchers, so this only
// bounds the transfer; widening here can add false-positive volume but
// never drop covered volume (core.MergeRanges).
const summaryMaxRanges = 256

// handleSummaryRequest answers a border's interest-summary pull. The
// version is the mutation counter sampled before enumeration: a mutation
// racing the scan makes the next pull's IfVersion miss, re-enumerating —
// staleness is bounded by the border's pull cadence, never permanent.
func (m *Matcher) handleSummaryRequest(b *wire.SummaryRequestBody) *wire.Envelope {
	v := m.mutations.Load()
	resp := &wire.SummaryResponseBody{Version: v}
	if b.IfVersion != 0 && b.IfVersion == v {
		resp.Unchanged = true
	} else {
		resp.Dims = m.InterestSummary(summaryMaxRanges)
	}
	return &wire.Envelope{Kind: wire.KindSummaryResponse, From: m.cfg.ID,
		Body: resp.Encode()}
}

// InterestSummary enumerates every dimension set's shards and returns, per
// space dimension, the merged disjoint interval union over all stored
// subscriptions' predicates, capped at maxRanges intervals per dimension.
// Border-owned subscribers (core.IsFederationSubscriber) are excluded so
// remote interest registered by the local border tier never leaks back
// into this cluster's own summary. Deterministic for a given subscription
// set: enumeration feeds a sorted merge, so shard and arrival order do not
// affect the result.
func (m *Matcher) InterestSummary(maxRanges int) [][]core.Range {
	k := m.cfg.Space.K()
	seen := make(map[core.SubscriptionID]*core.Subscription)
	for _, ds := range m.dims {
		for _, sh := range ds.shards {
			sh.mu.RLock()
			for _, s := range sh.idx.All(nil) {
				if core.IsFederationSubscriber(s.Subscriber) {
					continue
				}
				seen[s.ID] = s
			}
			sh.mu.RUnlock()
		}
	}
	dims := make([][]core.Range, k)
	for _, s := range seen {
		for j := 0; j < k && j < len(s.Predicates); j++ {
			dims[j] = append(dims[j], s.Predicates[j])
		}
	}
	for j := range dims {
		dims[j] = core.MergeRanges(dims[j], maxRanges)
	}
	return dims
}
