package matcher

import (
	"strconv"

	"bluedove/internal/telemetry"
)

// registerTelemetry publishes the matcher's counters, per-dimension stage
// gauges (the same λ/μ/queue figures the load reports carry) and latency
// histograms under the node's registry. Called once from Start, after the
// dimension stages exist.
func (m *Matcher) registerTelemetry() {
	r := m.cfg.Telemetry.Registry
	r.Gauge("node.info", "constant 1; labels identify the node", func(int64) float64 { return 1 })
	r.Counter("matcher.matched", "subscriptions matched (deliveries attempted)", &m.Matched)
	r.Counter("matcher.delivered", "matched subscriptions actually sent a delivery", &m.Delivered)
	r.Counter("matcher.processed", "forwarded messages matched (stage completions)", &m.Processed)
	r.Counter("matcher.dropped", "forwarded messages rejected by stage backpressure", &m.Dropped)
	r.Counter("matcher.busy_nacks", "busy NACKs sent back to dispatchers", &m.BusyNacks)
	r.Counter("matcher.shed_expired", "publications shed at dequeue because their TTL expired", &m.Shed)
	r.Counter("matcher.scanned", "stored subscriptions examined by stab+verify", &m.Scanned)
	r.Gauge("matcher.scanned_per_msg", "subscriptions scanned per matched message (index efficiency)", func(int64) float64 {
		p := m.Processed.Value()
		if p == 0 {
			return 0
		}
		return float64(m.Scanned.Value()) / float64(p)
	})
	r.Counter("matcher.report_bytes", "load-report traffic", &m.ReportBytes)
	// Registered even without a journal (always zero then) so the scrape
	// contract can require the series on every matcher.
	r.Counter("matcher.journal_errors", "journal appends/snapshots that failed", &m.JournalErrors)
	r.Histogram("matcher.match_latency_seconds",
		"stage dequeue to match done per traced publication", m.matchLatency, 1e-9)
	for i, ds := range m.dims {
		dim := telemetry.L("dim", strconv.Itoa(i))
		set := ds
		r.Gauge("matcher.stage.queue_depth", "stage backlog (messages)", func(int64) float64 {
			return float64(set.stage.EventLen())
		}, dim)
		r.Gauge("matcher.stage.arrival_rate", "stage arrival rate lambda (msg/s)", func(int64) float64 {
			return set.stage.ArrivalRate()
		}, dim)
		r.Gauge("matcher.stage.service_capacity", "stage service capacity mu (msg/s)", func(int64) float64 {
			return set.stage.ServiceCapacity()
		}, dim)
		r.Gauge("matcher.stage.subs", "subscriptions stored on this dimension", func(int64) float64 {
			return float64(set.subsCount())
		}, dim)
		r.Gauge("matcher.stage.indexed_subs", "stabbing-index entries on this dimension (covers only under covering)", func(int64) float64 {
			return float64(set.indexedCount())
		}, dim)
	}
	if m.jnl != nil {
		m.jnl.Register(r)
	}
	tr := m.cfg.Telemetry.Tracer
	r.Gauge("trace.completed", "traces recorded on this node", func(int64) float64 {
		return float64(tr.Total())
	})
	r.Counter("gossip.bytes", "gossip payload traffic", &m.gsp.Bytes)
}

// Telemetry returns the node's telemetry bundle (nil when disabled).
func (m *Matcher) Telemetry() *telemetry.Telemetry { return m.cfg.Telemetry }
