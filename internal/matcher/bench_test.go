package matcher

import (
	"fmt"
	"testing"
	"time"

	"bluedove/internal/core"
	"bluedove/internal/transport"
	"bluedove/internal/wire"
)

// nullTransport discards sends; it reports SendCopies so the matching hot
// path exercises its pooled-buffer branch, as it would over TCP.
type nullTransport struct{}

func (nullTransport) Listen(addr string, h transport.Handler) (string, error) {
	return addr, nil
}
func (nullTransport) Send(string, *wire.Envelope) error { return nil }
func (nullTransport) Request(string, *wire.Envelope, time.Duration) (*wire.Envelope, error) {
	return nil, fmt.Errorf("null transport")
}
func (nullTransport) Close() error     { return nil }
func (nullTransport) SendCopies() bool { return true }

// benchMatcher builds an unstarted matcher with subs stored subscriptions on
// dimension 0, each covering a distinct 10-wide band of subscriber space so a
// given message matches a handful of them.
func benchMatcher(b *testing.B, subs int) *Matcher {
	b.Helper()
	m, err := New(Config{
		ID: 1, Addr: "bench", Space: testSpace, Transport: nullTransport{},
	})
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < subs; i++ {
		lo := float64(i % 90)
		s := core.NewSubscription(core.SubscriberID(i+1),
			[]core.Range{{Low: lo, High: lo + 10}, {Low: 0, High: 100}})
		s.ID = core.SubscriptionID(i + 1)
		m.store(0, s, "sink")
		_ = s
	}
	return m
}

func benchMessages(n int) []*core.Message {
	msgs := make([]*core.Message, n)
	for i := range msgs {
		msgs[i] = core.NewMessage([]float64{float64(i % 100), 50}, []byte("payload"))
		msgs[i].ID = core.MessageID(i + 1)
	}
	return msgs
}

// BenchmarkMatchOne is the unbatched hot path: one stage item per message,
// one Deliver frame per matched subscriber.
func BenchmarkMatchOne(b *testing.B) {
	m := benchMatcher(b, 1000)
	ds := m.dims[0]
	msgs := benchMessages(256)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.matchOne(ds, 0, forwardItem{msg: msgs[i%len(msgs)]})
	}
}

// BenchmarkMatchBatch64 is the batched hot path: 64 messages per stage item,
// one lock acquisition and coalesced DeliverBatch frames. Reported per
// message for direct comparison with BenchmarkMatchOne.
func BenchmarkMatchBatch64(b *testing.B) {
	m := benchMatcher(b, 1000)
	ds := m.dims[0]
	msgs := benchMessages(256)
	const batch = 64
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i += batch {
		lo := i % (len(msgs) - batch)
		m.matchBatch(ds, 0, forwardItem{msgs: msgs[lo : lo+batch]})
	}
}
