package matcher

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"bluedove/internal/core"
	"bluedove/internal/index"
	"bluedove/internal/transport"
	"bluedove/internal/wire"
)

// mkBox builds a 2-dim subscription over testSpace with its own subscriber.
func mkBox(id core.SubscriptionID, lo0, hi0, lo1, hi1 float64) *core.Subscription {
	s := core.NewSubscription(core.SubscriberID(id), []core.Range{{Low: lo0, High: hi0}, {Low: lo1, High: hi1}})
	s.ID = id
	return s
}

// TestCoveringCoverRemovalReExposes: with covering on, a rider contained in
// a cover is not in the stabbing index — but unsubscribing the cover must
// re-expose it, with no lost deliveries.
func TestCoveringCoverRemovalReExposes(t *testing.T) {
	h := newHarnessMut(t, func(c *Config) { c.Covering = true })
	cover := mkBox(1, 0, 100, 0, 100)
	rider := mkBox(2, 10, 50, 10, 90)
	h.send(t, wire.KindStore, (&wire.StoreBody{Dim: 0, Sub: cover, DeliverAddr: "peer"}).Encode())
	h.send(t, wire.KindStore, (&wire.StoreBody{Dim: 0, Sub: rider, DeliverAddr: "peer"}).Encode())
	waitFor(t, func() bool { return h.m.SubsOnDim(0) == 2 })
	if got := h.m.IndexedOnDim(0); got != 1 {
		t.Fatalf("IndexedOnDim = %d, want 1 (rider collapsed under cover)", got)
	}

	h.send(t, wire.KindUnsubscribe, (&wire.UnsubscribeBody{ID: 1}).Encode())
	waitFor(t, func() bool { return h.m.SubsOnDim(0) == 1 })

	msg := core.NewMessage([]float64{20, 30}, nil)
	msg.ID = 7
	h.send(t, wire.KindForward, (&wire.ForwardBody{Dim: 0, Msg: msg}).Encode())
	waitFor(t, func() bool { return len(h.received(wire.KindDeliver)) == 1 })
	d, err := wire.DecodeDeliver(h.received(wire.KindDeliver)[0].Body)
	if err != nil {
		t.Fatal(err)
	}
	if d.Subscriber != 2 || len(d.SubIDs) != 1 || d.SubIDs[0] != 2 {
		t.Fatalf("re-exposed rider delivery: %+v", d)
	}
}

// TestCoveringHandoverIncludesRiders: segment handover must ship covered
// subscriptions along with their covers — a rider is still a stored
// subscription even though it is not in the stabbing index.
func TestCoveringHandoverIncludesRiders(t *testing.T) {
	h := newHarnessMut(t, func(c *Config) { c.Covering = true })
	h.send(t, wire.KindStore, (&wire.StoreBody{Dim: 0, Sub: mkBox(1, 60, 90, 0, 100), DeliverAddr: "a1"}).Encode())
	h.send(t, wire.KindStore, (&wire.StoreBody{Dim: 0, Sub: mkBox(2, 65, 85, 10, 90), DeliverAddr: "a2"}).Encode())
	h.send(t, wire.KindStore, (&wire.StoreBody{Dim: 0, Sub: mkBox(3, 0, 30, 0, 100), DeliverAddr: "a3"}).Encode())
	waitFor(t, func() bool { return h.m.SubsOnDim(0) == 3 })
	if got := h.m.IndexedOnDim(0); got != 2 {
		t.Fatalf("IndexedOnDim = %d, want 2", got)
	}
	h.send(t, wire.KindHandover, (&wire.HandoverBody{Dim: 0, Low: 50, High: 100, TargetAddr: "peer"}).Encode())
	waitFor(t, func() bool { return len(h.received(wire.KindTransferRange)) == 1 })
	tr, err := wire.DecodeTransferRange(h.received(wire.KindTransferRange)[0].Body)
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Subs) != 2 {
		t.Fatalf("transfer shipped %d subs, want cover+rider", len(tr.Subs))
	}
	addrs := map[core.SubscriptionID]string{}
	for i, s := range tr.Subs {
		addrs[s.ID] = tr.DeliverAddrs[i]
	}
	if addrs[1] != "a1" || addrs[2] != "a2" {
		t.Fatalf("transfer addrs: %v", addrs)
	}
}

// TestCoveringJournalReplay: the matcher journal stores raw mutations, so a
// restarted covering matcher must rebuild the same cover table — riders
// collapse again on replay, and removing the cover afterwards still
// re-exposes them.
func TestCoveringJournalReplay(t *testing.T) {
	dir := t.TempDir()
	mesh := newTestMesh(t)
	covering := func(c *Config) { c.Covering = true; c.SnapshotEvery = 3 }
	m := startDurable(t, mesh, dir, covering)

	ep := mesh.Endpoint("tester")
	st := func(s *core.Subscription) {
		body := (&wire.StoreBody{Dim: 0, Sub: s, DeliverAddr: "peer"}).Encode()
		if err := ep.Send("m1", &wire.Envelope{Kind: wire.KindStore, From: 99, Body: body}); err != nil {
			t.Fatal(err)
		}
	}
	st(mkBox(1, 0, 100, 0, 100))  // cover
	st(mkBox(2, 10, 50, 10, 90))  // rider
	st(mkBox(3, 20, 40, 20, 80))  // rider (one-level: attaches to 1, not 2)
	st(mkBox(4, 60, 90, 60, 90))  // rider
	waitFor(t, func() bool { return m.SubsOnDim(0) == 4 })
	if got := m.IndexedOnDim(0); got != 1 {
		t.Fatalf("IndexedOnDim = %d, want 1", got)
	}
	m.Stop()
	mesh.Unbind("m1")

	m2 := startDurable(t, mesh, dir, covering)
	defer m2.Stop()
	if got := m2.SubsOnDim(0); got != 4 {
		t.Fatalf("restart rebuilt %d subscriptions, want 4", got)
	}
	if got := m2.IndexedOnDim(0); got != 1 {
		t.Fatalf("restart rebuilt %d indexed entries, want 1 (cover table lost)", got)
	}
	// The rebuilt cover table still re-exposes on cover removal.
	if err := ep.Send("m1", &wire.Envelope{Kind: wire.KindUnsubscribe, From: 99,
		Body: (&wire.UnsubscribeBody{ID: 1}).Encode()}); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool { return m2.SubsOnDim(0) == 3 && m2.IndexedOnDim(0) >= 1 })
}

// TestMatchCorrectnessAllConfigs runs the same store-forward-deliver
// workload through every index kind × covering × shard-count combination
// and checks the delivered (subscriber, message, subscription) set against
// the brute-force oracle.
func TestMatchCorrectnessAllConfigs(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	var subs []*core.Subscription
	for i := 1; i <= 60; i++ {
		lo0, lo1 := rng.Float64()*80, rng.Float64()*80
		s := mkBox(core.SubscriptionID(i), lo0, lo0+rng.Float64()*30+1, lo1, lo1+rng.Float64()*30+1)
		if i%4 == 0 && i > 4 {
			// Shrink an earlier cuboid: guaranteed containment chains.
			p := subs[i-5].Predicates
			s = mkBox(core.SubscriptionID(i),
				p[0].Low+1, p[0].High-1, p[1].Low+1, p[1].High-1)
		}
		subs = append(subs, s)
	}
	var msgs []*core.Message
	for i := 0; i < 40; i++ {
		m := core.NewMessage([]float64{rng.Float64() * 100, rng.Float64() * 100}, nil)
		m.ID = core.MessageID(i + 1)
		msgs = append(msgs, m)
	}
	type pair struct {
		sub core.SubscriptionID
		msg core.MessageID
	}
	want := map[pair]bool{}
	for _, s := range subs {
		for _, m := range msgs {
			if s.Matches(m) {
				want[pair{s.ID, m.ID}] = true
			}
		}
	}

	for _, kind := range []index.Kind{index.KindScan, index.KindBucket, index.KindIntervalTree} {
		for _, cov := range []bool{false, true} {
			for _, shards := range []int{1, 3} {
				name := fmt.Sprintf("%s/covering=%v/shards=%d", kind, cov, shards)
				t.Run(name, func(t *testing.T) {
					h := newHarnessMut(t, func(c *Config) {
						c.IndexKind = kind
						c.IndexBuckets = 64
						c.Covering = cov
						c.MatchShards = shards
					})
					for _, s := range subs {
						h.send(t, wire.KindStore, (&wire.StoreBody{Dim: 0, Sub: s, DeliverAddr: "peer"}).Encode())
					}
					waitFor(t, func() bool { return h.m.SubsOnDim(0) == len(subs) })
					var entries []wire.ForwardEntry
					for _, m := range msgs {
						entries = append(entries, wire.ForwardEntry{Dim: 0, Msg: m})
					}
					h.send(t, wire.KindForwardBatch, (&wire.ForwardBatchBody{Entries: entries}).Encode())
					waitFor(t, func() bool { return h.m.Processed.Value() == int64(len(msgs)) })

					got := map[pair]bool{}
					for _, env := range h.received(wire.KindDeliverBatch) {
						b, err := wire.DecodeDeliverBatch(env.Body)
						if err != nil {
							t.Fatal(err)
						}
						for _, d := range b.Deliveries {
							for _, id := range d.SubIDs {
								p := pair{id, d.Msg.ID}
								if got[p] {
									t.Fatalf("duplicate delivery %+v", p)
								}
								got[p] = true
							}
						}
					}
					if len(got) != len(want) {
						t.Fatalf("delivered %d pairs, want %d", len(got), len(want))
					}
					for p := range want {
						if !got[p] {
							t.Fatalf("missing delivery %+v", p)
						}
					}
					if int64(len(want)) != h.m.Matched.Value() {
						t.Fatalf("Matched=%d, want %d", h.m.Matched.Value(), len(want))
					}
				})
			}
		}
	}
}

// TestParallelMatchStress hammers the sharded match path with concurrent
// subscription churn (Add/Remove through the shard write locks) while
// forwarded batches fan stab+verify work across the worker pool — the
// mutation-vs-read concurrency contract under -race.
func TestParallelMatchStress(t *testing.T) {
	h := newHarnessMut(t, func(c *Config) {
		c.Covering = true
		c.MatchShards = 4
	})
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			id := core.SubscriptionID(seed * 100000)
			for {
				select {
				case <-stop:
					return
				default:
				}
				id++
				lo0, lo1 := rng.Float64()*80, rng.Float64()*80
				h.m.store(0, mkBox(id, lo0, lo0+15, lo1, lo1+15), "peer")
				if rng.Intn(3) == 0 {
					h.m.unsubscribe(id - core.SubscriptionID(rng.Intn(20)))
				}
			}
		}(int64(w + 1))
	}
	rng := rand.New(rand.NewSource(9))
	var mid core.MessageID
	for round := 0; round < 40; round++ {
		var entries []wire.ForwardEntry
		for i := 0; i < 64; i++ {
			mid++
			m := core.NewMessage([]float64{rng.Float64() * 100, rng.Float64() * 100}, nil)
			m.ID = mid
			entries = append(entries, wire.ForwardEntry{Dim: 0, Msg: m})
		}
		h.send(t, wire.KindForwardBatch, (&wire.ForwardBatchBody{Entries: entries}).Encode())
	}
	waitFor(t, func() bool { return h.m.Processed.Value() == int64(mid) })
	close(stop)
	wg.Wait()
	if h.m.Dropped.Value() != 0 {
		t.Fatalf("stress dropped %d messages", h.m.Dropped.Value())
	}
}

// TestMatchBatchZeroAlloc pins the steady-state batched match path at zero
// allocations per message, on both the inline single-shard layout and the
// parallel multi-shard layout.
func TestMatchBatchZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates; alloc pin runs without -race")
	}
	for _, shards := range []int{1, 4} {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			m, err := New(Config{
				ID: 1, Addr: "bench", Space: testSpace, Transport: discardTransport{},
				MatchShards: shards,
			})
			if err != nil {
				t.Fatal(err)
			}
			defer func() {
				if m.pool != nil {
					m.pool.stop()
				}
			}()
			rng := rand.New(rand.NewSource(5))
			for i := 1; i <= 400; i++ {
				lo0, lo1 := rng.Float64()*70, rng.Float64()*70
				m.store(0, mkBox(core.SubscriptionID(i), lo0, lo0+25, lo1, lo1+25), "sink")
			}
			batch := make([]*core.Message, 64)
			for i := range batch {
				msg := core.NewMessage([]float64{rng.Float64() * 100, rng.Float64() * 100}, nil)
				msg.ID = core.MessageID(i + 1)
				batch[i] = msg
			}
			ds := m.dims[0]
			run := func() { m.matchBatch(ds, 0, forwardItem{msgs: batch}) }
			for i := 0; i < 5; i++ {
				run() // warm the pooled scratch, shard jobs and encode buffers
			}
			allocs := testing.AllocsPerRun(50, run)
			perMsg := allocs / float64(len(batch))
			if perMsg != 0 {
				t.Errorf("%.4f allocs/msg on the batched match path, want 0", perMsg)
			}
		})
	}
}

// newTestMesh builds a mesh closed at cleanup.
func newTestMesh(t *testing.T) *transport.Mesh {
	t.Helper()
	m := transport.NewMesh(0)
	t.Cleanup(func() { m.Close() })
	return m
}
