// Package tenant implements the paper's Section VI multi-application
// direction: "One possibility is to divide dispatchers and matchers into
// different subsets and let them handle different applications." A Manager
// hosts several isolated BlueDove deployments — one per application/tenant,
// each with its own attribute space, dispatcher and matcher subset — behind
// a single administrative façade. Tenants scale, fail and recover
// independently: one application's hot spot or crash never touches
// another's matchers.
package tenant

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"bluedove/internal/cluster"
	"bluedove/internal/core"
)

// ErrUnknownTenant is returned for operations on tenants that do not exist.
var ErrUnknownTenant = errors.New("tenant: unknown tenant")

// Options configures a Manager.
type Options struct {
	// Defaults seeds every tenant's cluster options; per-tenant Create
	// calls override Space, Matchers and Dispatchers. Space may be nil
	// here (it is required per tenant).
	Defaults cluster.Options
}

// Spec describes one tenant deployment.
type Spec struct {
	// Name identifies the tenant; required and unique.
	Name string
	// Space is the tenant's attribute space; required.
	Space *core.Space
	// Matchers and Dispatchers size the tenant's server subset (0 uses the
	// manager defaults).
	Matchers, Dispatchers int
}

// Manager hosts independent per-tenant clusters.
type Manager struct {
	opts Options
	mu   sync.Mutex
	tens map[string]*cluster.Cluster
}

// NewManager builds an empty manager.
func NewManager(opts Options) *Manager {
	return &Manager{opts: opts, tens: make(map[string]*cluster.Cluster)}
}

// Create boots a new tenant deployment.
func (m *Manager) Create(spec Spec) (*cluster.Cluster, error) {
	if spec.Name == "" || spec.Space == nil {
		return nil, errors.New("tenant: Name and Space are required")
	}
	m.mu.Lock()
	if _, dup := m.tens[spec.Name]; dup {
		m.mu.Unlock()
		return nil, fmt.Errorf("tenant: %q already exists", spec.Name)
	}
	m.mu.Unlock()

	opts := m.opts.Defaults
	opts.Space = spec.Space
	if spec.Matchers > 0 {
		opts.Matchers = spec.Matchers
	}
	if spec.Dispatchers > 0 {
		opts.Dispatchers = spec.Dispatchers
	}
	c, err := cluster.Start(opts)
	if err != nil {
		return nil, fmt.Errorf("tenant %q: %w", spec.Name, err)
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, dup := m.tens[spec.Name]; dup {
		m.mu.Unlock()
		c.Close()
		m.mu.Lock()
		return nil, fmt.Errorf("tenant: %q already exists", spec.Name)
	}
	m.tens[spec.Name] = c
	return c, nil
}

// Get returns a tenant's cluster.
func (m *Manager) Get(name string) (*cluster.Cluster, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	c, ok := m.tens[name]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownTenant, name)
	}
	return c, nil
}

// Drop stops and removes a tenant deployment.
func (m *Manager) Drop(name string) error {
	m.mu.Lock()
	c, ok := m.tens[name]
	delete(m.tens, name)
	m.mu.Unlock()
	if !ok {
		return fmt.Errorf("%w: %q", ErrUnknownTenant, name)
	}
	c.Close()
	return nil
}

// Tenants lists tenant names, sorted.
func (m *Manager) Tenants() []string {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]string, 0, len(m.tens))
	for name := range m.tens {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Close stops every tenant.
func (m *Manager) Close() {
	m.mu.Lock()
	tens := m.tens
	m.tens = make(map[string]*cluster.Cluster)
	m.mu.Unlock()
	for _, c := range tens {
		c.Close()
	}
}
