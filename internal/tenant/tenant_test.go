package tenant

import (
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"bluedove/internal/cluster"
	"bluedove/internal/core"
)

func fastDefaults() Options {
	return Options{Defaults: cluster.Options{
		Matchers:       3,
		Dispatchers:    1,
		GossipInterval: 50 * time.Millisecond,
		FailAfter:      500 * time.Millisecond,
		ReportInterval: 50 * time.Millisecond,
		RecoveryDelay:  200 * time.Millisecond,
		PruneGrace:     300 * time.Millisecond,
	}}
}

func TestCreateGetDrop(t *testing.T) {
	m := NewManager(fastDefaults())
	defer m.Close()
	c, err := m.Create(Spec{Name: "traffic", Space: core.UniformSpace(4, 1000)})
	if err != nil {
		t.Fatal(err)
	}
	if got, err := m.Get("traffic"); err != nil || got != c {
		t.Fatalf("Get: %v %v", got, err)
	}
	if _, err := m.Get("nope"); !errors.Is(err, ErrUnknownTenant) {
		t.Fatalf("Get unknown: %v", err)
	}
	if _, err := m.Create(Spec{Name: "traffic", Space: core.UniformSpace(2, 10)}); err == nil {
		t.Error("duplicate tenant accepted")
	}
	if _, err := m.Create(Spec{}); err == nil {
		t.Error("empty spec accepted")
	}
	if err := m.Drop("traffic"); err != nil {
		t.Fatal(err)
	}
	if err := m.Drop("traffic"); !errors.Is(err, ErrUnknownTenant) {
		t.Fatalf("double drop: %v", err)
	}
}

func TestTenantsAreIsolated(t *testing.T) {
	m := NewManager(fastDefaults())
	defer m.Close()

	// Two applications with different attribute spaces and sizes.
	traffic, err := m.Create(Spec{Name: "traffic", Space: core.UniformSpace(4, 1000), Matchers: 4})
	if err != nil {
		t.Fatal(err)
	}
	stocks, err := m.Create(Spec{Name: "stocks", Space: core.UniformSpace(2, 100), Matchers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if got := m.Tenants(); len(got) != 2 || got[0] != "stocks" || got[1] != "traffic" {
		t.Fatalf("Tenants = %v", got)
	}
	for _, c := range []*cluster.Cluster{traffic, stocks} {
		if err := c.WaitForTable(1, 5*time.Second); err != nil {
			t.Fatal(err)
		}
	}
	if traffic.Table().N() != 4 || stocks.Table().N() != 2 {
		t.Fatalf("sizes: %d %d", traffic.Table().N(), stocks.Table().N())
	}

	// Subscribe in both tenants; publications only reach their own tenant.
	var trafficHits, stockHits atomic.Int64
	tc, err := traffic.NewClient(0, func(*core.Message, []core.SubscriptionID) { trafficHits.Add(1) })
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tc.Subscribe([]core.Range{
		{Low: 0, High: 1000}, {Low: 0, High: 1000}, {Low: 0, High: 1000}, {Low: 0, High: 1000},
	}); err != nil {
		t.Fatal(err)
	}
	sc, err := stocks.NewClient(0, func(*core.Message, []core.SubscriptionID) { stockHits.Add(1) })
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sc.Subscribe([]core.Range{{Low: 0, High: 100}, {Low: 0, High: 100}}); err != nil {
		t.Fatal(err)
	}
	time.Sleep(300 * time.Millisecond)

	if err := tc.Publish([]float64{1, 2, 3, 4}, nil); err != nil {
		t.Fatal(err)
	}
	if err := sc.Publish([]float64{50, 50}, nil); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) && (trafficHits.Load() == 0 || stockHits.Load() == 0) {
		time.Sleep(10 * time.Millisecond)
	}
	if trafficHits.Load() != 1 || stockHits.Load() != 1 {
		t.Fatalf("hits: traffic=%d stocks=%d", trafficHits.Load(), stockHits.Load())
	}

	// Crashing a matcher in one tenant never touches the other.
	if err := traffic.CrashMatcher(traffic.MatcherIDs()[0]); err != nil {
		t.Fatal(err)
	}
	deadline = time.Now().Add(8 * time.Second)
	for time.Now().Before(deadline) {
		if tab := traffic.Table(); tab != nil && tab.N() == 3 {
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	if stocks.Table().N() != 2 {
		t.Fatal("crash in one tenant changed another tenant's table")
	}
	if err := sc.Publish([]float64{10, 10}, nil); err != nil {
		t.Fatal(err)
	}
	deadline = time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) && stockHits.Load() < 2 {
		time.Sleep(10 * time.Millisecond)
	}
	if stockHits.Load() != 2 {
		t.Fatal("other tenant disrupted by the crash")
	}
}

func TestManagerClose(t *testing.T) {
	m := NewManager(fastDefaults())
	if _, err := m.Create(Spec{Name: "a", Space: core.UniformSpace(2, 10)}); err != nil {
		t.Fatal(err)
	}
	m.Close()
	if len(m.Tenants()) != 0 {
		t.Error("tenants survive Close")
	}
	// Close is idempotent and the manager reusable.
	m.Close()
	if _, err := m.Create(Spec{Name: "b", Space: core.UniformSpace(2, 10)}); err != nil {
		t.Fatal(err)
	}
	m.Close()
}
