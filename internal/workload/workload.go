// Package workload generates the synthetic subscription and publication
// workloads used throughout the paper's evaluation (Section IV-B):
//
//   - Subscriptions are conjunctions of range predicates whose centers
//     follow a cropped normal distribution per dimension (σ=250 of a range
//     of 1000 in the default setup), with hot spots placed evenly along the
//     range so different dimensions have different hot-spot positions.
//   - Predicate ranges default to length 250.
//   - Publication attribute values are uniform per dimension, or — for the
//     adverse-skew study (Figure 11c) — follow the same cropped normal as
//     the subscriptions on a configurable number of dimensions.
//
// Generators are deterministic given a seed.
package workload

import (
	"fmt"
	"math/rand"

	"bluedove/internal/core"
)

// Config parameterizes a Generator. The zero value is not valid; use
// Default for the paper's setup.
type Config struct {
	// Space is the attribute space; required.
	Space *core.Space
	// SubStdDev is the standard deviation of the cropped normal
	// distribution of predicate-range centers, in attribute units. The
	// paper's default is 250 (of a dimension extent of 1000); larger values
	// flatten the skew (Figure 11b).
	SubStdDev float64
	// PredLen is the length of each range predicate (250 in the paper).
	PredLen float64
	// HotspotFrac[i] places the hot spot (normal mean) of dimension i at
	// Min + frac*Extent. If empty, hot spots are spread evenly:
	// frac_i = (2i+1)/(2k) ("distributed evenly along the full range").
	HotspotFrac []float64
	// SkewedMsgDims is the number of leading dimensions on which message
	// values follow the same cropped normal as subscriptions instead of the
	// uniform distribution (Figure 11c's "adverse" skew).
	SkewedMsgDims int
	// UnusedDims is the number of trailing dimensions applications never
	// constrain: subscriptions carry full-range predicates there (the
	// "rarely used attributes" of the paper's Section VI future work).
	UnusedDims int
	// Seed makes the generator deterministic.
	Seed int64
}

// Default returns the paper's evaluation configuration over the given space:
// σ=250 scaled to the dimension extent, predicate length 250 (scaled),
// uniform messages.
func Default(space *core.Space) Config {
	return Config{
		Space:     space,
		SubStdDev: 250.0 / 1000.0 * space.Dim(0).Extent(),
		PredLen:   250.0 / 1000.0 * space.Dim(0).Extent(),
		Seed:      1,
	}
}

// Generator produces subscriptions and messages. It is not safe for
// concurrent use; create one per goroutine (cheap) with distinct seeds.
type Generator struct {
	cfg     Config
	rng     *rand.Rand
	centers []float64 // hot-spot center per dimension
	nextSub core.SubscriptionID
	nextMsg core.MessageID
}

// New creates a Generator. It panics if the config lacks a space or has
// non-positive predicate length or stddev.
func New(cfg Config) *Generator {
	if cfg.Space == nil {
		panic("workload: Config.Space is required")
	}
	if cfg.PredLen <= 0 {
		panic("workload: Config.PredLen must be positive")
	}
	if cfg.SubStdDev <= 0 {
		panic("workload: Config.SubStdDev must be positive")
	}
	k := cfg.Space.K()
	if len(cfg.HotspotFrac) != 0 && len(cfg.HotspotFrac) != k {
		panic(fmt.Sprintf("workload: HotspotFrac has %d entries, space has %d dims", len(cfg.HotspotFrac), k))
	}
	g := &Generator{
		cfg:     cfg,
		rng:     rand.New(rand.NewSource(cfg.Seed)),
		centers: make([]float64, k),
		nextSub: 1,
		nextMsg: 1,
	}
	for i := 0; i < k; i++ {
		d := cfg.Space.Dim(i)
		frac := (2*float64(i) + 1) / (2 * float64(k))
		if len(cfg.HotspotFrac) == k {
			frac = cfg.HotspotFrac[i]
		}
		g.centers[i] = d.Min + frac*d.Extent()
	}
	return g
}

// Space returns the generator's attribute space.
func (g *Generator) Space() *core.Space { return g.cfg.Space }

// croppedNormal samples a normal(center, σ) value truncated (by resampling,
// then clamping) to [min, max).
func (g *Generator) croppedNormal(center, sigma, min, max float64) float64 {
	for i := 0; i < 16; i++ {
		v := center + g.rng.NormFloat64()*sigma
		if v >= min && v < max {
			return v
		}
	}
	// Extremely unlikely unless σ vastly exceeds the range; clamp.
	d := core.Dimension{Name: "x", Min: min, Max: max}
	return d.Clamp(center + g.rng.NormFloat64()*sigma)
}

// Subscription generates one subscription: per dimension, a predicate of
// length PredLen whose center is drawn from the cropped normal around the
// dimension's hot spot. Predicates are shifted to stay within the dimension.
func (g *Generator) Subscription() *core.Subscription {
	k := g.cfg.Space.K()
	preds := make([]core.Range, k)
	for i := 0; i < k; i++ {
		d := g.cfg.Space.Dim(i)
		if i >= k-g.cfg.UnusedDims {
			// Unconstrained attribute: match anything.
			preds[i] = core.Range{Low: d.Min, High: d.Max}
			continue
		}
		length := g.cfg.PredLen
		if length > d.Extent() {
			length = d.Extent()
		}
		// The center is truncated to the feasible band so the whole
		// predicate fits inside the dimension without piling probability
		// mass onto the edges.
		loBand, hiBand := d.Min+length/2, d.Max-length/2
		var center float64
		if loBand >= hiBand {
			center = (d.Min + d.Max) / 2
		} else {
			center = g.croppedNormal(g.centers[i], g.cfg.SubStdDev, loBand, hiBand)
		}
		lo := center - length/2
		if lo < d.Min {
			lo = d.Min
		}
		if lo+length > d.Max {
			lo = d.Max - length
		}
		preds[i] = core.Range{Low: lo, High: lo + length}
	}
	s := core.NewSubscription(core.SubscriberID(g.nextSub), preds)
	s.ID = g.nextSub
	g.nextSub++
	return s
}

// Subscriptions generates n subscriptions.
func (g *Generator) Subscriptions(n int) []*core.Subscription {
	out := make([]*core.Subscription, n)
	for i := range out {
		out[i] = g.Subscription()
	}
	return out
}

// Message generates one publication. Values are uniform per dimension except
// on the first SkewedMsgDims dimensions, where they follow the subscription
// hot-spot distribution (adverse skew).
func (g *Generator) Message() *core.Message {
	k := g.cfg.Space.K()
	attrs := make([]float64, k)
	for i := 0; i < k; i++ {
		d := g.cfg.Space.Dim(i)
		if i < g.cfg.SkewedMsgDims {
			attrs[i] = g.croppedNormal(g.centers[i], g.cfg.SubStdDev, d.Min, d.Max)
		} else {
			attrs[i] = d.Min + g.rng.Float64()*d.Extent()
		}
	}
	m := core.NewMessage(attrs, nil)
	m.ID = g.nextMsg
	g.nextMsg++
	return m
}

// Messages generates n publications.
func (g *Generator) Messages(n int) []*core.Message {
	out := make([]*core.Message, n)
	for i := range out {
		out[i] = g.Message()
	}
	return out
}
