package workload

import (
	"math"
	"testing"
	"time"

	"bluedove/internal/core"
)

func TestDefaultConfig(t *testing.T) {
	sp := core.UniformSpace(4, 1000)
	cfg := Default(sp)
	if cfg.SubStdDev != 250 || cfg.PredLen != 250 {
		t.Errorf("Default = %+v, want σ=250 len=250", cfg)
	}
	// Scaled spaces scale the parameters.
	sp2 := core.UniformSpace(2, 100)
	cfg2 := Default(sp2)
	if cfg2.SubStdDev != 25 || cfg2.PredLen != 25 {
		t.Errorf("scaled Default = %+v", cfg2)
	}
}

func TestNewPanics(t *testing.T) {
	sp := core.UniformSpace(2, 1000)
	cases := []Config{
		{},
		{Space: sp, SubStdDev: 250}, // no PredLen
		{Space: sp, PredLen: 250},   // no SubStdDev
		{Space: sp, SubStdDev: 1, PredLen: 1, HotspotFrac: []float64{0.5}}, // wrong len
	}
	for i, cfg := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: expected panic", i)
				}
			}()
			New(cfg)
		}()
	}
}

func TestSubscriptionsValidAndSized(t *testing.T) {
	sp := core.UniformSpace(4, 1000)
	g := New(Default(sp))
	subs := g.Subscriptions(2000)
	if len(subs) != 2000 {
		t.Fatal("count")
	}
	seen := map[core.SubscriptionID]bool{}
	for _, s := range subs {
		if err := s.Validate(sp); err != nil {
			t.Fatalf("invalid subscription: %v", err)
		}
		for i, p := range s.Predicates {
			if math.Abs(p.Length()-250) > 1e-9 {
				t.Fatalf("predicate %d length %g, want 250", i, p.Length())
			}
			if p.Low < 0 || p.High > 1000 {
				t.Fatalf("predicate outside dimension: %v", p)
			}
		}
		if seen[s.ID] {
			t.Fatal("duplicate subscription ID")
		}
		seen[s.ID] = true
	}
}

func TestMessagesValid(t *testing.T) {
	sp := core.UniformSpace(3, 1000)
	g := New(Default(sp))
	for _, m := range g.Messages(2000) {
		if err := m.Validate(sp); err != nil {
			t.Fatalf("invalid message: %v", err)
		}
	}
}

func TestDeterminism(t *testing.T) {
	sp := core.UniformSpace(4, 1000)
	g1 := New(Default(sp))
	g2 := New(Default(sp))
	for i := 0; i < 100; i++ {
		a, b := g1.Subscription(), g2.Subscription()
		for d := range a.Predicates {
			if a.Predicates[d] != b.Predicates[d] {
				t.Fatal("same seed produced different subscriptions")
			}
		}
		ma, mb := g1.Message(), g2.Message()
		for d := range ma.Attrs {
			if ma.Attrs[d] != mb.Attrs[d] {
				t.Fatal("same seed produced different messages")
			}
		}
	}
	cfg := Default(sp)
	cfg.Seed = 99
	g3 := New(cfg)
	diff := false
	for i := 0; i < 20 && !diff; i++ {
		if g3.Subscription().Predicates[0] != New(Default(sp)).Subscription().Predicates[0] {
			diff = true
		}
	}
	if !diff {
		t.Error("different seeds produced identical output")
	}
}

// The paper reports that at σ=250 the hot-spot density is ~2.7x the average
// density. Verify strong skew at σ=250 and near-flat at σ=1000 (Fig 11b:
// highest/average ≈ 1.17 at σ=1000).
func TestSkewConcentration(t *testing.T) {
	sp := core.UniformSpace(1, 1000)
	ratio := func(sigma float64) float64 {
		cfg := Default(sp)
		cfg.SubStdDev = sigma
		cfg.Seed = 5
		g := New(cfg)
		buckets := make([]int, 20)
		n := 20000
		for i := 0; i < n; i++ {
			s := g.Subscription()
			center := (s.Predicates[0].Low + s.Predicates[0].High) / 2
			b := int(center / 50)
			if b > 19 {
				b = 19
			}
			buckets[b]++
		}
		max := 0
		for _, c := range buckets {
			if c > max {
				max = c
			}
		}
		return float64(max) / (float64(n) / 20)
	}
	r250 := ratio(250)
	r1000 := ratio(1000)
	if r250 < 1.6 {
		t.Errorf("σ=250 peak/avg = %.2f, want strong skew (>1.6)", r250)
	}
	if r1000 > 1.55 {
		t.Errorf("σ=1000 peak/avg = %.2f, want near flat (<1.55)", r1000)
	}
	if r1000 >= r250 {
		t.Errorf("skew should decrease with σ: %.2f vs %.2f", r250, r1000)
	}
}

func TestHotspotsSpreadAcrossDims(t *testing.T) {
	sp := core.UniformSpace(4, 1000)
	g := New(Default(sp))
	n := 20000
	const bw = 50.0
	hist := make([][]int, 4)
	for d := range hist {
		hist[d] = make([]int, 20)
	}
	for i := 0; i < n; i++ {
		s := g.Subscription()
		for d, p := range s.Predicates {
			b := int(((p.Low + p.High) / 2) / bw)
			if b > 19 {
				b = 19
			}
			hist[d][b]++
		}
	}
	// Expected hot spots at 125, 375, 625, 875: the histogram mode per
	// dimension must be near its own hot spot (truncation shifts the mean
	// but not the mode).
	want := []float64{125, 375, 625, 875}
	for d := range hist {
		mode, best := 0, -1
		for b, c := range hist[d] {
			if c > best {
				best, mode = c, b
			}
		}
		modeCenter := float64(mode)*bw + bw/2
		if math.Abs(modeCenter-want[d]) > 100 {
			t.Errorf("dim %d mode = %g, want ~%g", d, modeCenter, want[d])
		}
	}
}

func TestCustomHotspots(t *testing.T) {
	sp := core.UniformSpace(2, 1000)
	cfg := Default(sp)
	cfg.HotspotFrac = []float64{0.1, 0.9}
	cfg.SubStdDev = 50
	g := New(cfg)
	var s0, s1 float64
	n := 3000
	for i := 0; i < n; i++ {
		s := g.Subscription()
		s0 += (s.Predicates[0].Low + s.Predicates[0].High) / 2
		s1 += (s.Predicates[1].Low + s.Predicates[1].High) / 2
	}
	if m := s0 / float64(n); math.Abs(m-125) > 60 { // center 100, clipped predicates push up slightly
		t.Errorf("dim0 mean = %g, want near 100-150", m)
	}
	if m := s1 / float64(n); math.Abs(m-875) > 60 {
		t.Errorf("dim1 mean = %g, want near 850-900", m)
	}
}

func TestSkewedMessageDims(t *testing.T) {
	sp := core.UniformSpace(4, 1000)
	cfg := Default(sp)
	cfg.SkewedMsgDims = 2
	g := New(cfg)
	n := 10000
	var inHot [4]int
	for i := 0; i < n; i++ {
		m := g.Message()
		// Hot spot of dim d is at (2d+1)/8*1000 ± σ.
		for d := 0; d < 4; d++ {
			center := (2*float64(d) + 1) / 8 * 1000
			if math.Abs(m.Attrs[d]-center) < 250 {
				inHot[d]++
			}
		}
	}
	// Skewed dims should concentrate near the hot spot far more than uniform
	// dims (uniform puts ~50% within ±250 of any center).
	for d := 0; d < 2; d++ {
		if frac := float64(inHot[d]) / float64(n); frac < 0.62 {
			t.Errorf("skewed dim %d concentration = %.2f, want > 0.62", d, frac)
		}
	}
	for d := 2; d < 4; d++ {
		if frac := float64(inHot[d]) / float64(n); frac > 0.58 {
			t.Errorf("uniform dim %d concentration = %.2f, want ~0.5", d, frac)
		}
	}
}

func TestPredLenWiderThanDimension(t *testing.T) {
	sp := core.MustSpace(core.Dimension{Name: "tiny", Min: 0, Max: 10})
	cfg := Config{Space: sp, SubStdDev: 5, PredLen: 100, Seed: 1}
	g := New(cfg)
	s := g.Subscription()
	if s.Predicates[0].Low != 0 || s.Predicates[0].High != 10 {
		t.Errorf("oversized predicate should cover dimension: %v", s.Predicates[0])
	}
	if err := s.Validate(sp); err != nil {
		t.Fatal(err)
	}
}

func TestConstantRate(t *testing.T) {
	if ConstantRate(500).RateAt(12345) != 500 {
		t.Error("ConstantRate")
	}
}

func TestStepRamp(t *testing.T) {
	s := StepRamp{Initial: 500, Increment: 500, Interval: 5 * time.Minute}
	if got := s.RateAt(0); got != 500 {
		t.Errorf("t=0: %g", got)
	}
	if got := s.RateAt(int64(4 * time.Minute)); got != 500 {
		t.Errorf("t=4m: %g", got)
	}
	if got := s.RateAt(int64(5 * time.Minute)); got != 1000 {
		t.Errorf("t=5m: %g", got)
	}
	if got := s.RateAt(int64(26 * time.Minute)); got != 3000 {
		t.Errorf("t=26m: %g", got)
	}
	if got := s.RateAt(-5); got != 500 {
		t.Errorf("t<0: %g", got)
	}
	if got := (StepRamp{Initial: 7}).RateAt(100); got != 7 {
		t.Errorf("zero interval: %g", got)
	}
}

func TestSteps(t *testing.T) {
	s := Steps{{From: 10, Rate: 100}, {From: 20, Rate: 200}}
	cases := []struct {
		t    int64
		want float64
	}{{0, 0}, {9, 0}, {10, 100}, {15, 100}, {20, 200}, {1000, 200}}
	for _, tc := range cases {
		if got := s.RateAt(tc.t); got != tc.want {
			t.Errorf("RateAt(%d) = %g, want %g", tc.t, got, tc.want)
		}
	}
	if (Steps{}).RateAt(5) != 0 {
		t.Error("empty Steps")
	}
}

func TestUnusedDims(t *testing.T) {
	sp := core.UniformSpace(4, 1000)
	cfg := Default(sp)
	cfg.UnusedDims = 2
	g := New(cfg)
	for _, s := range g.Subscriptions(200) {
		for d := 0; d < 2; d++ {
			if math.Abs(s.Predicates[d].Length()-250) > 1e-9 {
				t.Fatalf("used dim %d width %g", d, s.Predicates[d].Length())
			}
		}
		for d := 2; d < 4; d++ {
			if s.Predicates[d].Low != 0 || s.Predicates[d].High != 1000 {
				t.Fatalf("unused dim %d predicate %v, want full range", d, s.Predicates[d])
			}
		}
		if err := s.Validate(sp); err != nil {
			t.Fatal(err)
		}
	}
}
