package workload

import (
	"sort"
	"time"
)

// Schedule gives a target publication rate (messages/second) as a function
// of time. Schedules drive the simulator's open-loop workload generators.
type Schedule interface {
	// RateAt returns the messages/second rate at time t (nanoseconds).
	RateAt(t int64) float64
}

// ConstantRate publishes at a fixed rate forever.
type ConstantRate float64

// RateAt implements Schedule.
func (r ConstantRate) RateAt(int64) float64 { return float64(r) }

// StepRamp increases the rate by Increment every Interval, starting from
// Initial — the paper's elasticity workload ("increase the message rate by
// 500 messages/second every five minutes").
type StepRamp struct {
	// Initial is the rate during the first interval.
	Initial float64
	// Increment is added at each interval boundary.
	Increment float64
	// Interval is the step duration.
	Interval time.Duration
}

// RateAt implements Schedule.
func (s StepRamp) RateAt(t int64) float64 {
	if t < 0 || s.Interval <= 0 {
		return s.Initial
	}
	steps := t / int64(s.Interval)
	return s.Initial + float64(steps)*s.Increment
}

// Step is one (from-time, rate) pair of a Steps schedule.
type Step struct {
	// From is the time (ns) at which Rate takes effect.
	From int64
	// Rate is messages/second.
	Rate float64
}

// Steps is a piecewise-constant schedule defined by explicit breakpoints.
// Before the first breakpoint the rate is 0.
type Steps []Step

// RateAt implements Schedule.
func (s Steps) RateAt(t int64) float64 {
	// Last step with From <= t.
	i := sort.Search(len(s), func(i int) bool { return s[i].From > t }) - 1
	if i < 0 {
		return 0
	}
	return s[i].Rate
}
