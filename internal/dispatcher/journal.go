package dispatcher

import (
	"encoding/binary"
	"fmt"

	"bluedove/internal/core"
	"bluedove/internal/store"
	"bluedove/internal/wire"
)

// Journal record kinds. The registry records reuse the wire codec bodies;
// removals and acks are bare 8-byte little-endian IDs. Snapshot payloads are
// record streams (store.AppendRecord framing) restored through the same
// applyRecord as the WAL tail.
const (
	recRegAdd    uint8 = 1 // wire.SubscribeBody: registered subscription + deliver addr
	recRegRemove uint8 = 2 // uint64 LE subscription ID
	recPending   uint8 = 3 // wire.PublishBody: accepted publication awaiting a matcher ack
	recAck       uint8 = 4 // uint64 LE message ID: pending forward acknowledged
	recCounters  uint8 = 5 // uint64 LE nextSub | uint64 LE nextMsg (snapshot only)
)

// openJournal opens (and recovers) the dispatcher's durable state when
// Config.DataDir is set: the subscription registry, the pending-forward
// table (Persistent mode), and the ID counters. Called from Start before
// the listener binds, so replay never races live traffic. Recovered pending
// forwards carry a zero deadline — the retransmit loop re-forwards them on
// its first tick. The registry is re-installed on matchers by the normal
// reconcile pass when the segment table is (re)adopted.
func (d *Dispatcher) openJournal() error {
	if d.cfg.DataDir == "" {
		return nil
	}
	s, err := store.Open(store.Options{
		Dir:           d.cfg.DataDir,
		Fsync:         d.cfg.Fsync,
		SnapshotEvery: d.cfg.SnapshotEvery,
		Restore:       func(p []byte) error { return store.WalkRecords(p, d.applyRecord) },
		Apply:         d.applyRecord,
		FS:            d.cfg.FS,
		Policy:        d.cfg.FailPolicy,
		OnHealth: func(h store.Health, cause error) {
			if h == store.Failed && d.cfg.OnStoreFailure != nil {
				d.cfg.OnStoreFailure(cause)
			}
		},
	})
	if err != nil {
		return fmt.Errorf("dispatcher: journal: %w", err)
	}
	d.jnl = s
	return nil
}

// applyRecord is the recovery apply function (runs single-threaded, before
// the listener binds — no locking needed). ID-counter recovery: the
// snapshot carries the exact counters, and every add/pending record since
// bumps the watermark from its ID's low 40 bits, so a restarted dispatcher
// never re-issues an ID — which matters for client-side duplicate
// suppression, keyed on message ID.
func (d *Dispatcher) applyRecord(kind uint8, payload []byte) error {
	const idMask = 1<<40 - 1
	switch kind {
	case recRegAdd:
		if b, err := wire.DecodeSubscribe(payload); err == nil && b.Sub != nil {
			d.registry[b.Sub.ID] = regEntry{sub: b.Sub, addr: b.DeliverAddr}
			if low := uint64(b.Sub.ID) & idMask; low > d.nextSub {
				d.nextSub = low
			}
		}
	case recRegRemove:
		if len(payload) == 8 {
			delete(d.registry, core.SubscriptionID(binary.LittleEndian.Uint64(payload)))
		}
	case recPending:
		if b, err := wire.DecodePublish(payload); err == nil && b.Msg != nil {
			if low := uint64(b.Msg.ID) & idMask; low > d.nextMsg {
				d.nextMsg = low
			}
			if len(d.inflight) < d.cfg.MaxInflight {
				d.inflight[b.Msg.ID] = &inflightMsg{msg: b.Msg, tried: map[core.NodeID]bool{}}
			}
		}
	case recAck:
		if len(payload) == 8 {
			delete(d.inflight, core.MessageID(binary.LittleEndian.Uint64(payload)))
		}
	case recCounters:
		if len(payload) == 16 {
			if v := binary.LittleEndian.Uint64(payload[0:8]); v > d.nextSub {
				d.nextSub = v
			}
			if v := binary.LittleEndian.Uint64(payload[8:16]); v > d.nextMsg {
				d.nextMsg = v
			}
		}
	}
	return nil
}

// journal appends one mutation and folds the journal into a snapshot when
// due. Nil journal: no-op. Append errors degrade durability, not service —
// but never silently: every failure counts into dispatcher.journal_errors
// and flips the store.health gauge, and the health machine handles the
// segment itself (repair, degrade, or fail). Must not be called with d.mu
// held (the snapshot pass takes it).
func (d *Dispatcher) journal(kind uint8, payload []byte) {
	if d.jnl == nil {
		return
	}
	if err := d.jnl.Append(kind, payload); err != nil {
		d.JournalErrors.Add(1)
	}
	if d.jnl.SnapshotDue() {
		d.snapshotJournal()
	}
}

// journalID appends an 8-byte ID record (removal or ack).
func (d *Dispatcher) journalID(kind uint8, id uint64) {
	if d.jnl == nil {
		return
	}
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], id)
	d.journal(kind, buf[:])
}

// snapshotJournal serializes the counters, the registry and the pending
// table as one record stream and folds the WAL into it.
func (d *Dispatcher) snapshotJournal() {
	d.mu.Lock()
	var payload []byte
	var cbuf [16]byte
	binary.LittleEndian.PutUint64(cbuf[0:8], d.nextSub)
	binary.LittleEndian.PutUint64(cbuf[8:16], d.nextMsg)
	payload = store.AppendRecord(payload, recCounters, cbuf[:])
	for _, e := range d.registry {
		body := (&wire.SubscribeBody{Sub: e.sub, DeliverAddr: e.addr}).Encode()
		payload = store.AppendRecord(payload, recRegAdd, body)
	}
	for _, inf := range d.inflight {
		body := (&wire.PublishBody{Msg: inf.msg}).Encode()
		payload = store.AppendRecord(payload, recPending, body)
	}
	d.mu.Unlock()
	if err := d.jnl.Snapshot(payload); err != nil {
		d.JournalErrors.Add(1)
	}
}

// StoreHealth is the journal's durability state (Healthy on in-memory
// nodes: there is no durability guarantee to lose).
func (d *Dispatcher) StoreHealth() store.Health {
	if d.jnl == nil {
		return store.Healthy
	}
	return d.jnl.Health()
}

// closeJournal syncs and closes the journal at Stop.
func (d *Dispatcher) closeJournal() {
	if d.jnl != nil {
		_ = d.jnl.Close()
	}
}

// Journal exposes the durable store (nil on in-memory nodes), for tests and
// tooling.
func (d *Dispatcher) Journal() *store.Store { return d.jnl }
