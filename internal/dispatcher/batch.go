package dispatcher

import (
	"sync"
	"time"

	"bluedove/internal/core"
	"bluedove/internal/transport"
	"bluedove/internal/wire"
)

// forwardBatcher coalesces forwarded publications per destination matcher
// into ForwardBatch frames (the publish-path batching of the perf work): a
// destination's buffer is flushed when it reaches the count or byte
// threshold, or at the latest after the linger interval, amortizing the
// per-frame header, syscall and handler costs across the batch.
type forwardBatcher struct {
	d          *Dispatcher
	maxCount   int
	maxBytes   int
	sendCopies bool

	mu      sync.Mutex
	pending map[core.NodeID]*destBatch
	free    [][]wire.ForwardEntry // recycled entry slices (bounded)
}

// destBatch is the open batch for one destination matcher.
type destBatch struct {
	addr    string
	entries []wire.ForwardEntry
	bytes   int // encoded-size estimate of entries
}

func newForwardBatcher(d *Dispatcher) *forwardBatcher {
	return &forwardBatcher{
		d:          d,
		maxCount:   d.cfg.ForwardBatchCount,
		maxBytes:   d.cfg.ForwardBatchBytes,
		sendCopies: transport.SendCopies(d.cfg.Transport),
		pending:    make(map[core.NodeID]*destBatch),
	}
}

// add buffers one publication for node (listening at addr). The message is
// either flushed inline (threshold reached) or by the linger loop.
func (b *forwardBatcher) add(node core.NodeID, addr string, dim int, msg *core.Message) {
	e := wire.ForwardEntry{Dim: dim, Msg: msg}
	sz := e.EncodedSize()
	b.mu.Lock()
	db := b.pending[node]
	if db == nil {
		db = &destBatch{}
		b.pending[node] = db
	}
	db.addr = addr // track the freshest known address
	if db.entries == nil {
		db.entries = b.takeEntriesLocked()
	}
	db.entries = append(db.entries, e)
	db.bytes += sz
	var flush []wire.ForwardEntry
	if len(db.entries) >= b.maxCount || db.bytes+4 >= b.maxBytes {
		flush = db.entries
		db.entries = nil
		db.bytes = 0
	}
	b.mu.Unlock()
	if flush != nil {
		b.send(node, addr, flush)
	}
}

// flushAll ships every open batch (linger expiry and shutdown).
func (b *forwardBatcher) flushAll() {
	type out struct {
		node    core.NodeID
		addr    string
		entries []wire.ForwardEntry
	}
	b.mu.Lock()
	var outs []out
	for node, db := range b.pending {
		if len(db.entries) == 0 {
			continue
		}
		outs = append(outs, out{node: node, addr: db.addr, entries: db.entries})
		db.entries = nil
		db.bytes = 0
	}
	b.mu.Unlock()
	for _, o := range outs {
		b.send(o.node, o.addr, o.entries)
	}
}

// send encodes one ForwardBatch frame and ships it, recycling the encode
// buffer on copying transports and the entry slice always. On the batched
// path transport errors surface here, after forwardOnce reported success;
// they feed the destination's circuit breaker (persistence's retransmit
// loop recovers the messages themselves).
func (b *forwardBatcher) send(node core.NodeID, addr string, entries []wire.ForwardEntry) {
	body := wire.ForwardBatchBody{Entries: entries}
	env := &wire.Envelope{Kind: wire.KindForwardBatch, From: b.d.cfg.ID}
	var err error
	if b.sendCopies {
		buf := wire.GetBuf()
		buf.B = body.AppendTo(buf.B)
		env.Body = buf.B
		err = b.d.cfg.Transport.Send(addr, env)
		wire.PutBuf(buf)
	} else {
		env.Body = body.Encode()
		err = b.d.cfg.Transport.Send(addr, env)
	}
	if err != nil {
		b.d.breaker.Failure(node)
	}
	b.d.ForwardBatches.Add(1)
	b.mu.Lock()
	b.putEntriesLocked(entries)
	b.mu.Unlock()
}

// takeEntriesLocked reuses a recycled entry slice when one is available.
func (b *forwardBatcher) takeEntriesLocked() []wire.ForwardEntry {
	if n := len(b.free); n > 0 {
		es := b.free[n-1]
		b.free = b.free[:n-1]
		return es
	}
	return make([]wire.ForwardEntry, 0, b.maxCount)
}

// putEntriesLocked clears message references and keeps the slice for reuse.
func (b *forwardBatcher) putEntriesLocked(entries []wire.ForwardEntry) {
	if len(b.free) >= 8 {
		return
	}
	clear(entries)
	b.free = append(b.free, entries[:0])
}

// lingerLoop flushes open batches every linger interval until the dispatcher
// stops, then performs a final flush so buffered publications are not lost.
func (d *Dispatcher) lingerLoop(linger time.Duration) {
	defer d.wg.Done()
	ticker := time.NewTicker(linger)
	defer ticker.Stop()
	for {
		select {
		case <-d.stop:
			d.batcher.flushAll()
			return
		case <-ticker.C:
			d.batcher.flushAll()
		}
	}
}
