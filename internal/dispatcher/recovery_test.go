package dispatcher

import (
	"testing"
	"time"

	"bluedove/internal/core"
	"bluedove/internal/partition"
	"bluedove/internal/wire"
)

func TestUnsubscribeFansOutToMatchers(t *testing.T) {
	h := newHarness(t, "m1", "m2")
	h.seedGossip(t, []core.NodeID{1, 2}, []string{"m1", "m2"})
	h.d.SetTable(table(t, 1, 2))
	sub := core.NewSubscription(7, []core.Range{{Low: 0, High: 100}, {Low: 0, High: 100}})
	resp := h.request(t, wire.KindSubscribe, (&wire.SubscribeBody{Sub: sub}).Encode())
	ack, err := wire.DecodeSubscribeAck(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	h.send(t, wire.KindUnsubscribe, 0, (&wire.UnsubscribeBody{ID: ack.ID}).Encode())
	waitFor(t, func() bool {
		return len(h.received("m1", wire.KindUnsubscribe)) == 1 &&
			len(h.received("m2", wire.KindUnsubscribe)) == 1
	})
	if h.d.RegistrySize() != 0 {
		t.Errorf("registry = %d after unsubscribe", h.d.RegistrySize())
	}
}

func TestFailureRecoveryShrinksTable(t *testing.T) {
	h := newHarness(t, "m1", "m2", "m3")
	h.seedGossip(t, []core.NodeID{1, 2, 3}, []string{"m1", "m2", "m3"})
	h.d.SetTable(table(t, 1, 2, 3))
	// Register a subscription so recovery has something to reconcile.
	sub := core.NewSubscription(7, []core.Range{{Low: 0, High: 100}, {Low: 0, High: 100}})
	h.request(t, wire.KindSubscribe, (&wire.SubscribeBody{Sub: sub, DeliverAddr: "cl"}).Encode())
	storesBefore := len(h.received("m2", wire.KindStore))

	// Crash matcher 3: stop its gossiper and cut it off; the dispatcher is
	// the lowest-ID (only) dispatcher, so it leads the recovery.
	h.gsps[2].Stop()
	h.mesh.SetDown("m3", true)
	waitFor(t, func() bool {
		tab := h.d.Table()
		return tab != nil && tab.Version() >= 2 && !tab.HasMatcher(3)
	})
	if h.d.Table().N() != 2 {
		t.Fatalf("table size = %d after recovery", h.d.Table().N())
	}
	// Reconcile re-installed the registry onto the survivors.
	waitFor(t, func() bool {
		return len(h.received("m2", wire.KindStore)) > storesBefore
	})
}

func TestTransientFailureDoesNotShrinkTable(t *testing.T) {
	h := newHarness(t, "m1", "m2")
	h.seedGossip(t, []core.NodeID{1, 2}, []string{"m1", "m2"})
	h.d.SetTable(table(t, 1, 2))
	// Blip matcher 2's connectivity for less than FailAfter+RecoveryDelay.
	h.mesh.SetDown("m2", true)
	time.Sleep(150 * time.Millisecond)
	h.mesh.SetDown("m2", false)
	time.Sleep(600 * time.Millisecond)
	if h.d.Table().N() != 2 {
		t.Fatalf("transient blip shrank the table to %d", h.d.Table().N())
	}
}

func TestPullTableAdoptsNewer(t *testing.T) {
	h := newHarnessWithPull(t, 200*time.Millisecond)
	h.seedGossip(t, []core.NodeID{1}, []string{"m1"})
	// The scripted matcher serves a v2 table on pull; the dispatcher has no
	// table at all and must adopt it.
	t1 := table(t, 1)
	t2, _, err := t1.Join(9, []core.NodeID{1, 1})
	if err != nil {
		t.Fatal(err)
	}
	h.setServedTable(t2)
	waitFor(t, func() bool {
		tab := h.d.Table()
		return tab != nil && tab.Version() == t2.Version()
	})
	if h.d.PullBytes.Value() == 0 {
		t.Error("pull bytes not accounted")
	}
}

func TestAccessorsAndString(t *testing.T) {
	h := newHarness(t)
	if h.d.ID() != 100 || h.d.Addr() != "d1" {
		t.Errorf("ID/Addr: %v %q", h.d.ID(), h.d.Addr())
	}
	if h.d.String() == "" {
		t.Error("String empty")
	}
	if !h.d.isLeader() {
		t.Error("sole dispatcher must lead")
	}
}

func TestPollEmptyQueue(t *testing.T) {
	h := newHarness(t)
	resp := h.request(t, wire.KindPoll, (&wire.PollBody{Subscriber: 9, Max: 5}).Encode())
	if resp.Kind != wire.KindPollResponse {
		t.Fatalf("resp: %v", resp.Kind)
	}
	pr, err := wire.DecodePollResponse(resp.Body)
	if err != nil || len(pr.Deliveries) != 0 {
		t.Fatalf("poll: %+v %v", pr, err)
	}
}

func TestBadBodiesIgnored(t *testing.T) {
	h := newHarness(t, "m1")
	h.seedGossip(t, []core.NodeID{1}, []string{"m1"})
	h.d.SetTable(table(t, 1))
	h.send(t, wire.KindPublish, 0, []byte{1})
	h.send(t, wire.KindLoadReport, 1, []byte{2, 3})
	h.send(t, wire.KindDeliver, 1, []byte{4})
	h.send(t, wire.KindUnsubscribe, 0, []byte{5})
	resp := h.request(t, wire.KindPoll, []byte{6})
	if resp.Kind != wire.KindError {
		t.Fatalf("bad poll body: %v", resp.Kind)
	}
	resp = h.request(t, wire.KindJoin, []byte{7})
	if resp.Kind != wire.KindError {
		t.Fatalf("bad join body: %v", resp.Kind)
	}
	resp = h.request(t, wire.KindSubscribe, []byte{8})
	if resp.Kind != wire.KindError {
		t.Fatalf("bad subscribe body: %v", resp.Kind)
	}
	time.Sleep(100 * time.Millisecond)
	if h.d.Published.Value() != 0 {
		t.Error("garbage publish accepted")
	}
}

// newHarnessWithPull builds a harness whose scripted matcher endpoint
// answers table requests with a configurable table, and whose dispatcher
// pulls at the given interval.
type pullHarness struct {
	*harness
	servedMu chan *partition.Table // 1-buffered mailbox holding the current table
}

func newHarnessWithPull(t *testing.T, interval time.Duration) *pullHarness {
	t.Helper()
	ph := &pullHarness{servedMu: make(chan *partition.Table, 1)}
	h := &harness{mesh: newMesh(t), recv: make(map[string][]*wire.Envelope)}
	ph.harness = h
	// Scripted matcher with gossip + table serving.
	ep := h.mesh.Endpoint("m1")
	g := newTestGossiper(t, ep, 1, "m1")
	h.gsps = append(h.gsps, g)
	if _, err := ep.Listen("m1", func(env *wire.Envelope) *wire.Envelope {
		switch env.Kind {
		case wire.KindGossip:
			return g.HandleGossip(env)
		case wire.KindTableRequest:
			select {
			case tab := <-ph.servedMu:
				ph.servedMu <- tab
				return &wire.Envelope{Kind: wire.KindTableResponse, From: 1,
					Body: (&wire.TableResponseBody{Table: tab.Encode()}).Encode()}
			default:
				return &wire.Envelope{Kind: wire.KindError, From: 1,
					Body: (&wire.ErrorBody{Text: "no table"}).Encode()}
			}
		}
		h.mu.Lock()
		h.recv["m1"] = append(h.recv["m1"], env)
		h.mu.Unlock()
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	d, err := New(Config{
		ID: 100, Addr: "d1", Space: testSpace, Transport: h.mesh.Endpoint("d1"),
		GossipInterval: 25 * time.Millisecond, RecoveryDelay: 100 * time.Millisecond,
		FailAfter: 300 * time.Millisecond, TablePullInterval: interval, Generation: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Start(); err != nil {
		t.Fatal(err)
	}
	h.d = d
	g.Start()
	t.Cleanup(func() {
		g.Stop()
		d.Stop()
		h.mesh.Close()
	})
	return ph
}

func (ph *pullHarness) setServedTable(tab *partition.Table) {
	select {
	case <-ph.servedMu:
	default:
	}
	ph.servedMu <- tab
}

// A matcher that accepts forwards but never acks must trigger
// retransmission to a different candidate under persistence.
func TestRetransmitOnMissingAck(t *testing.T) {
	h := newHarnessPersistent(t, "m1", "m2")
	h.seedGossip(t, []core.NodeID{1, 2}, []string{"m1", "m2"})
	h.d.SetTable(table(t, 1, 2))
	// Attribute values chosen so the two candidate matchers differ (with
	// segment rotation, [10, 40) maps dim 0 to matcher 1 and dim 1 to
	// matcher 2).
	msg := core.NewMessage([]float64{10, 40}, nil)
	h.send(t, wire.KindPublish, 0, (&wire.PublishBody{Msg: msg}).Encode())
	waitFor(t, func() bool { return h.d.Forwarded.Value() >= 1 })
	if h.d.InflightLen() != 1 {
		t.Fatalf("inflight = %d, want 1", h.d.InflightLen())
	}
	// No ack arrives: the dispatcher must retransmit to the other matcher.
	waitFor(t, func() bool {
		return len(h.received("m1", wire.KindForward))+len(h.received("m2", wire.KindForward)) >= 2
	})
	if h.d.Retransmits.Value() == 0 {
		t.Fatal("no retransmission recorded")
	}
	if len(h.received("m1", wire.KindForward)) == 0 || len(h.received("m2", wire.KindForward)) == 0 {
		t.Fatal("retransmission reused the same matcher")
	}
	// An ack clears the inflight entry and stops retransmission.
	var fw *wire.Envelope
	if es := h.received("m1", wire.KindForward); len(es) > 0 {
		fw = es[0]
	} else {
		fw = h.received("m2", wire.KindForward)[0]
	}
	body, err := wire.DecodeForward(fw.Body)
	if err != nil {
		t.Fatal(err)
	}
	h.send(t, wire.KindForwardAck, 1, (&wire.ForwardAckBody{ID: body.Msg.ID}).Encode())
	waitFor(t, func() bool { return h.d.InflightLen() == 0 })
}

// newHarnessPersistent is newHarness with persistence and a fast retry.
func newHarnessPersistent(t *testing.T, matcherAddrs ...string) *harness {
	t.Helper()
	h := &harness{mesh: newMesh(t), recv: make(map[string][]*wire.Envelope)}
	for i, addr := range matcherAddrs {
		addr := addr
		ep := h.mesh.Endpoint(addr)
		g := newTestGossiper(t, ep, core.NodeID(i+1), addr)
		h.gsps = append(h.gsps, g)
		if _, err := ep.Listen(addr, func(env *wire.Envelope) *wire.Envelope {
			if env.Kind == wire.KindGossip {
				return g.HandleGossip(env)
			}
			h.mu.Lock()
			h.recv[addr] = append(h.recv[addr], env)
			h.mu.Unlock()
			return nil
		}); err != nil {
			t.Fatal(err)
		}
	}
	d, err := New(Config{
		ID: 100, Addr: "d1", Space: testSpace, Transport: h.mesh.Endpoint("d1"),
		GossipInterval: 25 * time.Millisecond, RecoveryDelay: 100 * time.Millisecond,
		FailAfter: 300 * time.Millisecond, Generation: 1,
		Persistent: true, RetryInterval: 100 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Start(); err != nil {
		t.Fatal(err)
	}
	h.d = d
	for _, g := range h.gsps {
		g.Start()
	}
	t.Cleanup(func() {
		for _, g := range h.gsps {
			g.Stop()
		}
		d.Stop()
		h.mesh.Close()
	})
	return h
}
