// Overload control: busy-NACK handling and candidate re-routing.
//
// A matcher whose dimension stage is full replies to a forward with a
// compact busy NACK (wire.KindBusy, or per-item Busy entries in a batch
// ack) instead of dropping it silently. The dispatcher reacts by retrying
// the publication at the next-best candidate from the policy ranking — one
// extra hop, no timer wait — governed by a per-message retry budget
// (Config.RetryBudget) and an exponential backoff with full jitter for
// repeat offenders (Config.RerouteBackoff). Every busy NACK also feeds the
// destination's circuit breaker and corrects the local load view with the
// NACK's fresher queue depth.

package dispatcher

import (
	"time"

	"bluedove/internal/core"
)

// copyTried snapshots a tried-candidates set so it can be read outside the
// dispatcher lock while the live map keeps being updated under it.
func copyTried(m map[core.NodeID]bool) map[core.NodeID]bool {
	c := make(map[core.NodeID]bool, len(m)+1)
	for k, v := range m {
		c[k] = v
	}
	return c
}

// trackRoute retains a non-persistent forward so a busy NACK can re-route
// it. Entries die on ack or expire after two retry intervals; past the
// MaxInflight cap new forwards fall back to untracked best-effort.
func (d *Dispatcher) trackRoute(msg *core.Message, to core.NodeID) {
	expires := d.cfg.Now() + 2*int64(d.cfg.RetryInterval)
	d.mu.Lock()
	if len(d.routes) < d.cfg.MaxInflight {
		d.routes[msg.ID] = &routeState{
			msg:     msg,
			tried:   map[core.NodeID]bool{to: true},
			expires: expires,
		}
	}
	d.mu.Unlock()
}

// handleBusy reacts to one busy NACK from matcher `from` for message `id`:
// feed the breaker, correct the load view, and — within the retry budget —
// re-route the publication to the next-best candidate. The first re-route
// is immediate; later ones wait a full-jitter exponential backoff so a
// cluster-wide hot spot is not hammered in lockstep.
func (d *Dispatcher) handleBusy(from core.NodeID, id core.MessageID, dim, queueLen int) {
	d.BusyReceived.Add(1)
	d.breaker.Failure(from)
	now := d.cfg.Now()

	d.mu.Lock()
	// The NACK carries a fresher queue depth than the last load report, and
	// the rejected forward never joined the queue: fold both corrections
	// into the load view so ranking sees the hot spot right away.
	if ls := d.loads[from]; dim >= 0 && dim < len(ls) {
		ls[dim].QueueLen = queueLen
		ls[dim].ReportedAt = now
	}
	if p := d.pending[from]; dim >= 0 && dim < len(p) && p[dim] > 0 {
		p[dim]--
	}
	attempt := 0
	if d.cfg.RetryBudget > 0 {
		if inf := d.inflight[id]; inf != nil {
			inf.tried[from] = true
			if inf.reroutes < d.cfg.RetryBudget {
				inf.reroutes++
				attempt = inf.reroutes
			}
		} else if rs := d.routes[id]; rs != nil {
			rs.tried[from] = true
			if rs.reroutes < d.cfg.RetryBudget {
				rs.reroutes++
				attempt = rs.reroutes
			}
		}
	}
	var delay time.Duration
	if attempt > 1 {
		// Full jitter: uniform in [0, base<<(attempt-2)].
		base := int64(d.cfg.RerouteBackoff) << (attempt - 2)
		delay = time.Duration(d.rng.Int63n(base + 1))
	}
	spawn := attempt > 1 && !d.stopping
	if spawn {
		d.wg.Add(1) // under d.mu, so it cannot race Stop's wg.Wait
	}
	d.mu.Unlock()

	if attempt == 1 {
		d.rerouteNow(id)
		return
	}
	if !spawn {
		return
	}
	go func() {
		defer d.wg.Done()
		t := time.NewTimer(delay)
		defer t.Stop()
		select {
		case <-d.stop:
			return
		case <-t.C:
		}
		d.rerouteNow(id)
	}()
}

// rerouteNow re-forwards a busy-NACKed publication to the best candidate
// not yet tried, if it is still unacked.
func (d *Dispatcher) rerouteNow(id core.MessageID) {
	d.mu.Lock()
	t := d.table
	var msg *core.Message
	var tried map[core.NodeID]bool
	if inf := d.inflight[id]; inf != nil {
		msg, tried = inf.msg, copyTried(inf.tried)
	} else if rs := d.routes[id]; rs != nil {
		msg, tried = rs.msg, copyTried(rs.tried)
	}
	d.mu.Unlock()
	if t == nil || msg == nil {
		return // acked (or never tracked) in the meantime
	}
	sent, to := d.forwardOnce(t, msg, tried)
	if !sent {
		return // no alternate candidate; persistence's retransmit loop may still save it
	}
	d.Rerouted.Add(1)
	d.mu.Lock()
	if inf := d.inflight[id]; inf != nil {
		inf.tried[to] = true
	} else if rs := d.routes[id]; rs != nil {
		rs.tried[to] = true
	}
	d.mu.Unlock()
}

// sweepRoutesLoop expires stale non-persistent route state (forwards whose
// matcher died without acking or NACKing) so the table stays bounded.
func (d *Dispatcher) sweepRoutesLoop() {
	defer d.wg.Done()
	tick := d.cfg.RetryInterval
	if tick < time.Millisecond {
		tick = time.Millisecond
	}
	ticker := time.NewTicker(tick)
	defer ticker.Stop()
	for {
		select {
		case <-d.stop:
			return
		case <-ticker.C:
			now := d.cfg.Now()
			d.mu.Lock()
			for id, rs := range d.routes {
				if rs.expires <= now {
					delete(d.routes, id)
				}
			}
			d.mu.Unlock()
		}
	}
}

// RoutesLen returns the number of tracked non-persistent forwards (tests).
func (d *Dispatcher) RoutesLen() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return len(d.routes)
}
