// Package dispatcher implements a BlueDove front-end dispatching server
// (paper Section II-B): it accepts subscriptions and publications from
// clients, assigns subscriptions to matchers via the placement strategy
// (mPartition for BlueDove), forwards each publication one hop to the best
// candidate matcher chosen by the performance-aware forwarding policy
// (Section III-B), maintains the global segment-table view and per-matcher
// load reports, hosts polled delivery queues for indirect subscribers, and
// coordinates elasticity (matcher joins) and failure recovery.
package dispatcher

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"bluedove/internal/core"
	"bluedove/internal/delivery"
	"bluedove/internal/forward"
	"bluedove/internal/gossip"
	"bluedove/internal/metrics"
	"bluedove/internal/partition"
	"bluedove/internal/placement"
	"bluedove/internal/store"
	"bluedove/internal/telemetry"
	"bluedove/internal/transport"
	"bluedove/internal/wire"
)

// TableKey is the gossip state key carrying the encoded segment table; it
// matches the matcher package's key.
const TableKey = "table"

// Config parameterizes a Dispatcher.
type Config struct {
	// ID is the node's cluster identifier; required.
	ID core.NodeID
	// Addr is the listen address; required.
	Addr string
	// Space is the attribute space; required.
	Space *core.Space
	// Transport carries all node traffic; required.
	Transport transport.Transport
	// Seeds are gossip bootstrap addresses.
	Seeds []string
	// Strategy is the placement strategy (default placement.BlueDove{}).
	Strategy placement.Strategy
	// Policy is the forwarding policy (default forward.Adaptive{}).
	Policy forward.Policy
	// TablePullInterval is the periodic table pull cadence (default 10s).
	TablePullInterval time.Duration
	// RecoveryDelay is the wait after failure detection before the leader
	// removes a dead matcher from the table (default 5s).
	RecoveryDelay time.Duration
	// GossipInterval is the gossip round period (default 1s).
	GossipInterval time.Duration
	// FailAfter is the gossip liveness timeout (default 10s).
	FailAfter time.Duration
	// QueueCap bounds each indirect-delivery subscriber queue.
	QueueCap int
	// Persistent enables at-least-once forwarding (the paper's Section VI
	// persistence future work): the dispatcher retains each forwarded
	// publication until a matcher acknowledges matching it, retransmitting
	// to other candidates on timeout — so matcher crashes lose no accepted
	// messages (duplicate deliveries are possible when an ack is lost).
	Persistent bool
	// RetryInterval is the retransmit timeout for unacked forwards
	// (default 2s).
	RetryInterval time.Duration
	// MaxInflight bounds retained unacked messages; beyond it new messages
	// fall back to best-effort forwarding (default 65536).
	MaxInflight int
	// ForwardLinger, when positive, enables publication batching on the
	// forward path: publications headed to the same matcher are coalesced
	// into ForwardBatch frames, flushed when a batch reaches
	// ForwardBatchCount messages or ForwardBatchBytes encoded bytes, or at
	// the latest after this interval (~1ms is a good starting point). Zero
	// (the default) forwards every publication in its own frame immediately,
	// preserving the unbatched latency profile. With batching on, transport
	// errors surface at flush time, after forwardOnce has reported success;
	// enable Persistent when that delivery gap matters.
	ForwardLinger time.Duration
	// ForwardBatchCount flushes a destination's batch at this many messages
	// (default 64; only meaningful with ForwardLinger > 0).
	ForwardBatchCount int
	// ForwardBatchBytes flushes a destination's batch at this encoded size
	// (default 256 KiB; only meaningful with ForwardLinger > 0).
	ForwardBatchBytes int
	// RetryBudget bounds busy/unreachable re-routes per publication: on a
	// busy NACK the dispatcher immediately retries the message at the
	// next-best candidate from the policy ranking (one extra hop, no timer
	// wait), at most this many times. The first re-route is immediate;
	// repeat offenders wait an exponential backoff with full jitter (see
	// RerouteBackoff). Zero selects the default (2); negative disables
	// busy re-routing entirely (NACKs are still counted).
	RetryBudget int
	// RerouteBackoff is the base backoff before the second and later
	// re-routes of one publication: re-route n>1 sleeps a uniformly random
	// duration in [0, RerouteBackoff<<(n-2)) (default 2ms).
	RerouteBackoff time.Duration
	// BreakerThreshold trips a destination's circuit breaker open after
	// this many consecutive busy/unreachable events; while open the
	// forwarding policies skip the destination during rank selection, and
	// after BreakerCooldown it is probed half-open. Zero selects the
	// default (5); negative disables circuit breaking.
	BreakerThreshold int
	// BreakerCooldown is how long a tripped destination is skipped before
	// the half-open probe (default 1s).
	BreakerCooldown time.Duration
	// AdmissionLimit bounds the dispatcher's tracked unacked publications
	// (inflight + pending re-route state): beyond it, new publications are
	// rejected at admission — publish-with-ack clients get a typed
	// overloaded error, fire-and-forget publishes are shed and counted —
	// instead of growing the tables without bound. Zero disables admission
	// control.
	AdmissionLimit int
	// MessageTTL stamps publications that carry no TTL of their own with
	// this time-to-live, so stale messages are shed at matcher dequeue
	// instead of being matched (0 = no TTL).
	MessageTTL time.Duration
	// Generation is the gossip incarnation (default: boot time).
	Generation uint64
	// Now supplies the clock (default time.Now).
	Now func() int64
	// Seed drives randomized choices (default derived from ID).
	Seed int64
	// Telemetry, when non-nil, enables the observability subsystem on this
	// node: publications are trace-sampled at ingest (per the bundle's
	// sampler), completed traces are retained, and every counter and
	// latency histogram is registered under the node's registry. Nil (the
	// default) keeps the forward path free of telemetry work beyond one
	// nil check.
	Telemetry *telemetry.Telemetry
	// DataDir, when non-empty, makes the dispatcher's state durable: the
	// subscription registry, the pending-forward table (Persistent mode)
	// and the ID counters are journaled to a write-ahead log in this
	// directory (see internal/store) and replayed on Start — a restarted
	// dispatcher re-installs its registry and retransmits every unacked
	// publication. Empty (the default) keeps all state in memory.
	DataDir string
	// Fsync is the journal sync policy (default store.FsyncInterval); only
	// meaningful with DataDir set.
	Fsync store.Fsync
	// SnapshotEvery folds the journal into a snapshot after this many
	// appends (default: the store package default).
	SnapshotEvery int
	// FS is the journal's filesystem seam (default: the OS passthrough);
	// internal/chaos injects disk faults through it. Only meaningful with
	// DataDir set.
	FS store.FS
	// FailPolicy decides what an unrepairable journal disk fault does to
	// this node: FailStop (default), DegradeToMemory, or Shed. Under Shed
	// the dispatcher also refuses new persistent work at admission with a
	// wire.OverloadedPrefix-typed rejection once the journal degrades.
	FailPolicy store.FailPolicy
	// OnStoreFailure, when non-nil, is invoked once (on its own goroutine)
	// when the journal transitions to store.Failed — the cluster wires it
	// to the node's crash path so FailStop actually stops.
	OnStoreFailure func(error)
}

func (c *Config) defaults() error {
	if c.ID == 0 || c.Addr == "" || c.Space == nil || c.Transport == nil {
		return errors.New("dispatcher: ID, Addr, Space and Transport are required")
	}
	if c.Strategy == nil {
		c.Strategy = placement.BlueDove{}
	}
	if c.Policy == nil {
		c.Policy = forward.Adaptive{}
	}
	if c.TablePullInterval <= 0 {
		c.TablePullInterval = 10 * time.Second
	}
	if c.RecoveryDelay <= 0 {
		c.RecoveryDelay = 5 * time.Second
	}
	if c.GossipInterval <= 0 {
		c.GossipInterval = time.Second
	}
	if c.FailAfter <= 0 {
		c.FailAfter = 10 * time.Second
	}
	if c.RetryInterval <= 0 {
		c.RetryInterval = 2 * time.Second
	}
	if c.MaxInflight <= 0 {
		c.MaxInflight = 65536
	}
	if c.ForwardBatchCount <= 0 {
		c.ForwardBatchCount = 64
	}
	if c.ForwardBatchBytes <= 0 {
		c.ForwardBatchBytes = 256 << 10
	}
	if c.RetryBudget == 0 {
		c.RetryBudget = 2
	}
	if c.RerouteBackoff <= 0 {
		c.RerouteBackoff = 2 * time.Millisecond
	}
	if c.BreakerThreshold == 0 {
		c.BreakerThreshold = 5
	}
	if c.BreakerCooldown <= 0 {
		c.BreakerCooldown = time.Second
	}
	if c.Seed == 0 {
		c.Seed = int64(c.ID) * 40503
	}
	if c.Now == nil {
		c.Now = func() int64 { return time.Now().UnixNano() }
	}
	return nil
}

// regEntry is one registered subscription plus its delivery address.
type regEntry struct {
	sub  *core.Subscription
	addr string
}

// Dispatcher is a running front-end server.
type Dispatcher struct {
	cfg  Config
	gsp  *gossip.Gossiper
	addr string

	mu      sync.Mutex
	table   *partition.Table
	loads   map[core.NodeID][]forward.DimLoad
	pending map[core.NodeID][]int
	// health tracks each matcher's reported durability state (absent:
	// healthy). Failed matchers are vetoed by Routable; Degraded ones are
	// deprioritized at rank time.
	health   map[core.NodeID]store.Health
	registry map[core.SubscriptionID]regEntry
	nextSub  uint64
	nextMsg  uint64
	rng      *rand.Rand

	queues *delivery.QueueStore

	// inflight retains unacked forwards for retransmission (persistence).
	inflight map[core.MessageID]*inflightMsg

	// routes retains recent non-persistent forwards so a busy NACK can be
	// re-routed to an alternate candidate (Persistent mode keeps the same
	// state in inflight instead). Entries die on ack or expiry.
	routes map[core.MessageID]*routeState

	// breaker is the per-destination circuit breaker (nil when disabled; a
	// nil breaker is always closed).
	breaker *forward.Breaker

	// stopping guards wg.Add from handler goroutines racing Stop's Wait.
	stopping bool

	// batcher coalesces forwards per destination (nil when ForwardLinger
	// is zero — the unbatched default).
	batcher *forwardBatcher

	// jnl is the durable state journal (nil on in-memory nodes).
	jnl *store.Store

	stop chan struct{}
	// ready gates the transport handler until Start finishes initializing:
	// a restarted node's address is already known to gossiping peers, so
	// traffic can arrive between Listen and the end of Start.
	ready chan struct{}
	wg    sync.WaitGroup

	// Published counts accepted publications.
	Published metrics.Counter
	// Forwarded counts publications sent to a matcher.
	Forwarded metrics.Counter
	// DroppedNoCandidate counts publications with no alive candidate.
	DroppedNoCandidate metrics.Counter
	// PullBytes counts table-pull response traffic.
	PullBytes metrics.Counter
	// Retransmits counts persistence re-forwards of unacked messages.
	Retransmits metrics.Counter
	// ForwardBatches counts ForwardBatch frames sent (batching enabled);
	// Forwarded / ForwardBatches is the achieved amortization factor.
	ForwardBatches metrics.Counter
	// BusyReceived counts busy NACKs received from matchers.
	BusyReceived metrics.Counter
	// Rerouted counts publications re-forwarded to an alternate candidate
	// after a busy NACK.
	Rerouted metrics.Counter
	// Overloaded counts publications rejected at admission control.
	Overloaded metrics.Counter
	// JournalErrors counts journal appends and snapshots that failed (the
	// durability guarantee weakened or lost; see store.health for state).
	JournalErrors metrics.Counter

	// fwdLatency observes ingest→ack per traced publication (ns).
	fwdLatency *metrics.Histogram
	// e2eLatency observes publish→deliver per traced publication (ns).
	e2eLatency *metrics.Histogram
}

// inflightMsg is one retained unacked publication.
type inflightMsg struct {
	msg      *core.Message
	tried    map[core.NodeID]bool
	deadline int64 // next retransmit time (ns)
	attempts int
	reroutes int // busy re-routes consumed (bounded by RetryBudget)
}

// routeState is one recent non-persistent forward retained for busy
// re-routing: the message, the candidates already tried, the re-routes
// consumed, and when the entry may be swept.
type routeState struct {
	msg      *core.Message
	tried    map[core.NodeID]bool
	reroutes int
	expires  int64
}

// New builds a dispatcher (not yet started).
func New(cfg Config) (*Dispatcher, error) {
	if err := cfg.defaults(); err != nil {
		return nil, err
	}
	d := &Dispatcher{
		cfg:        cfg,
		loads:      make(map[core.NodeID][]forward.DimLoad),
		pending:    make(map[core.NodeID][]int),
		health:     make(map[core.NodeID]store.Health),
		registry:   make(map[core.SubscriptionID]regEntry),
		inflight:   make(map[core.MessageID]*inflightMsg),
		routes:     make(map[core.MessageID]*routeState),
		rng:        rand.New(rand.NewSource(cfg.Seed)),
		queues:     delivery.NewQueueStore(cfg.QueueCap),
		stop:       make(chan struct{}),
		ready:      make(chan struct{}),
		fwdLatency: metrics.NewHistogram(),
		e2eLatency: metrics.NewHistogram(),
	}
	if cfg.BreakerThreshold > 0 {
		d.breaker = forward.NewBreaker(cfg.BreakerThreshold, cfg.BreakerCooldown, cfg.Now)
	}
	return d, nil
}

// ID returns the dispatcher's node ID.
func (d *Dispatcher) ID() core.NodeID { return d.cfg.ID }

// Addr returns the bound listen address (valid after Start).
func (d *Dispatcher) Addr() string { return d.addr }

// Gossiper exposes the overlay view.
func (d *Dispatcher) Gossiper() *gossip.Gossiper { return d.gsp }

// Queues exposes the indirect-delivery queue store.
func (d *Dispatcher) Queues() *delivery.QueueStore { return d.queues }

// Start binds the listener, joins the gossip overlay and starts the table
// maintenance loops.
func (d *Dispatcher) Start() error {
	// Recover durable state before the listener binds, so replay never
	// races live traffic.
	if err := d.openJournal(); err != nil {
		return err
	}
	addr, err := d.cfg.Transport.Listen(d.cfg.Addr, func(env *wire.Envelope) *wire.Envelope {
		<-d.ready
		return d.handle(env)
	})
	if err != nil {
		return err
	}
	d.addr = addr
	g, err := gossip.New(gossip.Config{
		ID:         d.cfg.ID,
		Addr:       addr,
		Role:       core.RoleDispatcher,
		Transport:  d.cfg.Transport,
		Seeds:      d.cfg.Seeds,
		Interval:   d.cfg.GossipInterval,
		FailAfter:  d.cfg.FailAfter,
		Generation: d.cfg.Generation,
		Now:        d.cfg.Now,
	})
	if err != nil {
		return err
	}
	d.gsp = g
	g.OnLivenessChange(d.onLiveness)
	g.Start()
	if d.cfg.Telemetry != nil {
		d.registerTelemetry()
	}
	d.wg.Add(2)
	go d.tableWatchLoop()
	go d.tablePullLoop()
	if d.cfg.Persistent {
		d.wg.Add(1)
		go d.retransmitLoop()
	}
	if d.cfg.ForwardLinger > 0 {
		d.batcher = newForwardBatcher(d)
		d.wg.Add(1)
		go d.lingerLoop(d.cfg.ForwardLinger)
	}
	if !d.cfg.Persistent && d.cfg.RetryBudget > 0 {
		d.wg.Add(1)
		go d.sweepRoutesLoop()
	}
	close(d.ready)
	return nil
}

// Stop halts the dispatcher.
func (d *Dispatcher) Stop() {
	select {
	case <-d.stop:
		return
	default:
		close(d.stop)
	}
	d.mu.Lock()
	d.stopping = true
	d.mu.Unlock()
	d.gsp.Stop()
	d.wg.Wait()
	d.closeJournal()
}

// SetTable installs (and publishes via gossip) a segment table. Used at
// bootstrap and by join/recovery.
func (d *Dispatcher) SetTable(t *partition.Table) {
	d.mu.Lock()
	if d.table != nil && t.Version() <= d.table.Version() {
		d.mu.Unlock()
		return
	}
	d.table = t
	d.mu.Unlock()
	d.gsp.SetState(TableKey, t.Encode(), t.Version())
	d.reconcile(t)
}

// Table returns the dispatcher's current table view (nil before bootstrap).
func (d *Dispatcher) Table() *partition.Table {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.table
}

// --- forward.LoadView ----------------------------------------------------

// Load implements forward.LoadView: the last report plus this dispatcher's
// own not-yet-reported forwards, scaled by the dispatcher count (see
// forward.DimLoad.PendingLocal).
func (d *Dispatcher) Load(node core.NodeID, dim int) (forward.DimLoad, bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	ls, ok := d.loads[node]
	if !ok || dim >= len(ls) {
		return forward.DimLoad{}, false
	}
	l := ls[dim]
	if p := d.pending[node]; dim < len(p) {
		l.PendingLocal = float64(p[dim]) * float64(d.dispatcherCountLocked())
	}
	return l, true
}

// Alive implements forward.LoadView via gossip liveness.
func (d *Dispatcher) Alive(node core.NodeID) bool { return d.gsp.Alive(node) }

// Routable implements forward.RouteFilter: a destination whose circuit
// breaker is open — or whose journal reported store.Failed — is skipped by
// every policy during rank selection. With circuit breaking disabled only
// the health veto applies.
func (d *Dispatcher) Routable(node core.NodeID) bool {
	d.mu.Lock()
	failed := d.health[node] == store.Failed
	d.mu.Unlock()
	return !failed && d.breaker.Routable(node)
}

// Deprioritized implements forward.Deprioritizer: a matcher whose journal
// reported a degraded (non-durable) state ranks after every healthy
// candidate, so it only receives forwards when nothing healthier is alive.
func (d *Dispatcher) Deprioritized(node core.NodeID) bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.health[node] == store.Degraded
}

// plainView is d's LoadView without the RouteFilter: the ranking fallback
// when every candidate's breaker is open (sending somewhere beats dropping).
type plainView struct{ d *Dispatcher }

func (v plainView) Load(node core.NodeID, dim int) (forward.DimLoad, bool) {
	return v.d.Load(node, dim)
}
func (v plainView) Alive(node core.NodeID) bool { return v.d.Alive(node) }

func (d *Dispatcher) dispatcherCountLocked() int {
	n := 0
	for _, p := range d.gsp.Peers() {
		if p.Role == core.RoleDispatcher && p.Alive {
			n++
		}
	}
	if n == 0 {
		n = 1
	}
	return n
}

// --- transport handler ----------------------------------------------------

func (d *Dispatcher) handle(env *wire.Envelope) *wire.Envelope {
	switch env.Kind {
	case wire.KindGossip:
		return d.gsp.HandleGossip(env)
	case wire.KindSubscribe:
		return d.handleSubscribe(env)
	case wire.KindUnsubscribe:
		if b, err := wire.DecodeUnsubscribe(env.Body); err == nil {
			d.handleUnsubscribe(b.ID)
		}
		return nil
	case wire.KindPublish:
		if b, err := wire.DecodePublish(env.Body); err == nil {
			d.handlePublish(b.Msg, false)
		}
		return nil
	case wire.KindPublishReq:
		b, err := wire.DecodePublish(env.Body)
		if err != nil {
			return errEnv(d.cfg.ID, err)
		}
		return d.handlePublish(b.Msg, true)
	case wire.KindBusy:
		if b, err := wire.DecodeBusy(env.Body); err == nil {
			d.handleBusy(env.From, b.ID, b.Dim, b.QueueLen)
		}
		return nil
	case wire.KindLoadReport:
		if b, err := wire.DecodeLoadReport(env.Body); err == nil {
			d.mu.Lock()
			d.loads[env.From] = b.Loads
			d.pending[env.From] = make([]int, len(b.Loads))
			if h := store.Health(b.Health); h == store.Healthy {
				delete(d.health, env.From)
			} else {
				d.health[env.From] = h
			}
			d.mu.Unlock()
		}
		return nil
	case wire.KindDeliver:
		if b, err := wire.DecodeDeliver(env.Body); err == nil {
			d.queues.Push(b.Subscriber, *b)
		}
		return nil
	case wire.KindDeliverBatch:
		if b, err := wire.DecodeDeliverBatch(env.Body); err == nil {
			for i := range b.Deliveries {
				d.queues.Push(b.Deliveries[i].Subscriber, b.Deliveries[i])
			}
		}
		return nil
	case wire.KindPoll:
		b, err := wire.DecodePoll(env.Body)
		if err != nil {
			return errEnv(d.cfg.ID, err)
		}
		ds := d.queues.Poll(b.Subscriber, int(b.Max))
		return &wire.Envelope{Kind: wire.KindPollResponse, From: d.cfg.ID,
			Body: (&wire.PollResponseBody{Deliveries: ds}).Encode()}
	case wire.KindForwardAck:
		if b, err := wire.DecodeForwardAck(env.Body); err == nil {
			d.breaker.Success(env.From)
			d.mu.Lock()
			_, was := d.inflight[b.ID]
			delete(d.inflight, b.ID)
			delete(d.routes, b.ID)
			d.mu.Unlock()
			if was {
				d.journalID(recAck, uint64(b.ID))
			}
			if d.cfg.Telemetry != nil && b.Trace != nil {
				d.completeTrace(b.ID, b.Trace)
			}
		}
		return nil
	case wire.KindForwardAckBatch:
		if b, err := wire.DecodeForwardAckBatch(env.Body); err == nil {
			if len(b.IDs) > 0 {
				d.breaker.Success(env.From)
			}
			var acked []core.MessageID
			d.mu.Lock()
			for _, id := range b.IDs {
				delete(d.routes, id)
				if _, was := d.inflight[id]; was {
					delete(d.inflight, id)
					acked = append(acked, id)
				}
			}
			d.mu.Unlock()
			for _, id := range acked {
				d.journalID(recAck, uint64(id))
			}
			if d.cfg.Telemetry != nil {
				for i := range b.Traces {
					d.completeTrace(b.Traces[i].Msg, &b.Traces[i].Ctx)
				}
			}
			// Per-item busy accounting: re-route exactly the rejected items.
			for i := range b.Busy {
				d.handleBusy(env.From, b.Busy[i].ID, b.Busy[i].Dim, b.Busy[i].QueueLen)
			}
		}
		return nil
	case wire.KindJoin:
		return d.handleJoin(env)
	case wire.KindTableRequest:
		d.mu.Lock()
		t := d.table
		d.mu.Unlock()
		if t == nil {
			return errEnv(d.cfg.ID, errors.New("dispatcher: no table yet"))
		}
		return &wire.Envelope{Kind: wire.KindTableResponse, From: d.cfg.ID,
			Body: (&wire.TableResponseBody{Table: t.Encode()}).Encode()}
	default:
		return nil
	}
}

func errEnv(from core.NodeID, err error) *wire.Envelope {
	return &wire.Envelope{Kind: wire.KindError, From: from,
		Body: (&wire.ErrorBody{Text: err.Error()}).Encode()}
}

// handleSubscribe registers a subscription and installs it on matchers.
func (d *Dispatcher) handleSubscribe(env *wire.Envelope) *wire.Envelope {
	b, err := wire.DecodeSubscribe(env.Body)
	if err != nil {
		return errEnv(d.cfg.ID, err)
	}
	sub := b.Sub
	if err := sub.Validate(d.cfg.Space); err != nil {
		return errEnv(d.cfg.ID, err)
	}
	deliverAddr := b.DeliverAddr
	if deliverAddr == "" {
		// Indirect mode: matches land in this dispatcher's queue store.
		deliverAddr = d.addr
	}
	d.mu.Lock()
	if sub.ID == 0 {
		d.nextSub++
		// Node-unique ID space: high bits carry the dispatcher ID so
		// concurrent dispatchers never collide.
		sub.ID = core.SubscriptionID(uint64(d.cfg.ID)<<40 | d.nextSub)
	}
	d.registry[sub.ID] = regEntry{sub: sub, addr: deliverAddr}
	t := d.table
	d.mu.Unlock()
	if d.jnl != nil {
		// Re-encode rather than journaling env.Body: sub.ID may have just
		// been assigned.
		d.journal(recRegAdd, (&wire.SubscribeBody{Sub: sub, DeliverAddr: deliverAddr}).Encode())
	}
	if t == nil {
		return errEnv(d.cfg.ID, errors.New("dispatcher: cluster not bootstrapped"))
	}
	d.installSub(t, sub, deliverAddr)
	ack := &wire.SubscribeAckBody{ID: sub.ID, QueueHandle: uint64(sub.Subscriber)}
	return &wire.Envelope{Kind: wire.KindSubscribeAck, From: d.cfg.ID, Body: ack.Encode()}
}

// installSub sends one Store per (matcher, dimension) placement.
func (d *Dispatcher) installSub(t *partition.Table, sub *core.Subscription, deliverAddr string) {
	for _, a := range d.cfg.Strategy.Assign(t, sub) {
		addr, ok := d.gsp.AddrOf(a.Node)
		if !ok {
			continue
		}
		body := (&wire.StoreBody{Dim: a.Dim, Sub: sub, DeliverAddr: deliverAddr}).Encode()
		_ = d.cfg.Transport.Send(addr, &wire.Envelope{Kind: wire.KindStore, From: d.cfg.ID, Body: body})
	}
}

// handleUnsubscribe removes the subscription from every matcher that might
// hold it.
func (d *Dispatcher) handleUnsubscribe(id core.SubscriptionID) {
	d.mu.Lock()
	delete(d.registry, id)
	d.mu.Unlock()
	d.journalID(recRegRemove, uint64(id))
	body := (&wire.UnsubscribeBody{ID: id}).Encode()
	for _, p := range d.gsp.Peers() {
		if p.Role == core.RoleMatcher {
			_ = d.cfg.Transport.Send(p.Addr, &wire.Envelope{Kind: wire.KindUnsubscribe, From: d.cfg.ID, Body: body})
		}
	}
}

// handlePublish stamps the message and forwards it one hop to the best
// candidate matcher (paper Section III-B). wantAck selects the
// request/response publish path (KindPublishReq): the returned envelope is
// a PublishAck on admission, or an Error whose text starts with
// wire.OverloadedPrefix when admission control rejects the publication;
// fire-and-forget publishes (wantAck false) always return nil.
func (d *Dispatcher) handlePublish(msg *core.Message, wantAck bool) *wire.Envelope {
	// Durability shedding: a journal degraded under the Shed policy refuses
	// new persistent work with a typed overload-style rejection instead of
	// acking publications whose durability guarantee it can no longer honor.
	if d.jnl != nil && d.cfg.FailPolicy == store.Shed && d.jnl.Health() != store.Healthy {
		d.Overloaded.Add(1)
		if wantAck {
			return errEnv(d.cfg.ID, fmt.Errorf("%sdispatcher %v is shedding persistent work (journal degraded)",
				wire.OverloadedPrefix, d.cfg.ID))
		}
		return nil
	}
	// Edge admission control: reject before accepting any state when the
	// unacked-publication tables are at their bound, instead of growing
	// them without limit under sustained overload.
	if lim := d.cfg.AdmissionLimit; lim > 0 {
		d.mu.Lock()
		over := len(d.inflight)+len(d.routes) >= lim
		d.mu.Unlock()
		if over {
			d.Overloaded.Add(1)
			if wantAck {
				return errEnv(d.cfg.ID, fmt.Errorf("%sdispatcher %v has %d unacked publications",
					wire.OverloadedPrefix, d.cfg.ID, lim))
			}
			return nil
		}
	}
	now := d.cfg.Now()
	msg.PublishedAt = now
	if msg.TTL == 0 && d.cfg.MessageTTL > 0 {
		msg.TTL = int64(d.cfg.MessageTTL)
	}
	d.Published.Add(1)
	d.mu.Lock()
	if msg.ID == 0 {
		d.nextMsg++
		// Node-unique ID space, mirroring subscription IDs.
		msg.ID = core.MessageID(uint64(d.cfg.ID)<<40 | d.nextMsg)
	}
	t := d.table
	d.mu.Unlock()
	if tel := d.cfg.Telemetry; tel != nil {
		if msg.Trace == nil && tel.Sampler.Sample() {
			msg.Trace = &core.TraceCtx{}
		}
		if msg.Trace != nil {
			if msg.Trace.ID == 0 {
				msg.Trace.ID = core.TraceID(msg.ID)
			}
			msg.Trace.Dispatcher = d.cfg.ID
			// A client that pre-sampled already stamped HopPublish on its
			// own clock; otherwise publish and ingest coincide here.
			msg.Trace.Stamp(core.HopPublish, now)
			msg.Trace.Stamp(core.HopIngest, now)
		}
	}
	if t == nil {
		d.DroppedNoCandidate.Add(1)
		if wantAck {
			return errEnv(d.cfg.ID, errors.New("dispatcher: cluster not bootstrapped"))
		}
		return nil
	}
	if sent, to := d.forwardOnce(t, msg, nil); sent {
		if d.cfg.Persistent {
			d.track(msg, to)
		} else if d.cfg.RetryBudget > 0 {
			d.trackRoute(msg, to)
		}
		return d.publishAck(msg, wantAck)
	}
	if d.cfg.Persistent {
		// No candidate reachable right now — e.g. every owner of this point
		// just crashed. The publication is already accepted, so retain it:
		// recovery reassigns the dead matcher's segments and the retransmit
		// loop re-forwards to the new owners.
		d.track(msg, 0)
		return d.publishAck(msg, wantAck)
	}
	d.DroppedNoCandidate.Add(1)
	if wantAck {
		return errEnv(d.cfg.ID, errors.New("dispatcher: no alive candidate matcher"))
	}
	return nil
}

// publishAck builds the PublishAck response for request/response publishes.
func (d *Dispatcher) publishAck(msg *core.Message, wantAck bool) *wire.Envelope {
	if !wantAck {
		return nil
	}
	return &wire.Envelope{Kind: wire.KindPublishAck, From: d.cfg.ID,
		Body: (&wire.PublishAckBody{ID: msg.ID}).Encode()}
}

// forwardOnce sends msg to its best candidate not in skip, reporting
// success and the chosen matcher.
func (d *Dispatcher) forwardOnce(t *partition.Table, msg *core.Message,
	skip map[core.NodeID]bool) (bool, core.NodeID) {
	now := d.cfg.Now()
	cands := d.cfg.Strategy.Candidates(t, msg)
	ranked := d.cfg.Policy.Rank(now, cands, d)
	if len(ranked) == 0 && d.breaker != nil {
		// Every candidate's breaker is open: rank again without the filter —
		// forwarding to an overloaded matcher still beats dropping.
		ranked = d.cfg.Policy.Rank(now, cands, plainView{d})
	}
	for _, c := range ranked {
		if skip[c.Node] {
			continue
		}
		addr, ok := d.gsp.AddrOf(c.Node)
		if !ok {
			continue
		}
		if msg.Trace != nil && skip == nil {
			// First forward of a traced publication: record the chosen hop
			// before encoding so the frame carries it. Retransmissions
			// (skip != nil) leave the original stamps in place — the context
			// may already be shared with a concurrent batch encoder.
			msg.Trace.Matcher = c.Node
			msg.Trace.Dim = c.Dim
			msg.Trace.Stamp(core.HopForward, now)
		}
		if d.batcher != nil {
			d.batcher.add(c.Node, addr, c.Dim, msg)
		} else {
			body := (&wire.ForwardBody{Dim: c.Dim, Msg: msg}).Encode()
			if d.cfg.Transport.Send(addr, &wire.Envelope{Kind: wire.KindForward, From: d.cfg.ID, Body: body}) != nil {
				// Unreachable: feed the breaker and fall through to the
				// next-best candidate immediately.
				d.breaker.Failure(c.Node)
				continue
			}
		}
		d.mu.Lock()
		p, ok := d.pending[c.Node]
		if !ok || len(p) != d.cfg.Space.K() {
			p = make([]int, d.cfg.Space.K())
			d.pending[c.Node] = p
		}
		if c.Dim < len(p) {
			p[c.Dim]++
		}
		d.mu.Unlock()
		d.Forwarded.Add(1)
		if msg.Trace != nil && skip == nil {
			if tel := d.cfg.Telemetry; tel != nil {
				tel.Tracer.Await(msg.ID, msg.Trace, now)
			}
		}
		return true, c.Node
	}
	return false, 0
}

// track retains an unacked forward for retransmission; to == 0 records a
// publication that could not be forwarded at all (no candidate tried yet).
func (d *Dispatcher) track(msg *core.Message, to core.NodeID) {
	tried := map[core.NodeID]bool{}
	if to != 0 {
		tried[to] = true
	}
	d.mu.Lock()
	capped := len(d.inflight) >= d.cfg.MaxInflight
	if !capped {
		d.inflight[msg.ID] = &inflightMsg{
			msg:      msg,
			tried:    tried,
			deadline: d.cfg.Now() + int64(d.cfg.RetryInterval),
		}
	}
	d.mu.Unlock()
	// Journaled even past the inflight cap so the message-ID watermark
	// survives a restart (the replay applies the same cap to the rebuilt
	// table; only the counter always advances).
	if d.jnl != nil {
		d.journal(recPending, (&wire.PublishBody{Msg: msg}).Encode())
	}
}

// retransmitLoop re-forwards unacked messages past their deadline.
func (d *Dispatcher) retransmitLoop() {
	defer d.wg.Done()
	// Half the retry interval keeps deadline overshoot under 50%; the clamp
	// keeps a sub-2ns RetryInterval (tests shrink it aggressively) from
	// panicking time.NewTicker and a tiny one from busy-spinning.
	tick := d.cfg.RetryInterval / 2
	if tick < time.Millisecond {
		tick = time.Millisecond
	}
	ticker := time.NewTicker(tick)
	defer ticker.Stop()
	for {
		select {
		case <-d.stop:
			return
		case <-ticker.C:
			d.retransmitDue()
		}
	}
}

// maxRetransmitAttempts bounds per-message retransmissions.
const maxRetransmitAttempts = 20

func (d *Dispatcher) retransmitDue() {
	now := d.cfg.Now()
	type dueMsg struct {
		inf   *inflightMsg
		tried map[core.NodeID]bool
	}
	d.mu.Lock()
	t := d.table
	var due []dueMsg
	for id, inf := range d.inflight {
		if inf.deadline > now {
			continue
		}
		inf.attempts++
		if inf.attempts > maxRetransmitAttempts {
			delete(d.inflight, id)
			continue
		}
		inf.deadline = now + int64(d.cfg.RetryInterval)
		// Snapshot tried under the lock: the busy-NACK handler mutates the
		// live map concurrently (also under the lock).
		due = append(due, dueMsg{inf: inf, tried: copyTried(inf.tried)})
	}
	d.mu.Unlock()
	if t == nil {
		return
	}
	for _, dm := range due {
		sent, to := d.forwardOnce(t, dm.inf.msg, dm.tried)
		if !sent {
			// Every candidate tried or unreachable: widen the net next
			// round (membership may have changed).
			d.mu.Lock()
			dm.inf.tried = map[core.NodeID]bool{}
			d.mu.Unlock()
			continue
		}
		d.Retransmits.Add(1)
		d.mu.Lock()
		dm.inf.tried[to] = true
		d.mu.Unlock()
	}
}

// InflightLen returns the number of retained unacked messages.
func (d *Dispatcher) InflightLen() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return len(d.inflight)
}

// BreakerTrips returns the circuit breaker's closed→open transition count
// (0 when circuit breaking is disabled).
func (d *Dispatcher) BreakerTrips() int64 {
	if d.breaker == nil {
		return 0
	}
	return d.breaker.Tripped.Value()
}

// handleJoin runs the paper's join protocol: split the most loaded
// matcher's segment on every dimension, hand the halves to the new matcher,
// and publish the new table.
func (d *Dispatcher) handleJoin(env *wire.Envelope) *wire.Envelope {
	b, err := wire.DecodeJoin(env.Body)
	if err != nil {
		return errEnv(d.cfg.ID, err)
	}
	d.mu.Lock()
	t := d.table
	if t == nil {
		d.mu.Unlock()
		return &wire.Envelope{Kind: wire.KindJoinAck, From: d.cfg.ID,
			Body: (&wire.JoinAckBody{Err: "dispatcher: cluster not bootstrapped"}).Encode()}
	}
	victims := d.victimsLocked(t)
	d.mu.Unlock()

	newTab, handovers, err := t.Join(b.ID, victims)
	if err != nil {
		return &wire.Envelope{Kind: wire.KindJoinAck, From: d.cfg.ID,
			Body: (&wire.JoinAckBody{Err: err.Error()}).Encode()}
	}
	for _, h := range handovers {
		addr, ok := d.gsp.AddrOf(h.From)
		if !ok {
			continue
		}
		ho := (&wire.HandoverBody{Dim: h.Dim, Low: h.Range.Low, High: h.Range.High, TargetAddr: b.Addr,
			TransferID: wire.TransferRangeID(h.From, newTab.Version(), h.Dim, h.Range.Low, h.Range.High)}).Encode()
		_ = d.cfg.Transport.Send(addr, &wire.Envelope{Kind: wire.KindHandover, From: d.cfg.ID, Body: ho})
	}
	d.SetTable(newTab)
	return &wire.Envelope{Kind: wire.KindJoinAck, From: d.cfg.ID,
		Body: (&wire.JoinAckBody{Table: newTab.Encode()}).Encode()}
}

// victimsLocked picks, per dimension, the matcher with the deepest reported
// queue (ties broken by stored subscriptions) — the paper's "most loaded
// matcher in each dimension".
func (d *Dispatcher) victimsLocked(t *partition.Table) []core.NodeID {
	k := t.K()
	victims := make([]core.NodeID, k)
	for dim := 0; dim < k; dim++ {
		bestQ, bestSubs := -1, -1
		for _, id := range t.Matchers() {
			q, subs := 0, 0
			if ls, ok := d.loads[id]; ok && dim < len(ls) {
				q, subs = ls[dim].QueueLen, ls[dim].Subs
			}
			if q > bestQ || (q == bestQ && subs > bestSubs) {
				bestQ, bestSubs = q, subs
				victims[dim] = id
			}
		}
	}
	return victims
}

// onLiveness reacts to matcher failures: after the recovery delay, the
// lowest-ID alive dispatcher removes the dead matcher from the table and
// every dispatcher re-installs its registry (paper Section IV-E).
func (d *Dispatcher) onLiveness(id core.NodeID, alive bool) {
	if alive {
		return
	}
	d.mu.Lock()
	t := d.table
	stopping := d.stopping
	if !stopping {
		d.wg.Add(1) // under mu: Stop sets stopping before Wait
	}
	d.mu.Unlock()
	if stopping {
		return
	}
	if t == nil || !t.HasMatcher(id) {
		d.wg.Done()
		return
	}
	go func() {
		defer d.wg.Done()
		select {
		case <-d.stop:
			return
		case <-time.After(d.cfg.RecoveryDelay):
		}
		if d.gsp.Alive(id) {
			return // transient: it came back
		}
		if !d.isLeader() {
			return // another dispatcher owns table surgery
		}
		d.mu.Lock()
		t := d.table
		d.mu.Unlock()
		if t == nil || !t.HasMatcher(id) {
			return
		}
		newTab, _, err := t.Leave(id)
		if err != nil {
			return
		}
		d.SetTable(newTab)
	}()
}

// isLeader reports whether this dispatcher has the lowest ID among alive
// dispatchers (the recovery coordinator).
func (d *Dispatcher) isLeader() bool {
	for _, p := range d.gsp.Peers() {
		if p.Role == core.RoleDispatcher && p.Alive && p.ID < d.cfg.ID {
			return false
		}
	}
	return true
}

// reconcile re-installs every registered subscription under table t —
// placements on new or takeover matchers get their copies, including the
// Section III-A1 neighbor-replication ones. Store is idempotent on
// matchers.
func (d *Dispatcher) reconcile(t *partition.Table) {
	d.mu.Lock()
	entries := make([]regEntry, 0, len(d.registry))
	for _, e := range d.registry {
		entries = append(entries, e)
	}
	d.mu.Unlock()
	for _, e := range entries {
		d.installSub(t, e.sub, e.addr)
	}
}

// tableWatchLoop adopts fresher tables seen in gossip.
func (d *Dispatcher) tableWatchLoop() {
	defer d.wg.Done()
	ticker := time.NewTicker(d.cfg.GossipInterval)
	defer ticker.Stop()
	for {
		select {
		case <-d.stop:
			return
		case <-ticker.C:
			raw, _, ok := d.gsp.HighestState(TableKey)
			if !ok {
				continue
			}
			t, err := partition.Decode(raw)
			if err != nil {
				continue
			}
			d.adoptIfNewer(t)
		}
	}
}

// tablePullLoop pulls the table from a random matcher periodically (the
// paper's 60·N-byte pull every 10 seconds), a safety net on top of gossip.
func (d *Dispatcher) tablePullLoop() {
	defer d.wg.Done()
	ticker := time.NewTicker(d.cfg.TablePullInterval)
	defer ticker.Stop()
	for {
		select {
		case <-d.stop:
			return
		case <-ticker.C:
			d.pullTable()
		}
	}
}

func (d *Dispatcher) pullTable() {
	var matchers []gossip.Peer
	for _, p := range d.gsp.Peers() {
		if p.Role == core.RoleMatcher && p.Alive {
			matchers = append(matchers, p)
		}
	}
	if len(matchers) == 0 {
		return
	}
	d.mu.Lock()
	target := matchers[d.rng.Intn(len(matchers))]
	d.mu.Unlock()
	resp, err := d.cfg.Transport.Request(target.Addr,
		&wire.Envelope{Kind: wire.KindTableRequest, From: d.cfg.ID}, 2*time.Second)
	if err != nil || resp.Kind != wire.KindTableResponse {
		return
	}
	d.PullBytes.Add(int64(len(resp.Body)))
	b, err := wire.DecodeTableResponse(resp.Body)
	if err != nil {
		return
	}
	t, err := partition.Decode(b.Table)
	if err != nil {
		return
	}
	d.adoptIfNewer(t)
}

// adoptIfNewer installs t when it supersedes the current view and
// reconciles the registry onto it.
func (d *Dispatcher) adoptIfNewer(t *partition.Table) {
	d.mu.Lock()
	if d.table != nil && t.Version() <= d.table.Version() {
		d.mu.Unlock()
		return
	}
	d.table = t
	d.mu.Unlock()
	d.reconcile(t)
}

// RegistrySize returns the number of subscriptions registered through this
// dispatcher.
func (d *Dispatcher) RegistrySize() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return len(d.registry)
}

// String renders a diagnostic label.
func (d *Dispatcher) String() string {
	return fmt.Sprintf("dispatcher{%v@%s}", d.cfg.ID, d.addr)
}
