package dispatcher

import (
	"testing"
	"time"

	"bluedove/internal/core"
	"bluedove/internal/partition"
	"bluedove/internal/store"
	"bluedove/internal/wire"
)

// TestRetryTickerClampSurvivesTinyInterval: a RetryInterval below 2ns used
// to panic time.NewTicker (interval/2 == 0); the retransmit loop clamps its
// tick to 1ms instead.
func TestRetryTickerClampSurvivesTinyInterval(t *testing.T) {
	h := newHarnessWith(t, func(c *Config) {
		c.Persistent = true
		c.RetryInterval = 1 // 1ns: interval/2 truncates to zero
	}, "m1")
	// The panic (pre-clamp) fired inside retransmitLoop's first statement;
	// give the goroutine time to reach it, then prove the node still works.
	time.Sleep(50 * time.Millisecond)
	if h.d.InflightLen() != 0 {
		t.Fatal("unexpected inflight state on an idle dispatcher")
	}
}

// TestJournalRestartRestoresRegistryAndInflight: a persistent dispatcher
// journaling to a data dir accepts a subscription and a publication whose
// forward is never acked, then crashes. The restart must rebuild the
// registry and the pending table from the journal, keep the ID counters
// monotonic, and retransmit the unacked publication.
func TestJournalRestartRestoresRegistryAndInflight(t *testing.T) {
	dir := t.TempDir()
	h := newHarnessWith(t, func(c *Config) {
		c.Persistent = true
		c.RetryInterval = 50 * time.Millisecond
		c.DataDir = dir
		c.Fsync = store.FsyncNever
	}, "m1")
	h.seedGossip(t, []core.NodeID{1}, []string{"m1"})
	tab, err := partition.NewUniform(testSpace, []core.NodeID{1})
	if err != nil {
		t.Fatal(err)
	}
	h.d.SetTable(tab)

	sub := core.NewSubscription(7, []core.Range{{Low: 0, High: 100}, {Low: 0, High: 100}})
	resp := h.request(t, wire.KindSubscribe, (&wire.SubscribeBody{Sub: sub, DeliverAddr: "peer"}).Encode())
	ack, err := wire.DecodeSubscribeAck(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	msg := core.NewMessage([]float64{50, 50}, []byte("pending"))
	if err := h.mesh.Endpoint("tester").Send("d1",
		&wire.Envelope{Kind: wire.KindPublish, Body: (&wire.PublishBody{Msg: msg}).Encode()}); err != nil {
		t.Fatal(err)
	}
	// The scripted matcher records the forward but never acks it.
	waitFor(t, func() bool { return h.d.InflightLen() == 1 })

	h.d.Stop()
	h.mesh.Unbind("d1")

	cfg := Config{
		ID:             100,
		Addr:           "d1",
		Space:          testSpace,
		Transport:      h.mesh.Endpoint("d1"),
		GossipInterval: 25 * time.Millisecond,
		RecoveryDelay:  100 * time.Millisecond,
		FailAfter:      300 * time.Millisecond,
		Generation:     2,
		Persistent:     true,
		RetryInterval:  50 * time.Millisecond,
		DataDir:        dir,
		Fsync:          store.FsyncNever,
	}
	d2, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := d2.Start(); err != nil {
		t.Fatal(err)
	}
	defer d2.Stop()

	if got := d2.RegistrySize(); got != 1 {
		t.Fatalf("restarted registry holds %d subscriptions, want 1", got)
	}
	if got := d2.InflightLen(); got != 1 {
		t.Fatalf("restarted pending table holds %d publications, want 1", got)
	}
	// The partition table is not journaled (gossip restores it in a real
	// cluster); reinstall it before exercising the restarted node.
	d2.SetTable(tab)

	// ID counters survived: a new subscription must not reuse the old ID
	// (reuse would poison client-side duplicate suppression).
	sub2 := core.NewSubscription(8, []core.Range{{Low: 0, High: 100}, {Low: 0, High: 100}})
	resp2, err := h.mesh.Endpoint("tester2").Request("d1",
		&wire.Envelope{Kind: wire.KindSubscribe,
			Body: (&wire.SubscribeBody{Sub: sub2, DeliverAddr: "peer"}).Encode()}, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	ack2, err := wire.DecodeSubscribeAck(resp2.Body)
	if err != nil {
		t.Fatal(err)
	}
	if ack2.ID == ack.ID {
		t.Fatalf("restarted dispatcher reissued subscription ID %v", ack.ID)
	}

	// The recovered pending publication is retransmitted (zero deadline,
	// first retry tick).
	before := len(h.received("m1", wire.KindForward))
	waitFor(t, func() bool { return len(h.received("m1", wire.KindForward)) > before })
}
