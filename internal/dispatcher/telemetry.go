package dispatcher

import (
	"bluedove/internal/core"
	"bluedove/internal/telemetry"
)

// registerTelemetry publishes the dispatcher's counters, gauges and latency
// histograms under the node's registry (stable dotted names; the registry's
// base labels identify the node). Called once from Start.
func (d *Dispatcher) registerTelemetry() {
	r := d.cfg.Telemetry.Registry
	r.Gauge("node.info", "constant 1; labels identify the node", func(int64) float64 { return 1 })
	r.Counter("dispatcher.published", "publications accepted from clients", &d.Published)
	r.Counter("dispatcher.forwarded", "publications forwarded to a matcher", &d.Forwarded)
	r.Counter("dispatcher.dropped_no_candidate", "publications dropped with no alive candidate", &d.DroppedNoCandidate)
	r.Counter("dispatcher.retransmits", "persistence re-forwards of unacked publications", &d.Retransmits)
	r.Counter("dispatcher.forward_batches", "ForwardBatch frames sent", &d.ForwardBatches)
	r.Counter("dispatcher.pull_bytes", "table-pull response traffic", &d.PullBytes)
	r.Counter("dispatcher.busy_received", "busy NACKs received from matchers", &d.BusyReceived)
	r.Counter("forward.rerouted", "publications re-routed to an alternate candidate after a busy NACK", &d.Rerouted)
	r.Counter("dispatcher.overloaded", "publications rejected at admission control", &d.Overloaded)
	// Registered even without a journal (always zero then) so the scrape
	// contract can require the series on every dispatcher.
	r.Counter("dispatcher.journal_errors", "journal appends/snapshots that failed", &d.JournalErrors)
	r.Gauge("dispatcher.inflight", "retained unacked publications", func(int64) float64 {
		return float64(d.InflightLen())
	})
	r.Gauge("dispatcher.routes", "tracked non-persistent forwards awaiting ack", func(int64) float64 {
		return float64(d.RoutesLen())
	})
	if d.breaker != nil {
		br := d.breaker
		r.Counter("forward.breaker_tripped", "circuit breaker closed-to-open transitions", &br.Tripped)
		r.Gauge("forward.breaker_open", "destinations with an open circuit breaker", func(int64) float64 {
			open, _ := br.Counts()
			return float64(open)
		})
		r.Gauge("forward.breaker_half_open", "destinations in the half-open probe window", func(int64) float64 {
			_, half := br.Counts()
			return float64(half)
		})
	}
	r.Gauge("dispatcher.registry_size", "subscriptions registered through this node", func(int64) float64 {
		return float64(d.RegistrySize())
	})
	r.Histogram("dispatcher.forward_latency_seconds",
		"ingest to forward-ack per traced publication", d.fwdLatency, 1e-9)
	r.Histogram("dispatcher.deliver_latency_seconds",
		"publish to first delivery per traced publication", d.e2eLatency, 1e-9)
	if d.jnl != nil {
		d.jnl.Register(r)
	}
	tr := d.cfg.Telemetry.Tracer
	r.Gauge("trace.pending", "traces awaiting their forward ack", func(int64) float64 {
		return float64(tr.PendingLen())
	})
	r.Gauge("trace.completed", "traces recorded on this node", func(int64) float64 {
		return float64(tr.Total())
	})
	r.Counter("gossip.bytes", "gossip payload traffic", &d.gsp.Bytes)
}

// completeTrace joins an acked trace context with the locally retained one,
// stamps the ack hop, retains the completed trace, and feeds the latency
// histograms.
func (d *Dispatcher) completeTrace(id core.MessageID, acked *core.TraceCtx) {
	now := d.cfg.Now()
	ctx := d.cfg.Telemetry.Tracer.CompleteAck(id, acked, now)
	if in := ctx.Hops[core.HopIngest]; in != 0 {
		d.fwdLatency.Observe(now - in)
	}
	if del, pub := ctx.Hops[core.HopDeliver], ctx.Hops[core.HopPublish]; del != 0 && pub != 0 {
		d.e2eLatency.Observe(del - pub)
	}
}

// Telemetry returns the node's telemetry bundle (nil when disabled).
func (d *Dispatcher) Telemetry() *telemetry.Telemetry { return d.cfg.Telemetry }
