package dispatcher

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"bluedove/internal/core"
	"bluedove/internal/forward"
	"bluedove/internal/gossip"
	"bluedove/internal/partition"
	"bluedove/internal/transport"
	"bluedove/internal/wire"
)

var testSpace = core.UniformSpace(2, 100)

// harness wires one dispatcher to a mesh with scripted matcher endpoints:
// each runs a real gossiper (so the dispatcher discovers it) but records,
// rather than processes, all other traffic.
type harness struct {
	mesh *transport.Mesh
	d    *Dispatcher
	mu   sync.Mutex
	recv map[string][]*wire.Envelope
	gsps []*gossip.Gossiper
}

func newHarness(t *testing.T, matcherAddrs ...string) *harness {
	t.Helper()
	return newHarnessWith(t, nil, matcherAddrs...)
}

// newHarnessWith is newHarness with a config hook applied before New.
func newHarnessWith(t *testing.T, mutate func(*Config), matcherAddrs ...string) *harness {
	t.Helper()
	h := &harness{mesh: transport.NewMesh(0), recv: make(map[string][]*wire.Envelope)}
	for i, addr := range matcherAddrs {
		addr := addr
		ep := h.mesh.Endpoint(addr)
		g, err := gossip.New(gossip.Config{
			ID:         core.NodeID(i + 1),
			Addr:       addr,
			Role:       core.RoleMatcher,
			Transport:  ep,
			Seeds:      []string{"d1"},
			Interval:   25 * time.Millisecond,
			FailAfter:  300 * time.Millisecond,
			Generation: 1,
		})
		if err != nil {
			t.Fatal(err)
		}
		h.gsps = append(h.gsps, g)
		if _, err := ep.Listen(addr, func(env *wire.Envelope) *wire.Envelope {
			if env.Kind == wire.KindGossip {
				return g.HandleGossip(env)
			}
			h.mu.Lock()
			h.recv[addr] = append(h.recv[addr], env)
			h.mu.Unlock()
			return nil
		}); err != nil {
			t.Fatal(err)
		}
	}
	cfg := Config{
		ID:             100,
		Addr:           "d1",
		Space:          testSpace,
		Transport:      h.mesh.Endpoint("d1"),
		GossipInterval: 25 * time.Millisecond,
		RecoveryDelay:  100 * time.Millisecond,
		FailAfter:      300 * time.Millisecond,
		Generation:     1,
	}
	if mutate != nil {
		mutate(&cfg)
	}
	d, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Start(); err != nil {
		t.Fatal(err)
	}
	h.d = d
	for _, g := range h.gsps {
		g.Start()
	}
	t.Cleanup(func() {
		for _, g := range h.gsps {
			g.Stop()
		}
		d.Stop()
		h.mesh.Close()
	})
	return h
}

// seedGossip waits until the dispatcher's gossip view resolves every listed
// matcher.
func (h *harness) seedGossip(t *testing.T, ids []core.NodeID, addrs []string) {
	t.Helper()
	waitFor(t, func() bool {
		for i, id := range ids {
			addr, ok := h.d.Gossiper().AddrOf(id)
			if !ok || addr != addrs[i] {
				return false
			}
		}
		return true
	})
}

var _ = fmt.Sprint // keep fmt imported for debug helpers

func (h *harness) received(addr string, kind wire.Kind) []*wire.Envelope {
	h.mu.Lock()
	defer h.mu.Unlock()
	var out []*wire.Envelope
	for _, e := range h.recv[addr] {
		if e.Kind == kind {
			out = append(out, e)
		}
	}
	return out
}

func (h *harness) request(t *testing.T, kind wire.Kind, body []byte) *wire.Envelope {
	t.Helper()
	ep := h.mesh.Endpoint("tester")
	resp, err := ep.Request("d1", &wire.Envelope{Kind: kind, Body: body}, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func (h *harness) send(t *testing.T, kind wire.Kind, from core.NodeID, body []byte) {
	t.Helper()
	ep := h.mesh.Endpoint("tester2")
	if err := ep.Send("d1", &wire.Envelope{Kind: kind, From: from, Body: body}); err != nil {
		t.Fatal(err)
	}
}

func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatal("condition not reached in time")
}

func table(t *testing.T, ids ...core.NodeID) *partition.Table {
	t.Helper()
	tab, err := partition.NewUniform(testSpace, ids)
	if err != nil {
		t.Fatal(err)
	}
	return tab
}

func TestSubscribeInstallsOnMatchers(t *testing.T) {
	h := newHarness(t, "m1", "m2")
	h.seedGossip(t, []core.NodeID{1, 2}, []string{"m1", "m2"})
	h.d.SetTable(table(t, 1, 2))

	sub := core.NewSubscription(7, []core.Range{{Low: 0, High: 100}, {Low: 0, High: 100}})
	resp := h.request(t, wire.KindSubscribe, (&wire.SubscribeBody{Sub: sub, DeliverAddr: "cl"}).Encode())
	if resp.Kind != wire.KindSubscribeAck {
		t.Fatalf("resp: %v", resp.Kind)
	}
	ack, err := wire.DecodeSubscribeAck(resp.Body)
	if err != nil || ack.ID == 0 {
		t.Fatalf("ack: %+v %v", ack, err)
	}
	// The wide subscription overlaps both matchers' segments on both dims.
	waitFor(t, func() bool {
		return len(h.received("m1", wire.KindStore)) >= 2 && len(h.received("m2", wire.KindStore)) >= 2
	})
	st, err := wire.DecodeStore(h.received("m1", wire.KindStore)[0].Body)
	if err != nil || st.DeliverAddr != "cl" || st.Sub.ID != ack.ID {
		t.Fatalf("store: %+v %v", st, err)
	}
	if h.d.RegistrySize() != 1 {
		t.Errorf("registry = %d", h.d.RegistrySize())
	}
}

func TestSubscribeWithoutTableRejected(t *testing.T) {
	h := newHarness(t)
	sub := core.NewSubscription(7, []core.Range{{Low: 0, High: 1}, {Low: 0, High: 1}})
	resp := h.request(t, wire.KindSubscribe, (&wire.SubscribeBody{Sub: sub}).Encode())
	if resp.Kind != wire.KindError {
		t.Fatalf("resp: %v", resp.Kind)
	}
}

func TestSubscribeInvalidRejected(t *testing.T) {
	h := newHarness(t, "m1")
	h.seedGossip(t, []core.NodeID{1}, []string{"m1"})
	h.d.SetTable(table(t, 1))
	sub := core.NewSubscription(7, []core.Range{{Low: 5, High: 1}, {Low: 0, High: 1}}) // inverted
	resp := h.request(t, wire.KindSubscribe, (&wire.SubscribeBody{Sub: sub}).Encode())
	if resp.Kind != wire.KindError {
		t.Fatalf("resp: %v", resp.Kind)
	}
}

func TestPublishForwardsToCandidate(t *testing.T) {
	h := newHarness(t, "m1", "m2")
	h.seedGossip(t, []core.NodeID{1, 2}, []string{"m1", "m2"})
	h.d.SetTable(table(t, 1, 2))
	msg := core.NewMessage([]float64{10, 90}, nil)
	h.send(t, wire.KindPublish, 0, (&wire.PublishBody{Msg: msg}).Encode())
	waitFor(t, func() bool {
		return len(h.received("m1", wire.KindForward))+len(h.received("m2", wire.KindForward)) == 1
	})
	if h.d.Forwarded.Value() != 1 || h.d.Published.Value() != 1 {
		t.Errorf("counters: %d %d", h.d.Forwarded.Value(), h.d.Published.Value())
	}
	// The forwarded message carries an assigned ID and timestamp.
	var env *wire.Envelope
	if es := h.received("m1", wire.KindForward); len(es) > 0 {
		env = es[0]
	} else {
		env = h.received("m2", wire.KindForward)[0]
	}
	fw, err := wire.DecodeForward(env.Body)
	if err != nil || fw.Msg.ID == 0 || fw.Msg.PublishedAt == 0 {
		t.Fatalf("forward: %+v %v", fw, err)
	}
}

func TestPublishWithoutTableDropped(t *testing.T) {
	h := newHarness(t)
	msg := core.NewMessage([]float64{10, 90}, nil)
	h.send(t, wire.KindPublish, 0, (&wire.PublishBody{Msg: msg}).Encode())
	waitFor(t, func() bool { return h.d.DroppedNoCandidate.Value() == 1 })
}

func TestLoadReportUpdatesView(t *testing.T) {
	h := newHarness(t, "m1")
	h.seedGossip(t, []core.NodeID{1}, []string{"m1"})
	h.d.SetTable(table(t, 1))
	loads := []forward.DimLoad{
		{Subs: 11, QueueLen: 3, ArrivalRate: 5, MatchRate: 9, ReportedAt: 111},
		{Subs: 22, QueueLen: 0, ArrivalRate: 0, MatchRate: 1, ReportedAt: 111},
	}
	h.send(t, wire.KindLoadReport, 1, (&wire.LoadReportBody{Loads: loads}).Encode())
	waitFor(t, func() bool {
		l, ok := h.d.Load(1, 0)
		return ok && l.Subs == 11 && l.QueueLen == 3
	})
	if _, ok := h.d.Load(1, 9); ok {
		t.Error("out-of-range dim reported")
	}
	if _, ok := h.d.Load(42, 0); ok {
		t.Error("unknown node reported")
	}
}

func TestPendingCountsFoldedIntoLoad(t *testing.T) {
	h := newHarness(t, "m1")
	h.seedGossip(t, []core.NodeID{1}, []string{"m1"})
	h.d.SetTable(table(t, 1))
	loads := []forward.DimLoad{{MatchRate: 100, ReportedAt: 1}, {MatchRate: 100, ReportedAt: 1}}
	h.send(t, wire.KindLoadReport, 1, (&wire.LoadReportBody{Loads: loads}).Encode())
	waitFor(t, func() bool { _, ok := h.d.Load(1, 0); return ok })
	// Publish a few messages; each forward increments pending for (1, dim).
	for i := 0; i < 3; i++ {
		msg := core.NewMessage([]float64{10, 90}, nil)
		h.send(t, wire.KindPublish, 0, (&wire.PublishBody{Msg: msg}).Encode())
	}
	waitFor(t, func() bool { return h.d.Forwarded.Value() == 3 })
	total := 0.0
	for dim := 0; dim < 2; dim++ {
		if l, ok := h.d.Load(1, dim); ok {
			total += l.PendingLocal
		}
	}
	if total < 3 {
		t.Errorf("pending total = %g, want >= 3", total)
	}
	// A fresh report resets pending.
	h.send(t, wire.KindLoadReport, 1, (&wire.LoadReportBody{Loads: loads}).Encode())
	waitFor(t, func() bool {
		l, _ := h.d.Load(1, 0)
		l2, _ := h.d.Load(1, 1)
		return l.PendingLocal == 0 && l2.PendingLocal == 0
	})
}

func TestDeliverQueuedAndPolled(t *testing.T) {
	h := newHarness(t)
	msg := core.NewMessage([]float64{1, 2}, []byte("p"))
	msg.ID = 9
	d := &wire.DeliverBody{Subscriber: 5, Msg: msg, SubIDs: []core.SubscriptionID{3}}
	h.send(t, wire.KindDeliver, 1, d.Encode())
	waitFor(t, func() bool { return h.d.Queues().Len(5) == 1 })

	resp := h.request(t, wire.KindPoll, (&wire.PollBody{Subscriber: 5, Max: 10}).Encode())
	if resp.Kind != wire.KindPollResponse {
		t.Fatalf("resp: %v", resp.Kind)
	}
	pr, err := wire.DecodePollResponse(resp.Body)
	if err != nil || len(pr.Deliveries) != 1 || pr.Deliveries[0].Msg.ID != 9 {
		t.Fatalf("poll: %+v %v", pr, err)
	}
}

func TestJoinSplitsAndPublishesTable(t *testing.T) {
	h := newHarness(t, "m1", "m2", "m3")
	h.seedGossip(t, []core.NodeID{1, 2}, []string{"m1", "m2"})
	h.d.SetTable(table(t, 1, 2))
	resp := h.request(t, wire.KindJoin, (&wire.JoinBody{ID: 3, Addr: "m3"}).Encode())
	ack, err := wire.DecodeJoinAck(resp.Body)
	if err != nil || ack.Err != "" {
		t.Fatalf("ack: %+v %v", ack, err)
	}
	newTab, err := partition.Decode(ack.Table)
	if err != nil || newTab.N() != 3 || !newTab.HasMatcher(3) {
		t.Fatalf("table: %v %v", newTab, err)
	}
	// Handover instructions reached the victims.
	waitFor(t, func() bool {
		return len(h.received("m1", wire.KindHandover))+len(h.received("m2", wire.KindHandover)) == 2
	})
	if h.d.Table().Version() != newTab.Version() {
		t.Error("dispatcher did not adopt the new table")
	}
}

func TestTableRequestServed(t *testing.T) {
	h := newHarness(t, "m1")
	h.seedGossip(t, []core.NodeID{1}, []string{"m1"})
	h.d.SetTable(table(t, 1))
	resp := h.request(t, wire.KindTableRequest, nil)
	if resp.Kind != wire.KindTableResponse {
		t.Fatalf("resp: %v", resp.Kind)
	}
	b, err := wire.DecodeTableResponse(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := partition.Decode(b.Table); err != nil {
		t.Fatal(err)
	}
}

func TestSetTableIgnoresStale(t *testing.T) {
	h := newHarness(t, "m1", "m2")
	h.seedGossip(t, []core.NodeID{1, 2}, []string{"m1", "m2"})
	t2, _, err := table(t, 1, 2).Join(9, []core.NodeID{1, 1})
	if err != nil {
		t.Fatal(err)
	}
	h.d.SetTable(t2)
	h.d.SetTable(table(t, 1, 2)) // stale v1
	if h.d.Table().Version() != t2.Version() {
		t.Error("stale table adopted")
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Error("empty config accepted")
	}
}

// newMesh and newTestGossiper are shared helpers for harness variants.
func newMesh(t *testing.T) *transport.Mesh {
	t.Helper()
	return transport.NewMesh(0)
}

func newTestGossiper(t *testing.T, tr transport.Transport, id core.NodeID, addr string) *gossip.Gossiper {
	t.Helper()
	g, err := gossip.New(gossip.Config{
		ID: id, Addr: addr, Role: core.RoleMatcher, Transport: tr,
		Seeds: []string{"d1"}, Interval: 25 * time.Millisecond,
		FailAfter: 300 * time.Millisecond, Generation: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	return g
}
