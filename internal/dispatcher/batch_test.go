package dispatcher

import (
	"testing"
	"time"

	"bluedove/internal/core"
	"bluedove/internal/wire"
)

// batchEntries sums the decoded entries of all ForwardBatch frames seen by
// one matcher endpoint.
func (h *harness) batchEntries(t *testing.T, addr string) []wire.ForwardEntry {
	t.Helper()
	var out []wire.ForwardEntry
	for _, e := range h.received(addr, wire.KindForwardBatch) {
		b, err := wire.DecodeForwardBatch(e.Body)
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, b.Entries...)
	}
	return out
}

func TestForwardBatchingCoalesces(t *testing.T) {
	h := newHarnessWith(t, func(c *Config) {
		c.ForwardLinger = 5 * time.Millisecond
	}, "m1")
	h.seedGossip(t, []core.NodeID{1}, []string{"m1"})
	h.d.SetTable(table(t, 1))

	const n = 10
	for i := 0; i < n; i++ {
		msg := core.NewMessage([]float64{float64(i * 5), 50}, nil)
		h.send(t, wire.KindPublish, 0, (&wire.PublishBody{Msg: msg}).Encode())
	}
	waitFor(t, func() bool { return len(h.batchEntries(t, "m1")) == n })

	if got := len(h.received("m1", wire.KindForward)); got != 0 {
		t.Errorf("%d unbatched Forward frames with batching on", got)
	}
	frames := h.d.ForwardBatches.Value()
	if frames < 1 || frames >= n {
		t.Errorf("ForwardBatches = %d, want coalescing (1..%d)", frames, n-1)
	}
	if h.d.Forwarded.Value() != n {
		t.Errorf("Forwarded = %d", h.d.Forwarded.Value())
	}
}

func TestForwardBatchFlushesOnCount(t *testing.T) {
	h := newHarnessWith(t, func(c *Config) {
		c.ForwardLinger = time.Hour // linger never fires in this test
		c.ForwardBatchCount = 4
	}, "m1")
	h.seedGossip(t, []core.NodeID{1}, []string{"m1"})
	h.d.SetTable(table(t, 1))

	for i := 0; i < 4; i++ {
		msg := core.NewMessage([]float64{10, 50}, nil)
		h.send(t, wire.KindPublish, 0, (&wire.PublishBody{Msg: msg}).Encode())
	}
	// The count threshold must flush without any linger expiry.
	waitFor(t, func() bool { return len(h.batchEntries(t, "m1")) == 4 })
	if h.d.ForwardBatches.Value() != 1 {
		t.Errorf("ForwardBatches = %d, want 1", h.d.ForwardBatches.Value())
	}
}

func TestForwardBatchFlushedOnStop(t *testing.T) {
	h := newHarnessWith(t, func(c *Config) {
		c.ForwardLinger = time.Hour
	}, "m1")
	h.seedGossip(t, []core.NodeID{1}, []string{"m1"})
	h.d.SetTable(table(t, 1))

	msg := core.NewMessage([]float64{10, 50}, nil)
	h.send(t, wire.KindPublish, 0, (&wire.PublishBody{Msg: msg}).Encode())
	waitFor(t, func() bool { return h.d.Forwarded.Value() == 1 })
	h.d.Stop() // idempotent with the cleanup Stop
	// The flush completes before Stop returns, but the in-proc transport
	// delivers the frame to the capture endpoint asynchronously.
	waitFor(t, func() bool { return len(h.batchEntries(t, "m1")) == 1 })
}

func TestForwardAckBatchClearsInflight(t *testing.T) {
	h := newHarnessWith(t, func(c *Config) {
		c.Persistent = true
		c.ForwardLinger = time.Millisecond
	}, "m1")
	h.seedGossip(t, []core.NodeID{1}, []string{"m1"})
	h.d.SetTable(table(t, 1))

	const n = 3
	for i := 0; i < n; i++ {
		msg := core.NewMessage([]float64{20, 50}, nil)
		h.send(t, wire.KindPublish, 0, (&wire.PublishBody{Msg: msg}).Encode())
	}
	waitFor(t, func() bool { return h.d.InflightLen() == n })

	entries := h.batchEntries(t, "m1")
	ids := make([]core.MessageID, 0, n)
	for _, e := range entries {
		ids = append(ids, e.Msg.ID)
	}
	h.send(t, wire.KindForwardAckBatch, 1, (&wire.ForwardAckBatchBody{IDs: ids}).Encode())
	waitFor(t, func() bool { return h.d.InflightLen() == 0 })
}

func TestDeliverBatchFiledIntoQueues(t *testing.T) {
	h := newHarness(t, "m1")
	msg := core.NewMessage([]float64{1, 2}, []byte("p"))
	msg.ID = 9
	db := &wire.DeliverBatchBody{Deliveries: []wire.DeliverBody{
		{Subscriber: 7, Msg: msg, SubIDs: []core.SubscriptionID{70}},
		{Subscriber: 7, Msg: msg, SubIDs: []core.SubscriptionID{71}},
		{Subscriber: 8, Msg: msg, SubIDs: []core.SubscriptionID{80}},
	}}
	h.send(t, wire.KindDeliverBatch, 1, db.Encode())
	waitFor(t, func() bool { return h.d.Queues().Len(7) == 2 && h.d.Queues().Len(8) == 1 })
	polled := h.d.Queues().Poll(7, 10)
	if len(polled) != 2 || polled[0].Msg.ID != 9 {
		t.Errorf("subscriber 7 poll: %+v", polled)
	}
}
