// Package seda provides the staged event-driven architecture building block
// BlueDove's matchers are built on (the paper inherits SEDA from Cassandra):
// a Stage is a bounded FIFO queue drained by a fixed worker pool, with the
// instrumentation the adaptive forwarding policy needs — queue length,
// arrival rate λ, and service capacity μ (workers over smoothed per-item
// service time).
//
// A matcher runs one stage per searchable dimension ("a separate queue is
// used to store incoming messages on each dimension", paper Section III-B1).
package seda

import (
	"errors"
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"bluedove/internal/metrics"
)

// ErrOverflow is returned by Enqueue when the stage queue is full.
var ErrOverflow = errors.New("seda: stage queue full")

// ErrStopped is returned by Enqueue after Stop.
var ErrStopped = errors.New("seda: stage stopped")

// Stage is a bounded queue plus worker pool processing items of type T.
type Stage[T any] struct {
	name    string
	queue   chan T
	workers int
	handler func(T)
	weight  func(T) int64

	mu      sync.Mutex
	stopped bool
	wg      sync.WaitGroup

	arrivals    *metrics.RateMeter
	serviceEWMA atomic.Uint64 // float64 bits, smoothed ns/item
	processed   metrics.Counter
	dropped     metrics.Counter
	backlog     atomic.Int64 // weighted events enqueued but not yet completed
	now         func() int64
}

// Config parameterizes a stage.
type Config[T any] struct {
	// Name labels the stage in diagnostics.
	Name string
	// Depth is the queue capacity (default 65536).
	Depth int
	// Workers is the pool size (default 1).
	Workers int
	// RateWindow is the λ measurement window (default 2s).
	RateWindow time.Duration
	// Now supplies the clock (default time.Now).
	Now func() int64
	// Weight, when set, reports how many logical events one item carries
	// (a batch of n messages weighs n). λ, μ and the processed counter are
	// then kept in per-event units — a stage draining 100-message batches
	// reports the same rates as one draining 100 single messages — so the
	// adaptive forwarding policy's extrapolation stays correct under
	// batching. Default: every item weighs 1.
	Weight func(T) int64
}

// New builds and starts a stage processing items with fn.
func New[T any](cfg Config[T], fn func(T)) *Stage[T] {
	if cfg.Depth <= 0 {
		cfg.Depth = 65536
	}
	if cfg.Workers <= 0 {
		cfg.Workers = 1
	}
	if cfg.RateWindow <= 0 {
		cfg.RateWindow = 2 * time.Second
	}
	if cfg.Now == nil {
		cfg.Now = func() int64 { return time.Now().UnixNano() }
	}
	s := &Stage[T]{
		name:     cfg.Name,
		queue:    make(chan T, cfg.Depth),
		workers:  cfg.Workers,
		handler:  fn,
		weight:   cfg.Weight,
		arrivals: metrics.NewRateMeter(cfg.RateWindow, 8),
		now:      cfg.Now,
	}
	for i := 0; i < cfg.Workers; i++ {
		s.wg.Add(1)
		go s.work()
	}
	return s
}

func (s *Stage[T]) work() {
	defer s.wg.Done()
	for item := range s.queue {
		w := s.weightOf(item)
		start := s.now()
		s.handler(item)
		// Per-event service time: a batch's wall time divided by its weight,
		// so μ stays in events/second.
		s.observeService(float64(s.now()-start) / float64(w))
		s.processed.Add(w)
		s.backlog.Add(-w)
	}
}

func (s *Stage[T]) weightOf(item T) int64 {
	if s.weight == nil {
		return 1
	}
	if w := s.weight(item); w > 0 {
		return w
	}
	return 1
}

// observeService folds one service time into the EWMA.
func (s *Stage[T]) observeService(ns float64) {
	const alpha = 0.1
	for {
		old := s.serviceEWMA.Load()
		cur := math.Float64frombits(old)
		var next float64
		if cur == 0 {
			next = ns
		} else {
			next = cur + alpha*(ns-cur)
		}
		if s.serviceEWMA.CompareAndSwap(old, math.Float64bits(next)) {
			return
		}
	}
}

// Name returns the stage label.
func (s *Stage[T]) Name() string { return s.name }

// Enqueue adds an item, failing fast when the queue is full or the stage is
// stopped (backpressure instead of unbounded memory).
func (s *Stage[T]) Enqueue(item T) error {
	s.mu.Lock()
	if s.stopped {
		s.mu.Unlock()
		return ErrStopped
	}
	select {
	case s.queue <- item:
		w := s.weightOf(item)
		s.arrivals.Mark(s.now(), w)
		s.backlog.Add(w)
		s.mu.Unlock()
		return nil
	default:
		s.dropped.Add(s.weightOf(item))
		s.mu.Unlock()
		return fmt.Errorf("%w: %s", ErrOverflow, s.name)
	}
}

// Stop drains and terminates the workers. Items already queued are
// processed; subsequent Enqueues fail.
func (s *Stage[T]) Stop() {
	s.mu.Lock()
	if s.stopped {
		s.mu.Unlock()
		return
	}
	s.stopped = true
	close(s.queue)
	s.mu.Unlock()
	s.wg.Wait()
}

// Len returns the current queue length in items (a batch counts as one).
func (s *Stage[T]) Len() int { return len(s.queue) }

// EventLen returns the weighted backlog: logical events enqueued but not
// yet completed. With batching this is the queue length the adaptive
// forwarding policy must see (a queue of 2 batches × 64 messages is a
// backlog of 128, not 2).
func (s *Stage[T]) EventLen() int {
	n := s.backlog.Load()
	if n < 0 {
		n = 0
	}
	return int(n)
}

// Processed returns the number of items completed.
func (s *Stage[T]) Processed() int64 { return s.processed.Value() }

// Dropped returns the number of items rejected by backpressure.
func (s *Stage[T]) Dropped() int64 { return s.dropped.Value() }

// ArrivalRate returns λ, the arrivals/second over the rate window.
func (s *Stage[T]) ArrivalRate() float64 { return s.arrivals.Rate(s.now()) }

// ServiceCapacity returns μ, items/second the pool can sustain: workers
// divided by the smoothed per-item service time. Zero until the first item
// completes.
func (s *Stage[T]) ServiceCapacity() float64 {
	ewma := math.Float64frombits(s.serviceEWMA.Load())
	if ewma <= 0 {
		return 0
	}
	return float64(s.workers) * float64(time.Second) / ewma
}

// SeedServiceTime initializes the service-time estimate (ns/item) so load
// reports are meaningful before the first item is processed.
func (s *Stage[T]) SeedServiceTime(ns float64) {
	if ns <= 0 {
		return
	}
	s.serviceEWMA.CompareAndSwap(0, math.Float64bits(ns))
}
