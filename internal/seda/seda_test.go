package seda

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestProcessesAllItems(t *testing.T) {
	var sum atomic.Int64
	s := New(Config[int]{Name: "t", Workers: 4}, func(v int) { sum.Add(int64(v)) })
	want := int64(0)
	for i := 1; i <= 1000; i++ {
		if err := s.Enqueue(i); err != nil {
			t.Fatal(err)
		}
		want += int64(i)
	}
	s.Stop()
	if got := sum.Load(); got != want {
		t.Fatalf("sum = %d, want %d", got, want)
	}
	if s.Processed() != 1000 {
		t.Fatalf("Processed = %d", s.Processed())
	}
	if s.Name() != "t" {
		t.Error("Name")
	}
}

func TestSingleWorkerPreservesOrder(t *testing.T) {
	var mu sync.Mutex
	var got []int
	s := New(Config[int]{Workers: 1}, func(v int) {
		mu.Lock()
		got = append(got, v)
		mu.Unlock()
	})
	for i := 0; i < 500; i++ {
		if err := s.Enqueue(i); err != nil {
			t.Fatal(err)
		}
	}
	s.Stop()
	for i, v := range got {
		if v != i {
			t.Fatalf("order broken at %d: %d", i, v)
		}
	}
}

func TestBackpressure(t *testing.T) {
	block := make(chan struct{})
	s := New(Config[int]{Depth: 4, Workers: 1}, func(int) { <-block })
	defer func() { close(block); s.Stop() }()
	// 1 in service + 4 queued fit; the next overflows.
	overflowed := false
	for i := 0; i < 10; i++ {
		if err := s.Enqueue(i); err != nil {
			if !errors.Is(err, ErrOverflow) {
				t.Fatalf("unexpected error: %v", err)
			}
			overflowed = true
			break
		}
		time.Sleep(time.Millisecond) // let the worker pick up the first item
	}
	if !overflowed {
		t.Fatal("queue never overflowed")
	}
	if s.Dropped() == 0 {
		t.Error("Dropped not counted")
	}
}

func TestEnqueueAfterStop(t *testing.T) {
	s := New(Config[int]{}, func(int) {})
	s.Stop()
	if err := s.Enqueue(1); !errors.Is(err, ErrStopped) {
		t.Fatalf("err = %v, want ErrStopped", err)
	}
	s.Stop() // idempotent
}

func TestMeters(t *testing.T) {
	now := int64(0)
	clock := func() int64 { return atomic.LoadInt64(&now) }
	s := New(Config[int]{Workers: 2, Now: clock}, func(int) {
		atomic.AddInt64(&now, int64(10*time.Millisecond)) // simulated work
	})
	if s.ServiceCapacity() != 0 {
		t.Error("capacity before first item should be 0")
	}
	s.SeedServiceTime(float64(5 * time.Millisecond))
	if got := s.ServiceCapacity(); got < 390 || got > 410 {
		t.Errorf("seeded capacity = %g, want ~400", got)
	}
	for i := 0; i < 50; i++ {
		if err := s.Enqueue(i); err != nil {
			t.Fatal(err)
		}
	}
	s.Stop()
	// EWMA converges toward 10ms/item → capacity ≈ 2 workers / 10ms = 200.
	if got := s.ServiceCapacity(); got < 150 || got > 450 {
		t.Errorf("capacity = %g, want ~200", got)
	}
	if s.ArrivalRate() <= 0 {
		t.Error("arrival rate not measured")
	}
	// Seeding after observations must not overwrite.
	before := s.ServiceCapacity()
	s.SeedServiceTime(1)
	if s.ServiceCapacity() != before {
		t.Error("SeedServiceTime overwrote a live estimate")
	}
	s.SeedServiceTime(-5) // ignored
}

func TestLen(t *testing.T) {
	block := make(chan struct{})
	s := New(Config[int]{Depth: 100, Workers: 1}, func(int) { <-block })
	for i := 0; i < 10; i++ {
		s.Enqueue(i)
	}
	time.Sleep(10 * time.Millisecond)
	if l := s.Len(); l < 8 || l > 10 {
		t.Errorf("Len = %d, want ~9 (one in service)", l)
	}
	close(block)
	s.Stop()
	if s.Len() != 0 {
		t.Errorf("Len after Stop = %d", s.Len())
	}
}

func TestConcurrentEnqueue(t *testing.T) {
	var count atomic.Int64
	s := New(Config[int]{Depth: 100000, Workers: 4}, func(int) { count.Add(1) })
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 2000; i++ {
				for s.Enqueue(i) != nil {
					time.Sleep(time.Microsecond)
				}
			}
		}()
	}
	wg.Wait()
	s.Stop()
	if count.Load() != 16000 {
		t.Fatalf("processed %d, want 16000", count.Load())
	}
}

func TestWeightedItems(t *testing.T) {
	var sum atomic.Int64
	s := New(Config[int]{Workers: 1, Weight: func(v int) int64 { return int64(v) }},
		func(v int) { sum.Add(int64(v)) })
	for i := 0; i < 4; i++ {
		if err := s.Enqueue(8); err != nil { // four "batches" of 8 events each
			t.Fatal(err)
		}
	}
	s.Stop()
	if sum.Load() != 32 {
		t.Fatalf("sum = %d", sum.Load())
	}
	if got := s.Processed(); got != 32 {
		t.Errorf("Processed() = %d, want 32 (weighted)", got)
	}
	if got := s.EventLen(); got != 0 {
		t.Errorf("EventLen() = %d after drain", got)
	}
	if got := s.Dropped(); got != 0 {
		t.Errorf("Dropped() = %d", got)
	}
}

func TestWeightedBacklogAndDrops(t *testing.T) {
	block := make(chan struct{})
	s := New(Config[int]{Depth: 2, Workers: 1, Weight: func(v int) int64 { return int64(v) }},
		func(int) { <-block })
	// First item is picked up by the worker (and blocks in the handler);
	// two more fill the queue.
	if err := s.Enqueue(10); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for s.Len() != 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond) // let the worker pick up the first item
	}
	for i := 0; i < 2; i++ {
		if err := s.Enqueue(10); err != nil {
			t.Fatal(err)
		}
	}
	if s.Len() != 2 || s.EventLen() != 30 {
		t.Fatalf("Len=%d EventLen=%d, want 2/30", s.Len(), s.EventLen())
	}
	if err := s.Enqueue(10); err == nil {
		t.Fatal("overflow accepted")
	}
	if got := s.Dropped(); got != 10 {
		t.Errorf("Dropped() = %d, want weighted 10", got)
	}
	close(block)
	s.Stop()
	if got := s.EventLen(); got != 0 {
		t.Errorf("EventLen() = %d after drain", got)
	}
}
