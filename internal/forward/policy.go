// Package forward implements BlueDove's performance-aware message forwarding
// (paper Section III-B): given a message's k candidate matchers, a policy
// ranks them so the dispatcher can send the message to the most favourable
// one, falling back along the ranking when a candidate has failed.
//
// Four policies are provided, matching the four evaluated in Figure 7:
//
//   - Adaptive: estimates each candidate's current per-dimension queue by
//     linear extrapolation from the matcher's last (λ, μ, q) report —
//     q(t) = q0 + (λ−μ)(t−t0) — and ranks by estimated processing time
//     (q+1)/μ. This is BlueDove's default.
//   - ResponseTime: ranks by (q0+1)/μ using the last report as-is, without
//     extrapolation.
//   - SubscriptionAmount: ranks by the number of subscriptions stored in the
//     candidate's corresponding dimension set.
//   - Random: uniform random choice; the baseline.
package forward

import (
	"math"
	"math/rand"
	"sort"
	"sync"
	"time"

	"bluedove/internal/core"
	"bluedove/internal/partition"
)

// DimLoad is one matcher's most recent load report for one of its k
// per-dimension subscription sets (paper Section III-B2). Matchers publish
// one DimLoad per dimension to all dispatchers.
type DimLoad struct {
	// Subs is |Si(Mj)|: subscriptions stored along this dimension.
	Subs int
	// QueueLen is q^i: messages waiting in this dimension's queue at
	// ReportedAt.
	QueueLen int
	// ArrivalRate is λ^i in messages/second over the report window.
	ArrivalRate float64
	// MatchRate is μ^i in messages/second over the report window.
	MatchRate float64
	// ReportedAt is t0, the cluster-clock time (ns) the report was taken.
	ReportedAt int64
	// PendingLocal is the dispatcher's own estimate of messages added to
	// this queue since the report that the reported λ does not yet reflect —
	// its forwards to (node, dim) since ReportedAt, scaled by the dispatcher
	// count. This is what lets the adaptive policy see a burst it is itself
	// creating before the next report (the Figure 4 "with estimation"
	// behaviour) instead of herding every message onto the coldest matcher
	// for a whole report interval.
	PendingLocal float64
}

// EstimatedQueue extrapolates the queue length to time now:
// q(t) = q0 + (λ−μ)(t−t0), floored at zero (paper Section III-B2), plus the
// dispatcher's own not-yet-reported forwards (PendingLocal).
func (l DimLoad) EstimatedQueue(now int64) float64 {
	dt := float64(now-l.ReportedAt) / float64(time.Second)
	if dt < 0 {
		dt = 0
	}
	q := float64(l.QueueLen) + (l.ArrivalRate-l.MatchRate)*dt + l.PendingLocal
	if q < 0 {
		q = 0
	}
	return q
}

// LoadView supplies the dispatcher's current knowledge about matchers. The
// dispatcher implements it from gossip + load pushes.
type LoadView interface {
	// Load returns the latest report for (node, dim) and whether one exists.
	Load(node core.NodeID, dim int) (DimLoad, bool)
	// Alive reports whether the node is believed reachable.
	Alive(node core.NodeID) bool
}

// Policy ranks a message's candidate matchers, best first. Implementations
// must be safe for concurrent use.
type Policy interface {
	// Name returns the policy's identifier, e.g. "adaptive".
	Name() string
	// Rank returns the alive candidates ordered most- to least-preferred.
	// The returned slice is freshly allocated. An empty result means no
	// candidate is alive.
	Rank(now int64, cands []partition.Candidate, view LoadView) []partition.Candidate
}

// RouteFilter optionally augments a LoadView with routability vetoes beyond
// liveness. A LoadView that also implements RouteFilter (e.g. a dispatcher
// consulting its circuit breakers) has Routable checked by every policy at
// rank time, so a tripped matcher is skipped during candidate selection.
type RouteFilter interface {
	// Routable reports whether the node should receive new forwards now.
	Routable(node core.NodeID) bool
}

// Deprioritizer optionally augments a LoadView with a soft demotion: a
// deprioritized node (e.g. a durability-degraded matcher) stays routable
// but ranks after every non-deprioritized candidate under all policies, so
// it only receives forwards when nothing healthier is available.
type Deprioritizer interface {
	// Deprioritized reports whether the node should rank last.
	Deprioritized(node core.NodeID) bool
}

// scored pairs a candidate with its rank tier (0 normal, 1 deprioritized)
// and policy cost (lower is better).
type scored struct {
	c    partition.Candidate
	tier int
	cost float64
}

// rankByCost filters dead and unroutable candidates, computes costs, and
// sorts ascending with deterministic tie-breaking by (tier, cost, node, dim).
func rankByCost(cands []partition.Candidate, view LoadView,
	cost func(partition.Candidate) float64) []partition.Candidate {
	filter, _ := view.(RouteFilter)
	depri, _ := view.(Deprioritizer)
	ss := make([]scored, 0, len(cands))
	for _, c := range cands {
		if !view.Alive(c.Node) {
			continue
		}
		if filter != nil && !filter.Routable(c.Node) {
			continue
		}
		s := scored{c: c, cost: cost(c)}
		if depri != nil && depri.Deprioritized(c.Node) {
			s.tier = 1
		}
		ss = append(ss, s)
	}
	sort.Slice(ss, func(i, j int) bool {
		if ss[i].tier != ss[j].tier {
			return ss[i].tier < ss[j].tier
		}
		if ss[i].cost != ss[j].cost {
			return ss[i].cost < ss[j].cost
		}
		if ss[i].c.Node != ss[j].c.Node {
			return ss[i].c.Node < ss[j].c.Node
		}
		return ss[i].c.Dim < ss[j].c.Dim
	})
	out := make([]partition.Candidate, len(ss))
	for i, s := range ss {
		out[i] = s.c
	}
	return out
}

// Adaptive is the default BlueDove policy: estimated processing time with
// queue-length extrapolation between reports.
type Adaptive struct{}

// Name returns "adaptive".
func (Adaptive) Name() string { return "adaptive" }

// Rank orders candidates by extrapolated processing time (q(now)+1)/μ.
// Candidates without a report (or with μ=0, i.e. never observed matching)
// are ranked after reported ones, ordered by subscription count so a cold
// system still avoids obvious hot spots.
func (Adaptive) Rank(now int64, cands []partition.Candidate, view LoadView) []partition.Candidate {
	return rankByCost(cands, view, func(c partition.Candidate) float64 {
		l, ok := view.Load(c.Node, c.Dim)
		if !ok || l.MatchRate <= 0 {
			return unknownCost(l, ok)
		}
		return (l.EstimatedQueue(now) + 1) / l.MatchRate
	})
}

// ResponseTime ranks by processing time from the last report without
// extrapolation — the "response time based policy" ablation of Figure 7.
type ResponseTime struct{}

// Name returns "resptime".
func (ResponseTime) Name() string { return "resptime" }

// Rank orders candidates by (q0+1)/μ from the last report, ignoring the
// report's age.
func (ResponseTime) Rank(now int64, cands []partition.Candidate, view LoadView) []partition.Candidate {
	return rankByCost(cands, view, func(c partition.Candidate) float64 {
		l, ok := view.Load(c.Node, c.Dim)
		if !ok || l.MatchRate <= 0 {
			return unknownCost(l, ok)
		}
		return (float64(l.QueueLen) + 1) / l.MatchRate
	})
}

// unknownCost ranks unreported or never-matching candidates after all
// reported ones, ordered among themselves by subscription count.
func unknownCost(l DimLoad, ok bool) float64 {
	base := math.MaxFloat64 / 4
	if !ok {
		return base * 2
	}
	return base + float64(l.Subs)
}

// SubscriptionAmount ranks by |Si(CM_i)| — the static subscription-count
// policy of Section III-B1.
type SubscriptionAmount struct{}

// Name returns "subamount".
func (SubscriptionAmount) Name() string { return "subamount" }

// Rank orders candidates by stored subscription count on the corresponding
// dimension, fewest first. Candidates without any report rank last.
func (SubscriptionAmount) Rank(now int64, cands []partition.Candidate, view LoadView) []partition.Candidate {
	return rankByCost(cands, view, func(c partition.Candidate) float64 {
		l, ok := view.Load(c.Node, c.Dim)
		if !ok {
			return math.MaxFloat64 / 2
		}
		return float64(l.Subs)
	})
}

// Random picks uniformly among alive candidates — the baseline policy.
type Random struct {
	mu  sync.Mutex
	rng *rand.Rand
}

// NewRandom creates a Random policy seeded for reproducibility.
func NewRandom(seed int64) *Random {
	return &Random{rng: rand.New(rand.NewSource(seed))}
}

// Name returns "random".
func (*Random) Name() string { return "random" }

// Rank returns the alive candidates in uniformly random order, with
// deprioritized candidates after all normal ones (random within each tier).
func (p *Random) Rank(now int64, cands []partition.Candidate, view LoadView) []partition.Candidate {
	filter, _ := view.(RouteFilter)
	depri, _ := view.(Deprioritizer)
	alive := make([]partition.Candidate, 0, len(cands))
	for _, c := range cands {
		if !view.Alive(c.Node) {
			continue
		}
		if filter != nil && !filter.Routable(c.Node) {
			continue
		}
		alive = append(alive, c)
	}
	p.mu.Lock()
	p.rng.Shuffle(len(alive), func(i, j int) { alive[i], alive[j] = alive[j], alive[i] })
	p.mu.Unlock()
	if depri != nil {
		sort.SliceStable(alive, func(i, j int) bool {
			return !depri.Deprioritized(alive[i].Node) && depri.Deprioritized(alive[j].Node)
		})
	}
	return alive
}

// ByName returns the policy with the given name, seeding Random with seed.
// Recognized names: adaptive, resptime, subamount, random. It returns nil
// for unknown names.
func ByName(name string, seed int64) Policy {
	switch name {
	case "adaptive":
		return Adaptive{}
	case "resptime":
		return ResponseTime{}
	case "subamount":
		return SubscriptionAmount{}
	case "random":
		return NewRandom(seed)
	default:
		return nil
	}
}
