package forward

import (
	"testing"
	"time"

	"bluedove/internal/core"
	"bluedove/internal/partition"
)

// benchView is a fixed-load view for policy benchmarks.
type benchView struct{ loads map[core.NodeID][]DimLoad }

func (v *benchView) Load(node core.NodeID, dim int) (DimLoad, bool) {
	ls, ok := v.loads[node]
	if !ok || dim >= len(ls) {
		return DimLoad{}, false
	}
	return ls[dim], true
}

func (v *benchView) Alive(core.NodeID) bool { return true }

func benchSetup() ([]partition.Candidate, *benchView) {
	cands := make([]partition.Candidate, 4)
	view := &benchView{loads: make(map[core.NodeID][]DimLoad)}
	for i := range cands {
		id := core.NodeID(i + 1)
		cands[i] = partition.Candidate{Node: id, Dim: i}
		loads := make([]DimLoad, 4)
		for d := range loads {
			loads[d] = DimLoad{
				Subs: 100 * (i + d + 1), QueueLen: 3 * i,
				ArrivalRate: 500, MatchRate: 400 + float64(100*d),
				ReportedAt: int64(time.Second),
			}
		}
		view.loads[id] = loads
	}
	return cands, view
}

func BenchmarkRank(b *testing.B) {
	cands, view := benchSetup()
	now := int64(2 * time.Second)
	for _, p := range []Policy{Adaptive{}, ResponseTime{}, SubscriptionAmount{}, NewRandom(1)} {
		b.Run(p.Name(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				_ = p.Rank(now, cands, view)
			}
		})
	}
}
