package forward

import (
	"testing"
	"time"

	"bluedove/internal/core"
	"bluedove/internal/partition"
)

// fakeView is an in-memory LoadView for tests.
type fakeView struct {
	loads map[core.NodeID]map[int]DimLoad
	dead  map[core.NodeID]bool
}

func newFakeView() *fakeView {
	return &fakeView{loads: make(map[core.NodeID]map[int]DimLoad), dead: make(map[core.NodeID]bool)}
}

func (v *fakeView) set(node core.NodeID, dim int, l DimLoad) {
	if v.loads[node] == nil {
		v.loads[node] = make(map[int]DimLoad)
	}
	v.loads[node][dim] = l
}

func (v *fakeView) Load(node core.NodeID, dim int) (DimLoad, bool) {
	l, ok := v.loads[node][dim]
	return l, ok
}

func (v *fakeView) Alive(node core.NodeID) bool { return !v.dead[node] }

func cands(pairs ...int) []partition.Candidate {
	out := make([]partition.Candidate, 0, len(pairs)/2)
	for i := 0; i+1 < len(pairs); i += 2 {
		out = append(out, partition.Candidate{Node: core.NodeID(pairs[i]), Dim: pairs[i+1]})
	}
	return out
}

func TestEstimatedQueue(t *testing.T) {
	l := DimLoad{QueueLen: 10, ArrivalRate: 100, MatchRate: 60, ReportedAt: 0}
	// After 1s: 10 + (100-60)*1 = 50.
	if got := l.EstimatedQueue(int64(time.Second)); got != 50 {
		t.Errorf("EstimatedQueue(1s) = %g, want 50", got)
	}
	// Draining faster than arriving floors at 0.
	l2 := DimLoad{QueueLen: 5, ArrivalRate: 10, MatchRate: 100, ReportedAt: 0}
	if got := l2.EstimatedQueue(int64(time.Second)); got != 0 {
		t.Errorf("EstimatedQueue drain = %g, want 0", got)
	}
	// Time before the report clamps dt to 0.
	if got := l.EstimatedQueue(-int64(time.Second)); got != 10 {
		t.Errorf("EstimatedQueue(past) = %g, want 10", got)
	}
}

func TestAdaptivePrefersExtrapolatedShorterQueue(t *testing.T) {
	v := newFakeView()
	// Node 1 reported a short queue but is filling fast; node 2 reported a
	// longer queue but is draining. After 2 seconds node 2 is better.
	v.set(1, 0, DimLoad{QueueLen: 10, ArrivalRate: 100, MatchRate: 50, ReportedAt: 0})
	v.set(2, 1, DimLoad{QueueLen: 60, ArrivalRate: 10, MatchRate: 50, ReportedAt: 0})
	now := int64(2 * time.Second)
	// q1(2s) = 10+50*2 = 110 → cost 111/50; q2(2s) = 0 → cost 1/50.
	got := Adaptive{}.Rank(now, cands(1, 0, 2, 1), v)
	if len(got) != 2 || got[0].Node != 2 {
		t.Fatalf("Rank = %v, want node 2 first", got)
	}
	// Without extrapolation (ResponseTime), node 1 still looks better.
	got = ResponseTime{}.Rank(now, cands(1, 0, 2, 1), v)
	if got[0].Node != 1 {
		t.Fatalf("ResponseTime Rank = %v, want node 1 first", got)
	}
}

func TestAdaptiveUnknownRanksLast(t *testing.T) {
	v := newFakeView()
	v.set(1, 0, DimLoad{QueueLen: 1000, ArrivalRate: 50, MatchRate: 10, ReportedAt: 0})
	// Node 2 has no report at all; node 3 has a report but μ=0 and few subs.
	v.set(3, 2, DimLoad{Subs: 5})
	got := Adaptive{}.Rank(0, cands(1, 0, 2, 1, 3, 2), v)
	if len(got) != 3 {
		t.Fatalf("Rank dropped candidates: %v", got)
	}
	if got[0].Node != 1 {
		t.Errorf("reported candidate should rank before unknowns: %v", got)
	}
	if got[1].Node != 3 || got[2].Node != 2 {
		t.Errorf("μ=0-with-subs should rank before no-report: %v", got)
	}
}

func TestSubscriptionAmount(t *testing.T) {
	v := newFakeView()
	v.set(1, 0, DimLoad{Subs: 13})
	v.set(2, 1, DimLoad{Subs: 4})
	v.set(3, 2, DimLoad{Subs: 7})
	got := SubscriptionAmount{}.Rank(0, cands(1, 0, 2, 1, 3, 2), v)
	want := []core.NodeID{2, 3, 1}
	for i, n := range want {
		if got[i].Node != n {
			t.Fatalf("Rank = %v, want order %v", got, want)
		}
	}
}

func TestDeadCandidatesFiltered(t *testing.T) {
	v := newFakeView()
	v.set(1, 0, DimLoad{Subs: 1, MatchRate: 10})
	v.set(2, 1, DimLoad{Subs: 2, MatchRate: 10})
	v.dead[1] = true
	for _, p := range []Policy{Adaptive{}, ResponseTime{}, SubscriptionAmount{}, NewRandom(1)} {
		got := p.Rank(0, cands(1, 0, 2, 1), v)
		if len(got) != 1 || got[0].Node != 2 {
			t.Errorf("%s: Rank = %v, want only node 2", p.Name(), got)
		}
	}
	v.dead[2] = true
	for _, p := range []Policy{Adaptive{}, NewRandom(1)} {
		if got := p.Rank(0, cands(1, 0, 2, 1), v); len(got) != 0 {
			t.Errorf("%s: all dead should return empty, got %v", p.Name(), got)
		}
	}
}

func TestRandomCoversAllCandidates(t *testing.T) {
	v := newFakeView()
	p := NewRandom(42)
	counts := map[core.NodeID]int{}
	for i := 0; i < 3000; i++ {
		got := p.Rank(0, cands(1, 0, 2, 1, 3, 2), v)
		if len(got) != 3 {
			t.Fatal("random dropped candidates")
		}
		counts[got[0].Node]++
	}
	for n := core.NodeID(1); n <= 3; n++ {
		if counts[n] < 700 { // expect ~1000 each
			t.Errorf("node %v chosen first only %d/3000 times", n, counts[n])
		}
	}
}

func TestTieBreakDeterminism(t *testing.T) {
	v := newFakeView()
	v.set(2, 1, DimLoad{Subs: 5})
	v.set(1, 0, DimLoad{Subs: 5})
	for i := 0; i < 10; i++ {
		got := SubscriptionAmount{}.Rank(0, cands(2, 1, 1, 0), v)
		if got[0].Node != 1 {
			t.Fatalf("tie not broken by node ID: %v", got)
		}
	}
}

func TestByName(t *testing.T) {
	for _, name := range []string{"adaptive", "resptime", "subamount", "random"} {
		p := ByName(name, 7)
		if p == nil || p.Name() != name {
			t.Errorf("ByName(%q) = %v", name, p)
		}
	}
	if ByName("nope", 0) != nil {
		t.Error("unknown name should return nil")
	}
}

// depriView is a fakeView that also implements Deprioritizer.
type depriView struct {
	*fakeView
	demoted map[core.NodeID]bool
}

func (v *depriView) Deprioritized(node core.NodeID) bool { return v.demoted[node] }

// A deprioritized (durability-degraded) candidate ranks after every normal
// one under all cost policies, even with a better load figure — but it is
// still returned, so it serves when nothing healthier exists.
func TestDeprioritizedRanksLast(t *testing.T) {
	v := &depriView{fakeView: newFakeView(), demoted: map[core.NodeID]bool{1: true}}
	// Node 1 is otherwise the clear winner: empty queue, high capacity.
	v.set(1, 0, DimLoad{QueueLen: 0, MatchRate: 100, ReportedAt: 0})
	v.set(2, 0, DimLoad{QueueLen: 50, MatchRate: 10, ReportedAt: 0})
	for _, p := range []Policy{Adaptive{}, ResponseTime{}, SubscriptionAmount{}} {
		got := p.Rank(0, cands(1, 0, 2, 0), v)
		if len(got) != 2 {
			t.Fatalf("%s: ranked %d candidates, want 2", p.Name(), len(got))
		}
		if got[0].Node != 2 || got[1].Node != 1 {
			t.Errorf("%s: order %v,%v; want healthy node 2 first", p.Name(), got[0].Node, got[1].Node)
		}
	}
	r := NewRandom(1)
	for i := 0; i < 20; i++ {
		got := r.Rank(0, cands(1, 0, 2, 0), v)
		if len(got) != 2 || got[0].Node != 2 {
			t.Fatalf("random: degraded node ranked first in %v", got)
		}
	}
}

// A view without the Deprioritizer interface ranks purely by cost — the
// demotion is strictly opt-in.
func TestNoDeprioritizerNoDemotion(t *testing.T) {
	v := newFakeView()
	v.set(1, 0, DimLoad{QueueLen: 0, MatchRate: 100, ReportedAt: 0})
	v.set(2, 0, DimLoad{QueueLen: 50, MatchRate: 10, ReportedAt: 0})
	got := Adaptive{}.Rank(0, cands(1, 0, 2, 0), v)
	if got[0].Node != 1 {
		t.Fatalf("best-cost node not first: %v", got)
	}
}
