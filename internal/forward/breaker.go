package forward

import (
	"sync"
	"time"

	"bluedove/internal/core"
	"bluedove/internal/metrics"
)

// Breaker is a per-destination circuit breaker driven by busy/unreachable
// streaks. It has the classic three states, with half-open derived from
// elapsed time rather than stored:
//
//	closed    — traffic flows; Threshold consecutive failures trip it open.
//	open      — Routable is false for Cooldown, so every policy skips the
//	            node during rank selection (see RouteFilter).
//	half-open — once Cooldown has elapsed Routable turns true again and the
//	            node is probed with live traffic; a failure during the probe
//	            window re-opens it for another Cooldown, a success closes it.
//
// A nil *Breaker is valid and means "always closed": every method is a
// no-op and Routable always returns true, so callers need no nil checks.
type Breaker struct {
	// Tripped counts closed→open transitions (exposed via telemetry).
	Tripped metrics.Counter

	threshold int
	cooldown  int64 // ns
	now       func() int64

	mu    sync.Mutex
	nodes map[core.NodeID]*breakerNode
}

// breakerNode is one destination's breaker state. open==false is closed;
// open==true is open until openedAt+cooldown and half-open after.
type breakerNode struct {
	open     bool
	failures int
	openedAt int64
}

// NewBreaker builds a breaker tripping after threshold consecutive failures
// and cooling down for cooldown before the half-open probe. now supplies
// the clock (nil defaults to time.Now), so the same breaker runs under the
// simulator's virtual clock.
func NewBreaker(threshold int, cooldown time.Duration, now func() int64) *Breaker {
	if threshold <= 0 {
		threshold = 5
	}
	if cooldown <= 0 {
		cooldown = time.Second
	}
	if now == nil {
		now = func() int64 { return time.Now().UnixNano() }
	}
	return &Breaker{
		threshold: threshold,
		cooldown:  int64(cooldown),
		now:       now,
		nodes:     make(map[core.NodeID]*breakerNode),
	}
}

// Failure records a busy NACK or unreachable send for node. Threshold
// consecutive failures trip the breaker; a failure during the half-open
// probe window re-opens it immediately.
func (b *Breaker) Failure(node core.NodeID) {
	if b == nil {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	n := b.nodes[node]
	if n == nil {
		n = &breakerNode{}
		b.nodes[node] = n
	}
	t := b.now()
	if n.open {
		if t >= n.openedAt+b.cooldown {
			// Half-open probe failed: re-open for another cooldown.
			n.openedAt = t
			b.Tripped.Add(1)
		}
		return
	}
	n.failures++
	if n.failures >= b.threshold {
		n.open = true
		n.openedAt = t
		b.Tripped.Add(1)
	}
}

// Success records a successful interaction (an ack) with node, closing the
// breaker and resetting the failure streak.
func (b *Breaker) Success(node core.NodeID) {
	if b == nil {
		return
	}
	b.mu.Lock()
	if n := b.nodes[node]; n != nil {
		n.open = false
		n.failures = 0
	}
	b.mu.Unlock()
}

// Routable reports whether node should receive new forwards: true when
// closed or half-open (probe traffic), false while open and cooling down.
func (b *Breaker) Routable(node core.NodeID) bool {
	if b == nil {
		return true
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	n := b.nodes[node]
	if n == nil || !n.open {
		return true
	}
	return b.now() >= n.openedAt+b.cooldown // half-open: allow the probe
}

// State returns node's current state name: "closed", "open" or "half-open".
func (b *Breaker) State(node core.NodeID) string {
	if b == nil {
		return "closed"
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	n := b.nodes[node]
	switch {
	case n == nil || !n.open:
		return "closed"
	case b.now() >= n.openedAt+b.cooldown:
		return "half-open"
	default:
		return "open"
	}
}

// Counts returns how many destinations are currently open and half-open
// (for telemetry gauges).
func (b *Breaker) Counts() (open, halfOpen int) {
	if b == nil {
		return 0, 0
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	t := b.now()
	for _, n := range b.nodes {
		if !n.open {
			continue
		}
		if t >= n.openedAt+b.cooldown {
			halfOpen++
		} else {
			open++
		}
	}
	return open, halfOpen
}
