// Package elastic implements BlueDove's elasticity controller: the embedded
// cluster component that turns matcher telemetry into scaling decisions.
//
// The controller periodically receives a Scrape — every matcher's
// per-dimension load sample — and computes per-matcher utilization (the
// λ/μ service ratio plus the time to drain the standing queue, maxed over
// dimensions) and the cluster mean. Three actuations follow, each behind
// hysteresis (a watermark must hold for SustainRounds consecutive scrapes)
// and a cooldown (no further action for CooldownRounds after any action):
//
//   - scale up: the cluster mean stays at or above HighWater — start a new
//     matcher and hand it the hottest segments (the paper's join protocol,
//     Section III-C).
//   - scale down: the cluster mean stays at or below LowWater and more than
//     MinMatchers remain — drain the least-loaded matcher and remove it
//     (the leave protocol).
//   - split: one matcher is hot (≥ SplitMinUtil) while the cluster mean is
//     not — the σ-skew signature where adding a matcher would not help
//     because the load sits in one segment. The hot matcher's hottest
//     dimension segment is cut at a load-weighted point and the upper half
//     re-homed onto the coldest matcher.
//
// Decision logic never reads a clock: decisions are a pure function of the
// scrape series and the controller's own round counter, so the same series
// produces the same decisions under the real-time runtime and the
// virtual-clock simulator, and a journaled run replays exactly.
package elastic

import (
	"fmt"
	"sort"

	"bluedove/internal/core"
	"bluedove/internal/metrics"
)

// DimSample is one matcher's load along one dimension (mirrors
// forward.DimLoad, minus the dispatcher-side fields).
type DimSample struct {
	Subs        int
	QueueLen    int
	ArrivalRate float64 // λ, messages/second
	MatchRate   float64 // μ, messages/second
}

// MatcherSample is one matcher's scraped telemetry.
type MatcherSample struct {
	ID   core.NodeID
	Dims []DimSample
	// BreakerTrips is the cumulative dispatcher breaker-trip count charged
	// to this matcher (0 when unavailable); a rising count marks the matcher
	// as persistently unhealthy even when its own rates look plausible.
	BreakerTrips int64
	// ScannedPerMsg is the matcher's index-efficiency figure (subscriptions
	// examined per matched message); informational, journaled with decisions.
	ScannedPerMsg float64
	// Draining marks a matcher mid-removal; it is excluded from utilization
	// and never chosen as a target.
	Draining bool
	// Failed marks a matcher whose durable store has failed (store.Failed):
	// it no longer honours the durability guarantee and dispatchers have
	// stopped routing to it. A sustained Failed sample is a replace signal —
	// the controller scales up regardless of utilization so the join protocol
	// can re-home the failed matcher's segments onto a healthy node.
	Failed bool
}

// Scrape is one controller observation: every matcher's sample at a common
// logical time. At is the scrape timestamp in cluster-clock nanoseconds
// (virtual under the simulator); it is journaled, never used in decisions.
type Scrape struct {
	At       int64
	Matchers []MatcherSample
}

// Action discriminates controller decisions.
type Action int

// Controller actions.
const (
	// ScaleUp starts a new matcher via the join protocol.
	ScaleUp Action = iota + 1
	// ScaleDown drains and removes Target via the leave protocol.
	ScaleDown
	// Split cuts Target's hottest dimension-Dim segment and re-homes the
	// upper half onto To.
	Split
)

// String names the action.
func (a Action) String() string {
	switch a {
	case ScaleUp:
		return "scale-up"
	case ScaleDown:
		return "scale-down"
	case Split:
		return "split"
	}
	return fmt.Sprintf("action(%d)", int(a))
}

// Decision is one controller actuation order.
type Decision struct {
	Action Action
	// At echoes the triggering scrape's timestamp.
	At int64
	// Round is the controller's observation counter at decision time.
	Round int
	// Target is the matcher acted on: the scale-down victim, the hot
	// matcher whose segment splits, or the failed matcher a replacement
	// scale-up covers (unset for a utilization-driven scale-up).
	Target core.NodeID
	// To is the split destination (the coldest matcher); unset otherwise.
	To core.NodeID
	// Dim is the split dimension; -1 otherwise.
	Dim int
	// ClusterUtil and PeakUtil record the signal that fired.
	ClusterUtil float64
	PeakUtil    float64
	// Reason is a human-readable one-liner for the journal.
	Reason string
}

// String renders the decision for journals and logs.
func (d Decision) String() string {
	switch d.Action {
	case Split:
		return fmt.Sprintf("split{m%v dim%d -> m%v, util %.2f/%.2f, round %d}",
			d.Target, d.Dim, d.To, d.PeakUtil, d.ClusterUtil, d.Round)
	case ScaleDown:
		return fmt.Sprintf("scale-down{m%v, util %.2f, round %d}", d.Target, d.ClusterUtil, d.Round)
	default:
		return fmt.Sprintf("scale-up{util %.2f, round %d}", d.ClusterUtil, d.Round)
	}
}

// Config parameterizes a Controller. The zero value is usable: every field
// defaults to the documented value.
type Config struct {
	// HighWater is the sustained cluster utilization that triggers scale-up
	// (default 0.8).
	HighWater float64
	// LowWater is the sustained cluster utilization that triggers scale-down
	// (default 0.25).
	LowWater float64
	// SustainRounds is how many consecutive scrapes a watermark must hold
	// before acting — the hysteresis that rides out spikes (default 3).
	SustainRounds int
	// CooldownRounds suppresses all actions for this many scrapes after any
	// action, letting handovers settle and the signal re-form (default 4).
	CooldownRounds int
	// MinMatchers floors scale-down (default 2).
	MinMatchers int
	// MaxMatchers caps scale-up (default 0 = unlimited).
	MaxMatchers int
	// SplitMinUtil is the per-matcher utilization that marks a matcher hot
	// enough to split (default 0.6).
	SplitMinUtil float64
	// SplitSkewRatio is the hot-matcher-to-cluster-mean ratio that marks
	// skew rather than uniform load (default 2.0).
	SplitSkewRatio float64
	// QueueHorizonSec converts standing queue into utilization: a queue that
	// takes this many seconds to drain at rate μ counts as 1.0 (default 5).
	QueueHorizonSec float64
	// ThrashWindowRounds: a direction reversal (scale-up after scale-down or
	// vice versa) within this many rounds increments the thrash counter
	// (default 10).
	ThrashWindowRounds int
	// OnDecision, when non-nil, observes every decision as it is made —
	// the journaling hook (called synchronously from Observe).
	OnDecision func(Decision)
}

func (c *Config) defaults() {
	if c.HighWater <= 0 {
		c.HighWater = 0.8
	}
	if c.LowWater <= 0 {
		c.LowWater = 0.25
	}
	if c.SustainRounds <= 0 {
		c.SustainRounds = 3
	}
	if c.CooldownRounds <= 0 {
		c.CooldownRounds = 4
	}
	if c.MinMatchers <= 0 {
		c.MinMatchers = 2
	}
	if c.SplitMinUtil <= 0 {
		c.SplitMinUtil = 0.6
	}
	if c.SplitSkewRatio <= 0 {
		c.SplitSkewRatio = 2.0
	}
	if c.QueueHorizonSec <= 0 {
		c.QueueHorizonSec = 5
	}
	if c.ThrashWindowRounds <= 0 {
		c.ThrashWindowRounds = 10
	}
}

// Controller turns scrape series into decisions. Not safe for concurrent
// use; the owner serializes Observe calls (one per scrape tick).
type Controller struct {
	cfg Config

	round      int
	over       int // consecutive rounds at/above HighWater
	under      int // consecutive rounds at/below LowWater
	skew       int // consecutive rounds showing the split signature
	failedFor  int // consecutive rounds with a durability-failed matcher
	cooldown   int // rounds remaining before the next action is allowed
	lastAction Action
	lastRound  int

	// ScaleUps, ScaleDowns and Splits count decisions by kind; Replaces
	// counts the subset of scale-ups fired by a durability-failed matcher
	// rather than utilization; Thrash counts direction reversals inside the
	// thrash window. All are exported as elastic.* telemetry by the
	// embedding node.
	ScaleUps   metrics.Counter
	ScaleDowns metrics.Counter
	Splits     metrics.Counter
	Replaces   metrics.Counter
	Thrash     metrics.Counter
}

// NewController builds a controller.
func NewController(cfg Config) *Controller {
	cfg.defaults()
	return &Controller{cfg: cfg}
}

// Config returns the effective (defaulted) configuration.
func (c *Controller) Config() Config { return c.cfg }

// Utilization computes one matcher's utilization: per dimension, the service
// ratio λ/μ plus the queue drain debt q/(μ·horizon), maxed over dimensions.
// A dimension with unknown capacity (μ=0) counts as saturated when work is
// queued and idle otherwise.
func Utilization(m MatcherSample, horizonSec float64) float64 {
	peak := 0.0
	for _, d := range m.Dims {
		var u float64
		if d.MatchRate > 0 {
			u = d.ArrivalRate/d.MatchRate + float64(d.QueueLen)/(d.MatchRate*horizonSec)
		} else if d.QueueLen > 0 {
			u = 1.5 // no measured capacity but standing work: saturated
		}
		if u > peak {
			peak = u
		}
	}
	return peak
}

// Observe ingests one scrape and returns at most one decision. The scrape's
// matcher order does not matter — samples are sorted by ID internally so the
// decision is a pure function of the sample set.
func (c *Controller) Observe(s Scrape) *Decision {
	c.round++

	active := make([]MatcherSample, 0, len(s.Matchers))
	for _, m := range s.Matchers {
		if !m.Draining {
			active = append(active, m)
		}
	}
	sort.Slice(active, func(i, j int) bool { return active[i].ID < active[j].ID })
	if len(active) == 0 {
		c.over, c.under, c.skew, c.failedFor = 0, 0, 0, 0
		return nil
	}

	utils := make([]float64, len(active))
	mean, peak, peakIdx := 0.0, 0.0, 0
	for i, m := range active {
		utils[i] = Utilization(m, c.cfg.QueueHorizonSec)
		mean += utils[i]
		if utils[i] > peak {
			peak, peakIdx = utils[i], i
		}
	}
	mean /= float64(len(active))

	// Update the sustained-signal counters every round, cooldown or not, so
	// a condition that persists through a cooldown fires immediately after.
	if mean >= c.cfg.HighWater {
		c.over++
	} else {
		c.over = 0
	}
	if mean <= c.cfg.LowWater {
		c.under++
	} else {
		c.under = 0
	}
	// A durability-failed matcher is a standing replace signal. The lowest
	// failed ID is the deterministic target (active is sorted by ID).
	var failedID core.NodeID
	hasFailed := false
	for _, m := range active {
		if m.Failed {
			failedID, hasFailed = m.ID, true
			break
		}
	}
	if hasFailed {
		c.failedFor++
	} else {
		c.failedFor = 0
	}
	splitSig := len(active) >= 2 &&
		peak >= c.cfg.SplitMinUtil &&
		mean < c.cfg.HighWater &&
		peak >= mean*c.cfg.SplitSkewRatio
	if splitSig {
		c.skew++
	} else {
		c.skew = 0
	}

	if c.cooldown > 0 {
		c.cooldown--
		return nil
	}

	switch {
	case c.failedFor >= c.cfg.SustainRounds:
		// Replace: scale up to re-home the failed matcher's segments. The
		// MaxMatchers cap does not apply — the failed node is on its way out,
		// so steady-state capacity does not grow.
		c.Replaces.Add(1)
		return c.decide(Decision{
			Action: ScaleUp, At: s.At, Round: c.round, Target: failedID, Dim: -1,
			ClusterUtil: mean, PeakUtil: peak,
			Reason: fmt.Sprintf("m%v durability failed for %d rounds (replace)", failedID, c.failedFor),
		})
	case c.over >= c.cfg.SustainRounds &&
		(c.cfg.MaxMatchers == 0 || len(active) < c.cfg.MaxMatchers):
		return c.decide(Decision{
			Action: ScaleUp, At: s.At, Round: c.round, Dim: -1,
			ClusterUtil: mean, PeakUtil: peak,
			Reason: fmt.Sprintf("mean util %.2f >= %.2f for %d rounds", mean, c.cfg.HighWater, c.over),
		})
	case c.skew >= c.cfg.SustainRounds:
		hot := active[peakIdx]
		dim := hottestDim(hot, c.cfg.QueueHorizonSec)
		// Coldest other matcher receives the split half.
		coldIdx := -1
		for i := range active {
			if i == peakIdx {
				continue
			}
			if coldIdx < 0 || utils[i] < utils[coldIdx] {
				coldIdx = i
			}
		}
		return c.decide(Decision{
			Action: Split, At: s.At, Round: c.round,
			Target: hot.ID, To: active[coldIdx].ID, Dim: dim,
			ClusterUtil: mean, PeakUtil: peak,
			Reason: fmt.Sprintf("m%v util %.2f vs mean %.2f (skew) for %d rounds", hot.ID, peak, mean, c.skew),
		})
	case c.under >= c.cfg.SustainRounds && len(active) > c.cfg.MinMatchers:
		// Drain the least-loaded matcher; ties go to the highest ID so the
		// most recently added node retires first.
		victim := 0
		for i := range active {
			if utils[i] < utils[victim] ||
				(utils[i] == utils[victim] && active[i].ID > active[victim].ID) {
				victim = i
			}
		}
		return c.decide(Decision{
			Action: ScaleDown, At: s.At, Round: c.round, Target: active[victim].ID, Dim: -1,
			ClusterUtil: mean, PeakUtil: peak,
			Reason: fmt.Sprintf("mean util %.2f <= %.2f for %d rounds", mean, c.cfg.LowWater, c.under),
		})
	}
	return nil
}

// hottestDim returns the index of the sample's highest-utilization dimension.
func hottestDim(m MatcherSample, horizonSec float64) int {
	best, bestU := 0, -1.0
	for i, d := range m.Dims {
		var u float64
		if d.MatchRate > 0 {
			u = d.ArrivalRate/d.MatchRate + float64(d.QueueLen)/(d.MatchRate*horizonSec)
		} else if d.QueueLen > 0 {
			u = 1.5
		}
		if u > bestU {
			best, bestU = i, u
		}
	}
	return best
}

// decide finalizes a decision: resets signals, arms the cooldown, counts the
// action (and thrash on a quick reversal), and runs the journal hook.
func (c *Controller) decide(d Decision) *Decision {
	reversal := (d.Action == ScaleUp && c.lastAction == ScaleDown) ||
		(d.Action == ScaleDown && c.lastAction == ScaleUp)
	if reversal && c.round-c.lastRound <= c.cfg.ThrashWindowRounds {
		c.Thrash.Add(1)
	}
	switch d.Action {
	case ScaleUp:
		c.ScaleUps.Add(1)
	case ScaleDown:
		c.ScaleDowns.Add(1)
	case Split:
		c.Splits.Add(1)
	}
	c.lastAction, c.lastRound = d.Action, c.round
	c.over, c.under, c.skew, c.failedFor = 0, 0, 0, 0
	c.cooldown = c.cfg.CooldownRounds
	if c.cfg.OnDecision != nil {
		c.cfg.OnDecision(d)
	}
	return &d
}
