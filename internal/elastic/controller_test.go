package elastic

import (
	"testing"

	"bluedove/internal/core"
)

// uniformScrape builds a scrape where every matcher runs at utilization u
// (single dimension, μ=1000, λ=u·μ, empty queue).
func uniformScrape(at int64, n int, u float64) Scrape {
	s := Scrape{At: at}
	for i := 0; i < n; i++ {
		s.Matchers = append(s.Matchers, MatcherSample{
			ID:   core.NodeID(i + 1),
			Dims: []DimSample{{Subs: 100, ArrivalRate: u * 1000, MatchRate: 1000}},
		})
	}
	return s
}

// feed runs a utilization series through the controller, one scrape per
// round, and returns every decision.
func feed(c *Controller, n int, series []float64) []Decision {
	var out []Decision
	for i, u := range series {
		if d := c.Observe(uniformScrape(int64(i)*1e9, n, u)); d != nil {
			out = append(out, *d)
		}
	}
	return out
}

// TestDecisionTableRamp: a sustained ramp over the high watermark produces a
// scale-up after exactly SustainRounds, then nothing during the cooldown,
// then another scale-up if the signal persists.
func TestDecisionTableRamp(t *testing.T) {
	c := NewController(Config{SustainRounds: 3, CooldownRounds: 4})
	// Rounds:        1    2    3    4    5    6    7    8    9   10   11   12
	series := []float64{0.2, 0.5, 0.7, 0.9, 0.9, 0.9, 0.9, 0.9, 0.9, 0.9, 0.9, 0.9}
	ds := feed(c, 3, series)
	if len(ds) != 2 {
		t.Fatalf("decisions = %v, want 2 scale-ups", ds)
	}
	// Over-counter starts at round 4 (0.9 ≥ 0.8); third consecutive round is 6.
	if ds[0].Action != ScaleUp || ds[0].Round != 6 {
		t.Errorf("first decision %v, want scale-up at round 6", ds[0])
	}
	// Cooldown 4 suppresses rounds 7-10; the signal persists, so the counter
	// is already sustained and round 11 fires.
	if ds[1].Action != ScaleUp || ds[1].Round != 11 {
		t.Errorf("second decision %v, want scale-up at round 11", ds[1])
	}
	if c.ScaleUps.Value() != 2 || c.Thrash.Value() != 0 {
		t.Errorf("counters: ups=%d thrash=%d", c.ScaleUps.Value(), c.Thrash.Value())
	}
}

// TestDecisionTableSpike: a one-round spike never acts — hysteresis rides
// it out.
func TestDecisionTableSpike(t *testing.T) {
	c := NewController(Config{SustainRounds: 3, CooldownRounds: 4})
	series := []float64{0.4, 0.4, 1.5, 0.4, 0.4, 1.5, 1.5, 0.4, 0.4, 0.4}
	if ds := feed(c, 3, series); len(ds) != 0 {
		t.Fatalf("decisions = %v, want none for spikes", ds)
	}
}

// TestDecisionTableFlap: utilization oscillating around the watermark
// produces no actions and no thrash — the flap never sustains.
func TestDecisionTableFlap(t *testing.T) {
	c := NewController(Config{HighWater: 0.8, LowWater: 0.25, SustainRounds: 3, CooldownRounds: 4})
	var series []float64
	for i := 0; i < 40; i++ {
		if i%2 == 0 {
			series = append(series, 0.85) // one round over
		} else {
			series = append(series, 0.2) // one round under
		}
	}
	ds := feed(c, 3, series)
	if len(ds) != 0 {
		t.Fatalf("decisions = %v, want none under flap", ds)
	}
	if c.Thrash.Value() != 0 {
		t.Fatalf("thrash = %d, want 0 under flap", c.Thrash.Value())
	}
}

// TestDecisionTableScaleDown: sustained idle drains the least-loaded matcher
// but never below MinMatchers.
func TestDecisionTableScaleDown(t *testing.T) {
	c := NewController(Config{SustainRounds: 3, CooldownRounds: 2, MinMatchers: 2})
	mk := func(at int64, utils ...float64) Scrape {
		s := Scrape{At: at}
		for i, u := range utils {
			s.Matchers = append(s.Matchers, MatcherSample{
				ID:   core.NodeID(i + 1),
				Dims: []DimSample{{ArrivalRate: u * 1000, MatchRate: 1000}},
			})
		}
		return s
	}
	var ds []Decision
	draining := map[core.NodeID]bool{}
	for r := 0; r < 8; r++ {
		s := mk(int64(r), 0.1, 0.05, 0.2)
		// Feed the controller its own actuation back, as a real cluster
		// would: a chosen victim drains and drops out of the sample.
		for i := range s.Matchers {
			if draining[s.Matchers[i].ID] {
				s.Matchers[i].Draining = true
			}
		}
		if d := c.Observe(s); d != nil {
			ds = append(ds, *d)
			draining[d.Target] = true
		}
	}
	// One scale-down of the least-loaded matcher; afterwards two matchers
	// remain, which is MinMatchers, so idle no longer shrinks the cluster.
	if len(ds) != 1 || ds[0].Action != ScaleDown || ds[0].Target != 2 {
		t.Fatalf("decisions = %v, want one scale-down of matcher 2 (least loaded)", ds)
	}
	// At MinMatchers, idle no longer shrinks the cluster.
	c2 := NewController(Config{SustainRounds: 2, MinMatchers: 2})
	for r := 0; r < 8; r++ {
		if d := c2.Observe(mk(int64(r), 0.05, 0.05)); d != nil {
			t.Fatalf("scale-down below MinMatchers: %v", d)
		}
	}
}

// TestDecisionTableSkewSplit: one hot matcher while the cluster mean is low
// is the split signature — the hot matcher's hottest dimension goes to the
// coldest matcher.
func TestDecisionTableSkewSplit(t *testing.T) {
	c := NewController(Config{SustainRounds: 3, CooldownRounds: 4, LowWater: 0.1})
	mk := func(at int64) Scrape {
		return Scrape{At: at, Matchers: []MatcherSample{
			{ID: 1, Dims: []DimSample{
				{ArrivalRate: 200, MatchRate: 1000},  // dim 0 cool
				{ArrivalRate: 1100, MatchRate: 1000}, // dim 1 hot
			}},
			{ID: 2, Dims: []DimSample{
				{ArrivalRate: 300, MatchRate: 1000},
				{ArrivalRate: 250, MatchRate: 1000},
			}},
			{ID: 3, Dims: []DimSample{
				{ArrivalRate: 150, MatchRate: 1000},
				{ArrivalRate: 100, MatchRate: 1000},
			}},
		}}
	}
	var ds []Decision
	for r := 0; r < 5; r++ {
		if d := c.Observe(mk(int64(r))); d != nil {
			ds = append(ds, *d)
		}
	}
	if len(ds) != 1 {
		t.Fatalf("decisions = %v, want one split", ds)
	}
	d := ds[0]
	if d.Action != Split || d.Target != 1 || d.Dim != 1 || d.To != 3 {
		t.Fatalf("split = %v, want m1 dim1 -> m3", d)
	}
	if c.Splits.Value() != 1 {
		t.Errorf("splits counter = %d", c.Splits.Value())
	}
}

// TestDrainingExcluded: a draining matcher neither contributes utilization
// nor becomes a target.
func TestDrainingExcluded(t *testing.T) {
	c := NewController(Config{SustainRounds: 2, CooldownRounds: 1, MinMatchers: 1})
	mk := func(at int64) Scrape {
		return Scrape{At: at, Matchers: []MatcherSample{
			{ID: 1, Dims: []DimSample{{ArrivalRate: 100, MatchRate: 1000}}},
			{ID: 2, Dims: []DimSample{{ArrivalRate: 50, MatchRate: 1000}}},
			{ID: 3, Draining: true, Dims: []DimSample{{ArrivalRate: 2000, MatchRate: 1000}}},
		}}
	}
	for r := 0; r < 4; r++ {
		if d := c.Observe(mk(int64(r))); d != nil {
			if d.Target == 3 {
				t.Fatalf("draining matcher targeted: %v", d)
			}
			return // the idle scale-down of m2 is expected
		}
	}
}

// TestThrashCounter: a forced quick reversal is counted — the counter works,
// it just must stay 0 under flap (TestDecisionTableFlap).
func TestThrashCounter(t *testing.T) {
	c := NewController(Config{SustainRounds: 1, CooldownRounds: 1, ThrashWindowRounds: 10, MinMatchers: 2})
	// Round 1: hot → scale-up. Round 2: cooldown. Round 3: idle → scale-down
	// two rounds after the scale-up — inside the thrash window.
	if d := c.Observe(uniformScrape(0, 3, 0.95)); d == nil || d.Action != ScaleUp {
		t.Fatalf("want scale-up, got %v", d)
	}
	c.Observe(uniformScrape(1, 3, 0.1))
	if d := c.Observe(uniformScrape(2, 3, 0.1)); d == nil || d.Action != ScaleDown {
		t.Fatalf("want scale-down, got %v", d)
	}
	if c.Thrash.Value() != 1 {
		t.Fatalf("thrash = %d, want 1", c.Thrash.Value())
	}
}

// TestDeterminism: the same scrape series drives two controllers to
// identical decision sequences regardless of sample order.
func TestDeterminism(t *testing.T) {
	mkSeries := func(shuffle bool) []Decision {
		c := NewController(Config{})
		var out []Decision
		for r := 0; r < 30; r++ {
			s := uniformScrape(int64(r)*1e9, 4, 0.9)
			if shuffle {
				s.Matchers[0], s.Matchers[3] = s.Matchers[3], s.Matchers[0]
				s.Matchers[1], s.Matchers[2] = s.Matchers[2], s.Matchers[1]
			}
			if d := c.Observe(s); d != nil {
				out = append(out, *d)
			}
		}
		return out
	}
	a, b := mkSeries(false), mkSeries(true)
	if len(a) == 0 {
		t.Fatal("no decisions from a sustained-hot series")
	}
	if len(a) != len(b) {
		t.Fatalf("decision counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("decision %d differs: %v vs %v", i, a[i], b[i])
		}
	}
}

// TestUtilizationQueueDebt: standing queues raise utilization beyond λ/μ.
func TestUtilizationQueueDebt(t *testing.T) {
	m := MatcherSample{ID: 1, Dims: []DimSample{
		{ArrivalRate: 500, MatchRate: 1000, QueueLen: 2500},
	}}
	// λ/μ = 0.5 plus 2500/(1000·5s) = 0.5 → 1.0.
	if u := Utilization(m, 5); u < 0.99 || u > 1.01 {
		t.Fatalf("utilization = %g, want 1.0", u)
	}
	// Unknown capacity with standing work counts saturated.
	m2 := MatcherSample{ID: 2, Dims: []DimSample{{QueueLen: 10}}}
	if u := Utilization(m2, 5); u < 1 {
		t.Fatalf("utilization = %g, want >= 1 for unmeasured backlog", u)
	}
}

// TestOnDecisionJournal: every decision reaches the journal hook, in order.
func TestOnDecisionJournal(t *testing.T) {
	var seen []Decision
	c := NewController(Config{SustainRounds: 1, CooldownRounds: 1,
		OnDecision: func(d Decision) { seen = append(seen, d) }})
	c.Observe(uniformScrape(0, 2, 0.95))
	c.Observe(uniformScrape(1, 2, 0.95))
	c.Observe(uniformScrape(2, 2, 0.95))
	if len(seen) != 2 || seen[0].Action != ScaleUp {
		t.Fatalf("journaled = %v", seen)
	}
}

// TestFailedMatcherReplace: a matcher reporting a failed durable store fires
// a replace scale-up after SustainRounds, targeting the failed node and
// bypassing utilization entirely (the cluster is idle).
func TestFailedMatcherReplace(t *testing.T) {
	c := NewController(Config{SustainRounds: 3, CooldownRounds: 4})
	mk := func(at int64) Scrape {
		s := uniformScrape(at, 3, 0.3) // mid-band: neither watermark fires
		s.Matchers[1].Failed = true
		return s
	}
	var ds []Decision
	for i := 0; i < 6; i++ {
		if d := c.Observe(mk(int64(i) * 1e9)); d != nil {
			ds = append(ds, *d)
		}
	}
	if len(ds) != 1 {
		t.Fatalf("decisions = %v, want exactly one replace scale-up", ds)
	}
	d := ds[0]
	if d.Action != ScaleUp || d.Round != 3 || d.Target != core.NodeID(2) {
		t.Fatalf("decision %+v, want scale-up at round 3 targeting m2", d)
	}
	if c.Replaces.Value() != 1 || c.ScaleUps.Value() != 1 {
		t.Fatalf("counters: replaces=%d ups=%d, want 1/1", c.Replaces.Value(), c.ScaleUps.Value())
	}
}

// TestFailedMatcherSpikeIgnored: a transient Failed sample (fewer than
// SustainRounds consecutive scrapes) never fires — same hysteresis as the
// watermarks.
func TestFailedMatcherSpikeIgnored(t *testing.T) {
	c := NewController(Config{SustainRounds: 3, CooldownRounds: 4})
	for i := 0; i < 10; i++ {
		s := uniformScrape(int64(i)*1e9, 3, 0.3)
		if i%3 == 0 { // never three in a row
			s.Matchers[0].Failed = true
		}
		if d := c.Observe(s); d != nil {
			t.Fatalf("round %d: unexpected decision %v", i+1, *d)
		}
	}
	if c.Replaces.Value() != 0 {
		t.Fatalf("replaces = %d, want 0", c.Replaces.Value())
	}
}

// TestFailedReplaceBypassesMaxMatchers: replacement is allowed even at the
// MaxMatchers cap — the failed node is leaving, so capacity stays level.
func TestFailedReplaceBypassesMaxMatchers(t *testing.T) {
	c := NewController(Config{SustainRounds: 2, CooldownRounds: 4, MaxMatchers: 3})
	mk := func(at int64) Scrape {
		s := uniformScrape(at, 3, 0.9) // over HighWater AND failed
		s.Matchers[2].Failed = true
		return s
	}
	var got *Decision
	for i := 0; i < 4 && got == nil; i++ {
		got = c.Observe(mk(int64(i) * 1e9))
	}
	if got == nil || got.Action != ScaleUp || got.Target != core.NodeID(3) {
		t.Fatalf("decision %+v, want replace scale-up for m3 despite MaxMatchers", got)
	}
}
