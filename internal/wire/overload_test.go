package wire

import (
	"encoding/binary"
	"testing"

	"bluedove/internal/core"
)

func TestBusyRoundTrip(t *testing.T) {
	in := &BusyBody{ID: 1<<40 + 7, Dim: 3, QueueLen: 128}
	out, err := DecodeBusy(in.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if *out != *in {
		t.Fatalf("round trip: got %+v, want %+v", out, in)
	}
}

func TestBusyRejectsTrailingBytes(t *testing.T) {
	data := append((&BusyBody{ID: 9, Dim: 1, QueueLen: 4}).Encode(), 0xAA)
	if _, err := DecodeBusy(data); err == nil {
		t.Fatal("decoder accepted a busy body with trailing garbage")
	}
	if _, err := DecodeBusy([]byte{1, 2, 3}); err == nil {
		t.Fatal("decoder accepted a truncated busy body")
	}
}

func TestPublishAckRoundTrip(t *testing.T) {
	in := &PublishAckBody{ID: 424242}
	out, err := DecodePublishAck(in.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if out.ID != in.ID {
		t.Fatalf("round trip: got %d, want %d", out.ID, in.ID)
	}
}

// TestForwardAckBatchBusyRoundTrip covers the busy-aware batch ack: a batch
// that straddles a full queue acks the accepted prefix and lists the
// rejected items with per-item dimension and backlog.
func TestForwardAckBatchBusyRoundTrip(t *testing.T) {
	in := &ForwardAckBatchBody{
		IDs: []core.MessageID{1, 2, 3},
		Busy: []BusyEntry{
			{ID: 4, Dim: 0, QueueLen: 64},
			{ID: 5, Dim: 3, QueueLen: 65},
		},
	}
	out, err := DecodeForwardAckBatch(in.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if len(out.IDs) != 3 || out.IDs[2] != 3 {
		t.Fatalf("acked IDs: got %v, want %v", out.IDs, in.IDs)
	}
	if len(out.Busy) != 2 {
		t.Fatalf("busy entries: got %d, want 2", len(out.Busy))
	}
	for i := range in.Busy {
		if out.Busy[i] != in.Busy[i] {
			t.Fatalf("busy[%d]: got %+v, want %+v", i, out.Busy[i], in.Busy[i])
		}
	}
}

// TestForwardAckBatchBusyCountGuard: a frame claiming an implausible busy
// count must be rejected before the decoder sizes an allocation from it.
func TestForwardAckBatchBusyCountGuard(t *testing.T) {
	data := (&ForwardAckBatchBody{IDs: []core.MessageID{1}}).Encode()
	// The busy count is the final u32; overwrite it in place.
	binary.BigEndian.PutUint32(data[len(data)-4:], uint32(maxListLen+1))
	if _, err := DecodeForwardAckBatch(data); err == nil {
		t.Fatalf("decoder accepted busy count %d", maxListLen+1)
	}
}

// TestBusyEncodeZeroAlloc: the busy NACK is sent from the matcher's receive
// path while it is already overloaded — encoding into a pooled buffer must
// not add heap allocations to that path.
func TestBusyEncodeZeroAlloc(t *testing.T) {
	body := &BusyBody{ID: 77, Dim: 2, QueueLen: 4}
	// A preallocated scratch slice rather than the frame pool: sync.Pool
	// randomly drops items under the race detector, which would count as an
	// allocation here without saying anything about the encoder.
	buf := make([]byte, 0, 64)
	allocs := testing.AllocsPerRun(100, func() {
		buf = body.AppendTo(buf[:0])
	})
	if allocs != 0 {
		t.Fatalf("busy NACK encode: %.1f allocs/frame, want 0", allocs)
	}
}

func FuzzDecodeBusy(f *testing.F) {
	f.Add((&BusyBody{ID: 7, Dim: 2, QueueLen: 64}).Encode())
	f.Add((&BusyBody{}).Encode())
	f.Add([]byte{})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff})
	f.Fuzz(func(t *testing.T, data []byte) {
		b, err := DecodeBusy(data)
		if err != nil {
			return
		}
		// A valid decode must re-encode to exactly the bytes consumed.
		if out := b.Encode(); string(out) != string(data) {
			t.Fatalf("re-encode mismatch: %x vs %x", out, data)
		}
	})
}
