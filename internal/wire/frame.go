package wire

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"

	"bluedove/internal/core"
)

// MaxFrame bounds a frame's payload; larger declared lengths are rejected
// as corruption before any allocation.
const MaxFrame = 16 << 20

// frameHeader is the fixed part after the length prefix: kind + sender.
const frameHeader = 1 + 8

// WriteFrame writes one envelope to w with a length prefix, flushing if w
// is a bufio.Writer. It is not safe for concurrent use on the same writer;
// connections serialize writes.
func WriteFrame(w io.Writer, env *Envelope) error {
	if err := WriteFrameBuffered(w, env); err != nil {
		return err
	}
	if bw, ok := w.(*bufio.Writer); ok {
		return bw.Flush()
	}
	return nil
}

// WriteFrameBuffered writes one envelope to w without flushing, so a
// transport flusher can coalesce several frames into one flush (and, for
// TCP, fewer syscalls). Callers owning a bufio.Writer must flush it
// themselves.
func WriteFrameBuffered(w io.Writer, env *Envelope) error {
	n := frameHeader + len(env.Body)
	if n > MaxFrame {
		return fmt.Errorf("wire: frame of %d bytes exceeds limit", n)
	}
	var hdr [4 + frameHeader]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(n))
	hdr[4] = byte(env.Kind)
	binary.LittleEndian.PutUint64(hdr[5:13], uint64(env.From))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	if len(env.Body) > 0 {
		if _, err := w.Write(env.Body); err != nil {
			return err
		}
	}
	return nil
}

// ReadFrame reads one envelope from r.
func ReadFrame(r io.Reader) (*Envelope, error) {
	var lenBuf [4]byte
	if _, err := io.ReadFull(r, lenBuf[:]); err != nil {
		return nil, err
	}
	n := binary.LittleEndian.Uint32(lenBuf[:])
	if n < frameHeader || n > MaxFrame {
		return nil, fmt.Errorf("wire: bad frame length %d", n)
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(r, buf); err != nil {
		return nil, err
	}
	env := &Envelope{
		Kind: Kind(buf[0]),
		From: core.NodeID(binary.LittleEndian.Uint64(buf[1:9])),
		Body: buf[9:],
	}
	return env, nil
}

// FrameSize returns the on-wire size of an envelope, for overhead
// accounting.
func FrameSize(env *Envelope) int { return 4 + frameHeader + len(env.Body) }
