package wire

import (
	"bytes"
	"testing"

	"bluedove/internal/core"
)

// The fuzz targets assert the decoders never panic or over-allocate on
// corrupt input — they must either return a valid body or an error. Seeds
// come from the encode round-trip tests so the interesting structured paths
// are explored from the start. CI runs each with a short -fuzztime smoke.

func fuzzMsg() *core.Message {
	m := core.NewMessage([]float64{1, 2, 3, 4}, []byte("pay"))
	m.ID = 7
	m.PublishedAt = 12345
	return m
}

// fuzzTracedMsg is fuzzMsg carrying a fully stamped trace context, so the
// fuzzers explore the trace-present decode path from the first iteration.
func fuzzTracedMsg() *core.Message {
	m := fuzzMsg()
	m.Trace = &core.TraceCtx{ID: 7, Dispatcher: 100, Matcher: 2, Dim: 3}
	for h := core.Hop(0); h < core.HopCount; h++ {
		m.Trace.Stamp(h, 12345+int64(h))
	}
	return m
}

func FuzzDecodeForward(f *testing.F) {
	f.Add((&ForwardBody{Dim: 2, Msg: fuzzMsg()}).Encode())
	f.Add((&ForwardBody{Dim: 2, Msg: fuzzTracedMsg()}).Encode())
	f.Add((&ForwardBody{Dim: 0, Msg: core.NewMessage(nil, nil)}).Encode())
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		b, err := DecodeForward(data)
		if err == nil && b.Msg == nil {
			t.Fatal("nil message without error")
		}
	})
}

func FuzzDecodeDeliver(f *testing.F) {
	f.Add((&DeliverBody{Subscriber: 9, Msg: fuzzMsg(),
		SubIDs: []core.SubscriptionID{1, 2, 3}}).Encode())
	f.Add((&DeliverBody{Subscriber: 9, Msg: fuzzTracedMsg(),
		SubIDs: []core.SubscriptionID{1}}).Encode())
	f.Add((&DeliverBody{Msg: core.NewMessage(nil, nil)}).Encode())
	f.Add([]byte{0xff, 0xff, 0xff, 0xff})
	f.Fuzz(func(t *testing.T, data []byte) {
		b, err := DecodeDeliver(data)
		if err == nil && b.Msg == nil {
			t.Fatal("nil message without error")
		}
	})
}

func FuzzDecodeForwardBatch(f *testing.F) {
	f.Add((&ForwardBatchBody{Entries: []ForwardEntry{
		{Dim: 1, Msg: fuzzMsg()}, {Dim: 3, Msg: fuzzMsg()}}}).Encode())
	f.Add((&ForwardBatchBody{Entries: []ForwardEntry{
		{Dim: 1, Msg: fuzzTracedMsg()}, {Dim: 3, Msg: fuzzMsg()}}}).Encode())
	f.Add((&ForwardBatchBody{}).Encode())
	f.Add([]byte{0xff, 0xff, 0xff, 0x7f})
	f.Fuzz(func(t *testing.T, data []byte) {
		b, err := DecodeForwardBatch(data)
		if err == nil {
			for _, e := range b.Entries {
				if e.Msg == nil {
					t.Fatal("nil entry message without error")
				}
			}
		}
	})
}

func FuzzDecodeDeliverBatch(f *testing.F) {
	f.Add((&DeliverBatchBody{Deliveries: []DeliverBody{
		{Subscriber: 1, Msg: fuzzMsg(), SubIDs: []core.SubscriptionID{5}}}}).Encode())
	f.Add((&DeliverBatchBody{Deliveries: []DeliverBody{
		{Subscriber: 1, Msg: fuzzTracedMsg(), SubIDs: []core.SubscriptionID{5}}}}).Encode())
	f.Add((&DeliverBatchBody{}).Encode())
	f.Fuzz(func(t *testing.T, data []byte) {
		b, err := DecodeDeliverBatch(data)
		if err == nil {
			for i := range b.Deliveries {
				if b.Deliveries[i].Msg == nil {
					t.Fatal("nil delivery message without error")
				}
			}
		}
	})
}

func FuzzDecodeForwardAckBatch(f *testing.F) {
	f.Add((&ForwardAckBatchBody{IDs: []core.MessageID{1, 2, 3}}).Encode())
	f.Add((&ForwardAckBatchBody{IDs: []core.MessageID{7},
		Traces: []AckTrace{{Msg: 7, Ctx: *fuzzTracedMsg().Trace}}}).Encode())
	f.Add((&ForwardAckBatchBody{IDs: []core.MessageID{7},
		Busy: []BusyEntry{{ID: 8, Dim: 2, QueueLen: 64}}}).Encode())
	f.Add([]byte{0xff, 0xff, 0xff, 0x7f})
	f.Fuzz(func(t *testing.T, data []byte) {
		b, err := DecodeForwardAckBatch(data)
		if err == nil && len(b.IDs) == 0 && len(b.Traces) > 0 {
			// Traces always accompany acked IDs in practice, but the decoder
			// only guarantees structural validity; just exercise it.
			_ = b
		}
	})
}

func FuzzDecodeSessionHello(f *testing.F) {
	f.Add((&SessionHelloBody{Token: 7, LastSeq: 3, Subscriber: 9, DeliverAddr: "edge-client-9"}).Encode())
	f.Add((&SessionHelloBody{Subscriber: 1}).Encode())
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		b, err := DecodeSessionHello(data)
		if err == nil && b == nil {
			t.Fatal("nil body without error")
		}
	})
}

func FuzzDecodeSessionWelcome(f *testing.F) {
	f.Add((&SessionWelcomeBody{Token: 7, Resumed: true, NextSeq: 10, Lost: 2}).Encode())
	f.Add((&SessionWelcomeBody{Err: "edge: unknown session token"}).Encode())
	f.Add([]byte{0xff})
	f.Fuzz(func(t *testing.T, data []byte) {
		b, err := DecodeSessionWelcome(data)
		if err == nil && b == nil {
			t.Fatal("nil body without error")
		}
	})
}

func FuzzDecodeSessionSub(f *testing.F) {
	sub := core.NewSubscription(9, []core.Range{{Low: 1, High: 2}, {Low: 3, High: 4}})
	sub.ID = 5
	f.Add((&SessionSubBody{Token: 7, Sub: sub}).Encode())
	f.Add((&SessionSubBody{Sub: core.NewSubscription(1, nil)}).Encode())
	f.Add([]byte{0xff, 0xff, 0xff, 0xff})
	f.Fuzz(func(t *testing.T, data []byte) {
		b, err := DecodeSessionSub(data)
		if err == nil && b.Sub == nil {
			t.Fatal("nil subscription without error")
		}
	})
}

func FuzzDecodeEdgeDeliver(f *testing.F) {
	f.Add((&EdgeDeliverBody{Seq: 3, Msg: fuzzMsg(),
		SubIDs: []core.SubscriptionID{1, 2, 3}}).Encode())
	f.Add((&EdgeDeliverBody{Seq: 4, Msg: fuzzTracedMsg(),
		SubIDs: []core.SubscriptionID{1}}).Encode())
	f.Add((&EdgeDeliverBody{Msg: core.NewMessage(nil, nil)}).Encode())
	f.Add([]byte{0xff, 0xff, 0xff, 0xff})
	f.Fuzz(func(t *testing.T, data []byte) {
		b, err := DecodeEdgeDeliver(data)
		if err == nil && b.Msg == nil {
			t.Fatal("nil message without error")
		}
	})
}

func FuzzDecodeSessionAck(f *testing.F) {
	f.Add((&SessionAckBody{Token: 7, Seq: 3}).Encode())
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		b, err := DecodeSessionAck(data)
		if err == nil && b == nil {
			t.Fatal("nil body without error")
		}
	})
}

func FuzzDecodeSessionClose(f *testing.F) {
	f.Add((&SessionCloseBody{Token: 7}).Encode())
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		b, err := DecodeSessionClose(data)
		if err == nil && b == nil {
			t.Fatal("nil body without error")
		}
	})
}

func FuzzReadFrame(f *testing.F) {
	var buf bytes.Buffer
	if err := WriteFrame(&buf, &Envelope{Kind: KindForward, From: 3,
		Body: (&ForwardBody{Dim: 1, Msg: fuzzMsg()}).Encode()}); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	var empty bytes.Buffer
	if err := WriteFrame(&empty, &Envelope{Kind: KindTableRequest, From: 1}); err != nil {
		f.Fatal(err)
	}
	f.Add(empty.Bytes())
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 1})
	f.Fuzz(func(t *testing.T, data []byte) {
		r := bytes.NewReader(data)
		env, err := ReadFrame(r)
		if err != nil {
			return
		}
		if env == nil {
			t.Fatal("nil envelope without error")
		}
		// A well-formed frame must re-encode to the same bytes it consumed.
		consumed := len(data) - r.Len()
		var out bytes.Buffer
		if err := WriteFrame(&out, env); err != nil {
			t.Fatalf("re-encode of decoded frame failed: %v", err)
		}
		if !bytes.Equal(out.Bytes(), data[:consumed]) {
			t.Fatal("re-encoded frame differs from input")
		}
	})
}
