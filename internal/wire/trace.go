package wire

import (
	"fmt"

	"bluedove/internal/core"
)

// Trace contexts ride inside encoded messages (and forward acks) behind a
// one-byte presence flag, so untraced traffic — the overwhelmingly common
// case — pays exactly one zero byte and no allocation on either side.
const (
	traceAbsent  = 0
	tracePresent = 1
)

// encodedTraceSize is the wire size of one TraceCtx, excluding the
// presence flag: ID + dispatcher + matcher (u64 each), dim (u16), hop
// count (u8), and HopCount i64 timestamps.
const encodedTraceSize = 8 + 8 + 8 + 2 + 1 + 8*int(core.HopCount)

// TraceOverhead is the worst-case extra bytes a trace context adds to an
// encoded message (presence flag + context). Size estimators and client
// frame-limit checks use it as an upper bound.
const TraceOverhead = 1 + encodedTraceSize

// traceSize returns the encoded size of a message's optional trace,
// including the presence flag.
func traceSize(t *core.TraceCtx) int {
	if t == nil {
		return 1
	}
	return TraceOverhead
}

// encodeTrace writes the presence flag and, when t is non-nil, the context.
func encodeTrace(w *writer, t *core.TraceCtx) {
	if t == nil {
		w.u8(traceAbsent)
		return
	}
	w.u8(tracePresent)
	w.u64(uint64(t.ID))
	w.u64(uint64(t.Dispatcher))
	w.u64(uint64(t.Matcher))
	w.u16(uint16(t.Dim))
	w.u8(uint8(core.HopCount))
	for _, h := range t.Hops {
		w.i64(h)
	}
}

// decodeTrace reads the presence flag and the context if one follows.
// The hop count is encoded so frames survive HopCount growing or
// shrinking across versions: unknown trailing hops are dropped, missing
// ones stay zero.
func decodeTrace(r *reader) *core.TraceCtx {
	switch r.u8() {
	case traceAbsent:
		return nil
	case tracePresent:
	default:
		if r.err == nil {
			r.err = fmt.Errorf("wire: invalid trace presence flag")
		}
		return nil
	}
	t := &core.TraceCtx{}
	t.ID = core.TraceID(r.u64())
	t.Dispatcher = core.NodeID(r.u64())
	t.Matcher = core.NodeID(r.u64())
	t.Dim = int(r.u16())
	n := int(r.u8())
	if n > 64 {
		r.err = fmt.Errorf("wire: implausible trace hop count %d", n)
		return nil
	}
	for i := 0; i < n; i++ {
		ts := r.i64()
		if i < int(core.HopCount) {
			t.Hops[i] = ts
		}
	}
	if r.err != nil {
		return nil
	}
	return t
}

// AckTrace is one completed trace context returned to the dispatcher in a
// ForwardAckBatchBody, keyed by the message it traces.
type AckTrace struct {
	Msg core.MessageID
	Ctx core.TraceCtx
}
