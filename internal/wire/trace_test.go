package wire

import (
	"math/rand"
	"reflect"
	"testing"

	"bluedove/internal/core"
)

// randTrace builds a trace context with each field independently present or
// absent, mirroring the partially stamped contexts real hops produce.
func randTrace(rng *rand.Rand) *core.TraceCtx {
	t := &core.TraceCtx{
		ID:         core.TraceID(rng.Uint64()),
		Dispatcher: core.NodeID(rng.Uint64()),
		Matcher:    core.NodeID(rng.Uint64()),
		Dim:        rng.Intn(1 << 16),
	}
	for h := range t.Hops {
		if rng.Intn(2) == 0 {
			t.Hops[h] = rng.Int63() - rng.Int63()
		}
	}
	return t
}

func randTracedMsg(rng *rand.Rand) *core.Message {
	attrs := make([]float64, rng.Intn(5))
	for i := range attrs {
		attrs[i] = rng.NormFloat64() * 100
	}
	m := core.NewMessage(attrs, []byte("payload"))
	m.ID = core.MessageID(rng.Uint64())
	m.PublishedAt = rng.Int63()
	if rng.Intn(3) > 0 {
		m.Trace = randTrace(rng)
	}
	return m
}

// TestTraceRoundTripProperty drives randomly populated trace contexts
// through every message-bearing body shape (single and batch frames) and
// the ack bodies, asserting exact field recovery.
func TestTraceRoundTripProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for iter := 0; iter < 500; iter++ {
		msg := randTracedMsg(rng)

		fb, err := DecodeForward((&ForwardBody{Dim: 3, Msg: msg}).Encode())
		if err != nil {
			t.Fatalf("iter %d: forward: %v", iter, err)
		}
		if !reflect.DeepEqual(fb.Msg.Trace, msg.Trace) {
			t.Fatalf("iter %d: forward trace mismatch:\n got %+v\nwant %+v", iter, fb.Msg.Trace, msg.Trace)
		}

		db, err := DecodeDeliver((&DeliverBody{Subscriber: 1, Msg: msg,
			SubIDs: []core.SubscriptionID{9}}).Encode())
		if err != nil {
			t.Fatalf("iter %d: deliver: %v", iter, err)
		}
		if !reflect.DeepEqual(db.Msg.Trace, msg.Trace) {
			t.Fatalf("iter %d: deliver trace mismatch", iter)
		}

		pb, err := DecodePublish((&PublishBody{Msg: msg}).Encode())
		if err != nil {
			t.Fatalf("iter %d: publish: %v", iter, err)
		}
		if !reflect.DeepEqual(pb.Msg.Trace, msg.Trace) {
			t.Fatalf("iter %d: publish trace mismatch", iter)
		}

		ab, err := DecodeForwardAck((&ForwardAckBody{ID: msg.ID, Trace: msg.Trace}).Encode())
		if err != nil {
			t.Fatalf("iter %d: ack: %v", iter, err)
		}
		if ab.ID != msg.ID || !reflect.DeepEqual(ab.Trace, msg.Trace) {
			t.Fatalf("iter %d: ack trace mismatch", iter)
		}
	}
}

// TestBatchTraceRoundTrip mixes traced and untraced entries in the batch
// frames and asserts per-entry recovery.
func TestBatchTraceRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for iter := 0; iter < 200; iter++ {
		n := 1 + rng.Intn(8)
		fwd := &ForwardBatchBody{}
		del := &DeliverBatchBody{}
		for i := 0; i < n; i++ {
			msg := randTracedMsg(rng)
			fwd.Entries = append(fwd.Entries, ForwardEntry{Dim: i, Msg: msg})
			del.Deliveries = append(del.Deliveries, DeliverBody{
				Subscriber: core.SubscriberID(i), Msg: msg})
		}

		gotF, err := DecodeForwardBatch(fwd.Encode())
		if err != nil {
			t.Fatalf("iter %d: forward batch: %v", iter, err)
		}
		for i := range fwd.Entries {
			if !reflect.DeepEqual(gotF.Entries[i].Msg.Trace, fwd.Entries[i].Msg.Trace) {
				t.Fatalf("iter %d entry %d: forward batch trace mismatch", iter, i)
			}
		}

		gotD, err := DecodeDeliverBatch(del.Encode())
		if err != nil {
			t.Fatalf("iter %d: deliver batch: %v", iter, err)
		}
		for i := range del.Deliveries {
			if !reflect.DeepEqual(gotD.Deliveries[i].Msg.Trace, del.Deliveries[i].Msg.Trace) {
				t.Fatalf("iter %d entry %d: deliver batch trace mismatch", iter, i)
			}
		}
	}
}

// TestAckBatchTraceRoundTrip round-trips batch acks carrying trace contexts
// back to the dispatcher.
func TestAckBatchTraceRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for iter := 0; iter < 200; iter++ {
		b := &ForwardAckBatchBody{}
		for i := 0; i < 1+rng.Intn(16); i++ {
			id := core.MessageID(rng.Uint64())
			b.IDs = append(b.IDs, id)
			if rng.Intn(4) == 0 {
				b.Traces = append(b.Traces, AckTrace{Msg: id, Ctx: *randTrace(rng)})
			}
		}
		got, err := DecodeForwardAckBatch(b.Encode())
		if err != nil {
			t.Fatalf("iter %d: %v", iter, err)
		}
		if !reflect.DeepEqual(got.IDs, b.IDs) {
			t.Fatalf("iter %d: ID mismatch", iter)
		}
		if len(got.Traces) != len(b.Traces) {
			t.Fatalf("iter %d: trace count %d != %d", iter, len(got.Traces), len(b.Traces))
		}
		for i := range b.Traces {
			if got.Traces[i].Msg != b.Traces[i].Msg || !reflect.DeepEqual(got.Traces[i].Ctx, b.Traces[i].Ctx) {
				t.Fatalf("iter %d trace %d: mismatch", iter, i)
			}
		}
	}
}

// TestTraceOverheadIsUpperBound pins the size estimator: a fully stamped
// trace must never encode to more than TraceOverhead bytes.
func TestTraceOverheadIsUpperBound(t *testing.T) {
	msg := core.NewMessage([]float64{1}, nil)
	plain := len((&ForwardBody{Msg: msg}).Encode())
	msg.Trace = randTrace(rand.New(rand.NewSource(1)))
	traced := len((&ForwardBody{Msg: msg}).Encode())
	if got := traced - plain; got > TraceOverhead-1 {
		// plain already includes the 1-byte absent flag.
		t.Fatalf("trace adds %d bytes, TraceOverhead-1 = %d", got, TraceOverhead-1)
	}
	e := ForwardEntry{Dim: 1, Msg: msg}
	if enc := len((&ForwardBatchBody{Entries: []ForwardEntry{e}}).Encode()) - 4; enc > e.EncodedSize() {
		t.Fatalf("EncodedSize %d underestimates traced entry %d", e.EncodedSize(), enc)
	}
}

// TestDecodeTraceRejectsBadFlag pins the decoder's strictness: presence
// flags other than 0/1 are corruption, not silently-untraced messages.
func TestDecodeTraceRejectsBadFlag(t *testing.T) {
	enc := (&ForwardBody{Dim: 1, Msg: fuzzMsg()}).Encode()
	// The flag byte sits after dim (2) + id (8) + publishedAt (8) + ttl (8).
	enc[26] = 0xCC
	if _, err := DecodeForward(enc); err == nil {
		t.Fatal("corrupt trace flag decoded without error")
	}
}
