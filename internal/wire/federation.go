package wire

import (
	"errors"
	"fmt"
	"math"

	"bluedove/internal/core"
)

// Federation frames: the border tier's protocol (see internal/federation).
// Borders pull per-matcher interest summaries with SummaryRequest/Response,
// gossip the merged cluster summary to peer clusters with SummaryAnnounce
// (full state, periodic anti-entropy) and SummaryDelta (changed dimensions
// only), and ship matching publications across the inter-cluster mesh with
// FedPublish, acknowledged per message by FedAck.
const (
	// KindSummaryRequest asks a matcher for its interest summary
	// (border → matcher request; carries the last seen version so an
	// unchanged matcher answers with a cheap "unchanged").
	KindSummaryRequest Kind = 90 + iota
	// KindSummaryResponse returns a matcher's per-dimension interest
	// summary and its version.
	KindSummaryResponse
	// KindSummaryAnnounce carries a cluster's full interest summary to a
	// peer cluster's border (one-way, periodic anti-entropy).
	KindSummaryAnnounce
	// KindSummaryDelta carries only the changed dimensions between two
	// summary versions (one-way; applied only if the receiver holds the
	// base version, else it waits for the next announce).
	KindSummaryDelta
	// KindFedPublish ships one publication across the inter-cluster mesh
	// (border → border request), tagged with the origin cluster and a hop
	// count for loop suppression.
	KindFedPublish
	// KindFedAck acknowledges a FedPublish: the receiving border has
	// accepted responsibility for injecting the publication locally.
	KindFedAck
)

// MaxSummaryRanges bounds the decoded interval count per dimension. The
// border caps its own summaries far below this (federation.Config
// MaxRangesPerDim, default 64); the decode-side bound exists so a
// misbehaving or hostile peer cluster cannot make a border allocate
// unbounded state from one frame.
const MaxSummaryRanges = 4096

// ErrSummaryTooLarge reports a summary frame whose dimension or interval
// counts exceed the decode-side bounds, or whose intervals carry NaN
// endpoints — a malformed or hostile peer. Callers drop the frame (and
// typically count it) instead of applying it.
var ErrSummaryTooLarge = errors.New("wire: summary exceeds decode bounds")

// encodeRangeSet writes one dimension's sorted interval list.
func encodeRangeSet(w *writer, rs []core.Range) {
	w.u16(uint16(len(rs)))
	for _, r := range rs {
		w.f64(r.Low)
		w.f64(r.High)
	}
}

// decodeRangeSet reads one dimension's interval list, enforcing the count
// bound and rejecting NaN endpoints (a NaN poisons every later comparison,
// silently turning the summary into "matches nothing").
func decodeRangeSet(r *reader) []core.Range {
	n := int(r.u16())
	if n > MaxSummaryRanges {
		r.err = fmt.Errorf("%w: %d intervals in one dimension", ErrSummaryTooLarge, n)
		return nil
	}
	if r.err != nil {
		return nil
	}
	rs := make([]core.Range, 0, n)
	for i := 0; i < n; i++ {
		rng := core.Range{Low: r.f64(), High: r.f64()}
		if math.IsNaN(rng.Low) || math.IsNaN(rng.High) {
			r.err = fmt.Errorf("%w: NaN interval endpoint", ErrSummaryTooLarge)
			return nil
		}
		rs = append(rs, rng)
	}
	return rs
}

// encodeSummaryDims writes a per-dimension interval-list table.
func encodeSummaryDims(w *writer, dims [][]core.Range) {
	w.u16(uint16(len(dims)))
	for _, rs := range dims {
		encodeRangeSet(w, rs)
	}
}

// decodeSummaryDims reads a per-dimension interval-list table.
func decodeSummaryDims(r *reader) [][]core.Range {
	n := int(r.u16())
	if n > maxDims {
		r.err = fmt.Errorf("%w: %d dimensions", ErrSummaryTooLarge, n)
		return nil
	}
	if r.err != nil {
		return nil
	}
	dims := make([][]core.Range, 0, n)
	for i := 0; i < n; i++ {
		dims = append(dims, decodeRangeSet(r))
		if r.err != nil {
			return nil
		}
	}
	return dims
}

// SummaryRequestBody asks a matcher for its interest summary.
type SummaryRequestBody struct {
	// IfVersion is the requester's last seen summary version for this
	// matcher; when it still matches, the matcher answers Unchanged
	// without enumerating its indexes. 0 always fetches.
	IfVersion uint64
}

// Encode serializes the body.
func (b *SummaryRequestBody) Encode() []byte {
	var w writer
	w.u64(b.IfVersion)
	return w.buf
}

// DecodeSummaryRequest parses a SummaryRequestBody.
func DecodeSummaryRequest(data []byte) (*SummaryRequestBody, error) {
	r := reader{buf: data}
	b := &SummaryRequestBody{IfVersion: r.u64()}
	return b, r.finish()
}

// SummaryResponseBody returns a matcher's interest summary.
type SummaryResponseBody struct {
	// Version is the matcher's mutation counter at enumeration time.
	Version uint64
	// Unchanged short-circuits the transfer: the requester's IfVersion is
	// still current and Dims is empty.
	Unchanged bool
	// Dims is the per-dimension merged interval union over every stored
	// subscription (federation-tagged subscribers excluded).
	Dims [][]core.Range
}

// Encode serializes the body.
func (b *SummaryResponseBody) Encode() []byte {
	var w writer
	w.u64(b.Version)
	if b.Unchanged {
		w.u8(1)
	} else {
		w.u8(0)
	}
	encodeSummaryDims(&w, b.Dims)
	return w.buf
}

// DecodeSummaryResponse parses a SummaryResponseBody.
func DecodeSummaryResponse(data []byte) (*SummaryResponseBody, error) {
	r := reader{buf: data}
	b := &SummaryResponseBody{Version: r.u64(), Unchanged: r.u8() == 1}
	b.Dims = decodeSummaryDims(&r)
	return b, r.finish()
}

// SummaryAnnounceBody carries a cluster's full interest summary.
type SummaryAnnounceBody struct {
	// Cluster is the announcing cluster's ID.
	Cluster uint64
	// Version is the announcing border's summary version.
	Version uint64
	// Addr is the announcing border's listen address; the receiver matches
	// it against its configured peer list to bind the summary to a link.
	Addr string
	// Dims is the full per-dimension interval table.
	Dims [][]core.Range
}

// Encode serializes the body.
func (b *SummaryAnnounceBody) Encode() []byte {
	var w writer
	w.u64(b.Cluster)
	w.u64(b.Version)
	w.str(b.Addr)
	encodeSummaryDims(&w, b.Dims)
	return w.buf
}

// DecodeSummaryAnnounce parses a SummaryAnnounceBody.
func DecodeSummaryAnnounce(data []byte) (*SummaryAnnounceBody, error) {
	r := reader{buf: data}
	b := &SummaryAnnounceBody{Cluster: r.u64(), Version: r.u64(), Addr: r.str()}
	b.Dims = decodeSummaryDims(&r)
	return b, r.finish()
}

// SummaryDeltaBody carries only the dimensions that changed between two
// summary versions.
type SummaryDeltaBody struct {
	// Cluster is the announcing cluster's ID.
	Cluster uint64
	// FromVersion is the base the delta applies on; a receiver holding a
	// different version ignores the delta and waits for an announce.
	FromVersion uint64
	// ToVersion is the version after applying the delta.
	ToVersion uint64
	// Addr is the announcing border's listen address (see
	// SummaryAnnounceBody.Addr).
	Addr string
	// DimIdx lists the changed dimension indexes, aligned with Dims.
	DimIdx []uint16
	// Dims holds the replacement interval list per changed dimension.
	Dims [][]core.Range
}

// Encode serializes the body.
func (b *SummaryDeltaBody) Encode() []byte {
	var w writer
	w.u64(b.Cluster)
	w.u64(b.FromVersion)
	w.u64(b.ToVersion)
	w.str(b.Addr)
	w.u16(uint16(len(b.DimIdx)))
	for i, d := range b.DimIdx {
		w.u16(d)
		var rs []core.Range
		if i < len(b.Dims) {
			rs = b.Dims[i]
		}
		encodeRangeSet(&w, rs)
	}
	return w.buf
}

// DecodeSummaryDelta parses a SummaryDeltaBody.
func DecodeSummaryDelta(data []byte) (*SummaryDeltaBody, error) {
	r := reader{buf: data}
	b := &SummaryDeltaBody{Cluster: r.u64(), FromVersion: r.u64(), ToVersion: r.u64(), Addr: r.str()}
	n := int(r.u16())
	if n > maxDims {
		return nil, fmt.Errorf("%w: %d changed dimensions", ErrSummaryTooLarge, n)
	}
	for i := 0; i < n && r.err == nil; i++ {
		b.DimIdx = append(b.DimIdx, r.u16())
		b.Dims = append(b.Dims, decodeRangeSet(&r))
	}
	return b, r.finish()
}

// FedPublishBody ships one publication to a peer cluster.
type FedPublishBody struct {
	// Origin is the cluster the publication was first published in; a
	// border receiving its own cluster's ID back drops the frame (loop
	// guard).
	Origin uint64
	// Sender is the cluster that shipped this frame (differs from Origin
	// on relayed frames when MaxHops > 1).
	Sender uint64
	// Hops counts inter-cluster hops already taken; receivers drop frames
	// at their MaxHops bound.
	Hops uint8
	// Msg is the publication, carrying the origin cluster's message ID —
	// (Origin, Msg.ID) is the cross-cluster identity receivers dedup on.
	// The receiving border assigns a fresh local ID before injection.
	Msg *core.Message
}

// Encode serializes the body.
func (b *FedPublishBody) Encode() []byte {
	var w writer
	w.u64(b.Origin)
	w.u64(b.Sender)
	w.u8(b.Hops)
	encodeMessage(&w, b.Msg)
	return w.buf
}

// DecodeFedPublish parses a FedPublishBody.
func DecodeFedPublish(data []byte) (*FedPublishBody, error) {
	r := reader{buf: data}
	b := &FedPublishBody{Origin: r.u64(), Sender: r.u64(), Hops: r.u8()}
	b.Msg = decodeMessage(&r)
	return b, r.finish()
}

// FedAckBody acknowledges one FedPublish by its cross-cluster identity.
type FedAckBody struct {
	// Origin and ID echo the acknowledged frame's identity.
	Origin uint64
	ID     core.MessageID
	// Dup reports the receiver had already accepted this publication
	// (the ack still settles the sender's pending entry).
	Dup bool
}

// Encode serializes the body.
func (b *FedAckBody) Encode() []byte {
	var w writer
	w.u64(b.Origin)
	w.u64(uint64(b.ID))
	if b.Dup {
		w.u8(1)
	} else {
		w.u8(0)
	}
	return w.buf
}

// DecodeFedAck parses a FedAckBody.
func DecodeFedAck(data []byte) (*FedAckBody, error) {
	r := reader{buf: data}
	b := &FedAckBody{Origin: r.u64(), ID: core.MessageID(r.u64()), Dup: r.u8() == 1}
	return b, r.finish()
}
