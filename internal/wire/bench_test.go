package wire

import (
	"testing"

	"bluedove/internal/core"
)

func BenchmarkForwardEncode(b *testing.B) {
	m := core.NewMessage([]float64{1, 2, 3, 4}, make([]byte, 64))
	m.ID = 1
	body := &ForwardBody{Dim: 2, Msg: m}
	b.ReportMetric(float64(len(body.Encode())), "bytes")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = body.Encode()
	}
}

// benchBatch builds a batch of n distinct messages.
func benchBatch(n int) *ForwardBatchBody {
	body := &ForwardBatchBody{Entries: make([]ForwardEntry, 0, n)}
	for i := 0; i < n; i++ {
		m := core.NewMessage([]float64{1, 2, 3, 4}, make([]byte, 64))
		m.ID = core.MessageID(i + 1)
		body.Entries = append(body.Entries, ForwardEntry{Dim: i % 4, Msg: m})
	}
	return body
}

// BenchmarkForwardBatchEncode64 encodes 64 publications into one pooled
// frame body; each iteration is one *batch*, so per-message allocations are
// allocs/op ÷ 64 — the amortization the dispatcher's coalescing sender buys.
func BenchmarkForwardBatchEncode64(b *testing.B) {
	body := benchBatch(64)
	b.ReportMetric(float64(len(body.Encode()))/64, "bytes/msg")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf := GetBuf()
		buf.B = body.AppendTo(buf.B)
		PutBuf(buf)
	}
}

func BenchmarkForwardBatchDecode64(b *testing.B) {
	data := benchBatch(64).Encode()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := DecodeForwardBatch(data); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDeliverBatchEncode64(b *testing.B) {
	body := &DeliverBatchBody{Deliveries: make([]DeliverBody, 0, 64)}
	for i := 0; i < 64; i++ {
		m := core.NewMessage([]float64{1, 2, 3, 4}, make([]byte, 64))
		m.ID = core.MessageID(i + 1)
		body.Deliveries = append(body.Deliveries, DeliverBody{
			Subscriber: core.SubscriberID(i % 8), Msg: m,
			SubIDs: []core.SubscriptionID{1, 2, 3},
		})
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf := GetBuf()
		buf.B = body.AppendTo(buf.B)
		PutBuf(buf)
	}
}

func BenchmarkForwardDecode(b *testing.B) {
	m := core.NewMessage([]float64{1, 2, 3, 4}, make([]byte, 64))
	data := (&ForwardBody{Dim: 2, Msg: m}).Encode()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := DecodeForward(data); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDeliverRoundtrip(b *testing.B) {
	m := core.NewMessage([]float64{1, 2, 3, 4}, make([]byte, 64))
	body := &DeliverBody{Subscriber: 7, Msg: m,
		SubIDs: []core.SubscriptionID{1, 2, 3, 4, 5}}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := DecodeDeliver(body.Encode()); err != nil {
			b.Fatal(err)
		}
	}
}
