package wire

import (
	"testing"

	"bluedove/internal/core"
)

func BenchmarkForwardEncode(b *testing.B) {
	m := core.NewMessage([]float64{1, 2, 3, 4}, make([]byte, 64))
	m.ID = 1
	body := &ForwardBody{Dim: 2, Msg: m}
	b.ReportMetric(float64(len(body.Encode())), "bytes")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = body.Encode()
	}
}

func BenchmarkForwardDecode(b *testing.B) {
	m := core.NewMessage([]float64{1, 2, 3, 4}, make([]byte, 64))
	data := (&ForwardBody{Dim: 2, Msg: m}).Encode()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := DecodeForward(data); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDeliverRoundtrip(b *testing.B) {
	m := core.NewMessage([]float64{1, 2, 3, 4}, make([]byte, 64))
	body := &DeliverBody{Subscriber: 7, Msg: m,
		SubIDs: []core.SubscriptionID{1, 2, 3, 4, 5}}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := DecodeDeliver(body.Encode()); err != nil {
			b.Fatal(err)
		}
	}
}
