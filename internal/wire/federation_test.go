package wire

import (
	"bytes"
	"errors"
	"math"
	"reflect"
	"testing"

	"bluedove/internal/core"
)

func sampleDims() [][]core.Range {
	return [][]core.Range{
		{{Low: 0, High: 10}, {Low: 50, High: 60}},
		{},
		{{Low: -5, High: 5}},
		{{Low: math.Inf(-1), High: math.Inf(1)}},
	}
}

func TestSummaryRequestRoundTrip(t *testing.T) {
	in := &SummaryRequestBody{IfVersion: 42}
	out, err := DecodeSummaryRequest(in.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if out.IfVersion != 42 {
		t.Fatalf("IfVersion = %d, want 42", out.IfVersion)
	}
}

func TestSummaryResponseRoundTrip(t *testing.T) {
	in := &SummaryResponseBody{Version: 7, Unchanged: false, Dims: sampleDims()}
	out, err := DecodeSummaryResponse(in.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if out.Version != in.Version || out.Unchanged != in.Unchanged {
		t.Fatalf("header mismatch: %+v", out)
	}
	if !reflect.DeepEqual(out.Dims, in.Dims) {
		t.Fatalf("dims mismatch: got %v want %v", out.Dims, in.Dims)
	}

	unchanged := &SummaryResponseBody{Version: 8, Unchanged: true}
	out, err = DecodeSummaryResponse(unchanged.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if !out.Unchanged || len(out.Dims) != 0 {
		t.Fatalf("unchanged round-trip: %+v", out)
	}
}

func TestSummaryAnnounceRoundTrip(t *testing.T) {
	in := &SummaryAnnounceBody{Cluster: 3, Version: 9, Addr: "border-1", Dims: sampleDims()}
	out, err := DecodeSummaryAnnounce(in.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if out.Cluster != 3 || out.Version != 9 || out.Addr != "border-1" {
		t.Fatalf("header mismatch: %+v", out)
	}
	if !reflect.DeepEqual(out.Dims, in.Dims) {
		t.Fatalf("dims mismatch: got %v want %v", out.Dims, in.Dims)
	}
}

func TestSummaryDeltaRoundTrip(t *testing.T) {
	in := &SummaryDeltaBody{
		Cluster: 2, FromVersion: 4, ToVersion: 5, Addr: "border-2",
		DimIdx: []uint16{1, 3},
		Dims:   [][]core.Range{{{Low: 1, High: 2}}, {}},
	}
	out, err := DecodeSummaryDelta(in.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if out.Cluster != 2 || out.FromVersion != 4 || out.ToVersion != 5 || out.Addr != "border-2" {
		t.Fatalf("header mismatch: %+v", out)
	}
	if !reflect.DeepEqual(out.DimIdx, in.DimIdx) {
		t.Fatalf("dim indexes mismatch: %v", out.DimIdx)
	}
	if !reflect.DeepEqual(out.Dims, in.Dims) {
		t.Fatalf("dims mismatch: got %v want %v", out.Dims, in.Dims)
	}
}

func TestFedPublishRoundTrip(t *testing.T) {
	in := &FedPublishBody{Origin: 1, Sender: 2, Hops: 1, Msg: fuzzTracedMsg()}
	out, err := DecodeFedPublish(in.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if out.Origin != 1 || out.Sender != 2 || out.Hops != 1 {
		t.Fatalf("header mismatch: %+v", out)
	}
	if out.Msg.ID != in.Msg.ID || !bytes.Equal(out.Msg.Payload, in.Msg.Payload) {
		t.Fatalf("message mismatch: %+v", out.Msg)
	}
	if out.Msg.Trace == nil {
		t.Fatal("trace context dropped")
	}
}

func TestFedAckRoundTrip(t *testing.T) {
	in := &FedAckBody{Origin: 4, ID: 0x123456789, Dup: true}
	out, err := DecodeFedAck(in.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if out.Origin != 4 || out.ID != 0x123456789 || !out.Dup {
		t.Fatalf("round-trip mismatch: %+v", out)
	}
}

// TestSummaryDecodeBounds feeds hostile frames: interval counts past
// MaxSummaryRanges, dimension counts past maxDims, and NaN endpoints must
// all come back as ErrSummaryTooLarge, never as a huge allocation.
func TestSummaryDecodeBounds(t *testing.T) {
	// One dimension claiming 65535 intervals (> MaxSummaryRanges), with no
	// interval data behind it — the count bound must fire before any
	// allocation sized by the claim.
	var w writer
	w.u64(1) // cluster
	w.u64(1) // version
	w.str("x")
	w.u16(1)      // 1 dimension
	w.u16(0xffff) // hostile interval count
	if _, err := DecodeSummaryAnnounce(w.buf); !errors.Is(err, ErrSummaryTooLarge) {
		t.Fatalf("hostile interval count: err = %v, want ErrSummaryTooLarge", err)
	}

	// Dimension count past maxDims.
	var w2 writer
	w2.u64(1)
	w2.u64(1)
	w2.str("x")
	w2.u16(uint16(maxDims + 1))
	if _, err := DecodeSummaryAnnounce(w2.buf); !errors.Is(err, ErrSummaryTooLarge) {
		t.Fatalf("hostile dim count: err = %v, want ErrSummaryTooLarge", err)
	}

	// NaN endpoint.
	nan := &SummaryAnnounceBody{Cluster: 1, Version: 1, Addr: "x",
		Dims: [][]core.Range{{{Low: math.NaN(), High: 1}}}}
	if _, err := DecodeSummaryAnnounce(nan.Encode()); !errors.Is(err, ErrSummaryTooLarge) {
		t.Fatalf("NaN endpoint: err = %v, want ErrSummaryTooLarge", err)
	}

	// Same bounds on the delta decoder.
	var w3 writer
	w3.u64(1)
	w3.u64(1)
	w3.u64(2)
	w3.str("x")
	w3.u16(1)      // one changed dim
	w3.u16(0)      // dim index
	w3.u16(0xffff) // hostile interval count
	if _, err := DecodeSummaryDelta(w3.buf); !errors.Is(err, ErrSummaryTooLarge) {
		t.Fatalf("hostile delta interval count: err = %v, want ErrSummaryTooLarge", err)
	}
	var w4 writer
	w4.u64(1)
	w4.u64(1)
	w4.u64(2)
	w4.str("x")
	w4.u16(uint16(maxDims + 1))
	if _, err := DecodeSummaryDelta(w4.buf); !errors.Is(err, ErrSummaryTooLarge) {
		t.Fatalf("hostile delta dim count: err = %v, want ErrSummaryTooLarge", err)
	}

	// And on the response decoder (a compromised matcher peer).
	var w5 writer
	w5.u64(1)
	w5.u8(0)
	w5.u16(1)
	w5.u16(0xffff)
	if _, err := DecodeSummaryResponse(w5.buf); !errors.Is(err, ErrSummaryTooLarge) {
		t.Fatalf("hostile response interval count: err = %v, want ErrSummaryTooLarge", err)
	}
}

// TestSummaryDecodeTruncation truncates a valid announce at every byte
// offset; each prefix must decode to an error, never panic.
func TestSummaryDecodeTruncation(t *testing.T) {
	full := (&SummaryAnnounceBody{Cluster: 3, Version: 9, Addr: "b", Dims: sampleDims()}).Encode()
	for i := 0; i < len(full); i++ {
		if _, err := DecodeSummaryAnnounce(full[:i]); err == nil {
			t.Fatalf("truncation at %d decoded without error", i)
		}
	}
	fp := (&FedPublishBody{Origin: 1, Sender: 1, Hops: 0, Msg: fuzzMsg()}).Encode()
	for i := 0; i < len(fp); i++ {
		if _, err := DecodeFedPublish(fp[:i]); err == nil {
			t.Fatalf("fed publish truncation at %d decoded without error", i)
		}
	}
}

func FuzzDecodeSummaryAnnounce(f *testing.F) {
	f.Add((&SummaryAnnounceBody{Cluster: 1, Version: 1, Addr: "b", Dims: sampleDims()}).Encode())
	f.Add((&SummaryAnnounceBody{Cluster: 2, Version: 9, Addr: ""}).Encode())
	f.Add([]byte{})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff})
	f.Fuzz(func(t *testing.T, data []byte) {
		b, err := DecodeSummaryAnnounce(data)
		if err != nil {
			return
		}
		if len(b.Dims) > maxDims {
			t.Fatalf("decoded %d dims past bound", len(b.Dims))
		}
		for _, rs := range b.Dims {
			if len(rs) > MaxSummaryRanges {
				t.Fatalf("decoded %d intervals past bound", len(rs))
			}
			for _, r := range rs {
				if math.IsNaN(r.Low) || math.IsNaN(r.High) {
					t.Fatal("NaN endpoint survived decode")
				}
			}
		}
	})
}

func FuzzDecodeSummaryDelta(f *testing.F) {
	f.Add((&SummaryDeltaBody{Cluster: 1, FromVersion: 1, ToVersion: 2, Addr: "b",
		DimIdx: []uint16{0, 2}, Dims: [][]core.Range{{{Low: 1, High: 2}}, {}}}).Encode())
	f.Add([]byte{})
	f.Add([]byte{0x01, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00})
	f.Fuzz(func(t *testing.T, data []byte) {
		b, err := DecodeSummaryDelta(data)
		if err != nil {
			return
		}
		if len(b.DimIdx) != len(b.Dims) {
			t.Fatalf("dim index / table length skew: %d vs %d", len(b.DimIdx), len(b.Dims))
		}
		for _, rs := range b.Dims {
			if len(rs) > MaxSummaryRanges {
				t.Fatalf("decoded %d intervals past bound", len(rs))
			}
		}
	})
}

func FuzzDecodeFedPublish(f *testing.F) {
	f.Add((&FedPublishBody{Origin: 1, Sender: 2, Hops: 1, Msg: fuzzMsg()}).Encode())
	f.Add((&FedPublishBody{Origin: 1, Sender: 1, Hops: 0, Msg: fuzzTracedMsg()}).Encode())
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		b, err := DecodeFedPublish(data)
		if err == nil && b.Msg == nil {
			t.Fatal("nil message without error")
		}
	})
}
