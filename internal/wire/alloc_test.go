package wire

import (
	"testing"

	"bluedove/internal/core"
)

// TestForwardBatchEncodeUntracedZeroAlloc pins the PR-1 forward-path
// guarantee with the trace-capable codec compiled in: encoding a pooled
// batch of untraced messages (Trace == nil — tracing disabled or sampled
// out) performs zero heap allocations.
func TestForwardBatchEncodeUntracedZeroAlloc(t *testing.T) {
	const batch = 64
	body := benchBatch(batch)
	for _, e := range body.Entries {
		if e.Msg.Trace != nil {
			t.Fatal("benchBatch messages must be untraced")
		}
	}
	allocs := testing.AllocsPerRun(100, func() {
		buf := GetBuf()
		buf.B = body.AppendTo(buf.B)
		PutBuf(buf)
	})
	if allocs != 0 {
		t.Fatalf("untraced %d-msg batch encode: %.1f allocs/frame, want 0", batch, allocs)
	}
}

// TestForwardBatchEncodeTracedZeroAlloc checks the traced path too: the
// trace context rides inline in the frame, so even full sampling adds bytes
// but no allocations to the pooled encode.
func TestForwardBatchEncodeTracedZeroAlloc(t *testing.T) {
	const batch = 64
	body := benchBatch(batch)
	for i, e := range body.Entries {
		tr := &core.TraceCtx{ID: core.TraceID(i + 1), Dispatcher: 1, Matcher: 2, Dim: i % 4}
		tr.Stamp(core.HopPublish, int64(i+1))
		tr.Stamp(core.HopIngest, int64(i+2))
		tr.Stamp(core.HopForward, int64(i+3))
		e.Msg.Trace = tr
	}
	allocs := testing.AllocsPerRun(100, func() {
		buf := GetBuf()
		buf.B = body.AppendTo(buf.B)
		PutBuf(buf)
	})
	if allocs != 0 {
		t.Fatalf("traced %d-msg batch encode: %.1f allocs/frame, want 0", batch, allocs)
	}
}
