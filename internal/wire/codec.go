// Package wire defines BlueDove's binary wire protocol: a length-prefixed
// frame carrying one typed protocol message. Encoding is hand-rolled over
// encoding/binary (little-endian, no reflection) so the hot paths — publish
// forwarding and delivery — allocate minimally.
//
// Frame layout:
//
//	uint32  payload length (excluding this prefix), capped by MaxFrame
//	uint8   message kind
//	uint64  sender node ID
//	...     kind-specific body
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
)

// ErrTruncated reports a body shorter than its fields demand.
var ErrTruncated = errors.New("wire: truncated message")

// ErrStringTooLong reports an encode of a string longer than the uint16
// length prefix can carry. Encoding panics with this error instead of
// silently truncating the length and corrupting the frame.
var ErrStringTooLong = errors.New("wire: string exceeds 65535 bytes")

// ErrBodyTooLarge reports an encode of a byte payload that could never fit
// in a frame. Encoding panics with this error instead of producing a frame
// WriteFrame would reject (or, worse, a silently corrupt length on a
// transport that skips the frame check).
var ErrBodyTooLarge = errors.New("wire: payload exceeds MaxFrame")

// writer is an append-only little-endian encoder.
type writer struct {
	buf []byte
}

func (w *writer) u8(v uint8)   { w.buf = append(w.buf, v) }
func (w *writer) u16(v uint16) { w.buf = binary.LittleEndian.AppendUint16(w.buf, v) }
func (w *writer) u32(v uint32) { w.buf = binary.LittleEndian.AppendUint32(w.buf, v) }
func (w *writer) u64(v uint64) { w.buf = binary.LittleEndian.AppendUint64(w.buf, v) }
func (w *writer) i64(v int64)  { w.u64(uint64(v)) }
func (w *writer) f64(v float64) {
	w.u64(math.Float64bits(v))
}
func (w *writer) bytes(b []byte) {
	if len(b) > MaxFrame {
		panic(fmt.Errorf("%w: %d bytes", ErrBodyTooLarge, len(b)))
	}
	w.u32(uint32(len(b)))
	w.buf = append(w.buf, b...)
}
func (w *writer) str(s string) {
	if len(s) > math.MaxUint16 {
		panic(fmt.Errorf("%w: %d bytes", ErrStringTooLong, len(s)))
	}
	w.u16(uint16(len(s)))
	w.buf = append(w.buf, s...)
}

// reader is a little-endian decoder with sticky error handling: after the
// first short read every accessor returns zero values and err is set.
type reader struct {
	buf []byte
	off int
	err error
}

func (r *reader) take(n int) []byte {
	if r.err != nil {
		return nil
	}
	if r.off+n > len(r.buf) {
		r.err = ErrTruncated
		return nil
	}
	b := r.buf[r.off : r.off+n]
	r.off += n
	return b
}

func (r *reader) u8() uint8 {
	b := r.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}

func (r *reader) u16() uint16 {
	b := r.take(2)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint16(b)
}

func (r *reader) u32() uint32 {
	b := r.take(4)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

func (r *reader) u64() uint64 {
	b := r.take(8)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}

func (r *reader) i64() int64 { return int64(r.u64()) }

func (r *reader) f64() float64 { return math.Float64frombits(r.u64()) }

func (r *reader) bytes() []byte {
	n := r.u32()
	if r.err != nil {
		return nil
	}
	if int(n) > len(r.buf)-r.off {
		r.err = fmt.Errorf("wire: declared %d bytes, %d remain: %w", n, len(r.buf)-r.off, ErrTruncated)
		return nil
	}
	b := r.take(int(n))
	out := make([]byte, len(b))
	copy(out, b)
	return out
}

func (r *reader) str() string {
	n := r.u16()
	if r.err != nil {
		return ""
	}
	if int(n) > len(r.buf)-r.off {
		r.err = ErrTruncated
		return ""
	}
	return string(r.take(int(n)))
}

// finish returns the decoder error, also flagging unconsumed trailing bytes.
func (r *reader) finish() error {
	if r.err != nil {
		return r.err
	}
	if r.off != len(r.buf) {
		return fmt.Errorf("wire: %d trailing bytes", len(r.buf)-r.off)
	}
	return nil
}
