package wire

import (
	"fmt"

	"bluedove/internal/core"
)

// Join/handover protocol kinds (paper Section III-C: "When a new matcher
// joins the system, it randomly contacts a dispatcher. The dispatcher
// chooses a heavily loaded matcher, and for each segment on that matcher
// splits half of the segment to the new matcher.").
const (
	// KindJoin is a new matcher announcing itself to a dispatcher.
	KindJoin Kind = 64 + iota
	// KindJoinAck returns the post-join segment table to the new matcher.
	KindJoinAck
	// KindHandover instructs a victim matcher to transfer a segment's
	// subscriptions to the joining matcher.
	KindHandover
)

// JoinBody announces a joining matcher.
type JoinBody struct {
	ID   core.NodeID
	Addr string
}

// Encode serializes the body.
func (b *JoinBody) Encode() []byte {
	var w writer
	w.u64(uint64(b.ID))
	w.str(b.Addr)
	return w.buf
}

// DecodeJoin parses a JoinBody.
func DecodeJoin(data []byte) (*JoinBody, error) {
	r := reader{buf: data}
	b := &JoinBody{ID: core.NodeID(r.u64()), Addr: r.str()}
	return b, r.finish()
}

// JoinAckBody carries the new segment table (partition.Table.Encode) back
// to the joining matcher, or an error text.
type JoinAckBody struct {
	Table []byte
	Err   string
}

// Encode serializes the body.
func (b *JoinAckBody) Encode() []byte {
	var w writer
	w.bytes(b.Table)
	w.str(b.Err)
	return w.buf
}

// DecodeJoinAck parses a JoinAckBody.
func DecodeJoinAck(data []byte) (*JoinAckBody, error) {
	r := reader{buf: data}
	b := &JoinAckBody{Table: r.bytes(), Err: r.str()}
	return b, r.finish()
}

// HandoverBody instructs the receiving matcher to send every subscription
// in its dimension-Dim set overlapping [Low, High) to TargetAddr. TransferID,
// when non-zero, is the idempotency key the receiver must stamp on the
// outgoing range transfer (see TransferRangeID); the originator derives it
// from the table version that caused the handover, so re-issued handovers
// produce identical transfer frames and the target adopts them at most once.
type HandoverBody struct {
	Dim        int
	Low, High  float64
	TargetAddr string
	TransferID uint64
}

// Encode serializes the body.
func (b *HandoverBody) Encode() []byte {
	var w writer
	w.u16(uint16(b.Dim))
	w.f64(b.Low)
	w.f64(b.High)
	w.str(b.TargetAddr)
	w.u64(b.TransferID)
	return w.buf
}

// DecodeHandover parses a HandoverBody.
func DecodeHandover(data []byte) (*HandoverBody, error) {
	r := reader{buf: data}
	b := &HandoverBody{Dim: int(r.u16()), Low: r.f64(), High: r.f64(), TargetAddr: r.str()}
	b.TransferID = r.u64()
	if b.Dim < 0 || b.Dim > maxDims {
		return nil, fmt.Errorf("wire: implausible dimension %d", b.Dim)
	}
	return b, r.finish()
}

// KindForwardAck acknowledges a matched publication (matcher → dispatcher,
// persistence extension): the dispatcher may drop its retransmit state.
const KindForwardAck Kind = 67

// ForwardAckBody acknowledges one forwarded message. Trace, when non-nil,
// carries the matcher's stamped trace context back to the dispatcher.
type ForwardAckBody struct {
	ID    core.MessageID
	Trace *core.TraceCtx
}

// AppendTo serializes the body into buf (which may be a pooled scratch
// buffer) and returns the extended slice.
func (b *ForwardAckBody) AppendTo(buf []byte) []byte {
	w := writer{buf: buf}
	w.u64(uint64(b.ID))
	encodeTrace(&w, b.Trace)
	return w.buf
}

// Encode serializes the body.
func (b *ForwardAckBody) Encode() []byte { return b.AppendTo(nil) }

// DecodeForwardAck parses a ForwardAckBody.
func DecodeForwardAck(data []byte) (*ForwardAckBody, error) {
	r := reader{buf: data}
	b := &ForwardAckBody{ID: core.MessageID(r.u64())}
	b.Trace = decodeTrace(&r)
	return b, r.finish()
}
