package wire

import (
	"reflect"
	"strings"
	"testing"

	"bluedove/internal/core"
)

func TestSessionHelloRoundTrip(t *testing.T) {
	in := &SessionHelloBody{Token: 77, LastSeq: 41, Subscriber: 9, DeliverAddr: "edge-client-9"}
	out, err := DecodeSessionHello(in.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(in, out) {
		t.Fatalf("round trip: got %+v, want %+v", out, in)
	}
	// Fresh hello: zero token, no deliver addr (locally attached session).
	fresh := &SessionHelloBody{Subscriber: 3}
	out, err = DecodeSessionHello(fresh.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(fresh, out) {
		t.Fatalf("round trip: got %+v, want %+v", out, fresh)
	}
}

func TestSessionWelcomeRoundTrip(t *testing.T) {
	for _, in := range []*SessionWelcomeBody{
		{Token: 5, Resumed: true, NextSeq: 100, Lost: 3},
		{Token: 6, NextSeq: 1},
		{Err: "edge: unknown session token"},
	} {
		out, err := DecodeSessionWelcome(in.Encode())
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(in, out) {
			t.Fatalf("round trip: got %+v, want %+v", out, in)
		}
	}
}

func TestSessionSubRoundTrip(t *testing.T) {
	sub := core.NewSubscription(9, []core.Range{{Low: 1, High: 2}, {Low: 3, High: 4}})
	sub.ID = 12
	in := &SessionSubBody{Token: 88, Sub: sub}
	out, err := DecodeSessionSub(in.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if out.Token != in.Token || !reflect.DeepEqual(in.Sub, out.Sub) {
		t.Fatalf("round trip: got %+v, want %+v", out, in)
	}
}

func TestSessionSubAckAndUnsubRoundTrip(t *testing.T) {
	for _, in := range []*SessionSubAckBody{{ID: 42}, {Err: "edge: session detached"}} {
		out, err := DecodeSessionSubAck(in.Encode())
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(in, out) {
			t.Fatalf("round trip: got %+v, want %+v", out, in)
		}
	}
	u := &SessionUnsubBody{Token: 5, ID: 42}
	out, err := DecodeSessionUnsub(u.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(u, out) {
		t.Fatalf("round trip: got %+v, want %+v", out, u)
	}
}

func TestEdgeDeliverRoundTrip(t *testing.T) {
	msg := core.NewMessage([]float64{1, 2, 3, 4}, []byte("payload"))
	msg.ID = 7
	msg.PublishedAt = 12345
	in := &EdgeDeliverBody{Seq: 99, Msg: msg, SubIDs: []core.SubscriptionID{1, 2, 3}}
	out, err := DecodeEdgeDeliver(in.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(in, out) {
		t.Fatalf("round trip: got %+v, want %+v", out, in)
	}
}

func TestSessionAckRoundTrip(t *testing.T) {
	in := &SessionAckBody{Token: 77, Seq: 123456}
	out, err := DecodeSessionAck(in.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(in, out) {
		t.Fatalf("round trip: got %+v, want %+v", out, in)
	}
}

func TestSessionCloseRoundTrip(t *testing.T) {
	in := &SessionCloseBody{Token: 91}
	out, err := DecodeSessionClose(in.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(in, out) {
		t.Fatalf("round trip: got %+v, want %+v", out, in)
	}
}

// TestSessionDecodeRejectsTruncation: every session decoder must reject a
// truncated body rather than return a partial struct silently.
func TestSessionDecodeRejectsTruncation(t *testing.T) {
	msg := core.NewMessage([]float64{1}, []byte("x"))
	bodies := map[string][]byte{
		"hello":   (&SessionHelloBody{Token: 1, Subscriber: 2, DeliverAddr: "a"}).Encode(),
		"welcome": (&SessionWelcomeBody{Token: 1, NextSeq: 2}).Encode(),
		"sub": (&SessionSubBody{Token: 1,
			Sub: core.NewSubscription(2, []core.Range{{Low: 0, High: 1}})}).Encode(),
		"sub-ack": (&SessionSubAckBody{ID: 1}).Encode(),
		"unsub":   (&SessionUnsubBody{Token: 1, ID: 2}).Encode(),
		"deliver": (&EdgeDeliverBody{Seq: 1, Msg: msg, SubIDs: []core.SubscriptionID{1}}).Encode(),
		"ack":     (&SessionAckBody{Token: 1, Seq: 2}).Encode(),
		"close":   (&SessionCloseBody{Token: 1}).Encode(),
	}
	decode := func(name string, data []byte) error {
		var err error
		switch name {
		case "hello":
			_, err = DecodeSessionHello(data)
		case "welcome":
			_, err = DecodeSessionWelcome(data)
		case "sub":
			_, err = DecodeSessionSub(data)
		case "sub-ack":
			_, err = DecodeSessionSubAck(data)
		case "unsub":
			_, err = DecodeSessionUnsub(data)
		case "deliver":
			_, err = DecodeEdgeDeliver(data)
		case "ack":
			_, err = DecodeSessionAck(data)
		case "close":
			_, err = DecodeSessionClose(data)
		}
		return err
	}
	for name, full := range bodies {
		if err := decode(name, full); err != nil {
			t.Fatalf("%s: full body rejected: %v", name, err)
		}
		for cut := 0; cut < len(full); cut++ {
			if err := decode(name, full[:cut]); err == nil {
				t.Fatalf("%s: truncation at %d/%d accepted", name, cut, len(full))
			}
		}
		if err := decode(name, append(append([]byte(nil), full...), 0)); err == nil {
			t.Fatalf("%s: trailing byte accepted", name)
		}
	}
}

// TestEdgeDeliverDecodeBoundsIDList: a corrupt frame declaring a huge SubIDs
// list must be rejected before any allocation sized by it.
func TestEdgeDeliverDecodeBoundsIDList(t *testing.T) {
	msg := core.NewMessage([]float64{1}, nil)
	good := (&EdgeDeliverBody{Seq: 1, Msg: msg, SubIDs: []core.SubscriptionID{1}}).Encode()
	// The id-list length prefix is the u32 right after the message; corrupt
	// it to maxListLen+1 (the SubIDs u64 payload stays, now undersized).
	bad := append([]byte(nil), good...)
	off := len(bad) - 4 - 8 // count prefix sits before the single 8-byte ID
	bad[off] = 0x01
	bad[off+1] = 0x00
	bad[off+2] = 0x40
	bad[off+3] = 0x00 // 1<<22 + 1
	if _, err := DecodeEdgeDeliver(bad); err == nil {
		t.Fatal("implausible id list accepted")
	}
}

// TestSessionHelloEncodeGuardsAddr: encoding an address longer than the
// uint16 string prefix must panic with ErrStringTooLong, like every other
// string-carrying frame, instead of corrupting the frame.
func TestSessionHelloEncodeGuardsAddr(t *testing.T) {
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("oversized DeliverAddr encoded without panic")
		}
		if err, ok := r.(error); !ok || !strings.Contains(err.Error(), ErrStringTooLong.Error()) {
			t.Fatalf("panic %v, want ErrStringTooLong", r)
		}
	}()
	b := &SessionHelloBody{DeliverAddr: strings.Repeat("x", 70000)}
	b.Encode()
}

// TestEdgeDeliverEncodeZeroAlloc pins the fan-out hot path: encoding an
// EdgeDeliver frame into a pooled buffer allocates nothing, exactly like the
// forward/deliver batch encoders.
func TestEdgeDeliverEncodeZeroAlloc(t *testing.T) {
	msg := core.NewMessage([]float64{1, 2, 3, 4}, []byte("payload"))
	msg.ID = 7
	body := &EdgeDeliverBody{Seq: 42, Msg: msg, SubIDs: []core.SubscriptionID{1, 2}}
	allocs := testing.AllocsPerRun(100, func() {
		buf := GetBuf()
		buf.B = body.AppendTo(buf.B)
		PutBuf(buf)
	})
	if allocs != 0 {
		t.Fatalf("edge deliver encode: %.1f allocs/frame, want 0", allocs)
	}
}

// TestSessionKindStrings: the new kinds must not collide with existing ones
// and must all be named.
func TestSessionKindStrings(t *testing.T) {
	kinds := []Kind{KindSessionHello, KindSessionWelcome, KindSessionSub,
		KindSessionSubAck, KindSessionUnsub, KindEdgeDeliver, KindSessionAck,
		KindSessionClose}
	seen := map[string]bool{}
	for _, k := range kinds {
		s := k.String()
		if strings.HasPrefix(s, "kind(") {
			t.Fatalf("kind %d unnamed", k)
		}
		if seen[s] {
			t.Fatalf("duplicate kind name %q", s)
		}
		seen[s] = true
	}
	// No overlap with the established kind ranges.
	for _, k := range kinds {
		if k < 80 || k > 87 {
			t.Fatalf("session kind %d outside the reserved 80..87 range", k)
		}
	}
}
