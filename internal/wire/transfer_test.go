package wire

import (
	"testing"

	"bluedove/internal/core"
)

func TestTransferRangeRoundtrip(t *testing.T) {
	b := &TransferRangeBody{
		TransferID:   TransferRangeID(7, 12, 1, 450, 600),
		Dim:          1,
		Low:          450,
		High:         600,
		Subs:         []*core.Subscription{sampleSub(), sampleSub()},
		DeliverAddrs: []string{"a", "b"},
	}
	got, err := DecodeTransferRange(b.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if got.TransferID != b.TransferID || got.Dim != 1 || got.Low != 450 || got.High != 600 {
		t.Fatalf("%+v", got)
	}
	if len(got.Subs) != 2 || got.DeliverAddrs[1] != "b" {
		t.Fatalf("%+v", got)
	}
	// Missing addrs pad to empty strings, like TransferBody.
	b2 := &TransferRangeBody{Dim: 0, Low: 0, High: 1, Subs: []*core.Subscription{sampleSub()}}
	got2, err := DecodeTransferRange(b2.Encode())
	if err != nil || got2.DeliverAddrs[0] != "" {
		t.Fatalf("%+v %v", got2, err)
	}
}

func TestTransferRangeID(t *testing.T) {
	a := TransferRangeID(3, 9, 0, 100, 200)
	if a != TransferRangeID(3, 9, 0, 100, 200) {
		t.Error("ID not deterministic")
	}
	// Every input dimension must perturb the key.
	for _, other := range []uint64{
		TransferRangeID(4, 9, 0, 100, 200),
		TransferRangeID(3, 10, 0, 100, 200),
		TransferRangeID(3, 9, 1, 100, 200),
		TransferRangeID(3, 9, 0, 101, 200),
		TransferRangeID(3, 9, 0, 100, 201),
	} {
		if other == a {
			t.Error("collision on single-field change")
		}
	}
}

func FuzzDecodeTransferRange(f *testing.F) {
	f.Add((&TransferRangeBody{
		TransferID:   TransferRangeID(7, 12, 1, 450, 600),
		Dim:          1, Low: 450, High: 600,
		Subs:         []*core.Subscription{sampleSub()},
		DeliverAddrs: []string{"addr"},
	}).Encode())
	f.Add((&TransferRangeBody{Dim: 0, Low: 0, High: 1}).Encode())
	f.Add([]byte{})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x7f})
	f.Fuzz(func(t *testing.T, data []byte) {
		b, err := DecodeTransferRange(data)
		if err != nil {
			return
		}
		if len(b.Subs) != len(b.DeliverAddrs) {
			t.Fatal("subs/addrs misaligned without error")
		}
		for _, s := range b.Subs {
			if s == nil {
				t.Fatal("nil subscription without error")
			}
		}
	})
}
