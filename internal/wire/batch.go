package wire

import (
	"fmt"
	"sync"

	"bluedove/internal/core"
)

// Batch frame kinds (publication batching along the publish path): many
// publications, deliveries or acks travel in one frame, amortizing the
// per-frame header, syscall and handler costs that dominate the forwarding
// hop at high message rates.
const (
	// KindForwardBatch carries several publications dispatcher → matcher,
	// each marked with the dimension set to search.
	KindForwardBatch Kind = 68 + iota
	// KindDeliverBatch carries several matched publications to one delivery
	// endpoint (a subscriber or a queue-hosting dispatcher).
	KindDeliverBatch
	// KindForwardAckBatch acknowledges several matched publications
	// matcher → dispatcher in one frame.
	KindForwardAckBatch
)

// ForwardEntry is one publication inside a ForwardBatchBody.
type ForwardEntry struct {
	Dim int
	Msg *core.Message
}

// EncodedSize returns an upper bound for the entry's encoded size, used by
// batchers to stay under MaxFrame without encoding twice.
func (e ForwardEntry) EncodedSize() int {
	// dim + id + publishedAt + ttl + trace + attr count + attrs + payload
	// length prefix.
	return 2 + 8 + 8 + 8 + traceSize(e.Msg.Trace) + 2 + 8*len(e.Msg.Attrs) + 4 + len(e.Msg.Payload)
}

// ForwardBatchBody carries a batch of publications one hop to a matcher
// (dispatcher → matcher). Entries may target different dimensions: the
// dispatcher coalesces per destination matcher, not per dimension.
type ForwardBatchBody struct {
	Entries []ForwardEntry
}

// AppendTo serializes the body into buf (which may be a pooled scratch
// buffer) and returns the extended slice.
func (b *ForwardBatchBody) AppendTo(buf []byte) []byte {
	w := writer{buf: buf}
	w.u32(uint32(len(b.Entries)))
	for _, e := range b.Entries {
		w.u16(uint16(e.Dim))
		encodeMessage(&w, e.Msg)
	}
	return w.buf
}

// Encode serializes the body.
func (b *ForwardBatchBody) Encode() []byte { return b.AppendTo(nil) }

// DecodeForwardBatch parses a ForwardBatchBody.
func DecodeForwardBatch(data []byte) (*ForwardBatchBody, error) {
	r := reader{buf: data}
	n := int(r.u32())
	if n > maxListLen {
		return nil, fmt.Errorf("wire: implausible batch length %d", n)
	}
	b := &ForwardBatchBody{}
	if r.err == nil && n > 0 {
		b.Entries = make([]ForwardEntry, 0, n)
		for i := 0; i < n && r.err == nil; i++ {
			e := ForwardEntry{Dim: int(r.u16())}
			e.Msg = decodeMessage(&r)
			b.Entries = append(b.Entries, e)
		}
	}
	return b, r.finish()
}

// DeliverBatchBody carries several matched publications to one delivery
// endpoint. Deliveries for different subscribers may share a frame when the
// endpoint is a queue-hosting dispatcher.
type DeliverBatchBody struct {
	Deliveries []DeliverBody
}

// AppendTo serializes the body into buf and returns the extended slice.
func (b *DeliverBatchBody) AppendTo(buf []byte) []byte {
	w := writer{buf: buf}
	w.u32(uint32(len(b.Deliveries)))
	for i := range b.Deliveries {
		d := &b.Deliveries[i]
		w.u64(uint64(d.Subscriber))
		encodeMessage(&w, d.Msg)
		w.u32(uint32(len(d.SubIDs)))
		for _, id := range d.SubIDs {
			w.u64(uint64(id))
		}
	}
	return w.buf
}

// Encode serializes the body.
func (b *DeliverBatchBody) Encode() []byte { return b.AppendTo(nil) }

// DecodeDeliverBatch parses a DeliverBatchBody.
func DecodeDeliverBatch(data []byte) (*DeliverBatchBody, error) {
	r := reader{buf: data}
	n := int(r.u32())
	if n > maxListLen {
		return nil, fmt.Errorf("wire: implausible batch length %d", n)
	}
	b := &DeliverBatchBody{}
	if r.err == nil && n > 0 {
		b.Deliveries = make([]DeliverBody, 0, n)
		for i := 0; i < n && r.err == nil; i++ {
			d := DeliverBody{Subscriber: core.SubscriberID(r.u64())}
			d.Msg = decodeMessage(&r)
			k := int(r.u32())
			if k > maxListLen {
				return nil, fmt.Errorf("wire: implausible id list length %d", k)
			}
			if r.err == nil && k > 0 {
				d.SubIDs = make([]core.SubscriptionID, 0, k)
				for j := 0; j < k; j++ {
					d.SubIDs = append(d.SubIDs, core.SubscriptionID(r.u64()))
				}
			}
			b.Deliveries = append(b.Deliveries, d)
		}
	}
	return b, r.finish()
}

// ForwardAckBatchBody acknowledges several forwarded messages at once.
// Traces carries back the stamped trace contexts of the (rare) sampled
// messages in the batch; untraced batches pay four zero bytes. Busy lists
// the batch items the matcher could NOT accept because the target stage's
// queue was full — per-item busy accounting so the dispatcher can re-route
// exactly the rejected publications (all-accepted batches pay four zero
// bytes).
type ForwardAckBatchBody struct {
	IDs    []core.MessageID
	Traces []AckTrace
	Busy   []BusyEntry
}

// AppendTo serializes the body into buf and returns the extended slice.
func (b *ForwardAckBatchBody) AppendTo(buf []byte) []byte {
	w := writer{buf: buf}
	w.u32(uint32(len(b.IDs)))
	for _, id := range b.IDs {
		w.u64(uint64(id))
	}
	w.u32(uint32(len(b.Traces)))
	for i := range b.Traces {
		w.u64(uint64(b.Traces[i].Msg))
		encodeTrace(&w, &b.Traces[i].Ctx)
	}
	w.u32(uint32(len(b.Busy)))
	for i := range b.Busy {
		w.u64(uint64(b.Busy[i].ID))
		w.u16(uint16(b.Busy[i].Dim))
		w.u32(uint32(b.Busy[i].QueueLen))
	}
	return w.buf
}

// Encode serializes the body.
func (b *ForwardAckBatchBody) Encode() []byte { return b.AppendTo(nil) }

// DecodeForwardAckBatch parses a ForwardAckBatchBody.
func DecodeForwardAckBatch(data []byte) (*ForwardAckBatchBody, error) {
	r := reader{buf: data}
	n := int(r.u32())
	if n > maxListLen {
		return nil, fmt.Errorf("wire: implausible ack batch %d", n)
	}
	b := &ForwardAckBatchBody{}
	if r.err == nil && n > 0 {
		b.IDs = make([]core.MessageID, 0, n)
		for i := 0; i < n; i++ {
			b.IDs = append(b.IDs, core.MessageID(r.u64()))
		}
	}
	t := int(r.u32())
	if t > maxListLen {
		return nil, fmt.Errorf("wire: implausible ack trace count %d", t)
	}
	if r.err == nil && t > 0 {
		b.Traces = make([]AckTrace, 0, t)
		for i := 0; i < t && r.err == nil; i++ {
			at := AckTrace{Msg: core.MessageID(r.u64())}
			if ctx := decodeTrace(&r); ctx != nil {
				at.Ctx = *ctx
			} else if r.err == nil {
				r.err = fmt.Errorf("wire: ack trace entry %d missing context", i)
			}
			b.Traces = append(b.Traces, at)
		}
	}
	u := int(r.u32())
	if u > maxListLen {
		return nil, fmt.Errorf("wire: implausible busy count %d", u)
	}
	if r.err == nil && u > 0 {
		b.Busy = make([]BusyEntry, 0, u)
		for i := 0; i < u && r.err == nil; i++ {
			b.Busy = append(b.Busy, BusyEntry{
				ID:       core.MessageID(r.u64()),
				Dim:      int(r.u16()),
				QueueLen: int(r.u32()),
			})
		}
	}
	return b, r.finish()
}

// Buf is a reusable encode scratch buffer. Hot-path senders encode bodies
// into pooled Bufs and return them after the transport has copied the bytes
// (see transport.Copying), eliminating the per-message body allocation.
type Buf struct {
	B []byte
}

var bufPool = sync.Pool{New: func() any { return &Buf{B: make([]byte, 0, 4096)} }}

// GetBuf fetches a scratch buffer with zero length from the pool.
func GetBuf() *Buf {
	b := bufPool.Get().(*Buf)
	b.B = b.B[:0]
	return b
}

// PutBuf returns a scratch buffer to the pool. The caller must not retain
// any slice of b.B afterwards.
func PutBuf(b *Buf) {
	if cap(b.B) > MaxFrame {
		return // don't pool pathological growth
	}
	bufPool.Put(b)
}
