package wire

import (
	"bytes"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"bluedove/internal/core"
	"bluedove/internal/forward"
)

func sampleMsg() *core.Message {
	m := core.NewMessage([]float64{1.5, -2.25, 1000}, []byte("payload"))
	m.ID = 42
	m.PublishedAt = 123456789
	return m
}

func sampleSub() *core.Subscription {
	s := core.NewSubscription(7, []core.Range{{Low: 0, High: 10}, {Low: -5, High: 5}})
	s.ID = 99
	return s
}

func TestSubscribeRoundtrip(t *testing.T) {
	b := &SubscribeBody{Sub: sampleSub(), DeliverAddr: "127.0.0.1:9000"}
	got, err := DecodeSubscribe(b.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Sub, b.Sub) || got.DeliverAddr != b.DeliverAddr {
		t.Fatalf("roundtrip mismatch: %+v vs %+v", got, b)
	}
}

func TestSubscribeAckRoundtrip(t *testing.T) {
	b := &SubscribeAckBody{ID: 5, QueueHandle: 77}
	got, err := DecodeSubscribeAck(b.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if *got != *b {
		t.Fatalf("%+v vs %+v", got, b)
	}
}

func TestStoreRoundtrip(t *testing.T) {
	b := &StoreBody{Dim: 3, Sub: sampleSub(), DeliverAddr: "addr"}
	got, err := DecodeStore(b.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if got.Dim != 3 || !reflect.DeepEqual(got.Sub, b.Sub) || got.DeliverAddr != "addr" {
		t.Fatalf("%+v", got)
	}
}

func TestUnsubscribeRoundtrip(t *testing.T) {
	got, err := DecodeUnsubscribe((&UnsubscribeBody{ID: 9}).Encode())
	if err != nil || got.ID != 9 {
		t.Fatalf("%v %v", got, err)
	}
}

func TestPublishForwardRoundtrip(t *testing.T) {
	p := &PublishBody{Msg: sampleMsg()}
	gp, err := DecodePublish(p.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(gp.Msg, p.Msg) {
		t.Fatalf("%+v vs %+v", gp.Msg, p.Msg)
	}
	f := &ForwardBody{Dim: 2, Msg: sampleMsg()}
	gf, err := DecodeForward(f.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if gf.Dim != 2 || !reflect.DeepEqual(gf.Msg, f.Msg) {
		t.Fatalf("%+v", gf)
	}
}

func TestDeliverRoundtrip(t *testing.T) {
	b := &DeliverBody{Msg: sampleMsg(), SubIDs: []core.SubscriptionID{1, 2, 3}}
	got, err := DecodeDeliver(b.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.SubIDs, b.SubIDs) || !reflect.DeepEqual(got.Msg, b.Msg) {
		t.Fatalf("%+v", got)
	}
	// Empty ID list.
	e := &DeliverBody{Msg: sampleMsg()}
	got2, err := DecodeDeliver(e.Encode())
	if err != nil || len(got2.SubIDs) != 0 {
		t.Fatalf("%v %v", got2, err)
	}
}

func TestLoadReportRoundtrip(t *testing.T) {
	b := &LoadReportBody{Loads: []forward.DimLoad{
		{Subs: 10, QueueLen: 3, ArrivalRate: 1.5, MatchRate: 2.5, ReportedAt: 999},
		{Subs: 0, QueueLen: 0, ArrivalRate: 0, MatchRate: 0, ReportedAt: -1},
	}}
	got, err := DecodeLoadReport(b.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Loads, b.Loads) {
		t.Fatalf("%+v vs %+v", got.Loads, b.Loads)
	}
}

// The trailing health byte round-trips, and a frame without it (an older
// node's encoding) decodes as healthy.
func TestLoadReportHealthByte(t *testing.T) {
	b := &LoadReportBody{
		Loads:  []forward.DimLoad{{Subs: 1, QueueLen: 2, ArrivalRate: 3, MatchRate: 4, ReportedAt: 5}},
		Health: 2,
	}
	enc := b.Encode()
	got, err := DecodeLoadReport(enc)
	if err != nil || got.Health != 2 {
		t.Fatalf("health round-trip: %+v, %v", got, err)
	}
	old, err := DecodeLoadReport(enc[:len(enc)-1]) // pre-health frame
	if err != nil {
		t.Fatalf("health-less frame rejected: %v", err)
	}
	if old.Health != 0 {
		t.Fatalf("absent health byte decoded as %d, want 0 (healthy)", old.Health)
	}
	if !reflect.DeepEqual(old.Loads, b.Loads) {
		t.Fatalf("loads corrupted by health-less decode: %+v", old.Loads)
	}
}

func TestTableResponseRoundtrip(t *testing.T) {
	b := &TableResponseBody{Table: []byte{1, 2, 3, 4}}
	got, err := DecodeTableResponse(b.Encode())
	if err != nil || !bytes.Equal(got.Table, b.Table) {
		t.Fatalf("%v %v", got, err)
	}
}

func TestTransferRoundtrip(t *testing.T) {
	b := &TransferBody{
		Dim:          1,
		Subs:         []*core.Subscription{sampleSub(), sampleSub()},
		DeliverAddrs: []string{"a", "b"},
	}
	got, err := DecodeTransfer(b.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if got.Dim != 1 || len(got.Subs) != 2 || got.DeliverAddrs[1] != "b" {
		t.Fatalf("%+v", got)
	}
	// Missing addrs pad to empty strings.
	b2 := &TransferBody{Dim: 0, Subs: []*core.Subscription{sampleSub()}}
	got2, err := DecodeTransfer(b2.Encode())
	if err != nil || got2.DeliverAddrs[0] != "" {
		t.Fatalf("%+v %v", got2, err)
	}
}

func TestPollRoundtrip(t *testing.T) {
	b := &PollBody{Subscriber: 4, Max: 100}
	got, err := DecodePoll(b.Encode())
	if err != nil || *got != *b {
		t.Fatalf("%+v %v", got, err)
	}
	pr := &PollResponseBody{Deliveries: []DeliverBody{
		{Msg: sampleMsg(), SubIDs: []core.SubscriptionID{8}},
		{Msg: sampleMsg()},
	}}
	gotPR, err := DecodePollResponse(pr.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if len(gotPR.Deliveries) != 2 || gotPR.Deliveries[0].SubIDs[0] != 8 {
		t.Fatalf("%+v", gotPR)
	}
}

func TestErrorRoundtrip(t *testing.T) {
	got, err := DecodeError((&ErrorBody{Text: "boom"}).Encode())
	if err != nil || got.Text != "boom" {
		t.Fatalf("%v %v", got, err)
	}
}

func TestKindString(t *testing.T) {
	if KindPublish.String() != "publish" || Kind(200).String() == "" {
		t.Error("Kind.String")
	}
}

func TestFrameRoundtrip(t *testing.T) {
	var buf bytes.Buffer
	env := &Envelope{Kind: KindForward, From: 12, Body: []byte("hello")}
	if err := WriteFrame(&buf, env); err != nil {
		t.Fatal(err)
	}
	if buf.Len() != FrameSize(env) {
		t.Errorf("FrameSize = %d, wrote %d", FrameSize(env), buf.Len())
	}
	got, err := ReadFrame(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Kind != env.Kind || got.From != env.From || !bytes.Equal(got.Body, env.Body) {
		t.Fatalf("%+v vs %+v", got, env)
	}
}

func TestFrameEmptyBody(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteFrame(&buf, &Envelope{Kind: KindPoll, From: 1}); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFrame(&buf)
	if err != nil || got.Kind != KindPoll || len(got.Body) != 0 {
		t.Fatalf("%+v %v", got, err)
	}
}

func TestFrameTooLarge(t *testing.T) {
	var buf bytes.Buffer
	big := &Envelope{Kind: KindPublish, Body: make([]byte, MaxFrame)}
	if err := WriteFrame(&buf, big); err == nil {
		t.Error("oversized frame accepted")
	}
	// Oversized declared length on read.
	var hdr bytes.Buffer
	hdr.Write([]byte{0xFF, 0xFF, 0xFF, 0xFF})
	if _, err := ReadFrame(&hdr); err == nil {
		t.Error("oversized declared length accepted")
	}
	// Undersized declared length.
	var hdr2 bytes.Buffer
	hdr2.Write([]byte{1, 0, 0, 0})
	if _, err := ReadFrame(&hdr2); err == nil {
		t.Error("undersized declared length accepted")
	}
}

func TestFrameTruncatedStream(t *testing.T) {
	var buf bytes.Buffer
	env := &Envelope{Kind: KindForward, From: 12, Body: []byte("hello")}
	if err := WriteFrame(&buf, env); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	for cut := 0; cut < len(data); cut++ {
		if _, err := ReadFrame(bytes.NewReader(data[:cut])); err == nil {
			t.Fatalf("truncated frame at %d accepted", cut)
		}
	}
}

// Property: every decoder rejects (never panics on) arbitrary truncations
// of valid encodings.
func TestDecodersRejectTruncation(t *testing.T) {
	bodies := map[string][]byte{
		"subscribe": (&SubscribeBody{Sub: sampleSub(), DeliverAddr: "x"}).Encode(),
		"store":     (&StoreBody{Dim: 1, Sub: sampleSub()}).Encode(),
		"publish":   (&PublishBody{Msg: sampleMsg()}).Encode(),
		"forward":   (&ForwardBody{Dim: 1, Msg: sampleMsg()}).Encode(),
		"deliver":   (&DeliverBody{Msg: sampleMsg(), SubIDs: []core.SubscriptionID{1}}).Encode(),
		"load":      (&LoadReportBody{Loads: []forward.DimLoad{{Subs: 1}}}).Encode(),
		"transfer":  (&TransferBody{Dim: 0, Subs: []*core.Subscription{sampleSub()}}).Encode(),
		"transfer-range": (&TransferRangeBody{TransferID: 9, Dim: 0, Low: 1, High: 2,
			Subs: []*core.Subscription{sampleSub()}}).Encode(),
		"handover": (&HandoverBody{Dim: 1, Low: 3, High: 4, TargetAddr: "x", TransferID: 9}).Encode(),
		"pollresp": (&PollResponseBody{Deliveries: []DeliverBody{{Msg: sampleMsg()}}}).Encode(),
	}
	decoders := map[string]func([]byte) error{
		"subscribe":      func(b []byte) error { _, err := DecodeSubscribe(b); return err },
		"store":          func(b []byte) error { _, err := DecodeStore(b); return err },
		"publish":        func(b []byte) error { _, err := DecodePublish(b); return err },
		"forward":        func(b []byte) error { _, err := DecodeForward(b); return err },
		"deliver":        func(b []byte) error { _, err := DecodeDeliver(b); return err },
		"load":           func(b []byte) error { _, err := DecodeLoadReport(b); return err },
		"transfer":       func(b []byte) error { _, err := DecodeTransfer(b); return err },
		"transfer-range": func(b []byte) error { _, err := DecodeTransferRange(b); return err },
		"handover":       func(b []byte) error { _, err := DecodeHandover(b); return err },
		"pollresp":       func(b []byte) error { _, err := DecodePollResponse(b); return err },
	}
	for name, body := range bodies {
		dec := decoders[name]
		if err := dec(body); err != nil {
			t.Fatalf("%s: valid body rejected: %v", name, err)
		}
		for cut := 0; cut < len(body); cut++ {
			// The load report's final byte is the optional health field:
			// frames from older nodes legally omit it, so cutting exactly
			// that byte must still decode.
			if name == "load" && cut == len(body)-1 {
				if err := dec(body[:cut]); err != nil {
					t.Errorf("load: health-less frame rejected: %v", err)
				}
				continue
			}
			if err := dec(body[:cut]); err == nil {
				t.Errorf("%s: truncation at %d accepted", name, cut)
			}
		}
		// Trailing garbage must be rejected too.
		if err := dec(append(append([]byte{}, body...), 0xAB)); err == nil {
			t.Errorf("%s: trailing byte accepted", name)
		}
	}
}

// Property: random garbage never panics any decoder.
func TestDecodersSurviveGarbage(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	decs := []func([]byte) error{
		func(b []byte) error { _, err := DecodeSubscribe(b); return err },
		func(b []byte) error { _, err := DecodeStore(b); return err },
		func(b []byte) error { _, err := DecodePublish(b); return err },
		func(b []byte) error { _, err := DecodeForward(b); return err },
		func(b []byte) error { _, err := DecodeDeliver(b); return err },
		func(b []byte) error { _, err := DecodeLoadReport(b); return err },
		func(b []byte) error { _, err := DecodeTransfer(b); return err },
		func(b []byte) error { _, err := DecodeTransferRange(b); return err },
		func(b []byte) error { _, err := DecodeHandover(b); return err },
		func(b []byte) error { _, err := DecodePollResponse(b); return err },
		func(b []byte) error { _, err := DecodePoll(b); return err },
		func(b []byte) error { _, err := DecodeError(b); return err },
	}
	for i := 0; i < 500; i++ {
		b := make([]byte, rng.Intn(200))
		rng.Read(b)
		for _, dec := range decs {
			_ = dec(b) // must not panic
		}
	}
}

// Property: message and subscription roundtrips preserve arbitrary values.
func TestMessageRoundtripProperty(t *testing.T) {
	f := func(id uint64, ts int64, attrs []float64, payload []byte) bool {
		if len(attrs) > 64 {
			attrs = attrs[:64]
		}
		m := core.NewMessage(attrs, payload)
		m.ID = core.MessageID(id)
		m.PublishedAt = ts
		got, err := DecodePublish((&PublishBody{Msg: m}).Encode())
		if err != nil {
			return false
		}
		if got.Msg.ID != m.ID || got.Msg.PublishedAt != ts || len(got.Msg.Attrs) != len(m.Attrs) {
			return false
		}
		for i := range m.Attrs {
			// NaN-safe comparison: NaN roundtrips to NaN.
			same := got.Msg.Attrs[i] == m.Attrs[i] ||
				(got.Msg.Attrs[i] != got.Msg.Attrs[i] && m.Attrs[i] != m.Attrs[i])
			if !same {
				return false
			}
		}
		return bytes.Equal(got.Msg.Payload, m.Payload)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestForwardAckRoundtrip(t *testing.T) {
	got, err := DecodeForwardAck((&ForwardAckBody{ID: 77}).Encode())
	if err != nil || got.ID != 77 {
		t.Fatalf("%v %v", got, err)
	}
	if _, err := DecodeForwardAck([]byte{1}); err == nil {
		t.Error("truncated ack accepted")
	}
}

func TestJoinBodiesRoundtrip(t *testing.T) {
	j, err := DecodeJoin((&JoinBody{ID: 3, Addr: "a:1"}).Encode())
	if err != nil || j.ID != 3 || j.Addr != "a:1" {
		t.Fatalf("%v %v", j, err)
	}
	a, err := DecodeJoinAck((&JoinAckBody{Table: []byte{1}, Err: "e"}).Encode())
	if err != nil || a.Err != "e" || len(a.Table) != 1 {
		t.Fatalf("%v %v", a, err)
	}
	h, err := DecodeHandover((&HandoverBody{Dim: 1, Low: 2, High: 3, TargetAddr: "t"}).Encode())
	if err != nil || h.Dim != 1 || h.Low != 2 || h.High != 3 || h.TargetAddr != "t" {
		t.Fatalf("%v %v", h, err)
	}
}
