package wire

import (
	"fmt"
	"hash/fnv"
	"math"

	"bluedove/internal/core"
)

// KindTransferRange moves subscription copies for one explicit value range of
// one dimension (matcher → matcher). It supersedes the bare KindTransfer for
// controller-initiated handovers and splits: the receiver learns exactly
// which range the batch covers and an idempotency key, so a retried or
// duplicated transfer (e.g. after the sender crashes mid-handover and the
// controller re-issues it) is adopted at most once.
const KindTransferRange Kind = 74

// TransferRangeID derives the deterministic idempotency key for a range
// transfer: the same (source, table version, dimension, range) always hashes
// to the same ID, so a re-sent transfer carries the same key and the
// receiver's adoption guard drops the duplicate.
func TransferRangeID(from core.NodeID, tableVersion uint64, dim int, low, high float64) uint64 {
	h := fnv.New64a()
	var b [8]byte
	put := func(v uint64) {
		for i := 0; i < 8; i++ {
			b[i] = byte(v >> (8 * i))
		}
		h.Write(b[:])
	}
	put(uint64(from))
	put(tableVersion)
	put(uint64(dim))
	put(math.Float64bits(low))
	put(math.Float64bits(high))
	return h.Sum64()
}

// TransferRangeBody carries the subscriptions whose dimension-Dim predicate
// overlaps [Low, High), moving ownership of that range from the sender to
// the receiver. TransferID is the idempotency key (TransferRangeID); a
// receiver that has already adopted it must acknowledge and discard the
// batch rather than store the subscriptions twice.
type TransferRangeBody struct {
	TransferID uint64
	Dim        int
	Low, High  float64
	Subs       []*core.Subscription
	// DeliverAddrs aligns with Subs: each subscription's delivery address.
	DeliverAddrs []string
}

// Encode serializes the body.
func (b *TransferRangeBody) Encode() []byte {
	var w writer
	w.u64(b.TransferID)
	w.u16(uint16(b.Dim))
	w.f64(b.Low)
	w.f64(b.High)
	w.u32(uint32(len(b.Subs)))
	for i, s := range b.Subs {
		encodeSubscription(&w, s)
		addr := ""
		if i < len(b.DeliverAddrs) {
			addr = b.DeliverAddrs[i]
		}
		w.str(addr)
	}
	return w.buf
}

// DecodeTransferRange parses a TransferRangeBody.
func DecodeTransferRange(data []byte) (*TransferRangeBody, error) {
	r := reader{buf: data}
	b := &TransferRangeBody{TransferID: r.u64(), Dim: int(r.u16())}
	b.Low = r.f64()
	b.High = r.f64()
	if b.Dim < 0 || b.Dim > maxDims {
		return nil, fmt.Errorf("wire: implausible dimension %d", b.Dim)
	}
	n := int(r.u32())
	if n > maxListLen {
		return nil, fmt.Errorf("wire: implausible transfer length %d", n)
	}
	if r.err == nil {
		for i := 0; i < n; i++ {
			b.Subs = append(b.Subs, decodeSubscription(&r))
			b.DeliverAddrs = append(b.DeliverAddrs, r.str())
			if r.err != nil {
				break
			}
		}
	}
	return b, r.finish()
}
