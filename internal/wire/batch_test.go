package wire

import (
	"errors"
	"testing"

	"bluedove/internal/core"
)

func testMsg(id uint64) *core.Message {
	m := core.NewMessage([]float64{1.5, 2.5, 3.5, 4.5}, []byte("payload"))
	m.ID = core.MessageID(id)
	m.PublishedAt = int64(id) * 1000
	return m
}

func TestForwardBatchRoundtrip(t *testing.T) {
	b := &ForwardBatchBody{}
	for i := 0; i < 5; i++ {
		b.Entries = append(b.Entries, ForwardEntry{Dim: i % 3, Msg: testMsg(uint64(i + 1))})
	}
	got, err := DecodeForwardBatch(b.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Entries) != len(b.Entries) {
		t.Fatalf("entries: got %d want %d", len(got.Entries), len(b.Entries))
	}
	for i, e := range got.Entries {
		want := b.Entries[i]
		if e.Dim != want.Dim || e.Msg.ID != want.Msg.ID ||
			e.Msg.PublishedAt != want.Msg.PublishedAt ||
			len(e.Msg.Attrs) != len(want.Msg.Attrs) ||
			string(e.Msg.Payload) != string(want.Msg.Payload) {
			t.Fatalf("entry %d mismatch: got %+v want %+v", i, e, want)
		}
	}
}

func TestForwardBatchEmpty(t *testing.T) {
	got, err := DecodeForwardBatch((&ForwardBatchBody{}).Encode())
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Entries) != 0 {
		t.Fatalf("want empty batch, got %d entries", len(got.Entries))
	}
}

func TestDeliverBatchRoundtrip(t *testing.T) {
	b := &DeliverBatchBody{}
	for i := 0; i < 4; i++ {
		b.Deliveries = append(b.Deliveries, DeliverBody{
			Subscriber: core.SubscriberID(i + 10),
			Msg:        testMsg(uint64(i + 1)),
			SubIDs:     []core.SubscriptionID{core.SubscriptionID(i), core.SubscriptionID(i + 100)},
		})
	}
	got, err := DecodeDeliverBatch(b.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Deliveries) != len(b.Deliveries) {
		t.Fatalf("deliveries: got %d want %d", len(got.Deliveries), len(b.Deliveries))
	}
	for i := range got.Deliveries {
		g, w := got.Deliveries[i], b.Deliveries[i]
		if g.Subscriber != w.Subscriber || g.Msg.ID != w.Msg.ID || len(g.SubIDs) != len(w.SubIDs) {
			t.Fatalf("delivery %d mismatch: got %+v want %+v", i, g, w)
		}
		for j := range g.SubIDs {
			if g.SubIDs[j] != w.SubIDs[j] {
				t.Fatalf("delivery %d sub id %d mismatch", i, j)
			}
		}
	}
}

// TestDeliverBatchMatchesSingleEncoding pins the batch entry layout to the
// standalone DeliverBody layout so the two never drift apart.
func TestDeliverBatchMatchesSingleEncoding(t *testing.T) {
	d := DeliverBody{Subscriber: 7, Msg: testMsg(42), SubIDs: []core.SubscriptionID{1, 2}}
	batch := (&DeliverBatchBody{Deliveries: []DeliverBody{d}}).Encode()
	single := d.Encode()
	// Batch layout: u32 count, then the DeliverBody encoding verbatim.
	if len(batch) != 4+len(single) {
		t.Fatalf("batch entry layout diverged: %d vs 4+%d", len(batch), len(single))
	}
	if string(batch[4:]) != string(single) {
		t.Fatal("batch entry bytes differ from standalone DeliverBody encoding")
	}
}

func TestForwardAckBatchRoundtrip(t *testing.T) {
	b := &ForwardAckBatchBody{IDs: []core.MessageID{1, 2, 3, 1 << 50}}
	got, err := DecodeForwardAckBatch(b.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if len(got.IDs) != len(b.IDs) {
		t.Fatalf("ids: got %d want %d", len(got.IDs), len(b.IDs))
	}
	for i := range got.IDs {
		if got.IDs[i] != b.IDs[i] {
			t.Fatalf("id %d mismatch", i)
		}
	}
}

func TestDecodeBatchTruncated(t *testing.T) {
	b := &ForwardBatchBody{Entries: []ForwardEntry{{Dim: 1, Msg: testMsg(1)}}}
	data := b.Encode()
	for cut := 1; cut < len(data); cut += 3 {
		if _, err := DecodeForwardBatch(data[:cut]); err == nil {
			t.Fatalf("truncation at %d not detected", cut)
		}
	}
}

func TestForwardEntryEncodedSizeIsUpperBound(t *testing.T) {
	e := ForwardEntry{Dim: 3, Msg: testMsg(9)}
	enc := (&ForwardBatchBody{Entries: []ForwardEntry{e}}).Encode()
	// Per-entry bytes: total minus the u32 count prefix.
	if got := len(enc) - 4; got > e.EncodedSize() {
		t.Fatalf("EncodedSize %d underestimates actual %d", e.EncodedSize(), got)
	}
}

// TestWriterRejectsOversizeString is the regression test for the silent
// uint16 truncation in writer.str: over-long strings must panic with
// ErrStringTooLong instead of corrupting the frame.
func TestWriterRejectsOversizeString(t *testing.T) {
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("oversize string encoded without panic")
		}
		err, ok := r.(error)
		if !ok || !errors.Is(err, ErrStringTooLong) {
			t.Fatalf("panic %v is not ErrStringTooLong", r)
		}
	}()
	long := make([]byte, 65536)
	(&ErrorBody{Text: string(long)}).Encode()
}

// TestWriterRejectsOversizeBytes: payloads that could never fit a frame must
// panic with ErrBodyTooLarge instead of encoding a length the reader side
// rejects (or a transport without frame checks silently corrupts).
func TestWriterRejectsOversizeBytes(t *testing.T) {
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("oversize payload encoded without panic")
		}
		err, ok := r.(error)
		if !ok || !errors.Is(err, ErrBodyTooLarge) {
			t.Fatalf("panic %v is not ErrBodyTooLarge", r)
		}
	}()
	m := core.NewMessage([]float64{1}, make([]byte, MaxFrame+1))
	(&PublishBody{Msg: m}).Encode()
}

func TestBufPoolRoundtrip(t *testing.T) {
	b := GetBuf()
	if len(b.B) != 0 {
		t.Fatalf("pooled buf not reset: len %d", len(b.B))
	}
	b.B = append(b.B, 1, 2, 3)
	PutBuf(b)
	b2 := GetBuf()
	if len(b2.B) != 0 {
		t.Fatalf("reused buf not reset: len %d", len(b2.B))
	}
	PutBuf(b2)
}
