package wire

import "bluedove/internal/core"

// Overload-control frame kinds. A matcher whose SEDA stage queue is full
// replies with a compact KindBusy NACK instead of dropping the forward
// silently, so the dispatcher can immediately re-route the publication to
// the next-best candidate. Clients that want edge admission control publish
// with KindPublishReq (request/response) and receive either KindPublishAck
// or KindError with OverloadedPrefix.
const (
	// KindBusy tells a dispatcher one forwarded publication was rejected
	// by a full matcher stage (matcher → dispatcher).
	KindBusy Kind = 71 + iota
	// KindPublishReq carries a client publication that expects an explicit
	// accept/reject response (client → dispatcher).
	KindPublishReq
	// KindPublishAck confirms an admitted publication (dispatcher → client).
	KindPublishAck
)

// OverloadedPrefix starts the ErrorBody text when a dispatcher rejects a
// publication at admission control. Clients map it to a typed error.
const OverloadedPrefix = "overloaded: "

// BusyBody is the per-message busy NACK: the rejected publication, the
// dimension whose stage was full, and the stage's backlog at rejection time
// (items, weighted by batch size) so the dispatcher's load view can be
// corrected without waiting for the next load report.
type BusyBody struct {
	ID       core.MessageID
	Dim      int
	QueueLen int
}

// AppendTo serializes the body into buf (which may be a pooled scratch
// buffer) and returns the extended slice.
func (b *BusyBody) AppendTo(buf []byte) []byte {
	w := writer{buf: buf}
	w.u64(uint64(b.ID))
	w.u16(uint16(b.Dim))
	w.u32(uint32(b.QueueLen))
	return w.buf
}

// Encode serializes the body.
func (b *BusyBody) Encode() []byte { return b.AppendTo(nil) }

// DecodeBusy parses a BusyBody.
func DecodeBusy(data []byte) (*BusyBody, error) {
	r := reader{buf: data}
	b := &BusyBody{
		ID:       core.MessageID(r.u64()),
		Dim:      int(r.u16()),
		QueueLen: int(r.u32()),
	}
	return b, r.finish()
}

// BusyEntry is one rejected item inside a ForwardAckBatchBody: per-item
// busy accounting for batches that straddle a full queue.
type BusyEntry struct {
	ID       core.MessageID
	Dim      int
	QueueLen int
}

// PublishAckBody confirms an admitted publication and returns the message
// ID the dispatcher assigned to it.
type PublishAckBody struct {
	ID core.MessageID
}

// AppendTo serializes the body into buf and returns the extended slice.
func (b *PublishAckBody) AppendTo(buf []byte) []byte {
	w := writer{buf: buf}
	w.u64(uint64(b.ID))
	return w.buf
}

// Encode serializes the body.
func (b *PublishAckBody) Encode() []byte { return b.AppendTo(nil) }

// DecodePublishAck parses a PublishAckBody.
func DecodePublishAck(data []byte) (*PublishAckBody, error) {
	r := reader{buf: data}
	b := &PublishAckBody{ID: core.MessageID(r.u64())}
	return b, r.finish()
}
