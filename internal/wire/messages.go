package wire

import (
	"fmt"

	"bluedove/internal/core"
	"bluedove/internal/forward"
)

// Kind discriminates protocol messages.
type Kind uint8

// Protocol message kinds.
const (
	// KindSubscribe carries a client subscription to a dispatcher.
	KindSubscribe Kind = iota + 1
	// KindSubscribeAck returns the assigned subscription ID to the client.
	KindSubscribeAck
	// KindStore installs a subscription copy on a matcher along a dimension.
	KindStore
	// KindUnsubscribe removes a subscription.
	KindUnsubscribe
	// KindPublish carries a client publication to a dispatcher.
	KindPublish
	// KindForward carries a publication from a dispatcher to a matcher,
	// marked with the dimension set to search.
	KindForward
	// KindDeliver carries a matched publication to a subscriber.
	KindDeliver
	// KindLoadReport carries a matcher's per-dimension (subs, q, λ, μ).
	KindLoadReport
	// KindTableRequest asks a matcher for its segment table.
	KindTableRequest
	// KindTableResponse returns an encoded partition table.
	KindTableResponse
	// KindGossip carries gossip-layer state (opaque to this package).
	KindGossip
	// KindTransfer moves subscription copies during a segment handover.
	KindTransfer
	// KindPoll asks for queued deliveries (indirect delivery mode).
	KindPoll
	// KindPollResponse returns queued deliveries.
	KindPollResponse
	// KindError reports a request failure.
	KindError
)

// String names the kind.
func (k Kind) String() string {
	names := map[Kind]string{
		KindSubscribe: "subscribe", KindSubscribeAck: "subscribe-ack",
		KindStore: "store", KindUnsubscribe: "unsubscribe",
		KindPublish: "publish", KindForward: "forward", KindDeliver: "deliver",
		KindLoadReport: "load-report", KindTableRequest: "table-request",
		KindTableResponse: "table-response", KindGossip: "gossip",
		KindTransfer: "transfer", KindPoll: "poll",
		KindPollResponse: "poll-response", KindError: "error",
		KindForwardBatch: "forward-batch", KindDeliverBatch: "deliver-batch",
		KindForwardAckBatch: "forward-ack-batch",
		KindBusy:            "busy", KindPublishReq: "publish-req",
		KindPublishAck: "publish-ack", KindTransferRange: "transfer-range",
		KindSessionHello: "session-hello", KindSessionWelcome: "session-welcome",
		KindSessionSub: "session-sub", KindSessionSubAck: "session-sub-ack",
		KindSessionUnsub: "session-unsub", KindEdgeDeliver: "edge-deliver",
		KindSessionAck: "session-ack", KindSessionClose: "session-close",
		KindSummaryRequest: "summary-request", KindSummaryResponse: "summary-response",
		KindSummaryAnnounce: "summary-announce", KindSummaryDelta: "summary-delta",
		KindFedPublish: "fed-publish", KindFedAck: "fed-ack",
	}
	if s, ok := names[k]; ok {
		return s
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// Envelope is one framed protocol message.
type Envelope struct {
	// Kind discriminates the body.
	Kind Kind
	// From is the sending node (0 for clients).
	From core.NodeID
	// Body is the kind-specific encoded payload.
	Body []byte
}

// Message body encoders/decoders. Each XxxBody struct has Encode() []byte
// and a matching DecodeXxx([]byte) function.

func encodeMessage(w *writer, m *core.Message) {
	w.u64(uint64(m.ID))
	w.i64(m.PublishedAt)
	w.i64(m.TTL)
	encodeTrace(w, m.Trace)
	w.u16(uint16(len(m.Attrs)))
	for _, v := range m.Attrs {
		w.f64(v)
	}
	w.bytes(m.Payload)
}

func decodeMessage(r *reader) *core.Message {
	m := &core.Message{}
	m.ID = core.MessageID(r.u64())
	m.PublishedAt = r.i64()
	m.TTL = r.i64()
	m.Trace = decodeTrace(r)
	k := int(r.u16())
	if k > maxDims {
		r.err = fmt.Errorf("wire: implausible dimension count %d", k)
		return m
	}
	m.Attrs = make([]float64, 0, k)
	for i := 0; i < k; i++ {
		m.Attrs = append(m.Attrs, r.f64())
	}
	m.Payload = r.bytes()
	return m
}

func encodeSubscription(w *writer, s *core.Subscription) {
	w.u64(uint64(s.ID))
	w.u64(uint64(s.Subscriber))
	w.u16(uint16(len(s.Predicates)))
	for _, p := range s.Predicates {
		w.f64(p.Low)
		w.f64(p.High)
	}
}

func decodeSubscription(r *reader) *core.Subscription {
	s := &core.Subscription{}
	s.ID = core.SubscriptionID(r.u64())
	s.Subscriber = core.SubscriberID(r.u64())
	k := int(r.u16())
	if k > maxDims {
		r.err = fmt.Errorf("wire: implausible dimension count %d", k)
		return s
	}
	s.Predicates = make([]core.Range, 0, k)
	for i := 0; i < k; i++ {
		s.Predicates = append(s.Predicates, core.Range{Low: r.f64(), High: r.f64()})
	}
	return s
}

// maxDims bounds decoded dimension counts against corrupt frames.
const maxDims = 1 << 12

// maxListLen bounds decoded list lengths against corrupt frames.
const maxListLen = 1 << 22

// SubscribeBody registers a subscription (client → dispatcher).
type SubscribeBody struct {
	Sub *core.Subscription
	// DeliverAddr, when non-empty, is the subscriber's listen address for
	// direct delivery; empty selects indirect (polled) delivery.
	DeliverAddr string
}

// Encode serializes the body.
func (b *SubscribeBody) Encode() []byte {
	var w writer
	encodeSubscription(&w, b.Sub)
	w.str(b.DeliverAddr)
	return w.buf
}

// DecodeSubscribe parses a SubscribeBody.
func DecodeSubscribe(data []byte) (*SubscribeBody, error) {
	r := reader{buf: data}
	b := &SubscribeBody{Sub: decodeSubscription(&r)}
	b.DeliverAddr = r.str()
	return b, r.finish()
}

// SubscribeAckBody acknowledges a subscription (dispatcher → client).
type SubscribeAckBody struct {
	ID core.SubscriptionID
	// QueueHandle identifies the polled delivery queue (indirect mode).
	QueueHandle uint64
}

// Encode serializes the body.
func (b *SubscribeAckBody) Encode() []byte {
	var w writer
	w.u64(uint64(b.ID))
	w.u64(b.QueueHandle)
	return w.buf
}

// DecodeSubscribeAck parses a SubscribeAckBody.
func DecodeSubscribeAck(data []byte) (*SubscribeAckBody, error) {
	r := reader{buf: data}
	b := &SubscribeAckBody{ID: core.SubscriptionID(r.u64()), QueueHandle: r.u64()}
	return b, r.finish()
}

// StoreBody installs a subscription copy on a matcher (dispatcher →
// matcher), tagged with the mPartition dimension it was assigned along.
type StoreBody struct {
	Dim int
	Sub *core.Subscription
	// DeliverAddr propagates the subscriber's delivery address.
	DeliverAddr string
}

// Encode serializes the body.
func (b *StoreBody) Encode() []byte {
	var w writer
	w.u16(uint16(b.Dim))
	encodeSubscription(&w, b.Sub)
	w.str(b.DeliverAddr)
	return w.buf
}

// DecodeStore parses a StoreBody.
func DecodeStore(data []byte) (*StoreBody, error) {
	r := reader{buf: data}
	b := &StoreBody{Dim: int(r.u16())}
	b.Sub = decodeSubscription(&r)
	b.DeliverAddr = r.str()
	return b, r.finish()
}

// UnsubscribeBody removes a subscription everywhere.
type UnsubscribeBody struct {
	ID core.SubscriptionID
}

// Encode serializes the body.
func (b *UnsubscribeBody) Encode() []byte {
	var w writer
	w.u64(uint64(b.ID))
	return w.buf
}

// DecodeUnsubscribe parses an UnsubscribeBody.
func DecodeUnsubscribe(data []byte) (*UnsubscribeBody, error) {
	r := reader{buf: data}
	b := &UnsubscribeBody{ID: core.SubscriptionID(r.u64())}
	return b, r.finish()
}

// PublishBody carries a publication (client → dispatcher).
type PublishBody struct {
	Msg *core.Message
}

// Encode serializes the body.
func (b *PublishBody) Encode() []byte {
	var w writer
	encodeMessage(&w, b.Msg)
	return w.buf
}

// DecodePublish parses a PublishBody.
func DecodePublish(data []byte) (*PublishBody, error) {
	r := reader{buf: data}
	b := &PublishBody{Msg: decodeMessage(&r)}
	return b, r.finish()
}

// ForwardBody carries a publication one hop to a matcher, marked with the
// dimension whose subscription set the matcher must search.
type ForwardBody struct {
	Dim int
	Msg *core.Message
}

// AppendTo serializes the body into buf (which may be a pooled scratch
// buffer) and returns the extended slice.
func (b *ForwardBody) AppendTo(buf []byte) []byte {
	w := writer{buf: buf}
	w.u16(uint16(b.Dim))
	encodeMessage(&w, b.Msg)
	return w.buf
}

// Encode serializes the body.
func (b *ForwardBody) Encode() []byte { return b.AppendTo(nil) }

// DecodeForward parses a ForwardBody.
func DecodeForward(data []byte) (*ForwardBody, error) {
	r := reader{buf: data}
	b := &ForwardBody{Dim: int(r.u16())}
	b.Msg = decodeMessage(&r)
	return b, r.finish()
}

// DeliverBody carries a matched publication to one subscriber, listing the
// subscriber's subscriptions it matched.
type DeliverBody struct {
	// Subscriber is the target client (used by queue hosts to file the
	// delivery in indirect mode).
	Subscriber core.SubscriberID
	Msg        *core.Message
	SubIDs     []core.SubscriptionID
}

// AppendTo serializes the body into buf (which may be a pooled scratch
// buffer) and returns the extended slice.
func (b *DeliverBody) AppendTo(buf []byte) []byte {
	w := writer{buf: buf}
	w.u64(uint64(b.Subscriber))
	encodeMessage(&w, b.Msg)
	w.u32(uint32(len(b.SubIDs)))
	for _, id := range b.SubIDs {
		w.u64(uint64(id))
	}
	return w.buf
}

// Encode serializes the body.
func (b *DeliverBody) Encode() []byte { return b.AppendTo(nil) }

// DecodeDeliver parses a DeliverBody.
func DecodeDeliver(data []byte) (*DeliverBody, error) {
	r := reader{buf: data}
	b := &DeliverBody{Subscriber: core.SubscriberID(r.u64())}
	b.Msg = decodeMessage(&r)
	n := int(r.u32())
	if n > maxListLen {
		return nil, fmt.Errorf("wire: implausible id list length %d", n)
	}
	if r.err == nil {
		b.SubIDs = make([]core.SubscriptionID, 0, n)
		for i := 0; i < n; i++ {
			b.SubIDs = append(b.SubIDs, core.SubscriptionID(r.u64()))
		}
	}
	return b, r.finish()
}

// LoadReportBody carries a matcher's per-dimension load state (matcher →
// dispatcher), the 64-byte push of paper Section IV-C, plus the node's
// durability health so dispatchers can deprioritize degraded matchers.
type LoadReportBody struct {
	Loads []forward.DimLoad
	// Health is the reporter's store.Health (0 healthy, 1 degraded,
	// 2 failed). It rides as a trailing byte so frames from older nodes
	// (which omit it) still decode — absent means healthy.
	Health uint8
}

// Encode serializes the body.
func (b *LoadReportBody) Encode() []byte {
	var w writer
	w.u16(uint16(len(b.Loads)))
	for _, l := range b.Loads {
		w.u32(uint32(l.Subs))
		w.u32(uint32(l.QueueLen))
		w.f64(l.ArrivalRate)
		w.f64(l.MatchRate)
		w.i64(l.ReportedAt)
	}
	w.u8(b.Health)
	return w.buf
}

// DecodeLoadReport parses a LoadReportBody.
func DecodeLoadReport(data []byte) (*LoadReportBody, error) {
	r := reader{buf: data}
	n := int(r.u16())
	if n > maxDims {
		return nil, fmt.Errorf("wire: implausible dimension count %d", n)
	}
	b := &LoadReportBody{}
	if r.err == nil {
		b.Loads = make([]forward.DimLoad, 0, n)
		for i := 0; i < n; i++ {
			b.Loads = append(b.Loads, forward.DimLoad{
				Subs:        int(r.u32()),
				QueueLen:    int(r.u32()),
				ArrivalRate: r.f64(),
				MatchRate:   r.f64(),
				ReportedAt:  r.i64(),
			})
		}
	}
	if r.err == nil && r.off < len(r.buf) {
		b.Health = r.u8() // trailing health byte (absent on older frames)
	}
	return b, r.finish()
}

// TableResponseBody returns an encoded partition table (matcher →
// dispatcher); Table is partition.Table.Encode output.
type TableResponseBody struct {
	Table []byte
}

// Encode serializes the body.
func (b *TableResponseBody) Encode() []byte {
	var w writer
	w.bytes(b.Table)
	return w.buf
}

// DecodeTableResponse parses a TableResponseBody.
func DecodeTableResponse(data []byte) (*TableResponseBody, error) {
	r := reader{buf: data}
	b := &TableResponseBody{Table: r.bytes()}
	return b, r.finish()
}

// TransferBody moves subscription copies during a segment handover
// (matcher → matcher).
type TransferBody struct {
	Dim  int
	Subs []*core.Subscription
	// DeliverAddrs aligns with Subs: each subscription's delivery address.
	DeliverAddrs []string
}

// Encode serializes the body.
func (b *TransferBody) Encode() []byte {
	var w writer
	w.u16(uint16(b.Dim))
	w.u32(uint32(len(b.Subs)))
	for i, s := range b.Subs {
		encodeSubscription(&w, s)
		addr := ""
		if i < len(b.DeliverAddrs) {
			addr = b.DeliverAddrs[i]
		}
		w.str(addr)
	}
	return w.buf
}

// DecodeTransfer parses a TransferBody.
func DecodeTransfer(data []byte) (*TransferBody, error) {
	r := reader{buf: data}
	b := &TransferBody{Dim: int(r.u16())}
	n := int(r.u32())
	if n > maxListLen {
		return nil, fmt.Errorf("wire: implausible transfer length %d", n)
	}
	if r.err == nil {
		for i := 0; i < n; i++ {
			b.Subs = append(b.Subs, decodeSubscription(&r))
			b.DeliverAddrs = append(b.DeliverAddrs, r.str())
			if r.err != nil {
				break
			}
		}
	}
	return b, r.finish()
}

// PollBody requests queued deliveries for a subscriber (client →
// dispatcher/matcher) in indirect delivery mode.
type PollBody struct {
	Subscriber core.SubscriberID
	// Max bounds the returned batch (0 = implementation default).
	Max uint32
}

// Encode serializes the body.
func (b *PollBody) Encode() []byte {
	var w writer
	w.u64(uint64(b.Subscriber))
	w.u32(b.Max)
	return w.buf
}

// DecodePoll parses a PollBody.
func DecodePoll(data []byte) (*PollBody, error) {
	r := reader{buf: data}
	b := &PollBody{Subscriber: core.SubscriberID(r.u64()), Max: r.u32()}
	return b, r.finish()
}

// PollResponseBody returns queued deliveries.
type PollResponseBody struct {
	Deliveries []DeliverBody
}

// Encode serializes the body.
func (b *PollResponseBody) Encode() []byte {
	var w writer
	w.u32(uint32(len(b.Deliveries)))
	for i := range b.Deliveries {
		w.bytes(b.Deliveries[i].Encode())
	}
	return w.buf
}

// DecodePollResponse parses a PollResponseBody.
func DecodePollResponse(data []byte) (*PollResponseBody, error) {
	r := reader{buf: data}
	n := int(r.u32())
	if n > maxListLen {
		return nil, fmt.Errorf("wire: implausible poll batch %d", n)
	}
	b := &PollResponseBody{}
	for i := 0; i < n && r.err == nil; i++ {
		raw := r.bytes()
		if r.err != nil {
			break
		}
		d, err := DecodeDeliver(raw)
		if err != nil {
			return nil, err
		}
		b.Deliveries = append(b.Deliveries, *d)
	}
	return b, r.finish()
}

// ErrorBody reports a request failure.
type ErrorBody struct {
	Text string
}

// Encode serializes the body.
func (b *ErrorBody) Encode() []byte {
	var w writer
	w.str(b.Text)
	return w.buf
}

// DecodeError parses an ErrorBody.
func DecodeError(data []byte) (*ErrorBody, error) {
	r := reader{buf: data}
	b := &ErrorBody{Text: r.str()}
	return b, r.finish()
}
