package wire

import (
	"fmt"

	"bluedove/internal/core"
)

// Session frame kinds (edge tier): a subscriber connects to an edge server
// with a lightweight session — hello/resume handshake, per-session
// subscribe/unsubscribe, sequence-stamped deliveries and cumulative acks —
// instead of registering straight with a dispatcher. The edge multiplexes
// many such sessions behind one aggregated upstream subscriber.
const (
	// KindSessionHello opens (Token == 0) or resumes (Token != 0) a session
	// (client → edge, request/response).
	KindSessionHello Kind = 80 + iota
	// KindSessionWelcome answers a hello with the session token and resume
	// outcome.
	KindSessionWelcome
	// KindSessionSub registers one session subscription with the edge.
	KindSessionSub
	// KindSessionSubAck returns the edge-assigned subscription ID.
	KindSessionSubAck
	// KindSessionUnsub removes one session subscription.
	KindSessionUnsub
	// KindEdgeDeliver carries one matched publication to a session,
	// sequence-stamped for resume (edge → client, one-way).
	KindEdgeDeliver
	// KindSessionAck acknowledges deliveries cumulatively up to a sequence
	// (client → edge, one-way); acked entries leave the session's buffers.
	KindSessionAck
	// KindSessionClose ends a session for good (client → edge, one-way):
	// the edge frees its buffers, resume ring and subscriptions, and the
	// token can no longer be resumed.
	KindSessionClose
)

// SessionHelloBody opens or resumes an edge session. Token 0 asks for a new
// session; a non-zero Token resumes a previous one, with LastSeq the highest
// delivery sequence the subscriber has seen (the edge replays everything
// newer that its bounded per-session ring still holds).
type SessionHelloBody struct {
	Token      uint64
	LastSeq    uint64
	Subscriber core.SubscriberID
	// DeliverAddr is the subscriber's listen address for pushed
	// KindEdgeDeliver frames. Empty on locally attached (in-process)
	// sessions.
	DeliverAddr string
}

// Encode serializes the body.
func (b *SessionHelloBody) Encode() []byte {
	var w writer
	w.u64(b.Token)
	w.u64(b.LastSeq)
	w.u64(uint64(b.Subscriber))
	w.str(b.DeliverAddr)
	return w.buf
}

// DecodeSessionHello parses a SessionHelloBody.
func DecodeSessionHello(data []byte) (*SessionHelloBody, error) {
	r := reader{buf: data}
	b := &SessionHelloBody{
		Token:      r.u64(),
		LastSeq:    r.u64(),
		Subscriber: core.SubscriberID(r.u64()),
	}
	b.DeliverAddr = r.str()
	return b, r.finish()
}

// SessionWelcomeBody answers a hello. On a resume, Lost counts the
// publications that fell off the per-session ring before the subscriber
// reconnected — in-window deliveries are replayed, Lost ones are gone.
type SessionWelcomeBody struct {
	Token   uint64
	Resumed bool
	// NextSeq is the sequence the next fresh delivery will carry.
	NextSeq uint64
	// Lost is the number of deliveries that aged out of the resume ring
	// (always 0 on a fresh session).
	Lost uint64
	// Err is non-empty when the hello was rejected (e.g. unknown token).
	Err string
}

// Encode serializes the body.
func (b *SessionWelcomeBody) Encode() []byte {
	var w writer
	w.u64(b.Token)
	var resumed uint8
	if b.Resumed {
		resumed = 1
	}
	w.u8(resumed)
	w.u64(b.NextSeq)
	w.u64(b.Lost)
	w.str(b.Err)
	return w.buf
}

// DecodeSessionWelcome parses a SessionWelcomeBody.
func DecodeSessionWelcome(data []byte) (*SessionWelcomeBody, error) {
	r := reader{buf: data}
	b := &SessionWelcomeBody{Token: r.u64()}
	b.Resumed = r.u8() != 0
	b.NextSeq = r.u64()
	b.Lost = r.u64()
	b.Err = r.str()
	return b, r.finish()
}

// SessionSubBody registers one subscription under a session. The edge
// assigns the subscription ID (Sub.ID is ignored on the way in) and folds
// the predicate into its aggregated upstream subscriber.
type SessionSubBody struct {
	Token uint64
	Sub   *core.Subscription
}

// Encode serializes the body.
func (b *SessionSubBody) Encode() []byte {
	var w writer
	w.u64(b.Token)
	encodeSubscription(&w, b.Sub)
	return w.buf
}

// DecodeSessionSub parses a SessionSubBody.
func DecodeSessionSub(data []byte) (*SessionSubBody, error) {
	r := reader{buf: data}
	b := &SessionSubBody{Token: r.u64()}
	b.Sub = decodeSubscription(&r)
	return b, r.finish()
}

// SessionSubAckBody returns the edge-assigned subscription ID.
type SessionSubAckBody struct {
	ID  core.SubscriptionID
	Err string
}

// Encode serializes the body.
func (b *SessionSubAckBody) Encode() []byte {
	var w writer
	w.u64(uint64(b.ID))
	w.str(b.Err)
	return w.buf
}

// DecodeSessionSubAck parses a SessionSubAckBody.
func DecodeSessionSubAck(data []byte) (*SessionSubAckBody, error) {
	r := reader{buf: data}
	b := &SessionSubAckBody{ID: core.SubscriptionID(r.u64())}
	b.Err = r.str()
	return b, r.finish()
}

// SessionUnsubBody removes one session subscription.
type SessionUnsubBody struct {
	Token uint64
	ID    core.SubscriptionID
}

// Encode serializes the body.
func (b *SessionUnsubBody) Encode() []byte {
	var w writer
	w.u64(b.Token)
	w.u64(uint64(b.ID))
	return w.buf
}

// DecodeSessionUnsub parses a SessionUnsubBody.
func DecodeSessionUnsub(data []byte) (*SessionUnsubBody, error) {
	r := reader{buf: data}
	b := &SessionUnsubBody{Token: r.u64(), ID: core.SubscriptionID(r.u64())}
	return b, r.finish()
}

// EdgeDeliverBody carries one matched publication to a session. Seq is the
// session-scoped delivery sequence (strictly increasing, never reused) that
// drives cumulative acks and resume replay.
type EdgeDeliverBody struct {
	Seq    uint64
	Msg    *core.Message
	SubIDs []core.SubscriptionID
}

// AppendTo serializes the body into buf (which may be a pooled scratch
// buffer) and returns the extended slice.
func (b *EdgeDeliverBody) AppendTo(buf []byte) []byte {
	w := writer{buf: buf}
	w.u64(b.Seq)
	encodeMessage(&w, b.Msg)
	w.u32(uint32(len(b.SubIDs)))
	for _, id := range b.SubIDs {
		w.u64(uint64(id))
	}
	return w.buf
}

// Encode serializes the body.
func (b *EdgeDeliverBody) Encode() []byte { return b.AppendTo(nil) }

// DecodeEdgeDeliver parses an EdgeDeliverBody.
func DecodeEdgeDeliver(data []byte) (*EdgeDeliverBody, error) {
	r := reader{buf: data}
	b := &EdgeDeliverBody{Seq: r.u64()}
	b.Msg = decodeMessage(&r)
	n := int(r.u32())
	if n > maxListLen {
		return nil, fmt.Errorf("wire: implausible id list length %d", n)
	}
	if r.err == nil && n > 0 {
		b.SubIDs = make([]core.SubscriptionID, 0, n)
		for i := 0; i < n; i++ {
			b.SubIDs = append(b.SubIDs, core.SubscriptionID(r.u64()))
		}
	}
	return b, r.finish()
}

// SessionAckBody acknowledges deliveries cumulatively: every entry with
// sequence <= Seq may leave the session's send buffer and resume ring.
type SessionAckBody struct {
	Token uint64
	Seq   uint64
}

// Encode serializes the body.
func (b *SessionAckBody) Encode() []byte {
	var w writer
	w.u64(b.Token)
	w.u64(b.Seq)
	return w.buf
}

// DecodeSessionAck parses a SessionAckBody.
func DecodeSessionAck(data []byte) (*SessionAckBody, error) {
	r := reader{buf: data}
	b := &SessionAckBody{Token: r.u64(), Seq: r.u64()}
	return b, r.finish()
}

// SessionCloseBody ends a session permanently: the edge drops the session's
// buffers, resume ring and subscriptions. Unlike a disconnect (which keeps
// the session resumable), a closed token is gone.
type SessionCloseBody struct {
	Token uint64
}

// Encode serializes the body.
func (b *SessionCloseBody) Encode() []byte {
	var w writer
	w.u64(b.Token)
	return w.buf
}

// DecodeSessionClose parses a SessionCloseBody.
func DecodeSessionClose(data []byte) (*SessionCloseBody, error) {
	r := reader{buf: data}
	b := &SessionCloseBody{Token: r.u64()}
	return b, r.finish()
}
