// Package delivery implements BlueDove's two notification paths (paper
// Section II-B): direct delivery, where a matcher pushes matched messages
// straight to a listening subscriber, and indirect delivery, where matches
// land in a per-subscriber queue (hosted by the subscriber's dispatcher)
// that the subscriber polls — the model for clients such as mobile phones
// that cannot accept inbound connections.
package delivery

import (
	"sync"

	"bluedove/internal/core"
	"bluedove/internal/metrics"
	"bluedove/internal/wire"
)

// DefaultQueueCap bounds each subscriber queue; the oldest entries are
// evicted when a slow poller lets its queue exceed the cap.
const DefaultQueueCap = 4096

// DefaultPollBatch is the poll batch size when the request asks for 0.
const DefaultPollBatch = 256

// QueueStore hosts bounded per-subscriber delivery queues. It is safe for
// concurrent use.
type QueueStore struct {
	mu     sync.Mutex
	queues map[core.SubscriberID][]wire.DeliverBody
	cap    int
	// Evicted counts messages dropped because a queue overflowed.
	Evicted metrics.Counter
}

// NewQueueStore builds a store with the given per-subscriber capacity
// (<=0 selects DefaultQueueCap).
func NewQueueStore(capacity int) *QueueStore {
	if capacity <= 0 {
		capacity = DefaultQueueCap
	}
	return &QueueStore{queues: make(map[core.SubscriberID][]wire.DeliverBody), cap: capacity}
}

// Push appends a delivery to the subscriber's queue, evicting the oldest
// entry on overflow.
func (q *QueueStore) Push(sub core.SubscriberID, d wire.DeliverBody) {
	q.mu.Lock()
	defer q.mu.Unlock()
	list := q.queues[sub]
	if len(list) >= q.cap {
		copy(list, list[1:])
		list = list[:len(list)-1]
		q.Evicted.Add(1)
	}
	q.queues[sub] = append(list, d)
}

// Poll removes and returns up to max queued deliveries (0 selects
// DefaultPollBatch).
func (q *QueueStore) Poll(sub core.SubscriberID, max int) []wire.DeliverBody {
	if max <= 0 {
		max = DefaultPollBatch
	}
	q.mu.Lock()
	defer q.mu.Unlock()
	list := q.queues[sub]
	if len(list) == 0 {
		return nil
	}
	n := max
	if n > len(list) {
		n = len(list)
	}
	out := make([]wire.DeliverBody, n)
	copy(out, list[:n])
	rest := list[n:]
	if len(rest) == 0 {
		delete(q.queues, sub)
	} else {
		q.queues[sub] = append(list[:0], rest...)
	}
	return out
}

// Len returns the subscriber's queued delivery count.
func (q *QueueStore) Len(sub core.SubscriberID) int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return len(q.queues[sub])
}

// Drop discards a subscriber's queue (unsubscribe).
func (q *QueueStore) Drop(sub core.SubscriberID) {
	q.mu.Lock()
	defer q.mu.Unlock()
	delete(q.queues, sub)
}

// Subscribers returns the IDs with non-empty queues.
func (q *QueueStore) Subscribers() []core.SubscriberID {
	q.mu.Lock()
	defer q.mu.Unlock()
	out := make([]core.SubscriberID, 0, len(q.queues))
	for id := range q.queues {
		out = append(out, id)
	}
	return out
}
