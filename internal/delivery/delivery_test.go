package delivery

import (
	"sync"
	"testing"

	"bluedove/internal/core"
	"bluedove/internal/wire"
)

func mkDeliver(sub core.SubscriberID, msgID core.MessageID) wire.DeliverBody {
	m := core.NewMessage([]float64{1}, nil)
	m.ID = msgID
	return wire.DeliverBody{Subscriber: sub, Msg: m, SubIDs: []core.SubscriptionID{1}}
}

func TestPushPollFIFO(t *testing.T) {
	q := NewQueueStore(10)
	for i := 1; i <= 5; i++ {
		q.Push(7, mkDeliver(7, core.MessageID(i)))
	}
	if q.Len(7) != 5 {
		t.Fatalf("Len = %d", q.Len(7))
	}
	got := q.Poll(7, 3)
	if len(got) != 3 || got[0].Msg.ID != 1 || got[2].Msg.ID != 3 {
		t.Fatalf("first batch: %+v", got)
	}
	got = q.Poll(7, 10)
	if len(got) != 2 || got[0].Msg.ID != 4 {
		t.Fatalf("second batch: %+v", got)
	}
	if q.Poll(7, 10) != nil {
		t.Error("drained queue returned deliveries")
	}
	if q.Len(7) != 0 {
		t.Error("Len after drain")
	}
}

func TestPollDefaults(t *testing.T) {
	q := NewQueueStore(0) // default capacity
	for i := 1; i <= DefaultPollBatch+10; i++ {
		q.Push(1, mkDeliver(1, core.MessageID(i)))
	}
	got := q.Poll(1, 0)
	if len(got) != DefaultPollBatch {
		t.Fatalf("default batch = %d", len(got))
	}
}

func TestOverflowEvictsOldest(t *testing.T) {
	q := NewQueueStore(3)
	for i := 1; i <= 5; i++ {
		q.Push(2, mkDeliver(2, core.MessageID(i)))
	}
	if q.Evicted.Value() != 2 {
		t.Fatalf("Evicted = %d", q.Evicted.Value())
	}
	got := q.Poll(2, 10)
	if len(got) != 3 || got[0].Msg.ID != 3 || got[2].Msg.ID != 5 {
		t.Fatalf("kept: %+v", got)
	}
}

func TestDropAndSubscribers(t *testing.T) {
	q := NewQueueStore(10)
	q.Push(1, mkDeliver(1, 1))
	q.Push(2, mkDeliver(2, 2))
	subs := q.Subscribers()
	if len(subs) != 2 {
		t.Fatalf("Subscribers = %v", subs)
	}
	q.Drop(1)
	if q.Len(1) != 0 {
		t.Error("Drop did not clear")
	}
	if len(q.Subscribers()) != 1 {
		t.Error("Subscribers after Drop")
	}
}

func TestSeparateQueuesPerSubscriber(t *testing.T) {
	q := NewQueueStore(10)
	q.Push(1, mkDeliver(1, 10))
	q.Push(2, mkDeliver(2, 20))
	if got := q.Poll(1, 10); len(got) != 1 || got[0].Msg.ID != 10 {
		t.Fatalf("sub 1: %+v", got)
	}
	if got := q.Poll(2, 10); len(got) != 1 || got[0].Msg.ID != 20 {
		t.Fatalf("sub 2: %+v", got)
	}
}

func TestConcurrentAccess(t *testing.T) {
	q := NewQueueStore(1000)
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(2)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				q.Push(core.SubscriberID(g), mkDeliver(core.SubscriberID(g), core.MessageID(i)))
			}
		}(g)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				q.Poll(core.SubscriberID(g), 5)
			}
		}(g)
	}
	wg.Wait()
}
