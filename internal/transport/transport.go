// Package transport abstracts BlueDove's node-to-node messaging so the same
// dispatcher/matcher/gossip code runs over real TCP (production, examples)
// and over an in-process channel mesh (integration tests with fault
// injection).
//
// The protocol has two interaction styles and handlers must respect them:
// one-way sends (forwarding, load reports, gossip pushes, deliveries) where
// the handler returns nil, and request/response (table pulls, subscribes,
// polls) where the handler returns exactly one response envelope.
package transport

import (
	"errors"
	"time"

	"bluedove/internal/wire"
)

// Handler processes one incoming envelope. For request/response kinds it
// returns the response; for one-way kinds it returns nil. Handlers must be
// safe for concurrent use.
type Handler func(env *wire.Envelope) *wire.Envelope

// ErrClosed is returned after a transport has been closed.
var ErrClosed = errors.New("transport: closed")

// ErrUnreachable is returned when the destination cannot be contacted.
var ErrUnreachable = errors.New("transport: unreachable")

// Copying is an optional capability: transports whose Send has fully copied
// env.Body before returning implement it and report true. Hot-path senders
// use it to recycle pooled encode buffers immediately after Send; on
// transports that retain the body (the in-process mesh queues the envelope
// by reference) the buffer must be left to the garbage collector instead.
type Copying interface {
	SendCopies() bool
}

// SendCopies reports whether t's Send copies envelope bodies before
// returning (false when t does not implement Copying).
func SendCopies(t Transport) bool {
	c, ok := t.(Copying)
	return ok && c.SendCopies()
}

// Transport moves envelopes between named endpoints.
type Transport interface {
	// Listen serves handler h at addr and returns the bound address
	// (which may differ from addr, e.g. ":0" picks a port).
	Listen(addr string, h Handler) (string, error)
	// Send delivers env to addr without waiting for a response. Ordering
	// is preserved per (sender, destination) pair.
	Send(addr string, env *wire.Envelope) error
	// Request sends env to addr and waits up to timeout for the response.
	Request(addr string, env *wire.Envelope, timeout time.Duration) (*wire.Envelope, error)
	// Close releases all listeners and connections.
	Close() error
}
